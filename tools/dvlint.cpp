// dvlint CLI: run the repo-aware static checks over a source tree.
//
//   dvlint [--json|--sarif] [--check ID[,ID...]] [--changed-only]
//          [--suppress FILE] [--out FILE] ROOT
//   dvlint --list-checks
//
// ROOT is the directory to scan recursively (typically the repo's src/).
// Exit codes are deterministic so CI can gate on them:
//   0  clean (no findings after suppressions), or --list-checks
//   1  findings reported
//   2  usage or I/O error (bad flags, unknown check id, unreadable root or
//      suppression file, unwritable --out target)
// --changed-only still parses the whole tree (cross-file registries stay
// complete) but reports findings only for files `git` says changed vs HEAD
// (tracked modifications plus untracked sources); if git is unavailable it
// falls back to a full report.  There is deliberately no --fix: every
// finding is either a real defect or carries an explicit in-source
// annotation, so the tree itself is always the single source of truth.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "lint/lint.hpp"

namespace {

int usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0
      << " [--json|--sarif] [--check ID[,ID...]] [--changed-only]\n"
         "              [--suppress FILE] [--out FILE] ROOT\n"
         "       " << argv0 << " --list-checks\n"
         "\n"
         "  --json          machine-readable report (dynvote.dvlint.v1)\n"
         "  --sarif         SARIF 2.1.0 report for code-scanning upload\n"
         "  --check IDS     run only these comma-separated check ids\n"
         "  --changed-only  report findings only for files changed vs git\n"
         "                  HEAD (whole tree still parsed for context)\n"
         "  --suppress FILE suppression file: '<check> <suffix>[:line]'\n"
         "  --out FILE      write the report to FILE instead of stdout\n"
         "  --list-checks   print the check catalogue and exit\n"
         "\n"
         "exit codes: 0 clean, 1 findings, 2 usage or I/O error\n";
  return 2;
}

int list_checks() {
  for (const dynvote::lint::CheckInfo& info : dynvote::lint::all_checks()) {
    std::cout << info.name << "\n    " << info.summary << "\n";
  }
  return 0;
}

/// Lines of `cmd`'s stdout.  nullopt when the command cannot run or exits
/// non-zero (e.g. not a git checkout) -- callers fall back to a full scan.
std::optional<std::vector<std::string>> command_lines(const std::string& cmd) {
  FILE* pipe = ::popen(cmd.c_str(), "r");
  if (pipe == nullptr) return std::nullopt;
  std::string output;
  char buf[4096];
  std::size_t got = 0;
  while ((got = std::fread(buf, 1, sizeof buf, pipe)) > 0) {
    output.append(buf, got);
  }
  if (::pclose(pipe) != 0) return std::nullopt;
  std::vector<std::string> lines;
  std::istringstream in(output);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

bool is_source_path(const std::string& path) {
  const std::size_t dot = path.rfind('.');
  if (dot == std::string::npos) return false;
  const std::string ext = path.substr(dot);
  return ext == ".hpp" || ext == ".cpp" || ext == ".h" || ext == ".cc";
}

/// Source files under `root` changed relative to HEAD (tracked diffs plus
/// untracked files), as root-relative paths.  nullopt = git unavailable.
std::optional<std::vector<std::string>> changed_files(const std::string& root) {
  const std::string quoted = "'" + root + "'";
  const auto tracked = command_lines(
      "git -C " + quoted + " diff --name-only --relative HEAD -- . 2>/dev/null");
  const auto untracked = command_lines(
      "git -C " + quoted + " ls-files --others --exclude-standard 2>/dev/null");
  if (!tracked || !untracked) return std::nullopt;
  std::vector<std::string> out;
  for (const auto* batch : {&*tracked, &*untracked}) {
    for (const std::string& path : *batch) {
      if (is_source_path(path)) out.push_back(path);
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  enum class Format { kText, kJson, kSarif };
  Format format = Format::kText;
  bool changed_only = false;
  std::string suppress_path;
  std::string out_path;
  std::string root;
  std::vector<dynvote::lint::CheckId> checks;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      format = Format::kJson;
    } else if (arg == "--sarif") {
      format = Format::kSarif;
    } else if (arg == "--changed-only") {
      changed_only = true;
    } else if (arg == "--list-checks") {
      return list_checks();
    } else if (arg == "--check") {
      if (++i >= argc) return usage(argv[0]);
      std::istringstream ids(argv[i]);
      std::string id;
      while (std::getline(ids, id, ',')) {
        const auto check = dynvote::lint::check_from_string(id);
        if (!check) {
          std::cerr << "dvlint: unknown check id '" << id
                    << "' (see --list-checks)\n";
          return 2;
        }
        checks.push_back(*check);
      }
      if (checks.empty()) return usage(argv[0]);
    } else if (arg == "--suppress") {
      if (++i >= argc) return usage(argv[0]);
      suppress_path = argv[i];
    } else if (arg == "--out") {
      if (++i >= argc) return usage(argv[0]);
      out_path = argv[i];
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage(argv[0]);
    } else if (root.empty()) {
      root = arg;
    } else {
      return usage(argv[0]);
    }
  }
  if (root.empty()) return usage(argv[0]);

  try {
    dynvote::lint::LintOptions options;
    options.root = root;
    options.checks = std::move(checks);
    if (!suppress_path.empty()) {
      options.suppressions = dynvote::lint::load_suppressions(suppress_path);
    }
    if (changed_only) {
      if (auto changed = changed_files(root)) {
        options.only_files = std::move(*changed);
      } else {
        std::cerr << "dvlint: --changed-only: git unavailable, "
                     "falling back to a full scan\n";
      }
    }
    const dynvote::lint::LintReport report = dynvote::lint::run_lint(options);
    std::string rendered;
    switch (format) {
      case Format::kText:
        rendered = dynvote::lint::render_text(report);
        break;
      case Format::kJson:
        rendered = dynvote::lint::render_json(report, root);
        break;
      case Format::kSarif:
        rendered = dynvote::lint::render_sarif(report, root);
        break;
    }
    if (out_path.empty()) {
      std::cout << rendered;
    } else {
      std::ofstream out(out_path, std::ios::binary);
      if (!out) {
        std::cerr << "dvlint: cannot write " << out_path << "\n";
        return 2;
      }
      out << rendered;
    }
    return report.findings.empty() ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }
}
