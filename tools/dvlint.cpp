// dvlint CLI: run the repo-aware static checks over a source tree.
//
//   dvlint [--json] [--suppress FILE] [--out FILE] ROOT
//
// ROOT is the directory to scan recursively (typically the repo's src/).
// Exit codes are deterministic so CI can gate on them:
//   0  clean (no findings after suppressions)
//   1  findings reported
//   2  usage or I/O error
// There is deliberately no --fix: every finding is either a real defect or
// carries an explicit in-source annotation, so the tree itself is always
// the single source of truth.
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "lint/lint.hpp"

namespace {

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--json] [--suppress FILE] [--out FILE] ROOT\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  std::string suppress_path;
  std::string out_path;
  std::string root;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--suppress") {
      if (++i >= argc) return usage(argv[0]);
      suppress_path = argv[i];
    } else if (arg == "--out") {
      if (++i >= argc) return usage(argv[0]);
      out_path = argv[i];
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage(argv[0]);
    } else if (root.empty()) {
      root = arg;
    } else {
      return usage(argv[0]);
    }
  }
  if (root.empty()) return usage(argv[0]);

  try {
    dynvote::lint::LintOptions options;
    options.root = root;
    if (!suppress_path.empty()) {
      options.suppressions = dynvote::lint::load_suppressions(suppress_path);
    }
    const dynvote::lint::LintReport report = dynvote::lint::run_lint(options);
    const std::string rendered =
        json ? dynvote::lint::render_json(report, root)
             : dynvote::lint::render_text(report);
    if (out_path.empty()) {
      std::cout << rendered;
    } else {
      std::ofstream out(out_path, std::ios::binary);
      if (!out) {
        std::cerr << "dvlint: cannot write " << out_path << "\n";
        return 2;
      }
      out << rendered;
    }
    return report.findings.empty() ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }
}
