// bench_diff: compare two run manifests (sweep or microbench) for drift.
//
//   bench_diff [--perf-gate PCT] BASELINE.json CANDIDATE.json
//
// Sweep manifests ("dynvote.sweep.*") compare on results_fingerprint
// first: identical fingerprints mean bit-identical simulation results, so
// the tool skips straight to perf telemetry (runs/sec, rounds/sec,
// deliveries/sec, steady-state allocations per round) and reports timing
// drift informationally.  Differing fingerprints are a correctness event:
// the tool diffs availability per case and exits non-zero so CI fails.
//
// --perf-gate PCT turns the perf report into a regression gate: after a
// fingerprint match, any case whose rounds_per_sec fell more than PCT
// percent below the baseline fails the compare with exit code 3.  Only
// slowdowns gate -- speedups and new cases pass -- and the gate never runs
// when fingerprints differ (a correctness failure outranks a timing one).
//
// Microbench manifests ("dynvote.microbench.v1") have no deterministic
// payload -- they are all timing -- so bench_diff matches benchmarks by
// name and reports per-iteration time drift, always exiting 0 (timing is
// noisy; gate on fingerprints and --perf-gate, watch the microbenches).
//
// Exit codes, CI-stable:
//   0  fingerprints match (or informational microbench compare)
//   1  results fingerprints differ
//   2  usage, I/O, parse, or schema error
//   3  --perf-gate tripped: a case regressed beyond the threshold
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>

#include "util/json.hpp"

namespace {

using dynvote::JsonValue;

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--perf-gate PCT] BASELINE.json CANDIDATE.json\n";
  return 2;
}

std::optional<JsonValue> load_manifest(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::cerr << "bench_diff: cannot read " << path << "\n";
    return std::nullopt;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  std::optional<JsonValue> doc = dynvote::json_parse(buf.str());
  if (!doc || !doc->is_object()) {
    std::cerr << "bench_diff: " << path << " is not a JSON object\n";
    return std::nullopt;
  }
  return doc;
}

/// "+12.3%" / "-4.5%"; "n/a" when the baseline is zero or missing.
std::string percent_delta(double baseline, double candidate) {
  if (!(baseline > 0.0)) return "n/a";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%+.1f%%",
                (candidate - baseline) / baseline * 100.0);
  return buf;
}

/// Case coordinates, the join key between two sweeps of the same shape.
std::string case_key(const JsonValue& c) {
  std::ostringstream key;
  key << c.string_or("algorithm", "?") << " p=" << c.number_or("processes", -1)
      << " c=" << c.number_or("changes", -1) << " r=" << c.number_or("rate", -1)
      << " " << c.string_or("mode", "?");
  if (c.number_or("crash_fraction", 0.0) > 0.0) {
    key << " crash=" << c.number_or("crash_fraction", 0.0);
  }
  // Non-geometric cases carry a fault_model block; every parameter joins
  // the key so differently-parameterized sweeps can never be compared as
  // if they were the same case.
  const JsonValue* model = c.find("fault_model");
  if (model != nullptr && model->is_object()) {
    key << " model=" << model->string_or("model", "?") << '[';
    bool first = true;
    for (const auto& [name, value] : model->members()) {
      if (name == "model") continue;
      if (!first) key << ',';
      first = false;
      key << name << '=';
      if (value.is_number()) {
        key << value.as_number();
      } else if (value.is_string()) {
        key << value.as_string();
      }
    }
    key << ']';
  }
  return key.str();
}

const JsonValue* find_case(const JsonValue& manifest, const std::string& key) {
  const JsonValue* cases = manifest.find("cases");
  if (cases == nullptr || !cases->is_array()) return nullptr;
  for (const JsonValue& c : cases->items()) {
    if (case_key(c) == key) return &c;
  }
  return nullptr;
}

void perf_drift_line(const std::string& key, const JsonValue& base,
                     const JsonValue& cand) {
  std::cout << "  " << key << ": runs/sec "
            << percent_delta(base.number_or("runs_per_sec", 0.0),
                             cand.number_or("runs_per_sec", 0.0))
            << ", rounds/sec "
            << percent_delta(base.number_or("rounds_per_sec", 0.0),
                             cand.number_or("rounds_per_sec", 0.0));
  const double base_allocs = base.number_or("steady_allocs_per_round", -1.0);
  const double cand_allocs = cand.number_or("steady_allocs_per_round", -1.0);
  if (base_allocs >= 0.0 || cand_allocs >= 0.0) {
    std::cout << ", steady allocs/round " << base_allocs << " -> "
              << cand_allocs;
  }
  std::cout << "\n";
}

/// One case's gate verdict: the percent rounds_per_sec fell, when both
/// sides carry the field and the candidate is slower.
std::optional<double> rounds_regression_pct(const JsonValue& base,
                                            const JsonValue& cand) {
  const double before = base.number_or("rounds_per_sec", 0.0);
  const double after = cand.number_or("rounds_per_sec", 0.0);
  if (!(before > 0.0) || !(after > 0.0) || after >= before) {
    return std::nullopt;
  }
  return (before - after) / before * 100.0;
}

int diff_sweeps(const JsonValue& base, const JsonValue& cand,
                std::optional<double> perf_gate_pct) {
  const std::string_view base_fp = base.string_or("results_fingerprint", "");
  const std::string_view cand_fp = cand.string_or("results_fingerprint", "");
  if (base_fp.empty() || cand_fp.empty()) {
    std::cerr << "bench_diff: sweep manifest lacks results_fingerprint\n";
    return 2;
  }
  if (base.string_or("sweep", "") != cand.string_or("sweep", "")) {
    std::cerr << "bench_diff: comparing different sweeps ('"
              << base.string_or("sweep", "?") << "' vs '"
              << cand.string_or("sweep", "?") << "')\n";
    return 2;
  }

  const JsonValue* base_cases = base.find("cases");
  if (base_fp == cand_fp) {
    // Fast path: bit-identical results, only speed can have moved.
    std::cout << "results fingerprints match (" << base_fp << ")\n";
    std::cout << "wall_seconds " << base.number_or("wall_seconds", 0.0)
              << " -> " << cand.number_or("wall_seconds", 0.0) << " ("
              << percent_delta(base.number_or("wall_seconds", 0.0),
                               cand.number_or("wall_seconds", 0.0))
              << ")\n";
    bool gate_tripped = false;
    if (base_cases != nullptr && base_cases->is_array()) {
      for (const JsonValue& c : base_cases->items()) {
        const std::string key = case_key(c);
        const JsonValue* other = find_case(cand, key);
        if (other == nullptr) continue;
        perf_drift_line(key, c, *other);
        if (!perf_gate_pct.has_value()) continue;
        const std::optional<double> drop = rounds_regression_pct(c, *other);
        if (drop.has_value() && *drop > *perf_gate_pct) {
          std::cout << "  PERF GATE: " << key << " rounds/sec fell "
                    << *drop << "% (gate " << *perf_gate_pct << "%)\n";
          gate_tripped = true;
        }
      }
    }
    return gate_tripped ? 3 : 0;
  }

  std::cout << "RESULTS FINGERPRINT MISMATCH: " << base_fp << " vs " << cand_fp
            << "\n";
  if (base_cases != nullptr && base_cases->is_array()) {
    for (const JsonValue& c : base_cases->items()) {
      const std::string key = case_key(c);
      const JsonValue* other = find_case(cand, key);
      if (other == nullptr) {
        std::cout << "  " << key << ": missing from candidate\n";
        continue;
      }
      const double base_avail = c.number_or("availability_percent", -1.0);
      const double cand_avail = other->number_or("availability_percent", -1.0);
      const double base_succ = c.number_or("successes", -1.0);
      const double cand_succ = other->number_or("successes", -1.0);
      if (base_avail != cand_avail || base_succ != cand_succ) {
        std::cout << "  " << key << ": availability " << base_avail << "% -> "
                  << cand_avail << "% (successes " << base_succ << " -> "
                  << cand_succ << ")\n";
      }
    }
    const JsonValue* cand_cases = cand.find("cases");
    if (cand_cases != nullptr && cand_cases->is_array()) {
      for (const JsonValue& c : cand_cases->items()) {
        if (find_case(base, case_key(c)) == nullptr) {
          std::cout << "  " << case_key(c) << ": missing from baseline\n";
        }
      }
    }
  }
  return 1;
}

const JsonValue* find_benchmark(const JsonValue& manifest,
                                const std::string& name) {
  const JsonValue* benchmarks = manifest.find("benchmarks");
  if (benchmarks == nullptr || !benchmarks->is_array()) return nullptr;
  for (const JsonValue& b : benchmarks->items()) {
    if (b.string_or("name", "") == name) return &b;
  }
  return nullptr;
}

int diff_microbench(const JsonValue& base, const JsonValue& cand) {
  const JsonValue* benchmarks = base.find("benchmarks");
  if (benchmarks == nullptr || !benchmarks->is_array()) {
    std::cerr << "bench_diff: microbench manifest lacks benchmarks array\n";
    return 2;
  }
  std::cout << "microbench timing drift (informational; never gates):\n";
  for (const JsonValue& b : benchmarks->items()) {
    const std::string name(b.string_or("name", "?"));
    const JsonValue* other = find_benchmark(cand, name);
    if (other == nullptr) {
      std::cout << "  " << name << ": missing from candidate\n";
      continue;
    }
    const double base_ns = b.number_or("real_ns", 0.0);
    const double cand_ns = other->number_or("real_ns", 0.0);
    std::cout << "  " << name << ": " << base_ns << " ns -> " << cand_ns
              << " ns (" << percent_delta(base_ns, cand_ns) << ")\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::optional<double> perf_gate_pct;
  int arg = 1;
  if (arg < argc && std::string_view(argv[arg]) == "--perf-gate") {
    if (arg + 1 >= argc) return usage(argv[0]);
    char* end = nullptr;
    const double pct = std::strtod(argv[arg + 1], &end);
    if (end == argv[arg + 1] || *end != '\0' || !(pct >= 0.0)) {
      std::cerr << "bench_diff: --perf-gate needs a non-negative percent\n";
      return 2;
    }
    perf_gate_pct = pct;
    arg += 2;
  }
  if (argc - arg != 2) return usage(argv[0]);
  const std::optional<JsonValue> base = load_manifest(argv[arg]);
  const std::optional<JsonValue> cand = load_manifest(argv[arg + 1]);
  if (!base || !cand) return 2;

  const std::string_view base_schema = base->string_or("schema", "");
  const std::string_view cand_schema = cand->string_or("schema", "");
  const bool base_sweep = base_schema.substr(0, 14) == "dynvote.sweep.";
  const bool cand_sweep = cand_schema.substr(0, 14) == "dynvote.sweep.";
  const bool base_micro = base_schema.substr(0, 19) == "dynvote.microbench.";
  const bool cand_micro = cand_schema.substr(0, 19) == "dynvote.microbench.";

  if (base_sweep && cand_sweep) {
    return diff_sweeps(*base, *cand, perf_gate_pct);
  }
  if (base_micro && cand_micro) return diff_microbench(*base, *cand);
  std::cerr << "bench_diff: incomparable schemas '" << base_schema << "' vs '"
            << cand_schema << "'\n";
  return 2;
}
