// dvdispatch: run availability sweeps on the multi-host fabric.
//
//   dvdispatch --coordinator [sweep options] [--port N] [--local-jobs N]
//              [--lease-ms N]
//   dvdispatch --worker HOST:PORT [--slots N] [--die-after-units N]
//   dvdispatch --local [sweep options]
//
// The coordinator listens on --port (default DV_FABRIC_PORT, else 7717),
// executes the sweep with --local-jobs threads of its own, and leases work
// units to any worker that connects; --local runs the identical sweep
// entirely in-process through the ordinary runner.  Because shard merge is
// bit-identical, both paths stamp the same results_fingerprint into their
// manifests -- CI starts a coordinator plus workers (killing one
// mid-sweep), runs --local, and requires `bench_diff` to find the two
// manifests identical.
//
// Sweep options (same sweep on every path):
//   --name NAME        artifact stem (default "fabric_sweep")
//   --algos a,b,...    algorithms (default: all six)
//   --rates r1,r2,...  mean rounds between changes (default "2,6,10")
//   --changes N        connectivity changes per run (default 6)
//   --processes N      process count (default 64)
//   --runs N           runs per case (default DV_RUNS, else 200)
//   --seed N           base seed (default DV_SEED, else 0x5eed)
//   --mode M           fresh | cascading | both (default both)
//   --min-shard-runs N smallest shard (default auto)
//   --model M          fault model: geometric | sleepy | repairable | trace
//                      (default geometric; non-geometric sweeps need wire
//                      protocol v3 on every fabric peer)
//   --wake-bias X      sleepy: probability a change is a wake (default 0.5)
//   --repair-capacity N  repairable: concurrent repair slots (default 1)
//   --repair-mean X    repairable: mean repair service rounds (default 8)
//   --trace FILE       trace: JSON schedule document (implies --model trace)
//   --trace-out FILE   record a dynvote.events.v1 protocol trace to FILE
//                      (coordinator/local roles; equivalent to DV_TRACE=1
//                      with DV_TRACE_OUT=FILE -- analyze with dvtrace)
//
// Exit codes: 0 success/clean shutdown, 2 usage or connection failure,
// 3 worker died via --die-after-units (a test hook, not an error).
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "fabric/coordinator.hpp"
#include "fabric/worker.hpp"
#include "runner/artifact.hpp"
#include "runner/sweep.hpp"
#include "util/env.hpp"

namespace {

using namespace dynvote;

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " --coordinator|--worker HOST:PORT|--local [options]\n"
               "see the header of tools/dvdispatch.cpp for the full list\n";
  return 2;
}

std::vector<std::string> split_commas(const std::string& value) {
  std::vector<std::string> parts;
  std::size_t begin = 0;
  while (begin <= value.size()) {
    const std::size_t comma = value.find(',', begin);
    if (comma == std::string::npos) {
      parts.push_back(value.substr(begin));
      break;
    }
    parts.push_back(value.substr(begin, comma - begin));
    begin = comma + 1;
  }
  return parts;
}

struct Cli {
  enum class Role { kNone, kCoordinator, kWorker, kLocal } role = Role::kNone;
  std::string worker_target;
  std::uint16_t port = 0;
  std::uint64_t local_jobs = fabric::CoordinatorOptions::kAutoLocalJobs;
  std::uint64_t lease_ms = 0;
  std::uint64_t slots = 0;
  std::uint64_t die_after_units = 0;

  std::string name = "fabric_sweep";
  std::vector<AlgorithmKind> algorithms;
  std::vector<double> rates = {2.0, 6.0, 10.0};
  std::size_t changes = 6;
  std::size_t processes = 64;
  std::uint64_t runs = 0;
  std::uint64_t seed = 0;
  bool fresh = true;
  bool cascading = true;
  std::uint64_t min_shard_runs = 0;
  FaultModelParams fault_model;
  std::string trace_out;
};

bool parse_cli(int argc, char** argv, Cli& cli) {
  const auto need_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) return nullptr;
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const char* value = nullptr;
    if (arg == "--coordinator") {
      cli.role = Cli::Role::kCoordinator;
    } else if (arg == "--local") {
      cli.role = Cli::Role::kLocal;
    } else if (arg == "--worker") {
      if ((value = need_value(i)) == nullptr) return false;
      cli.role = Cli::Role::kWorker;
      cli.worker_target = value;
    } else if (arg == "--port") {
      if ((value = need_value(i)) == nullptr) return false;
      cli.port = static_cast<std::uint16_t>(std::strtoul(value, nullptr, 10));
    } else if (arg == "--local-jobs") {
      if ((value = need_value(i)) == nullptr) return false;
      cli.local_jobs = std::strtoull(value, nullptr, 10);
    } else if (arg == "--lease-ms") {
      if ((value = need_value(i)) == nullptr) return false;
      cli.lease_ms = std::strtoull(value, nullptr, 10);
    } else if (arg == "--slots") {
      if ((value = need_value(i)) == nullptr) return false;
      cli.slots = std::strtoull(value, nullptr, 10);
    } else if (arg == "--die-after-units") {
      if ((value = need_value(i)) == nullptr) return false;
      cli.die_after_units = std::strtoull(value, nullptr, 10);
    } else if (arg == "--name") {
      if ((value = need_value(i)) == nullptr) return false;
      cli.name = value;
    } else if (arg == "--algos") {
      if ((value = need_value(i)) == nullptr) return false;
      for (const std::string& part : split_commas(value)) {
        const auto kind = algorithm_kind_from_string(part);
        if (!kind.has_value()) {
          std::cerr << "dvdispatch: unknown algorithm '" << part << "'\n";
          return false;
        }
        cli.algorithms.push_back(*kind);
      }
    } else if (arg == "--rates") {
      if ((value = need_value(i)) == nullptr) return false;
      cli.rates.clear();
      for (const std::string& part : split_commas(value)) {
        cli.rates.push_back(std::strtod(part.c_str(), nullptr));
      }
    } else if (arg == "--changes") {
      if ((value = need_value(i)) == nullptr) return false;
      cli.changes = static_cast<std::size_t>(std::strtoull(value, nullptr, 10));
    } else if (arg == "--processes") {
      if ((value = need_value(i)) == nullptr) return false;
      cli.processes =
          static_cast<std::size_t>(std::strtoull(value, nullptr, 10));
    } else if (arg == "--runs") {
      if ((value = need_value(i)) == nullptr) return false;
      cli.runs = std::strtoull(value, nullptr, 10);
    } else if (arg == "--seed") {
      if ((value = need_value(i)) == nullptr) return false;
      cli.seed = std::strtoull(value, nullptr, 10);
    } else if (arg == "--mode") {
      if ((value = need_value(i)) == nullptr) return false;
      const std::string mode = value;
      cli.fresh = mode == "fresh" || mode == "both";
      cli.cascading = mode == "cascading" || mode == "both";
      if (!cli.fresh && !cli.cascading) {
        std::cerr << "dvdispatch: unknown mode '" << mode << "'\n";
        return false;
      }
    } else if (arg == "--min-shard-runs") {
      if ((value = need_value(i)) == nullptr) return false;
      cli.min_shard_runs = std::strtoull(value, nullptr, 10);
    } else if (arg == "--model") {
      if ((value = need_value(i)) == nullptr) return false;
      const auto kind = fault_model_kind_from_string(value);
      if (!kind.has_value()) {
        std::cerr << "dvdispatch: unknown fault model '" << value << "'\n";
        return false;
      }
      cli.fault_model.kind = *kind;
    } else if (arg == "--wake-bias") {
      if ((value = need_value(i)) == nullptr) return false;
      cli.fault_model.wake_bias = std::strtod(value, nullptr);
    } else if (arg == "--repair-capacity") {
      if ((value = need_value(i)) == nullptr) return false;
      cli.fault_model.repair_capacity = std::strtoull(value, nullptr, 10);
    } else if (arg == "--repair-mean") {
      if ((value = need_value(i)) == nullptr) return false;
      cli.fault_model.repair_mean_rounds = std::strtod(value, nullptr);
    } else if (arg == "--trace") {
      if ((value = need_value(i)) == nullptr) return false;
      std::ifstream in(value, std::ios::binary);
      if (!in) {
        std::cerr << "dvdispatch: cannot read trace file '" << value << "'\n";
        return false;
      }
      std::ostringstream buf;
      buf << in.rdbuf();
      cli.fault_model.kind = FaultModelKind::kTrace;
      cli.fault_model.trace_json = buf.str();
    } else if (arg == "--trace-out") {
      if ((value = need_value(i)) == nullptr) return false;
      cli.trace_out = value;
    } else {
      std::cerr << "dvdispatch: unknown option '" << arg << "'\n";
      return false;
    }
  }
  return cli.role != Cli::Role::kNone;
}

SweepSpec build_spec(const Cli& cli) {
  SweepSpec spec;
  spec.name = cli.name;
  spec.min_shard_runs = cli.min_shard_runs;
  const std::vector<AlgorithmKind> algorithms =
      cli.algorithms.empty() ? all_algorithm_kinds() : cli.algorithms;
  const std::uint64_t runs = cli.runs != 0 ? cli.runs : runs_from_env(200);
  const std::uint64_t seed = cli.seed != 0 ? cli.seed : seed_from_env(0x5eed);
  if (cli.fresh) {
    std::vector<SweepCase> grid =
        availability_grid(algorithms, cli.rates, cli.changes,
                          RunMode::kFreshStart, runs, seed, cli.processes);
    spec.cases.insert(spec.cases.end(), grid.begin(), grid.end());
  }
  if (cli.cascading) {
    std::vector<SweepCase> grid =
        availability_grid(algorithms, cli.rates, cli.changes,
                          RunMode::kCascading, runs, seed, cli.processes);
    spec.cases.insert(spec.cases.end(), grid.begin(), grid.end());
  }
  // The grid builder knows nothing about fault models; stamping the params
  // afterwards keeps geometric sweeps byte-identical to pre-model builds.
  for (SweepCase& c : spec.cases) c.spec.fault_model = cli.fault_model;
  return spec;
}

void report(const SweepSpec& spec, const SweepResult& result) {
  std::cout << "sweep '" << spec.name << "': " << result.cases.size()
            << " cases in " << result.wall_seconds << "s\n";
  std::cout << "results_fingerprint " << results_fingerprint(spec, result)
            << "\n";
  if (!result.artifact_path.empty()) {
    std::cout << "manifest " << result.artifact_path << "\n";
  }
  if (!result.trace_path.empty()) {
    std::cout << "trace " << result.trace_path << "\n";
  }
  if (result.fabric.used) {
    std::cout << "fabric: " << result.fabric.units_issued << " units issued, "
              << result.fabric.units_reissued << " re-issued, "
              << result.fabric.units_stolen << " stolen, "
              << result.fabric.duplicate_results << " duplicates dropped, "
              << result.fabric.workers_connected << " workers ("
              << result.fabric.workers_died << " died)\n";
  }
}

/// --trace-out is sugar for the environment knobs the sweep runner and
/// coordinator already honor, so one switch arms both code paths.
void apply_trace_out(const Cli& cli) {
  if (cli.trace_out.empty()) return;
  ::setenv("DV_TRACE", "1", 1);
  ::setenv("DV_TRACE_OUT", cli.trace_out.c_str(), 1);
}

int run_coordinator(const Cli& cli) {
  fabric::CoordinatorOptions options;
  options.port = cli.port != 0
                     ? cli.port
                     : static_cast<std::uint16_t>(
                           env_u64("DV_FABRIC_PORT", 7717));
  options.local_jobs = cli.local_jobs;
  options.lease_ms = cli.lease_ms;
  apply_trace_out(cli);
  const SweepSpec spec = build_spec(cli);
  fabric::Coordinator coordinator(spec, options);
  std::cerr << "dvdispatch: coordinating '" << spec.name << "' ("
            << spec.cases.size() << " cases) on port " << coordinator.port()
            << "\n";
  const SweepResult result = coordinator.run();
  report(spec, result);
  return 0;
}

int run_worker_role(const Cli& cli) {
  const std::size_t colon = cli.worker_target.rfind(':');
  if (colon == std::string::npos) {
    std::cerr << "dvdispatch: --worker expects HOST:PORT\n";
    return 2;
  }
  fabric::WorkerOptions options;
  options.host = cli.worker_target.substr(0, colon);
  options.port = static_cast<std::uint16_t>(
      std::strtoul(cli.worker_target.c_str() + colon + 1, nullptr, 10));
  if (options.port == 0) {
    options.port =
        static_cast<std::uint16_t>(env_u64("DV_FABRIC_PORT", 7717));
  }
  options.slots = cli.slots;
  options.die_after_units = cli.die_after_units;
  const fabric::WorkerExit exit_code = fabric::run_worker(options);
  std::cerr << "dvdispatch: worker exit: " << fabric::to_string(exit_code)
            << "\n";
  switch (exit_code) {
    case fabric::WorkerExit::kShutdown:
    case fabric::WorkerExit::kStopped:
      return 0;
    case fabric::WorkerExit::kDied:
      return 3;
    case fabric::WorkerExit::kConnectFailed:
      return 2;
  }
  return 2;
}

int run_local(const Cli& cli) {
  apply_trace_out(cli);
  const SweepSpec spec = build_spec(cli);
  const SweepResult result = run_sweep(spec);
  report(spec, result);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli;
  if (!parse_cli(argc, argv, cli)) return usage(argv[0]);
  try {
    switch (cli.role) {
      case Cli::Role::kCoordinator: return run_coordinator(cli);
      case Cli::Role::kWorker: return run_worker_role(cli);
      case Cli::Role::kLocal: return run_local(cli);
      case Cli::Role::kNone: break;
    }
  } catch (const std::exception& e) {
    std::cerr << "dvdispatch: " << e.what() << "\n";
    return 2;
  }
  return usage(argv[0]);
}
