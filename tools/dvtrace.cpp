// dvtrace: analyze a dynvote.events.v1 trace file.
//
//   dvtrace TRACE.events [--chrome OUT.json]
//
// The trace recorder (src/obs/trace.hpp) captures spans (case -> shard ->
// run) and protocol instants (view_installed, session_resolved,
// primary_formed, run_complete) while a sweep executes with DV_TRACE=1.
// This tool reads one such file and prints:
//
//   * the file summary (schema, events, name table, ring overwrites),
//   * per-name event counts,
//   * span latency summaries -- count / min / mean / max plus a log2
//     duration histogram -- with "run" spans additionally broken out per
//     algorithm (the leading token of the enclosing case label),
//   * a per-algorithm availability timeline built from `run_complete`
//     instants (a1 = primary at end), rendered as a time-bucketed strip.
//
// --chrome exports the events as Chrome trace-event JSON (the format
// Perfetto and chrome://tracing load): spans become B/E pairs, instants
// become "i" events, and a0/a1 travel in args.
//
// Exit codes: 0 on success, 2 on usage, I/O, or decode errors (hostile or
// truncated input is a DecodeError from the strict parser, never UB).
#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <iterator>
#include <map>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "obs/trace.hpp"
#include "util/codec.hpp"
#include "util/json.hpp"

namespace {

using dynvote::obs::EventKind;
using dynvote::obs::TraceEvent;
using dynvote::obs::TraceFile;

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0 << " TRACE.events [--chrome OUT.json]\n";
  return 2;
}

/// Accumulated span durations under one key (a span name, or
/// "run @ <algorithm>" for the per-algorithm breakout).
struct SpanStats {
  std::uint64_t count = 0;
  std::uint64_t min_us = UINT64_MAX;
  std::uint64_t max_us = 0;
  std::uint64_t total_us = 0;
  /// log2 duration buckets: bucket b holds durations in [2^(b-1), 2^b).
  std::vector<std::uint64_t> buckets = std::vector<std::uint64_t>(40, 0);

  void record(std::uint64_t us) {
    ++count;
    min_us = std::min(min_us, us);
    max_us = std::max(max_us, us);
    total_us += us;
    std::size_t b = 0;
    while (us > 0 && b + 1 < buckets.size()) {
      us >>= 1;
      ++b;
    }
    ++buckets[b];
  }
};

/// One run_complete observation attributed to its case label.
struct RunSample {
  std::uint64_t ts_micros = 0;
  bool primary = false;
};

/// An open span on some thread's stack.
struct OpenSpan {
  std::uint32_t name_id = 0;
  std::uint64_t ts_micros = 0;
};

/// First whitespace-delimited token of a case label ("ykd p=64 ..." ->
/// "ykd"); whole label when it has no spaces.
std::string algorithm_of(std::string_view label) {
  const std::size_t space = label.find(' ');
  return std::string(label.substr(0, space));
}

/// Case labels contain spaces ("ykd p=64 c=6 r=4 fresh"); structural span
/// names ("run", "scout", "case", ...) do not carry coordinates.  A span
/// whose name contains "p=" is a case span.
bool is_case_label(std::string_view name) {
  return name.find("p=") != std::string_view::npos;
}

std::string human_us(std::uint64_t us) {
  char buf[32];
  if (us >= 1'000'000) {
    std::snprintf(buf, sizeof buf, "%.2fs", static_cast<double>(us) / 1e6);
  } else if (us >= 1000) {
    std::snprintf(buf, sizeof buf, "%.2fms", static_cast<double>(us) / 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%lluus",
                  static_cast<unsigned long long>(us));
  }
  return buf;
}

void print_span_stats(const std::map<std::string, SpanStats>& spans) {
  if (spans.empty()) return;
  std::cout << "\nspan latencies\n";
  for (const auto& [name, st] : spans) {
    if (st.count == 0) continue;
    std::cout << "  " << name << ": n=" << st.count
              << " min=" << human_us(st.min_us)
              << " mean=" << human_us(st.total_us / st.count)
              << " max=" << human_us(st.max_us) << "\n";
    // The log2 histogram, trimmed to the populated range.
    std::size_t lo = st.buckets.size();
    std::size_t hi = 0;
    for (std::size_t b = 0; b < st.buckets.size(); ++b) {
      if (st.buckets[b] != 0) {
        lo = std::min(lo, b);
        hi = std::max(hi, b);
      }
    }
    std::uint64_t peak = 0;
    for (std::size_t b = lo; b <= hi && lo < st.buckets.size(); ++b) {
      peak = std::max(peak, st.buckets[b]);
    }
    for (std::size_t b = lo; b <= hi && lo < st.buckets.size(); ++b) {
      const std::uint64_t floor_us = b == 0 ? 0 : (std::uint64_t{1} << (b - 1));
      const int bar = peak == 0 ? 0
                                : static_cast<int>(st.buckets[b] * 40 / peak);
      std::cout << "    >=" << human_us(floor_us) << "  "
                << std::string(static_cast<std::size_t>(bar), '#') << " "
                << st.buckets[b] << "\n";
    }
  }
}

void print_availability(
    const std::map<std::string, std::vector<RunSample>>& by_algorithm,
    std::uint64_t trace_end_us) {
  if (by_algorithm.empty()) return;
  std::cout << "\navailability (run_complete instants; '#'=all runs ended "
               "with a primary, '.'=none)\n";
  constexpr std::size_t kBins = 50;
  static const char kShades[] = ".:-=+*%#";  // 8 levels
  for (const auto& [algorithm, samples] : by_algorithm) {
    std::uint64_t primaries = 0;
    for (const RunSample& s : samples) primaries += s.primary ? 1 : 0;
    const double rate =
        samples.empty()
            ? 0.0
            : static_cast<double>(primaries) / static_cast<double>(samples.size());
    char pct[16];
    std::snprintf(pct, sizeof pct, "%5.1f%%", rate * 100.0);
    // Time-bucketed strip over [0, trace_end].
    std::string strip(kBins, ' ');
    std::vector<std::uint64_t> runs(kBins, 0);
    std::vector<std::uint64_t> prim(kBins, 0);
    const std::uint64_t span_us = std::max<std::uint64_t>(trace_end_us, 1);
    for (const RunSample& s : samples) {
      std::size_t bin = static_cast<std::size_t>(
          static_cast<unsigned long long>(s.ts_micros) * kBins / span_us);
      bin = std::min(bin, kBins - 1);
      ++runs[bin];
      prim[bin] += s.primary ? 1 : 0;
    }
    for (std::size_t b = 0; b < kBins; ++b) {
      if (runs[b] == 0) continue;
      const std::size_t level = prim[b] * 7 / runs[b];
      strip[b] = kShades[level];
    }
    std::cout << "  " << algorithm << ": runs=" << samples.size()
              << " primary=" << pct << "  [" << strip << "]\n";
  }
}

int export_chrome(const TraceFile& trace, const std::string& path) {
  dynvote::JsonWriter out;
  out.begin_object().key("traceEvents").begin_array();
  for (const TraceEvent& ev : trace.events) {
    const std::string& name = trace.names[ev.name_id];
    out.begin_object();
    out.key("name").value(name);
    out.key("cat").value(is_case_label(name) ? "case" : "dynvote");
    const char* phase = "i";
    if (ev.kind == EventKind::kBegin) phase = "B";
    if (ev.kind == EventKind::kEnd) phase = "E";
    out.key("ph").value(phase);
    if (ev.kind == EventKind::kInstant) out.key("s").value("t");
    out.key("ts").value(ev.ts_micros);
    out.key("pid").value(std::uint64_t{0});
    out.key("tid").value(static_cast<std::uint64_t>(ev.tid));
    if (ev.kind != EventKind::kEnd) {
      out.key("args").begin_object();
      out.key("a0").value(ev.a0);
      out.key("a1").value(ev.a1);
      out.end_object();
    }
    out.end_object();
  }
  out.end_array();
  out.key("displayTimeUnit").value("ms");
  out.end_object();

  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) {
    std::cerr << "dvtrace: cannot write " << path << "\n";
    return 2;
  }
  file << out.str() << "\n";
  if (!file.flush()) {
    std::cerr << "dvtrace: write to " << path << " failed\n";
    return 2;
  }
  std::cout << "\nwrote Chrome trace JSON: " << path << " ("
            << trace.events.size() << " events)\n";
  return 0;
}

int analyze(const TraceFile& trace, const std::string& chrome_out) {
  std::cout << dynvote::obs::kEventsSchema << ": " << trace.events.size()
            << " events, " << trace.names.size() << " names";
  if (trace.dropped != 0) {
    std::cout << ", " << trace.dropped
              << " overwritten in ring buffers (raise DV_TRACE_BUF)";
  }
  std::cout << "\n";

  // Pass 1: per-name counts.
  std::vector<std::uint64_t> counts(trace.names.size(), 0);
  std::uint64_t trace_end_us = 0;
  for (const TraceEvent& ev : trace.events) {
    ++counts[ev.name_id];
    trace_end_us = std::max(trace_end_us, ev.ts_micros);
  }
  std::cout << "\nevent counts\n";
  for (std::size_t n = 0; n < trace.names.size(); ++n) {
    if (counts[n] != 0) {
      std::cout << "  " << trace.names[n] << ": " << counts[n] << "\n";
    }
  }

  // Pass 2: walk per-thread span stacks to pair begins with ends, and
  // attribute run-level events to the innermost enclosing case label.
  std::map<std::uint16_t, std::vector<OpenSpan>> stacks;
  std::map<std::string, SpanStats> spans;
  std::map<std::string, std::vector<RunSample>> runs_by_algorithm;
  std::uint64_t unmatched = 0;
  for (const TraceEvent& ev : trace.events) {
    std::vector<OpenSpan>& stack = stacks[ev.tid];
    const std::string& name = trace.names[ev.name_id];
    switch (ev.kind) {
      case EventKind::kBegin:
        stack.push_back(OpenSpan{ev.name_id, ev.ts_micros});
        break;
      case EventKind::kEnd: {
        // Spans close LIFO per thread; a ring overwrite can orphan an
        // end, so search down for the matching begin instead of blindly
        // popping.
        auto it = std::find_if(
            stack.rbegin(), stack.rend(),
            [&](const OpenSpan& open) { return open.name_id == ev.name_id; });
        if (it == stack.rend()) {
          ++unmatched;
          break;
        }
        const std::uint64_t duration = ev.ts_micros - it->ts_micros;
        spans[name].record(duration);
        if (name == "run") {
          // Attribute the run's latency to its algorithm via the
          // enclosing case span, when one is open on this thread.
          for (auto up = stack.rbegin(); up != stack.rend(); ++up) {
            const std::string& outer = trace.names[up->name_id];
            if (is_case_label(outer)) {
              spans["run @ " + algorithm_of(outer)].record(duration);
              break;
            }
          }
        }
        stack.erase(std::next(it).base());
        break;
      }
      case EventKind::kInstant:
        if (name == "run_complete") {
          std::string algorithm = "(no case span)";
          for (auto up = stack.rbegin(); up != stack.rend(); ++up) {
            const std::string& outer = trace.names[up->name_id];
            if (is_case_label(outer)) {
              algorithm = algorithm_of(outer);
              break;
            }
          }
          runs_by_algorithm[algorithm].push_back(
              RunSample{ev.ts_micros, ev.a1 != 0});
        }
        break;
    }
  }
  if (unmatched != 0) {
    std::cout << "\n(" << unmatched
              << " span ends without a matching begin -- ring overwrote "
                 "the opening events)\n";
  }

  print_span_stats(spans);
  print_availability(runs_by_algorithm, trace_end_us);

  if (!chrome_out.empty()) return export_chrome(trace, chrome_out);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string input;
  std::string chrome_out;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--chrome") {
      if (i + 1 >= argc) return usage(argv[0]);
      chrome_out = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (input.empty()) {
      input = arg;
    } else {
      return usage(argv[0]);
    }
  }
  if (input.empty()) return usage(argv[0]);

  std::ifstream file(input, std::ios::binary);
  if (!file) {
    std::cerr << "dvtrace: cannot read " << input << "\n";
    return 2;
  }
  std::vector<char> raw((std::istreambuf_iterator<char>(file)),
                        std::istreambuf_iterator<char>());
  try {
    const TraceFile trace = dynvote::obs::TraceFile::decode(
        std::span<const std::byte>(reinterpret_cast<const std::byte*>(raw.data()),
                                   raw.size()));
    return analyze(trace, chrome_out);
  } catch (const dynvote::DecodeError& err) {
    std::cerr << "dvtrace: " << input << ": " << err.what() << "\n";
    return 2;
  }
}
