// The parallel sweep engine.
//
// Every figure in the thesis is a sweep: a cross-product of algorithms x
// change counts x rates x mode, each cell simulated for hundreds of runs.
// The seeding discipline (a run's schedule is a pure function of the case
// coordinates and the run index, never of the algorithm) makes fresh-start
// cells embarrassingly parallel: idle workers claim contiguous run chunks
// from any unfinished case (work stealing), and chunk results merge in run
// order, bit-identical to the serial `run_case` path -- same success
// vector, same histograms, same counters (the test suite asserts this for
// every algorithm and both modes).
//
// Cascading cases thread one simulated world through all their runs, which
// used to force them serial within a case.  They now pipeline through
// simulation snapshots (sim/snapshot.hpp): a scout worker replays the
// case's trajectory with invariant checking and wire measurement off --
// neither affects the trajectory -- emitting a checkpoint at each shard
// boundary, and other workers restore those checkpoints and re-run the
// shards fully instrumented, in parallel.  Shard merges are bit-identical
// to the serial path here too.
//
// DV_JOBS controls the worker count (default: hardware concurrency); every
// sweep with a name also writes a versioned JSON manifest, see artifact.hpp.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "runner/progress.hpp"
#include "sim/batch_driver.hpp"
#include "sim/experiment.hpp"
#include "util/spill_arena.hpp"

namespace dynvote {

/// One cell of a sweep: a case plus the label it is reported under.
struct SweepCase {
  /// Output/manifest label for the algorithm, e.g. "ykd" or
  /// "mr1p[adopt]".  Required when `spec.algorithm_factory` is set;
  /// defaulted from `spec.algorithm` otherwise.
  std::string algorithm;
  CaseSpec spec;
};

struct SweepSpec {
  /// Artifact stem (manifest becomes $DV_ARTIFACT_DIR/BENCH_<name>.json).
  /// Empty = no artifact.
  std::string name;
  std::vector<SweepCase> cases;
  /// Worker threads; 0 means DV_JOBS, falling back to hardware concurrency.
  std::size_t jobs = 0;
  /// Smallest shard a case is split into -- honored for fresh-start chunks
  /// AND cascading snapshot shards.  0 = auto (currently 32).  Shard
  /// boundaries never affect results (merge is exact); this only bounds
  /// scheduling and scout overhead for tiny cases.
  std::uint64_t min_shard_runs = 0;
  /// Progress feed; nullptr = default_progress_sink() (stderr, silenced
  /// by DV_PROGRESS=0).
  ProgressSink* progress = nullptr;
};

/// One finished cell, in the same order as SweepSpec::cases.
struct CaseOutcome {
  std::string algorithm;
  CaseSpec spec;
  CaseResult result;
  /// Summed worker time over this case's shards -- including any scout
  /// replay -- i.e. its cost, regardless of how many workers shared it.
  double compute_seconds = 0.0;
  double runs_per_sec = 0.0;
  /// Simulation throughput over the same compute time: message rounds and
  /// (message, recipient) deliveries executed per second.
  double rounds_per_sec = 0.0;
  double deliveries_per_sec = 0.0;
  /// Steady-state heap allocations per message round, measured by a small
  /// warmed-up probe world after the case finishes.  Requires the counting
  /// allocator (dv_alloc_hook) to be linked into the binary; negative when
  /// it is not (the manifest then omits the field).
  double steady_allocs_per_round = -1.0;
  /// Result-producing work units this case was executed as (1 = serial).
  std::size_t shards = 0;
  /// Times a unit of this case was claimed by a different worker than the
  /// previous one -- scheduling telemetry, never part of the results.
  std::size_t steals = 0;
  /// Batched-engine telemetry summed over this case's fresh-start shards
  /// (sim/batch_driver.hpp): lockstep width, prefix-sharing hit counts,
  /// fast-forwarded rounds.  `batch.runs == 0` for cascading cases, which
  /// never batch.  Volatile: rendered in the manifest's volatile block
  /// only, never part of the results fingerprint.
  BatchTelemetry batch;
};

/// Per-connection telemetry from one fabric worker (src/fabric).  Declared
/// here, next to the other sweep telemetry, because the manifest writer
/// renders it; the runner layer never depends on the fabric itself.
struct FabricWorkerTelemetry {
  /// "hello" build string the worker announced, or "local" for the
  /// coordinator's own executor threads.
  std::string peer;
  std::uint64_t slots = 0;
  std::uint64_t units_done = 0;
  /// Simulate seconds this worker contributed (from its result frames).
  double busy_seconds = 0.0;
  /// The connection ended by death detection, not clean shutdown.
  bool died = false;
};

/// Scheduling telemetry for a fabric (multi-host) sweep.  Volatile by
/// construction: never part of the results fingerprint, which is what lets
/// a distributed run assert bit-identity against a single-host one.
struct FabricTelemetry {
  /// False for plain in-process sweeps; the manifest omits the block.
  bool used = false;
  std::uint64_t units_issued = 0;
  /// Units issued again after a lease deadline or a worker death.
  std::uint64_t units_reissued = 0;
  /// Units granted in response to worker steal requests (as opposed to
  /// the automatic top-up after each result).
  std::uint64_t units_stolen = 0;
  /// Late results for units already completed elsewhere, dropped.
  std::uint64_t duplicate_results = 0;
  std::uint64_t workers_connected = 0;
  std::uint64_t workers_died = 0;
  std::vector<FabricWorkerTelemetry> workers;
};

struct SweepResult {
  std::vector<CaseOutcome> cases;
  double wall_seconds = 0.0;
  std::size_t jobs = 1;
  /// Manifest path actually written; empty when artifacts were disabled.
  std::string artifact_path;
  /// Events file written when tracing was armed (DV_TRACE / --trace-out);
  /// empty otherwise.
  std::string trace_path;
  /// Populated by fabric coordinators (fabric/coordinator.hpp); default
  /// (used == false) for in-process sweeps.
  FabricTelemetry fabric;
  /// This sweep's metrics delta (src/obs), rendered into the manifest's
  /// volatile `observability` block.  Fabric coordinators fold aggregated
  /// worker snapshots in as well.  Never part of the results fingerprint.
  obs::MetricsSnapshot metrics;
  /// Spill-arena activity during this sweep, merged across worker threads
  /// (util/spill_arena.hpp): counter fields are deltas scoped to the sweep,
  /// byte gauges are end-of-sweep absolutes.  Volatile telemetry.
  SpillArenaStats arena;
};

/// Execute the sweep across the worker pool and (when `spec.name` is set)
/// record its manifest.  Results are deterministic: independent of DV_JOBS,
/// shard sizing, and worker scheduling.
SweepResult run_sweep(const SweepSpec& spec);

/// Arm the trace recorder when DV_TRACE asks for it (ring sizing from
/// DV_TRACE_BUF).  Idempotent; called by run_sweep and the fabric
/// coordinator so both paths honor the same knobs.
void maybe_enable_trace_from_env();

/// Drain the trace rings and write this sweep's dynvote.events.v1 file:
/// to DV_TRACE_OUT verbatim when set, else TRACE_<sweep_name>.events under
/// the artifact-directory discipline.  Returns the path written; empty
/// when tracing is off or the write was disabled/failed.  Caller must have
/// quiesced emitting threads (see obs/trace.hpp).
std::string drain_trace_to_artifact(const std::string& sweep_name);

/// DV_JOBS, else hardware concurrency, never zero.
std::size_t jobs_from_env();

/// Build the standard availability grid -- every algorithm crossed with
/// every rate at one change count and mode, in algorithm-major order (the
/// layout all the figure benches share).
std::vector<SweepCase> availability_grid(
    const std::vector<AlgorithmKind>& algorithms,
    const std::vector<double>& rates, std::size_t changes, RunMode mode,
    std::uint64_t runs, std::uint64_t base_seed, std::size_t processes = 64);

/// Human-readable case coordinates for progress lines and error messages,
/// e.g. "ykd p=64 c=6 r=4 cascading".
std::string case_label(const SweepCase& sweep_case);

}  // namespace dynvote
