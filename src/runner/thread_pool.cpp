#include "runner/thread_pool.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace dynvote {

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t count = std::max<std::size_t>(1, threads);
  workers_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_ready_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  DV_REQUIRE(task != nullptr, "ThreadPool::submit requires a task");
  {
    std::unique_lock<std::mutex> lock(mutex_);
    DV_REQUIRE(!shutdown_, "ThreadPool::submit after shutdown");
    queue_.push_back(std::move(task));
  }
  work_ready_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
  if (first_error_) {
    std::exception_ptr error = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(error);
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_ready_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with the queue drained
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    try {
      task();
    } catch (...) {
      std::unique_lock<std::mutex> lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      std::unique_lock<std::mutex> lock(mutex_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace dynvote
