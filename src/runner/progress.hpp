// Live observability for sweep execution.
//
// The runner reports every finished case through a ProgressSink: what the
// case was, how long its shards took, the runs/sec they achieved, and how
// many invariant checks the safety checker executed.  The same numbers go
// into the sweep's JSON manifest, so the live feed and the recorded
// artifact can never disagree.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>

namespace dynvote {

/// Telemetry for one completed case.
struct CaseTelemetry {
  std::string label;               // e.g. "ykd changes=6 rate=4"
  std::uint64_t runs = 0;
  double compute_seconds = 0.0;    // summed worker time across shards
  double runs_per_sec = 0.0;
  std::uint64_t invariant_checks = 0;
  double availability_percent = 0.0;
};

class ProgressSink {
 public:
  virtual ~ProgressSink() = default;

  /// Called once per case, after its shards are merged.  `done`/`total`
  /// count cases.  Calls are serialized by the runner (never concurrent)
  /// but may come from worker threads in any case order.
  virtual void case_done(const CaseTelemetry& telemetry, std::size_t done,
                         std::size_t total) = 0;

  /// Called once, after the last case.
  virtual void sweep_done(const std::string& sweep_name, std::size_t cases,
                          double wall_seconds) = 0;
};

/// Discards everything.
class NullProgress final : public ProgressSink {
 public:
  void case_done(const CaseTelemetry&, std::size_t, std::size_t) override {}
  void sweep_done(const std::string&, std::size_t, double) override {}
};

/// One line per case on a stream (stderr by default), so table output on
/// stdout stays machine-readable.
class StreamProgress final : public ProgressSink {
 public:
  explicit StreamProgress(std::ostream& os);
  void case_done(const CaseTelemetry& telemetry, std::size_t done,
                 std::size_t total) override;
  void sweep_done(const std::string& sweep_name, std::size_t cases,
                  double wall_seconds) override;

 private:
  std::ostream& os_;
};

/// The sink benches use when the caller did not supply one: a
/// StreamProgress on stderr, or a NullProgress when DV_PROGRESS=0.
ProgressSink& default_progress_sink();

}  // namespace dynvote
