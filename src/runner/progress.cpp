#include "runner/progress.hpp"

#include <iostream>

#include "sim/table.hpp"
#include "util/env.hpp"

namespace dynvote {

StreamProgress::StreamProgress(std::ostream& os) : os_(os) {}

void StreamProgress::case_done(const CaseTelemetry& telemetry, std::size_t done,
                               std::size_t total) {
  os_ << "[sweep " << done << "/" << total << "] " << telemetry.label << ": "
      << format_double(telemetry.availability_percent) << "% available, "
      << telemetry.runs << " runs in "
      << format_double(telemetry.compute_seconds, 2) << "s ("
      << format_double(telemetry.runs_per_sec, 0) << " runs/s, "
      << telemetry.invariant_checks << " invariant checks)\n";
}

void StreamProgress::sweep_done(const std::string& sweep_name,
                                std::size_t cases, double wall_seconds) {
  os_ << "[sweep] " << sweep_name << ": " << cases << " cases in "
      << format_double(wall_seconds, 2) << "s wall\n";
}

ProgressSink& default_progress_sink() {
  static NullProgress null_sink;
  static StreamProgress stderr_sink(std::cerr);
  if (!env_flag("DV_PROGRESS", true)) return null_sink;
  return stderr_sink;
}

}  // namespace dynvote
