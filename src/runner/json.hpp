// Dependency-free JSON emission (and a small validator) for the sweep
// runner's artifacts.
//
// The writer is a streaming, comma-managing serializer: callers nest
// begin_object/begin_array and key/value calls and get syntactically valid
// RFC-8259 output (the test suite and the CI smoke sweep both re-parse
// what it emits).  Doubles print round-trippably via %.17g with NaN and
// infinities -- which JSON cannot represent -- emitted as null.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace dynvote {

class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Object member name; must be followed by a value or container.
  JsonWriter& key(std::string_view name);

  JsonWriter& value(std::string_view text);
  JsonWriter& value(const char* text);
  JsonWriter& value(double number);
  JsonWriter& value(std::uint64_t number);
  JsonWriter& value(std::int64_t number);
  JsonWriter& value(bool flag);
  JsonWriter& null();

  /// The document so far.  Call once nesting is balanced.
  const std::string& str() const;

 private:
  void separate();

  enum class Frame { kObject, kArray };
  std::string out_;
  std::vector<Frame> stack_;
  bool needs_comma_ = false;
  bool after_key_ = false;
};

/// Escape `text` as a JSON string literal, including the quotes.
std::string json_quote(std::string_view text);

/// Strict structural validation of one JSON document (used by tests to
/// check emitted manifests without an external parser).
bool json_is_valid(std::string_view document);

}  // namespace dynvote
