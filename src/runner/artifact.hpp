// Versioned JSON run artifacts ("manifests") for sweeps.
//
// One manifest per sweep, written next to the CSV/stdout outputs the
// benches already produce: the full configuration (cases, seeds, runs),
// provenance (schema version, git describe, creation time, DV_JOBS), and
// per-case measurements -- availability, in-run availability, ambiguity
// histograms, wire stats, invariant-check counts, wall/compute time and
// runs/sec.  This is the machine-readable perf/availability trajectory of
// the repo: comparing two manifests of the same sweep across commits shows
// both statistical drift and speed drift.
//
// Layout (schema "dynvote.sweep.v3"):
//   {
//     "schema": "dynvote.sweep.v3",
//     "sweep": "<name>", "created_unix": ..., "git_describe": "...",
//     "jobs": N, "wall_seconds": ..., "total_runs": ...,
//     "results_fingerprint": "<hex>",
//     "cases": [ { "algorithm": "...", "processes": ..., "changes": ...,
//                  "rate": ..., "crash_fraction": ..., "mode": "...",
//                  "base_seed": ..., "runs": ..., "successes": ...,
//                  "availability_percent": ...,
//                  "in_run_availability_percent": ...,
//                  "stable_histogram": {"buckets": [..], "samples": ..,
//                                       "max_observed": ..},
//                  "in_progress_histogram": {...},
//                  "wire": {"messages_sent": .., "max_message_bytes": ..,
//                           "total_message_bytes": ..},
//                  "invariant_checks": .., "total_rounds": ..,
//                  "total_changes": .., "compute_seconds": ..,
//                  "runs_per_sec": .., "rounds_per_sec": ..,
//                  "total_deliveries": .., "deliveries_per_sec": ..,
//                  "steady_allocs_per_round": ..,   <- only when the
//                                counting allocator is linked (see
//                                util/alloc_stats.hpp)
//                  "shards": .., "steals": .. }, ... ],
//     "observability": { "counters": {name: value, ...},
//                        "gauges": {name: value, ...},
//                        "histograms": [ { "name": "...", "count": ..,
//                                          "sum": ..,
//                                          "buckets": [[pow2_index, n],..]
//                                        }, ... ] }
//                          <- src/obs metrics recorded during the sweep
//                             (local threads + aggregated fabric workers);
//                             volatile telemetry, never fingerprinted
//     "fabric": { "units_issued": .., "units_reissued": ..,
//                 "units_stolen": .., "duplicate_results": ..,
//                 "workers_connected": .., "workers_died": ..,
//                 "workers": [ { "peer": "...", "slots": ..,
//                                "units_done": .., "busy_seconds": ..,
//                                "died": bool }, ... ] }
//                          <- multi-host sweeps only (fabric/); volatile
//                             scheduling telemetry, never fingerprinted
//   }
//
// v3 adds the perf telemetry block (rounds_per_sec, total_deliveries,
// deliveries_per_sec, steady_allocs_per_round) to each case.
//
// Everything timing- or scheduling-flavored (created_unix, git_describe,
// jobs, wall_seconds, compute_seconds, the per-sec rates, allocation
// telemetry, shards, steals) is legitimately volatile between reruns.  The
// deterministic remainder is exposed separately as `manifest_results_json`,
// whose bytes must be identical for any DV_JOBS / shard sizing /
// scheduling, and whose hash is stamped into the full manifest as
// "results_fingerprint" so two manifests can be compared for statistical
// drift at a glance.  That results document is pinned to its own schema
// string ("dynvote.sweep.v2", the layout it has had since v2) precisely so
// a manifest-layout bump like v3 -- which only adds volatile telemetry --
// cannot move the fingerprint of unchanged simulation results.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "runner/sweep.hpp"

namespace dynvote {

/// Schema identifier stamped into every manifest; bump on layout changes.
inline constexpr const char* kSweepManifestSchema = "dynvote.sweep.v3";

/// Schema identifier embedded in the deterministic results document that
/// `results_fingerprint` hashes.  Deliberately NOT bumped with the
/// manifest schema: its layout is unchanged since v2, and keeping the
/// string fixed keeps fingerprints comparable across manifest versions.
inline constexpr const char* kSweepResultsSchema = "dynvote.sweep.v2";

/// Render the manifest document for a finished sweep.
std::string manifest_json(const SweepSpec& spec, const SweepResult& result);

/// Render only the deterministic subset -- sweep name, case coordinates,
/// and measured results; no timestamps, timing, worker counts, or shard
/// telemetry.  Bit-identical across any parallelism or shard sizing; the
/// runner tests compare these documents directly.
std::string manifest_results_json(const SweepSpec& spec,
                                  const SweepResult& result);

/// FNV-1a hash of `manifest_results_json`, as 16 hex digits.
std::string results_fingerprint(const SweepSpec& spec,
                                const SweepResult& result);

/// Write the manifest to `<artifact dir>/BENCH_<spec.name>.json` and
/// return the path.  The directory comes from DV_ARTIFACT_DIR (default
/// "artifacts", created on demand; "none"/"off"/"0" disables artifacts,
/// returning "").  Failures warn and return "" -- a sweep's results are
/// never discarded because a disk write failed.
std::string write_manifest(const SweepSpec& spec, const SweepResult& result);

/// Write `document` (a newline is appended) to `<artifact dir>/<filename>`
/// under the same DV_ARTIFACT_DIR discipline as `write_manifest`.  Returns
/// the path written, or "" when artifacts are disabled or the write
/// failed (failures warn, they never throw).  Other emitters -- the
/// microbenchmark manifest, notably -- share this so every artifact obeys
/// the one environment knob.
std::string write_artifact_document(const std::string& filename,
                                    const std::string& document);

/// Binary sibling of `write_artifact_document` (no trailing newline):
/// writes `bytes` to `<artifact dir>/<filename>` under the same
/// DV_ARTIFACT_DIR discipline.  Used for dynvote.events.v1 trace files.
std::string write_artifact_bytes(const std::string& filename,
                                 const std::vector<std::byte>& bytes);

/// The `git describe` string baked into this build ("unknown" when the
/// build was configured outside a git checkout).
const char* artifact_git_describe();

}  // namespace dynvote
