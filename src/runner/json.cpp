#include "runner/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>

#include "util/assert.hpp"

namespace dynvote {

namespace {

void append_escaped(std::string& out, std::string_view text) {
  out.push_back('"');
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

}  // namespace

std::string json_quote(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  append_escaped(out, text);
  return out;
}

void JsonWriter::separate() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  DV_REQUIRE(stack_.empty() || stack_.back() == Frame::kArray,
             "object members need a key() first");
  if (needs_comma_) out_.push_back(',');
}

JsonWriter& JsonWriter::begin_object() {
  separate();
  out_.push_back('{');
  stack_.push_back(Frame::kObject);
  needs_comma_ = false;
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  DV_REQUIRE(!stack_.empty() && stack_.back() == Frame::kObject && !after_key_,
             "end_object outside an object");
  out_.push_back('}');
  stack_.pop_back();
  needs_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  separate();
  out_.push_back('[');
  stack_.push_back(Frame::kArray);
  needs_comma_ = false;
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  DV_REQUIRE(!stack_.empty() && stack_.back() == Frame::kArray && !after_key_,
             "end_array outside an array");
  out_.push_back(']');
  stack_.pop_back();
  needs_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  DV_REQUIRE(!stack_.empty() && stack_.back() == Frame::kObject && !after_key_,
             "key() is only valid directly inside an object");
  if (needs_comma_) out_.push_back(',');
  append_escaped(out_, name);
  out_.push_back(':');
  after_key_ = true;
  needs_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view text) {
  separate();
  append_escaped(out_, text);
  needs_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const char* text) {
  return value(std::string_view(text));
}

JsonWriter& JsonWriter::value(double number) {
  if (!std::isfinite(number)) return null();
  separate();
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", number);
  out_ += buf;
  needs_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t number) {
  separate();
  out_ += std::to_string(number);
  needs_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t number) {
  separate();
  out_ += std::to_string(number);
  needs_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(bool flag) {
  separate();
  out_ += flag ? "true" : "false";
  needs_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::null() {
  separate();
  out_ += "null";
  needs_comma_ = true;
  return *this;
}

const std::string& JsonWriter::str() const {
  DV_REQUIRE(stack_.empty() && !after_key_,
             "JSON document has unbalanced nesting");
  return out_;
}

// ---------------------------------------------------------------------------
// Validator: a recursive-descent pass over one document.

namespace {

struct Parser {
  std::string_view text;
  std::size_t pos = 0;
  int depth = 0;
  static constexpr int kMaxDepth = 256;

  void skip_ws() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r')) {
      ++pos;
    }
  }

  bool eat(char c) {
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }

  bool literal(std::string_view word) {
    if (text.substr(pos, word.size()) != word) return false;
    pos += word.size();
    return true;
  }

  bool string() {
    if (!eat('"')) return false;
    while (pos < text.size()) {
      const char c = text[pos++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return false;
      if (c == '\\') {
        if (pos >= text.size()) return false;
        const char esc = text[pos++];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            if (pos >= text.size() || !std::isxdigit(static_cast<unsigned char>(text[pos]))) {
              return false;
            }
            ++pos;
          }
        } else if (esc != '"' && esc != '\\' && esc != '/' && esc != 'b' &&
                   esc != 'f' && esc != 'n' && esc != 'r' && esc != 't') {
          return false;
        }
      }
    }
    return false;  // unterminated
  }

  bool digits() {
    const std::size_t start = pos;
    while (pos < text.size() && std::isdigit(static_cast<unsigned char>(text[pos]))) ++pos;
    return pos > start;
  }

  bool number() {
    eat('-');
    if (eat('0')) {
      // leading zero must not be followed by more digits
      if (pos < text.size() && std::isdigit(static_cast<unsigned char>(text[pos]))) return false;
    } else if (!digits()) {
      return false;
    }
    if (eat('.') && !digits()) return false;
    if (pos < text.size() && (text[pos] == 'e' || text[pos] == 'E')) {
      ++pos;
      if (pos < text.size() && (text[pos] == '+' || text[pos] == '-')) ++pos;
      if (!digits()) return false;
    }
    return true;
  }

  bool value() {
    if (++depth > kMaxDepth) return false;
    skip_ws();
    bool ok = false;
    if (pos >= text.size()) {
      ok = false;
    } else if (text[pos] == '{') {
      ++pos;
      skip_ws();
      if (eat('}')) {
        ok = true;
      } else {
        for (;;) {
          skip_ws();
          if (!string()) { ok = false; break; }
          skip_ws();
          if (!eat(':')) { ok = false; break; }
          if (!value()) { ok = false; break; }
          skip_ws();
          if (eat(',')) continue;
          ok = eat('}');
          break;
        }
      }
    } else if (text[pos] == '[') {
      ++pos;
      skip_ws();
      if (eat(']')) {
        ok = true;
      } else {
        for (;;) {
          if (!value()) { ok = false; break; }
          skip_ws();
          if (eat(',')) continue;
          ok = eat(']');
          break;
        }
      }
    } else if (text[pos] == '"') {
      ok = string();
    } else if (text[pos] == 't') {
      ok = literal("true");
    } else if (text[pos] == 'f') {
      ok = literal("false");
    } else if (text[pos] == 'n') {
      ok = literal("null");
    } else {
      ok = number();
    }
    --depth;
    return ok;
  }
};

}  // namespace

bool json_is_valid(std::string_view document) {
  Parser parser{document};
  if (!parser.value()) return false;
  parser.skip_ws();
  return parser.pos == document.size();
}

}  // namespace dynvote
