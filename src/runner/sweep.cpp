#include "runner/sweep.hpp"

#include <atomic>
#include <chrono>
#include <mutex>
#include <sstream>
#include <thread>

#include "runner/artifact.hpp"
#include "runner/thread_pool.hpp"
#include "sim/table.hpp"
#include "util/assert.hpp"
#include "util/env.hpp"

namespace dynvote {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// A unit of worker execution: one whole cascading case, or one contiguous
/// run range of a fresh-start case.
struct Shard {
  std::size_t case_index;
  std::size_t shard_index;
  std::uint64_t first_run;
  std::uint64_t run_count;
};

/// Shard sizing: enough shards to keep every worker busy with a few
/// helpings per case, but never below the configured floor -- boundaries
/// are a pure performance knob, results are identical for any split.
std::uint64_t shard_size_for(std::uint64_t runs, std::size_t jobs,
                             std::uint64_t min_shard_runs) {
  const std::uint64_t floor = std::max<std::uint64_t>(1, min_shard_runs);
  const std::uint64_t target = runs / (static_cast<std::uint64_t>(jobs) * 4);
  return std::max(floor, target);
}

}  // namespace

std::size_t jobs_from_env() {
  const unsigned hardware = std::thread::hardware_concurrency();
  const std::uint64_t jobs =
      env_u64("DV_JOBS", hardware == 0 ? 1 : hardware);
  return jobs == 0 ? 1 : static_cast<std::size_t>(jobs);
}

std::string case_label(const SweepCase& sweep_case) {
  const CaseSpec& spec = sweep_case.spec;
  std::ostringstream os;
  os << (sweep_case.algorithm.empty() ? to_string(spec.algorithm)
                                      : sweep_case.algorithm)
     << " p=" << spec.processes << " c=" << spec.changes
     << " r=" << format_double(spec.mean_rounds, 0);
  if (spec.crash_fraction > 0.0) {
    os << " crash=" << format_double(spec.crash_fraction, 2);
  }
  os << ' ' << to_string(spec.mode);
  return os.str();
}

std::vector<SweepCase> availability_grid(
    const std::vector<AlgorithmKind>& algorithms,
    const std::vector<double>& rates, std::size_t changes, RunMode mode,
    std::uint64_t runs, std::uint64_t base_seed, std::size_t processes) {
  std::vector<SweepCase> cases;
  cases.reserve(algorithms.size() * rates.size());
  for (AlgorithmKind kind : algorithms) {
    for (double rate : rates) {
      SweepCase c;
      c.algorithm = to_string(kind);
      c.spec.algorithm = kind;
      c.spec.processes = processes;
      c.spec.changes = changes;
      c.spec.mean_rounds = rate;
      c.spec.runs = runs;
      c.spec.mode = mode;
      c.spec.base_seed = base_seed;
      cases.push_back(std::move(c));
    }
  }
  return cases;
}

SweepResult run_sweep(const SweepSpec& spec) {
  const auto sweep_start = Clock::now();
  const std::size_t jobs = spec.jobs != 0 ? spec.jobs : jobs_from_env();
  ProgressSink& progress =
      spec.progress != nullptr ? *spec.progress : default_progress_sink();

  const std::size_t case_count = spec.cases.size();
  SweepResult result;
  result.jobs = jobs;
  result.cases.resize(case_count);

  // Plan: carve every case into shards.  Cascading cases are one shard
  // (their runs share a single simulated world); fresh-start cases split
  // into contiguous run ranges.
  std::vector<Shard> shards;
  std::vector<std::size_t> shards_per_case(case_count, 0);
  for (std::size_t i = 0; i < case_count; ++i) {
    const CaseSpec& cs = spec.cases[i].spec;
    if (cs.mode == RunMode::kFreshStart && jobs > 1) {
      const std::uint64_t size =
          shard_size_for(cs.runs, jobs, spec.min_shard_runs);
      std::uint64_t first = 0;
      do {
        const std::uint64_t count = std::min(size, cs.runs - first);
        shards.push_back(Shard{i, shards_per_case[i], first, count});
        ++shards_per_case[i];
        first += count;
      } while (first < cs.runs);
    } else {
      shards.push_back(Shard{i, 0, 0, cs.runs});
      shards_per_case[i] = 1;
    }
  }

  // Execution state, indexed by (case, shard) -- workers write only their
  // own slots, so output never depends on scheduling order.
  std::vector<std::vector<CaseResult>> partials(case_count);
  std::vector<std::vector<double>> shard_seconds(case_count);
  std::vector<std::atomic<std::size_t>> remaining(case_count);
  for (std::size_t i = 0; i < case_count; ++i) {
    partials[i].resize(shards_per_case[i]);
    shard_seconds[i].resize(shards_per_case[i], 0.0);
    remaining[i].store(shards_per_case[i], std::memory_order_relaxed);
  }

  std::mutex progress_mutex;
  std::atomic<std::size_t> cases_done{0};

  const auto finish_case = [&](std::size_t case_index) {
    // Merge shards in run order; for single-shard cases this is a move.
    CaseOutcome& outcome = result.cases[case_index];
    outcome.algorithm = spec.cases[case_index].algorithm.empty()
                            ? to_string(spec.cases[case_index].spec.algorithm)
                            : spec.cases[case_index].algorithm;
    outcome.spec = spec.cases[case_index].spec;
    outcome.result = std::move(partials[case_index][0]);
    for (std::size_t s = 1; s < partials[case_index].size(); ++s) {
      outcome.result.merge(partials[case_index][s]);
    }
    for (double seconds : shard_seconds[case_index]) {
      outcome.compute_seconds += seconds;
    }
    outcome.runs_per_sec =
        outcome.compute_seconds > 0.0
            ? static_cast<double>(outcome.result.runs) / outcome.compute_seconds
            : 0.0;

    CaseTelemetry telemetry;
    telemetry.label = case_label(spec.cases[case_index]);
    telemetry.runs = outcome.result.runs;
    telemetry.compute_seconds = outcome.compute_seconds;
    telemetry.runs_per_sec = outcome.runs_per_sec;
    telemetry.invariant_checks = outcome.result.invariant_checks;
    telemetry.availability_percent = outcome.result.availability_percent();

    std::lock_guard<std::mutex> lock(progress_mutex);
    const std::size_t done = cases_done.fetch_add(1) + 1;
    progress.case_done(telemetry, done, case_count);
  };

  const auto execute_shard = [&](const Shard& shard) {
    const CaseSpec& cs = spec.cases[shard.case_index].spec;
    const auto start = Clock::now();
    CaseResult partial = cs.mode == RunMode::kFreshStart
                             ? run_case_shard(cs, shard.first_run, shard.run_count)
                             : run_case(cs);
    shard_seconds[shard.case_index][shard.shard_index] = seconds_since(start);
    partials[shard.case_index][shard.shard_index] = std::move(partial);
    if (remaining[shard.case_index].fetch_sub(1) == 1) {
      finish_case(shard.case_index);
    }
  };

  if (jobs <= 1) {
    for (const Shard& shard : shards) execute_shard(shard);
  } else {
    ThreadPool pool(std::min<std::size_t>(jobs, shards.size()));
    for (const Shard& shard : shards) {
      pool.submit([&execute_shard, shard] { execute_shard(shard); });
    }
    pool.wait_idle();
  }

  result.wall_seconds = seconds_since(sweep_start);
  progress.sweep_done(spec.name.empty() ? "(unnamed sweep)" : spec.name,
                      case_count, result.wall_seconds);

  if (!spec.name.empty()) {
    result.artifact_path = write_manifest(spec, result);
  }
  return result;
}

}  // namespace dynvote
