#include "runner/sweep.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <fstream>
#include <mutex>
#include <optional>
#include <sstream>
#include <thread>

#include "gcs/gcs.hpp"
#include "obs/trace.hpp"
#include "runner/artifact.hpp"
#include "runner/thread_pool.hpp"
#include "sim/table.hpp"
#include "util/alloc_stats.hpp"
#include "util/assert.hpp"
#include "util/env.hpp"
#include "util/logging.hpp"

namespace dynvote {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// The floor SweepSpec::min_shard_runs == 0 resolves to.
constexpr std::uint64_t kAutoShardFloor = 32;

std::uint64_t shard_floor(std::uint64_t min_shard_runs) {
  return min_shard_runs == 0 ? kAutoShardFloor : min_shard_runs;
}

/// Shard sizing: enough shards to keep every worker busy with a few
/// helpings per case, but never below the configured floor -- boundaries
/// are a pure performance knob, results are identical for any split.
std::uint64_t shard_size_for(std::uint64_t runs, std::size_t jobs,
                             std::uint64_t min_shard_runs) {
  const std::uint64_t floor = shard_floor(min_shard_runs);
  const std::uint64_t target = runs / (static_cast<std::uint64_t>(jobs) * 4);
  return std::max(floor, target);
}

/// Steady-state allocation rate of the round loop for this case's
/// algorithm at its process count.  A probe world is warmed through a few
/// partition/merge cycles (so every pooled buffer reaches capacity), then
/// only the step_round sections of further cycles are measured -- the same
/// slice of work BM_ProtocolRound times.  Needs the counting allocator
/// (dv_alloc_hook) linked into the binary; returns a negative sentinel
/// when it is not, or when the case cannot partition.
double probe_steady_allocs_per_round(const CaseSpec& cs) {
  if (!alloc_hook_linked() || cs.processes < 2) return -1.0;

  Gcs gcs = cs.algorithm_factory != nullptr
                ? Gcs(cs.algorithm_factory, cs.processes)
                : Gcs(cs.algorithm, cs.processes);
  ProcessSet lower_half(cs.processes);
  for (ProcessId p = 0; p < cs.processes / 2; ++p) lower_half.insert(p);

  std::uint64_t measured_allocs = 0;
  std::uint64_t measured_rounds = 0;
  const auto settle = [&](bool measure) {
    const std::uint64_t before = thread_allocations();
    std::uint64_t rounds = 0;
    while (gcs.step_round() && rounds < 1000) ++rounds;
    if (measure) {
      measured_allocs += thread_allocations() - before;
      measured_rounds += rounds;
    }
  };
  constexpr int kWarmupCycles = 8;
  constexpr int kMeasuredCycles = 4;
  for (int cycle = 0; cycle < kWarmupCycles + kMeasuredCycles; ++cycle) {
    const bool measure = cycle >= kWarmupCycles;
    gcs.apply_partition(0, lower_half);
    settle(measure);
    gcs.apply_merge(0, 1);
    settle(measure);
  }
  if (measured_rounds == 0) return -1.0;
  return static_cast<double>(measured_allocs) /
         static_cast<double>(measured_rounds);
}

/// Spill-arena telemetry scoped to this sweep: the monotone counters are
/// deltas against the sweep-start snapshot, the byte gauges stay absolute
/// (live/peak bytes are states, not flows).
SpillArenaStats arena_delta_since(const SpillArenaStats& base) {
  SpillArenaStats now = spill_arena_merged_stats();
  now.allocs -= base.allocs;
  now.freelist_hits -= base.freelist_hits;
  now.chunk_bytes -= base.chunk_bytes;
  return now;
}

}  // namespace

/// Arm the trace recorder when DV_TRACE asks for it.  Idempotent: tracing
/// armed earlier (by dvdispatch --trace-out or a test) stays armed with
/// its ring sizing.
void maybe_enable_trace_from_env() {
  if (!env_bool("DV_TRACE", false)) return;
  if (obs::trace_enabled()) return;
  obs::trace_enable(
      static_cast<std::size_t>(env_u64("DV_TRACE_BUF", std::uint64_t{1} << 16)));
}

/// Drain this sweep's trace rings and write the dynvote.events.v1 file:
/// to DV_TRACE_OUT verbatim when set, otherwise as TRACE_<name>.events
/// through the artifact directory discipline.  Returns the path written,
/// empty when tracing is off or writing failed/was disabled.
std::string drain_trace_to_artifact(const std::string& sweep_name) {
  if (!obs::trace_enabled()) return {};
  const obs::TraceFile file = obs::trace_drain();
  const std::vector<std::byte> bytes = file.encode();
  if (const auto out = env_string("DV_TRACE_OUT"); out.has_value()) {
    std::ofstream f(*out, std::ios::binary | std::ios::trunc);
    if (!f ||
        !f.write(reinterpret_cast<const char*>(bytes.data()),
                 static_cast<std::streamsize>(bytes.size()))) {
      DV_LOG_WARN("failed to write trace file " << *out);
      return {};
    }
    return *out;
  }
  const std::string stem = sweep_name.empty() ? "sweep" : sweep_name;
  return write_artifact_bytes("TRACE_" + stem + ".events", bytes);
}

std::size_t jobs_from_env() {
  const unsigned hardware = std::thread::hardware_concurrency();
  const std::uint64_t jobs =
      env_u64("DV_JOBS", hardware == 0 ? 1 : hardware);
  return jobs == 0 ? 1 : static_cast<std::size_t>(jobs);
}

std::string case_label(const SweepCase& sweep_case) {
  const CaseSpec& spec = sweep_case.spec;
  std::ostringstream os;
  os << (sweep_case.algorithm.empty() ? to_string(spec.algorithm)
                                      : sweep_case.algorithm)
     << " p=" << spec.processes << " c=" << spec.changes
     << " r=" << format_double(spec.mean_rounds, 0);
  if (spec.crash_fraction > 0.0) {
    os << " crash=" << format_double(spec.crash_fraction, 2);
  }
  switch (spec.fault_model.kind) {
    case FaultModelKind::kGeometric:
      break;  // the default regime goes unlabeled, as it always has
    case FaultModelKind::kSleepy:
      os << " sleepy[wake=" << format_double(spec.fault_model.wake_bias, 2)
         << ']';
      break;
    case FaultModelKind::kRepairable:
      os << " repair[k=" << spec.fault_model.repair_capacity
         << ",mr=" << format_double(spec.fault_model.repair_mean_rounds, 0)
         << ']';
      break;
    case FaultModelKind::kTrace:
      os << " trace";
      break;
  }
  os << ' ' << to_string(spec.mode);
  return os.str();
}

std::vector<SweepCase> availability_grid(
    const std::vector<AlgorithmKind>& algorithms,
    const std::vector<double>& rates, std::size_t changes, RunMode mode,
    std::uint64_t runs, std::uint64_t base_seed, std::size_t processes) {
  std::vector<SweepCase> cases;
  cases.reserve(algorithms.size() * rates.size());
  for (AlgorithmKind kind : algorithms) {
    for (double rate : rates) {
      SweepCase c;
      c.algorithm = to_string(kind);
      c.spec.algorithm = kind;
      c.spec.processes = processes;
      c.spec.changes = changes;
      c.spec.mean_rounds = rate;
      c.spec.runs = runs;
      c.spec.mode = mode;
      c.spec.base_seed = base_seed;
      cases.push_back(std::move(c));
    }
  }
  return cases;
}

namespace {

/// A discrete unit of worker execution.  Fresh-start run chunks are NOT
/// represented here -- they are claimed dynamically from per-case cursors,
/// so chunk sizes adapt to how much work is left.
struct WorkUnit {
  enum class Kind {
    /// Unchecked replay of a cascading case emitting shard checkpoints.
    kScout,
    /// One checked run range of a cascading case (restored from its
    /// checkpoint; the first shard starts fresh).
    kCascadeShard,
    /// An entire case executed serially (cascading cases too small to be
    /// worth scouting).
    kWholeCase,
  };

  Kind kind = Kind::kWholeCase;
  std::size_t case_index = 0;
  /// kCascadeShard: index into the case's checkpoint vector, or SIZE_MAX
  /// for the fresh first shard.
  std::size_t checkpoint_index = 0;
  std::uint64_t first_run = 0;
  std::uint64_t run_count = 0;
};

/// One finished contiguous run range, keyed by its first run index so the
/// case merge can sort into run order regardless of completion order.
struct ShardPartial {
  std::uint64_t first_run = 0;
  CaseResult result;
};

/// Mutable per-case scheduler state; all fields are guarded by the
/// scheduler mutex except where noted.
struct CaseState {
  /// Fresh-start parallel case: next unclaimed run index.
  std::uint64_t next_fresh_run = 0;  // dvlint: guarded_by(scheduler_mutex)
  bool fresh_parallel = false;
  /// Cascading pipeline: shard boundaries the scout must checkpoint at.
  /// boundaries/checkpoints/partials/compute_seconds are deliberately
  /// unannotated: the serial path and finish_case touch them with the case
  /// complete (no other worker can), not under the scheduler lock.
  std::vector<std::uint64_t> boundaries;
  std::uint64_t cascade_shard_size = 0;
  std::vector<CascadeCheckpoint> checkpoints;
  std::vector<ShardPartial> partials;
  /// Batched-engine telemetry summed over fresh-start shards; merged under
  /// the scheduler lock alongside the partials.
  BatchTelemetry batch;
  double compute_seconds = 0.0;
  std::uint64_t finished_runs = 0;   // dvlint: guarded_by(scheduler_mutex)
  std::size_t steals = 0;            // dvlint: guarded_by(scheduler_mutex)
  /// Last worker that claimed a unit of this case; SIZE_MAX = none yet.
  std::size_t last_worker = SIZE_MAX;  // dvlint: guarded_by(scheduler_mutex)
};

}  // namespace

SweepResult run_sweep(const SweepSpec& spec) {
  const auto sweep_start = Clock::now();
  maybe_enable_trace_from_env();
  // Metrics are process-cumulative; the delta scopes the manifest's
  // observability block to this sweep.
  const obs::MetricsSnapshot metrics_base = obs::snapshot_metrics();
  const SpillArenaStats arena_base = spill_arena_merged_stats();
  const std::size_t jobs = spec.jobs != 0 ? spec.jobs : jobs_from_env();
  ProgressSink& progress =
      spec.progress != nullptr ? *spec.progress : default_progress_sink();

  const std::size_t case_count = spec.cases.size();
  SweepResult result;
  result.jobs = jobs;
  result.cases.resize(case_count);

  std::mutex progress_mutex;
  std::size_t cases_done = 0;

  // Called with the scheduler lock NOT held (single-job path) or held only
  // by the finishing worker's bookkeeping; partials are complete by then,
  // so the finishing worker has exclusive access to the whole CaseState.
  const auto finish_case =  // dvlint: ignore(guarded-by)
      [&](std::size_t case_index, CaseState& state) {
    CaseOutcome& outcome = result.cases[case_index];
    outcome.algorithm = spec.cases[case_index].algorithm.empty()
                            ? to_string(spec.cases[case_index].spec.algorithm)
                            : spec.cases[case_index].algorithm;
    outcome.spec = spec.cases[case_index].spec;

    // Merge shard results in run order -- completion order is scheduling
    // noise, run order is the deterministic serial order.
    std::sort(state.partials.begin(), state.partials.end(),
              [](const ShardPartial& a, const ShardPartial& b) {
                return a.first_run < b.first_run;
              });
    outcome.shards = state.partials.size();
    outcome.steals = state.steals;
    if (!state.partials.empty()) {
      outcome.result = std::move(state.partials[0].result);
      for (std::size_t s = 1; s < state.partials.size(); ++s) {
        outcome.result.merge(state.partials[s].result);
      }
    }
    outcome.compute_seconds = state.compute_seconds;
    if (outcome.compute_seconds > 0.0) {
      outcome.runs_per_sec =
          static_cast<double>(outcome.result.runs) / outcome.compute_seconds;
      outcome.rounds_per_sec = static_cast<double>(outcome.result.total_rounds) /
                               outcome.compute_seconds;
      outcome.deliveries_per_sec =
          static_cast<double>(outcome.result.total_deliveries) /
          outcome.compute_seconds;
    }
    outcome.steady_allocs_per_round =
        probe_steady_allocs_per_round(outcome.spec);
    outcome.batch = state.batch;

    CaseTelemetry telemetry;
    telemetry.label = case_label(spec.cases[case_index]);
    telemetry.runs = outcome.result.runs;
    telemetry.compute_seconds = outcome.compute_seconds;
    telemetry.runs_per_sec = outcome.runs_per_sec;
    telemetry.invariant_checks = outcome.result.invariant_checks;
    telemetry.availability_percent = outcome.result.availability_percent();

    std::lock_guard<std::mutex> lock(progress_mutex);
    progress.case_done(telemetry, ++cases_done, case_count);
  };

  if (jobs <= 1 || case_count == 0) {
    // Serial path: every case is one unit, in order.
    for (std::size_t i = 0; i < case_count; ++i) {
      CaseState state;
      const auto start = Clock::now();
      {
        // The shard span carries the case label so dvtrace can group the
        // run events underneath it; the label is only materialized when
        // tracing is armed.
        std::optional<obs::TraceSpan> span;
        if (obs::trace_enabled()) {
          span.emplace(case_label(spec.cases[i]), 0, spec.cases[i].spec.runs);
        }
        const CaseSpec& cs = spec.cases[i].spec;
        state.partials.push_back(ShardPartial{
            0, cs.mode == RunMode::kFreshStart
                   ? run_case_shard(cs, 0, cs.runs, &state.batch)
                   : run_case(cs)});
      }
      state.compute_seconds = seconds_since(start);
      DV_OBS_INC("runner.units");
      DV_OBS_RECORD("runner.shard_ms", state.compute_seconds * 1000.0);
      finish_case(i, state);
    }
    result.wall_seconds = seconds_since(sweep_start);
    progress.sweep_done(spec.name.empty() ? "(unnamed sweep)" : spec.name,
                        case_count, result.wall_seconds);
    result.metrics = obs::snapshot_metrics().delta_since(metrics_base);
    result.arena = arena_delta_since(arena_base);
    result.trace_path = drain_trace_to_artifact(spec.name);
    if (!spec.name.empty()) {
      result.artifact_path = write_manifest(spec, result);
    }
    return result;
  }

  // --- Parallel path: a work-stealing scheduler. ---
  //
  // Discrete units (scouts, whole cases, checkpoint-ready cascade shards)
  // live in a shared deque; fresh-start runs are claimed as dynamically
  // sized chunks straight from per-case cursors.  Any idle worker takes
  // whatever is available, so a case started by one worker is finished by
  // others (the steal counters record exactly that).
  std::mutex scheduler_mutex;
  std::condition_variable work_available;
  std::deque<WorkUnit> unit_queue;  // dvlint: guarded_by(scheduler_mutex)
  std::vector<CaseState> states(case_count);
  std::size_t active_scouts = 0;    // dvlint: guarded_by(scheduler_mutex)
  bool aborting = false;            // dvlint: guarded_by(scheduler_mutex)

  {
    // No worker thread exists yet; locked to keep guarded-by checkable.
    std::lock_guard<std::mutex> lock(scheduler_mutex);
    for (std::size_t i = 0; i < case_count; ++i) {
      const CaseSpec& cs = spec.cases[i].spec;
      CaseState& state = states[i];
      if (cs.runs == 0) {
        unit_queue.push_back(WorkUnit{WorkUnit::Kind::kWholeCase, i, 0, 0, 0});
        continue;
      }
      if (cs.mode == RunMode::kFreshStart) {
        state.fresh_parallel = true;
        continue;
      }
      // Cascading: shard through scout checkpoints when the case is big
      // enough to split and the shards actually measure something the scout
      // skips (with all observability off, re-running what the scout
      // already simulated would only add work).
      const std::uint64_t size =
          shard_size_for(cs.runs, jobs, spec.min_shard_runs);
      const bool instrumented = cs.check_invariants || cs.measure_wire_sizes;
      if (size < cs.runs && instrumented) {
        state.cascade_shard_size = size;
        for (std::uint64_t b = size; b < cs.runs; b += size) {
          state.boundaries.push_back(b);
        }
        unit_queue.push_back(WorkUnit{WorkUnit::Kind::kScout, i, 0, 0, 0});
        ++active_scouts;
      } else {
        unit_queue.push_back(
            WorkUnit{WorkUnit::Kind::kWholeCase, i, 0, 0, cs.runs});
      }
    }
  }

  // Claim the next unit for `worker`.  Returns false when the sweep has no
  // work left (or is aborting).  Lock is held throughout.
  const auto try_claim =  // dvlint: requires_lock(scheduler_mutex)
      [&](std::size_t worker, std::unique_lock<std::mutex>& lock,
          WorkUnit& out) -> bool {
    for (;;) {
      if (aborting) return false;
      if (!unit_queue.empty()) {
        out = unit_queue.front();
        unit_queue.pop_front();
        CaseState& state = states[out.case_index];
        if (state.last_worker != SIZE_MAX && state.last_worker != worker) {
          ++state.steals;
          DV_OBS_INC("runner.steals");
        }
        state.last_worker = worker;
        return true;
      }
      // No discrete unit: steal a chunk of fresh-start runs.  Chunks
      // shrink as a case drains so stragglers stay balanced.
      for (std::size_t i = 0; i < case_count; ++i) {
        CaseState& state = states[i];
        const CaseSpec& cs = spec.cases[i].spec;
        if (!state.fresh_parallel || state.next_fresh_run >= cs.runs) continue;
        const std::uint64_t remaining = cs.runs - state.next_fresh_run;
        const std::uint64_t chunk = std::min(
            remaining,
            std::max(shard_floor(spec.min_shard_runs),
                     remaining / (static_cast<std::uint64_t>(jobs) * 2)));
        out = WorkUnit{WorkUnit::Kind::kWholeCase, i, 0, state.next_fresh_run,
                       chunk};
        state.next_fresh_run += chunk;
        if (state.last_worker != SIZE_MAX && state.last_worker != worker) {
          ++state.steals;
          DV_OBS_INC("runner.steals");
        }
        state.last_worker = worker;
        return true;
      }
      // Nothing claimable right now; scouts still running will publish
      // more shards, so wait for them.  Otherwise the sweep is drained.
      if (active_scouts == 0) return false;
      work_available.wait(lock);
    }
  };

  const auto worker_loop = [&](std::size_t worker) {
    std::unique_lock<std::mutex> lock(scheduler_mutex);
    WorkUnit unit;
    while (try_claim(worker, lock, unit)) {
      lock.unlock();
      const std::size_t i = unit.case_index;
      const CaseSpec& cs = spec.cases[i].spec;
      const auto start = Clock::now();

      if (unit.kind == WorkUnit::Kind::kScout) {
        std::vector<CascadeCheckpoint> checkpoints;
        {
          DV_TRACE_SPAN("scout", i, cs.runs);
          checkpoints = scout_cascading_case(cs, states[i].boundaries);
        }
        const double seconds = seconds_since(start);
        lock.lock();
        CaseState& state = states[i];
        state.compute_seconds += seconds;
        state.checkpoints = std::move(checkpoints);
        // First shard starts fresh; shard k resumes checkpoint k-1.
        unit_queue.push_back(WorkUnit{WorkUnit::Kind::kCascadeShard, i,
                                      SIZE_MAX, 0, state.cascade_shard_size});
        for (std::size_t k = 0; k < state.checkpoints.size(); ++k) {
          const std::uint64_t first = state.checkpoints[k].first_run;
          const std::uint64_t count =
              std::min(state.cascade_shard_size, cs.runs - first);
          unit_queue.push_back(
              WorkUnit{WorkUnit::Kind::kCascadeShard, i, k, first, count});
        }
        --active_scouts;
        work_available.notify_all();
        continue;  // lock stays held for the next claim
      }

      CaseResult partial;
      BatchTelemetry unit_batch;
      {
        // Case-labeled shard span (materialized only when tracing is
        // armed); the run spans emitted by the experiment layer nest
        // underneath it on this thread's timeline.
        std::optional<obs::TraceSpan> span;
        if (obs::trace_enabled()) {
          span.emplace(case_label(spec.cases[i]), unit.first_run,
                       unit.run_count);
        }
        if (unit.kind == WorkUnit::Kind::kCascadeShard) {
          static const CascadeCheckpoint kFromScratch{};
          const CascadeCheckpoint& from =
              unit.checkpoint_index == SIZE_MAX
                  ? kFromScratch
                  : states[i].checkpoints[unit.checkpoint_index];
          partial = run_cascading_shard(cs, from, unit.run_count);
        } else if (cs.mode == RunMode::kFreshStart) {
          partial =
              run_case_shard(cs, unit.first_run, unit.run_count, &unit_batch);
        } else {
          partial = run_case(cs);
        }
      }
      const double seconds = seconds_since(start);
      DV_OBS_INC("runner.units");
      DV_OBS_RECORD("runner.shard_ms", seconds * 1000.0);

      lock.lock();
      CaseState& state = states[i];
      state.compute_seconds += seconds;
      state.batch.merge(unit_batch);
      state.partials.push_back(ShardPartial{unit.first_run, std::move(partial)});
      state.finished_runs += unit.run_count;
      if (state.finished_runs == cs.runs) {
        // All runs accounted for; no other worker can touch this case.
        lock.unlock();
        finish_case(i, state);
        lock.lock();
      }
    }
  };

  {
    ThreadPool pool(jobs);
    for (std::size_t w = 0; w < jobs; ++w) {
      pool.submit([&, w] {
        try {
          worker_loop(w);
        } catch (...) {
          {
            std::lock_guard<std::mutex> lock(scheduler_mutex);
            aborting = true;
          }
          work_available.notify_all();
          throw;
        }
      });
    }
    pool.wait_idle();
  }

  result.wall_seconds = seconds_since(sweep_start);
  progress.sweep_done(spec.name.empty() ? "(unnamed sweep)" : spec.name,
                      case_count, result.wall_seconds);

  // The pool is joined: worker shards are retired and their rings are
  // quiescent, so both folds below are race-free and complete.
  result.metrics = obs::snapshot_metrics().delta_since(metrics_base);
  result.arena = arena_delta_since(arena_base);
  result.trace_path = drain_trace_to_artifact(spec.name);
  if (!spec.name.empty()) {
    result.artifact_path = write_manifest(spec, result);
  }
  return result;
}

}  // namespace dynvote
