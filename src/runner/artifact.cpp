#include "runner/artifact.hpp"

#include <cstdio>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <string_view>

#include "util/json.hpp"
#include "util/env.hpp"
#include "util/logging.hpp"

#ifndef DV_GIT_DESCRIBE
#define DV_GIT_DESCRIBE "unknown"
#endif

namespace dynvote {

namespace {

void histogram_json(JsonWriter& json, const AmbiguityHistogram& histogram) {
  json.begin_object();
  json.key("buckets").begin_array();
  for (std::uint64_t bucket : histogram.buckets) json.value(bucket);
  json.end_array();
  json.key("samples").value(histogram.samples);
  json.key("max_observed").value(static_cast<std::uint64_t>(histogram.max_observed));
  json.end_object();
}

std::uint64_t fnv1a(std::string_view bytes);

std::string hex16(std::uint64_t hash) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(hash));
  return std::string(buf);
}

/// Per-case document.  `include_volatile` adds the timing and scheduling
/// telemetry that legitimately differs between reruns of the same sweep;
/// the deterministic-results view leaves it out.
void case_json(JsonWriter& json, const CaseOutcome& outcome,
               bool include_volatile) {
  const CaseSpec& spec = outcome.spec;
  const CaseResult& r = outcome.result;
  json.begin_object();
  json.key("algorithm").value(outcome.algorithm);
  json.key("processes").value(static_cast<std::uint64_t>(spec.processes));
  json.key("changes").value(static_cast<std::uint64_t>(spec.changes));
  json.key("rate").value(spec.mean_rounds);
  json.key("crash_fraction").value(spec.crash_fraction);
  // Model-scoped fingerprints: the block names the fault model and its
  // parameters, and it is part of the results document -- a sleepy sweep
  // can never fingerprint-match a geometric one.  Geometric cases omit the
  // block entirely (same discipline as steady_allocs_per_round) so every
  // pre-existing baseline fingerprint is preserved bit-for-bit.
  if (spec.fault_model.kind != FaultModelKind::kGeometric) {
    const FaultModelParams& model = spec.fault_model;
    json.key("fault_model").begin_object();
    json.key("model").value(to_string(model.kind));
    switch (model.kind) {
      case FaultModelKind::kGeometric:
        break;
      case FaultModelKind::kSleepy:
        json.key("wake_bias").value(model.wake_bias);
        break;
      case FaultModelKind::kRepairable:
        json.key("repair_capacity").value(model.repair_capacity);
        json.key("repair_mean_rounds").value(model.repair_mean_rounds);
        break;
      case FaultModelKind::kTrace:
        // The document itself may be huge; its hash pins the schedule.
        json.key("trace_fingerprint").value(hex16(fnv1a(model.trace_json)));
        break;
    }
    json.end_object();
  }
  json.key("mode").value(to_string(spec.mode));
  json.key("base_seed").value(spec.base_seed);
  json.key("runs").value(r.runs);
  json.key("successes").value(r.successes);
  json.key("availability_percent").value(r.availability_percent());
  json.key("in_run_availability_percent").value(r.in_run_availability_percent());
  json.key("stable_histogram");
  histogram_json(json, r.stable);
  json.key("in_progress_histogram");
  histogram_json(json, r.in_progress);
  json.key("wire").begin_object();
  json.key("messages_sent").value(r.wire.messages_sent);
  json.key("protocol_messages_sent").value(r.wire.protocol_messages_sent);
  json.key("max_message_bytes").value(static_cast<std::uint64_t>(r.wire.max_message_bytes));
  json.key("total_message_bytes").value(r.wire.total_message_bytes);
  json.end_object();
  json.key("invariant_checks").value(r.invariant_checks);
  json.key("total_rounds").value(r.total_rounds);
  json.key("total_changes").value(r.total_changes);
  if (include_volatile) {
    json.key("compute_seconds").value(outcome.compute_seconds);
    json.key("runs_per_sec").value(outcome.runs_per_sec);
    json.key("rounds_per_sec").value(outcome.rounds_per_sec);
    // total_deliveries is deterministic, but it lives in the volatile
    // block with its rate: adding it to the results document would move
    // every pre-existing fingerprint for unchanged simulation results.
    json.key("total_deliveries").value(r.total_deliveries);
    json.key("deliveries_per_sec").value(outcome.deliveries_per_sec);
    if (outcome.steady_allocs_per_round >= 0.0) {
      json.key("steady_allocs_per_round")
          .value(outcome.steady_allocs_per_round);
    }
    json.key("shards").value(static_cast<std::uint64_t>(outcome.shards));
    json.key("steals").value(static_cast<std::uint64_t>(outcome.steals));
    // Batched-engine telemetry (fresh-start cases only).  Strictly
    // volatile: batching is proven fingerprint-invisible, so none of this
    // may enter the results document.
    if (outcome.batch.runs > 0) {
      const BatchTelemetry& batch = outcome.batch;
      json.key("batch").begin_object();
      json.key("batch_width").value(batch.batch_width);
      json.key("prefix_hits").value(batch.prefix_hits);
      json.key("prefix_misses").value(batch.prefix_misses);
      const std::uint64_t started = batch.prefix_hits + batch.prefix_misses;
      json.key("prefix_hit_rate")
          .value(started == 0 ? 0.0
                              : static_cast<double>(batch.prefix_hits) /
                                    static_cast<double>(started));
      json.key("prefix_rounds_adopted").value(batch.prefix_rounds_adopted);
      json.key("ff_rounds_skipped").value(batch.ff_rounds_skipped);
      const std::uint64_t population =
          batch.runs * static_cast<std::uint64_t>(spec.processes);
      json.key("mean_end_component_fraction")
          .value(population == 0
                     ? 0.0
                     : static_cast<double>(batch.end_component_members) /
                           static_cast<double>(population));
      json.end_object();
    }
  }
  json.end_object();
}

std::uint64_t fnv1a(std::string_view bytes) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace

std::string manifest_results_json(const SweepSpec& spec,
                                  const SweepResult& result) {
  std::uint64_t total_runs = 0;
  for (const CaseOutcome& outcome : result.cases) {
    total_runs += outcome.result.runs;
  }

  JsonWriter json;
  json.begin_object();
  json.key("schema").value(kSweepResultsSchema);
  json.key("sweep").value(spec.name);
  json.key("total_runs").value(total_runs);
  json.key("cases").begin_array();
  for (const CaseOutcome& outcome : result.cases) {
    case_json(json, outcome, /*include_volatile=*/false);
  }
  json.end_array();
  json.end_object();
  return json.str();
}

std::string results_fingerprint(const SweepSpec& spec,
                                const SweepResult& result) {
  const std::uint64_t hash = fnv1a(manifest_results_json(spec, result));
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(hash));
  return std::string(buf);
}

std::string manifest_json(const SweepSpec& spec, const SweepResult& result) {
  std::uint64_t total_runs = 0;
  for (const CaseOutcome& outcome : result.cases) {
    total_runs += outcome.result.runs;
  }

  JsonWriter json;
  json.begin_object();
  json.key("schema").value(kSweepManifestSchema);
  json.key("sweep").value(spec.name);
  // Manifest metadata only: excluded from results_fingerprint, so the
  // wall clock cannot leak into anything a rerun is compared against.
  json.key("created_unix")
      .value(static_cast<std::int64_t>(
          std::time(nullptr)));  // dvlint: ignore(determinism)
  json.key("git_describe").value(DV_GIT_DESCRIBE);
  json.key("jobs").value(static_cast<std::uint64_t>(result.jobs));
  json.key("wall_seconds").value(result.wall_seconds);
  json.key("total_runs").value(total_runs);
  json.key("results_fingerprint").value(results_fingerprint(spec, result));
  json.key("cases").begin_array();
  for (const CaseOutcome& outcome : result.cases) {
    case_json(json, outcome, /*include_volatile=*/true);
  }
  json.end_array();
  // Observability metrics (src/obs): counters, gauges and histograms
  // recorded during this sweep, aggregated across local threads and --
  // for distributed sweeps -- remote workers' heartbeat snapshots.  Like
  // the fabric block, strictly volatile telemetry: never part of the
  // results document, so tracing/metrics can never move a fingerprint.
  if (!result.metrics.empty()) {
    const obs::MetricsSnapshot& m = result.metrics;
    json.key("observability").begin_object();
    json.key("counters").begin_object();
    for (const auto& [name, value] : m.counters) json.key(name).value(value);
    json.end_object();
    json.key("gauges").begin_object();
    for (const auto& [name, value] : m.gauges) json.key(name).value(value);
    json.end_object();
    json.key("histograms").begin_array();
    for (const obs::HistogramSnapshot& h : m.histograms) {
      json.begin_object();
      json.key("name").value(h.name);
      json.key("count").value(h.count());
      json.key("sum").value(h.sum);
      // Sparse bucket list: [bucket index (std::bit_width), count].
      json.key("buckets").begin_array();
      for (std::size_t b = 0; b < obs::kHistogramBuckets; ++b) {
        if (h.buckets[b] == 0) continue;
        json.begin_array();
        json.value(static_cast<std::uint64_t>(b));
        json.value(h.buckets[b]);
        json.end_array();
      }
      json.end_array();
      json.end_object();
    }
    json.end_array();
    json.end_object();
  }
  // Spill-arena telemetry (util/spill_arena.hpp): how hard the beyond-SBO
  // ProcessSet path leaned on the freelist arena during this sweep.
  // Volatile like the observability block; omitted when the arena was
  // never touched (N <= 128 sweeps).
  if (result.arena.allocs > 0 || result.arena.chunk_bytes > 0) {
    const SpillArenaStats& arena = result.arena;
    json.key("arena").begin_object();
    json.key("allocs").value(arena.allocs);
    json.key("freelist_hits").value(arena.freelist_hits);
    json.key("chunk_bytes").value(arena.chunk_bytes);
    json.key("live_bytes").value(arena.live_bytes);
    json.key("peak_bytes").value(arena.peak_bytes);
    json.end_object();
  }
  // Fabric scheduling telemetry (multi-host sweeps only).  Volatile by
  // design: which worker ran which unit, re-issues after deaths, and
  // steal traffic can never affect the merged results, and keeping the
  // block out of the results document is what lets a distributed manifest
  // fingerprint-match a single-host one.
  if (result.fabric.used) {
    const FabricTelemetry& fabric = result.fabric;
    json.key("fabric").begin_object();
    json.key("units_issued").value(fabric.units_issued);
    json.key("units_reissued").value(fabric.units_reissued);
    json.key("units_stolen").value(fabric.units_stolen);
    json.key("duplicate_results").value(fabric.duplicate_results);
    json.key("workers_connected").value(fabric.workers_connected);
    json.key("workers_died").value(fabric.workers_died);
    json.key("workers").begin_array();
    for (const FabricWorkerTelemetry& worker : fabric.workers) {
      json.begin_object();
      json.key("peer").value(worker.peer);
      json.key("slots").value(worker.slots);
      json.key("units_done").value(worker.units_done);
      json.key("busy_seconds").value(worker.busy_seconds);
      json.key("died").value(worker.died);
      json.end_object();
    }
    json.end_array();
    json.end_object();
  }
  json.end_object();
  return json.str();
}

std::string write_artifact_document(const std::string& filename,
                                    const std::string& document) {
  std::string dir = env_string("DV_ARTIFACT_DIR").value_or("artifacts");
  if (dir == "none" || dir == "off" || dir == "0") return "";

  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    DV_LOG_WARN("cannot create artifact dir " << dir << ": " << ec.message());
    return "";
  }

  const std::string path = dir + "/" + filename;
  std::ofstream out(path);
  if (!out) {
    DV_LOG_WARN("cannot write artifact " << path);
    return "";
  }
  out << document << '\n';
  if (!out.good()) {
    DV_LOG_WARN("short write on artifact " << path);
    return "";
  }
  return path;
}

std::string write_artifact_bytes(const std::string& filename,
                                 const std::vector<std::byte>& bytes) {
  std::string dir = env_string("DV_ARTIFACT_DIR").value_or("artifacts");
  if (dir == "none" || dir == "off" || dir == "0") return "";

  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    DV_LOG_WARN("cannot create artifact dir " << dir << ": " << ec.message());
    return "";
  }

  const std::string path = dir + "/" + filename;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out ||
      !out.write(reinterpret_cast<const char*>(bytes.data()),
                 static_cast<std::streamsize>(bytes.size()))) {
    DV_LOG_WARN("cannot write artifact " << path);
    return "";
  }
  return path;
}

std::string write_manifest(const SweepSpec& spec, const SweepResult& result) {
  return write_artifact_document("BENCH_" + spec.name + ".json",
                                 manifest_json(spec, result));
}

const char* artifact_git_describe() { return DV_GIT_DESCRIBE; }

}  // namespace dynvote
