// Fixed-size worker pool for the sweep runner.
//
// Deliberately minimal: tasks go into one FIFO queue, `wait_idle` blocks
// until every submitted task has finished, and the first exception a task
// throws is captured and rethrown from `wait_idle` on the submitting
// thread (a DV_REQUIRE tripping inside a worker must fail the sweep, not
// terminate the process).  Determinism never depends on this class: the
// scheduler assigns results to pre-allocated slots, so any interleaving of
// workers produces the same output.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dynvote {

class ThreadPool {
 public:
  /// Spawns `threads` workers (at least one).
  explicit ThreadPool(std::size_t threads);

  /// Joins all workers; pending tasks are still drained first.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return workers_.size(); }

  /// Enqueue one task.  Must not be called after shutdown began.
  void submit(std::function<void()> task);

  /// Block until the queue is empty and no task is running, then rethrow
  /// the first exception any task raised since the last wait.
  void wait_idle();

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;      // dvlint: guarded_by(mutex_)
  std::size_t in_flight_ = 0;                    // dvlint: guarded_by(mutex_)
  std::exception_ptr first_error_;               // dvlint: guarded_by(mutex_)
  bool shutdown_ = false;                        // dvlint: guarded_by(mutex_)
  std::vector<std::thread> workers_;
};

}  // namespace dynvote
