#include "obs/metrics.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <map>
#include <mutex>

#include "util/codec.hpp"
#include "util/logging.hpp"

namespace dynvote {
namespace obs {
namespace {

/// Total atomic cells available across all metrics.  A counter or gauge
/// takes one cell, a histogram takes kHistogramBuckets + 1 (the extra is
/// the running sum).  Cell 0 is the overflow sink: registrations past the
/// capacity land there (with a one-time warning) instead of failing.
constexpr std::uint32_t kMaxCells = 4096;

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };

constexpr std::uint32_t width_of(MetricKind kind) {
  return kind == MetricKind::kHistogram
             ? static_cast<std::uint32_t>(kHistogramBuckets) + 1
             : 1;
}

struct Shard {
  std::array<std::atomic<std::uint64_t>, kMaxCells> cells{};
};

struct Def {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  std::uint32_t cell = 0;
};

/// Process-wide registry.  The mutex guards registration and the shard
/// list; recording never takes it.  Intentionally leaked so thread-exit
/// retirement can run during static destruction in any order.
struct Registry {
  std::mutex mutex;
  std::vector<Def> defs;                               // dvlint: guarded_by(mutex)
  std::map<std::string, std::uint32_t, std::less<>> index;  // dvlint: guarded_by(mutex)
  std::uint32_t next_cell = 1;                         // dvlint: guarded_by(mutex)
  bool overflow_warned = false;                        // dvlint: guarded_by(mutex)
  std::vector<Shard*> live;                            // dvlint: guarded_by(mutex)
  std::array<std::uint64_t, kMaxCells> retired{};      // dvlint: guarded_by(mutex)
};

Registry& registry() {
  static Registry* instance = new Registry();
  return *instance;
}

/// Fold one exited thread's shard into the retired accumulator,
/// kind-aware: gauges take the max, everything else adds.
void retire_shard_locked(Registry& r,
                         const Shard& shard) {  // dvlint: requires_lock(mutex)
  for (const Def& def : r.defs) {
    const std::uint32_t width = width_of(def.kind);
    for (std::uint32_t i = 0; i < width; ++i) {
      const std::uint64_t v =
          shard.cells[def.cell + i].load(std::memory_order_relaxed);
      if (def.kind == MetricKind::kGauge) {
        r.retired[def.cell + i] = std::max(r.retired[def.cell + i], v);
      } else {
        r.retired[def.cell + i] += v;
      }
    }
  }
}

struct TlsHandle {
  Shard* shard = nullptr;

  TlsHandle() : shard(new Shard()) {
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    r.live.push_back(shard);
  }

  ~TlsHandle() {
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    retire_shard_locked(r, *shard);
    r.live.erase(std::remove(r.live.begin(), r.live.end(), shard),
                 r.live.end());
    delete shard;
  }
};

std::atomic<std::uint64_t>* tls_cells() {
  thread_local TlsHandle handle;
  return handle.shard->cells.data();
}

std::uint32_t register_metric(const char* name, MetricKind kind) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  const auto it = r.index.find(name);
  if (it != r.index.end()) {
    const Def& def = r.defs[it->second];
    if (def.kind != kind) {
      DV_LOG_WARN("metric \"" << name
                              << "\" re-registered with a different kind; "
                                 "routing to the overflow cell");
      return 0;
    }
    return def.cell;
  }
  const std::uint32_t width = width_of(kind);
  if (r.next_cell + width > kMaxCells) {
    if (!r.overflow_warned) {
      r.overflow_warned = true;
      DV_LOG_WARN("metrics registry is full; \"" << name
                                                 << "\" (and later "
                                                    "registrations) fold into "
                                                    "the overflow cell");
    }
    return 0;
  }
  const std::uint32_t cell = r.next_cell;
  r.next_cell += width;
  r.index.emplace(name, static_cast<std::uint32_t>(r.defs.size()));
  r.defs.push_back(Def{name, kind, cell});
  return cell;
}

/// Sum of retired + live values for one cell; caller holds the mutex.
std::uint64_t fold_cell_locked(const Registry& r, std::uint32_t cell,
                               MetricKind kind) {  // dvlint: requires_lock(mutex)
  std::uint64_t value = r.retired[cell];
  for (const Shard* shard : r.live) {
    const std::uint64_t v = shard->cells[cell].load(std::memory_order_relaxed);
    value = kind == MetricKind::kGauge ? std::max(value, v) : value + v;
  }
  return value;
}

const std::string& name_of(const std::pair<std::string, std::uint64_t>& p) {
  return p.first;
}
const std::string& name_of(const HistogramSnapshot& h) { return h.name; }

/// Sort by name and fold adjacent duplicates kind-aware.  Applied after
/// merge and decode so equality is structural.
template <typename T, typename Fold>
void normalize_vector(std::vector<T>& items, Fold fold) {
  std::stable_sort(items.begin(), items.end(),
                   [](const T& a, const T& b) { return name_of(a) < name_of(b); });
  std::size_t out = 0;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (out > 0 && name_of(items[out - 1]) == name_of(items[i])) {
      fold(items[out - 1], items[i]);
    } else {
      if (out != i) items[out] = std::move(items[i]);
      ++out;
    }
  }
  items.resize(out);
}

void normalize(MetricsSnapshot& snap) {
  normalize_vector(snap.counters,
                   [](auto& into, const auto& from) { into.second += from.second; });
  normalize_vector(snap.gauges, [](auto& into, const auto& from) {
    into.second = std::max(into.second, from.second);
  });
  normalize_vector(snap.histograms,
                   [](HistogramSnapshot& into, const HistogramSnapshot& from) {
                     for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
                       into.buckets[b] += from.buckets[b];
                     }
                     into.sum += from.sum;
                   });
}

}  // namespace

std::size_t bucket_for(std::uint64_t value) {
  return static_cast<std::size_t>(std::bit_width(value));
}

std::uint64_t bucket_floor(std::size_t bucket) {
  if (bucket == 0) return 0;
  return std::uint64_t{1} << (bucket - 1);
}

std::uint64_t HistogramSnapshot::count() const {
  std::uint64_t total = 0;
  for (const std::uint64_t b : buckets) total += b;
  return total;
}

bool MetricsSnapshot::empty() const {
  return counters.empty() && gauges.empty() && histograms.empty();
}

void MetricsSnapshot::merge(const MetricsSnapshot& other) {
  counters.insert(counters.end(), other.counters.begin(), other.counters.end());
  gauges.insert(gauges.end(), other.gauges.begin(), other.gauges.end());
  histograms.insert(histograms.end(), other.histograms.begin(),
                    other.histograms.end());
  normalize(*this);
}

MetricsSnapshot MetricsSnapshot::delta_since(const MetricsSnapshot& base) const {
  const auto base_value = [](const auto& items, const std::string& name,
                             std::uint64_t* out) {
    for (const auto& item : items) {
      if (item.first == name) {
        *out = item.second;
        return;
      }
    }
    *out = 0;
  };
  MetricsSnapshot delta;
  for (const auto& [name, value] : counters) {
    std::uint64_t before = 0;
    base_value(base.counters, name, &before);
    const std::uint64_t d = value > before ? value - before : 0;
    if (d > 0) delta.counters.emplace_back(name, d);
  }
  delta.gauges = gauges;
  for (const HistogramSnapshot& h : histograms) {
    const HistogramSnapshot* before = nullptr;
    for (const HistogramSnapshot& b : base.histograms) {
      if (b.name == h.name) {
        before = &b;
        break;
      }
    }
    HistogramSnapshot d;
    d.name = h.name;
    d.sum = h.sum;
    d.buckets = h.buckets;
    if (before != nullptr) {
      d.sum = h.sum > before->sum ? h.sum - before->sum : 0;
      for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
        d.buckets[b] = h.buckets[b] > before->buckets[b]
                           ? h.buckets[b] - before->buckets[b]
                           : 0;
      }
    }
    if (d.count() > 0) delta.histograms.push_back(std::move(d));
  }
  normalize(delta);
  return delta;
}

void MetricsSnapshot::encode_body(Encoder& enc) const {
  enc.put_varint(counters.size());
  for (const auto& [name, value] : counters) {
    enc.put_string(name);
    enc.put_varint(value);
  }
  enc.put_varint(gauges.size());
  for (const auto& [name, value] : gauges) {
    enc.put_string(name);
    enc.put_varint(value);
  }
  enc.put_varint(histograms.size());
  for (const HistogramSnapshot& h : histograms) {
    enc.put_string(h.name);
    enc.put_varint(h.sum);
    std::uint64_t nonzero = 0;
    for (const std::uint64_t b : h.buckets) {
      if (b != 0) ++nonzero;
    }
    enc.put_varint(nonzero);
    for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
      if (h.buckets[b] == 0) continue;
      enc.put_varint(b);
      enc.put_varint(h.buckets[b]);
    }
  }
}

MetricsSnapshot MetricsSnapshot::decode_body(Decoder& dec) {
  MetricsSnapshot snap;
  const auto checked_count = [&dec](const char* what) {
    const std::uint64_t count = dec.get_varint();
    // Every entry needs at least one byte of input, so a count beyond the
    // remaining bytes is malformed regardless of content -- reject before
    // reserving anything.
    if (count > dec.remaining()) {
      throw DecodeError(std::string("metrics snapshot ") + what +
                        " count exceeds input");
    }
    return static_cast<std::size_t>(count);
  };
  const std::size_t n_counters = checked_count("counter");
  snap.counters.reserve(n_counters);
  for (std::size_t i = 0; i < n_counters; ++i) {
    std::string name = dec.get_string();
    const std::uint64_t value = dec.get_varint();
    snap.counters.emplace_back(std::move(name), value);
  }
  const std::size_t n_gauges = checked_count("gauge");
  snap.gauges.reserve(n_gauges);
  for (std::size_t i = 0; i < n_gauges; ++i) {
    std::string name = dec.get_string();
    const std::uint64_t value = dec.get_varint();
    snap.gauges.emplace_back(std::move(name), value);
  }
  const std::size_t n_histograms = checked_count("histogram");
  snap.histograms.reserve(n_histograms);
  for (std::size_t i = 0; i < n_histograms; ++i) {
    HistogramSnapshot h;
    h.name = dec.get_string();
    h.sum = dec.get_varint();
    const std::size_t nonzero = checked_count("histogram bucket");
    for (std::size_t j = 0; j < nonzero; ++j) {
      const std::uint64_t bucket = dec.get_varint();
      if (bucket >= kHistogramBuckets) {
        throw DecodeError("metrics snapshot bucket index out of range");
      }
      h.buckets[bucket] = dec.get_varint();
    }
    snap.histograms.push_back(std::move(h));
  }
  normalize(snap);
  return snap;
}

Counter::Counter(const char* name)
    : cell_(register_metric(name, MetricKind::kCounter)) {}

void Counter::inc(std::uint64_t delta) {
  tls_cells()[cell_].fetch_add(delta, std::memory_order_relaxed);
}

Gauge::Gauge(const char* name)
    : cell_(register_metric(name, MetricKind::kGauge)) {}

void Gauge::set(std::uint64_t value) {
  tls_cells()[cell_].store(value, std::memory_order_relaxed);
}

Histogram::Histogram(const char* name)
    : cell_(register_metric(name, MetricKind::kHistogram)) {}

void Histogram::record(std::uint64_t value) {
  std::atomic<std::uint64_t>* cells = tls_cells();
  cells[cell_ + bucket_for(value)].fetch_add(1, std::memory_order_relaxed);
  cells[cell_ + kHistogramBuckets].fetch_add(value, std::memory_order_relaxed);
}

MetricsSnapshot snapshot_metrics() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  MetricsSnapshot snap;
  for (const Def& def : r.defs) {
    switch (def.kind) {
      case MetricKind::kCounter:
        snap.counters.emplace_back(def.name,
                                   fold_cell_locked(r, def.cell, def.kind));
        break;
      case MetricKind::kGauge:
        snap.gauges.emplace_back(def.name,
                                 fold_cell_locked(r, def.cell, def.kind));
        break;
      case MetricKind::kHistogram: {
        HistogramSnapshot h;
        h.name = def.name;
        for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
          h.buckets[b] = fold_cell_locked(
              r, def.cell + static_cast<std::uint32_t>(b), def.kind);
        }
        h.sum = fold_cell_locked(
            r, def.cell + static_cast<std::uint32_t>(kHistogramBuckets),
            def.kind);
        snap.histograms.push_back(std::move(h));
        break;
      }
    }
  }
  normalize(snap);
  return snap;
}

}  // namespace obs
}  // namespace dynvote
