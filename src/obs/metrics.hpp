// Lock-free per-thread metrics registry: counters, gauges and power-of-two
// histograms, with a deterministic merge.
//
// The simulator's availability numbers are aggregate outcomes; the metrics
// layer records *how* they came about (rounds stepped, views installed,
// sessions resolved, shards stolen, leases churned) without ever touching
// simulation state.  The design splits the cost asymmetrically:
//
//   - Recording is a thread-local relaxed atomic add: no locks, no
//     allocation after a thread's first metric touch, safe under TSan.
//   - Snapshotting locks the registry, folds every live and retired
//     thread shard, and returns a name-sorted `MetricsSnapshot` whose
//     merge is associative and commutative -- so shard merge order (local
//     threads, remote workers, retired threads) cannot change the result.
//
// Metrics are observational only.  Nothing in this layer may feed back
// into simulation state or RNG streams; the dvlint `trace-purity` check
// enforces that emission sites stay side-effect free.  Snapshots travel in
// the volatile `observability` manifest block and (wire v4) on fabric
// heartbeats -- never in the fingerprinted results document.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace dynvote {

class Encoder;
class Decoder;

namespace obs {

/// Histogram buckets are powers of two by `std::bit_width`: bucket 0 holds
/// the value 0, bucket b>0 holds values in [2^(b-1), 2^b).  64-bit values
/// therefore need 65 buckets.
inline constexpr std::size_t kHistogramBuckets = 65;

/// Bucket index a value lands in (== std::bit_width(value)).
std::size_t bucket_for(std::uint64_t value);

/// Smallest value belonging to `bucket` (0 for bucket 0).
std::uint64_t bucket_floor(std::size_t bucket);

/// One histogram's folded state: per-bucket counts plus the running sum of
/// recorded values (so mean survives the bucketing).
struct HistogramSnapshot {
  std::string name;
  std::array<std::uint64_t, kHistogramBuckets> buckets{};
  std::uint64_t sum = 0;

  std::uint64_t count() const;
};

/// Point-in-time fold of every registered metric across every thread.
/// Vectors are sorted by name; `merge` is associative and commutative
/// (counters and histogram buckets add, gauges take the max), so folding
/// snapshots from any number of shards in any order yields identical
/// bytes.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, std::uint64_t>> gauges;
  std::vector<HistogramSnapshot> histograms;

  bool empty() const;

  /// Fold `other` into this snapshot (union by name).
  void merge(const MetricsSnapshot& other);

  /// Counters and histograms as the increase over `base` (clamped at 0);
  /// gauges keep their current value.  Lets a long-lived process scope a
  /// snapshot to one sweep.
  MetricsSnapshot delta_since(const MetricsSnapshot& base) const;

  /// Wire body for fabric heartbeats (frame version >= 4).  Decoding
  /// normalizes ordering and bounds every count by the decoder's
  /// remaining bytes; malformed input throws DecodeError.
  void encode_body(Encoder& enc) const;
  static MetricsSnapshot decode_body(Decoder& dec);
};

/// Monotonically increasing event count.  Construction interns the name in
/// the process-wide registry (allocates, takes a lock); `inc` is a
/// thread-local relaxed atomic add.  Intended use is a function-local
/// static via DV_OBS_INC/DV_OBS_ADD.
class Counter {
 public:
  explicit Counter(const char* name);
  void inc(std::uint64_t delta = 1);

 private:
  std::uint32_t cell_;
};

/// Last-written value; cross-thread and cross-worker folds take the max.
class Gauge {
 public:
  explicit Gauge(const char* name);
  void set(std::uint64_t value);

 private:
  std::uint32_t cell_;
};

/// Power-of-two histogram (see kHistogramBuckets).  `record` is two
/// thread-local relaxed atomic adds (bucket + sum).
class Histogram {
 public:
  explicit Histogram(const char* name);
  void record(std::uint64_t value);

 private:
  std::uint32_t cell_;
};

/// Fold every live and retired thread shard into one name-sorted snapshot.
/// Safe to call while other threads keep recording (their in-flight
/// increments land in a later snapshot).
MetricsSnapshot snapshot_metrics();

}  // namespace obs
}  // namespace dynvote

// Emission macros.  Each site owns a function-local static handle, so the
// name is interned once and the steady-state cost is one guarded static
// check plus a relaxed atomic add.  Building with -DDV_OBS_DISABLE removes
// the sites entirely.  Arguments must be pure reads: the dvlint
// `trace-purity` check rejects RNG calls and state mutation inside them.
#ifndef DV_OBS_DISABLE
#define DV_OBS_ADD(name_literal, delta)                                      \
  do {                                                                       \
    static ::dynvote::obs::Counter dv_obs_counter_{name_literal};            \
    dv_obs_counter_.inc(static_cast<std::uint64_t>(delta));                  \
  } while (false)
#define DV_OBS_INC(name_literal) DV_OBS_ADD(name_literal, 1)
#define DV_OBS_SET(name_literal, value)                                      \
  do {                                                                       \
    static ::dynvote::obs::Gauge dv_obs_gauge_{name_literal};                \
    dv_obs_gauge_.set(static_cast<std::uint64_t>(value));                    \
  } while (false)
#define DV_OBS_RECORD(name_literal, value)                                   \
  do {                                                                       \
    static ::dynvote::obs::Histogram dv_obs_histogram_{name_literal};        \
    dv_obs_histogram_.record(static_cast<std::uint64_t>(value));             \
  } while (false)
#else
#define DV_OBS_ADD(name_literal, delta) \
  do {                                  \
    (void)sizeof(delta);                \
  } while (false)
#define DV_OBS_INC(name_literal) \
  do {                           \
  } while (false)
#define DV_OBS_SET(name_literal, value) \
  do {                                  \
    (void)sizeof(value);                \
  } while (false)
#define DV_OBS_RECORD(name_literal, value) \
  do {                                     \
    (void)sizeof(value);                   \
  } while (false)
#endif
