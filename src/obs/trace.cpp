#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <tuple>

#include "util/codec.hpp"

namespace dynvote {
namespace obs {

namespace trace_detail {
std::atomic<bool> g_enabled{false};
}  // namespace trace_detail

namespace {

/// Per-thread event ring.  Owned by the global state (so drain can reach
/// rings of exited threads); only the owning thread writes slots, and
/// drain reads them under the quiescence contract documented in trace.hpp.
struct Ring {
  std::vector<TraceEvent> slots;
  std::size_t next = 0;
  std::size_t count = 0;
  std::uint64_t dropped = 0;
  std::uint64_t seq = 0;
  std::uint16_t tid = 0;
  bool retired = false;  // owning thread exited; freed at the next drain
};

struct TraceState {
  std::mutex mutex;
  std::vector<std::unique_ptr<Ring>> rings;                      // dvlint: guarded_by(mutex)
  std::map<std::string, std::uint32_t, std::less<>> name_index;  // dvlint: guarded_by(mutex)
  std::vector<std::string> names;                                // dvlint: guarded_by(mutex)
  std::uint16_t next_tid = 0;                                    // dvlint: guarded_by(mutex)
  // Read lock-free by emitters; relaxed is fine (a stale capacity or epoch
  // only mis-sizes a ring or shifts telemetry timestamps, never races).
  std::atomic<std::size_t> ring_capacity{std::size_t{1} << 16};
  std::atomic<std::int64_t> epoch_ns{0};
};

/// Leaked so thread-exit retirement can run during static destruction.
TraceState& state() {
  static TraceState* instance = new TraceState();
  return *instance;
}

std::uint64_t now_micros() {
  const std::int64_t now_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count();
  const std::int64_t rel = now_ns - state().epoch_ns.load(std::memory_order_relaxed);
  return rel > 0 ? static_cast<std::uint64_t>(rel) / 1000 : 0;
}

Ring* create_ring() {
  TraceState& s = state();
  auto owned = std::make_unique<Ring>();
  owned->slots.resize(s.ring_capacity.load(std::memory_order_relaxed));
  Ring* ring = owned.get();
  std::lock_guard<std::mutex> lock(s.mutex);
  ring->tid = s.next_tid;
  if (s.next_tid != std::uint16_t{0xffff}) ++s.next_tid;
  s.rings.push_back(std::move(owned));
  return ring;
}

struct TlsRing {
  Ring* ring = nullptr;
  ~TlsRing() {
    if (ring == nullptr) return;
    TraceState& s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    ring->retired = true;
  }
};

Ring& tls_ring() {
  thread_local TlsRing handle;
  if (handle.ring == nullptr) handle.ring = create_ring();
  return *handle.ring;
}

}  // namespace

void trace_enable(std::size_t events_per_thread) {
  TraceState& s = state();
  const std::size_t capacity = std::max<std::size_t>(events_per_thread, 16);
  s.ring_capacity.store(capacity, std::memory_order_relaxed);
  {
    // Re-arming after a drain applies the new capacity to existing rings
    // too; a ring still holding events (enable while armed) keeps its size
    // rather than losing them.
    std::lock_guard<std::mutex> lock(s.mutex);
    for (const auto& ring : s.rings) {
      if (ring->count == 0 && ring->slots.size() != capacity) {
        ring->slots.assign(capacity, TraceEvent{});
        ring->next = 0;
      }
    }
  }
  s.epoch_ns.store(std::chrono::duration_cast<std::chrono::nanoseconds>(
                       std::chrono::steady_clock::now().time_since_epoch())
                       .count(),
                   std::memory_order_relaxed);
  trace_detail::g_enabled.store(true, std::memory_order_relaxed);
}

void trace_disable() {
  trace_detail::g_enabled.store(false, std::memory_order_relaxed);
}

std::uint32_t intern_trace_name(std::string_view name) {
  TraceState& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  const auto it = s.name_index.find(name);
  if (it != s.name_index.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(s.names.size());
  s.names.emplace_back(name);
  s.name_index.emplace(std::string(name), id);
  return id;
}

void trace_emit(EventKind kind, std::uint32_t name_id, std::uint64_t a0,
                std::uint64_t a1) {
  if (!trace_enabled()) return;
  Ring& ring = tls_ring();
  if (ring.slots.empty()) return;
  TraceEvent& ev = ring.slots[ring.next];
  if (ring.count == ring.slots.size()) {
    ++ring.dropped;  // overwrite the oldest event
  } else {
    ++ring.count;
  }
  ev.ts_micros = now_micros();
  ev.a0 = a0;
  ev.a1 = a1;
  ev.seq = ring.seq++;
  ev.name_id = name_id;
  ev.tid = ring.tid;
  ev.kind = kind;
  ring.next = (ring.next + 1) % ring.slots.size();
}

TraceFile trace_drain() {
  TraceState& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  TraceFile file;
  file.names = s.names;
  for (const auto& ring : s.rings) {
    file.dropped += ring->dropped;
    if (ring->count == ring->slots.size()) {
      // Full ring: chronological order starts at the write cursor.
      file.events.insert(file.events.end(), ring->slots.begin() + ring->next,
                         ring->slots.end());
      file.events.insert(file.events.end(), ring->slots.begin(),
                         ring->slots.begin() + ring->next);
    } else {
      file.events.insert(file.events.end(), ring->slots.begin(),
                         ring->slots.begin() + ring->count);
    }
    ring->next = 0;
    ring->count = 0;
    ring->dropped = 0;
  }
  s.rings.erase(std::remove_if(s.rings.begin(), s.rings.end(),
                               [](const std::unique_ptr<Ring>& r) {
                                 return r->retired;
                               }),
                s.rings.end());
  std::sort(file.events.begin(), file.events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return std::tie(a.ts_micros, a.tid, a.seq) <
                     std::tie(b.ts_micros, b.tid, b.seq);
            });
  return file;
}

std::vector<std::byte> TraceFile::encode() const {
  Encoder enc;
  enc.put_string(kEventsSchema);
  enc.put_varint(names.size());
  for (const std::string& name : names) enc.put_string(name);
  enc.put_varint(dropped);
  enc.put_varint(events.size());
  for (const TraceEvent& ev : events) {
    enc.put_varint(ev.ts_micros);
    enc.put_varint(ev.name_id);
    enc.put_varint(ev.tid);
    enc.put_u8(static_cast<std::uint8_t>(ev.kind));
    enc.put_varint(ev.a0);
    enc.put_varint(ev.a1);
  }
  return enc.take();
}

TraceFile TraceFile::decode(std::span<const std::byte> bytes) {
  Decoder dec(bytes);
  const std::string schema = dec.get_string();
  if (schema != kEventsSchema) {
    throw DecodeError("unexpected events schema \"" + schema + "\"");
  }
  TraceFile file;
  const std::uint64_t name_count = dec.get_varint();
  // Every name needs at least its one-byte length prefix, so a count past
  // the remaining input is malformed; reject before reserving.
  if (name_count > dec.remaining()) {
    throw DecodeError("events name count exceeds input");
  }
  file.names.reserve(static_cast<std::size_t>(name_count));
  for (std::uint64_t i = 0; i < name_count; ++i) {
    file.names.push_back(dec.get_string());
  }
  file.dropped = dec.get_varint();
  const std::uint64_t event_count = dec.get_varint();
  // Each event occupies at least 6 bytes; bounding by remaining bytes is
  // looser but still rejects hostile counts before allocation.
  if (event_count > dec.remaining()) {
    throw DecodeError("events count exceeds input");
  }
  file.events.reserve(static_cast<std::size_t>(event_count));
  for (std::uint64_t i = 0; i < event_count; ++i) {
    TraceEvent ev;
    ev.ts_micros = dec.get_varint();
    const std::uint64_t name_id = dec.get_varint();
    if (name_id >= file.names.size()) {
      throw DecodeError("event name id out of range");
    }
    ev.name_id = static_cast<std::uint32_t>(name_id);
    const std::uint64_t tid = dec.get_varint();
    if (tid > 0xffff) throw DecodeError("event tid out of range");
    ev.tid = static_cast<std::uint16_t>(tid);
    const std::uint8_t kind = dec.get_u8();
    if (kind < static_cast<std::uint8_t>(EventKind::kBegin) ||
        kind > static_cast<std::uint8_t>(EventKind::kInstant)) {
      throw DecodeError("event kind out of range");
    }
    ev.kind = static_cast<EventKind>(kind);
    ev.a0 = dec.get_varint();
    ev.a1 = dec.get_varint();
    ev.seq = i;
    file.events.push_back(ev);
  }
  dec.finish();
  return file;
}

}  // namespace obs
}  // namespace dynvote
