// Ring-buffer trace recorder: spans and instants for the protocol event
// stream (case -> shard -> run -> view_installed / session_resolved /
// primary_formed), serialized as "dynvote.events.v1".
//
// Tracing is off by default and costs one relaxed atomic load + branch per
// site when disabled -- nothing allocates, so the zero-alloc hot-path
// guarantee and `results_fingerprint` are untouched.  Enabling (DV_TRACE=1
// or dvdispatch --trace-out) arms per-thread fixed-capacity rings of POD
// events; recording is a thread-local array write with no locks.  When a
// ring fills, the oldest events are overwritten and a dropped count is
// kept, so a runaway sweep degrades to a suffix trace instead of growing
// without bound (capacity per thread via DV_TRACE_BUF).
//
// Like metrics, trace emission is observational only: sites must not call
// RNG or mutate simulation state (dvlint `trace-purity`).  Timestamps come
// from steady_clock relative to the enable instant; they are telemetry,
// never inputs to the simulation.
//
// `trace_drain()` folds every ring into one time-sorted TraceFile.  It
// must only run while emitting threads are quiescent (the sweep runner
// drains after joining its pool); the rings themselves are plain memory.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

namespace dynvote {
namespace obs {

inline constexpr char kEventsSchema[] = "dynvote.events.v1";

enum class EventKind : std::uint8_t {
  kBegin = 1,    // span open;  paired with the next kEnd of the same name/tid
  kEnd = 2,      // span close
  kInstant = 3,  // point event
};

/// One recorded event.  `seq` is the in-memory tiebreak for equal
/// timestamps on one thread; it is not serialized (the file is written in
/// sorted order).
struct TraceEvent {
  std::uint64_t ts_micros = 0;  // since trace_enable()
  std::uint64_t a0 = 0;
  std::uint64_t a1 = 0;
  std::uint64_t seq = 0;
  std::uint32_t name_id = 0;
  std::uint16_t tid = 0;
  EventKind kind = EventKind::kInstant;
};

namespace trace_detail {
extern std::atomic<bool> g_enabled;
}  // namespace trace_detail

/// True while tracing is armed.  This is the whole disabled-path cost.
inline bool trace_enabled() {
  return trace_detail::g_enabled.load(std::memory_order_relaxed);
}

/// Arm tracing.  `events_per_thread` sizes each thread's ring (clamped to
/// a sane minimum); rings allocate lazily on a thread's first event.
void trace_enable(std::size_t events_per_thread = std::size_t{1} << 16);

/// Disarm tracing.  Already-recorded events stay buffered for drain.
void trace_disable();

/// Intern `name` into the process-wide name table, returning its stable
/// id.  Takes a lock; macro sites cache the id in a function-local static.
std::uint32_t intern_trace_name(std::string_view name);

/// Record one event on the calling thread's ring.  No-op when disabled.
void trace_emit(EventKind kind, std::uint32_t name_id, std::uint64_t a0,
                std::uint64_t a1);

/// A drained trace: the name table plus events sorted by
/// (ts_micros, tid, seq), and how many events were overwritten ring-wide.
struct TraceFile {
  std::vector<std::string> names;
  std::vector<TraceEvent> events;
  std::uint64_t dropped = 0;

  /// Serialize as dynvote.events.v1.
  std::vector<std::byte> encode() const;

  /// Strict parse; truncated or hostile input (bad schema, counts beyond
  /// the buffer, out-of-range name ids or kinds) throws DecodeError.
  static TraceFile decode(std::span<const std::byte> bytes);
};

/// Collect and clear every thread's ring.  Caller must ensure emitting
/// threads are quiescent (joined, or between sweeps on this thread).
TraceFile trace_drain();

/// RAII span: emits kBegin at construction and kEnd at destruction when
/// tracing is armed at construction time.  The name may be dynamic (case
/// labels); it is interned only when armed.
class TraceSpan {
 public:
  TraceSpan(std::string_view name, std::uint64_t a0, std::uint64_t a1)
      : armed_(trace_enabled()) {
    if (armed_) {
      name_id_ = intern_trace_name(name);
      trace_emit(EventKind::kBegin, name_id_, a0, a1);
    }
  }
  ~TraceSpan() {
    if (armed_) trace_emit(EventKind::kEnd, name_id_, 0, 0);
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  std::uint32_t name_id_ = 0;
  bool armed_ = false;
};

}  // namespace obs
}  // namespace dynvote

// Emission macros.  Arguments must be pure reads (dvlint `trace-purity`);
// -DDV_OBS_DISABLE compiles the sites out entirely.
#define DV_TRACE_CONCAT_INNER(a, b) a##b
#define DV_TRACE_CONCAT(a, b) DV_TRACE_CONCAT_INNER(a, b)

#ifndef DV_OBS_DISABLE
#define DV_TRACE_INSTANT(name_literal, arg0, arg1)                          \
  do {                                                                      \
    if (::dynvote::obs::trace_enabled()) {                                  \
      static const std::uint32_t dv_trace_name_id_ =                        \
          ::dynvote::obs::intern_trace_name(name_literal);                  \
      ::dynvote::obs::trace_emit(::dynvote::obs::EventKind::kInstant,       \
                                 dv_trace_name_id_,                         \
                                 static_cast<std::uint64_t>(arg0),          \
                                 static_cast<std::uint64_t>(arg1));         \
    }                                                                       \
  } while (false)
#define DV_TRACE_SPAN(name_expr, arg0, arg1)                       \
  ::dynvote::obs::TraceSpan DV_TRACE_CONCAT(dv_trace_span_,        \
                                            __LINE__) {           \
    (name_expr), static_cast<std::uint64_t>(arg0),                 \
        static_cast<std::uint64_t>(arg1)                           \
  }
#else
#define DV_TRACE_INSTANT(name_literal, arg0, arg1) \
  do {                                             \
    (void)sizeof(arg0);                            \
    (void)sizeof(arg1);                            \
  } while (false)
#define DV_TRACE_SPAN(name_expr, arg0, arg1) \
  do {                                       \
    (void)sizeof(name_expr);                 \
    (void)sizeof(arg0);                      \
    (void)sizeof(arg1);                      \
  } while (false)
#endif
