// Structure-of-arrays storage for K ProcessSet bitmaps over one universe.
//
// The batched Monte-Carlo engine advances K independent runs in lockstep;
// the set algebra those runs share (component masks, quorum evaluation,
// membership deltas) then operates on K bitmaps at once.  Laying the K
// bitmaps out contiguously -- lane-major, `words_per_lane` 64-bit words per
// lane, no per-lane header -- turns every batch-wide intersect / minus /
// unite into a single dense loop over `lanes * words_per_lane` words: one
// streaming pass the compiler auto-vectorizes, instead of K separate
// ProcessSet walks with K universe checks and (past the SBO limit) K
// pointer chases into spilled storage.
//
// The storage itself comes from the spill arena, so resizing or rebuilding
// batches inside the sweep loop is allocation-free once the arena is warm.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/process_set.hpp"
#include "core/types.hpp"
#include "util/assert.hpp"
#include "util/spill_arena.hpp"

namespace dynvote {

class ProcessSetBatch {
 public:
  /// An empty batch is only a placeholder before reset().
  ProcessSetBatch() = default;

  ProcessSetBatch(std::size_t universe_size, std::size_t lanes) {
    reset(universe_size, lanes);
  }

  /// Re-shape to `lanes` empty sets over `universe_size`, reusing storage.
  void reset(std::size_t universe_size, std::size_t lanes) {
    universe_size_ = universe_size;
    lanes_ = lanes;
    words_per_lane_ = (universe_size + 63) / 64;
    words_.assign(lanes_ * words_per_lane_, 0);
  }

  std::size_t universe_size() const { return universe_size_; }
  std::size_t lanes() const { return lanes_; }
  std::size_t words_per_lane() const { return words_per_lane_; }

  /// Raw word span of one lane's bitmap (words_per_lane() words).
  std::uint64_t* lane_words(std::size_t lane) {
    check_lane(lane);
    return words_.data() + lane * words_per_lane_;
  }
  const std::uint64_t* lane_words(std::size_t lane) const {
    check_lane(lane);
    return words_.data() + lane * words_per_lane_;
  }

  /// Copy a ProcessSet into a lane (universes must match).
  void set_lane(std::size_t lane, const ProcessSet& s);

  /// Materialize one lane as a standalone ProcessSet.
  ProcessSet extract_lane(std::size_t lane) const;

  void lane_insert(std::size_t lane, ProcessId id) {
    DV_REQUIRE(id < universe_size_, "process id outside the batch universe");
    lane_words(lane)[id / 64] |= (std::uint64_t{1} << (id % 64));
  }

  bool lane_contains(std::size_t lane, ProcessId id) const {
    if (id >= universe_size_) return false;
    return (lane_words(lane)[id / 64] >> (id % 64)) & 1;
  }

  std::size_t lane_count(std::size_t lane) const;

  // --- batch-wide algebra: every lane against the matching lane of
  // `other` (shapes must be identical), as one dense word loop ---
  void intersect_lanes(const ProcessSetBatch& other);
  void minus_lanes(const ProcessSetBatch& other);
  void unite_lanes(const ProcessSetBatch& other);

  // --- broadcast algebra: every lane against one shared mask ---
  void intersect_broadcast(const ProcessSet& mask);
  void minus_broadcast(const ProcessSet& mask);
  void unite_broadcast(const ProcessSet& mask);

  /// Member counts of all lanes in one pass; `out` must hold lanes() slots.
  void counts(std::size_t* out) const;

  /// |lane ∩ mask| for all lanes in one pass; `out` holds lanes() slots.
  void intersection_counts(const ProcessSet& mask, std::size_t* out) const;

  /// Dynamic-linear-voting subquorum verdicts for every lane against one
  /// shared `of` set (thesis Figure 3-4, including the exact-half lexical
  /// tie-break); `out` must hold lanes() slots.  `of` must be non-empty.
  void subquorum_of(const ProcessSet& of, bool* out) const;

  bool operator==(const ProcessSetBatch& other) const = default;

 private:
  void check_lane(std::size_t lane) const {
    DV_REQUIRE(lane < lanes_, "lane index outside the batch");
  }
  void check_shape(const ProcessSetBatch& other) const {
    DV_REQUIRE(universe_size_ == other.universe_size_ &&
                   lanes_ == other.lanes_,
               "batch operation across mismatched shapes");
  }
  void check_mask(const ProcessSet& mask) const {
    DV_REQUIRE(mask.universe_size() == universe_size_,
               "broadcast mask from a different universe");
  }

  std::size_t universe_size_ = 0;
  std::size_t lanes_ = 0;
  std::size_t words_per_lane_ = 0;
  std::vector<std::uint64_t, SpillArenaAllocator<std::uint64_t>> words_;
};

}  // namespace dynvote
