// DFLS: the De Prisco / Fekete / Lynch / Shvartsman variant (PODC'98).
//
// Unoptimized YKD plus one extra message round: ambiguous sessions are not
// deleted when a primary is formed; the members of the new primary first
// exchange one more round, and only a process that hears that round from
// everyone deletes them.  Until then the stale sessions keep constraining
// future primaries, which costs roughly 3% availability versus YKD at
// moderate change rates (thesis §4.1).  Three message rounds total.
#pragma once

#include "core/ykd_family.hpp"

namespace dynvote {

class Dfls final : public YkdFamilyBase {
 public:
  Dfls(ProcessId self, const View& initial_view);

  void view_changed(const View& view) override;
  std::string_view name() const override { return "dfls"; }

 protected:
  void on_primary_formed() override;
  void handle_extra_payload(const ProtocolPayload& payload,
                            ProcessId sender) override;
  void save_extra(Encoder& enc) const override;
  void load_extra(Decoder& dec) override;

 private:
  bool gc_pending_ = false;
  SessionNumber gc_number_ = 0;
  ProcessSet gc_received_;
};

}  // namespace dynvote
