#include "core/payload.hpp"

#include "util/assert.hpp"

namespace dynvote {

namespace {

void encode_session_vector(Encoder& enc, const std::vector<Session>& sessions) {
  enc.put_varint(sessions.size());
  for (const Session& s : sessions) s.encode(enc);
}

std::vector<Session> decode_session_vector(Decoder& dec) {
  const std::uint64_t n = dec.get_varint();
  if (n > 100'000) throw DecodeError("implausible session vector length");
  std::vector<Session> out;
  out.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) out.push_back(Session::decode(dec));
  return out;
}

Mr1pStatus decode_status(Decoder& dec) {
  const auto raw = dec.get_u8();
  if (raw > static_cast<std::uint8_t>(Mr1pStatus::kTryFail)) {
    throw DecodeError("bad Mr1pStatus");
  }
  return static_cast<Mr1pStatus>(raw);
}

Mr1pVerdict decode_verdict(Decoder& dec) {
  const auto raw = dec.get_u8();
  if (raw < static_cast<std::uint8_t>(Mr1pVerdict::kFormed) ||
      raw > static_cast<std::uint8_t>(Mr1pVerdict::kStatusTryFail)) {
    throw DecodeError("bad Mr1pVerdict");
  }
  return static_cast<Mr1pVerdict>(raw);
}

}  // namespace

void StateExchangePayload::encode_body(Encoder& enc) const {
  enc.put_varint(session_number);
  last_primary.encode(enc);
  encode_session_vector(enc, ambiguous);
  encode_session_vector(enc, last_formed);
}

std::shared_ptr<StateExchangePayload> StateExchangePayload::decode_body(Decoder& dec) {
  auto p = std::make_shared<StateExchangePayload>();
  p->session_number = dec.get_varint();
  p->last_primary = Session::decode(dec);
  p->ambiguous = decode_session_vector(dec);
  p->last_formed = decode_session_vector(dec);
  return p;
}

void AttemptPayload::encode_body(Encoder& enc) const { proposal.encode(enc); }

std::shared_ptr<AttemptPayload> AttemptPayload::decode_body(Decoder& dec) {
  auto p = std::make_shared<AttemptPayload>();
  p->proposal = Session::decode(dec);
  return p;
}

void GcRoundPayload::encode_body(Encoder& enc) const {
  enc.put_varint(formed_number);
}

std::shared_ptr<GcRoundPayload> GcRoundPayload::decode_body(Decoder& dec) {
  auto p = std::make_shared<GcRoundPayload>();
  p->formed_number = dec.get_varint();
  return p;
}

void Mr1pPendingPayload::encode_body(Encoder& enc) const {
  enc.put_bool(has_pending);
  pending.encode(enc);
  enc.put_varint(num);
  enc.put_u8(static_cast<std::uint8_t>(status));
}

std::shared_ptr<Mr1pPendingPayload> Mr1pPendingPayload::decode_body(Decoder& dec) {
  auto p = std::make_shared<Mr1pPendingPayload>();
  p->has_pending = dec.get_bool();
  p->pending = Session::decode(dec);
  p->num = dec.get_varint();
  p->status = decode_status(dec);
  return p;
}

void Mr1pReplyPayload::encode_body(Encoder& enc) const {
  enc.put_varint(replies.size());
  for (const Mr1pReplyItem& r : replies) {
    r.about.encode(enc);
    enc.put_u8(static_cast<std::uint8_t>(r.verdict));
    enc.put_varint(r.num);
  }
}

std::shared_ptr<Mr1pReplyPayload> Mr1pReplyPayload::decode_body(Decoder& dec) {
  auto p = std::make_shared<Mr1pReplyPayload>();
  const std::uint64_t n = dec.get_varint();
  if (n > 100'000 || n > dec.remaining()) {
    throw DecodeError("implausible reply count");
  }
  p->replies.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    Mr1pReplyItem r;
    r.about = Session::decode(dec);
    r.verdict = decode_verdict(dec);
    r.num = dec.get_varint();
    p->replies.push_back(std::move(r));
  }
  return p;
}

void Mr1pResolvePayload::encode_body(Encoder& enc) const {
  about.encode(enc);
  enc.put_u8(static_cast<std::uint8_t>(call));
}

std::shared_ptr<Mr1pResolvePayload> Mr1pResolvePayload::decode_body(Decoder& dec) {
  auto p = std::make_shared<Mr1pResolvePayload>();
  p->about = Session::decode(dec);
  p->call = decode_verdict(dec);
  return p;
}

void Mr1pProposePayload::encode_body(Encoder& enc) const { proposal.encode(enc); }

std::shared_ptr<Mr1pProposePayload> Mr1pProposePayload::decode_body(Decoder& dec) {
  auto p = std::make_shared<Mr1pProposePayload>();
  p->proposal = Session::decode(dec);
  return p;
}

void Mr1pAttemptPayload::encode_body(Encoder& enc) const { proposal.encode(enc); }

std::shared_ptr<Mr1pAttemptPayload> Mr1pAttemptPayload::decode_body(Decoder& dec) {
  auto p = std::make_shared<Mr1pAttemptPayload>();
  p->proposal = Session::decode(dec);
  return p;
}

std::vector<std::byte> encode_payload(const ProtocolPayload& payload) {
  Encoder enc;
  enc.put_u8(static_cast<std::uint8_t>(payload.type()));
  enc.put_varint(payload.view_id);
  payload.encode_body(enc);
  return enc.take();
}

PayloadPtr decode_payload(std::span<const std::byte> bytes) {
  Decoder dec(bytes);
  const auto raw_type = dec.get_u8();
  const ViewId view_id = dec.get_varint();

  std::shared_ptr<ProtocolPayload> payload;
  switch (static_cast<PayloadType>(raw_type)) {
    case PayloadType::kStateExchange:
      payload = StateExchangePayload::decode_body(dec);
      break;
    case PayloadType::kAttempt:
      payload = AttemptPayload::decode_body(dec);
      break;
    case PayloadType::kGcRound:
      payload = GcRoundPayload::decode_body(dec);
      break;
    case PayloadType::kMr1pPending:
      payload = Mr1pPendingPayload::decode_body(dec);
      break;
    case PayloadType::kMr1pReply:
      payload = Mr1pReplyPayload::decode_body(dec);
      break;
    case PayloadType::kMr1pResolve:
      payload = Mr1pResolvePayload::decode_body(dec);
      break;
    case PayloadType::kMr1pPropose:
      payload = Mr1pProposePayload::decode_body(dec);
      break;
    case PayloadType::kMr1pAttempt:
      payload = Mr1pAttemptPayload::decode_body(dec);
      break;
    default:
      throw DecodeError("unknown payload type");
  }
  payload->view_id = view_id;
  dec.finish();
  return payload;
}

std::size_t payload_wire_size(const ProtocolPayload& payload) {
  return encode_payload(payload).size();
}

}  // namespace dynvote
