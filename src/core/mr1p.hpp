// MR1p: Majority-Resilient 1-pending (thesis §3.2.4; based on ideas from
// Lamport's Paxos and Malloth-Schiper's Phoenix).
//
// Like 1-pending it retains at most one ambiguous session, but it can
// resolve that session after hearing from only a *majority* of its members,
// at the cost of five message rounds when a pending session exists:
//
//   R1  holders multicast their pending session (<A, num, status>);
//   R2  everyone replies with what it knows about each queried session
//       (formed / aborted / its own status echo), batched per sender;
//   R3  holders that gathered echoes from a majority multicast their call
//       on the outcome; a majority of try-fail calls abandons the session;
//   R4  <V,1>: request to declare the current view a primary -- sent by a
//       process as soon as it has no pending session and the view is a
//       subquorum of its current primary;
//   R5  once <V,1> has arrived from ALL members, <attempt,V>; the primary
//       is formed once attempts arrive from a MAJORITY of the view.
//
// With no pending session only R4+R5 run: two rounds, as the thesis states.
//
// Interpretations of the thesis pseudocode (documented deviations):
//  * "Upon receipt of <V, formed>: ... is_primary = true": we update
//    cur_primary and formedViews but do NOT set is_primary -- the queried
//    session belongs to an earlier view, and declaring a primary for a view
//    other than the current one would break the one-live-primary invariant
//    the simulator checks.  try-new follows, as written.
//  * The thesis pseudocode does not say what resolves a session whose most
//    advanced echo is "attempt" (only <tryfail,V> has a consumption rule).
//    Mr1pResolutionPolicy picks the interpretation; see below.  A call of
//    "sent" becomes try-fail, exactly as in the pseudocode.
//  * Replies are batched: all round-1 queries delivered in a round are
//    answered in one multicast at the next poll.
//
// formedViews grows as primaries form; per the thesis's optimization it is
// reset whenever a primary equal to the full initial view forms (everyone
// is present in that formation, so no older session can ever be queried
// again).
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "core/algorithm.hpp"
#include "core/payload.hpp"

namespace dynvote {

/// What to do when a majority of a pending session's members echoed their
/// status and the most advanced of them had already sent its attempt
/// message (so the session may have formed somewhere out of sight).
enum class Mr1pResolutionPolicy {
  /// Keep the session pending until formed/aborted evidence arrives, or
  /// every member is present and still pending (which proves the attempt
  /// never completed and aborts it).  Blocks more -- this matches the
  /// thesis's finding that MR1p degrades drastically as changes accumulate,
  /// and is the default.
  kConservative,
  /// Paxos-style completion: treat the possibly-formed session as formed
  /// and adopt it as the current primary.  Never blocks on this case; an
  /// ablation bench measures how much availability the choice is worth.
  kAdoptOnAttempt,
};

struct Mr1pOptions {
  Mr1pResolutionPolicy policy = Mr1pResolutionPolicy::kConservative;
};

class Mr1p final : public PrimaryComponentAlgorithm {
 public:
  Mr1p(ProcessId self, const View& initial_view, Mr1pOptions options = {});

  void view_changed(const View& view) override;
  Message incoming_message(Message message, ProcessId sender) override;
  std::optional<Message> outgoing_message_poll(const Message& app) override;
  bool in_primary() const override { return in_primary_; }
  std::string_view name() const override { return "mr1p"; }
  AlgorithmDebugInfo debug_info() const override;
  const Session& last_primary_session() const override { return cur_primary_; }
  void save(Encoder& enc) const override;
  void load(Decoder& dec) override;

 private:
  void try_new();
  void stage(std::shared_ptr<ProtocolPayload> payload);
  void handle_pending(const Mr1pPendingPayload& payload, ProcessId sender);
  void handle_reply(const Mr1pReplyPayload& payload, ProcessId sender);
  void handle_resolve(const Mr1pResolvePayload& payload, ProcessId sender);
  void handle_propose(const Mr1pProposePayload& payload, ProcessId sender);
  void handle_attempt(const Mr1pAttemptPayload& payload, ProcessId sender);
  void maybe_resolve();
  void adopt_formed(const Session& session);
  void abandon_pending();
  void record_formed(const Session& session);
  bool knows_formed(const Session& session) const;
  /// The session this view would become if declared primary.
  Session view_session() const;

  // --- persistent state (thesis §3.2.4) ---
  Mr1pOptions options_;  // dvlint: transient(constructor configuration)
  Session cur_primary_;
  std::optional<Session> pending_;
  std::uint64_t num_ = 0;
  Mr1pStatus status_ = Mr1pStatus::kNone;
  std::vector<Session> formed_views_;
  bool in_primary_ = true;

  // --- per-view protocol state ---
  View current_view_;
  /// Staged payloads, appended and consumed front-to-back via outbox_head_
  /// (vector + cursor instead of a deque so capacity survives view changes
  /// and steady-state staging never allocates).  The consumed prefix is
  /// dead; save() encodes only the live range and load() re-packs from 0.
  std::vector<PayloadPtr> outbox_;
  std::size_t outbox_head_ = 0;
  /// Distinct sessions queried via R1 since the last poll, awaiting replies.
  std::vector<Session> unanswered_queries_;
  /// Members of pending_ whose status echo arrived (self included via
  /// self-delivery of our own reply batch).
  ProcessSet echo_senders_;
  std::uint64_t best_echo_num_ = 0;
  Mr1pStatus best_echo_status_ = Mr1pStatus::kNone;
  bool resolve_sent_ = false;
  /// Members of pending_ whose resolution call was try-fail.
  ProcessSet tryfail_callers_;
  ProcessSet propose_received_;
  ProcessSet attempt_received_;
  bool attempt_sent_ = false;
  bool tried_new_ = false;
  /// Single-slot payload reuse, valid only while we hold the sole
  /// reference (single-threaded simulation; snapshots cover these by value
  /// wherever the payload is actually staged or in flight).
  std::shared_ptr<Mr1pPendingPayload>
      pending_pool_;  // dvlint: transient(allocator cache, never read back)
  std::shared_ptr<Mr1pReplyPayload>
      reply_pool_;  // dvlint: transient(allocator cache, never read back)
};

}  // namespace dynvote
