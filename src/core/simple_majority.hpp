// The simple (non-dynamic) majority control algorithm (thesis §3.3).
//
// Declares a primary whenever the current view is a quorum of the *initial*
// view -- a strict majority, or exactly half including the lexically
// smallest initial member.  Stateless, message-free, and instantaneous; the
// dynamic voting algorithms exist to improve on it, so it serves as the
// baseline in every availability figure.
#pragma once

#include "core/algorithm.hpp"

namespace dynvote {

class SimpleMajority final : public PrimaryComponentAlgorithm {
 public:
  SimpleMajority(ProcessId self, const View& initial_view);

  void view_changed(const View& view) override;
  Message incoming_message(Message message, ProcessId sender) override;
  std::optional<Message> outgoing_message_poll(const Message& app) override;
  bool in_primary() const override { return in_primary_; }
  std::string_view name() const override { return "simple-majority"; }
  AlgorithmDebugInfo debug_info() const override;
  const Session& last_primary_session() const override { return last_primary_; }
  void save(Encoder& enc) const override;
  void load(Decoder& dec) override;

 private:
  bool in_primary_ = true;
  View current_view_;
  Session last_primary_;  // latest view this process declared primary
};

}  // namespace dynvote
