#include "core/dfls.hpp"

namespace dynvote {

Dfls::Dfls(ProcessId self, const View& initial_view)
    : YkdFamilyBase(self, initial_view, PruneMode::kGlobalSuperseded,
                    /*filter_constraints=*/false),
      gc_received_(initial_view.members.universe_size()) {}

void Dfls::view_changed(const View& view) {
  // Interrupted before the GC round completed: the ambiguous sessions stay.
  gc_pending_ = false;
  gc_received_.clear();
  YkdFamilyBase::view_changed(view);
}

void Dfls::on_primary_formed() {
  // Keep the ambiguous sessions for one more exchange round in the newly
  // formed primary.
  gc_pending_ = true;
  gc_number_ = last_primary_.number;
  gc_received_.clear();

  auto gc = std::make_shared<GcRoundPayload>();
  gc->formed_number = gc_number_;
  stage(std::move(gc));
}

void Dfls::save_extra(Encoder& enc) const {
  enc.put_bool(gc_pending_);
  enc.put_varint(gc_number_);
  gc_received_.encode(enc);
}

void Dfls::load_extra(Decoder& dec) {
  gc_pending_ = dec.get_bool();
  gc_number_ = dec.get_varint();
  gc_received_ = ProcessSet::decode(dec);
}

void Dfls::handle_extra_payload(const ProtocolPayload& payload,
                                ProcessId sender) {
  if (payload.type() != PayloadType::kGcRound || !gc_pending_) return;
  const auto& gc = static_cast<const GcRoundPayload&>(payload);
  if (gc.formed_number != gc_number_) return;
  gc_received_.insert(sender);
  if (gc_received_ == current_view().members) {
    if (!ambiguous_.empty()) note_state_mutated();
    ambiguous_.clear();
    gc_pending_ = false;
  }
}

}  // namespace dynvote
