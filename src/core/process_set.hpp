// A set of processes, stored as a bitmap.
//
// The thesis notes an ambiguous session costs "roughly 2n bits" for an
// n-process system: a membership bitmap plus a number.  ProcessSet is that
// bitmap -- a fixed-universe dynamic bitset with the set algebra the quorum
// rules need (intersection counting, subset tests, lowest member for the
// lexical tie-break).
//
// Storage is small-buffer optimized: universes of up to 128 processes (two
// 64-bit words -- the study itself tops out at 64) live entirely inline, so
// constructing, copying and combining the sets that flow through every
// protocol round never touches the allocator.  Larger universes spill to a
// heap vector.  Invariant: exactly one representation is active -- when the
// set is inline the spill vector is empty and any unused inline words are
// zero; when spilled the inline words are all zero -- so the defaulted
// equality is structural equality and the wire format, `compare` and `hash`
// are byte-identical to the old always-heap layout.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <initializer_list>
#include <string>
#include <vector>

#include "core/types.hpp"
#include "util/assert.hpp"
#include "util/spill_arena.hpp"

namespace dynvote {

class Encoder;
class Decoder;

class ProcessSet {
 public:
  /// Empty set over a universe of `universe_size` processes (ids
  /// 0..universe_size-1).  A default-constructed set has universe 0 and is
  /// only useful as a placeholder before assignment.
  ProcessSet() = default;
  explicit ProcessSet(std::size_t universe_size);
  ProcessSet(std::size_t universe_size, std::initializer_list<ProcessId> ids);

  ProcessSet(const ProcessSet&) = default;
  ProcessSet& operator=(const ProcessSet&) = default;
  /// Moves leave the source in the default (universe-0) state, preserving
  /// the representation invariant the defaulted equality relies on.
  ProcessSet(ProcessSet&& other) noexcept
      : universe_size_(other.universe_size_),
        inline_words_(other.inline_words_),
        spill_(std::move(other.spill_)) {
    other.universe_size_ = 0;
    other.inline_words_.fill(0);
    other.spill_.clear();
  }
  ProcessSet& operator=(ProcessSet&& other) noexcept {
    if (this != &other) {
      universe_size_ = other.universe_size_;
      inline_words_ = other.inline_words_;
      spill_ = std::move(other.spill_);
      other.universe_size_ = 0;
      other.inline_words_.fill(0);
      other.spill_.clear();
    }
    return *this;
  }
  ~ProcessSet() = default;

  /// The full set {0, ..., universe_size-1}.
  static ProcessSet full(std::size_t universe_size);

  std::size_t universe_size() const { return universe_size_; }

  /// Number of members.
  std::size_t count() const;
  bool empty() const { return count() == 0; }

  bool contains(ProcessId id) const {
    if (id >= universe_size_) return false;
    return (word_data()[id / 64] >> (id % 64)) & 1;
  }

  void insert(ProcessId id) {
    check_id(id);
    word_data()[id / 64] |= (1ULL << (id % 64));
  }

  void erase(ProcessId id) {
    check_id(id);
    word_data()[id / 64] &= ~(1ULL << (id % 64));
  }

  void clear() {
    std::uint64_t* words = word_data();
    for (std::size_t w = 0; w < word_count(); ++w) words[w] = 0;
  }

  /// Lowest-numbered member ("lexically smallest" in the thesis);
  /// kInvalidProcess if empty.
  ProcessId lowest() const;

  /// Number of members shared with `other` (same universe required).
  std::size_t intersection_count(const ProcessSet& other) const;

  bool is_subset_of(const ProcessSet& other) const;
  bool intersects(const ProcessSet& other) const;

  ProcessSet united_with(const ProcessSet& other) const;
  ProcessSet intersected_with(const ProcessSet& other) const;
  /// Members of *this that are not in `other`.
  ProcessSet minus(const ProcessSet& other) const;

  /// Members in ascending id order.
  std::vector<ProcessId> members() const;

  /// Invoke `fn(ProcessId)` for every member in ascending order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    const std::uint64_t* words = word_data();
    for (std::size_t w = 0; w < word_count(); ++w) {
      std::uint64_t word = words[w];
      while (word != 0) {
        const int bit = __builtin_ctzll(word);
        fn(static_cast<ProcessId>(w * 64 + static_cast<std::size_t>(bit)));
        word &= word - 1;
      }
    }
  }

  bool operator==(const ProcessSet& other) const = default;

  /// Three-way comparison giving an arbitrary but fixed total order over
  /// sets of the same universe (used to break session-number ties the same
  /// way at every process).  Returns <0, 0, >0.  Defined inline: this is
  /// the hottest call in the session tie-break fold (hundreds of millions
  /// of calls per sweep).
  int compare(const ProcessSet& other) const {
    check_same_universe(other);
    const std::uint64_t* a = word_data();
    const std::uint64_t* b = other.word_data();
    for (std::size_t w = 0; w < word_count(); ++w) {
      if (a[w] != b[w]) {
        return a[w] < b[w] ? -1 : 1;
      }
    }
    return 0;
  }

  /// Render as "{0,1,5}" for logs and test failures.
  std::string to_string() const;

  /// Wire format: varint universe size + raw words.
  void encode(Encoder& enc) const;
  static ProcessSet decode(Decoder& dec);

  /// Stable hash usable as a key component.
  std::size_t hash() const;

 private:
  /// SoA batch storage copies raw words in and out of lanes.
  friend class ProcessSetBatch;

  /// Universes of up to kInlineWords * 64 ids are stored without heap
  /// allocation.
  static constexpr std::size_t kInlineWords = 2;

  static constexpr std::size_t words_for(std::size_t universe_size) {
    return (universe_size + 63) / 64;
  }

  std::size_t word_count() const { return words_for(universe_size_); }

  const std::uint64_t* word_data() const {
    return spill_.empty() ? inline_words_.data() : spill_.data();
  }
  std::uint64_t* word_data() {
    return spill_.empty() ? inline_words_.data() : spill_.data();
  }

  void check_id(ProcessId id) const {
    DV_REQUIRE(id < universe_size_, "process id outside the set's universe");
  }
  void check_same_universe(const ProcessSet& other) const {
    DV_REQUIRE(universe_size_ == other.universe_size_,
               "set operation across different universes");
  }

  std::size_t universe_size_ = 0;
  std::array<std::uint64_t, kInlineWords> inline_words_{};
  /// Spill storage comes from the thread-local freelist arena, so building
  /// and dropping sets at N > 128 stays allocation-free once the arena's
  /// freelists are warm (the zero-alloc guarantee past the SBO limit).
  std::vector<std::uint64_t, SpillArenaAllocator<std::uint64_t>> spill_;
};

}  // namespace dynvote

template <>
struct std::hash<dynvote::ProcessSet> {
  std::size_t operator()(const dynvote::ProcessSet& s) const {
    return s.hash();
  }
};
