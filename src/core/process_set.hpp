// A set of processes, stored as a bitmap.
//
// The thesis notes an ambiguous session costs "roughly 2n bits" for an
// n-process system: a membership bitmap plus a number.  ProcessSet is that
// bitmap -- a fixed-universe dynamic bitset with the set algebra the quorum
// rules need (intersection counting, subset tests, lowest member for the
// lexical tie-break).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <initializer_list>
#include <string>
#include <vector>

#include "core/types.hpp"

namespace dynvote {

class Encoder;
class Decoder;

class ProcessSet {
 public:
  /// Empty set over a universe of `universe_size` processes (ids
  /// 0..universe_size-1).  A default-constructed set has universe 0 and is
  /// only useful as a placeholder before assignment.
  ProcessSet() = default;
  explicit ProcessSet(std::size_t universe_size);
  ProcessSet(std::size_t universe_size, std::initializer_list<ProcessId> ids);

  /// The full set {0, ..., universe_size-1}.
  static ProcessSet full(std::size_t universe_size);

  std::size_t universe_size() const { return universe_size_; }

  /// Number of members.
  std::size_t count() const;
  bool empty() const { return count() == 0; }

  bool contains(ProcessId id) const;
  void insert(ProcessId id);
  void erase(ProcessId id);
  void clear();

  /// Lowest-numbered member ("lexically smallest" in the thesis);
  /// kInvalidProcess if empty.
  ProcessId lowest() const;

  /// Number of members shared with `other` (same universe required).
  std::size_t intersection_count(const ProcessSet& other) const;

  bool is_subset_of(const ProcessSet& other) const;
  bool intersects(const ProcessSet& other) const;

  ProcessSet united_with(const ProcessSet& other) const;
  ProcessSet intersected_with(const ProcessSet& other) const;
  /// Members of *this that are not in `other`.
  ProcessSet minus(const ProcessSet& other) const;

  /// Members in ascending id order.
  std::vector<ProcessId> members() const;

  /// Invoke `fn(ProcessId)` for every member in ascending order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      std::uint64_t word = words_[w];
      while (word != 0) {
        const int bit = __builtin_ctzll(word);
        fn(static_cast<ProcessId>(w * 64 + static_cast<std::size_t>(bit)));
        word &= word - 1;
      }
    }
  }

  bool operator==(const ProcessSet& other) const = default;

  /// Three-way comparison giving an arbitrary but fixed total order over
  /// sets of the same universe (used to break session-number ties the same
  /// way at every process).  Returns <0, 0, >0.
  int compare(const ProcessSet& other) const;

  /// Render as "{0,1,5}" for logs and test failures.
  std::string to_string() const;

  /// Wire format: varint universe size + raw words.
  void encode(Encoder& enc) const;
  static ProcessSet decode(Decoder& dec);

  /// Stable hash usable as a key component.
  std::size_t hash() const;

 private:
  void check_id(ProcessId id) const;
  void check_same_universe(const ProcessSet& other) const;

  std::size_t universe_size_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace dynvote

template <>
struct std::hash<dynvote::ProcessSet> {
  std::size_t operator()(const dynvote::ProcessSet& s) const {
    return s.hash();
  }
};
