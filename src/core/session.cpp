#include "core/session.hpp"

#include "util/codec.hpp"

namespace dynvote {

std::string Session::to_string() const {
  return "session#" + std::to_string(number) + members.to_string();
}

void Session::encode(Encoder& enc) const {
  enc.put_varint(number);
  members.encode(enc);
}

Session Session::decode(Decoder& dec) {
  Session s;
  s.number = dec.get_varint();
  s.members = ProcessSet::decode(dec);
  return s;
}

}  // namespace dynvote
