// Shared engine for the YKD family of dynamic voting algorithms.
//
// YKD, unoptimized YKD, DFLS and 1-pending all follow the same two-round
// skeleton (thesis §3.1, Figures 3-2..3-4):
//
//   round 1  every member of the new view multicasts its full state
//            (session counter, lastPrimary, ambiguous sessions, lastFormed);
//   decide   once state from *every* member has arrived, each process runs
//            the same deterministic LEARN / RESOLVE / COMPUTE / DECIDE on
//            the identical combined knowledge;
//   round 2  if the decision is to attempt, multicast an attempt message;
//            the primary is formed once attempts from every member arrive.
//
// The variants differ only in (a) whether the storage-pruning optimization
// runs (YKD yes, unoptimized/DFLS no), (b) when ambiguous sessions are
// deleted after a successful formation (immediately vs. DFLS's extra
// round), and (c) whether a pending ambiguous session blocks new attempts
// (1-pending).  Those knobs are the virtual hooks below.
//
// Decision-time interpretation.  The thesis states the optimization "does
// not provide additional information -- it merely helps remove redundant
// information", and reports identical availability for YKD and unoptimized
// YKD.  We realize that by construction: DECIDE always evaluates the
// constraint pool from the *combined* received state --
//
//   pool = { S in union of everyone's ambiguous lists
//            : S.number > maxPrimary.number }
//          minus sessions provably never formed (every member of S is in
//          the current view and none of their states records forming S)
//
// -- so pruning a process's *stored* list (which only removes sessions that
// this filter would drop anyway) cannot change any decision.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/algorithm.hpp"
#include "core/payload.hpp"

namespace dynvote {

/// The deterministic summary every member computes from the round-1 states
/// (the thesis's COMPUTE step plus the decision-time filtering).
struct CombinedKnowledge {
  SessionNumber max_session = 0;
  /// Highest-numbered lastPrimary reported by any member.
  Session max_primary;
  /// maxAmbiguousSessions after filtering: the constraints a new primary
  /// must be a subquorum of.
  std::vector<Session> constraints;
};

/// Flat, id-indexed table of the round-1 states received in the current
/// exchange.  Replaces a std::map keyed by ProcessId: slot access is O(1)
/// and allocation-free (the per-insert map node was the dominant
/// steady-state allocation of the round loop), and iteration is in
/// ascending process id -- the deterministic traversal order the
/// combined-knowledge folds and the snapshot writer require.
class StateExchangeTable {
 public:
  using Ptr = std::shared_ptr<const StateExchangePayload>;

  /// Pair-shaped view of one occupied slot, so range-for call sites read
  /// like the map this replaced.
  struct Entry {
    ProcessId first;
    const Ptr& second;
  };

  class const_iterator {
   public:
    const_iterator(const StateExchangeTable* table, std::size_t index)
        : table_(table), index_(index) {
      skip_empty();
    }
    Entry operator*() const {
      return Entry{static_cast<ProcessId>(index_), table_->slots_[index_]};
    }
    const_iterator& operator++() {
      ++index_;
      skip_empty();
      return *this;
    }
    bool operator==(const const_iterator& other) const {
      return index_ == other.index_;
    }

   private:
    void skip_empty() {
      while (index_ < table_->slots_.size() && !table_->slots_[index_]) {
        ++index_;
      }
    }
    const StateExchangeTable* table_;
    std::size_t index_;
  };

  /// Size the table for a universe of `universe` processes, dropping
  /// everything held.
  void reset_universe(std::size_t universe) {
    slots_.assign(universe, nullptr);
    count_ = 0;
  }

  /// Record `state` as received from `q` (q must be inside the universe).
  void set(ProcessId q, Ptr state) {
    if (!slots_[q]) ++count_;
    slots_[q] = std::move(state);
  }

  /// The state received from `q`, or nullptr if none (or q out of range).
  const StateExchangePayload* get(ProcessId q) const {
    return q < slots_.size() ? slots_[q].get() : nullptr;
  }

  /// Number of distinct processes whose state has been received.
  std::size_t size() const { return count_; }

  /// Drop every held state, keeping the slot storage.
  void clear() {
    for (Ptr& slot : slots_) slot = nullptr;
    count_ = 0;
  }

  const_iterator begin() const { return const_iterator(this, 0); }
  const_iterator end() const { return const_iterator(this, slots_.size()); }

 private:
  std::vector<Ptr> slots_;
  std::size_t count_ = 0;
};

class YkdFamilyBase : public PrimaryComponentAlgorithm {
 public:
  void view_changed(const View& view) override;
  Message incoming_message(Message message, ProcessId sender) override;
  std::optional<Message> outgoing_message_poll(const Message& app) override;
  bool in_primary() const override { return in_primary_; }
  AlgorithmDebugInfo debug_info() const override;
  const Session& last_primary_session() const override { return last_primary_; }

  /// Checkpoint every mutable field -- persistent state, exchange progress,
  /// the staged outbox -- so a restored instance resumes mid-protocol.
  /// Variant-private state rides along via save_extra()/load_extra().
  void save(Encoder& enc) const override;
  void load(Decoder& dec) override;

 protected:
  /// Ordered by process id: the combined-knowledge folds and the snapshot
  /// writer iterate this table, so its traversal order must be
  /// deterministic across platforms (dvlint's determinism check bans
  /// unordered iteration in result-affecting paths).
  using StateMap = StateExchangeTable;

  /// How a variant sheds stored ambiguous sessions between formations.
  enum class PruneMode {
    /// Full LEARN/DELETE optimization: drop sessions superseded by the
    /// adopted primary and sessions provably never formed (YKD, 1-pending).
    kFull,
    /// Drop sessions superseded by the exchange's *global* maxPrimary --
    /// the garbage collection a view-ordering protocol performs once any
    /// newer primary is evidenced (DFLS).  Because DFLS decides on the
    /// unfiltered pool, a stale session still constrains the one decision
    /// made in the exchange that evidences its obsolescence, which is the
    /// cost of DFLS's delayed deletion.
    kGlobalSuperseded,
    /// Drop only sessions proven never-formed by the LEARN evidence;
    /// superseded sessions are kept until a formation succeeds
    /// (unoptimized YKD).  Shedding learned-dead sessions is required for
    /// the thesis's exact availability equivalence with YKD: a dead
    /// session shipped to a later view where its members are gone could
    /// otherwise pass the decision filter and block a formation YKD would
    /// make.  Superseded sessions can never do that -- the superseding
    /// process's own lastPrimary keeps the pool filter ahead of them.
    kUnformedOnly,
  };

  /// `filter_constraints`: apply the COMPUTE filter (drop pool sessions at
  /// or below maxPrimary, and sessions provably never formed) when
  /// deciding.  YKD and unoptimized YKD filter -- which is why their
  /// availability is identical by construction -- while DFLS does not: its
  /// retained ambiguous sessions genuinely "act as constraints that limit
  /// future primary component choices" (thesis §3.2.2), the source of its
  /// availability deficit versus YKD.
  YkdFamilyBase(ProcessId self, const View& initial_view, PruneMode prune_mode,
                bool filter_constraints = true);

  /// May this process start a new attempt given the combined knowledge?
  /// 1-pending overrides this to refuse while any member has an unresolved
  /// pending session.  Must be a deterministic function of the arguments:
  /// every member evaluates it on identical inputs and formation requires
  /// everyone to reach the same answer.
  virtual bool allow_attempt(const CombinedKnowledge& knowledge,
                             const StateMap& states);

  /// Called when a primary component has just been formed (lastPrimary and
  /// lastFormed already updated).  The default deletes all ambiguous
  /// sessions immediately; DFLS instead starts its extra round.
  virtual void on_primary_formed();

  /// Hook for payload types the base does not know (DFLS's GC round).
  virtual void handle_extra_payload(const ProtocolPayload& payload,
                                    ProcessId sender);

  /// Queue a protocol payload for the next poll, stamping it with the
  /// current view id.
  void stage(std::shared_ptr<ProtocolPayload> payload);

  /// Appended to / consumed from the checkpoint stream after the base
  /// state; variants with extra mutable fields (DFLS's GC round) override
  /// both, symmetrically.
  virtual void save_extra(Encoder& enc) const;
  virtual void load_extra(Decoder& dec);

  const View& current_view() const { return current_view_; }

  /// Is there combined-state proof that S was never formed by any member?
  bool provably_unformed(const Session& s, const StateMap& states) const;

  /// Every mutation of the four fields the round-1 payload mirrors
  /// (session_number_, last_primary_, ambiguous_, last_formed_) must call
  /// this; view_changed() uses the generation to skip rebuilding the pooled
  /// payload when nothing changed since it was last filled (the common case
  /// in quiescent view churn).  Subclasses that mutate those fields outside
  /// the base's paths (DFLS's delayed GC delete) must call it too.
  void note_state_mutated() { ++state_version_; }

  // --- persistent algorithm state (thesis §3.1) ---
  Session last_primary_;              // last primary formed or adopted
  std::vector<Session> last_formed_;  // lastFormed(q), indexed by q
  std::vector<Session> ambiguous_;    // pending ambiguous sessions
  SessionNumber session_number_ = 0;
  bool in_primary_ = true;            // everyone starts together: primary
  bool blocked_ = false;              // set when allow_attempt refused

  // --- per-view protocol state ---
  View current_view_;

 private:
  enum class Stage { kIdle, kExchanging, kAttempting };

  void on_exchange_complete();
  void form_primary();
  /// Fills combined_scratch_ from states_ and returns a reference to it, so
  /// the constraint vector's capacity is reused across exchanges.
  const CombinedKnowledge& compute_combined();

  PruneMode prune_mode_;     // dvlint: transient(constructor configuration)
  bool filter_constraints_;  // dvlint: transient(constructor configuration)
  Stage stage_ = Stage::kIdle;
  StateMap states_;
  ProcessSet attempts_received_;
  Session proposed_;
  /// Staged payloads are appended and consumed front-to-back via
  /// outbox_head_; a vector + cursor (instead of a deque) keeps its storage
  /// flat and its capacity alive across view changes, so steady-state
  /// staging never allocates.  The consumed prefix [0, outbox_head_) is
  /// dead; save() encodes only the live range and load() re-packs from 0.
  std::vector<PayloadPtr> outbox_;
  std::size_t outbox_head_ = 0;
  /// Our own round-1 payload, retained so the next view change can rebuild
  /// it in place -- reusing its vector capacities -- once every other
  /// holder (recipients' exchange tables, the network) has dropped it,
  /// which use_count()==1 proves in this single-threaded simulation.  Pure
  /// allocator cache: the snapshot covers the payload by value wherever it
  /// is actually staged or received.
  std::shared_ptr<StateExchangePayload>
      state_pool_;  // dvlint: transient(allocator cache, never read back)
  /// Generation counter over the payload-mirrored persistent fields and the
  /// generation state_pool_ was filled at.  When they match and we are the
  /// payload's sole owner, view_changed() reuses it without copying -- pure
  /// cache-validity tracking, never snapshotted (load() bumps the
  /// generation so a restored instance always rebuilds).
  std::uint64_t state_version_ = 1;  // dvlint: transient(cache validity)
  std::uint64_t
      state_pool_version_ = 0;  // dvlint: transient(cache validity)
  /// Single-slot reuse of the round-2 attempt payload, same contract.
  std::shared_ptr<AttemptPayload>
      attempt_pool_;  // dvlint: transient(allocator cache, never read back)
  CombinedKnowledge
      combined_scratch_;  // dvlint: transient(rebuilt by every exchange)
};

}  // namespace dynvote
