// Views, as reported by the group communication service.
//
// "A view is nothing more than a list of all of the processes which are
// currently connected" (thesis §2.1).  Ours also carries the monotone id
// the GCS stamped on it, which protocol payloads echo so stale messages
// from an earlier view can be discarded.
#pragma once

#include <string>

#include "core/process_set.hpp"
#include "core/types.hpp"

namespace dynvote {

class Encoder;
class Decoder;

struct View {
  ViewId id = 0;
  ProcessSet members;

  bool operator==(const View&) const = default;

  std::string to_string() const {
    return "view#" + std::to_string(id) + members.to_string();
  }

  /// Wire format: varint id + the member bitmap (checkpoint/restore).
  void encode(Encoder& enc) const;
  static View decode(Decoder& dec);
};

}  // namespace dynvote
