#include "core/mr1p.hpp"

#include <algorithm>

#include "core/quorum.hpp"
#include "util/assert.hpp"

namespace dynvote {

namespace {

Mr1pVerdict echo_verdict(Mr1pStatus status) {
  switch (status) {
    case Mr1pStatus::kSent: return Mr1pVerdict::kStatusSent;
    case Mr1pStatus::kAttempt: return Mr1pVerdict::kStatusAttempt;
    case Mr1pStatus::kTryFail: return Mr1pVerdict::kStatusTryFail;
    case Mr1pStatus::kNone: break;
  }
  DV_ASSERT_MSG(false, "echoing a status of kNone");
  return Mr1pVerdict::kStatusTryFail;
}

}  // namespace

Mr1p::Mr1p(ProcessId self, const View& initial_view, Mr1pOptions options)
    : PrimaryComponentAlgorithm(self, initial_view),
      options_(options),
      cur_primary_{0, initial_view.members},
      current_view_(initial_view) {
  const std::size_t universe = initial_view.members.universe_size();
  formed_views_.push_back(cur_primary_);
  echo_senders_ = ProcessSet(universe);
  tryfail_callers_ = ProcessSet(universe);
  propose_received_ = ProcessSet(universe);
  attempt_received_ = ProcessSet(universe);
}

Session Mr1p::view_session() const {
  return Session{current_view_.id, current_view_.members};
}

void Mr1p::stage(std::shared_ptr<ProtocolPayload> payload) {
  DV_ASSERT(payload != nullptr);
  payload->view_id = current_view_.id;
  outbox_.push_back(std::move(payload));
}

void Mr1p::view_changed(const View& view) {
  DV_REQUIRE(view.members.contains(self_), "installed a view without self");
  current_view_ = view;
  in_primary_ = false;
  outbox_.clear();
  outbox_head_ = 0;
  unanswered_queries_.clear();
  echo_senders_.clear();
  best_echo_num_ = 0;
  best_echo_status_ = Mr1pStatus::kNone;
  resolve_sent_ = false;
  tryfail_callers_.clear();
  propose_received_.clear();
  attempt_received_.clear();
  attempt_sent_ = false;
  tried_new_ = false;

  if (pending_.has_value()) {
    // Rebuild the R1 payload in place once every holder from the previous
    // view change (recipients, the network) has dropped it.
    if (!pending_pool_ || pending_pool_.use_count() > 1) {
      pending_pool_ = std::make_shared<Mr1pPendingPayload>();
    }
    pending_pool_->has_pending = true;
    pending_pool_->pending = *pending_;
    pending_pool_->num = num_;
    pending_pool_->status = status_;
    stage(pending_pool_);
  } else {
    try_new();
  }
}

void Mr1p::try_new() {
  tried_new_ = true;
  if (is_subquorum(current_view_.members, cur_primary_.members)) {
    const Session proposal = view_session();
    pending_ = proposal;
    num_ = 1;
    status_ = Mr1pStatus::kSent;

    auto propose = std::make_shared<Mr1pProposePayload>();
    propose->proposal = proposal;
    stage(std::move(propose));
  } else {
    pending_.reset();
    num_ = 0;
    status_ = Mr1pStatus::kNone;
  }
}

Message Mr1p::incoming_message(Message message, ProcessId sender) {
  PayloadPtr payload = std::move(message.protocol);
  message.protocol = nullptr;
  if (payload == nullptr) return message;
  if (payload->view_id != current_view_.id) return message;

  switch (payload->type()) {
    case PayloadType::kMr1pPending:
      handle_pending(static_cast<const Mr1pPendingPayload&>(*payload), sender);
      break;
    case PayloadType::kMr1pReply:
      handle_reply(static_cast<const Mr1pReplyPayload&>(*payload), sender);
      break;
    case PayloadType::kMr1pResolve:
      handle_resolve(static_cast<const Mr1pResolvePayload&>(*payload), sender);
      break;
    case PayloadType::kMr1pPropose:
      handle_propose(static_cast<const Mr1pProposePayload&>(*payload), sender);
      break;
    case PayloadType::kMr1pAttempt:
      handle_attempt(static_cast<const Mr1pAttemptPayload&>(*payload), sender);
      break;
    default:
      break;  // not an MR1p payload; ignore
  }
  return message;
}

std::optional<Message> Mr1p::outgoing_message_poll(const Message& app) {
  // Replies take priority: every query delivered in the previous round is
  // answered in one batched multicast.  The batch payload is reused from
  // poll to poll (the replies vector keeps its capacity) whenever the
  // previous batch has drained from the network and its recipients.
  if (!unanswered_queries_.empty()) {
    if (!reply_pool_ || reply_pool_.use_count() > 1) {
      reply_pool_ = std::make_shared<Mr1pReplyPayload>();
    }
    const std::shared_ptr<Mr1pReplyPayload>& batch = reply_pool_;
    batch->replies.clear();
    for (const Session& about : unanswered_queries_) {
      Mr1pReplyItem item;
      item.about = about;
      if (pending_.has_value() && *pending_ == about) {
        item.verdict = echo_verdict(status_);
        item.num = num_;
      } else if (knows_formed(about) && about.members.contains(self_)) {
        item.verdict = Mr1pVerdict::kFormed;
      } else if (about.members.contains(self_)) {
        item.verdict = Mr1pVerdict::kAborted;
      } else {
        continue;  // nothing useful to say
      }
      batch->replies.push_back(std::move(item));
    }
    unanswered_queries_.clear();
    if (!batch->replies.empty()) {
      batch->view_id = current_view_.id;
      Message out = app;
      out.protocol = batch;
      return out;
    }
  }

  if (outbox_head_ == outbox_.size()) return std::nullopt;
  Message out = app;
  out.protocol = std::move(outbox_[outbox_head_]);
  if (++outbox_head_ == outbox_.size()) {
    outbox_.clear();
    outbox_head_ = 0;
  }
  return out;
}

void Mr1p::handle_pending(const Mr1pPendingPayload& payload,
                          ProcessId /*sender*/) {
  if (!payload.has_pending) return;
  if (std::find(unanswered_queries_.begin(), unanswered_queries_.end(),
                payload.pending) == unanswered_queries_.end()) {
    unanswered_queries_.push_back(payload.pending);
  }
}

void Mr1p::handle_reply(const Mr1pReplyPayload& payload, ProcessId sender) {
  for (const Mr1pReplyItem& item : payload.replies) {
    if (!pending_.has_value() || item.about != *pending_) continue;
    switch (item.verdict) {
      case Mr1pVerdict::kFormed:
        adopt_formed(item.about);
        return;
      case Mr1pVerdict::kAborted:
        abandon_pending();
        return;
      case Mr1pVerdict::kStatusSent:
      case Mr1pVerdict::kStatusAttempt:
      case Mr1pVerdict::kStatusTryFail: {
        if (!pending_->members.contains(sender)) break;  // not a member
        echo_senders_.insert(sender);
        const Mr1pStatus echoed =
            item.verdict == Mr1pVerdict::kStatusSent  ? Mr1pStatus::kSent
            : item.verdict == Mr1pVerdict::kStatusAttempt
                ? Mr1pStatus::kAttempt
                : Mr1pStatus::kTryFail;
        if (item.num >= best_echo_num_) {
          best_echo_num_ = item.num;
          best_echo_status_ = echoed;
        }
        maybe_resolve();
        break;
      }
    }
    if (!pending_.has_value()) return;  // resolved inside the loop
  }
}

void Mr1p::maybe_resolve() {
  if (!pending_.has_value() || resolve_sent_) return;
  if (!is_majority_of(echo_senders_, pending_->members)) return;

  // The thesis's round 3: num becomes max+1, the call is the status carried
  // by the highest num; a call of "sent" means the attempt cannot have
  // completed anywhere, so it becomes try-fail.
  Mr1pStatus call = best_echo_status_;
  if (call == Mr1pStatus::kSent) call = Mr1pStatus::kTryFail;

  if (call == Mr1pStatus::kAttempt) {
    switch (options_.policy) {
      case Mr1pResolutionPolicy::kAdoptOnAttempt: {
        // Paxos-style completion of the possibly-formed session.
        num_ = best_echo_num_ + 1;
        resolve_sent_ = true;
        auto resolve = std::make_shared<Mr1pResolvePayload>();
        resolve->about = *pending_;
        resolve->call = Mr1pVerdict::kStatusAttempt;
        stage(std::move(resolve));
        adopt_formed(*pending_);
        return;
      }
      case Mr1pResolutionPolicy::kConservative: {
        // Only full presence proves the attempt dead: every member still
        // echoing means none of them formed it, and only members can form
        // it.  Short of that, keep collecting echoes (blocked).
        if (!(echo_senders_ == pending_->members)) return;
        call = Mr1pStatus::kTryFail;
        break;
      }
    }
  }

  num_ = best_echo_num_ + 1;
  status_ = Mr1pStatus::kTryFail;
  resolve_sent_ = true;
  auto resolve = std::make_shared<Mr1pResolvePayload>();
  resolve->about = *pending_;
  resolve->call = Mr1pVerdict::kStatusTryFail;
  stage(std::move(resolve));
}

void Mr1p::handle_resolve(const Mr1pResolvePayload& payload, ProcessId sender) {
  if (!pending_.has_value() || payload.about != *pending_) return;
  if (!pending_->members.contains(sender)) return;

  if (payload.call == Mr1pVerdict::kStatusAttempt) {
    if (options_.policy == Mr1pResolutionPolicy::kAdoptOnAttempt) {
      adopt_formed(*pending_);
    }
    return;
  }
  // try-fail: abandon once a majority of the pending session's members
  // agree (thesis: "Upon receipt of <tryfail, V> from majority of V").
  tryfail_callers_.insert(sender);
  if (is_majority_of(tryfail_callers_, pending_->members)) {
    abandon_pending();
  }
}

void Mr1p::handle_propose(const Mr1pProposePayload& payload, ProcessId sender) {
  if (payload.proposal != view_session()) return;
  propose_received_.insert(sender);
  // "Upon receipt of <V,1> from all members of V": move to the attempt
  // stage -- but only if we proposed V ourselves (we are pending on it).
  if (attempt_sent_) return;
  if (!pending_.has_value() || *pending_ != payload.proposal) return;
  if (propose_received_ == current_view_.members) {
    status_ = Mr1pStatus::kAttempt;
    num_ = 2;
    attempt_sent_ = true;

    auto attempt = std::make_shared<Mr1pAttemptPayload>();
    attempt->proposal = payload.proposal;
    stage(std::move(attempt));
  }
}

void Mr1p::handle_attempt(const Mr1pAttemptPayload& payload, ProcessId sender) {
  if (payload.proposal != view_session()) return;
  attempt_received_.insert(sender);
  if (in_primary_) return;
  // "Declare the new view to be a primary component when a majority of the
  // processes in it have sent a message in step 5."
  if (is_majority_of(attempt_received_, current_view_.members)) {
    record_formed(payload.proposal);
    cur_primary_ = payload.proposal;
    in_primary_ = true;
    pending_.reset();
    num_ = 0;
    status_ = Mr1pStatus::kNone;
  }
}

void Mr1p::adopt_formed(const Session& session) {
  record_formed(session);
  if (session_precedes(cur_primary_, session)) cur_primary_ = session;
  pending_.reset();
  num_ = 0;
  status_ = Mr1pStatus::kNone;
  if (!tried_new_) try_new();
}

void Mr1p::abandon_pending() {
  pending_.reset();
  num_ = 0;
  status_ = Mr1pStatus::kNone;
  if (!tried_new_) try_new();
}

void Mr1p::record_formed(const Session& session) {
  if (knows_formed(session)) return;
  // The thesis's formedViews optimization: a primary equal to the full
  // initial view supersedes every earlier formation -- all processes took
  // part, so no one can ever query an older session again.
  if (session.members == initial_view_.members) {
    formed_views_.clear();
  }
  formed_views_.push_back(session);
}

bool Mr1p::knows_formed(const Session& session) const {
  return std::find(formed_views_.begin(), formed_views_.end(), session) !=
         formed_views_.end();
}

void Mr1p::save(Encoder& enc) const {
  cur_primary_.encode(enc);
  enc.put_bool(pending_.has_value());
  if (pending_.has_value()) pending_->encode(enc);
  enc.put_varint(num_);
  enc.put_u8(static_cast<std::uint8_t>(status_));
  enc.put_varint(formed_views_.size());
  for (const Session& s : formed_views_) s.encode(enc);
  enc.put_bool(in_primary_);

  current_view_.encode(enc);
  // Only the live range [outbox_head_, size) survives a checkpoint.
  enc.put_varint(outbox_.size() - outbox_head_);
  for (std::size_t i = outbox_head_; i < outbox_.size(); ++i) {
    enc.put_bytes(encode_payload(*outbox_[i]));
  }
  enc.put_varint(unanswered_queries_.size());
  for (const Session& s : unanswered_queries_) s.encode(enc);
  echo_senders_.encode(enc);
  enc.put_varint(best_echo_num_);
  enc.put_u8(static_cast<std::uint8_t>(best_echo_status_));
  enc.put_bool(resolve_sent_);
  tryfail_callers_.encode(enc);
  propose_received_.encode(enc);
  attempt_received_.encode(enc);
  enc.put_bool(attempt_sent_);
  enc.put_bool(tried_new_);
}

namespace {

Mr1pStatus decode_saved_status(Decoder& dec) {
  const std::uint8_t raw = dec.get_u8();
  if (raw > static_cast<std::uint8_t>(Mr1pStatus::kTryFail)) {
    throw DecodeError("bad Mr1pStatus in snapshot");
  }
  return static_cast<Mr1pStatus>(raw);
}

}  // namespace

void Mr1p::load(Decoder& dec) {
  cur_primary_ = Session::decode(dec);
  if (dec.get_bool()) {
    pending_ = Session::decode(dec);
  } else {
    pending_.reset();
  }
  num_ = dec.get_varint();
  status_ = decode_saved_status(dec);
  const std::uint64_t formed = dec.get_varint();
  if (formed > 1'000'000 || formed > dec.remaining()) {
    throw DecodeError("implausible formedViews length");
  }
  formed_views_.clear();
  formed_views_.reserve(formed);
  for (std::uint64_t i = 0; i < formed; ++i) {
    formed_views_.push_back(Session::decode(dec));
  }
  in_primary_ = dec.get_bool();

  current_view_ = View::decode(dec);
  const std::uint64_t staged = dec.get_varint();
  if (staged > 1'000'000) throw DecodeError("implausible outbox length");
  outbox_.clear();
  outbox_head_ = 0;
  for (std::uint64_t i = 0; i < staged; ++i) {
    const std::vector<std::byte> bytes = dec.get_bytes();
    outbox_.push_back(decode_payload(bytes));
  }
  const std::uint64_t queries = dec.get_varint();
  if (queries > 1'000'000 || queries > dec.remaining()) {
    throw DecodeError("implausible query count");
  }
  unanswered_queries_.clear();
  unanswered_queries_.reserve(queries);
  for (std::uint64_t i = 0; i < queries; ++i) {
    unanswered_queries_.push_back(Session::decode(dec));
  }
  echo_senders_ = ProcessSet::decode(dec);
  best_echo_num_ = dec.get_varint();
  best_echo_status_ = decode_saved_status(dec);
  resolve_sent_ = dec.get_bool();
  tryfail_callers_ = ProcessSet::decode(dec);
  propose_received_ = ProcessSet::decode(dec);
  attempt_received_ = ProcessSet::decode(dec);
  attempt_sent_ = dec.get_bool();
  tried_new_ = dec.get_bool();
}

AlgorithmDebugInfo Mr1p::debug_info() const {
  AlgorithmDebugInfo info;
  info.last_primary = cur_primary_;
  info.ambiguous_count = pending_.has_value() ? 1 : 0;
  info.blocked = pending_.has_value() && !in_primary_;
  info.session_number = num_;
  return info;
}

}  // namespace dynvote
