// The algorithm-to-application interface (thesis §2.1, Figure 2-1).
//
// A primary-component algorithm is an event-driven object with no inherent
// communication ability: it reacts to views and messages, piggybacks its own
// state onto application traffic, and exposes a single question -- "am I in
// a primary component?".  Any transport with reliable multicast and view
// notification can host it; `dynvote::Gcs` is the simulated one.
//
// Contract (mirrors the thesis):
//  * `view_changed` is called whenever the GCS installs a new view that
//    includes this process.  Views only ever contain processes from the
//    initial view.
//  * Every received message is passed through `incoming_message`, which
//    strips and consumes any piggybacked protocol payload and returns the
//    application part.
//  * Every outgoing message -- and, after each receipt or view change, an
//    empty poll -- is passed through `outgoing_message_poll`.  A non-null
//    result must be multicast to the current view in place of the original.
//    The algorithm never needs to be polled spontaneously: its state only
//    changes when new information (a message or a view) arrives.
//  * `in_primary` may be read at leisure; it can only change on new
//    information.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/message.hpp"
#include "core/session.hpp"
#include "core/types.hpp"
#include "core/view.hpp"

namespace dynvote {

/// The algorithms studied by the paper.
enum class AlgorithmKind {
  /// Stateless control: primary iff the view is a quorum of the initial one.
  kSimpleMajority,
  /// Yeger Lotem / Keidar / Dolev dynamic voting, with the session-pruning
  /// optimization (2 rounds, pipelined ambiguous sessions).
  kYkd,
  /// YKD without the storage optimization; identical availability,
  /// strictly more retained state.
  kYkdUnoptimized,
  /// De Prisco / Fekete / Lynch / Shvartsman variant: unoptimized YKD plus
  /// one extra round before ambiguous sessions may be deleted (3 rounds).
  kDfls,
  /// Blocks while one ambiguous session is pending; resolving it may require
  /// hearing from all of its members (2 rounds).
  kOnePending,
  /// Majority-resilient 1-pending: resolves its single pending session with
  /// only a majority of its members, at the cost of 5 message rounds.
  kMr1p,
};

/// All kinds, in the paper's presentation order.
std::vector<AlgorithmKind> all_algorithm_kinds();

/// Short stable name ("ykd", "dfls", ...), used in tables and CLIs.
std::string_view to_string(AlgorithmKind kind);

/// Inverse of to_string; nullopt for unknown names.
std::optional<AlgorithmKind> algorithm_kind_from_string(std::string_view name);

/// Introspection snapshot used by the invariant checker, statistics
/// collection (Figures 4-7/4-8), and tests.  Not part of the application
/// contract.
struct AlgorithmDebugInfo {
  /// The last primary component this process formed or adopted.
  Session last_primary;
  /// Number of ambiguous (pending, unresolved) sessions currently retained.
  std::size_t ambiguous_count = 0;
  /// True when the algorithm wants to act but cannot until it hears from
  /// processes outside the current view (1-pending/MR1p blocking).
  bool blocked = false;
  /// Current value of the session counter, where the algorithm has one.
  SessionNumber session_number = 0;
};

class PrimaryComponentAlgorithm {
 public:
  virtual ~PrimaryComponentAlgorithm() = default;

  PrimaryComponentAlgorithm(const PrimaryComponentAlgorithm&) = delete;
  PrimaryComponentAlgorithm& operator=(const PrimaryComponentAlgorithm&) = delete;

  /// The GCS installed a new view containing this process.
  virtual void view_changed(const View& view) = 0;

  /// Pass a received message through the algorithm.  Returns the message
  /// with the protocol payload stripped; the application must not look at
  /// the original.
  virtual Message incoming_message(Message message, ProcessId sender) = 0;

  /// Offer an outgoing application message (possibly empty).  Returns the
  /// message to multicast instead -- with protocol state piggybacked -- or
  /// nullopt when the algorithm has nothing to add.
  virtual std::optional<Message> outgoing_message_poll(const Message& app) = 0;

  /// Is this process currently in a primary component?
  virtual bool in_primary() const = 0;

  /// This process's id.
  ProcessId self() const { return self_; }

  /// The initial view the system started from.
  const View& initial_view() const { return initial_view_; }

  virtual std::string_view name() const = 0;

  virtual AlgorithmDebugInfo debug_info() const = 0;

  /// Serialize every piece of mutable state -- persistent protocol state
  /// *and* per-view exchange progress -- onto the codec stream.  Constructor
  /// configuration (self id, initial view, variant options) is not written:
  /// a snapshot is only ever restored into an instance built with the same
  /// configuration, which the snapshot envelope enforces (snapshot.hpp).
  /// All shipped algorithms override this; the default (for plugged-in
  /// research algorithms that have not yet implemented snapshotting) throws
  /// std::logic_error, so such a simulation is simply not checkpointable.
  virtual void save(Encoder& enc) const;

  /// Exact inverse of save(): after load() the instance behaves
  /// indistinguishably from the one that was saved, message for message.
  /// Throws DecodeError on truncated or malformed input.
  virtual void load(Decoder& dec);

  /// The last primary this process formed or adopted, by reference -- the
  /// invariant checker reads this once per process per round, so it must
  /// not copy.
  virtual const Session& last_primary_session() const = 0;

 protected:
  PrimaryComponentAlgorithm(ProcessId self, View initial_view);

  // Constructor configuration: a snapshot is only restored into an instance
  // built with the same (self, initial view), enforced by the envelope.
  ProcessId self_;       // dvlint: transient(constructor configuration)
  View initial_view_;    // dvlint: transient(constructor configuration)
};

/// Factory: construct an algorithm instance for process `self`, started in
/// `initial_view` (which must contain `self`).
std::unique_ptr<PrimaryComponentAlgorithm> make_algorithm(
    AlgorithmKind kind, ProcessId self, const View& initial_view);

}  // namespace dynvote
