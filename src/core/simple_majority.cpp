#include "core/simple_majority.hpp"

#include "core/quorum.hpp"

namespace dynvote {

SimpleMajority::SimpleMajority(ProcessId self, const View& initial_view)
    : PrimaryComponentAlgorithm(self, initial_view),
      current_view_(initial_view),
      last_primary_{initial_view.id, initial_view.members} {}

void SimpleMajority::view_changed(const View& view) {
  current_view_ = view;
  in_primary_ = is_subquorum(view.members, initial_view_.members);
  if (in_primary_) last_primary_ = Session{view.id, view.members};
}

Message SimpleMajority::incoming_message(Message message, ProcessId /*sender*/) {
  message.protocol = nullptr;  // never expects protocol payloads
  return message;
}

std::optional<Message> SimpleMajority::outgoing_message_poll(const Message& /*app*/) {
  return std::nullopt;  // sends nothing of its own
}

void SimpleMajority::save(Encoder& enc) const {
  enc.put_bool(in_primary_);
  current_view_.encode(enc);
  last_primary_.encode(enc);
}

void SimpleMajority::load(Decoder& dec) {
  in_primary_ = dec.get_bool();
  current_view_ = View::decode(dec);
  last_primary_ = Session::decode(dec);
}

AlgorithmDebugInfo SimpleMajority::debug_info() const {
  AlgorithmDebugInfo info;
  info.last_primary = last_primary_;
  info.ambiguous_count = 0;
  info.blocked = false;
  return info;
}

}  // namespace dynvote
