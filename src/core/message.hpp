// The message envelope shared by applications and algorithms.
//
// Matches the thesis §2.1 contract: the application passes every outgoing
// message through the algorithm (which may piggyback protocol state onto
// it) and every incoming message back through it (which strips the state
// before the application sees it).  `app_data` is opaque application bytes;
// `protocol` is the piggybacked algorithm payload, if any.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/payload.hpp"

namespace dynvote {

struct Message {
  std::vector<std::byte> app_data;
  PayloadPtr protocol;

  /// An empty application message, used by the "poll after every receipt"
  /// convention so an idle application still gives the algorithm a chance
  /// to speak (thesis Figure 2-2).
  static Message empty() { return Message{}; }

  /// Convenience: a message whose application bytes are `text`.
  static Message from_text(std::string_view text);

  bool has_protocol() const { return protocol != nullptr; }

  /// Total bytes this message occupies on the wire (app bytes, a presence
  /// byte, and the encoded protocol payload when present).
  std::size_t wire_size() const;

  /// Full wire form; `parse` is the exact inverse.
  std::vector<std::byte> serialize() const;
  static Message parse(std::span<const std::byte> bytes);
};

}  // namespace dynvote
