// YKD: the dynamic voting algorithm of Yeger Lotem, Keidar and Dolev
// (PODC'97), the thesis's algorithm of principal study.
//
// Two message rounds; pipelines attempts (it keeps initiating new attempts
// while earlier ones are still pending); can make progress even when some
// pending sessions cannot be resolved, as long as the new view is a
// subquorum of each of them.
//
// `optimized = false` yields the thesis's "unoptimized YKD": identical
// decisions (and therefore identical availability -- verified by test), but
// ambiguous sessions are only shed on a successful formation, so more of
// them are stored and shipped (Figures 4-7/4-8).
#pragma once

#include "core/ykd_family.hpp"

namespace dynvote {

struct YkdOptions {
  bool optimized = true;
};

class Ykd final : public YkdFamilyBase {
 public:
  Ykd(ProcessId self, const View& initial_view, YkdOptions options = {});

  std::string_view name() const override {
    return optimized_ ? "ykd" : "ykd-unoptimized";
  }

 private:
  bool optimized_;
};

}  // namespace dynvote
