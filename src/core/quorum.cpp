#include "core/quorum.hpp"

#include "util/assert.hpp"

namespace dynvote {

bool is_majority_of(const ProcessSet& candidate, const ProcessSet& of) {
  return 2 * candidate.intersection_count(of) > of.count();
}

bool is_subquorum(const ProcessSet& candidate, const ProcessSet& of) {
  DV_REQUIRE(!of.empty(), "subquorum test against an empty set");
  const std::size_t shared = candidate.intersection_count(of);
  const std::size_t total = of.count();
  if (2 * shared > total) return true;
  if (2 * shared == total) return candidate.contains(of.lowest());
  return false;
}

}  // namespace dynvote
