#include "core/algorithm.hpp"

#include <stdexcept>
#include <string>

#include "core/dfls.hpp"
#include "core/mr1p.hpp"
#include "core/one_pending.hpp"
#include "core/simple_majority.hpp"
#include "core/ykd.hpp"
#include "util/assert.hpp"

namespace dynvote {

PrimaryComponentAlgorithm::PrimaryComponentAlgorithm(ProcessId self,
                                                     View initial_view)
    : self_(self), initial_view_(std::move(initial_view)) {
  DV_REQUIRE(initial_view_.members.contains(self_),
             "process must be a member of its initial view");
}

void PrimaryComponentAlgorithm::save(Encoder& /*enc*/) const {
  throw std::logic_error("algorithm \"" + std::string(name()) +
                         "\" does not implement snapshotting");
}

void PrimaryComponentAlgorithm::load(Decoder& /*dec*/) {
  throw std::logic_error("algorithm \"" + std::string(name()) +
                         "\" does not implement snapshotting");
}

std::vector<AlgorithmKind> all_algorithm_kinds() {
  return {AlgorithmKind::kYkd,         AlgorithmKind::kYkdUnoptimized,
          AlgorithmKind::kDfls,        AlgorithmKind::kOnePending,
          AlgorithmKind::kMr1p,        AlgorithmKind::kSimpleMajority};
}

std::string_view to_string(AlgorithmKind kind) {
  switch (kind) {
    case AlgorithmKind::kSimpleMajority: return "simple-majority";
    case AlgorithmKind::kYkd: return "ykd";
    case AlgorithmKind::kYkdUnoptimized: return "ykd-unoptimized";
    case AlgorithmKind::kDfls: return "dfls";
    case AlgorithmKind::kOnePending: return "1-pending";
    case AlgorithmKind::kMr1p: return "mr1p";
  }
  return "unknown";
}

std::optional<AlgorithmKind> algorithm_kind_from_string(std::string_view name) {
  for (AlgorithmKind kind : all_algorithm_kinds()) {
    if (to_string(kind) == name) return kind;
  }
  return std::nullopt;
}

std::unique_ptr<PrimaryComponentAlgorithm> make_algorithm(
    AlgorithmKind kind, ProcessId self, const View& initial_view) {
  switch (kind) {
    case AlgorithmKind::kSimpleMajority:
      return std::make_unique<SimpleMajority>(self, initial_view);
    case AlgorithmKind::kYkd:
      return std::make_unique<Ykd>(self, initial_view, YkdOptions{.optimized = true});
    case AlgorithmKind::kYkdUnoptimized:
      return std::make_unique<Ykd>(self, initial_view, YkdOptions{.optimized = false});
    case AlgorithmKind::kDfls:
      return std::make_unique<Dfls>(self, initial_view);
    case AlgorithmKind::kOnePending:
      return std::make_unique<OnePending>(self, initial_view);
    case AlgorithmKind::kMr1p:
      return std::make_unique<Mr1p>(self, initial_view);
  }
  DV_ASSERT_MSG(false, "unreachable: unknown AlgorithmKind");
  return nullptr;
}

}  // namespace dynvote
