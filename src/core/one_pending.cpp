#include "core/one_pending.hpp"

#include <vector>

namespace dynvote {

OnePending::OnePending(ProcessId self, const View& initial_view)
    : YkdFamilyBase(self, initial_view, PruneMode::kFull) {}

bool OnePending::allow_attempt(const CombinedKnowledge& /*knowledge*/,
                               const StateMap& states) {
  // The group may attempt only if no member is left with a pending session
  // after resolution.  Every member evaluates this on the identical
  // combined state, so the answer is the same everywhere (formation needs
  // an attempt from everyone, so a split answer could never form anyway).
  //
  // A member m's session S counts as resolved when either
  //  * a formed session containing m with a higher number exists (m will
  //    adopt it and delete S -- the thesis's ACCEPT + DELETE), or
  //  * every member of S is present and none formed it.
  const std::size_t universe = initial_view_.members.universe_size();

  // best_for[m]: highest-numbered formed session containing m, per the
  // combined state.  One pass over states: lastPrimary covers its members,
  // lastFormed(m) covers m.
  std::vector<Session> best_for(universe, Session{0, initial_view_.members});
  for (const auto& [q, state] : states) {
    state->last_primary.members.for_each([&](ProcessId m) {
      if (session_precedes(best_for[m], state->last_primary)) {
        best_for[m] = state->last_primary;
      }
    });
    for (ProcessId m = 0; m < state->last_formed.size(); ++m) {
      const Session& lf = state->last_formed[m];
      if (lf.members.contains(m) && session_precedes(best_for[m], lf)) {
        best_for[m] = lf;
      }
    }
  }

  for (const auto& [m, state] : states) {
    for (const Session& s : state->ambiguous) {
      if (s.number <= best_for[m].number) continue;        // will be adopted past S
      if (provably_unformed(s, states)) continue;          // witnessed dead
      blocked_ = true;
      return false;  // m is still pending on S: the group blocks
    }
  }
  return true;
}

}  // namespace dynvote
