#include "core/one_pending.hpp"

namespace dynvote {

OnePending::OnePending(ProcessId self, const View& initial_view)
    : YkdFamilyBase(self, initial_view, PruneMode::kFull) {}

bool OnePending::allow_attempt(const CombinedKnowledge& /*knowledge*/,
                               const StateMap& states) {
  // The group may attempt only if no member is left with a pending session
  // after resolution.  Every member evaluates this on the identical
  // combined state, so the answer is the same everywhere (formation needs
  // an attempt from everyone, so a split answer could never form anyway).
  //
  // A member m's session S counts as resolved when either
  //  * a formed session containing m with a higher number exists (m will
  //    adopt it and delete S -- the thesis's ACCEPT + DELETE), or
  //  * every member of S is present and none formed it.
  //
  // Members with no pending sessions (the overwhelmingly common case: the
  // kFull prune mode just ran) need no verdict at all, so the resolution
  // ceiling below is computed lazily, only for the members that actually
  // hold ambiguous sessions.  The ceiling is a max over a total order, so
  // evaluating it per member instead of table-building it for the whole
  // universe gives bit-identical answers.
  for (const auto& [m, state] : states) {
    if (state->ambiguous.empty()) continue;

    // Highest-numbered formed session containing m, per the combined
    // state: lastPrimary covers its members, lastFormed(m) covers m.
    Session best{0, initial_view_.members};
    for (const auto& [q, st] : states) {
      const Session& lp = st->last_primary;
      if (lp.members.contains(m) && session_precedes(best, lp)) best = lp;
      if (m < st->last_formed.size()) {
        const Session& lf = st->last_formed[m];
        if (lf.members.contains(m) && session_precedes(best, lf)) best = lf;
      }
    }

    for (const Session& s : state->ambiguous) {
      if (s.number <= best.number) continue;               // will be adopted past S
      if (provably_unformed(s, states)) continue;          // witnessed dead
      blocked_ = true;
      return false;  // m is still pending on S: the group blocks
    }
  }
  return true;
}

}  // namespace dynvote
