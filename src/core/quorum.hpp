// Dynamic linear voting quorum rules (thesis §3, Figure 3-4).
//
// SUBQUORUM(X, Y): X is a subquorum of Y iff more than half of Y's members
// are in X, or exactly half are and the lexically smallest member of Y is
// among them.  The tie-break makes dynamic *linear* voting admit a group
// containing exactly half of the previous primary.
#pragma once

#include "core/process_set.hpp"

namespace dynvote {

/// Strict majority: |X ∩ Y| > |Y| / 2.
bool is_majority_of(const ProcessSet& candidate, const ProcessSet& of);

/// Dynamic linear voting subquorum test, including the exact-half lexical
/// tie-break.  `of` must be non-empty.
bool is_subquorum(const ProcessSet& candidate, const ProcessSet& of);

}  // namespace dynvote
