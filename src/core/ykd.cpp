#include "core/ykd.hpp"

namespace dynvote {

Ykd::Ykd(ProcessId self, const View& initial_view, YkdOptions options)
    : YkdFamilyBase(self, initial_view,
                    options.optimized ? PruneMode::kFull
                                      : PruneMode::kUnformedOnly),
      optimized_(options.optimized) {}

}  // namespace dynvote
