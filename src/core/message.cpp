#include "core/message.hpp"

#include "util/codec.hpp"

namespace dynvote {

Message Message::from_text(std::string_view text) {
  Message m;
  m.app_data.reserve(text.size());
  for (char c : text) m.app_data.push_back(static_cast<std::byte>(c));
  return m;
}

std::size_t Message::wire_size() const {
  std::size_t n = app_data.size() + 1;  // +1 presence byte
  if (protocol) n += payload_wire_size(*protocol);
  return n;
}

std::vector<std::byte> Message::serialize() const {
  Encoder enc;
  enc.put_bytes(app_data);
  if (protocol) {
    enc.put_bool(true);
    enc.put_bytes(encode_payload(*protocol));
  } else {
    enc.put_bool(false);
  }
  return enc.take();
}

Message Message::parse(std::span<const std::byte> bytes) {
  Decoder dec(bytes);
  Message m;
  m.app_data = dec.get_bytes();
  if (dec.get_bool()) {
    const auto payload_bytes = dec.get_bytes();
    m.protocol = decode_payload(payload_bytes);
  }
  dec.finish();
  return m;
}

}  // namespace dynvote
