// 1-pending: YKD restricted to a single pending ambiguous session
// (thesis §3.2.3; similar to Jajodia-Mutchler dynamic voting and Amir's
// replication algorithm).
//
// The algorithm does not attempt a new primary while any member of the view
// still holds an unresolved ambiguous session: it blocks until the session
// can be resolved by learning its outcome from other processes.  In the
// worst case that requires hearing from *all* the session's members -- the
// permanent absence of one member can block it forever, which is why its
// availability collapses under many cascading connectivity changes
// (Figures 4-4..4-6), dropping below even the simple majority rule.
#pragma once

#include "core/ykd_family.hpp"

namespace dynvote {

class OnePending final : public YkdFamilyBase {
 public:
  OnePending(ProcessId self, const View& initial_view);

  std::string_view name() const override { return "1-pending"; }

 protected:
  bool allow_attempt(const CombinedKnowledge& knowledge,
                     const StateMap& states) override;
};

}  // namespace dynvote
