// Sessions: numbered attempts to form a primary component.
//
// "A session is nothing more than a view with a number attached to it,
// corresponding to a session to form a primary component.  These numbers
// are used by YKD to determine the order in which views occurred"
// (thesis §3.1).
#pragma once

#include <string>

#include "core/process_set.hpp"
#include "core/types.hpp"

namespace dynvote {

class Encoder;
class Decoder;

struct Session {
  SessionNumber number = 0;
  ProcessSet members;

  bool operator==(const Session&) const = default;

  std::string to_string() const;

  void encode(Encoder& enc) const;
  static Session decode(Decoder& dec);
};

/// Deterministic total order on sessions: by number, then by membership.
/// Ties on the number alone are possible (two concurrent attempts in
/// disjoint components can pick the same number), and every process must
/// break them identically.  Inline: the RESOLVE/ACCEPT folds call this for
/// every (member, state) pair of every exchange.
inline bool session_precedes(const Session& a, const Session& b) {
  if (a.number != b.number) return a.number < b.number;
  return a.members.compare(b.members) < 0;
}

}  // namespace dynvote

template <>
struct std::hash<dynvote::Session> {
  std::size_t operator()(const dynvote::Session& s) const {
    return s.members.hash() * 1099511628211ULL ^ s.number;
  }
};
