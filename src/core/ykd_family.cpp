#include "core/ykd_family.hpp"

#include <algorithm>

#include "core/quorum.hpp"
#include "util/assert.hpp"
#include "util/logging.hpp"

namespace dynvote {

YkdFamilyBase::YkdFamilyBase(ProcessId self, const View& initial_view,
                             PruneMode prune_mode, bool filter_constraints)
    : PrimaryComponentAlgorithm(self, initial_view),
      prune_mode_(prune_mode),
      filter_constraints_(filter_constraints) {
  const std::size_t universe = initial_view.members.universe_size();
  const Session genesis{0, initial_view.members};
  last_primary_ = genesis;
  last_formed_.assign(universe, genesis);
  current_view_ = initial_view;
  attempts_received_ = ProcessSet(universe);
  states_.reset_universe(universe);
}

void YkdFamilyBase::view_changed(const View& view) {
  DV_REQUIRE(view.members.contains(self_), "installed a view without self");
  current_view_ = view;
  in_primary_ = false;
  blocked_ = false;
  stage_ = Stage::kExchanging;
  states_.clear();
  attempts_received_.clear();
  outbox_.clear();  // anything staged for the old view is stale
  outbox_head_ = 0;

  // Rebuild our round-1 payload in place when we are its sole owner again
  // (recipients cleared their exchange tables, the network flushed); the
  // vectors inside keep their capacity, so steady-state view changes do
  // not allocate for it.  When the sole-owned payload was filled at the
  // current state generation it is already byte-identical, so the copies
  // (last_formed_ alone is universe-sized) are skipped outright.
  const bool pool_fresh = state_pool_ && state_pool_.use_count() == 1 &&
                          state_pool_version_ == state_version_;
  if (!pool_fresh) {
    if (!state_pool_ || state_pool_.use_count() > 1) {
      state_pool_ = std::make_shared<StateExchangePayload>();
    }
    state_pool_->session_number = session_number_;
    state_pool_->last_primary = last_primary_;
    state_pool_->ambiguous = ambiguous_;
    state_pool_->last_formed = last_formed_;
    state_pool_version_ = state_version_;
  }
  stage(state_pool_);
}

void YkdFamilyBase::stage(std::shared_ptr<ProtocolPayload> payload) {
  DV_ASSERT(payload != nullptr);
  payload->view_id = current_view_.id;
  outbox_.push_back(std::move(payload));
}

Message YkdFamilyBase::incoming_message(Message message, ProcessId sender) {
  PayloadPtr payload = std::move(message.protocol);
  message.protocol = nullptr;
  if (payload == nullptr) return message;

  // Discard traffic from any view other than the current one.
  if (payload->view_id != current_view_.id) return message;

  switch (payload->type()) {
    case PayloadType::kStateExchange: {
      if (stage_ != Stage::kExchanging) break;  // stale duplicate round
      DV_ASSERT_MSG(current_view_.members.contains(sender),
                    "state from a non-member of the current view");
      states_.set(sender, std::static_pointer_cast<const StateExchangePayload>(
                              std::move(payload)));
      if (states_.size() == current_view_.members.count()) {
        on_exchange_complete();
      }
      break;
    }
    case PayloadType::kAttempt: {
      if (stage_ != Stage::kAttempting) break;
      const auto& attempt = static_cast<const AttemptPayload&>(*payload);
      if (attempt.proposal != proposed_) break;
      attempts_received_.insert(sender);
      if (attempts_received_ == current_view_.members) form_primary();
      break;
    }
    default:
      handle_extra_payload(*payload, sender);
      break;
  }
  return message;
}

std::optional<Message> YkdFamilyBase::outgoing_message_poll(const Message& app) {
  if (outbox_head_ == outbox_.size()) return std::nullopt;
  Message out = app;
  out.protocol = std::move(outbox_[outbox_head_]);
  if (++outbox_head_ == outbox_.size()) {
    outbox_.clear();
    outbox_head_ = 0;
  }
  return out;
}

bool YkdFamilyBase::allow_attempt(const CombinedKnowledge& /*knowledge*/,
                                  const StateMap& /*states*/) {
  return true;
}

void YkdFamilyBase::on_primary_formed() { ambiguous_.clear(); }

void YkdFamilyBase::handle_extra_payload(const ProtocolPayload& payload,
                                         ProcessId /*sender*/) {
  DV_LOG_DEBUG("ignoring payload type "
               << static_cast<int>(payload.type()) << " at process " << self_);
}

const CombinedKnowledge& YkdFamilyBase::compute_combined() {
  CombinedKnowledge& k = combined_scratch_;
  k.max_session = 0;
  k.max_primary = Session{0, initial_view_.members};
  k.constraints.clear();

  for (const auto& [q, state] : states_) {
    k.max_session = std::max(k.max_session, state->session_number);
    if (session_precedes(k.max_primary, state->last_primary)) {
      k.max_primary = state->last_primary;
    }
  }

  for (const auto& [q, state] : states_) {
    for (const Session& s : state->ambiguous) {
      if (filter_constraints_ && s.number <= k.max_primary.number) continue;
      if (std::find(k.constraints.begin(), k.constraints.end(), s) !=
          k.constraints.end()) {
        continue;
      }
      if (filter_constraints_ && provably_unformed(s, states_)) continue;
      k.constraints.push_back(s);
    }
  }
  return k;
}

bool YkdFamilyBase::provably_unformed(const Session& s,
                                      const StateMap& states) const {
  // All members of S must be present to testify.
  if (!s.members.is_subset_of(current_view_.members)) return false;

  // A member m that formed S recorded lastFormed(q) = S for every q in S at
  // formation time.  For any session that survived the maxPrimary.number
  // filter, the entry for S's lowest member cannot have been overwritten:
  // an overwriting formation F would satisfy F.number > S.number and raise
  // m's lastPrimary past S, which would have filtered S out already.  So a
  // single entry per member is a sound witness.
  const ProcessId probe = s.members.lowest();
  bool unformed = true;
  s.members.for_each([&](ProcessId m) {
    const StateExchangePayload* st = states.get(m);
    DV_ASSERT_MSG(st != nullptr, "member state missing after subset check");
    if (st->last_primary == s) unformed = false;
    if (probe < st->last_formed.size() && st->last_formed[probe] == s) {
      unformed = false;
    }
  });
  return unformed;
}

void YkdFamilyBase::on_exchange_complete() {
  const CombinedKnowledge& knowledge = compute_combined();

  // RESOLVE / ACCEPT: adopt the highest-numbered formed session containing
  // this process.  If q formed (or adopted) a session F with self in it,
  // q's lastFormed(self) records the latest such F, so scanning each
  // member's lastPrimary and lastFormed(self) finds the maximum.
  Session best = last_primary_;
  for (const auto& [q, state] : states_) {
    const Session& lp = state->last_primary;
    if (lp.members.contains(self_) && session_precedes(best, lp)) best = lp;
    if (self_ < state->last_formed.size()) {
      const Session& lf = state->last_formed[self_];
      if (lf.members.contains(self_) && session_precedes(best, lf)) best = lf;
    }
  }
  if (session_precedes(last_primary_, best)) {
    last_primary_ = best;
    best.members.for_each([&](ProcessId q) { last_formed_[q] = best; });
    note_state_mutated();
  }

  // RESOLVE / DELETE: shed stored ambiguous sessions per the variant's
  // pruning mode.  (This never changes a *filtered* decision -- the pool is
  // built from the received states and filtered the same way everywhere --
  // it changes what is stored and shipped, and what an unfiltered decision
  // like DFLS's is constrained by next time.)
  std::size_t pruned = 0;
  switch (prune_mode_) {
    case PruneMode::kFull:
      pruned = std::erase_if(ambiguous_, [&](const Session& s) {
        return s.number <= last_primary_.number ||
               provably_unformed(s, states_);
      });
      break;
    case PruneMode::kGlobalSuperseded:
      pruned = std::erase_if(ambiguous_, [&](const Session& s) {
        return s.number <= knowledge.max_primary.number;
      });
      break;
    case PruneMode::kUnformedOnly:
      pruned = std::erase_if(ambiguous_, [&](const Session& s) {
        return provably_unformed(s, states_);
      });
      break;
  }
  if (pruned != 0) note_state_mutated();

  // DECIDE (Figure 3-4): the new view must be a subquorum of maxPrimary and
  // of every constraint session.
  bool decide = is_subquorum(current_view_.members, knowledge.max_primary.members);
  for (const Session& s : knowledge.constraints) {
    if (!decide) break;
    decide = decide && is_subquorum(current_view_.members, s.members);
  }
  if (decide && !allow_attempt(knowledge, states_)) {
    blocked_ = true;
    decide = false;
  }

  states_.clear();
  if (!decide) {
    stage_ = Stage::kIdle;
    return;
  }

  session_number_ = knowledge.max_session + 1;
  proposed_ = Session{session_number_, current_view_.members};
  ambiguous_.push_back(proposed_);
  note_state_mutated();
  stage_ = Stage::kAttempting;
  attempts_received_.clear();

  // Reuse the previous attempt payload once its last outside reference
  // (the network's copy from the previous round 2) is gone.
  if (!attempt_pool_ || attempt_pool_.use_count() > 1) {
    attempt_pool_ = std::make_shared<AttemptPayload>();
  }
  attempt_pool_->proposal = proposed_;
  stage(attempt_pool_);
}

void YkdFamilyBase::form_primary() {
  last_primary_ = proposed_;
  in_primary_ = true;
  proposed_.members.for_each([&](ProcessId q) { last_formed_[q] = proposed_; });
  stage_ = Stage::kIdle;
  note_state_mutated();
  on_primary_formed();
}

namespace {

void encode_sessions(Encoder& enc, const std::vector<Session>& sessions) {
  enc.put_varint(sessions.size());
  for (const Session& s : sessions) s.encode(enc);
}

std::vector<Session> decode_sessions(Decoder& dec) {
  const std::uint64_t n = dec.get_varint();
  if (n > 1'000'000 || n > dec.remaining()) {
    throw DecodeError("implausible session vector length");
  }
  std::vector<Session> out;
  out.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) out.push_back(Session::decode(dec));
  return out;
}

void encode_staged_payload(Encoder& enc, const ProtocolPayload& payload) {
  enc.put_bytes(encode_payload(payload));
}

PayloadPtr decode_staged_payload(Decoder& dec) {
  const std::vector<std::byte> bytes = dec.get_bytes();
  return decode_payload(bytes);
}

}  // namespace

void YkdFamilyBase::save(Encoder& enc) const {
  last_primary_.encode(enc);
  encode_sessions(enc, last_formed_);
  encode_sessions(enc, ambiguous_);
  enc.put_varint(session_number_);
  enc.put_bool(in_primary_);
  enc.put_bool(blocked_);
  current_view_.encode(enc);
  enc.put_u8(static_cast<std::uint8_t>(stage_));

  // The state map is ordered by process id, so identical algorithm states
  // always produce identical snapshot bytes.
  enc.put_varint(states_.size());
  for (const auto& [q, state] : states_) {
    enc.put_varint(q);
    encode_staged_payload(enc, *state);
  }

  attempts_received_.encode(enc);
  proposed_.encode(enc);
  // Only the live range survives a checkpoint: entries before outbox_head_
  // were already polled, so a restored instance re-packs from zero.
  enc.put_varint(outbox_.size() - outbox_head_);
  for (std::size_t i = outbox_head_; i < outbox_.size(); ++i) {
    encode_staged_payload(enc, *outbox_[i]);
  }
  save_extra(enc);
}

void YkdFamilyBase::load(Decoder& dec) {
  last_primary_ = Session::decode(dec);
  last_formed_ = decode_sessions(dec);
  ambiguous_ = decode_sessions(dec);
  session_number_ = dec.get_varint();
  in_primary_ = dec.get_bool();
  blocked_ = dec.get_bool();
  current_view_ = View::decode(dec);
  const std::uint8_t raw_stage = dec.get_u8();
  if (raw_stage > static_cast<std::uint8_t>(Stage::kAttempting)) {
    throw DecodeError("bad YKD stage");
  }
  stage_ = static_cast<Stage>(raw_stage);

  const std::uint64_t state_count = dec.get_varint();
  if (state_count > initial_view_.members.universe_size()) {
    throw DecodeError("more exchange states than processes");
  }
  states_.clear();
  for (std::uint64_t i = 0; i < state_count; ++i) {
    const ProcessId q = static_cast<ProcessId>(dec.get_varint());
    if (q >= initial_view_.members.universe_size()) {
      throw DecodeError("exchange state from an out-of-universe process");
    }
    PayloadPtr payload = decode_staged_payload(dec);
    if (payload->type() != PayloadType::kStateExchange) {
      throw DecodeError("exchange map entry is not a state-exchange payload");
    }
    states_.set(q, std::static_pointer_cast<const StateExchangePayload>(
                       std::move(payload)));
  }

  attempts_received_ = ProcessSet::decode(dec);
  proposed_ = Session::decode(dec);
  const std::uint64_t staged = dec.get_varint();
  if (staged > 1'000'000) throw DecodeError("implausible outbox length");
  outbox_.clear();
  outbox_head_ = 0;
  for (std::uint64_t i = 0; i < staged; ++i) {
    outbox_.push_back(decode_staged_payload(dec));
  }
  note_state_mutated();  // restored fields: the pooled payload is stale
  load_extra(dec);
}

void YkdFamilyBase::save_extra(Encoder& /*enc*/) const {}

void YkdFamilyBase::load_extra(Decoder& /*dec*/) {}

AlgorithmDebugInfo YkdFamilyBase::debug_info() const {
  AlgorithmDebugInfo info;
  info.last_primary = last_primary_;
  info.ambiguous_count = ambiguous_.size();
  info.blocked = blocked_;
  info.session_number = session_number_;
  return info;
}

}  // namespace dynvote
