// Protocol payloads piggybacked onto application messages.
//
// Every payload echoes the ViewId of the view it was sent in; receivers
// discard payloads from views other than their current one (a real
// view-synchronous GCS makes cross-view leakage rare, but the partial
// flush performed on a partition delivers old-view traffic, and protocol
// state machines must never act on stale rounds).
//
// Payloads travel inside the simulator as shared pointers, but each one has
// a binary wire form (type byte + view id + body) so message sizes can be
// measured -- the thesis reports protocol state staying under ~2 KB at 64
// processes -- and so the library can be bound to a real transport.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/session.hpp"
#include "core/types.hpp"
#include "util/codec.hpp"

namespace dynvote {

enum class PayloadType : std::uint8_t {
  /// Round 1 of the YKD family: full state exchange.
  kStateExchange = 1,
  /// Round 2 of the YKD family: commitment to form the proposed primary.
  kAttempt = 2,
  /// DFLS round 3: permission to garbage-collect ambiguous sessions.
  kGcRound = 3,
  /// MR1p round 1: a process's single pending ambiguous session.
  kMr1pPending = 4,
  /// MR1p round 2: what the sender knows about someone's pending session.
  kMr1pReply = 5,
  /// MR1p round 3: the sender's call on how its pending session resolves.
  kMr1pResolve = 6,
  /// MR1p round 4: request to declare the current view a primary (<V,1>).
  kMr1pPropose = 7,
  /// MR1p round 5: attempt message (<attempt,V>).
  kMr1pAttempt = 8,
};

/// Abstract piggybacked payload.
struct ProtocolPayload {
  ViewId view_id = 0;

  virtual ~ProtocolPayload() = default;
  virtual PayloadType type() const = 0;
  /// Encode everything after the (type, view_id) envelope header.
  virtual void encode_body(Encoder& enc) const = 0;
};

using PayloadPtr = std::shared_ptr<const ProtocolPayload>;

/// Round 1 of YKD / unoptimized YKD / DFLS / 1-pending: "the processes
/// exchange all of their internal state -- sending each other their
/// ambiguous sessions, last primary components, and so on" (thesis §3.1).
struct StateExchangePayload final : ProtocolPayload {
  SessionNumber session_number = 0;
  Session last_primary;
  std::vector<Session> ambiguous;
  /// lastFormed(q) for q = 0..universe-1: the last primary the sender formed
  /// that included q.  Indexed by process id over the initial universe.
  std::vector<Session> last_formed;

  PayloadType type() const override { return PayloadType::kStateExchange; }
  void encode_body(Encoder& enc) const override;
  static std::shared_ptr<StateExchangePayload> decode_body(Decoder& dec);
};

/// Round 2 of the YKD family: the sender commits to the proposed session.
struct AttemptPayload final : ProtocolPayload {
  Session proposal;

  PayloadType type() const override { return PayloadType::kAttempt; }
  void encode_body(Encoder& enc) const override;
  static std::shared_ptr<AttemptPayload> decode_body(Decoder& dec);
};

/// DFLS's extra round: once received from every member of the formed
/// primary, ambiguous sessions may be deleted.
struct GcRoundPayload final : ProtocolPayload {
  SessionNumber formed_number = 0;

  PayloadType type() const override { return PayloadType::kGcRound; }
  void encode_body(Encoder& enc) const override;
  static std::shared_ptr<GcRoundPayload> decode_body(Decoder& dec);
};

/// Where an MR1p process stands in its attempt to form its pending view.
enum class Mr1pStatus : std::uint8_t {
  kNone = 0,
  /// Sent the <V,1> proposal; has not seen it acknowledged by everyone.
  kSent = 1,
  /// Saw <V,1> from all members and sent the attempt message.
  kAttempt = 2,
  /// Concluded the attempt failed.
  kTryFail = 3,
};

/// MR1p round 1: the sender's pending ambiguous session plus its progress.
struct Mr1pPendingPayload final : ProtocolPayload {
  /// Whether the sender has a pending session at all (processes with none
  /// still participate in the exchange so peers can count responses).
  bool has_pending = false;
  Session pending;
  std::uint64_t num = 0;
  Mr1pStatus status = Mr1pStatus::kNone;

  PayloadType type() const override { return PayloadType::kMr1pPending; }
  void encode_body(Encoder& enc) const override;
  static std::shared_ptr<Mr1pPendingPayload> decode_body(Decoder& dec);
};

/// What a responder knows about a queried pending session.
enum class Mr1pVerdict : std::uint8_t {
  /// The responder has the session in its formedViews: it was formed.
  kFormed = 1,
  /// The responder is a member, has moved past it, and never formed it.
  kAborted = 2,
  /// The responder echoes its own in-progress status for the session.
  kStatusSent = 3,
  kStatusAttempt = 4,
  kStatusTryFail = 5,
};

/// One reply about one queried pending session.
struct Mr1pReplyItem {
  Session about;
  Mr1pVerdict verdict = Mr1pVerdict::kAborted;
  std::uint64_t num = 0;

  bool operator==(const Mr1pReplyItem&) const = default;
};

/// MR1p round 2: replies about every distinct pending session the sender was
/// queried on in round 1, batched into one multicast (one poll emits one
/// message, so per-session unicasts would serialize into extra rounds).
struct Mr1pReplyPayload final : ProtocolPayload {
  std::vector<Mr1pReplyItem> replies;

  PayloadType type() const override { return PayloadType::kMr1pReply; }
  void encode_body(Encoder& enc) const override;
  static std::shared_ptr<Mr1pReplyPayload> decode_body(Decoder& dec);
};

/// MR1p round 3: the sender's call on how its pending session resolves.
struct Mr1pResolvePayload final : ProtocolPayload {
  Session about;
  Mr1pVerdict call = Mr1pVerdict::kStatusTryFail;

  PayloadType type() const override { return PayloadType::kMr1pResolve; }
  void encode_body(Encoder& enc) const override;
  static std::shared_ptr<Mr1pResolvePayload> decode_body(Decoder& dec);
};

/// MR1p round 4: <V,1> -- request to declare the current view a primary.
struct Mr1pProposePayload final : ProtocolPayload {
  Session proposal;

  PayloadType type() const override { return PayloadType::kMr1pPropose; }
  void encode_body(Encoder& enc) const override;
  static std::shared_ptr<Mr1pProposePayload> decode_body(Decoder& dec);
};

/// MR1p round 5: <attempt,V>.
struct Mr1pAttemptPayload final : ProtocolPayload {
  Session proposal;

  PayloadType type() const override { return PayloadType::kMr1pAttempt; }
  void encode_body(Encoder& enc) const override;
  static std::shared_ptr<Mr1pAttemptPayload> decode_body(Decoder& dec);
};

/// Serialize a payload: type byte, view id, then the body.
std::vector<std::byte> encode_payload(const ProtocolPayload& payload);

/// Inverse of encode_payload; throws DecodeError on malformed input.
PayloadPtr decode_payload(std::span<const std::byte> bytes);

/// Encoded size in bytes without materializing a copy for the caller.
std::size_t payload_wire_size(const ProtocolPayload& payload);

}  // namespace dynvote
