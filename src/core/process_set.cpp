#include "core/process_set.hpp"

#include <bit>

#include "util/assert.hpp"
#include "util/codec.hpp"

namespace dynvote {

namespace {
std::size_t words_for(std::size_t universe_size) {
  return (universe_size + 63) / 64;
}
}  // namespace

ProcessSet::ProcessSet(std::size_t universe_size)
    : universe_size_(universe_size), words_(words_for(universe_size), 0) {}

ProcessSet::ProcessSet(std::size_t universe_size,
                       std::initializer_list<ProcessId> ids)
    : ProcessSet(universe_size) {
  for (ProcessId id : ids) insert(id);
}

ProcessSet ProcessSet::full(std::size_t universe_size) {
  ProcessSet s(universe_size);
  for (std::size_t w = 0; w < s.words_.size(); ++w) s.words_[w] = ~0ULL;
  const std::size_t tail = universe_size % 64;
  if (tail != 0 && !s.words_.empty()) {
    s.words_.back() = (1ULL << tail) - 1;
  }
  return s;
}

std::size_t ProcessSet::count() const {
  std::size_t n = 0;
  for (std::uint64_t w : words_) n += static_cast<std::size_t>(std::popcount(w));
  return n;
}

void ProcessSet::check_id(ProcessId id) const {
  DV_REQUIRE(id < universe_size_, "process id outside the set's universe");
}

void ProcessSet::check_same_universe(const ProcessSet& other) const {
  DV_REQUIRE(universe_size_ == other.universe_size_,
             "set operation across different universes");
}

bool ProcessSet::contains(ProcessId id) const {
  if (id >= universe_size_) return false;
  return (words_[id / 64] >> (id % 64)) & 1;
}

void ProcessSet::insert(ProcessId id) {
  check_id(id);
  words_[id / 64] |= (1ULL << (id % 64));
}

void ProcessSet::erase(ProcessId id) {
  check_id(id);
  words_[id / 64] &= ~(1ULL << (id % 64));
}

void ProcessSet::clear() {
  for (auto& w : words_) w = 0;
}

ProcessId ProcessSet::lowest() const {
  for (std::size_t w = 0; w < words_.size(); ++w) {
    if (words_[w] != 0) {
      return static_cast<ProcessId>(
          w * 64 + static_cast<std::size_t>(std::countr_zero(words_[w])));
    }
  }
  return kInvalidProcess;
}

std::size_t ProcessSet::intersection_count(const ProcessSet& other) const {
  check_same_universe(other);
  std::size_t n = 0;
  for (std::size_t w = 0; w < words_.size(); ++w) {
    n += static_cast<std::size_t>(std::popcount(words_[w] & other.words_[w]));
  }
  return n;
}

bool ProcessSet::is_subset_of(const ProcessSet& other) const {
  check_same_universe(other);
  for (std::size_t w = 0; w < words_.size(); ++w) {
    if ((words_[w] & ~other.words_[w]) != 0) return false;
  }
  return true;
}

bool ProcessSet::intersects(const ProcessSet& other) const {
  check_same_universe(other);
  for (std::size_t w = 0; w < words_.size(); ++w) {
    if ((words_[w] & other.words_[w]) != 0) return true;
  }
  return false;
}

ProcessSet ProcessSet::united_with(const ProcessSet& other) const {
  check_same_universe(other);
  ProcessSet out = *this;
  for (std::size_t w = 0; w < words_.size(); ++w) out.words_[w] |= other.words_[w];
  return out;
}

ProcessSet ProcessSet::intersected_with(const ProcessSet& other) const {
  check_same_universe(other);
  ProcessSet out = *this;
  for (std::size_t w = 0; w < words_.size(); ++w) out.words_[w] &= other.words_[w];
  return out;
}

ProcessSet ProcessSet::minus(const ProcessSet& other) const {
  check_same_universe(other);
  ProcessSet out = *this;
  for (std::size_t w = 0; w < words_.size(); ++w) out.words_[w] &= ~other.words_[w];
  return out;
}

int ProcessSet::compare(const ProcessSet& other) const {
  check_same_universe(other);
  for (std::size_t w = 0; w < words_.size(); ++w) {
    if (words_[w] != other.words_[w]) {
      return words_[w] < other.words_[w] ? -1 : 1;
    }
  }
  return 0;
}

std::vector<ProcessId> ProcessSet::members() const {
  std::vector<ProcessId> out;
  out.reserve(count());
  for_each([&](ProcessId id) { out.push_back(id); });
  return out;
}

std::string ProcessSet::to_string() const {
  std::string out = "{";
  bool first = true;
  for_each([&](ProcessId id) {
    if (!first) out += ',';
    out += std::to_string(id);
    first = false;
  });
  out += '}';
  return out;
}

void ProcessSet::encode(Encoder& enc) const {
  enc.put_varint(universe_size_);
  for (std::uint64_t w : words_) enc.put_u64_fixed(w);
}

ProcessSet ProcessSet::decode(Decoder& dec) {
  const std::uint64_t universe = dec.get_varint();
  if (universe > 1'000'000) throw DecodeError("implausible universe size");
  ProcessSet s(static_cast<std::size_t>(universe));
  for (auto& w : s.words_) w = dec.get_u64_fixed();
  const std::size_t tail = s.universe_size_ % 64;
  if (tail != 0 && !s.words_.empty() &&
      (s.words_.back() >> tail) != 0) {
    throw DecodeError("bits set outside the universe");
  }
  return s;
}

std::size_t ProcessSet::hash() const {
  std::uint64_t h = 0x9e3779b97f4a7c15ULL ^ universe_size_;
  for (std::uint64_t w : words_) {
    h ^= w + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  }
  return static_cast<std::size_t>(h);
}

}  // namespace dynvote
