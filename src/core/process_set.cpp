#include "core/process_set.hpp"

#include <bit>

#include "util/codec.hpp"

namespace dynvote {

ProcessSet::ProcessSet(std::size_t universe_size)
    : universe_size_(universe_size) {
  if (words_for(universe_size) > kInlineWords) {
    spill_.assign(words_for(universe_size), 0);
  }
}

ProcessSet::ProcessSet(std::size_t universe_size,
                       std::initializer_list<ProcessId> ids)
    : ProcessSet(universe_size) {
  for (ProcessId id : ids) insert(id);
}

ProcessSet ProcessSet::full(std::size_t universe_size) {
  ProcessSet s(universe_size);
  std::uint64_t* words = s.word_data();
  for (std::size_t w = 0; w < s.word_count(); ++w) words[w] = ~0ULL;
  const std::size_t tail = universe_size % 64;
  if (tail != 0 && s.word_count() > 0) {
    words[s.word_count() - 1] = (1ULL << tail) - 1;
  }
  return s;
}

std::size_t ProcessSet::count() const {
  const std::uint64_t* words = word_data();
  std::size_t n = 0;
  for (std::size_t w = 0; w < word_count(); ++w) {
    n += static_cast<std::size_t>(std::popcount(words[w]));
  }
  return n;
}

ProcessId ProcessSet::lowest() const {
  const std::uint64_t* words = word_data();
  for (std::size_t w = 0; w < word_count(); ++w) {
    if (words[w] != 0) {
      return static_cast<ProcessId>(
          w * 64 + static_cast<std::size_t>(std::countr_zero(words[w])));
    }
  }
  return kInvalidProcess;
}

std::size_t ProcessSet::intersection_count(const ProcessSet& other) const {
  check_same_universe(other);
  const std::uint64_t* a = word_data();
  const std::uint64_t* b = other.word_data();
  std::size_t n = 0;
  for (std::size_t w = 0; w < word_count(); ++w) {
    n += static_cast<std::size_t>(std::popcount(a[w] & b[w]));
  }
  return n;
}

bool ProcessSet::is_subset_of(const ProcessSet& other) const {
  check_same_universe(other);
  const std::uint64_t* a = word_data();
  const std::uint64_t* b = other.word_data();
  for (std::size_t w = 0; w < word_count(); ++w) {
    if ((a[w] & ~b[w]) != 0) return false;
  }
  return true;
}

bool ProcessSet::intersects(const ProcessSet& other) const {
  check_same_universe(other);
  const std::uint64_t* a = word_data();
  const std::uint64_t* b = other.word_data();
  for (std::size_t w = 0; w < word_count(); ++w) {
    if ((a[w] & b[w]) != 0) return true;
  }
  return false;
}

ProcessSet ProcessSet::united_with(const ProcessSet& other) const {
  check_same_universe(other);
  ProcessSet out = *this;
  std::uint64_t* words = out.word_data();
  const std::uint64_t* b = other.word_data();
  for (std::size_t w = 0; w < out.word_count(); ++w) words[w] |= b[w];
  return out;
}

ProcessSet ProcessSet::intersected_with(const ProcessSet& other) const {
  check_same_universe(other);
  ProcessSet out = *this;
  std::uint64_t* words = out.word_data();
  const std::uint64_t* b = other.word_data();
  for (std::size_t w = 0; w < out.word_count(); ++w) words[w] &= b[w];
  return out;
}

ProcessSet ProcessSet::minus(const ProcessSet& other) const {
  check_same_universe(other);
  ProcessSet out = *this;
  std::uint64_t* words = out.word_data();
  const std::uint64_t* b = other.word_data();
  for (std::size_t w = 0; w < out.word_count(); ++w) words[w] &= ~b[w];
  return out;
}

std::vector<ProcessId> ProcessSet::members() const {
  std::vector<ProcessId> out;
  out.reserve(count());
  for_each([&](ProcessId id) { out.push_back(id); });
  return out;
}

std::string ProcessSet::to_string() const {
  std::string out = "{";
  bool first = true;
  for_each([&](ProcessId id) {
    if (!first) out += ',';
    out += std::to_string(id);
    first = false;
  });
  out += '}';
  return out;
}

void ProcessSet::encode(Encoder& enc) const {
  enc.put_varint(universe_size_);
  const std::uint64_t* words =
      spill_.empty() ? inline_words_.data() : spill_.data();
  for (std::size_t w = 0; w < word_count(); ++w) enc.put_u64_fixed(words[w]);
}

ProcessSet ProcessSet::decode(Decoder& dec) {
  const std::uint64_t universe = dec.get_varint();
  if (universe > 1'000'000) throw DecodeError("implausible universe size");
  ProcessSet s(static_cast<std::size_t>(universe));
  std::uint64_t* words =
      s.spill_.empty() ? s.inline_words_.data() : s.spill_.data();
  for (std::size_t w = 0; w < s.word_count(); ++w) {
    words[w] = dec.get_u64_fixed();
  }
  const std::size_t tail = s.universe_size_ % 64;
  if (tail != 0 && s.word_count() > 0 &&
      (words[s.word_count() - 1] >> tail) != 0) {
    throw DecodeError("bits set outside the universe");
  }
  return s;
}

std::size_t ProcessSet::hash() const {
  std::uint64_t h = 0x9e3779b97f4a7c15ULL ^ universe_size_;
  const std::uint64_t* words = word_data();
  for (std::size_t w = 0; w < word_count(); ++w) {
    h ^= words[w] + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  }
  return static_cast<std::size_t>(h);
}

}  // namespace dynvote
