#include "core/process_set_batch.hpp"

#include <bit>

#include "core/quorum.hpp"

namespace dynvote {

void ProcessSetBatch::set_lane(std::size_t lane, const ProcessSet& s) {
  check_mask(s);
  std::uint64_t* dst = lane_words(lane);
  const std::uint64_t* src = s.word_data();
  for (std::size_t w = 0; w < words_per_lane_; ++w) dst[w] = src[w];
}

ProcessSet ProcessSetBatch::extract_lane(std::size_t lane) const {
  ProcessSet out(universe_size_);
  const std::uint64_t* src = lane_words(lane);
  std::uint64_t* dst = out.word_data();
  for (std::size_t w = 0; w < words_per_lane_; ++w) dst[w] = src[w];
  return out;
}

std::size_t ProcessSetBatch::lane_count(std::size_t lane) const {
  const std::uint64_t* words = lane_words(lane);
  std::size_t n = 0;
  for (std::size_t w = 0; w < words_per_lane_; ++w) {
    n += static_cast<std::size_t>(std::popcount(words[w]));
  }
  return n;
}

void ProcessSetBatch::intersect_lanes(const ProcessSetBatch& other) {
  check_shape(other);
  std::uint64_t* a = words_.data();
  const std::uint64_t* b = other.words_.data();
  const std::size_t total = lanes_ * words_per_lane_;
  for (std::size_t w = 0; w < total; ++w) a[w] &= b[w];
}

void ProcessSetBatch::minus_lanes(const ProcessSetBatch& other) {
  check_shape(other);
  std::uint64_t* a = words_.data();
  const std::uint64_t* b = other.words_.data();
  const std::size_t total = lanes_ * words_per_lane_;
  for (std::size_t w = 0; w < total; ++w) a[w] &= ~b[w];
}

void ProcessSetBatch::unite_lanes(const ProcessSetBatch& other) {
  check_shape(other);
  std::uint64_t* a = words_.data();
  const std::uint64_t* b = other.words_.data();
  const std::size_t total = lanes_ * words_per_lane_;
  for (std::size_t w = 0; w < total; ++w) a[w] |= b[w];
}

void ProcessSetBatch::intersect_broadcast(const ProcessSet& mask) {
  check_mask(mask);
  const std::uint64_t* m = mask.word_data();
  for (std::size_t lane = 0; lane < lanes_; ++lane) {
    std::uint64_t* a = words_.data() + lane * words_per_lane_;
    for (std::size_t w = 0; w < words_per_lane_; ++w) a[w] &= m[w];
  }
}

void ProcessSetBatch::minus_broadcast(const ProcessSet& mask) {
  check_mask(mask);
  const std::uint64_t* m = mask.word_data();
  for (std::size_t lane = 0; lane < lanes_; ++lane) {
    std::uint64_t* a = words_.data() + lane * words_per_lane_;
    for (std::size_t w = 0; w < words_per_lane_; ++w) a[w] &= ~m[w];
  }
}

void ProcessSetBatch::unite_broadcast(const ProcessSet& mask) {
  check_mask(mask);
  const std::uint64_t* m = mask.word_data();
  for (std::size_t lane = 0; lane < lanes_; ++lane) {
    std::uint64_t* a = words_.data() + lane * words_per_lane_;
    for (std::size_t w = 0; w < words_per_lane_; ++w) a[w] |= m[w];
  }
}

void ProcessSetBatch::counts(std::size_t* out) const {
  for (std::size_t lane = 0; lane < lanes_; ++lane) {
    const std::uint64_t* a = words_.data() + lane * words_per_lane_;
    std::size_t n = 0;
    for (std::size_t w = 0; w < words_per_lane_; ++w) {
      n += static_cast<std::size_t>(std::popcount(a[w]));
    }
    out[lane] = n;
  }
}

void ProcessSetBatch::intersection_counts(const ProcessSet& mask,
                                          std::size_t* out) const {
  check_mask(mask);
  const std::uint64_t* m = mask.word_data();
  for (std::size_t lane = 0; lane < lanes_; ++lane) {
    const std::uint64_t* a = words_.data() + lane * words_per_lane_;
    std::size_t n = 0;
    for (std::size_t w = 0; w < words_per_lane_; ++w) {
      n += static_cast<std::size_t>(std::popcount(a[w] & m[w]));
    }
    out[lane] = n;
  }
}

void ProcessSetBatch::subquorum_of(const ProcessSet& of, bool* out) const {
  check_mask(of);
  DV_REQUIRE(!of.empty(), "subquorum test against an empty set");
  const std::uint64_t* m = of.word_data();
  const std::size_t of_count = of.count();
  const ProcessId tie_breaker = of.lowest();
  for (std::size_t lane = 0; lane < lanes_; ++lane) {
    const std::uint64_t* a = words_.data() + lane * words_per_lane_;
    std::size_t shared = 0;
    for (std::size_t w = 0; w < words_per_lane_; ++w) {
      shared += static_cast<std::size_t>(std::popcount(a[w] & m[w]));
    }
    if (2 * shared > of_count) {
      out[lane] = true;
    } else if (2 * shared == of_count) {
      out[lane] = lane_contains(lane, tie_breaker);
    } else {
      out[lane] = false;
    }
  }
}

}  // namespace dynvote
