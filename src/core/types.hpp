// Fundamental identifiers shared across the library.
#pragma once

#include <cstdint>
#include <limits>

namespace dynvote {

/// Identifies one process in the system.  Ids are dense: a system of n
/// processes uses ids 0..n-1.  The id doubles as the "lexical" order used by
/// dynamic linear voting's tie-break (the thesis permits any convenient
/// deterministic order, e.g. IP address + pid; dense ids are ours).
using ProcessId = std::uint32_t;

inline constexpr ProcessId kInvalidProcess =
    std::numeric_limits<ProcessId>::max();

/// Monotone identifier assigned by the group communication service to each
/// installed view.  Unique system-wide within one simulation.
using ViewId = std::uint64_t;

/// Session numbers order attempts to form primary components (the thesis's
/// `sessionNumber`).
using SessionNumber = std::uint64_t;

}  // namespace dynvote
