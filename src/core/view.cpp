#include "core/view.hpp"

#include "util/codec.hpp"

namespace dynvote {

void View::encode(Encoder& enc) const {
  enc.put_varint(id);
  members.encode(enc);
}

View View::decode(Decoder& dec) {
  View v;
  v.id = dec.get_varint();
  v.members = ProcessSet::decode(dec);
  return v;
}

}  // namespace dynvote
