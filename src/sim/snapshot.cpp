#include "sim/snapshot.hpp"

#include <bit>
#include <string>

#include "util/codec.hpp"

#ifndef DV_GIT_DESCRIBE
#define DV_GIT_DESCRIBE "unknown"
#endif

namespace dynvote {

namespace {

// FNV-1a, word at a time; stable across platforms for the fixed-width
// inputs we feed it.
struct Fnv1a {
  std::uint64_t h = 0xcbf29ce484222325ull;
  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xffu;
      h *= 0x100000001b3ull;
    }
  }
};

}  // namespace

std::uint64_t config_trajectory_hash(const SimulationConfig& config) {
  Fnv1a fnv;
  fnv.mix(config.processes);
  fnv.mix(config.changes_per_run);
  fnv.mix(std::bit_cast<std::uint64_t>(config.mean_rounds_between_changes));
  fnv.mix(std::bit_cast<std::uint64_t>(config.crash_fraction));
  // The fault model shapes the trajectory as much as the rate does; every
  // knob (used or not by the selected model) feeds the hash, including the
  // full trace document for replays.
  const FaultModelParams& model = config.fault_model;
  fnv.mix(static_cast<std::uint64_t>(model.kind));
  fnv.mix(std::bit_cast<std::uint64_t>(model.wake_bias));
  fnv.mix(model.repair_capacity);
  fnv.mix(std::bit_cast<std::uint64_t>(model.repair_mean_rounds));
  fnv.mix(model.trace_json.size());
  for (char c : model.trace_json) {
    fnv.mix(static_cast<unsigned char>(c));
  }
  fnv.mix(config.seed);
  fnv.mix(config.observer);
  fnv.mix(config.max_stabilization_rounds);
  return fnv.h;
}

std::vector<std::byte> save_snapshot(const Simulation& sim) {
  Encoder enc;
  enc.put_string(kSnapshotSchema);
  enc.put_string(sim.gcs().algorithm(0).name());
  enc.put_string(DV_GIT_DESCRIBE);
  enc.put_u64_fixed(config_trajectory_hash(sim.config()));
  sim.save(enc);
  return enc.take();
}

void restore_snapshot(Simulation& sim, std::span<const std::byte> bytes) {
  Decoder dec(bytes);
  const std::string schema = dec.get_string();
  if (schema != kSnapshotSchema) {
    throw DecodeError("snapshot schema mismatch: got \"" + schema +
                      "\", expected \"" + std::string(kSnapshotSchema) + "\"");
  }
  const std::string algorithm = dec.get_string();
  const std::string_view expected = sim.gcs().algorithm(0).name();
  if (algorithm != expected) {
    throw DecodeError("snapshot is for algorithm \"" + algorithm +
                      "\", this simulation runs \"" + std::string(expected) +
                      "\"");
  }
  (void)dec.get_string();  // producing build; informational only
  const std::uint64_t hash = dec.get_u64_fixed();
  if (hash != config_trajectory_hash(sim.config())) {
    throw DecodeError(
        "snapshot was taken under a different simulation config");
  }
  sim.load(dec);
  dec.finish();
}

}  // namespace dynvote
