#include "sim/driver.hpp"

#include <limits>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/prefix.hpp"
#include "util/assert.hpp"
#include "util/codec.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"

namespace dynvote {

namespace {
Gcs make_gcs(const SimulationConfig& config) {
  const GcsOptions options{.measure_wire_sizes = config.measure_wire_sizes,
                           .delivery_seed =
                               child_seed(config.seed, kDeliveryStreamTag),
                           .serialize_on_wire = config.serialize_on_wire};
  if (config.algorithm_factory) {
    return Gcs(config.algorithm_factory, config.processes, options);
  }
  return Gcs(config.algorithm, config.processes, options);
}
}  // namespace

Simulation::Simulation(const SimulationConfig& config)
    : config_(config),
      gcs_(make_gcs(config)),
      model_(make_fault_model(config.fault_model, config.seed,
                              config.mean_rounds_between_changes,
                              config.crash_fraction, config.processes)),
      checker_(gcs_) {
  DV_REQUIRE(config.processes >= 2, "the study needs at least two processes");
  DV_REQUIRE(config.observer < config.processes, "observer id out of range");
}

void Simulation::step_round() {
  last_round_active_ = gcs_.step_round();
  if (config_.check_invariants) checker_.check(gcs_);
}

void Simulation::apply_next_fault() {
  model_->apply_next(gcs_);
  ++total_changes_;
  DV_OBS_INC("sim.changes_applied");
  if (config_.check_invariants) checker_.check(gcs_);
  // A fault installs views, and view_changed stages protocol traffic that
  // only surfaces at the next round's poll -- the system must be presumed
  // active until a full round proves otherwise, or the quiet-gap
  // fast-forward would skip the post-fault exchange.
  last_round_active_ = true;
}

void Simulation::count_round(RunResult& result) {
  step_round();
  ++result.rounds_executed;
  const bool primary = gcs_.has_primary();
  if (primary) ++result.rounds_with_primary;
  DV_OBS_INC("sim.rounds");
  // Edge-detect availability regained: the instant marks the round index
  // within the run and the change count so far.
  if (primary && !had_primary_) {
    DV_TRACE_INSTANT("primary_formed", result.rounds_executed, total_changes_);
  }
  had_primary_ = primary;
}

void Simulation::note_ambiguity_sample(std::size_t ambiguous_count) {
  if (ambiguous_count < last_ambiguous_) {
    DV_OBS_ADD("sim.sessions_resolved", last_ambiguous_ - ambiguous_count);
    DV_TRACE_INSTANT("session_resolved", last_ambiguous_ - ambiguous_count,
                     ambiguous_count);
  }
  last_ambiguous_ = ambiguous_count;
}

bool Simulation::step_event() {
  RunResult& result = progress_.partial;

  if (progress_.phase == RunProgress::Phase::kInjecting) {
    // A finite schedule (trace replay) may run dry before the change
    // budget; the run then stabilizes early.  Checked only between events
    // -- a drawn gap means an event is still pending.
    if (!progress_.gap_drawn && model_->exhausted()) {
      progress_.phase = RunProgress::Phase::kStabilizing;
      progress_.quiet_rounds = 0;
      return false;
    }
    if (!progress_.gap_drawn) {
      progress_.gap_remaining = model_->next_gap();
      progress_.gap_drawn = true;
    }
    if (progress_.gap_remaining > 0) {
      if (config_.fast_forward_quiet_gaps && !last_round_active_) {
        // Quiescence is absorbing until the next fault: nothing is in
        // flight and nobody staged a send, so every remaining gap round
        // would deliver nothing, send nothing, and leave the state
        // untouched -- only the round counters and the (idempotent)
        // invariant check would move, and they move deterministically.
        // Advance them arithmetically instead of spinning the loop.  The
        // state was already checked when it went quiet, so note_rechecks
        // is exact accounting.
        const std::size_t skip = progress_.gap_remaining;
        result.rounds_executed += skip;
        if (gcs_.has_primary()) result.rounds_with_primary += skip;
        if (config_.check_invariants) checker_.note_rechecks(skip);
        fast_forwarded_rounds_ += skip;
        progress_.gap_remaining = 0;
        return false;
      }
      --progress_.gap_remaining;
      count_round(result);
      return false;
    }
    const std::size_t ambiguous_at_change =
        gcs_.algorithm(config_.observer).debug_info().ambiguous_count;
    result.observer_ambiguous_at_changes.push_back(ambiguous_at_change);
    note_ambiguity_sample(ambiguous_at_change);
    apply_next_fault();
    ++result.changes_applied;
    progress_.gap_drawn = false;
    if (++progress_.change_index == config_.changes_per_run) {
      progress_.phase = RunProgress::Phase::kStabilizing;
      progress_.quiet_rounds = 0;
    }
    return false;
  }

  // Stabilization: run rounds uninterrupted until a full round passes with
  // no delivery and no send.
  count_round(result);
  ++progress_.quiet_rounds;
  if (last_round_active_) {
    DV_ASSERT_MSG(progress_.quiet_rounds < config_.max_stabilization_rounds,
                  "system failed to quiesce within the stabilization budget");
    return false;
  }

  result.primary_at_end = gcs_.has_primary();
  const AlgorithmDebugInfo observer =
      gcs_.algorithm(config_.observer).debug_info();
  result.observer_ambiguous_at_end = observer.ambiguous_count;
  result.observer_blocked_at_end = observer.blocked;
  note_ambiguity_sample(observer.ambiguous_count);
  return true;
}

std::optional<RunResult> Simulation::run_events(std::size_t max_events) {
  if (!progress_.active) {
    progress_ = RunProgress{};
    progress_.active = true;
    progress_.partial.observer_ambiguous_at_changes.reserve(
        config_.changes_per_run);
    if (config_.changes_per_run == 0) {
      progress_.phase = RunProgress::Phase::kStabilizing;
    }
  }
  for (std::size_t e = 0; e < max_events; ++e) {
    if (step_event()) {
      progress_.active = false;
      return std::move(progress_.partial);
    }
  }
  return std::nullopt;
}

bool Simulation::advance_prefix_round() {
  DV_REQUIRE(!progress_.active,
             "prefix rounds cannot interleave with an active run");
  step_round();
  return last_round_active_;
}

void Simulation::save_prefix_node(Encoder& enc) const {
  // The GCS travels as a length-prefixed blob so the adopting side can
  // hand it to Gcs::load in isolation; the fault model and run progress
  // are deliberately excluded (each adopting run keeps its own).
  Encoder gcs_state;
  gcs_.save(gcs_state);
  enc.put_bytes(gcs_state.take());
  checker_.save(enc);
  enc.put_bool(last_round_active_);
}

std::size_t Simulation::begin_run_with_prefix(const PrefixCache& prefix) {
  DV_REQUIRE(!progress_.active && total_changes_ == 0,
             "prefix adoption requires a freshly constructed simulation");
  progress_ = RunProgress{};
  progress_.active = true;
  progress_.partial.observer_ambiguous_at_changes.reserve(
      config_.changes_per_run);
  if (config_.changes_per_run == 0) {
    progress_.phase = RunProgress::Phase::kStabilizing;
    return 0;
  }
  // A dry schedule stabilizes immediately; leave that to step_event, which
  // makes the same test first.
  if (model_->exhausted()) return 0;
  // The single model draw the adopted rounds would have made.
  progress_.gap_remaining = model_->next_gap();
  progress_.gap_drawn = true;
  const std::size_t adopt = std::min(progress_.gap_remaining, prefix.depth());
  if (adopt == 0) return 0;
  const PrefixCache::Node& node = prefix.node(adopt);
  if (node.bytes.empty()) {
    // The cached state is byte-identical to this simulation's fresh state,
    // so adoption is pure arithmetic.  One real check writes the checker
    // history the adopted rounds would have written (check() is
    // idempotent); the remaining adopt-1 checks are counter bumps.
    if (config_.check_invariants) {
      checker_.check(gcs_);
      checker_.note_rechecks(adopt - 1);
    }
  } else {
    Decoder dec(node.bytes);
    const std::vector<std::byte> gcs_blob = dec.get_bytes();
    Decoder gcs_state(gcs_blob);
    gcs_.load(gcs_state);
    gcs_state.finish();
    checker_.load(dec);
    (void)dec.get_bool();  // the node's quiescence flag, applied below
    dec.finish();
    // The snapshot carries the spine's delivery stream.  The adopted state
    // predates the first coin flip, so starting this run's own stream
    // fresh here reproduces its draws bit-exactly.
    gcs_.reseed_delivery(child_seed(config_.seed, kDeliveryStreamTag));
  }
  last_round_active_ = node.last_round_active;
  progress_.partial.rounds_executed = adopt;
  progress_.partial.rounds_with_primary = node.rounds_with_primary;
  progress_.gap_remaining -= adopt;
  // Re-arm the observability edge detectors, as load() does.
  had_primary_ = node.has_primary;
  last_ambiguous_ =
      gcs_.algorithm(config_.observer).debug_info().ambiguous_count;
  return adopt;
}

RunResult Simulation::run_once() {
  DV_REQUIRE(!progress_.active,
             "run_once called with a paused run in progress");
  auto result = run_events(std::numeric_limits<std::size_t>::max());
  DV_ASSERT(result.has_value());
  return *std::move(result);
}

namespace {

void encode_run_result(Encoder& enc, const RunResult& r) {
  enc.put_bool(r.primary_at_end);
  enc.put_varint(r.observer_ambiguous_at_end);
  enc.put_varint(r.observer_ambiguous_at_changes.size());
  for (std::size_t v : r.observer_ambiguous_at_changes) enc.put_varint(v);
  enc.put_varint(r.rounds_executed);
  enc.put_varint(r.changes_applied);
  enc.put_varint(r.rounds_with_primary);
  enc.put_bool(r.observer_blocked_at_end);
}

RunResult decode_run_result(Decoder& dec) {
  RunResult r;
  r.primary_at_end = dec.get_bool();
  r.observer_ambiguous_at_end = dec.get_varint();
  const std::uint64_t n = dec.get_varint();
  if (n > 1'000'000 || n > dec.remaining()) {
    throw DecodeError("implausible per-change sample count");
  }
  r.observer_ambiguous_at_changes.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    r.observer_ambiguous_at_changes.push_back(dec.get_varint());
  }
  r.rounds_executed = dec.get_varint();
  r.changes_applied = dec.get_varint();
  r.rounds_with_primary = dec.get_varint();
  r.observer_blocked_at_end = dec.get_bool();
  return r;
}

}  // namespace

void Simulation::save(Encoder& enc) const {
  gcs_.save(enc);
  // The fault model writes a named, length-prefixed blob (like the
  // algorithm instances) so a snapshot can never be misread by a
  // simulation running a different model.
  enc.put_string(model_->name());
  Encoder model_state;
  model_->save(model_state);
  const std::vector<std::byte> model_bytes = model_state.take();
  enc.put_bytes(model_bytes);
  checker_.save(enc);
  enc.put_varint(total_changes_);
  enc.put_bool(last_round_active_);

  enc.put_bool(progress_.active);
  enc.put_u8(static_cast<std::uint8_t>(progress_.phase));
  enc.put_varint(progress_.change_index);
  enc.put_bool(progress_.gap_drawn);
  enc.put_varint(progress_.gap_remaining);
  enc.put_varint(progress_.quiet_rounds);
  encode_run_result(enc, progress_.partial);
}

void Simulation::load(Decoder& dec) {
  gcs_.load(dec);
  const std::string model_name = dec.get_string();
  if (model_name != model_->name()) {
    throw DecodeError("snapshot drives fault model \"" + model_name +
                      "\", this simulation runs \"" +
                      std::string(model_->name()) + "\"");
  }
  const std::vector<std::byte> model_bytes = dec.get_bytes();
  Decoder model_state(model_bytes);
  model_->load(model_state);
  model_state.finish();
  checker_.load(dec);
  total_changes_ = dec.get_varint();
  last_round_active_ = dec.get_bool();
  // Re-arm the observability edge detectors from the restored state so a
  // resumed run emits the same transitions a never-paused one would.
  had_primary_ = gcs_.has_primary();
  last_ambiguous_ =
      gcs_.algorithm(config_.observer).debug_info().ambiguous_count;

  progress_.active = dec.get_bool();
  const std::uint8_t raw_phase = dec.get_u8();
  if (raw_phase > static_cast<std::uint8_t>(RunProgress::Phase::kStabilizing)) {
    throw DecodeError("bad run phase in snapshot");
  }
  progress_.phase = static_cast<RunProgress::Phase>(raw_phase);
  progress_.change_index = dec.get_varint();
  progress_.gap_drawn = dec.get_bool();
  progress_.gap_remaining = dec.get_varint();
  progress_.quiet_rounds = dec.get_varint();
  progress_.partial = decode_run_result(dec);
}

}  // namespace dynvote
