#include "sim/driver.hpp"

#include "util/assert.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"

namespace dynvote {

namespace {
Gcs make_gcs(const SimulationConfig& config) {
  const GcsOptions options{.measure_wire_sizes = config.measure_wire_sizes,
                           .delivery_seed = mix_seed(config.seed, 0xDE11u),
                           .serialize_on_wire = config.serialize_on_wire};
  if (config.algorithm_factory) {
    return Gcs(config.algorithm_factory, config.processes, options);
  }
  return Gcs(config.algorithm, config.processes, options);
}
}  // namespace

Simulation::Simulation(const SimulationConfig& config)
    : config_(config),
      gcs_(make_gcs(config)),
      scheduler_(config.seed, config.mean_rounds_between_changes,
                 config.crash_fraction),
      checker_(gcs_) {
  DV_REQUIRE(config.processes >= 2, "the study needs at least two processes");
  DV_REQUIRE(config.observer < config.processes, "observer id out of range");
}

void Simulation::step_round() {
  last_round_active_ = gcs_.step_round();
  if (config_.check_invariants) checker_.check(gcs_);
}

void Simulation::apply(const ConnectivityChange& change) {
  switch (change.kind) {
    case ConnectivityChange::Kind::kPartition:
      gcs_.apply_partition(change.component_a, change.moved);
      break;
    case ConnectivityChange::Kind::kMerge:
      gcs_.apply_merge(change.component_a, change.component_b);
      break;
    case ConnectivityChange::Kind::kCrash:
      gcs_.apply_crash(change.process);
      break;
    case ConnectivityChange::Kind::kRecovery:
      gcs_.apply_recovery(change.process);
      break;
  }
  ++total_changes_;
  if (config_.check_invariants) checker_.check(gcs_);
}

RunResult Simulation::run_once() {
  RunResult result;
  result.observer_ambiguous_at_changes.reserve(config_.changes_per_run);

  for (std::size_t c = 0; c < config_.changes_per_run; ++c) {
    const std::size_t gap = scheduler_.next_gap();
    for (std::size_t g = 0; g < gap; ++g) {
      step_round();
      ++result.rounds_executed;
      if (gcs_.has_primary()) ++result.rounds_with_primary;
    }
    result.observer_ambiguous_at_changes.push_back(
        gcs_.algorithm(config_.observer).debug_info().ambiguous_count);
    apply(scheduler_.next_change(gcs_.topology(), gcs_.crashed()));
    ++result.changes_applied;
  }

  // Stabilization: run rounds uninterrupted until a full round passes with
  // no delivery and no send.
  std::size_t quiet_rounds = 0;
  while (quiet_rounds < config_.max_stabilization_rounds) {
    step_round();
    ++result.rounds_executed;
    if (gcs_.has_primary()) ++result.rounds_with_primary;
    ++quiet_rounds;
    if (!last_round_active_) break;
  }
  DV_ASSERT_MSG(!last_round_active_,
                "system failed to quiesce within the stabilization budget");

  result.primary_at_end = gcs_.has_primary();
  const AlgorithmDebugInfo observer =
      gcs_.algorithm(config_.observer).debug_info();
  result.observer_ambiguous_at_end = observer.ambiguous_count;
  result.observer_blocked_at_end = observer.blocked;
  return result;
}

}  // namespace dynvote
