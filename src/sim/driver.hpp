// The driver loop (thesis §2.2).
//
// "The testing system begins each simulation with all the processes
// mutually connected.  The processes are then allowed to exchange messages
// while the driver loop injects connectivity changes with the appropriate
// probability.  Once the desired number of changes have been introduced,
// the driver loop allows the processes to exchange messages without
// further interruptions until the system reaches a stable state."
//
// One Simulation instance supports both test modes: construct fresh per run
// for the "fresh start" figures, or call run_once() repeatedly on the same
// instance for the "cascading" figures (each run starts in the state at
// which the previous one ended).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "gcs/gcs.hpp"
#include "sim/fault_model.hpp"
#include "sim/invariants.hpp"

namespace dynvote {

class PrefixCache;

struct SimulationConfig {
  AlgorithmKind algorithm = AlgorithmKind::kYkd;
  /// When set, overrides `algorithm`: instances come from this factory
  /// (custom options, research algorithms plugged into the framework).
  Gcs::AlgorithmFactory algorithm_factory;
  std::size_t processes = 64;
  /// Connectivity changes injected per run (the figures use 2, 6, 12).
  std::size_t changes_per_run = 6;
  /// Mean message rounds between changes (the figures sweep 0..12).
  double mean_rounds_between_changes = 4.0;
  /// Extension (thesis §5.1): fraction of injected faults that are process
  /// crashes/recoveries rather than connectivity changes.  0 = the paper's
  /// model, with bit-identical schedules.  (Geometric model only.)
  double crash_fraction = 0.0;
  /// Which fault model drives the run and its model-specific knobs; the
  /// default geometric model reproduces the thesis's schedules exactly.
  FaultModelParams fault_model;
  std::uint64_t seed = 1;
  /// Run the safety checker after every round and change.
  bool check_invariants = true;
  /// Encode payloads to record wire sizes (slower).
  bool measure_wire_sizes = false;
  /// Round-trip every multicast through the byte codec, as a real
  /// transport would (see GcsOptions::serialize_on_wire).
  bool serialize_on_wire = false;
  /// Stabilization must quiesce within this many rounds; exceeding it means
  /// an algorithm chatters forever and is reported as an error.
  std::size_t max_stabilization_rounds = 4096;
  /// The process whose ambiguous-session counts are sampled (thesis: "the
  /// statistics were collected by one of the processes").
  ProcessId observer = 0;
  /// Fast-forward fault gaps once the system is quiescent.  A round with no
  /// delivery and no send leaves the GCS (and therefore every later quiet
  /// round) bit-identical -- only the round counters and the invariant
  /// checker's check count move, and those move deterministically.  With
  /// this flag the driver advances them arithmetically instead of spinning
  /// the message loop, producing bit-identical RunResults in a fraction of
  /// the wall time.  Off by default so the legacy event-for-event loop
  /// remains available as a control (DV_BATCH=1).
  bool fast_forward_quiet_gaps = false;
};

struct RunResult {
  /// Did the run end with a primary component present?  The headline
  /// availability metric of every figure.
  bool primary_at_end = false;
  /// Ambiguous sessions the observer retains at the stable end (Fig. 4-7).
  std::size_t observer_ambiguous_at_end = 0;
  /// Ambiguous sessions the observer held at each injected change, i.e.
  /// what it must ship over the network (Fig. 4-8).
  std::vector<std::size_t> observer_ambiguous_at_changes;
  std::size_t rounds_executed = 0;
  std::size_t changes_applied = 0;
  /// Rounds during which some primary component existed -- an in-run
  /// availability measure, finer than the end-of-run flag (interrupted
  /// attempts cost availability *during* the turbulence too).
  std::size_t rounds_with_primary = 0;
  /// Observer blocked (wants to act, lacks quorum/members) at the end.
  bool observer_blocked_at_end = false;

  bool operator==(const RunResult&) const = default;
};

/// Where a paused run stands, so a snapshot taken mid-run resumes exactly.
struct RunProgress {
  enum class Phase : std::uint8_t {
    /// Still injecting the run's connectivity changes.
    kInjecting = 0,
    /// All changes in; running rounds until the system quiesces.
    kStabilizing = 1,
  };

  /// A run is mid-flight (run_events stopped on its budget, not run end).
  bool active = false;
  Phase phase = Phase::kInjecting;
  /// Changes applied so far in this run.
  std::size_t change_index = 0;
  /// The gap before change `change_index` was already drawn from the fault
  /// stream (the draw happens lazily, once per change).
  bool gap_drawn = false;
  std::size_t gap_remaining = 0;
  std::size_t quiet_rounds = 0;
  /// Counters accumulated so far in this run.
  RunResult partial;
};

class Simulation {
 public:
  explicit Simulation(const SimulationConfig& config);

  /// Inject `changes_per_run` changes at the configured rate, stabilize,
  /// and report.  Callable repeatedly (cascading mode).
  RunResult run_once();

  /// Resumable form of run_once: execute at most `max_events` simulation
  /// events -- one event is one message round or one change application --
  /// and return the RunResult if the run completed, std::nullopt if it was
  /// paused mid-run (snapshot-safe; the next call continues it).  A run
  /// paused at event k and resumed is bit-identical to one that never
  /// paused: run_once() itself is run_events(no limit).
  std::optional<RunResult> run_events(std::size_t max_events);

  /// True while a run started by run_events is paused mid-run.
  bool run_in_progress() const { return progress_.active; }

  /// Begin this simulation's first run by adopting a node from a shared
  /// prefix cache instead of re-simulating the pre-fault rounds.  Draws the
  /// run's first gap (the one model draw those rounds would have made),
  /// restores the cached state for min(gap, cache depth) rounds, and leaves
  /// the run active for run_events()/run_once() to continue.  Requires a
  /// freshly constructed simulation whose config matches the cache's; the
  /// produced RunResult is bit-identical to a plain run.  Returns the
  /// number of rounds adopted from the cache (0 = no adoption: zero gap, an
  /// exhausted schedule, or changes_per_run == 0).
  std::size_t begin_run_with_prefix(const PrefixCache& prefix);

  /// One raw message round plus the invariant check, outside any run.
  /// Returns true if the round was active (any delivery or send).  Used by
  /// the prefix spine builder only: the pre-fault rounds draw no RNG, so a
  /// single spine simulation can stand in for every run of a case.
  bool advance_prefix_round();

  /// Serialize exactly the state a prefix node must carry: the GCS, the
  /// checker history, and the quiescence flag.  The fault model and run
  /// progress are deliberately excluded -- each adopting run keeps its own.
  void save_prefix_node(Encoder& enc) const;

  /// Rounds skipped by the quiet-gap fast-forward so far (telemetry only;
  /// the skipped rounds are still counted in RunResult::rounds_executed).
  std::uint64_t fast_forwarded_rounds() const { return fast_forwarded_rounds_; }

  const SimulationConfig& config() const { return config_; }
  const Gcs& gcs() const { return gcs_; }
  Gcs& gcs() { return gcs_; }
  std::uint64_t total_changes() const { return total_changes_; }
  std::uint64_t invariant_checks() const { return checker_.checks_performed(); }

  /// Serialize all mutable state (GCS, fault model, checker history, run
  /// progress).  Configuration is not written; `load` restores into a
  /// Simulation constructed with an identical config, which the snapshot
  /// envelope (sim/snapshot.hpp) enforces.
  void save(Encoder& enc) const;
  void load(Decoder& dec);

 private:
  void apply_next_fault();
  void step_round();
  /// Execute one event; returns true when it completed the active run.
  bool step_event();
  /// step_round plus the shared per-round accounting (availability counters
  /// and the primary_formed trace edge).
  void count_round(RunResult& result);
  /// Record an observer ambiguity sample; a drop since the previous sample
  /// means sessions were resolved (observability only).
  void note_ambiguity_sample(std::size_t ambiguous_count);

  // Pinned by the snapshot envelope's config trajectory hash, not written.
  SimulationConfig config_;  // dvlint: transient(constructor configuration)
  Gcs gcs_;
  std::unique_ptr<FaultModel> model_;
  InvariantChecker checker_;
  std::uint64_t total_changes_ = 0;
  bool last_round_active_ = true;
  RunProgress progress_;
  // Observability edge detectors; recomputed from the restored GCS on
  // load, never results-affecting.
  bool had_primary_ = true;  // dvlint: transient(recomputed from gcs on load)
  std::size_t last_ambiguous_ = 0;  // dvlint: transient(trace edge detector)
  // Telemetry only: every skipped round is still counted in the RunResult.
  std::uint64_t fast_forwarded_rounds_ = 0;  // dvlint: transient(telemetry)
};

}  // namespace dynvote
