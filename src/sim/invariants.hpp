// The safety properties every run is checked against (thesis §2.2):
// "Every process in a view agreed on whether or not that view was a
// primary, and at all times there was at most one primary component
// declared."  Each of the thesis's algorithms survived >1.31M connectivity
// changes under these checks; ours run after every round and every change.
//
// Beyond the thesis's per-instant checks, the checker tracks the chain of
// formed primaries across time: every newly formed primary must intersect
// the previously formed one (the quorum it resolved through) and must not
// carry an older session.  Two temporally disjoint primaries -- each
// legitimate at its own instant -- would let the replicated state fork,
// which no per-instant check can see.  This chain property is what the
// fault-model property harness certifies for every (algorithm x model)
// pair: it holds under geometric partitions, sleepy leaves/joins, repair
// queues, and replayed traces alike, because every algorithm forms a new
// primary only through a majority of the last one (or of the universe).
#pragma once

#include <vector>

#include "core/session.hpp"
#include "core/types.hpp"
#include "gcs/gcs.hpp"

namespace dynvote {

class Encoder;
class Decoder;

class InvariantChecker {
 public:
  explicit InvariantChecker(const Gcs& gcs);

  /// Throws InvariantViolation on any breach:
  ///  1. all members of a component agree on in_primary;
  ///  2. at most one component system-wide is a primary;
  ///  3. members of a primary component agree on the formed session, and
  ///     that session's members are exactly the component;
  ///  4. each process's lastPrimary number never decreases;
  ///  5. model-agnostic primary chain: each newly formed primary's session
  ///     intersects the previously formed one (live quorum chain through
  ///     formedViews) and its session number never decreases -- so no two
  ///     temporally disjoint primaries can ever both form.
  void check(const Gcs& gcs);

  std::uint64_t checks_performed() const { return checks_; }

  /// Account `n` further checks of a state that was already checked and has
  /// not changed since.  check() is idempotent on identical GCS state (the
  /// history writes re-store the same values), so re-running it would move
  /// nothing but the counter -- the prefix fast-forward uses this to skip
  /// quiescent rounds while keeping `checks_performed` bit-identical to a
  /// run that executed them.
  void note_rechecks(std::uint64_t n) { checks_ += n; }

  void save(Encoder& enc) const;
  void load(Decoder& dec);

 private:
  std::vector<SessionNumber> last_primary_numbers_;
  /// The most recently formed primary's session; empty members = none
  /// observed yet.
  Session last_formed_primary_;
  std::uint64_t checks_ = 0;
};

}  // namespace dynvote
