// The safety properties every run is checked against (thesis §2.2):
// "Every process in a view agreed on whether or not that view was a
// primary, and at all times there was at most one primary component
// declared."  Each of the thesis's algorithms survived >1.31M connectivity
// changes under these checks; ours run after every round and every change.
#pragma once

#include <vector>

#include "core/types.hpp"
#include "gcs/gcs.hpp"

namespace dynvote {

class Encoder;
class Decoder;

class InvariantChecker {
 public:
  explicit InvariantChecker(const Gcs& gcs);

  /// Throws InvariantViolation on any breach:
  ///  1. all members of a component agree on in_primary;
  ///  2. at most one component system-wide is a primary;
  ///  3. members of a primary component agree on the formed session, and
  ///     that session's members are exactly the component;
  ///  4. each process's lastPrimary number never decreases.
  void check(const Gcs& gcs);

  std::uint64_t checks_performed() const { return checks_; }

  void save(Encoder& enc) const;
  void load(Decoder& dec);

 private:
  std::vector<SessionNumber> last_primary_numbers_;
  std::uint64_t checks_ = 0;
};

}  // namespace dynvote
