#include "sim/invariants.hpp"

#include <sstream>

#include "util/assert.hpp"
#include "util/codec.hpp"

namespace dynvote {

InvariantChecker::InvariantChecker(const Gcs& gcs)
    : last_primary_numbers_(gcs.process_count(), 0) {}

void InvariantChecker::save(Encoder& enc) const {
  enc.put_varint(checks_);
  enc.put_varint(last_primary_numbers_.size());
  for (SessionNumber n : last_primary_numbers_) enc.put_varint(n);
  last_formed_primary_.encode(enc);
}

void InvariantChecker::load(Decoder& dec) {
  checks_ = dec.get_varint();
  const std::uint64_t n = dec.get_varint();
  if (n != last_primary_numbers_.size()) {
    throw DecodeError("snapshot invariant history does not match this checker");
  }
  for (SessionNumber& v : last_primary_numbers_) {
    v = static_cast<SessionNumber>(dec.get_varint());
  }
  last_formed_primary_ = Session::decode(dec);
}

void InvariantChecker::check(const Gcs& gcs) {
  ++checks_;
  std::size_t primary_components = 0;

  for (const ProcessSet& component : gcs.topology().components()) {
    // A crashed process claims nothing: its (frozen, possibly stale) state
    // is exempt until it recovers.  Crashed processes are always isolated
    // into singleton components.
    if (component.is_subset_of(gcs.crashed())) continue;

    const ProcessId first = component.lowest();
    const bool claim = gcs.algorithm(first).in_primary();
    const Session& first_primary = gcs.algorithm(first).last_primary_session();

    component.for_each([&](ProcessId p) {
      const auto& alg = gcs.algorithm(p);
      if (alg.in_primary() != claim) {
        std::ostringstream os;
        os << "agreement violated in component " << component.to_string()
           << ": process " << first << " says " << claim << ", process " << p
           << " says " << alg.in_primary();
        throw InvariantViolation(os.str());
      }
      const Session& primary = alg.last_primary_session();
      if (claim && !(primary == first_primary)) {
        std::ostringstream os;
        os << "primary component " << component.to_string()
           << " disagrees on the formed session: process " << first << " has "
           << first_primary.to_string() << ", process " << p << " has "
           << primary.to_string();
        throw InvariantViolation(os.str());
      }
      if (primary.number < last_primary_numbers_[p]) {
        std::ostringstream os;
        os << "lastPrimary number went backwards at process " << p << ": "
           << last_primary_numbers_[p] << " -> " << primary.number;
        throw InvariantViolation(os.str());
      }
      last_primary_numbers_[p] = primary.number;
    });

    if (claim) {
      ++primary_components;
      if (!(first_primary.members == component)) {
        std::ostringstream os;
        os << "primary session members " << first_primary.to_string()
           << " differ from component " << component.to_string();
        throw InvariantViolation(os.str());
      }
      // The primary chain (check 5): a NEW formed primary must descend
      // from the previous one through an intersecting quorum, whichever
      // fault model produced the turbulence in between.
      if (!(first_primary == last_formed_primary_)) {
        if (!last_formed_primary_.members.empty()) {
          if (first_primary.number < last_formed_primary_.number) {
            std::ostringstream os;
            os << "formed primary session number went backwards: "
               << last_formed_primary_.to_string() << " -> "
               << first_primary.to_string();
            throw InvariantViolation(os.str());
          }
          if (!first_primary.members.intersects(last_formed_primary_.members)) {
            std::ostringstream os;
            os << "temporally disjoint primaries: "
               << last_formed_primary_.to_string()
               << " and " << first_primary.to_string()
               << " share no member -- the quorum chain is broken";
            throw InvariantViolation(os.str());
          }
        }
        last_formed_primary_ = first_primary;
      }
    }
  }

  if (primary_components > 1) {
    std::ostringstream os;
    os << primary_components << " live primary components exist concurrently";
    throw InvariantViolation(os.str());
  }
}

}  // namespace dynvote
