#include "sim/experiment.hpp"

#include <bit>
#include <memory>
#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/batch_driver.hpp"
#include "sim/driver.hpp"
#include "sim/snapshot.hpp"
#include "util/assert.hpp"
#include "util/env.hpp"
#include "util/rng.hpp"

namespace dynvote {

namespace {

std::uint64_t rate_key(double mean_rounds) {
  return std::bit_cast<std::uint64_t>(mean_rounds);
}

SimulationConfig config_for(const CaseSpec& spec, std::uint64_t seed) {
  SimulationConfig config;
  config.algorithm = spec.algorithm;
  config.algorithm_factory = spec.algorithm_factory;
  config.processes = spec.processes;
  config.changes_per_run = spec.changes;
  config.mean_rounds_between_changes = spec.mean_rounds;
  config.crash_fraction = spec.crash_fraction;
  config.fault_model = spec.fault_model;
  config.seed = seed;
  config.check_invariants = spec.check_invariants;
  config.measure_wire_sizes = spec.measure_wire_sizes;
  return config;
}

/// Fold the simulation's cumulative wire/invariant counters into the result
/// as the delta since the previous fold.  Both modes call this once per run
/// (fresh-start with a brand-new simulation, cascading with the one
/// long-lived simulation), so per-case aggregation -- including
/// `wire.max_message_bytes` -- is byte-for-byte the same shape in both.
void fold_run_counters(CaseResult& result, const Simulation& sim,
                       WireStats& prev_wire, std::uint64_t& prev_checks,
                       std::uint64_t& prev_deliveries) {
  const WireStats& now = sim.gcs().wire_stats();
  WireStats delta;
  delta.messages_sent = now.messages_sent - prev_wire.messages_sent;
  delta.protocol_messages_sent =
      now.protocol_messages_sent - prev_wire.protocol_messages_sent;
  delta.total_message_bytes =
      now.total_message_bytes - prev_wire.total_message_bytes;
  delta.max_message_bytes = now.max_message_bytes;
  result.wire.merge(delta);
  prev_wire = now;

  result.invariant_checks += sim.invariant_checks() - prev_checks;
  prev_checks = sim.invariant_checks();

  result.total_deliveries += sim.gcs().deliveries() - prev_deliveries;
  DV_OBS_ADD("sim.deliveries", sim.gcs().deliveries() - prev_deliveries);
  prev_deliveries = sim.gcs().deliveries();
}

/// Observability for one completed run: global run/availability counters
/// plus a per-algorithm session-resolution counter derived from the
/// observer's ambiguity samples (each drop between consecutive samples is
/// that many sessions resolved).  Reads the finished RunResult only.
void note_run_observed(const CaseSpec& spec, std::uint64_t run_index,
                       const RunResult& run) {
  DV_OBS_INC("sim.runs");
  if (run.primary_at_end) DV_OBS_INC("sim.runs_with_primary");
  std::uint64_t resolved = 0;
  std::size_t prev = 0;
  bool have_prev = false;
  const auto sample = [&](std::size_t ambiguous) {
    if (have_prev && ambiguous < prev) resolved += prev - ambiguous;
    prev = ambiguous;
    have_prev = true;
  };
  for (const std::size_t ambiguous : run.observer_ambiguous_at_changes) {
    sample(ambiguous);
  }
  sample(run.observer_ambiguous_at_end);
  if (resolved > 0) {
    const std::string name =
        std::string("sim.sessions_resolved.") +
        (spec.algorithm_factory ? std::string("custom")
                                : std::string(to_string(spec.algorithm)));
    obs::Counter per_algorithm(name.c_str());
    per_algorithm.inc(resolved);
  }
  DV_TRACE_INSTANT("run_complete", run_index, run.primary_at_end ? 1 : 0);
}

}  // namespace

const char* to_string(RunMode mode) {
  return mode == RunMode::kFreshStart ? "fresh-start" : "cascading";
}

namespace {

std::uint64_t shard_seed(const CaseSpec& spec, std::uint64_t run_index) {
  return mix_seed(spec.base_seed, spec.processes, spec.changes,
                  rate_key(spec.mean_rounds), run_index);
}

/// DV_BATCH: lanes the batched engine advances in lockstep.  1 selects the
/// legacy one-run-at-a-time loop (the bit-identity control); the default 8
/// keeps the reorder buffer and the SoA batch lanes small while hiding the
/// per-run setup cost.
std::size_t batch_width_from_env() {
  const std::uint64_t width = env_u64("DV_BATCH", 8);
  if (width <= 1) return 1;
  return static_cast<std::size_t>(width > 64 ? 64 : width);
}

}  // namespace

CaseResult run_case_shard(const CaseSpec& spec, std::uint64_t first_run,
                          std::uint64_t count, BatchTelemetry* telemetry) {
  DV_REQUIRE(spec.mode == RunMode::kFreshStart,
             "only fresh-start cases shard; cascading runs share one world");
  const std::size_t width = batch_width_from_env();
  CaseResult result;
  result.success_per_run.reserve(count);

  if (width <= 1) {
    // The legacy event-for-event loop, kept verbatim as the control the
    // batch-parity checks compare against.
    for (std::uint64_t i = first_run; i < first_run + count; ++i) {
      Simulation sim(config_for(spec, shard_seed(spec, i)));
      RunResult run;
      {
        DV_TRACE_SPAN("run", i, spec.processes);
        run = sim.run_once();
      }
      note_run_observed(spec, i, run);
      result.record(std::move(run));
      WireStats prev_wire;
      std::uint64_t prev_checks = 0;
      std::uint64_t prev_deliveries = 0;
      fold_run_counters(result, sim, prev_wire, prev_checks, prev_deliveries);
    }
    if (telemetry) {
      BatchTelemetry serial;
      serial.batch_width = 1;
      serial.runs = count;
      telemetry->merge(serial);
    }
    return result;
  }

  // Batched engine: one shared prefix spine per shard, K lanes in
  // lockstep, results retired in run order so the aggregation below is
  // fold-for-fold the serial loop.
  SimulationConfig spine_config = config_for(spec, shard_seed(spec, first_run));
  spine_config.fast_forward_quiet_gaps = true;
  const PrefixCache prefix(spine_config);

  const auto make_simulation = [&](std::uint64_t run_index) {
    SimulationConfig config = config_for(spec, shard_seed(spec, run_index));
    config.fast_forward_quiet_gaps = true;
    return std::make_unique<Simulation>(config);
  };
  const auto retire = [&](const BatchDriver::RunRecord& record) {
    note_run_observed(spec, record.run_index, record.result);
    result.record(record.result);
    // Fresh-start runs fold against zero baselines, so the record's
    // cumulative counters ARE the per-run deltas (fold_run_counters with
    // zero prevs, inlined).
    result.wire.merge(record.wire);
    result.invariant_checks += record.invariant_checks;
    result.total_deliveries += record.deliveries;
    DV_OBS_ADD("sim.deliveries", record.deliveries);
  };
  const BatchTelemetry shard_telemetry = BatchDriver::run(
      first_run, count, width, prefix, make_simulation, retire);
  if (telemetry) telemetry->merge(shard_telemetry);
  return result;
}

namespace {

std::uint64_t cascading_seed(const CaseSpec& spec) {
  return mix_seed(spec.base_seed, spec.processes, spec.changes,
                  rate_key(spec.mean_rounds), 0xCA5CADEull);
}

}  // namespace

std::vector<CascadeCheckpoint> scout_cascading_case(
    const CaseSpec& spec, const std::vector<std::uint64_t>& boundaries) {
  DV_REQUIRE(spec.mode == RunMode::kCascading,
             "scouting only applies to cascading cases");
  DV_REQUIRE(!boundaries.empty() && boundaries.front() > 0,
             "boundaries must start after run 0");

  CaseSpec scout = spec;
  scout.check_invariants = false;
  scout.measure_wire_sizes = false;
  Simulation sim(config_for(scout, cascading_seed(scout)));

  std::vector<CascadeCheckpoint> checkpoints;
  checkpoints.reserve(boundaries.size());
  std::uint64_t run = 0;
  for (std::uint64_t boundary : boundaries) {
    DV_REQUIRE(boundary > run, "boundaries must be strictly increasing");
    while (run < boundary) {
      (void)sim.run_once();
      ++run;
    }
    checkpoints.push_back(CascadeCheckpoint{run, save_snapshot(sim)});
  }
  return checkpoints;
}

CaseResult run_cascading_shard(const CaseSpec& spec,
                               const CascadeCheckpoint& checkpoint,
                               std::uint64_t count) {
  DV_REQUIRE(spec.mode == RunMode::kCascading,
             "run_cascading_shard needs a cascading case");
  Simulation sim(config_for(spec, cascading_seed(spec)));
  if (!checkpoint.bytes.empty()) {
    restore_snapshot(sim, checkpoint.bytes);
  } else {
    DV_REQUIRE(checkpoint.first_run == 0,
               "resuming mid-case needs snapshot bytes");
  }

  CaseResult result;
  result.success_per_run.reserve(count);
  // Baselines come from the restored cumulative counters, so each fold
  // yields exactly this shard's per-run delta.
  WireStats prev_wire = sim.gcs().wire_stats();
  std::uint64_t prev_checks = sim.invariant_checks();
  std::uint64_t prev_deliveries = sim.gcs().deliveries();
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t run_index = checkpoint.first_run + i;
    RunResult run;
    {
      DV_TRACE_SPAN("run", run_index, spec.processes);
      run = sim.run_once();
    }
    note_run_observed(spec, run_index, run);
    result.record(std::move(run));
    fold_run_counters(result, sim, prev_wire, prev_checks, prev_deliveries);
  }
  return result;
}

CaseResult run_case(const CaseSpec& spec) {
  if (spec.mode == RunMode::kFreshStart) {
    return run_case_shard(spec, 0, spec.runs);
  }
  return run_cascading_shard(spec, CascadeCheckpoint{}, spec.runs);
}

std::vector<double> standard_rate_sweep() {
  return {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12};
}

std::vector<std::size_t> standard_change_counts() { return {2, 6, 12}; }

std::uint64_t runs_from_env(std::uint64_t fallback) {
  return env_u64("DV_RUNS", fallback);
}

std::uint64_t seed_from_env(std::uint64_t fallback) {
  return env_u64("DV_SEED", fallback);
}

}  // namespace dynvote
