#include "sim/experiment.hpp"

#include <bit>
#include <cstdlib>
#include <string>

#include "sim/driver.hpp"
#include "util/rng.hpp"

namespace dynvote {

namespace {

std::uint64_t rate_key(double mean_rounds) {
  return std::bit_cast<std::uint64_t>(mean_rounds);
}

SimulationConfig config_for(const CaseSpec& spec, std::uint64_t seed) {
  SimulationConfig config;
  config.algorithm = spec.algorithm;
  config.algorithm_factory = spec.algorithm_factory;
  config.processes = spec.processes;
  config.changes_per_run = spec.changes;
  config.mean_rounds_between_changes = spec.mean_rounds;
  config.crash_fraction = spec.crash_fraction;
  config.seed = seed;
  config.check_invariants = spec.check_invariants;
  config.measure_wire_sizes = spec.measure_wire_sizes;
  return config;
}

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(raw, &end, 10);
  if (end == raw || *end != '\0') return fallback;
  return static_cast<std::uint64_t>(value);
}

}  // namespace

const char* to_string(RunMode mode) {
  return mode == RunMode::kFreshStart ? "fresh-start" : "cascading";
}

CaseResult run_case(const CaseSpec& spec) {
  CaseResult result;
  result.success_per_run.reserve(spec.runs);

  if (spec.mode == RunMode::kFreshStart) {
    for (std::uint64_t i = 0; i < spec.runs; ++i) {
      const std::uint64_t seed =
          mix_seed(spec.base_seed, spec.processes, spec.changes,
                   rate_key(spec.mean_rounds), i);
      Simulation sim(config_for(spec, seed));
      result.record(sim.run_once());
      result.max_message_bytes =
          std::max(result.max_message_bytes,
                   sim.gcs().wire_stats().max_message_bytes);
    }
  } else {
    const std::uint64_t seed =
        mix_seed(spec.base_seed, spec.processes, spec.changes,
                 rate_key(spec.mean_rounds), 0xCA5CADEull);
    Simulation sim(config_for(spec, seed));
    for (std::uint64_t i = 0; i < spec.runs; ++i) {
      result.record(sim.run_once());
    }
    result.max_message_bytes = sim.gcs().wire_stats().max_message_bytes;
  }
  return result;
}

std::vector<double> standard_rate_sweep() {
  return {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12};
}

std::vector<std::size_t> standard_change_counts() { return {2, 6, 12}; }

std::uint64_t runs_from_env(std::uint64_t fallback) {
  return env_u64("DV_RUNS", fallback);
}

std::uint64_t seed_from_env(std::uint64_t fallback) {
  return env_u64("DV_SEED", fallback);
}

}  // namespace dynvote
