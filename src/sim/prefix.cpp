#include "sim/prefix.hpp"

#include "util/codec.hpp"

namespace dynvote {

namespace {

/// Spine cap: a geometric gap this long is vanishingly rare at the studied
/// rates, and the cap also bounds the cache if an algorithm ever chatters
/// from genesis instead of quiescing.
constexpr std::size_t kMaxPrefixRounds = 64;

std::vector<std::byte> gcs_bytes(const Simulation& sim) {
  Encoder enc;
  sim.gcs().save(enc);
  return enc.take();
}

}  // namespace

PrefixCache::PrefixCache(const SimulationConfig& config) {
  Simulation spine(config);
  const std::vector<std::byte> start = gcs_bytes(spine);
  std::size_t rounds_with_primary = 0;
  for (std::size_t r = 1; r <= kMaxPrefixRounds; ++r) {
    const bool active = spine.advance_prefix_round();
    Node node;
    node.has_primary = spine.gcs().has_primary();
    if (node.has_primary) ++rounds_with_primary;
    node.rounds_with_primary = rounds_with_primary;
    node.last_round_active = active;
    // A quiet round that left the GCS byte-identical to genesis needs no
    // snapshot: the adopting run's own fresh state already IS the node.
    if (active || gcs_bytes(spine) != start) {
      Encoder enc;
      spine.save_prefix_node(enc);
      node.bytes = enc.take();
    }
    nodes_.push_back(std::move(node));
    if (!active) break;
  }
}

}  // namespace dynvote
