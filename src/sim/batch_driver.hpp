// The lockstep batch driver.
//
// Advances up to K independent fresh-start runs of one case "in lockstep":
// each scheduler pass gives every live lane a fixed slice of simulation
// events, so K runs progress together instead of one run monopolizing the
// loop until it finishes.  Combined with the shared prefix cache
// (sim/prefix.hpp) and the quiet-gap fast-forward
// (SimulationConfig::fast_forward_quiet_gaps), this is the batched
// Monte-Carlo engine; results retire through a run-order reorder buffer, so
// the stream of retired runs is bit-identical to the serial loop -- same
// RunResults, same order, same per-run counter folds.
//
// Cross-run batch statistics (the mean stable-end component size) are
// computed on ProcessSetBatch lanes, K bitmaps at a time.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>

#include "gcs/gcs.hpp"
#include "sim/driver.hpp"
#include "sim/prefix.hpp"

namespace dynvote {

/// How a batched case ran: engine shape, prefix-sharing effectiveness, and
/// the batch-computed end-state statistic.  Everything here is telemetry --
/// it rides the manifest's volatile block only and never touches the
/// results fingerprint.
struct BatchTelemetry {
  std::uint64_t batch_width = 1;
  std::uint64_t runs = 0;
  /// Runs that forked from a prefix node instead of re-simulating their
  /// pre-fault rounds (misses: zero first gap, dry schedule, no changes).
  std::uint64_t prefix_hits = 0;
  std::uint64_t prefix_misses = 0;
  /// Rounds restored from prefix nodes across all runs.
  std::uint64_t prefix_rounds_adopted = 0;
  /// Quiet gap rounds advanced arithmetically instead of simulated.
  std::uint64_t ff_rounds_skipped = 0;
  /// Sum over runs of |the observer's component at the stable end|;
  /// divide by runs * processes for the mean reachable fraction.
  std::uint64_t end_component_members = 0;

  void merge(const BatchTelemetry& other) {
    batch_width = batch_width > other.batch_width ? batch_width
                                                  : other.batch_width;
    runs += other.runs;
    prefix_hits += other.prefix_hits;
    prefix_misses += other.prefix_misses;
    prefix_rounds_adopted += other.prefix_rounds_adopted;
    ff_rounds_skipped += other.ff_rounds_skipped;
    end_component_members += other.end_component_members;
  }
};

class BatchDriver {
 public:
  /// One completed run, as the serial loop would have observed it: the
  /// result plus the simulation's cumulative counters (fresh-start runs
  /// fold against zero, so cumulative == per-run delta).
  struct RunRecord {
    std::uint64_t run_index = 0;
    RunResult result;
    WireStats wire;
    std::uint64_t invariant_checks = 0;
    std::uint64_t deliveries = 0;
  };

  using MakeSimulation =
      std::function<std::unique_ptr<Simulation>(std::uint64_t run_index)>;
  /// Invoked once per run, strictly in run-index order.
  using RetireRun = std::function<void(const RunRecord&)>;

  /// Drive runs [first_run, first_run + run_count) of one case, up to
  /// `width` at a time.  Each new lane's simulation comes from
  /// `make_simulation` and is started through the prefix cache; completed
  /// runs retire through `retire` in run order.
  static BatchTelemetry run(std::uint64_t first_run, std::uint64_t run_count,
                            std::size_t width, const PrefixCache& prefix,
                            const MakeSimulation& make_simulation,
                            const RetireRun& retire);
};

}  // namespace dynvote
