// Pluggable fault models (ROADMAP item 3).
//
// The thesis drives every algorithm with one stochastic regime: geometric
// gaps between random partition/merge events (plus the §5.1 crash
// extension).  A FaultModel abstracts that schedule behind two operations
// -- "how many quiet rounds until the next event?" and "apply the next
// event to the GCS" -- so other participation regimes from the related
// literature plug into the same driver loop, sweep engine, and snapshot
// machinery:
//
//   geometric    the thesis's model, re-homed verbatim (bit-identical
//                schedules, gated by bench_diff against bench/baselines/);
//   sleepy       TOB-SVD-style sleepy participation: processes fall asleep
//                (graceful leave view) and wake (join view) instead of
//                partitioning;
//   repairable   crashed processes enter a capacity-K repair queue with
//                geometric ("exponential") service, so availability becomes
//                a function of repair rate;
//   trace        replay of a recorded JSON fault schedule
//                (sim/trace_model.hpp).
//
// Every model draws randomness only as a function of its seed and the
// topology trajectory -- which never depends on the algorithm under test --
// so all six algorithms see the identical schedule, exactly as the thesis
// requires.  New models take their stream from util/rng.hpp's tagged
// child_seed registry; the geometric model keeps the raw seed (the pinned
// thesis stream).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "gcs/gcs.hpp"
#include "sim/fault_schedule.hpp"

namespace dynvote {

class Encoder;
class Decoder;

enum class FaultModelKind : std::uint8_t {  // dvlint: wire_enum
  kGeometric = 0,
  kSleepy = 1,
  kRepairable = 2,
  kTrace = 3,
};

const char* to_string(FaultModelKind kind);
std::optional<FaultModelKind> fault_model_kind_from_string(
    std::string_view name);

/// Model selection plus every model-specific knob, carried by
/// SimulationConfig and CaseSpec.  Unused knobs are ignored (and keep their
/// defaults so equality and hashing stay meaningful).
struct FaultModelParams {
  FaultModelKind kind = FaultModelKind::kGeometric;
  /// Sleepy: probability the next event is a wake when both a sleep and a
  /// wake are feasible.
  double wake_bias = 0.5;
  /// Repairable: servers in the repair shop; failures beyond this wait.
  std::uint64_t repair_capacity = 1;
  /// Repairable: mean rounds a repair takes (geometric service, >= 1).
  double repair_mean_rounds = 8.0;
  /// Trace: the dynvote.trace.v1 document to replay.
  std::string trace_json;

  bool operator==(const FaultModelParams&) const = default;
};

/// A source of fault events.  The driver alternates next_gap() -- run that
/// many message rounds -- with apply_next() until the run's change budget
/// (or the model's schedule) is exhausted.  Models mutate the GCS only
/// through its apply_* surface, and own any state beyond what the GCS
/// already tracks; save/load must round-trip that state bit-exactly
/// (snapshots taken mid-schedule resume the identical trajectory).
class FaultModel {
 public:
  virtual ~FaultModel() = default;

  /// Stable identifier ("geometric", "sleepy", ...), stamped into
  /// snapshots and manifests.
  virtual std::string_view name() const = 0;

  /// Number of message rounds to run before the next event.
  virtual std::size_t next_gap() = 0;

  /// Inject the next event into `gcs`.
  virtual void apply_next(Gcs& gcs) = 0;

  /// True when the schedule has no further events (only the trace model
  /// ever exhausts); the driver then moves straight to stabilization.
  virtual bool exhausted() const { return false; }

  /// Serialize / restore the mutable model state.
  virtual void save(Encoder& enc) const = 0;
  virtual void load(Decoder& dec) = 0;
};

/// The thesis's regime: geometric gaps, random partition/merge (plus
/// crash/recovery when crash_fraction > 0).  A straight re-homing of the
/// pre-FaultModel driver logic around FaultScheduler -- same raw-seed
/// stream, same draw order -- so schedules are bit-identical to every
/// committed baseline.
class GeometricFaultModel final : public FaultModel {
 public:
  GeometricFaultModel(std::uint64_t seed, double mean_rounds_between_changes,
                      double crash_fraction);

  std::string_view name() const override { return "geometric"; }
  std::size_t next_gap() override { return scheduler_.next_gap(); }
  void apply_next(Gcs& gcs) override;
  void save(Encoder& enc) const override { scheduler_.save(enc); }
  void load(Decoder& dec) override { scheduler_.load(dec); }

 private:
  FaultScheduler scheduler_;
};

/// Sleepy participation (TOB-SVD, PAPERS.md): at geometric intervals a
/// uniformly-chosen awake process falls asleep (a graceful leave -- its
/// in-flight messages all escape, unlike a crash) or a sleeper wakes and
/// joins the awake component directly (one join view; its state survived).
/// The GCS's crash set doubles as the sleeper set.  Never kills the last
/// awake process.
class SleepyFaultModel final : public FaultModel {
 public:
  SleepyFaultModel(std::uint64_t seed, double mean_rounds_between_changes,
                   double wake_bias);

  std::string_view name() const override { return "sleepy"; }
  std::size_t next_gap() override;
  void apply_next(Gcs& gcs) override;
  void save(Encoder& enc) const override;
  void load(Decoder& dec) override;

 private:
  Rng rng_;
  double p_;          // dvlint: transient(derived from constructor args)
  double wake_bias_;  // dvlint: transient(derived from constructor args)
};

/// Repairable nodes (PBFT-with-repairable-voting-nodes, PAPERS.md):
/// failures arrive at geometric intervals and crash a uniformly-chosen live
/// process, which enters a repair shop with `capacity` servers and
/// geometric ("exponential") service of mean `repair_mean_rounds`; excess
/// failures wait FIFO.  A completed repair wakes the process straight into
/// the live component.  Discrete-event: the model tracks its own clock and
/// due times, so next_gap() is the time to the earliest pending event
/// (repairs beat failures on ties).  Never crashes the last live process.
class RepairableFaultModel final : public FaultModel {
 public:
  RepairableFaultModel(std::uint64_t seed, std::size_t processes,
                       double mean_rounds_between_changes,
                       std::uint64_t repair_capacity,
                       double repair_mean_rounds);

  std::string_view name() const override { return "repairable"; }
  std::size_t next_gap() override;
  void apply_next(Gcs& gcs) override;
  void save(Encoder& enc) const override;
  void load(Decoder& dec) override;

 private:
  struct Repair {
    ProcessId process = kInvalidProcess;
    std::uint64_t done_at = 0;
  };

  std::uint64_t live_count() const {
    return processes_ - in_service_.size() - queue_.size();
  }
  /// Draw a geometric round count with the given per-round stop chance.
  std::uint64_t draw_geometric(double p);
  /// Arm the next failure if none is pending and one is feasible.
  void arm_failure();
  /// Earliest due repair, if any (lowest done_at, then lowest pid).
  const Repair* next_repair() const;

  Rng rng_;
  std::size_t processes_;     // dvlint: transient(derived from constructor args)
  double fail_p_;             // dvlint: transient(derived from constructor args)
  double service_p_;          // dvlint: transient(derived from constructor args)
  std::uint64_t capacity_;    // dvlint: transient(derived from constructor args)
  std::uint64_t clock_ = 0;
  bool failure_armed_ = false;
  std::uint64_t next_failure_at_ = 0;
  std::vector<Repair> in_service_;
  std::vector<ProcessId> queue_;
};

/// Build the model selected by `params`.  `seed` is the simulation seed
/// (models derive their own tagged child streams); the geometric rate
/// parameters feed the geometric, sleepy, and repairable event clocks.
/// Throws DecodeError for a malformed trace before any simulation state
/// exists.
std::unique_ptr<FaultModel> make_fault_model(
    const FaultModelParams& params, std::uint64_t seed,
    double mean_rounds_between_changes, double crash_fraction,
    std::size_t processes);

}  // namespace dynvote
