// Experiment cases and sweeps (thesis §4).
//
// A case is (algorithm, process count, #changes, rate, mode); each case is
// simulated in `runs` runs (the thesis used 1000).  Seeding is a pure
// function of the case coordinates and the run index -- never of the
// algorithm -- so every algorithm is tested against the identical random
// sequence, exactly as the thesis did.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/fault_model.hpp"
#include "sim/stats.hpp"

namespace dynvote {

struct BatchTelemetry;

enum class RunMode {
  /// Each run begins brand-new in the original state (Figures 4-1..4-3).
  kFreshStart,
  /// Each run begins where the previous one ended (Figures 4-4..4-6).
  kCascading,
};

const char* to_string(RunMode mode);

struct CaseSpec {
  AlgorithmKind algorithm = AlgorithmKind::kYkd;
  /// When set, overrides `algorithm` (custom options / plugged-in
  /// algorithms); the seeding discipline is unaffected.
  Gcs::AlgorithmFactory algorithm_factory;
  std::size_t processes = 64;
  std::size_t changes = 6;
  double mean_rounds = 4.0;
  /// Extension: fraction of faults that are crashes/recoveries (§5.1).
  double crash_fraction = 0.0;
  /// Which fault model drives the runs (geometric = the thesis's regime).
  /// Non-geometric cases are labeled and fingerprinted with the model name
  /// and parameters, so their manifests never collide with geometric ones.
  FaultModelParams fault_model;
  std::uint64_t runs = 1000;
  RunMode mode = RunMode::kFreshStart;
  std::uint64_t base_seed = 0x5eedu;
  bool measure_wire_sizes = false;
  bool check_invariants = true;
};

/// Simulate one case and aggregate the results.
CaseResult run_case(const CaseSpec& spec);

/// Simulate the contiguous run-index range [first_run, first_run + count)
/// of a *fresh-start* case.  Seeding is a pure function of the case
/// coordinates and the absolute run index, so shards are independent and
/// `CaseResult::merge`-ing them in index order is bit-identical to the
/// serial `run_case` -- this is the unit the parallel sweep runner fans
/// out.  `spec.runs` is ignored in favor of the explicit range.
///
/// DV_BATCH (default 8) selects the engine: width 1 is the legacy
/// one-run-at-a-time event loop; width K > 1 advances K runs in lockstep
/// through the batched engine (sim/batch_driver.hpp) with prefix sharing
/// and quiet-gap fast-forwarding.  The returned CaseResult is bit-identical
/// either way.  When `telemetry` is non-null the shard's BatchTelemetry is
/// merged into it (volatile: never part of the results).
CaseResult run_case_shard(const CaseSpec& spec, std::uint64_t first_run,
                          std::uint64_t count,
                          BatchTelemetry* telemetry = nullptr);

/// A resumption point inside a cascading case: the simulation state after
/// runs [0, first_run) completed, as versioned snapshot bytes
/// (sim/snapshot.hpp).  first_run == 0 with empty bytes means "start
/// fresh".
struct CascadeCheckpoint {
  std::uint64_t first_run = 0;
  std::vector<std::byte> bytes;
};

/// Scout pass over a cascading case: replay runs [0, max(boundaries))
/// with invariant checking and wire measurement forced OFF -- neither flag
/// affects the trajectory, so the replay is cheap and reaches the same
/// states -- and emit a snapshot at each requested run boundary.
/// `boundaries` must be strictly increasing, non-empty, and start above 0.
/// The returned checkpoints restore into fully-instrumented simulations
/// (the snapshot envelope's config hash deliberately excludes the
/// observability flags), which is what lets one cascading case's runs be
/// re-simulated in parallel shards with full checking.
std::vector<CascadeCheckpoint> scout_cascading_case(
    const CaseSpec& spec, const std::vector<std::uint64_t>& boundaries);

/// Simulate the contiguous run range [checkpoint.first_run,
/// checkpoint.first_run + count) of a *cascading* case, restoring the
/// world from the checkpoint first.  Counter deltas are taken against the
/// restored cumulative values, so merging shard results in run order is
/// bit-identical to the serial `run_case`.  `spec.runs` is ignored in
/// favor of the explicit range.
CaseResult run_cascading_shard(const CaseSpec& spec,
                               const CascadeCheckpoint& checkpoint,
                               std::uint64_t count);

/// The x-axis of the availability figures: mean message rounds between
/// connectivity changes, 0 through 12.
std::vector<double> standard_rate_sweep();

/// The change counts of the figures: {2, 6, 12}.
std::vector<std::size_t> standard_change_counts();

/// Runs per case: DV_RUNS from the environment, else `fallback`.
std::uint64_t runs_from_env(std::uint64_t fallback);

/// Base seed: DV_SEED from the environment, else `fallback`.
std::uint64_t seed_from_env(std::uint64_t fallback);

}  // namespace dynvote
