#include "sim/fault_model.hpp"

#include <algorithm>
#include <array>
#include <limits>

#include "sim/trace_model.hpp"
#include "util/assert.hpp"
#include "util/codec.hpp"

namespace dynvote {

const char* to_string(FaultModelKind kind) {
  switch (kind) {
    case FaultModelKind::kGeometric: return "geometric";
    case FaultModelKind::kSleepy: return "sleepy";
    case FaultModelKind::kRepairable: return "repairable";
    case FaultModelKind::kTrace: return "trace";
  }
  return "unknown";
}

std::optional<FaultModelKind> fault_model_kind_from_string(
    std::string_view name) {
  if (name == "geometric") return FaultModelKind::kGeometric;
  if (name == "sleepy") return FaultModelKind::kSleepy;
  if (name == "repairable") return FaultModelKind::kRepairable;
  if (name == "trace") return FaultModelKind::kTrace;
  return std::nullopt;
}

// ---------------------------------------------------------------- geometric

GeometricFaultModel::GeometricFaultModel(std::uint64_t seed,
                                         double mean_rounds_between_changes,
                                         double crash_fraction)
    : scheduler_(seed, mean_rounds_between_changes, crash_fraction) {}

void GeometricFaultModel::apply_next(Gcs& gcs) {
  const ConnectivityChange change =
      scheduler_.next_change(gcs.topology(), gcs.crashed());
  switch (change.kind) {
    case ConnectivityChange::Kind::kPartition:
      gcs.apply_partition(change.component_a, change.moved);
      break;
    case ConnectivityChange::Kind::kMerge:
      gcs.apply_merge(change.component_a, change.component_b);
      break;
    case ConnectivityChange::Kind::kCrash:
      gcs.apply_crash(change.process);
      break;
    case ConnectivityChange::Kind::kRecovery:
      gcs.apply_recovery(change.process);
      break;
  }
}

// ------------------------------------------------------------------- sleepy

SleepyFaultModel::SleepyFaultModel(std::uint64_t seed,
                                   double mean_rounds_between_changes,
                                   double wake_bias)
    : rng_(child_seed(seed, kSleepyStreamTag)),
      p_(1.0 / (mean_rounds_between_changes + 1.0)),
      wake_bias_(wake_bias) {
  DV_REQUIRE(mean_rounds_between_changes >= 0.0,
             "mean rounds between changes must be non-negative");
  DV_REQUIRE(wake_bias >= 0.0 && wake_bias <= 1.0,
             "wake bias must be within [0,1]");
}

std::size_t SleepyFaultModel::next_gap() {
  std::size_t gap = 0;
  while (!rng_.chance(p_)) ++gap;
  return gap;
}

void SleepyFaultModel::apply_next(Gcs& gcs) {
  // The GCS's crash set is the sleeper set; the model keeps no copy, so a
  // snapshot of the GCS is a snapshot of who sleeps.
  const ProcessSet& asleep = gcs.crashed();
  const std::size_t universe = gcs.process_count();
  const std::size_t awake = universe - asleep.count();
  const bool can_sleep = awake >= 2;  // never put the last process to sleep
  const bool can_wake = !asleep.empty();
  DV_REQUIRE(can_sleep || can_wake, "no feasible sleepy event");

  const bool wake = can_wake && (!can_sleep || rng_.chance(wake_bias_));
  if (wake) {
    const std::vector<ProcessId> sleepers = asleep.members();
    const ProcessId p = sleepers[rng_.below(sleepers.size())];
    // The awake processes always form one component under this model; join
    // it via the component of the lowest awake process.
    ProcessId into = kInvalidProcess;
    for (ProcessId q = 0; q < universe; ++q) {
      if (!asleep.contains(q)) {
        into = q;
        break;
      }
    }
    gcs.apply_wake(p, into);
  } else {
    std::vector<ProcessId> candidates;
    candidates.reserve(awake);
    for (ProcessId q = 0; q < universe; ++q) {
      if (!asleep.contains(q)) candidates.push_back(q);
    }
    gcs.apply_sleep(candidates[rng_.below(candidates.size())]);
  }
}

void SleepyFaultModel::save(Encoder& enc) const {
  for (std::uint64_t word : rng_.state()) enc.put_u64_fixed(word);
}

void SleepyFaultModel::load(Decoder& dec) {
  std::array<std::uint64_t, 4> state;
  for (std::uint64_t& word : state) word = dec.get_u64_fixed();
  rng_.set_state(state);
}

// --------------------------------------------------------------- repairable

RepairableFaultModel::RepairableFaultModel(std::uint64_t seed,
                                           std::size_t processes,
                                           double mean_rounds_between_changes,
                                           std::uint64_t repair_capacity,
                                           double repair_mean_rounds)
    : rng_(child_seed(seed, kRepairStreamTag)),
      processes_(processes),
      fail_p_(1.0 / (mean_rounds_between_changes + 1.0)),
      service_p_(1.0 / (repair_mean_rounds + 1.0)),
      capacity_(repair_capacity) {
  DV_REQUIRE(processes >= 2, "the repair model needs at least two processes");
  DV_REQUIRE(mean_rounds_between_changes >= 0.0,
             "mean rounds between changes must be non-negative");
  DV_REQUIRE(repair_capacity >= 1, "the repair shop needs at least one server");
  DV_REQUIRE(repair_mean_rounds >= 0.0,
             "mean repair rounds must be non-negative");
}

std::uint64_t RepairableFaultModel::draw_geometric(double p) {
  std::uint64_t gap = 0;
  while (!rng_.chance(p)) ++gap;
  return gap;
}

void RepairableFaultModel::arm_failure() {
  // Never crash the last live process; the next event is then necessarily
  // a repair completion, which re-arms failures.
  if (failure_armed_ || live_count() < 2) return;
  next_failure_at_ = clock_ + draw_geometric(fail_p_);
  failure_armed_ = true;
}

const RepairableFaultModel::Repair* RepairableFaultModel::next_repair() const {
  const Repair* best = nullptr;
  for (const Repair& repair : in_service_) {
    if (best == nullptr || repair.done_at < best->done_at ||
        (repair.done_at == best->done_at && repair.process < best->process)) {
      best = &repair;
    }
  }
  return best;
}

std::size_t RepairableFaultModel::next_gap() {
  arm_failure();
  const Repair* repair = next_repair();
  DV_REQUIRE(failure_armed_ || repair != nullptr,
             "repairable model has no pending event");
  std::uint64_t due = failure_armed_ ? next_failure_at_
                                     : std::numeric_limits<std::uint64_t>::max();
  if (repair != nullptr) due = std::min(due, repair->done_at);
  return static_cast<std::size_t>(due - clock_);
}

void RepairableFaultModel::apply_next(Gcs& gcs) {
  arm_failure();
  const Repair* repair = next_repair();
  // Ties go to the repair: a process coming back cannot be pre-empted by
  // the failure that shares its due time.
  const bool repair_due = repair != nullptr &&
                          (!failure_armed_ || repair->done_at <= next_failure_at_);
  if (repair_due) {
    const Repair done = *repair;
    clock_ = done.done_at;
    in_service_.erase(std::find_if(
        in_service_.begin(), in_service_.end(),
        [&](const Repair& r) { return r.process == done.process; }));
    // Rejoin the live component (lowest live process names it).
    ProcessId into = kInvalidProcess;
    for (ProcessId q = 0; q < processes_; ++q) {
      if (!gcs.crashed().contains(q)) {
        into = q;
        break;
      }
    }
    gcs.apply_wake(done.process, into);
    if (!queue_.empty()) {
      const ProcessId next = queue_.front();
      queue_.erase(queue_.begin());
      in_service_.push_back(
          Repair{next, clock_ + 1 + draw_geometric(service_p_)});
    }
  } else {
    DV_REQUIRE(failure_armed_, "repairable model has no pending event");
    clock_ = next_failure_at_;
    failure_armed_ = false;
    std::vector<ProcessId> live;
    live.reserve(static_cast<std::size_t>(live_count()));
    for (ProcessId q = 0; q < processes_; ++q) {
      if (!gcs.crashed().contains(q)) live.push_back(q);
    }
    const ProcessId victim = live[rng_.below(live.size())];
    gcs.apply_crash(victim);
    if (in_service_.size() < capacity_) {
      in_service_.push_back(
          Repair{victim, clock_ + 1 + draw_geometric(service_p_)});
    } else {
      queue_.push_back(victim);
    }
  }
}

void RepairableFaultModel::save(Encoder& enc) const {
  for (std::uint64_t word : rng_.state()) enc.put_u64_fixed(word);
  enc.put_varint(clock_);
  enc.put_bool(failure_armed_);
  enc.put_varint(next_failure_at_);
  enc.put_varint(in_service_.size());
  for (const Repair& repair : in_service_) {
    enc.put_varint(repair.process);
    enc.put_varint(repair.done_at);
  }
  enc.put_varint(queue_.size());
  for (ProcessId p : queue_) enc.put_varint(p);
}

void RepairableFaultModel::load(Decoder& dec) {
  std::array<std::uint64_t, 4> state;
  for (std::uint64_t& word : state) word = dec.get_u64_fixed();
  rng_.set_state(state);
  clock_ = dec.get_varint();
  failure_armed_ = dec.get_bool();
  next_failure_at_ = dec.get_varint();

  const std::uint64_t serviced = dec.get_varint();
  if (serviced > capacity_ || serviced > processes_ ||
      serviced > dec.remaining()) {
    throw DecodeError("repair snapshot exceeds the shop capacity");
  }
  in_service_.clear();
  in_service_.reserve(static_cast<std::size_t>(serviced));
  for (std::uint64_t i = 0; i < serviced; ++i) {
    Repair repair;
    repair.process = static_cast<ProcessId>(dec.get_varint());
    repair.done_at = dec.get_varint();
    if (repair.process >= processes_) {
      throw DecodeError("repair snapshot names a process out of range");
    }
    in_service_.push_back(repair);
  }
  const std::uint64_t queued = dec.get_varint();
  if (serviced + queued > processes_ || queued > dec.remaining()) {
    throw DecodeError("repair snapshot holds more processes than exist");
  }
  queue_.clear();
  queue_.reserve(static_cast<std::size_t>(queued));
  for (std::uint64_t i = 0; i < queued; ++i) {
    const ProcessId p = static_cast<ProcessId>(dec.get_varint());
    if (p >= processes_) {
      throw DecodeError("repair snapshot names a process out of range");
    }
    queue_.push_back(p);
  }
}

// ------------------------------------------------------------------ factory

std::unique_ptr<FaultModel> make_fault_model(
    const FaultModelParams& params, std::uint64_t seed,
    double mean_rounds_between_changes, double crash_fraction,
    std::size_t processes) {
  switch (params.kind) {
    case FaultModelKind::kGeometric:
      return std::make_unique<GeometricFaultModel>(
          seed, mean_rounds_between_changes, crash_fraction);
    case FaultModelKind::kSleepy:
      return std::make_unique<SleepyFaultModel>(
          seed, mean_rounds_between_changes, params.wake_bias);
    case FaultModelKind::kRepairable:
      return std::make_unique<RepairableFaultModel>(
          seed, processes, mean_rounds_between_changes,
          params.repair_capacity, params.repair_mean_rounds);
    case FaultModelKind::kTrace:
      return std::make_unique<TraceFaultModel>(params.trace_json, processes);
  }
  DV_REQUIRE(false, "bad FaultModelKind");
  return nullptr;
}

}  // namespace dynvote
