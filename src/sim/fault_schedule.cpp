#include "sim/fault_schedule.hpp"

#include <array>
#include <vector>

#include "util/assert.hpp"
#include "util/codec.hpp"

namespace dynvote {

FaultScheduler::FaultScheduler(std::uint64_t seed,
                               double mean_rounds_between_changes,
                               double crash_fraction)
    // dvlint: raw-seed(retagging would shift the pinned geometric baselines)
    : rng_(seed),
      p_(1.0 / (mean_rounds_between_changes + 1.0)),
      crash_fraction_(crash_fraction) {
  DV_REQUIRE(mean_rounds_between_changes >= 0.0,
             "mean rounds between changes must be non-negative");
  DV_REQUIRE(crash_fraction >= 0.0 && crash_fraction <= 1.0,
             "crash fraction must be within [0,1]");
}

void FaultScheduler::save(Encoder& enc) const {
  for (std::uint64_t word : rng_.state()) enc.put_u64_fixed(word);
}

void FaultScheduler::load(Decoder& dec) {
  std::array<std::uint64_t, 4> state;
  for (std::uint64_t& word : state) word = dec.get_u64_fixed();
  rng_.set_state(state);
}

std::size_t FaultScheduler::next_gap() {
  std::size_t gap = 0;
  while (!rng_.chance(p_)) ++gap;
  return gap;
}

ConnectivityChange FaultScheduler::next_change(const Topology& topology) {
  return next_change(topology, ProcessSet(topology.universe_size()));
}

ConnectivityChange FaultScheduler::next_change(const Topology& topology,
                                               const ProcessSet& crashed) {
  // The paper's model (crash_fraction == 0) must consume randomness
  // exactly as before, so the crash branch draws nothing in that case.
  if (crash_fraction_ > 0.0 && rng_.chance(crash_fraction_)) {
    const std::size_t alive =
        topology.universe_size() - crashed.count();
    const bool can_crash = alive >= 2;  // never kill the last process
    const bool can_recover = !crashed.empty();
    if (can_crash || can_recover) {
      const bool crash = can_crash && (!can_recover || rng_.chance(0.5));
      ConnectivityChange change;
      if (crash) {
        change.kind = ConnectivityChange::Kind::kCrash;
        // Uniform over alive processes.
        std::vector<ProcessId> candidates;
        candidates.reserve(alive);
        for (ProcessId p = 0; p < topology.universe_size(); ++p) {
          if (!crashed.contains(p)) candidates.push_back(p);
        }
        change.process = candidates[rng_.below(candidates.size())];
      } else {
        change.kind = ConnectivityChange::Kind::kRecovery;
        const std::vector<ProcessId> candidates = crashed.members();
        change.process = candidates[rng_.below(candidates.size())];
      }
      return change;
    }
    // No feasible process fault; fall through to a connectivity change.
  }
  return next_connectivity_change(topology, crashed);
}

ConnectivityChange FaultScheduler::next_connectivity_change(
    const Topology& topology, const ProcessSet& crashed) {
  // Crashed processes sit in singleton components that take no part in
  // connectivity changes.
  std::vector<std::size_t> splittable;
  std::vector<std::size_t> mergeable;
  for (std::size_t i = 0; i < topology.component_count(); ++i) {
    const ProcessSet& comp = topology.component(i);
    if (comp.is_subset_of(crashed)) continue;
    mergeable.push_back(i);
    if (comp.count() >= 2) splittable.push_back(i);
  }
  const bool can_partition = !splittable.empty();
  const bool can_merge = mergeable.size() >= 2;
  DV_REQUIRE(can_partition || can_merge,
             "no feasible connectivity change (single isolated process?)");

  ConnectivityChange change;
  const bool partition = can_partition && (!can_merge || rng_.chance(0.5));

  if (partition) {
    change.kind = ConnectivityChange::Kind::kPartition;
    change.component_a = splittable[rng_.below(splittable.size())];

    std::vector<ProcessId> members =
        topology.component(change.component_a).members();
    const std::size_t moved_count =
        static_cast<std::size_t>(rng_.between(1, members.size() - 1));
    // Partial Fisher-Yates: a uniform random subset of size moved_count.
    change.moved = ProcessSet(topology.universe_size());
    for (std::size_t i = 0; i < moved_count; ++i) {
      const std::size_t j = i + rng_.below(members.size() - i);
      std::swap(members[i], members[j]);
      change.moved.insert(members[i]);
    }
  } else {
    change.kind = ConnectivityChange::Kind::kMerge;
    const std::size_t a = rng_.below(mergeable.size());
    std::size_t b = rng_.below(mergeable.size() - 1);
    if (b >= a) ++b;
    change.component_a = mergeable[a];
    change.component_b = mergeable[b];
  }
  return change;
}

}  // namespace dynvote
