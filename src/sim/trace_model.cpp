#include "sim/trace_model.hpp"

#include <cmath>
#include <string>

#include "util/assert.hpp"
#include "util/codec.hpp"
#include "util/json.hpp"

namespace dynvote {

namespace {

[[noreturn]] void fail(const std::string& what) { throw DecodeError("trace: " + what); }

/// A JSON number that must be a non-negative integer <= `max`.
std::uint64_t require_uint(const JsonValue* v, const char* what,
                           std::uint64_t max) {
  if (v == nullptr || !v->is_number()) fail(std::string(what) + " must be a number");
  const double d = v->as_number();
  if (!(d >= 0) || d > static_cast<double>(max) || d != std::floor(d)) {
    fail(std::string(what) + " out of range");
  }
  return static_cast<std::uint64_t>(d);
}

ProcessId require_process(const JsonValue* v, const char* what,
                          std::size_t processes) {
  return static_cast<ProcessId>(require_uint(v, what, processes - 1));
}

/// Reject members outside the allowed set -- a typo'd key must not decode
/// as "field absent".
void require_only(const JsonValue& object,
                  std::initializer_list<std::string_view> allowed) {
  for (const auto& [key, value] : object.members()) {
    bool known = false;
    for (std::string_view name : allowed) known = known || key == name;
    if (!known) fail("unknown member \"" + key + "\"");
  }
}

}  // namespace

std::vector<TraceEvent> parse_trace(std::string_view json,
                                    std::size_t processes) {
  const std::optional<JsonValue> doc = json_parse(json);
  if (!doc.has_value()) fail("document is not valid JSON");
  if (!doc->is_object()) fail("document root must be an object");
  require_only(*doc, {"schema", "processes", "events"});

  const JsonValue* schema = doc->find("schema");
  if (schema == nullptr || !schema->is_string()) fail("missing schema string");
  if (schema->as_string() != kTraceSchema) {
    fail("schema \"" + schema->as_string() + "\" is not \"" +
         std::string(kTraceSchema) + "\"");
  }
  const std::uint64_t universe =
      require_uint(doc->find("processes"), "processes", 1u << 20);
  if (universe != processes) {
    fail("trace is for " + std::to_string(universe) +
         " processes, simulation has " + std::to_string(processes));
  }

  const JsonValue* events = doc->find("events");
  if (events == nullptr || !events->is_array()) fail("missing events array");

  std::vector<TraceEvent> out;
  out.reserve(events->items().size());
  for (const JsonValue& entry : events->items()) {
    if (!entry.is_object()) fail("event must be an object");
    TraceEvent ev;
    ev.at = require_uint(entry.find("at"), "event \"at\"",
                         std::uint64_t{1} << 62);
    if (!out.empty() && ev.at <= out.back().at) {
      fail("event timestamps must be strictly increasing");
    }
    const JsonValue* kind = entry.find("kind");
    if (kind == nullptr || !kind->is_string()) fail("missing event kind");
    const std::string& name = kind->as_string();
    if (name == "partition") {
      require_only(entry, {"at", "kind", "moved"});
      const JsonValue* moved = entry.find("moved");
      if (moved == nullptr || !moved->is_array() || moved->items().empty()) {
        fail("partition needs a non-empty \"moved\" array");
      }
      ev.kind = TraceEvent::Kind::kPartition;
      ev.moved = ProcessSet(processes);
      for (const JsonValue& item : moved->items()) {
        const ProcessId p = require_process(&item, "moved process", processes);
        if (ev.moved.contains(p)) fail("duplicate process in \"moved\"");
        ev.moved.insert(p);
      }
    } else if (name == "merge") {
      require_only(entry, {"at", "kind", "of"});
      const JsonValue* of = entry.find("of");
      if (of == nullptr || !of->is_array() || of->items().size() != 2) {
        fail("merge needs an \"of\" array of two processes");
      }
      ev.kind = TraceEvent::Kind::kMerge;
      ev.merge_a = require_process(&of->items()[0], "merge process", processes);
      ev.merge_b = require_process(&of->items()[1], "merge process", processes);
      if (ev.merge_a == ev.merge_b) fail("merge names the same process twice");
    } else if (name == "crash" || name == "recovery") {
      require_only(entry, {"at", "kind", "process"});
      ev.kind = name == "crash" ? TraceEvent::Kind::kCrash
                                : TraceEvent::Kind::kRecovery;
      ev.process = require_process(entry.find("process"), "process", processes);
    } else {
      fail("unknown event kind \"" + name + "\"");
    }
    out.push_back(std::move(ev));
  }
  return out;
}

std::string trace_to_json(const std::vector<TraceEvent>& events,
                          std::size_t processes) {
  JsonWriter json;
  json.begin_object();
  json.key("schema").value(kTraceSchema);
  json.key("processes").value(static_cast<std::uint64_t>(processes));
  json.key("events").begin_array();
  for (const TraceEvent& ev : events) {
    json.begin_object();
    json.key("at").value(ev.at);
    switch (ev.kind) {
      case TraceEvent::Kind::kPartition:
        json.key("kind").value("partition");
        json.key("moved").begin_array();
        ev.moved.for_each([&](ProcessId p) {
          json.value(static_cast<std::uint64_t>(p));
        });
        json.end_array();
        break;
      case TraceEvent::Kind::kMerge:
        json.key("kind").value("merge");
        json.key("of").begin_array();
        json.value(static_cast<std::uint64_t>(ev.merge_a));
        json.value(static_cast<std::uint64_t>(ev.merge_b));
        json.end_array();
        break;
      case TraceEvent::Kind::kCrash:
        json.key("kind").value("crash");
        json.key("process").value(static_cast<std::uint64_t>(ev.process));
        break;
      case TraceEvent::Kind::kRecovery:
        json.key("kind").value("recovery");
        json.key("process").value(static_cast<std::uint64_t>(ev.process));
        break;
    }
    json.end_object();
  }
  json.end_array();
  json.end_object();
  return json.str();
}

TraceFaultModel::TraceFaultModel(std::string_view trace_json,
                                 std::size_t processes)
    : events_(parse_trace(trace_json, processes)) {}

std::size_t TraceFaultModel::next_gap() {
  DV_REQUIRE(cursor_ < events_.size(), "trace schedule is exhausted");
  return static_cast<std::size_t>(events_[cursor_].at - clock_);
}

void TraceFaultModel::apply_next(Gcs& gcs) {
  DV_REQUIRE(cursor_ < events_.size(), "trace schedule is exhausted");
  const TraceEvent& ev = events_[cursor_];
  clock_ = ev.at;
  switch (ev.kind) {
    case TraceEvent::Kind::kPartition: {
      const std::size_t index = gcs.topology().component_of(ev.moved.lowest());
      const ProcessSet& component = gcs.topology().component(index);
      DV_REQUIRE(ev.moved.is_subset_of(component) &&
                     ev.moved.count() < component.count(),
                 "trace partition is infeasible in the current topology");
      gcs.apply_partition(index, ev.moved);
      break;
    }
    case TraceEvent::Kind::kMerge: {
      const std::size_t a = gcs.topology().component_of(ev.merge_a);
      const std::size_t b = gcs.topology().component_of(ev.merge_b);
      DV_REQUIRE(a != b, "trace merge names processes already connected");
      gcs.apply_merge(a, b);
      break;
    }
    case TraceEvent::Kind::kCrash:
      gcs.apply_crash(ev.process);
      break;
    case TraceEvent::Kind::kRecovery:
      gcs.apply_recovery(ev.process);
      break;
  }
  ++cursor_;
}

void TraceFaultModel::save(Encoder& enc) const {
  enc.put_varint(cursor_);
  enc.put_varint(clock_);
}

void TraceFaultModel::load(Decoder& dec) {
  const std::uint64_t cursor = dec.get_varint();
  if (cursor > events_.size()) {
    throw DecodeError("trace snapshot cursor is past the schedule");
  }
  cursor_ = static_cast<std::size_t>(cursor);
  clock_ = dec.get_varint();
}

}  // namespace dynvote
