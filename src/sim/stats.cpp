#include "sim/stats.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "util/codec.hpp"

namespace dynvote {

void AmbiguityHistogram::record(std::size_t count) {
  const std::size_t bucket = std::min<std::size_t>(count, kBuckets - 1);
  ++buckets[bucket];
  ++samples;
  max_observed = std::max(max_observed, count);
}

double AmbiguityHistogram::percent(std::size_t bucket) const {
  DV_REQUIRE(bucket < kBuckets, "bucket out of range");
  if (samples == 0) return 0.0;
  return 100.0 * static_cast<double>(buckets[bucket]) /
         static_cast<double>(samples);
}

double AmbiguityHistogram::percent_nonzero() const {
  if (samples == 0) return 0.0;
  return 100.0 * static_cast<double>(samples - buckets[0]) /
         static_cast<double>(samples);
}

void AmbiguityHistogram::merge(const AmbiguityHistogram& other) {
  for (std::size_t i = 0; i < kBuckets; ++i) buckets[i] += other.buckets[i];
  samples += other.samples;
  max_observed = std::max(max_observed, other.max_observed);
}

void AmbiguityHistogram::encode_body(Encoder& enc) const {
  for (std::uint64_t bucket : buckets) enc.put_varint(bucket);
  enc.put_varint(samples);
  enc.put_varint(max_observed);
}

void AmbiguityHistogram::decode_body(Decoder& dec) {
  for (std::uint64_t& bucket : buckets) bucket = dec.get_varint();
  samples = dec.get_varint();
  max_observed = static_cast<std::size_t>(dec.get_varint());
}

double CaseResult::availability_percent() const {
  if (runs == 0) return 0.0;
  return 100.0 * static_cast<double>(successes) / static_cast<double>(runs);
}

void CaseResult::record(const RunResult& run) {
  ++runs;
  if (run.primary_at_end) ++successes;
  success_per_run.push_back(run.primary_at_end);
  stable.record(run.observer_ambiguous_at_end);
  for (std::size_t count : run.observer_ambiguous_at_changes) {
    in_progress.record(count);
  }
  total_rounds += run.rounds_executed;
  total_changes += run.changes_applied;
  total_rounds_with_primary += run.rounds_with_primary;
}

void CaseResult::merge(const CaseResult& shard) {
  runs += shard.runs;
  successes += shard.successes;
  success_per_run.insert(success_per_run.end(), shard.success_per_run.begin(),
                         shard.success_per_run.end());
  stable.merge(shard.stable);
  in_progress.merge(shard.in_progress);
  total_rounds += shard.total_rounds;
  total_changes += shard.total_changes;
  total_rounds_with_primary += shard.total_rounds_with_primary;
  wire.merge(shard.wire);
  invariant_checks += shard.invariant_checks;
  total_deliveries += shard.total_deliveries;
}

void CaseResult::encode_body(Encoder& enc) const {
  enc.put_varint(runs);
  enc.put_varint(successes);
  // Per-run outcome bits, packed eight to a byte, LSB first.
  enc.put_varint(success_per_run.size());
  std::uint8_t acc = 0;
  int filled = 0;
  for (const bool success : success_per_run) {
    if (success) acc = static_cast<std::uint8_t>(acc | (1u << filled));
    if (++filled == 8) {
      enc.put_u8(acc);
      acc = 0;
      filled = 0;
    }
  }
  if (filled != 0) enc.put_u8(acc);
  stable.encode_body(enc);
  in_progress.encode_body(enc);
  enc.put_varint(total_rounds);
  enc.put_varint(total_changes);
  enc.put_varint(total_rounds_with_primary);
  wire.encode_body(enc);
  enc.put_varint(invariant_checks);
  enc.put_varint(total_deliveries);
}

void CaseResult::decode_body(Decoder& dec) {
  runs = dec.get_varint();
  successes = dec.get_varint();
  const std::uint64_t outcomes = dec.get_varint();
  // One bit per run: anything beyond a billion runs in one shard result is
  // a corrupt frame, not a sweep this simulator could have produced.  The
  // count must also be backed by the bytes actually present (eight
  // outcomes per byte), so a tiny hostile frame claiming a huge count
  // fails here, before the reserve commits the allocation.
  if (outcomes > (std::uint64_t{1} << 30) ||
      (outcomes + 7) / 8 > dec.remaining()) {
    throw DecodeError("implausible per-run outcome count " +
                      std::to_string(outcomes));
  }
  success_per_run.clear();
  success_per_run.reserve(static_cast<std::size_t>(outcomes));
  std::uint8_t acc = 0;
  for (std::uint64_t i = 0; i < outcomes; ++i) {
    if (i % 8 == 0) acc = dec.get_u8();
    success_per_run.push_back(((acc >> (i % 8)) & 1u) != 0);
  }
  stable.decode_body(dec);
  in_progress.decode_body(dec);
  total_rounds = dec.get_varint();
  total_changes = dec.get_varint();
  total_rounds_with_primary = dec.get_varint();
  wire.decode_body(dec);
  invariant_checks = dec.get_varint();
  total_deliveries = dec.get_varint();
}

double CaseResult::in_run_availability_percent() const {
  if (total_rounds == 0) return 0.0;
  return 100.0 * static_cast<double>(total_rounds_with_primary) /
         static_cast<double>(total_rounds);
}

double percent_a_wins(const CaseResult& a, const CaseResult& b) {
  DV_REQUIRE(a.success_per_run.size() == b.success_per_run.size(),
             "paired comparison requires equal run counts");
  if (a.success_per_run.empty()) return 0.0;
  std::uint64_t wins = 0;
  for (std::size_t i = 0; i < a.success_per_run.size(); ++i) {
    if (a.success_per_run[i] && !b.success_per_run[i]) ++wins;
  }
  return 100.0 * static_cast<double>(wins) /
         static_cast<double>(a.success_per_run.size());
}

}  // namespace dynvote
