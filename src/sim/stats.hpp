// Aggregation of run results into the statistics the figures report.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "sim/driver.hpp"

namespace dynvote {

class Encoder;
class Decoder;

/// Histogram over ambiguous-session counts with the bucketing of
/// Figures 4-7/4-8: 0, 1, 2, 3, and "4+".
struct AmbiguityHistogram {
  static constexpr std::size_t kBuckets = 5;

  std::array<std::uint64_t, kBuckets> buckets{};
  std::uint64_t samples = 0;
  std::size_t max_observed = 0;

  void record(std::size_t count);

  /// Percent of samples that fell into `bucket` (4 = "4 or more").
  double percent(std::size_t bucket) const;

  /// Percent of samples with at least one ambiguous session -- the total
  /// bar height in the thesis's figures.
  double percent_nonzero() const;

  void merge(const AmbiguityHistogram& other);

  /// Lossless wire form (util/codec.hpp) for fabric result frames.
  void encode_body(Encoder& enc) const;
  void decode_body(Decoder& dec);
};

/// Everything measured for one case (algorithm x #changes x rate x mode).
struct CaseResult {
  std::uint64_t runs = 0;
  std::uint64_t successes = 0;
  /// Per-run outcomes, for paired comparisons between algorithms run on the
  /// identical fault schedule (e.g. the thesis's "YKD succeeds in ~3% of
  /// runs where DFLS does not").
  std::vector<bool> success_per_run;
  /// Observer's ambiguous sessions at the stable end of each run (Fig 4-7).
  AmbiguityHistogram stable;
  /// Observer's ambiguous sessions at each injected change (Fig 4-8).
  AmbiguityHistogram in_progress;
  std::uint64_t total_rounds = 0;
  std::uint64_t total_changes = 0;
  std::uint64_t total_rounds_with_primary = 0;
  /// Wire-level totals across all runs (populated when the case was run
  /// with `measure_wire_sizes`); aggregated per run in both modes.
  WireStats wire;
  /// Safety-checker executions across all runs (observability: confirms
  /// the invariant checker actually ran, and how hard).
  std::uint64_t invariant_checks = 0;
  /// (message, recipient) deliveries across all runs -- the denominator-free
  /// half of the deliveries/sec throughput telemetry in sweep manifests.
  std::uint64_t total_deliveries = 0;

  double availability_percent() const;

  /// Percent of executed rounds during which a primary existed -- the
  /// in-run availability measure.
  double in_run_availability_percent() const;

  void record(const RunResult& run);

  /// Append `shard`, the aggregate of the runs immediately following this
  /// result's runs within the same case.  Because every per-case statistic
  /// is an order-respecting concatenation, a sum, or a max, merging
  /// contiguous shards in run order is bit-identical to recording every
  /// run serially -- the property the parallel sweep runner relies on.
  void merge(const CaseResult& shard);

  /// Lossless wire form (util/codec.hpp): the payload of a fabric result
  /// frame.  Round-trips every field exactly, so a shard computed on a
  /// remote worker merges bit-identically to one computed in-process
  /// (fabric_test asserts this end to end).
  void encode_body(Encoder& enc) const;
  void decode_body(Decoder& dec);
};

/// Percent of runs where `a` succeeded and `b` failed, over paired runs.
double percent_a_wins(const CaseResult& a, const CaseResult& b);

}  // namespace dynvote
