#include "sim/batch_driver.hpp"

#include <map>
#include <utility>
#include <vector>

#include "core/process_set_batch.hpp"
#include "util/assert.hpp"

namespace dynvote {

namespace {

/// Events granted to each lane per scheduler pass.  Small enough that the
/// lanes stay within a few faults of each other (lockstep), large enough
/// that the per-call overhead of run_events stays negligible.
constexpr std::size_t kEventsPerSlice = 8;

}  // namespace

BatchTelemetry BatchDriver::run(std::uint64_t first_run,
                                std::uint64_t run_count, std::size_t width,
                                const PrefixCache& prefix,
                                const MakeSimulation& make_simulation,
                                const RetireRun& retire) {
  DV_REQUIRE(width >= 1, "batch width must be at least 1");
  BatchTelemetry telemetry;
  telemetry.batch_width = width;
  if (run_count == 0) return telemetry;

  struct Lane {
    std::uint64_t run_index = 0;
    std::unique_ptr<Simulation> sim;
  };

  const std::uint64_t end_run = first_run + run_count;
  std::uint64_t next_run = first_run;
  std::uint64_t next_retire = first_run;

  // Completed runs parked until every earlier run has retired.  Lanes run
  // within a few events of each other, so the buffer stays near `width`.
  std::map<std::uint64_t, RunRecord> parked;

  // The batched end-state statistic: stable-end observer components
  // accumulate into SoA lanes and are counted `width` bitmaps at a time.
  ProcessSetBatch end_components;
  std::vector<std::size_t> end_counts(width, 0);
  std::size_t pending_components = 0;
  const auto flush_components = [&] {
    if (pending_components == 0) return;
    end_components.counts(end_counts.data());
    for (std::size_t i = 0; i < pending_components; ++i) {
      telemetry.end_component_members += end_counts[i];
    }
    pending_components = 0;
  };

  const auto start_lane = [&](Lane& lane) {
    lane.run_index = next_run++;
    lane.sim = make_simulation(lane.run_index);
    const std::size_t adopted = lane.sim->begin_run_with_prefix(prefix);
    if (adopted > 0) {
      ++telemetry.prefix_hits;
      telemetry.prefix_rounds_adopted += adopted;
    } else {
      ++telemetry.prefix_misses;
    }
  };

  const auto finish_lane = [&](Lane& lane, RunResult&& result) {
    RunRecord record;
    record.run_index = lane.run_index;
    record.result = std::move(result);
    record.wire = lane.sim->gcs().wire_stats();
    record.invariant_checks = lane.sim->invariant_checks();
    record.deliveries = lane.sim->gcs().deliveries();
    telemetry.ff_rounds_skipped += lane.sim->fast_forwarded_rounds();
    ++telemetry.runs;

    const Gcs& gcs = lane.sim->gcs();
    if (end_components.lanes() != width) {
      end_components.reset(gcs.process_count(), width);
    }
    const Topology& topology = gcs.topology();
    const ProcessId observer = lane.sim->config().observer;
    end_components.set_lane(pending_components,
                            topology.component(topology.component_of(observer)));
    if (++pending_components == width) flush_components();

    parked.emplace(record.run_index, std::move(record));
  };

  std::vector<Lane> lanes;
  lanes.reserve(width);
  while (lanes.size() < width && next_run < end_run) {
    lanes.emplace_back();
    start_lane(lanes.back());
  }

  while (!lanes.empty()) {
    for (std::size_t i = 0; i < lanes.size();) {
      std::optional<RunResult> result =
          lanes[i].sim->run_events(kEventsPerSlice);
      if (!result) {
        ++i;
        continue;
      }
      finish_lane(lanes[i], *std::move(result));
      if (next_run < end_run) {
        start_lane(lanes[i]);
        ++i;
      } else {
        lanes.erase(lanes.begin() + static_cast<std::ptrdiff_t>(i));
      }
    }
    while (!parked.empty() && parked.begin()->first == next_retire) {
      retire(parked.begin()->second);
      parked.erase(parked.begin());
      ++next_retire;
    }
  }
  flush_components();
  DV_ASSERT(parked.empty() && next_retire == end_run);
  return telemetry;
}

}  // namespace dynvote
