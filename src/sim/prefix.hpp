// Shared fault-schedule prefix cache.
//
// Every run of a fresh-start case executes the same rounds before its first
// fault: those rounds draw no RNG at all (the delivery coin only flips when
// a partition catches messages in flight, and the fault stream's first draw
// is the gap length itself), so their trajectory is a pure function of the
// case configuration, never of the run seed.  PrefixCache simulates that
// shared trajectory ONCE per case and snapshots each round's state through
// the dynvote.snapshot.v2 component machinery (Gcs::save + checker save); a
// run whose first gap is g then forks from node min(g, depth) instead of
// re-simulating rounds 1..g.  The "tree" degenerates to a spine because all
// runs share one pre-fault history -- divergence begins at the first fault,
// which is exactly where adoption stops.
#pragma once

#include <cstddef>
#include <vector>

#include "sim/driver.hpp"
#include "util/assert.hpp"

namespace dynvote {

class PrefixCache {
 public:
  struct Node {
    /// Simulation::save_prefix_node bytes.  EMPTY when the state after this
    /// node's rounds is byte-identical to the fresh-start state (the common
    /// case: the genesis view is already installed and quiescent), in which
    /// case adoption skips the decode entirely and costs only arithmetic.
    std::vector<std::byte> bytes;
    /// Of rounds 1..r, how many had a primary component present.
    std::size_t rounds_with_primary = 0;
    /// Primary component present after round r.
    bool has_primary = false;
    /// Round r itself was active (false only for the final, quiescent
    /// node: quiescence ends the spine).
    bool last_round_active = false;
  };

  /// Build the spine for `config` by advancing one simulation round by
  /// round until the first quiet round (capped).  The spine simulation
  /// never draws from the fault or delivery streams, so the cache is valid
  /// for every run seed of the case.
  explicit PrefixCache(const SimulationConfig& config);

  /// Number of shared rounds cached: the first quiet round's index (or the
  /// cap, if the algorithms were still chattering when it was reached).
  std::size_t depth() const { return nodes_.size(); }

  /// Node for round r, 1 <= r <= depth().
  const Node& node(std::size_t r) const {
    DV_REQUIRE(r >= 1 && r <= nodes_.size(), "prefix node out of range");
    return nodes_[r - 1];
  }

 private:
  std::vector<Node> nodes_;
};

}  // namespace dynvote
