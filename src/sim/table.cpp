#include "sim/table.hpp"

#include <fstream>
#include <iomanip>
#include <sstream>

#include "util/assert.hpp"
#include "util/env.hpp"

namespace dynvote {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  DV_REQUIRE(cells.size() == headers_.size(),
             "row width differs from header width");
  rows_.push_back(std::move(cells));
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) widths[c] = std::max(widths[c], row[c].size());
  }

  const auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "| " : " | ") << std::setw(static_cast<int>(widths[c]))
         << cells[c];
    }
    os << " |\n";
  };

  std::size_t total = 1;
  for (std::size_t w : widths) total += w + 3;
  const std::string rule(total, '-');

  os << rule << '\n';
  print_row(headers_);
  os << rule << '\n';
  for (const auto& row : rows_) print_row(row);
  os << rule << '\n';
}

std::string TextTable::to_csv() const {
  std::ostringstream os;
  const auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c != 0) os << ',';
      os << cells[c];
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string format_double(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

bool maybe_write_csv(const std::string& name, const std::string& csv) {
  const auto dir = env_string("DV_CSV_DIR");
  if (!dir.has_value()) return false;
  const std::string path = *dir + "/" + name + ".csv";
  std::ofstream out(path);
  if (!out) return false;
  out << csv;
  return true;
}

}  // namespace dynvote
