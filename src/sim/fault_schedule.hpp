// Randomized fault injection (thesis §2.2).
//
// "The frequency of changes is specified as the mean number of message
// rounds which are successfully executed between two subsequent
// connectivity changes.  The mean is obtained using an appropriate uniform
// probability p, so that a connectivity change is injected at each step
// with probability p."  A mean of r rounds therefore uses p = 1/(r+1); the
// gap before each change is the geometric number of non-change steps.
//
// Each change is a partition or a merge with equal probability among the
// feasible options; the component to affect is uniform among eligible ones,
// and "partitions do not necessarily happen evenly -- the percentage of
// processes which are moved to the new component is determined at random
// each time."
//
// Crucially, the schedule consumes randomness only as a function of the
// seed and the topology trajectory -- which itself never depends on the
// algorithm under test -- so every algorithm sees the identical random
// sequence, as in the thesis.
#pragma once

#include <cstdint>

#include "core/process_set.hpp"
#include "gcs/topology.hpp"
#include "util/rng.hpp"

namespace dynvote {

class Encoder;
class Decoder;

struct ConnectivityChange {
  enum class Kind {
    kPartition,
    kMerge,
    /// Extension (thesis §5.1 future work): a process crash-stops.
    kCrash,
    /// Extension: a crashed process recovers with its state intact.
    kRecovery,
  };

  Kind kind = Kind::kPartition;
  /// Partition: index of the component to split.  Merge: first component.
  std::size_t component_a = 0;
  /// Merge: second component.  Unused otherwise.
  std::size_t component_b = 0;
  /// Partition: the processes that split away.  Unused otherwise.
  ProcessSet moved;
  /// Crash/recovery: the affected process.
  ProcessId process = kInvalidProcess;
};

class FaultScheduler {
 public:
  /// `mean_rounds_between_changes` >= 0; 0 means back-to-back changes.
  /// `crash_fraction` in [0,1]: fraction of injected faults that are
  /// process crashes/recoveries instead of connectivity changes (0, the
  /// default and the paper's model, draws no extra randomness, so legacy
  /// schedules are bit-identical).
  FaultScheduler(std::uint64_t seed, double mean_rounds_between_changes,
                 double crash_fraction = 0.0);

  /// Number of message rounds to run before injecting the next change.
  std::size_t next_gap();

  /// Draw the next feasible change for `topology`, where `crashed`
  /// processes sit in singleton components and are excluded from
  /// connectivity changes.  Requires at least one feasible change.
  ConnectivityChange next_change(const Topology& topology,
                                 const ProcessSet& crashed);

  /// Paper-model overload: nobody crashed.
  ConnectivityChange next_change(const Topology& topology);

  double change_probability() const { return p_; }

  /// Serialize the mutable state (just the RNG position; `p_` and
  /// `crash_fraction_` derive from the constructor arguments, which the
  /// snapshot envelope pins).
  void save(Encoder& enc) const;
  void load(Decoder& dec);

 private:
  ConnectivityChange next_connectivity_change(const Topology& topology,
                                              const ProcessSet& crashed);

  Rng rng_;
  double p_;               // dvlint: transient(derived from constructor args)
  double crash_fraction_;  // dvlint: transient(derived from constructor args)
};

}  // namespace dynvote
