// Trace replay: a recorded fault schedule driven through the simulator.
//
// The schedule is a JSON document ("dynvote.trace.v1") so real-world
// outage traces can be replayed through all six algorithms:
//
//   {
//     "schema": "dynvote.trace.v1",
//     "processes": 8,
//     "events": [
//       {"at": 3,  "kind": "partition", "moved": [2, 5]},
//       {"at": 9,  "kind": "merge",     "of": [0, 2]},
//       {"at": 14, "kind": "crash",     "process": 7},
//       {"at": 20, "kind": "recovery",  "process": 7}
//     ]
//   }
//
// `at` is the absolute injection-phase round count at which the event
// fires; timestamps must be strictly increasing.  Events address processes,
// never component indices (component numbering is an internal detail that
// shifts as the topology evolves): a partition splits the listed processes
// away from their current component, a merge unifies the components
// containing the two named processes.
//
// Decoding is strict in the util/codec tradition: a truncated document,
// out-of-order timestamps, an unknown event kind, a process id >= N, or any
// structural surprise throws DecodeError at model construction -- before
// any simulation state exists, let alone mutates.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "sim/fault_model.hpp"

namespace dynvote {

inline constexpr std::string_view kTraceSchema = "dynvote.trace.v1";

/// One decoded, validated schedule entry.
struct TraceEvent {
  enum class Kind : std::uint8_t {
    kPartition = 0,
    kMerge = 1,
    kCrash = 2,
    kRecovery = 3,
  };

  std::uint64_t at = 0;
  Kind kind = Kind::kPartition;
  /// Partition: the processes that split away.
  ProcessSet moved;
  /// Merge: processes naming the two components to unify.
  ProcessId merge_a = kInvalidProcess;
  ProcessId merge_b = kInvalidProcess;
  /// Crash/recovery: the affected process.
  ProcessId process = kInvalidProcess;
};

/// Parse and fully validate a dynvote.trace.v1 document for a universe of
/// `processes`.  Throws DecodeError on malformed JSON, a schema or universe
/// mismatch, out-of-order timestamps, unknown kinds, or out-of-range ids.
std::vector<TraceEvent> parse_trace(std::string_view json,
                                    std::size_t processes);

/// Replays a decoded trace.  Exhausts once every event has fired; the
/// driver then runs straight to stabilization.  Draws no randomness, so
/// its snapshot state is just the replay cursor.
class TraceFaultModel final : public FaultModel {
 public:
  /// Throws DecodeError (via parse_trace) before any state is built.
  TraceFaultModel(std::string_view trace_json, std::size_t processes);

  std::string_view name() const override { return "trace"; }
  std::size_t next_gap() override;
  void apply_next(Gcs& gcs) override;
  bool exhausted() const override { return cursor_ == events_.size(); }
  void save(Encoder& enc) const override;
  void load(Decoder& dec) override;

 private:
  std::vector<TraceEvent> events_;  // dvlint: transient(decoded constructor input)
  std::size_t cursor_ = 0;
  std::uint64_t clock_ = 0;
};

/// Render a schedule as a dynvote.trace.v1 document (the inverse of
/// parse_trace); the property harness uses this to synthesize feasible
/// random traces from recorded schedules.
std::string trace_to_json(const std::vector<TraceEvent>& events,
                          std::size_t processes);

}  // namespace dynvote
