// Versioned simulation snapshots.
//
// A snapshot captures the complete mutable state of a Simulation --
// algorithm instances, in-flight messages, topology, RNG positions, and
// mid-run progress -- behind a small self-describing envelope:
//
//   schema string   "dynvote.snapshot.v2"; any layout change bumps it, so
//                   stale snapshot bytes are rejected, never misread
//                   (v2: the fault-model blob replaced the bare geometric
//                   scheduler state, and the config hash covers the model
//                   selection + parameters);
//   algorithm id    the algorithm's name() string;
//   git describe    the producing build, informational only (a snapshot is
//                   portable across builds as long as schema + config
//                   match);
//   config hash     a fingerprint of every configuration field that shapes
//                   the simulation trajectory.  Observability toggles
//                   (check_invariants, measure_wire_sizes,
//                   serialize_on_wire) are deliberately EXCLUDED: they do
//                   not affect the trajectory, and the cascading-sweep
//                   pipeline relies on restoring a fast "scout" snapshot
//                   into a fully-instrumented simulation.
//
// restore_snapshot throws DecodeError on truncation, corruption, a schema
// mismatch, or a snapshot taken under a different trajectory config.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "sim/driver.hpp"

namespace dynvote {

inline constexpr std::string_view kSnapshotSchema = "dynvote.snapshot.v2";

/// Fingerprint of the trajectory-determining SimulationConfig fields
/// (processes, changes, rate, crash fraction, fault model + parameters,
/// seed, observer, stabilization budget) -- NOT the observability toggles.
std::uint64_t config_trajectory_hash(const SimulationConfig& config);

/// Serialize `sim` behind the versioned envelope.
std::vector<std::byte> save_snapshot(const Simulation& sim);

/// Restore `sim` from snapshot bytes.  `sim` must have been constructed
/// with a config whose trajectory hash and algorithm match the producer's;
/// anything else throws DecodeError.
void restore_snapshot(Simulation& sim, std::span<const std::byte> bytes);

}  // namespace dynvote
