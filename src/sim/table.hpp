// Fixed-width text tables and CSV output for the benchmark binaries.
//
// The thesis piped results through Perl and Matlab; our benches print the
// same rows directly (one table per figure), plus optional CSV for external
// plotting (set DV_CSV_DIR to a directory to enable).
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace dynvote {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Aligned, boxed-with-dashes rendering.
  void print(std::ostream& os) const;

  /// RFC-4180-ish CSV (no quoting needed for our cell contents).
  std::string to_csv() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// "97.3" style fixed-precision formatting.
std::string format_double(double value, int precision = 1);

/// Write `csv` to $DV_CSV_DIR/<name>.csv when DV_CSV_DIR is set; returns
/// whether a file was written.
bool maybe_write_csv(const std::string& name, const std::string& csv);

}  // namespace dynvote
