// The sweep fabric coordinator.
//
// Owns a sweep end to end: binds a TCP port, splits every case into work
// units up front (the same split policy for any worker population, since
// shard boundaries never affect merged results), leases units to workers
// that connect, and merges their shard results in run order -- producing
// the exact `results_fingerprint` a single-process `run_sweep` of the same
// spec produces.  Local executor threads share the unit pool with remote
// workers, so with no workers connected a coordinator behaves like a plain
// in-process sweep; with workers, placement is just scheduling.
//
// Robustness is first-class:
//  * every remote lease carries a deadline; a unit not returned in time is
//    re-issued to whoever asks next (the straggler's late result, should
//    it still arrive, is dropped idempotently by unit id);
//  * workers must heartbeat; a connection silent past the heartbeat
//    timeout -- or one that errors or closes mid-sweep -- is declared
//    dead and its leased units re-issued;
//  * duplicate results are safe by construction: shards are deterministic,
//    so the first accepted result for a unit id is as good as any other.
//
// Cascading cases are scouted by the coordinator's local executors (the
// scout snapshots then travel to workers inside lease frames); when the
// coordinator runs with zero local threads, cascading cases are dispatched
// as whole-case units instead.
#pragma once

#include <cstdint>
#include <memory>

#include "runner/sweep.hpp"

namespace dynvote::fabric {

struct CoordinatorOptions {
  /// TCP port to listen on; 0 picks an ephemeral port (read it back via
  /// Coordinator::port()).  The dvdispatch tool defaults this from
  /// DV_FABRIC_PORT.
  std::uint16_t port = 0;
  /// Executor threads on the coordinator itself.  kAutoLocalJobs resolves
  /// to the sweep's jobs setting (DV_JOBS fallback); 0 is honored and
  /// means "dispatch only" -- every unit then waits for a remote worker.
  static constexpr std::uint64_t kAutoLocalJobs = UINT64_MAX;
  std::uint64_t local_jobs = kAutoLocalJobs;
  /// Per-unit lease deadline; a unit outstanding longer is re-issued.
  /// 0 resolves from DV_LEASE_MS, falling back to 30000.
  std::uint64_t lease_ms = 0;
  /// Heartbeat cadence demanded of workers; a connection silent for five
  /// cadences is declared dead.
  std::uint64_t heartbeat_ms = 1000;
};

/// DV_LEASE_MS, else `fallback`; warns (and falls back) on out-of-range
/// or malformed values, like every DV_* knob.
std::uint64_t lease_ms_from_env(std::uint64_t fallback);

class Coordinator {
 public:
  /// Binds the listener (so `port()` is valid immediately) and prepares
  /// the unit tables.  Throws std::invalid_argument if any case carries a
  /// custom algorithm_factory -- those cannot travel -- and SocketError if
  /// the port cannot be bound.
  Coordinator(SweepSpec spec, CoordinatorOptions options);
  ~Coordinator();

  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  std::uint16_t port() const;

  /// Execute the sweep to completion: accept workers, lease units, run
  /// units locally, survive worker deaths, then drain, send shutdown to
  /// every live worker, and write the manifest (when the spec is named).
  /// Blocks; call once.
  SweepResult run();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace dynvote::fabric
