#include "fabric/worker.hpp"

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "fabric/socket.hpp"
#include "fabric/wire.hpp"
#include "obs/metrics.hpp"
#include "runner/artifact.hpp"
#include "runner/sweep.hpp"

namespace dynvote::fabric {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

enum class SessionEnd {
  kShutdown,  // coordinator said goodbye
  kDied,      // die_after_units fired
  kStopped,   // external stop flag
  kLost,      // transport failed after a completed handshake; reconnect
  kRejected,  // failed before the hello exchange completed; spend the
              // connect-attempt budget instead of retrying forever
};

/// State shared between the session's reader, executors, and heartbeat.
struct WorkerSession {
  Socket socket;
  std::mutex send_mutex;

  std::mutex mutex;
  std::condition_variable work;
  std::deque<LeaseFrame> leases;         // dvlint: guarded_by(mutex)
  std::vector<CaseDescriptor> cases;     // dvlint: guarded_by(mutex)
  std::size_t executing = 0;             // dvlint: guarded_by(mutex)
  std::uint64_t results_sent = 0;        // dvlint: guarded_by(mutex)
  double busy_seconds = 0.0;             // dvlint: guarded_by(mutex)
  bool ending = false;      // dvlint: guarded_by(mutex) -- exit flag
  bool dying = false;       // dvlint: guarded_by(mutex) -- die_after_units
  bool lost = false;        // dvlint: guarded_by(mutex) -- transport failed

  std::uint64_t inflight_locked() const {  // dvlint: requires_lock(mutex)
    return leases.size() + executing;
  }
};

/// Send one frame; on transport failure flag the session lost.
void send_or_lose(WorkerSession& session, const Frame& frame) {
  bool failed = false;
  {
    std::lock_guard<std::mutex> send_lock(session.send_mutex);
    try {
      session.socket.send_frame(encode_frame(frame));
    } catch (const SocketError&) {
      failed = true;
    }
  }
  if (failed) {
    std::lock_guard<std::mutex> lock(session.mutex);
    session.lost = true;
    session.ending = true;
    session.work.notify_all();
  }
}

void executor_loop(WorkerSession& session, const WorkerOptions& options) {
  std::unique_lock<std::mutex> lock(session.mutex);
  for (;;) {
    session.work.wait(lock, [&] {
      return session.ending || !session.leases.empty();
    });
    if (session.ending) return;
    LeaseFrame lease = std::move(session.leases.front());
    session.leases.pop_front();
    if (lease.case_index >= session.cases.size()) continue;  // corrupt id
    const CaseSpec spec = session.cases[lease.case_index].spec;
    ++session.executing;
    lock.unlock();

    const auto start = Clock::now();
    CaseResult shard = execute_unit(spec, lease);
    const double seconds = seconds_since(start);

    ResultFrame result;
    result.unit_id = lease.unit_id;
    result.compute_seconds = seconds;
    result.result = std::move(shard);
    send_or_lose(session, Frame{std::move(result)});

    lock.lock();
    --session.executing;
    session.busy_seconds += seconds;
    ++session.results_sent;
    if (options.die_after_units != 0 &&
        session.results_sent >= options.die_after_units) {
      session.dying = true;
      session.ending = true;
      session.work.notify_all();
      return;
    }
  }
}

void heartbeat_loop(WorkerSession& session, std::uint64_t heartbeat_ms) {
  for (;;) {
    HeartbeatFrame beat;
    {
      std::unique_lock<std::mutex> lock(session.mutex);
      session.work.wait_for(lock, std::chrono::milliseconds(heartbeat_ms),
                            [&] { return session.ending; });
      if (session.ending) return;
      beat.inflight = session.inflight_locked();
      beat.busy_seconds = session.busy_seconds;
    }
    // Cumulative process-wide metrics; the coordinator keeps the latest
    // snapshot per connection (v4+ peers only -- encode_frame drops the
    // field for older envelopes).  Taken outside the session lock.
    beat.metrics = obs::snapshot_metrics();
    send_or_lose(session, Frame{beat});
  }
}

SessionEnd run_session(Socket socket, const WorkerOptions& options,
                       std::uint64_t slots) {
  WorkerSession session;
  session.socket = std::move(socket);

  // Handshake: our capabilities out, the sweep's case table back.  Until
  // the coordinator's hello is accepted every failure is a rejection, not
  // a loss -- a schema-mismatched or misbehaving coordinator must drain
  // the connect-attempt budget, not trigger endless reconnects.
  bool handshake_done = false;
  HelloFrame hello;
  hello.coordinator = false;
  hello.build = artifact_git_describe();
  hello.slots = slots;
  try {
    {
      std::lock_guard<std::mutex> send_lock(session.send_mutex);
      session.socket.send_frame(encode_frame(Frame{hello}));
    }
    session.socket.set_recv_timeout_ms(10000);
    const auto reply_bytes = session.socket.recv_frame(kMaxFrameBytes);
    if (!reply_bytes.has_value()) return SessionEnd::kRejected;
    Frame reply = decode_frame(*reply_bytes);
    HelloFrame* coord = std::get_if<HelloFrame>(&reply);
    if (coord == nullptr || !coord->coordinator ||
        coord->schema != kFabricSchema) {
      return SessionEnd::kRejected;
    }
    handshake_done = true;
    {
      // No executor thread exists yet; locked so guarded-by stays honest.
      std::lock_guard<std::mutex> lock(session.mutex);
      session.cases = std::move(coord->cases);
    }
    const std::uint64_t heartbeat_ms =
        coord->heartbeat_ms != 0 ? coord->heartbeat_ms : 1000;

    // A short receive timeout keeps the reader responsive to stop/death
    // flags; a quiet coordinator is normal (no work yet), not a death.
    session.socket.set_recv_timeout_ms(1000);

    std::vector<std::thread> executors;
    executors.reserve(static_cast<std::size_t>(slots));
    for (std::uint64_t s = 0; s < slots; ++s) {
      executors.emplace_back([&session, &options] {
        executor_loop(session, options);
      });
    }
    std::thread heartbeat(
        [&session, heartbeat_ms] { heartbeat_loop(session, heartbeat_ms); });

    SessionEnd end = SessionEnd::kLost;
    bool reading = true;
    while (reading) {
      if (options.stop != nullptr && options.stop->load()) {
        end = SessionEnd::kStopped;
        break;
      }
      {
        std::lock_guard<std::mutex> lock(session.mutex);
        if (session.dying) {
          end = SessionEnd::kDied;
          break;
        }
        if (session.lost) {
          end = SessionEnd::kLost;
          break;
        }
      }
      try {
        const auto payload = session.socket.recv_frame(kMaxFrameBytes);
        if (!payload.has_value()) {
          end = SessionEnd::kLost;
          break;
        }
        Frame incoming = decode_frame(*payload);
        if (LeaseFrame* lease = std::get_if<LeaseFrame>(&incoming)) {
          std::lock_guard<std::mutex> lock(session.mutex);
          session.leases.push_back(std::move(*lease));
          session.work.notify_all();
        } else if (std::get_if<ShutdownFrame>(&incoming) != nullptr) {
          end = SessionEnd::kShutdown;
          break;
        } else {
          end = SessionEnd::kLost;  // protocol violation
          break;
        }
      } catch (const SocketTimeout&) {
        // No traffic lately.  If we are fully idle the coordinator may
        // have had nothing pending when it last topped us up -- ask.
        std::uint64_t idle_slots = 0;
        {
          std::lock_guard<std::mutex> lock(session.mutex);
          if (!session.ending && session.inflight_locked() == 0) {
            idle_slots = slots;
          }
        }
        if (idle_slots != 0) {
          StealFrame steal;
          steal.want = idle_slots;
          send_or_lose(session, Frame{steal});
        }
      } catch (const SocketError&) {
        end = SessionEnd::kLost;
        break;
      } catch (const DecodeError&) {
        end = SessionEnd::kLost;
        break;
      }
    }

    {
      std::lock_guard<std::mutex> lock(session.mutex);
      session.ending = true;
      session.work.notify_all();
    }
    for (std::thread& t : executors) t.join();
    heartbeat.join();

    if (end == SessionEnd::kDied) {
      // Play dead: keep the socket open but silent, so the coordinator's
      // only signal is heartbeat silence.  Wait for the test's stop flag
      // (or return immediately without one -- the closing socket then
      // reads as an abrupt disconnect instead).
      while (options.stop != nullptr && !options.stop->load()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
      }
    }
    return end;
  } catch (const SocketError&) {
    return handshake_done ? SessionEnd::kLost : SessionEnd::kRejected;
  } catch (const DecodeError&) {
    return handshake_done ? SessionEnd::kLost : SessionEnd::kRejected;
  }
}

/// Sliced backoff sleep so a stop flag is honored promptly even at the
/// cap; returns false when stopped.
bool backoff_sleep(const WorkerOptions& options, std::uint64_t backoff_ms) {
  std::uint64_t waited = 0;
  while (waited < backoff_ms) {
    if (options.stop != nullptr && options.stop->load()) return false;
    const std::uint64_t slice =
        std::min<std::uint64_t>(50, backoff_ms - waited);
    std::this_thread::sleep_for(std::chrono::milliseconds(slice));
    waited += slice;
  }
  return true;
}

}  // namespace

const char* to_string(WorkerExit exit_code) {
  switch (exit_code) {
    case WorkerExit::kShutdown: return "shutdown";
    case WorkerExit::kDied: return "died";
    case WorkerExit::kStopped: return "stopped";
    case WorkerExit::kConnectFailed: return "connect-failed";
  }
  return "unknown";
}

WorkerExit run_worker(const WorkerOptions& options) {
  const std::uint64_t slots =
      options.slots != 0 ? options.slots
                         : static_cast<std::uint64_t>(jobs_from_env());
  std::size_t attempts = 0;
  std::uint64_t backoff_ms = options.backoff_initial_ms;
  for (;;) {
    if (options.stop != nullptr && options.stop->load()) {
      return WorkerExit::kStopped;
    }
    Socket socket;
    bool connected = false;
    try {
      socket = connect_to(options.host, options.port);
      connected = true;
    } catch (const SocketError&) {
    }

    if (connected) {
      bool retry_session = false;
      switch (run_session(std::move(socket), options, slots)) {
        case SessionEnd::kShutdown: return WorkerExit::kShutdown;
        case SessionEnd::kDied: return WorkerExit::kDied;
        case SessionEnd::kStopped: return WorkerExit::kStopped;
        case SessionEnd::kLost:
          // Reconnect from a fresh budget; the handshake completed, so
          // the address and schema are right and the coordinator may
          // just be busy or restarting.
          attempts = 0;
          backoff_ms = options.backoff_initial_ms;
          retry_session = true;
          break;
        case SessionEnd::kRejected:
          // Pre-handshake failure: treated exactly like a refused
          // connection below, so an incompatible coordinator eventually
          // yields kConnectFailed instead of reconnecting forever.
          break;
      }
      if (retry_session) {
        if (!backoff_sleep(options, backoff_ms)) return WorkerExit::kStopped;
        continue;
      }
    }

    if (++attempts >= options.max_connect_attempts) {
      return WorkerExit::kConnectFailed;
    }
    if (!backoff_sleep(options, backoff_ms)) return WorkerExit::kStopped;
    backoff_ms = std::min(backoff_ms * 2, options.backoff_max_ms);
  }
}

}  // namespace dynvote::fabric
