// The sweep fabric worker.
//
// Connects to a coordinator (fabric/coordinator.hpp), announces its slot
// count, and executes leased work units on that many threads, streaming
// each unit's CaseResult back as it completes.  A heartbeat thread keeps
// the coordinator's death detector fed; when the worker sits idle it
// politely asks for work (steal frames) instead of busy-polling.
//
// A lost connection is retried with bounded exponential backoff -- the
// coordinator re-issues whatever the worker held, so reconnecting is
// always safe -- and a shutdown frame ends the process cleanly.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

namespace dynvote::fabric {

struct WorkerOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  /// Concurrent units this worker executes; 0 resolves to DV_JOBS
  /// (falling back to hardware concurrency).
  std::uint64_t slots = 0;
  /// Bounded reconnect policy: exponential backoff from
  /// `backoff_initial_ms` doubling to `backoff_max_ms`, giving up after
  /// `max_connect_attempts` consecutive failures.
  std::size_t max_connect_attempts = 20;
  std::uint64_t backoff_initial_ms = 250;
  std::uint64_t backoff_max_ms = 4000;
  /// Test hook: after sending this many results, fall silent -- stop
  /// heartbeating, reading, and executing, but keep the socket open -- so
  /// the coordinator can only detect the death through heartbeat silence
  /// and must re-issue whatever this worker still held.  0 = never.
  std::uint64_t die_after_units = 0;
  /// External stop flag, checked while backing off or playing dead; lets
  /// a test reap an in-process worker thread.  May be null.
  std::atomic<bool>* stop = nullptr;
};

enum class WorkerExit {
  /// Coordinator announced the sweep drained; clean goodbye.
  kShutdown,
  /// The die_after_units test hook fired.
  kDied,
  /// The external stop flag was raised.
  kStopped,
  /// Could not (re)connect -- or could not complete the handshake --
  /// within the attempt budget.
  kConnectFailed,
};

const char* to_string(WorkerExit exit_code);

/// Run the worker until shutdown, death, stop, or connection exhaustion.
WorkerExit run_worker(const WorkerOptions& options);

}  // namespace dynvote::fabric
