#include "fabric/coordinator.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>

#include "fabric/socket.hpp"
#include "fabric/wire.hpp"
#include "obs/metrics.hpp"
#include "runner/artifact.hpp"
#include "runner/progress.hpp"
#include "runner/sweep.hpp"
#include "util/env.hpp"

namespace dynvote::fabric {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Mirror of the in-process runner's auto shard floor: boundaries never
/// affect merged results, so agreement here is a scheduling nicety, not a
/// correctness requirement.
constexpr std::uint64_t kAutoShardFloor = 32;

std::uint64_t shard_size_for(std::uint64_t runs, std::size_t split_hint,
                             std::uint64_t min_shard_runs) {
  const std::uint64_t floor =
      min_shard_runs == 0 ? kAutoShardFloor : min_shard_runs;
  const std::uint64_t target =
      runs / (static_cast<std::uint64_t>(split_hint) * 4);
  return std::max(floor, target);
}

/// Holder ids at or above this are the coordinator's own executor
/// threads; below are remote connection ids.
constexpr std::size_t kLocalHolderBase = SIZE_MAX / 2;

constexpr std::size_t kNoHolder = SIZE_MAX;

/// A work unit in the coordinator's table.  The table is append-only (a
/// deque, so references stay stable) and a unit's id is its index.
struct Unit {
  enum class State { kPending, kLeased, kDone };

  std::size_t case_index = 0;
  /// Local-only: replay a cascading case emitting shard checkpoints.
  bool scout = false;
  /// Cascading shards: index into the case's checkpoint vector, or
  /// SIZE_MAX for "start from scratch".
  std::size_t checkpoint_index = SIZE_MAX;
  std::uint64_t first_run = 0;
  std::uint64_t run_count = 0;
  bool cascading = false;
  State state = State::kPending;
  std::size_t holder = kNoHolder;
  /// Remote leases only: when to give up and re-issue.
  Clock::time_point deadline{};
};

struct CasePartial {
  std::uint64_t first_run = 0;
  CaseResult result;
};

struct CaseProgress {
  std::vector<std::uint64_t> boundaries;
  std::uint64_t cascade_shard_size = 0;
  std::vector<CascadeCheckpoint> checkpoints;
  std::vector<CasePartial> partials;
  double compute_seconds = 0.0;
  std::uint64_t finished_runs = 0;
  bool scout_pending = false;
  bool done = false;
  std::size_t steals = 0;
  std::size_t last_holder = kNoHolder;
};

struct Connection {
  std::size_t id = 0;
  Socket socket;
  std::thread reader;
  /// Serializes writes to `socket` (results/grants/shutdown can be sent
  /// from several threads).  Lock order: send_mutex may be taken before
  /// the scheduler mutex, never after.
  std::mutex send_mutex;

  // Everything below is guarded by the coordinator's scheduler mutex.
  std::string peer = "worker";      // dvlint: guarded_by(mutex)
  std::uint64_t slots = 1;          // dvlint: guarded_by(mutex)
  std::uint64_t credit = 0;         // dvlint: guarded_by(mutex)
  std::uint64_t units_done = 0;     // dvlint: guarded_by(mutex)
  double busy_results = 0.0;        // dvlint: guarded_by(mutex)
  double busy_reported = 0.0;       // dvlint: guarded_by(mutex)
  /// Latest cumulative metrics snapshot from this worker's heartbeats
  /// (envelope v4+; stays empty for older peers).
  obs::MetricsSnapshot metrics;     // dvlint: guarded_by(mutex)
  /// When the previous heartbeat arrived; zero time_point = none yet.
  Clock::time_point last_heartbeat{};  // dvlint: guarded_by(mutex)
  bool registered = false;          // dvlint: guarded_by(mutex)
  bool dead = false;                // dvlint: guarded_by(mutex)
};

}  // namespace

std::uint64_t lease_ms_from_env(std::uint64_t fallback) {
  return env_u64("DV_LEASE_MS", fallback);
}

struct Coordinator::Impl {
  SweepSpec spec;
  std::uint64_t lease_ms = 30000;
  std::uint64_t heartbeat_ms = 1000;
  std::size_t local_jobs = 0;
  Listener listener;
  std::vector<CaseDescriptor> case_table;

  std::mutex mutex;
  std::condition_variable local_work;
  std::condition_variable drained;
  std::deque<Unit> units;               // dvlint: guarded_by(mutex)
  std::deque<std::size_t> pending;      // dvlint: guarded_by(mutex)
  std::deque<std::size_t> scout_queue;  // dvlint: guarded_by(mutex)
  // `case_progress` is deliberately unannotated: a case's slot is touched
  // unlocked by its exclusive holder (scout/finalize) -- the exclusivity
  // argument lives at those sites, not in a lock.
  std::vector<CaseProgress> case_progress;
  std::size_t cases_done = 0;           // dvlint: guarded_by(mutex)
  bool all_done = false;                // dvlint: guarded_by(mutex)
  bool aborting = false;                // dvlint: guarded_by(mutex)
  std::exception_ptr failure;           // dvlint: guarded_by(mutex)
  FabricTelemetry telemetry;            // dvlint: guarded_by(mutex)
  std::uint64_t local_units_done = 0;   // dvlint: guarded_by(mutex)
  double local_busy_seconds = 0.0;      // dvlint: guarded_by(mutex)
  std::vector<std::unique_ptr<Connection>> connections;  // dvlint: guarded_by(mutex)

  std::mutex progress_mutex;
  std::size_t cases_reported = 0;       // dvlint: guarded_by(progress_mutex)
  SweepResult result;

  Impl(SweepSpec sweep_spec, const CoordinatorOptions& options)
      : spec(std::move(sweep_spec)),
        listener(options.port) {
    lease_ms = options.lease_ms != 0 ? options.lease_ms
                                     : lease_ms_from_env(30000);
    heartbeat_ms = options.heartbeat_ms != 0 ? options.heartbeat_ms : 1000;
    local_jobs =
        options.local_jobs == CoordinatorOptions::kAutoLocalJobs
            ? (spec.jobs != 0 ? spec.jobs : jobs_from_env())
            : static_cast<std::size_t>(options.local_jobs);

    case_table.reserve(spec.cases.size());
    for (const SweepCase& c : spec.cases) {
      if (c.spec.algorithm_factory) {
        throw std::invalid_argument(
            "case '" + case_label(c) +
            "' uses a custom algorithm factory and cannot be dispatched "
            "over the fabric");
      }
      CaseDescriptor desc;
      desc.label = c.algorithm.empty()
                       ? std::string(to_string(c.spec.algorithm))
                       : c.algorithm;
      desc.spec = c.spec;
      case_table.push_back(std::move(desc));
    }

    build_units();
    if (cases_done == spec.cases.size()) all_done = true;
  }

  /// Split every case into units up front.  The split is a pure
  /// scheduling choice: merged results are identical for any split, which
  /// is what makes the distributed fingerprint match the serial one.
  // dvlint: requires_lock(mutex) -- only the constructor calls it pre-thread
  void build_units() {
    const std::size_t case_count = spec.cases.size();
    case_progress.resize(case_count);
    const std::size_t split_hint = std::max<std::size_t>(4, local_jobs);
    for (std::size_t i = 0; i < case_count; ++i) {
      const CaseSpec& cs = spec.cases[i].spec;
      CaseProgress& cp = case_progress[i];
      if (cs.runs == 0) {
        push_unit(Unit{i, false, SIZE_MAX, 0, 0, false});
        continue;
      }
      const std::uint64_t size =
          shard_size_for(cs.runs, split_hint, spec.min_shard_runs);
      if (cs.mode == RunMode::kFreshStart) {
        for (std::uint64_t first = 0; first < cs.runs; first += size) {
          push_unit(Unit{i, false, SIZE_MAX, first,
                         std::min(size, cs.runs - first), false});
        }
        continue;
      }
      // Cascading: shard through scout checkpoints when the case is big
      // enough, the shards re-measure something the scout skips, and
      // there is a local thread to run the scout on.  Otherwise the case
      // travels (or runs locally) as one whole unit.
      const bool instrumented = cs.check_invariants || cs.measure_wire_sizes;
      if (size < cs.runs && instrumented && local_jobs > 0) {
        cp.cascade_shard_size = size;
        for (std::uint64_t b = size; b < cs.runs; b += size) {
          cp.boundaries.push_back(b);
        }
        cp.scout_pending = true;
        Unit scout{i, true, SIZE_MAX, 0, 0, true};
        units.push_back(scout);
        scout_queue.push_back(units.size() - 1);
      } else {
        push_unit(Unit{i, false, SIZE_MAX, 0, cs.runs, true});
      }
    }
  }

  void push_unit(Unit unit) {  // dvlint: requires_lock(mutex)
    units.push_back(std::move(unit));
    pending.push_back(units.size() - 1);
  }

  ProgressSink& progress_sink() {
    return spec.progress != nullptr ? *spec.progress
                                    : default_progress_sink();
  }

  // dvlint: requires_lock(mutex)
  void note_claim_locked(std::size_t case_index, std::size_t holder) {
    CaseProgress& cp = case_progress[case_index];
    if (cp.last_holder != kNoHolder && cp.last_holder != holder) {
      ++cp.steals;
    }
    cp.last_holder = holder;
    ++telemetry.units_issued;
    DV_OBS_INC("fabric.units_issued");
  }

  /// Accept one unit's result.  First result wins; a late duplicate --
  /// from a straggler whose lease was re-issued -- is dropped, which is
  /// sound because shard execution is deterministic: any two results for
  /// the same unit are bit-identical.
  void submit_result(std::size_t unit_id, CaseResult&& shard,
                     double compute_seconds) {
    bool finalize = false;
    std::size_t finalize_index = 0;
    {
      std::lock_guard<std::mutex> lock(mutex);
      if (aborting || unit_id >= units.size()) return;
      Unit& unit = units[unit_id];
      if (unit.state == Unit::State::kDone) {
        ++telemetry.duplicate_results;
        DV_OBS_INC("fabric.duplicate_results");
        return;
      }
      unit.state = Unit::State::kDone;
      CaseProgress& cp = case_progress[unit.case_index];
      cp.partials.push_back(CasePartial{unit.first_run, std::move(shard)});
      cp.compute_seconds += compute_seconds;
      cp.finished_runs += unit.run_count;
      const CaseSpec& cs = spec.cases[unit.case_index].spec;
      if (!cp.done && !cp.scout_pending && cp.finished_runs >= cs.runs) {
        cp.done = true;
        finalize = true;
        finalize_index = unit.case_index;
        if (++cases_done == spec.cases.size()) {
          all_done = true;
          drained.notify_all();
          local_work.notify_all();
        }
      }
    }
    if (finalize) finalize_case(finalize_index);
  }

  /// Merge a finished case's shards in run order and report it.  Called
  /// without the scheduler lock: once a case is done no thread touches
  /// its partials again.
  void finalize_case(std::size_t case_index) {
    CaseProgress& cp = case_progress[case_index];
    CaseOutcome& outcome = result.cases[case_index];
    const SweepCase& sweep_case = spec.cases[case_index];
    outcome.algorithm = sweep_case.algorithm.empty()
                            ? std::string(to_string(sweep_case.spec.algorithm))
                            : sweep_case.algorithm;
    outcome.spec = sweep_case.spec;
    std::sort(cp.partials.begin(), cp.partials.end(),
              [](const CasePartial& a, const CasePartial& b) {
                return a.first_run < b.first_run;
              });
    outcome.shards = cp.partials.size();
    outcome.steals = cp.steals;
    if (!cp.partials.empty()) {
      outcome.result = std::move(cp.partials[0].result);
      for (std::size_t s = 1; s < cp.partials.size(); ++s) {
        outcome.result.merge(cp.partials[s].result);
      }
    }
    outcome.compute_seconds = cp.compute_seconds;
    if (outcome.compute_seconds > 0.0) {
      outcome.runs_per_sec = static_cast<double>(outcome.result.runs) /
                             outcome.compute_seconds;
      outcome.rounds_per_sec =
          static_cast<double>(outcome.result.total_rounds) /
          outcome.compute_seconds;
      outcome.deliveries_per_sec =
          static_cast<double>(outcome.result.total_deliveries) /
          outcome.compute_seconds;
    }
    // The allocation probe lives inside the in-process runner; fabric
    // manifests simply omit the field (negative sentinel).
    outcome.steady_allocs_per_round = -1.0;

    CaseTelemetry case_telemetry;
    case_telemetry.label = case_label(sweep_case);
    case_telemetry.runs = outcome.result.runs;
    case_telemetry.compute_seconds = outcome.compute_seconds;
    case_telemetry.runs_per_sec = outcome.runs_per_sec;
    case_telemetry.invariant_checks = outcome.result.invariant_checks;
    case_telemetry.availability_percent =
        outcome.result.availability_percent();

    std::lock_guard<std::mutex> lock(progress_mutex);
    progress_sink().case_done(case_telemetry, ++cases_reported,
                              spec.cases.size());
  }

  /// Build the lease frame for `unit_id` (scheduler lock held).  Cascade
  /// shards carry a copy of their checkpoint snapshot.
  LeaseFrame lease_for_locked(std::size_t unit_id) {  // dvlint: requires_lock(mutex)
    const Unit& unit = units[unit_id];
    LeaseFrame lease;
    lease.unit_id = unit_id;
    lease.case_index = unit.case_index;
    lease.first_run = unit.first_run;
    lease.run_count = unit.run_count;
    lease.cascading = unit.cascading;
    if (unit.cascading && unit.checkpoint_index != SIZE_MAX) {
      lease.snapshot =
          case_progress[unit.case_index].checkpoints[unit.checkpoint_index]
              .bytes;
    }
    return lease;
  }

  /// Grant up to `top_up` fresh leases plus whatever steal credit the
  /// connection has accumulated.  Send happens outside the scheduler
  /// lock; a send failure escalates to a disconnect, which re-queues the
  /// just-leased units along with everything else the worker held.
  void grant(Connection* conn, std::uint64_t top_up) {
    std::vector<std::vector<std::byte>> frames;
    {
      std::lock_guard<std::mutex> lock(mutex);
      if (conn->dead || aborting || all_done) return;
      const std::uint64_t budget = top_up + conn->credit;
      while (frames.size() < budget && !pending.empty()) {
        const std::size_t unit_id = pending.front();
        pending.pop_front();
        Unit& unit = units[unit_id];
        // Lazy delete: a straggler result can complete a unit while a
        // re-issued copy of its id still sits queued; leasing that copy
        // would execute and merge the unit twice.
        if (unit.state != Unit::State::kPending) continue;
        unit.state = Unit::State::kLeased;
        unit.holder = conn->id;
        unit.deadline =
            Clock::now() + std::chrono::milliseconds(lease_ms);
        note_claim_locked(unit.case_index, conn->id);
        frames.push_back(encode_frame(Frame{lease_for_locked(unit_id)}));
      }
      const std::uint64_t granted = frames.size();
      if (granted > top_up) telemetry.units_stolen += granted - top_up;
      conn->credit = budget - granted;
    }
    if (frames.empty()) return;
    bool send_failed = false;
    {
      std::lock_guard<std::mutex> send_lock(conn->send_mutex);
      for (const std::vector<std::byte>& frame : frames) {
        try {
          conn->socket.send_frame(frame);
        } catch (const SocketError&) {
          send_failed = true;
          break;
        }
      }
    }
    if (send_failed) disconnect(conn);
  }

  /// Declare a connection finished.  Mid-sweep this is a death: its
  /// leased units go back to the pending queue for re-issue.  After the
  /// sweep drained it is a clean goodbye.
  void disconnect(Connection* conn) {
    bool requeued = false;
    {
      std::lock_guard<std::mutex> lock(mutex);
      if (conn->dead) return;
      conn->dead = true;
      conn->socket.shutdown_both();
      const bool clean = all_done || aborting;
      if (conn->registered) {
        FabricWorkerTelemetry worker;
        worker.peer = conn->peer;
        worker.slots = conn->slots;
        worker.units_done = conn->units_done;
        worker.busy_seconds =
            std::max(conn->busy_results, conn->busy_reported);
        worker.died = !clean;
        telemetry.workers.push_back(std::move(worker));
        if (!clean) ++telemetry.workers_died;
      }
      conn->credit = 0;
      if (!clean) {
        for (std::size_t id = 0; id < units.size(); ++id) {
          Unit& unit = units[id];
          if (unit.state == Unit::State::kLeased && unit.holder == conn->id) {
            unit.state = Unit::State::kPending;
            unit.holder = kNoHolder;
            pending.push_back(id);
            ++telemetry.units_reissued;
            DV_OBS_INC("fabric.units_reissued");
            requeued = true;
          }
        }
        if (requeued) local_work.notify_all();
      }
    }
    if (requeued) pump_grants();
  }

  /// Re-issue remote leases that blew their deadline.  The straggler may
  /// still return a result later; idempotent acceptance handles it.
  void reap_expired_leases() {
    bool requeued = false;
    {
      std::lock_guard<std::mutex> lock(mutex);
      if (all_done || aborting) return;
      const Clock::time_point now = Clock::now();
      for (std::size_t id = 0; id < units.size(); ++id) {
        Unit& unit = units[id];
        if (unit.state != Unit::State::kLeased) continue;
        if (unit.holder >= kLocalHolderBase) continue;  // local: cannot die
        if (now < unit.deadline) continue;
        unit.state = Unit::State::kPending;
        unit.holder = kNoHolder;
        pending.push_back(id);
        ++telemetry.units_reissued;
        DV_OBS_INC("fabric.units_reissued");
        requeued = true;
      }
      if (requeued) local_work.notify_all();
    }
    if (requeued) pump_grants();
  }

  /// Offer newly pending units to every worker with outstanding credit.
  void pump_grants() {
    std::vector<Connection*> waiting;
    {
      std::lock_guard<std::mutex> lock(mutex);
      for (const auto& conn : connections) {
        if (!conn->dead && conn->registered && conn->credit > 0) {
          waiting.push_back(conn.get());
        }
      }
    }
    for (Connection* conn : waiting) grant(conn, 0);
  }

  bool should_stop() {
    std::lock_guard<std::mutex> lock(mutex);
    return all_done || aborting;
  }

  void accept_loop() {
    while (!should_stop()) {
      std::optional<Socket> accepted;
      try {
        accepted = listener.accept(100);
      } catch (const SocketError&) {
        break;  // listener failed; local executors can still finish
      }
      if (accepted.has_value()) {
        auto conn = std::make_unique<Connection>();
        conn->socket = std::move(*accepted);
        Connection* raw = conn.get();
        {
          std::lock_guard<std::mutex> lock(mutex);
          conn->id = connections.size();
          connections.push_back(std::move(conn));
        }
        raw->reader = std::thread([this, raw] { connection_loop(raw); });
      }
      reap_expired_leases();
    }
  }

  void connection_loop(Connection* conn) {
    try {
      conn->socket.set_recv_timeout_ms(10000);
      const auto first = conn->socket.recv_frame(kMaxFrameBytes);
      if (!first.has_value()) {
        disconnect(conn);
        return;
      }
      const Frame frame = decode_frame(*first);
      const HelloFrame* hello = std::get_if<HelloFrame>(&frame);
      if (hello == nullptr || hello->coordinator ||
          hello->schema != kFabricSchema) {
        ShutdownFrame reject;
        reject.reason = "handshake rejected: expected a worker hello with "
                        "schema " + std::string(kFabricSchema);
        std::lock_guard<std::mutex> send_lock(conn->send_mutex);
        try {
          conn->socket.send_frame(encode_frame(Frame{reject}));
        } catch (const SocketError&) {
        }
        disconnect(conn);
        return;
      }

      HelloFrame reply;
      reply.coordinator = true;
      reply.build = artifact_git_describe();
      reply.lease_ms = lease_ms;
      reply.heartbeat_ms = heartbeat_ms;
      reply.cases = case_table;
      {
        std::lock_guard<std::mutex> send_lock(conn->send_mutex);
        conn->socket.send_frame(encode_frame(Frame{reply}));
      }
      std::uint64_t slots = 0;
      {
        std::lock_guard<std::mutex> lock(mutex);
        if (!hello->build.empty()) conn->peer = hello->build;
        conn->slots = std::max<std::uint64_t>(1, hello->slots);
        slots = conn->slots;
        conn->registered = true;
        ++telemetry.workers_connected;
      }
      // Silence past five heartbeat cadences = a dead worker.
      conn->socket.set_recv_timeout_ms(
          std::max<std::uint64_t>(heartbeat_ms * 5, 2000));
      // One lease per slot plus one in flight keeps the pipe full.
      grant(conn, slots + 1);

      for (;;) {
        const auto payload = conn->socket.recv_frame(kMaxFrameBytes);
        if (!payload.has_value()) break;  // clean EOF
        Frame incoming = decode_frame(*payload);
        if (ResultFrame* res = std::get_if<ResultFrame>(&incoming)) {
          {
            std::lock_guard<std::mutex> lock(mutex);
            ++conn->units_done;
            conn->busy_results += res->compute_seconds;
          }
          submit_result(res->unit_id, std::move(res->result),
                        res->compute_seconds);
          grant(conn, 1);
        } else if (const HeartbeatFrame* hb =
                       std::get_if<HeartbeatFrame>(&incoming)) {
          const auto now = Clock::now();
          std::lock_guard<std::mutex> lock(mutex);
          conn->busy_reported = hb->busy_seconds;
          if (!hb->metrics.empty()) conn->metrics = hb->metrics;
          // Inter-heartbeat gap: the live proxy for worker link latency
          // and scheduler stalls (cadence is the contracted heartbeat_ms).
          if (conn->last_heartbeat != Clock::time_point{}) {
            const double gap_ms =
                std::chrono::duration<double, std::milli>(
                    now - conn->last_heartbeat)
                    .count();
            DV_OBS_RECORD("fabric.heartbeat_gap_ms", gap_ms);
          }
          conn->last_heartbeat = now;
        } else if (const StealFrame* steal =
                       std::get_if<StealFrame>(&incoming)) {
          {
            std::lock_guard<std::mutex> lock(mutex);
            conn->credit += std::max<std::uint64_t>(1, steal->want);
          }
          grant(conn, 0);
        } else {
          break;  // protocol violation: workers send no other frame
        }
      }
    } catch (const SocketError&) {
      // timeout (heartbeat silence) or transport failure: death
    } catch (const DecodeError&) {
      // garbage on the wire: drop the connection, keep the sweep
    }
    disconnect(conn);
  }

  /// Claim the next unit for a local executor.  Scouts first (they gate
  /// cascade shards and only locals can run them), then the shared queue.
  // dvlint: requires_lock(mutex)
  bool claim_local(std::unique_lock<std::mutex>& lock, std::size_t holder,
                   std::size_t& out_unit) {
    for (;;) {
      if (all_done || aborting) return false;
      if (!scout_queue.empty()) {
        out_unit = scout_queue.front();
        scout_queue.pop_front();
      } else if (!pending.empty()) {
        out_unit = pending.front();
        pending.pop_front();
      } else {
        local_work.wait(lock);
        continue;
      }
      Unit& unit = units[out_unit];
      // Same lazy delete as grant(): skip ids whose unit a straggler
      // result already completed while they waited in the queue.
      if (unit.state != Unit::State::kPending) continue;
      unit.state = Unit::State::kLeased;
      unit.holder = holder;
      note_claim_locked(unit.case_index, holder);
      return true;
    }
  }

  void executor_loop(std::size_t executor_index) {
    const std::size_t holder = kLocalHolderBase + executor_index;
    std::unique_lock<std::mutex> lock(mutex);
    std::size_t unit_id = 0;
    while (claim_local(lock, holder, unit_id)) {
      const Unit unit = units[unit_id];
      const CaseSpec& cs = spec.cases[unit.case_index].spec;
      lock.unlock();
      const auto start = Clock::now();

      if (unit.scout) {
        std::vector<CascadeCheckpoint> checkpoints =
            scout_cascading_case(cs, case_progress[unit.case_index].boundaries);
        const double seconds = seconds_since(start);
        lock.lock();
        CaseProgress& cp = case_progress[unit.case_index];
        cp.compute_seconds += seconds;
        local_busy_seconds += seconds;
        cp.checkpoints = std::move(checkpoints);
        cp.scout_pending = false;
        units[unit_id].state = Unit::State::kDone;
        ++local_units_done;
        // First shard starts from scratch; shard k resumes checkpoint
        // k-1.  These are remote-eligible: the snapshots travel inside
        // lease frames.
        push_unit(Unit{unit.case_index, false, SIZE_MAX, 0,
                       std::min(cp.cascade_shard_size, cs.runs), true});
        for (std::size_t k = 0; k < cp.checkpoints.size(); ++k) {
          const std::uint64_t first = cp.checkpoints[k].first_run;
          push_unit(Unit{unit.case_index, false, k, first,
                         std::min(cp.cascade_shard_size, cs.runs - first),
                         true});
        }
        local_work.notify_all();
        lock.unlock();
        pump_grants();
        lock.lock();
        continue;
      }

      CaseResult shard;
      if (unit.cascading) {
        static const CascadeCheckpoint kScratch{};
        const CascadeCheckpoint& from =
            unit.checkpoint_index == SIZE_MAX
                ? kScratch
                : case_progress[unit.case_index]
                      .checkpoints[unit.checkpoint_index];
        shard = run_cascading_shard(cs, from, unit.run_count);
      } else {
        shard = run_case_shard(cs, unit.first_run, unit.run_count);
      }
      const double seconds = seconds_since(start);
      {
        std::lock_guard<std::mutex> stats_lock(mutex);
        ++local_units_done;
        local_busy_seconds += seconds;
      }
      submit_result(unit_id, std::move(shard), seconds);
      lock.lock();
    }
  }

  SweepResult run() {
    const auto sweep_start = Clock::now();
    maybe_enable_trace_from_env();
    const obs::MetricsSnapshot metrics_base = obs::snapshot_metrics();
    result.jobs = std::max<std::size_t>(1, local_jobs);
    result.cases.resize(spec.cases.size());

    std::thread acceptor([this] { accept_loop(); });
    std::vector<std::thread> executors;
    executors.reserve(local_jobs);
    for (std::size_t w = 0; w < local_jobs; ++w) {
      executors.emplace_back([this, w] {
        try {
          executor_loop(w);
        } catch (...) {
          std::lock_guard<std::mutex> lock(mutex);
          if (!failure) failure = std::current_exception();
          aborting = true;
          drained.notify_all();
          local_work.notify_all();
        }
      });
    }

    {
      std::unique_lock<std::mutex> lock(mutex);
      drained.wait(lock, [this] { return all_done || aborting; });
    }

    acceptor.join();

    // Drain connections: a polite shutdown frame, then unblock readers.
    std::vector<Connection*> live;
    {
      std::lock_guard<std::mutex> lock(mutex);
      for (const auto& conn : connections) {
        if (!conn->dead) live.push_back(conn.get());
      }
    }
    for (Connection* conn : live) {
      ShutdownFrame bye;
      bye.reason = "sweep drained";
      std::lock_guard<std::mutex> send_lock(conn->send_mutex);
      try {
        conn->socket.send_frame(encode_frame(Frame{bye}));
      } catch (const SocketError&) {
      }
      conn->socket.shutdown_both();
    }
    // The acceptor is joined, so `connections` no longer grows; join the
    // readers without the scheduler lock (their exit path takes it).
    // dvlint: ignore(guarded-by)
    for (const auto& conn : connections) {
      if (conn->reader.joinable()) conn->reader.join();
    }
    for (std::thread& t : executors) t.join();

    {
      // Every thread is joined: the lock is uncontended and taken only so
      // the guarded-by discipline stays checkable end to end.
      std::lock_guard<std::mutex> lock(mutex);
      if (failure) std::rethrow_exception(failure);

      result.wall_seconds = seconds_since(sweep_start);
      telemetry.used = true;
      if (local_jobs > 0) {
        FabricWorkerTelemetry local;
        local.peer = "local";
        local.slots = local_jobs;
        local.units_done = local_units_done;
        local.busy_seconds = local_busy_seconds;
        telemetry.workers.insert(telemetry.workers.begin(), std::move(local));
      }
      result.fabric = telemetry;

      // The manifest's observability block: this process's delta for the
      // sweep, plus the latest cumulative snapshot each worker shipped in
      // its heartbeats (v4+ peers; empty and harmless for older ones).
      result.metrics = obs::snapshot_metrics().delta_since(metrics_base);
      for (const auto& conn : connections) {
        result.metrics.merge(conn->metrics);
      }
    }
    // All local executors are joined, so the trace rings are quiescent.
    result.trace_path = drain_trace_to_artifact(spec.name);

    progress_sink().sweep_done(
        spec.name.empty() ? "(unnamed sweep)" : spec.name,
        spec.cases.size(), result.wall_seconds);
    if (!spec.name.empty()) {
      result.artifact_path = write_manifest(spec, result);
    }
    return result;
  }
};

Coordinator::Coordinator(SweepSpec spec, CoordinatorOptions options)
    : impl_(std::make_unique<Impl>(std::move(spec), options)) {}

Coordinator::~Coordinator() = default;

std::uint16_t Coordinator::port() const { return impl_->listener.port(); }

SweepResult Coordinator::run() { return impl_->run(); }

}  // namespace dynvote::fabric
