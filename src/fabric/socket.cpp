#include "fabric/socket.hpp"

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace dynvote::fabric {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw SocketError(what + ": " + std::strerror(errno));
}

// Loop a recv until `n` bytes arrive.  `start_of_frame` distinguishes a
// clean shutdown (EOF before any byte of the length prefix) from a
// truncated frame (EOF anywhere else).
bool recv_exact(int fd, std::byte* out, std::size_t n, bool start_of_frame) {
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::recv(fd, out + got, n - got, 0);
    if (r > 0) {
      got += static_cast<std::size_t>(r);
      continue;
    }
    if (r == 0) {
      if (start_of_frame && got == 0) return false;  // clean EOF
      throw SocketError("connection closed mid-frame");
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      throw SocketTimeout("receive deadline expired");
    }
    throw_errno("recv");
  }
  return true;
}

}  // namespace

Socket::Socket(Socket&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

Socket::~Socket() { close(); }

void Socket::close() {
  if (fd_ >= 0) {
    ::shutdown(fd_, SHUT_RDWR);
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::shutdown_both() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::set_recv_timeout_ms(std::uint64_t ms) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(ms / 1000);
  tv.tv_usec = static_cast<suseconds_t>((ms % 1000) * 1000);
  if (::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0) {
    throw_errno("setsockopt(SO_RCVTIMEO)");
  }
}

void Socket::send_frame(std::span<const std::byte> payload) {
  if (payload.size() > UINT32_MAX) {
    throw SocketError("frame payload exceeds 32-bit length prefix");
  }
  const std::uint32_t n = static_cast<std::uint32_t>(payload.size());
  std::byte prefix[4];
  prefix[0] = static_cast<std::byte>(n & 0xFF);
  prefix[1] = static_cast<std::byte>((n >> 8) & 0xFF);
  prefix[2] = static_cast<std::byte>((n >> 16) & 0xFF);
  prefix[3] = static_cast<std::byte>((n >> 24) & 0xFF);

  const auto send_all = [this](const std::byte* data, std::size_t len) {
    std::size_t sent = 0;
    while (sent < len) {
      const ssize_t r = ::send(fd_, data + sent, len - sent, MSG_NOSIGNAL);
      if (r >= 0) {
        sent += static_cast<std::size_t>(r);
        continue;
      }
      if (errno == EINTR) continue;
      throw_errno("send");
    }
  };
  send_all(prefix, sizeof(prefix));
  send_all(payload.data(), payload.size());
}

std::optional<std::vector<std::byte>> Socket::recv_frame(
    std::size_t max_bytes) {
  std::byte prefix[4];
  if (!recv_exact(fd_, prefix, sizeof(prefix), /*start_of_frame=*/true)) {
    return std::nullopt;
  }
  const std::uint32_t n = static_cast<std::uint32_t>(prefix[0]) |
                          (static_cast<std::uint32_t>(prefix[1]) << 8) |
                          (static_cast<std::uint32_t>(prefix[2]) << 16) |
                          (static_cast<std::uint32_t>(prefix[3]) << 24);
  if (n > max_bytes) {
    throw SocketError("frame length prefix of " + std::to_string(n) +
                      " bytes exceeds cap of " + std::to_string(max_bytes));
  }
  std::vector<std::byte> payload(n);
  recv_exact(fd_, payload.data(), payload.size(), /*start_of_frame=*/false);
  return payload;
}

Socket connect_to(const std::string& host, std::uint16_t port) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const std::string service = std::to_string(port);
  const int rc = ::getaddrinfo(host.c_str(), service.c_str(), &hints, &res);
  if (rc != 0) {
    throw SocketError("resolve '" + host + "': " + ::gai_strerror(rc));
  }

  int last_errno = 0;
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last_errno = errno;
      continue;
    }
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      ::freeaddrinfo(res);
      return Socket(fd);
    }
    last_errno = errno;
    ::close(fd);
  }
  ::freeaddrinfo(res);
  errno = last_errno;
  throw_errno("connect to " + host + ":" + service);
}

Listener::Listener(std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) throw_errno("socket");
  const int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(port);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    errno = saved;
    throw_errno("bind port " + std::to_string(port));
  }
  if (::listen(fd_, SOMAXCONN) != 0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    errno = saved;
    throw_errno("listen");
  }

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    errno = saved;
    throw_errno("getsockname");
  }
  port_ = ntohs(bound.sin_port);
}

Listener::Listener(Listener&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      port_(std::exchange(other.port_, std::uint16_t{0})) {}

Listener& Listener::operator=(Listener&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    port_ = std::exchange(other.port_, std::uint16_t{0});
  }
  return *this;
}

Listener::~Listener() { close(); }

void Listener::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::optional<Socket> Listener::accept(int timeout_ms) {
  pollfd pfd{};
  pfd.fd = fd_;
  pfd.events = POLLIN;
  const int ready = ::poll(&pfd, 1, timeout_ms);
  if (ready < 0) {
    if (errno == EINTR) return std::nullopt;
    throw_errno("poll");
  }
  if (ready == 0) return std::nullopt;

  const int fd = ::accept(fd_, nullptr, nullptr);
  if (fd < 0) {
    if (errno == EINTR || errno == ECONNABORTED) return std::nullopt;
    throw_errno("accept");
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Socket(fd);
}

}  // namespace dynvote::fabric
