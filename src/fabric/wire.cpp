#include "fabric/wire.hpp"

#include <bit>
#include <stdexcept>

namespace dynvote::fabric {

namespace {

// Doubles travel as their IEEE-754 bit pattern in a fixed little-endian
// word: exact round-trip, no locale or formatting in the loop.
void put_double(Encoder& enc, double value) {
  enc.put_u64_fixed(std::bit_cast<std::uint64_t>(value));
}

double get_double(Decoder& dec) {
  return std::bit_cast<double>(dec.get_u64_fixed());
}

AlgorithmKind algorithm_from_wire(std::uint8_t raw) {
  if (raw > static_cast<std::uint8_t>(AlgorithmKind::kMr1p)) {
    throw DecodeError("unknown algorithm kind " + std::to_string(raw) +
                      " in case descriptor");
  }
  return static_cast<AlgorithmKind>(raw);
}

RunMode mode_from_wire(std::uint8_t raw) {
  if (raw > static_cast<std::uint8_t>(RunMode::kCascading)) {
    throw DecodeError("unknown run mode " + std::to_string(raw) +
                      " in case descriptor");
  }
  return static_cast<RunMode>(raw);
}

FaultModelKind fault_model_from_wire(std::uint8_t raw) {
  if (raw > static_cast<std::uint8_t>(FaultModelKind::kTrace)) {
    throw DecodeError("unknown fault model kind " + std::to_string(raw) +
                      " in case descriptor");
  }
  return static_cast<FaultModelKind>(raw);
}

}  // namespace

void CaseDescriptor::encode_body(Encoder& enc, std::uint64_t version) const {
  if (spec.algorithm_factory) {
    // A std::function cannot travel; the coordinator refuses such sweeps
    // before any worker connects rather than silently running the wrong
    // algorithm remotely.
    throw std::invalid_argument(
        "case '" + label +
        "' uses a custom algorithm factory and cannot be dispatched "
        "to remote workers");
  }
  if (version < 3 && spec.fault_model.kind != FaultModelKind::kGeometric) {
    // A pre-v3 peer would silently run the geometric model instead.
    throw std::invalid_argument(
        "case '" + label + "' uses the " +
        std::string(to_string(spec.fault_model.kind)) +
        " fault model, which needs wire protocol v3");
  }
  enc.put_string(label);
  enc.put_u8(static_cast<std::uint8_t>(spec.algorithm));
  enc.put_varint(spec.processes);
  enc.put_varint(spec.changes);
  put_double(enc, spec.mean_rounds);
  put_double(enc, spec.crash_fraction);
  enc.put_varint(spec.runs);
  enc.put_u8(static_cast<std::uint8_t>(spec.mode));
  enc.put_varint(spec.base_seed);
  enc.put_bool(spec.measure_wire_sizes);
  enc.put_bool(spec.check_invariants);
  if (version >= 3) {
    enc.put_u8(static_cast<std::uint8_t>(spec.fault_model.kind));
    put_double(enc, spec.fault_model.wake_bias);
    enc.put_varint(spec.fault_model.repair_capacity);
    put_double(enc, spec.fault_model.repair_mean_rounds);
    enc.put_string(spec.fault_model.trace_json);
  }
}

void CaseDescriptor::decode_body(Decoder& dec, std::uint64_t version) {
  label = dec.get_string();
  spec.algorithm = algorithm_from_wire(dec.get_u8());
  spec.algorithm_factory = nullptr;
  spec.processes = static_cast<std::size_t>(dec.get_varint());
  spec.changes = static_cast<std::size_t>(dec.get_varint());
  spec.mean_rounds = get_double(dec);
  spec.crash_fraction = get_double(dec);
  spec.runs = dec.get_varint();
  spec.mode = mode_from_wire(dec.get_u8());
  spec.base_seed = dec.get_varint();
  spec.measure_wire_sizes = dec.get_bool();
  spec.check_invariants = dec.get_bool();
  if (version >= 3) {
    spec.fault_model.kind = fault_model_from_wire(dec.get_u8());
    spec.fault_model.wake_bias = get_double(dec);
    spec.fault_model.repair_capacity = dec.get_varint();
    spec.fault_model.repair_mean_rounds = get_double(dec);
    spec.fault_model.trace_json = dec.get_string();
  } else {
    spec.fault_model = FaultModelParams{};
  }
}

void HelloFrame::encode_body(Encoder& enc, std::uint64_t version) const {
  enc.put_bool(coordinator);
  enc.put_string(schema);
  enc.put_string(build);
  enc.put_varint(slots);
  enc.put_varint(lease_ms);
  enc.put_varint(heartbeat_ms);
  enc.put_varint(cases.size());
  for (const CaseDescriptor& c : cases) c.encode_body(enc, version);
}

void HelloFrame::decode_body(Decoder& dec, std::uint64_t version) {
  coordinator = dec.get_bool();
  schema = dec.get_string();
  build = dec.get_string();
  slots = dec.get_varint();
  lease_ms = dec.get_varint();
  heartbeat_ms = dec.get_varint();
  const std::uint64_t count = dec.get_varint();
  // One descriptor is a handful of bytes; a count beyond this is a corrupt
  // frame, not a sweep (the standard grids are a few hundred cases).
  if (count > 1'000'000 || count > dec.remaining()) {
    throw DecodeError("implausible case-table size " + std::to_string(count));
  }
  cases.clear();
  cases.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    cases.emplace_back().decode_body(dec, version);
  }
}

void LeaseFrame::encode_body(Encoder& enc, std::uint64_t /*version*/) const {
  enc.put_varint(unit_id);
  enc.put_varint(case_index);
  enc.put_varint(first_run);
  enc.put_varint(run_count);
  enc.put_bool(cascading);
  enc.put_bytes(snapshot);
}

void LeaseFrame::decode_body(Decoder& dec, std::uint64_t /*version*/) {
  unit_id = dec.get_varint();
  case_index = dec.get_varint();
  first_run = dec.get_varint();
  run_count = dec.get_varint();
  cascading = dec.get_bool();
  snapshot = dec.get_bytes();
}

void ResultFrame::encode_body(Encoder& enc, std::uint64_t /*version*/) const {
  enc.put_varint(unit_id);
  put_double(enc, compute_seconds);
  result.encode_body(enc);
}

void ResultFrame::decode_body(Decoder& dec, std::uint64_t /*version*/) {
  unit_id = dec.get_varint();
  compute_seconds = get_double(dec);
  result.decode_body(dec);
}

void HeartbeatFrame::encode_body(Encoder& enc, std::uint64_t version) const {
  enc.put_varint(inflight);
  if (version >= 2) {
    put_double(enc, busy_seconds);
  }
  if (version >= 4) {
    metrics.encode_body(enc);
  }
}

void HeartbeatFrame::decode_body(Decoder& dec, std::uint64_t version) {
  inflight = dec.get_varint();
  if (version >= 2) {
    busy_seconds = get_double(dec);
  } else {
    busy_seconds = 0.0;
  }
  if (version >= 4) {
    metrics = obs::MetricsSnapshot::decode_body(dec);
  } else {
    metrics = obs::MetricsSnapshot{};
  }
}

void StealFrame::encode_body(Encoder& enc, std::uint64_t /*version*/) const {
  enc.put_varint(want);
}

void StealFrame::decode_body(Decoder& dec, std::uint64_t /*version*/) {
  want = dec.get_varint();
}

void ShutdownFrame::encode_body(Encoder& enc,
                                std::uint64_t /*version*/) const {
  enc.put_string(reason);
}

void ShutdownFrame::decode_body(Decoder& dec, std::uint64_t /*version*/) {
  reason = dec.get_string();
}

FrameType frame_type(const Frame& frame) {
  return std::visit(
      [](const auto& f) {
        using T = std::decay_t<decltype(f)>;
        if constexpr (std::is_same_v<T, HelloFrame>) return FrameType::kHello;
        if constexpr (std::is_same_v<T, LeaseFrame>) return FrameType::kLease;
        if constexpr (std::is_same_v<T, ResultFrame>) {
          return FrameType::kResult;
        }
        if constexpr (std::is_same_v<T, HeartbeatFrame>) {
          return FrameType::kHeartbeat;
        }
        if constexpr (std::is_same_v<T, StealFrame>) return FrameType::kSteal;
        if constexpr (std::is_same_v<T, ShutdownFrame>) {
          return FrameType::kShutdown;
        }
      },
      frame);
}

std::string_view to_string(FrameType type) {
  switch (type) {
    case FrameType::kHello: return "hello";
    case FrameType::kLease: return "lease";
    case FrameType::kResult: return "result";
    case FrameType::kHeartbeat: return "heartbeat";
    case FrameType::kSteal: return "steal";
    case FrameType::kShutdown: return "shutdown";
  }
  return "unknown";
}

std::vector<std::byte> encode_frame(const Frame& frame,
                                    std::uint64_t version) {
  Encoder enc;
  enc.put_varint(version);
  enc.put_u8(static_cast<std::uint8_t>(frame_type(frame)));
  std::visit([&](const auto& f) { f.encode_body(enc, version); }, frame);
  return enc.take();
}

Frame decode_frame(std::span<const std::byte> payload) {
  Decoder dec(payload, kMaxFrameBytes);
  const std::uint64_t version = dec.get_varint();
  if (version == 0 || version > kFrameVersion) {
    throw DecodeError("frame envelope version " + std::to_string(version) +
                      " is not supported by this build (speaks up to " +
                      std::to_string(kFrameVersion) + ")");
  }
  const std::uint8_t type = dec.get_u8();
  Frame frame;
  switch (static_cast<FrameType>(type)) {
    case FrameType::kHello: frame = HelloFrame{}; break;
    case FrameType::kLease: frame = LeaseFrame{}; break;
    case FrameType::kResult: frame = ResultFrame{}; break;
    case FrameType::kHeartbeat: frame = HeartbeatFrame{}; break;
    case FrameType::kSteal: frame = StealFrame{}; break;
    case FrameType::kShutdown: frame = ShutdownFrame{}; break;
    default:
      throw DecodeError("unknown frame type " + std::to_string(type));
  }
  std::visit([&](auto& f) { f.decode_body(dec, version); }, frame);
  dec.finish();
  return frame;
}

CaseResult execute_unit(const CaseSpec& spec, const LeaseFrame& lease) {
  if (!lease.cascading) {
    return run_case_shard(spec, lease.first_run, lease.run_count);
  }
  CascadeCheckpoint checkpoint;
  checkpoint.first_run = lease.first_run;
  checkpoint.bytes = lease.snapshot;
  return run_cascading_shard(spec, checkpoint, lease.run_count);
}

}  // namespace dynvote::fabric
