// The multi-host sweep fabric's wire protocol ("dynvote.fabric.v1").
//
// A coordinator owns a sweep and hands (snapshot, first_run, count) work
// units to worker processes over TCP; workers stream back shard results
// that merge bit-identically into the same manifest a single-host run
// writes.  Every message is one *frame*: a length-prefixed payload encoded
// with util/codec.hpp behind a tiny versioned envelope:
//
//   varint  envelope version (kFrameVersion; fields added later than v1
//           are gated on this in decode, so mixed-build clusters work)
//   u8      frame type
//   ...     frame body
//
// Frame types:
//   hello      both directions, first frame on a connection.  The worker
//              announces its capabilities (slots, build); the coordinator
//              replies with the sweep's case table and timing contract
//              (lease deadline, wanted heartbeat cadence).
//   lease      coordinator -> worker: one work unit.  Cascading units
//              carry the scout snapshot that seeds the shard's world.
//   result     worker -> coordinator: the unit's CaseResult, lossless.
//   heartbeat  worker -> coordinator: liveness (silence past the timeout
//              is how a dead worker is detected and its units re-issued).
//   steal      worker -> coordinator: request for more leases; the
//              cross-host analogue of the in-process deque steal.
//   shutdown   coordinator -> worker: sweep drained, disconnect cleanly.
//
// Decoding throws DecodeError on truncation, caps, unknown types, or a
// newer envelope than this build speaks; frames are never trusted input.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <variant>
#include <vector>

#include "obs/metrics.hpp"
#include "sim/experiment.hpp"
#include "util/codec.hpp"

namespace dynvote::fabric {

/// Protocol identifier exchanged in hello frames; incompatible layout
/// changes bump this string, additive ones bump kFrameVersion instead.
inline constexpr std::string_view kFabricSchema = "dynvote.fabric.v1";

/// Envelope version stamped on every frame.  v1 was the initial protocol;
/// v2 added HeartbeatFrame::busy_seconds (worker-utilization telemetry);
/// v3 added the fault-model block to CaseDescriptor (kind + parameters +
/// trace document); v4 added HeartbeatFrame::metrics (the worker's
/// cumulative src/obs metrics snapshot, so the coordinator aggregates
/// live worker metrics into the manifest's observability block).
/// Decoders gate every post-v1 field on the envelope version, so a v4
/// coordinator still understands a v1 worker's frames and vice versa --
/// but encoding a non-geometric case at pre-v3 throws rather than letting
/// an old peer silently run the wrong model.
inline constexpr std::uint64_t kFrameVersion = 4;

/// Hard cap on one frame's payload, enforced on both the socket read of
/// the length prefix and the codec's per-item decode cap.  Far above any
/// real frame (snapshots are kilobytes), far below an allocation that
/// could hurt.
inline constexpr std::size_t kMaxFrameBytes = std::size_t{64} << 20;

enum class FrameType : std::uint8_t {  // dvlint: wire_enum
  kHello = 1,
  kLease = 2,
  kResult = 3,
  kHeartbeat = 4,
  kSteal = 5,
  kShutdown = 6,
};

/// One sweep case as shipped to workers: the manifest label plus every
/// CaseSpec field that shapes simulation.  Specs with a custom
/// algorithm_factory are not wire-portable and are rejected before
/// dispatch (encode_body throws std::invalid_argument).
struct CaseDescriptor {
  std::string label;
  CaseSpec spec;

  void encode_body(Encoder& enc, std::uint64_t version) const;
  void decode_body(Decoder& dec, std::uint64_t version);
};

struct HelloFrame {
  /// Which side is speaking; the reply direction carries the case table.
  bool coordinator = false;
  /// kFabricSchema; mismatches are rejected at handshake.
  std::string schema = std::string(kFabricSchema);
  /// Producing build (git describe), informational only.
  std::string build;
  /// Worker capability: units it executes concurrently.
  std::uint64_t slots = 1;
  /// Coordinator contract: per-unit lease deadline it enforces.
  std::uint64_t lease_ms = 0;
  /// Coordinator contract: heartbeat cadence it expects from workers.
  std::uint64_t heartbeat_ms = 0;
  /// Coordinator only: the sweep's case table, indexed by lease frames.
  std::vector<CaseDescriptor> cases;

  void encode_body(Encoder& enc, std::uint64_t version) const;
  void decode_body(Decoder& dec, std::uint64_t version);
};

struct LeaseFrame {
  /// Sweep-unique unit id; results echo it, duplicates are dropped by it.
  std::uint64_t unit_id = 0;
  /// Index into the hello frame's case table.
  std::uint64_t case_index = 0;
  std::uint64_t first_run = 0;
  std::uint64_t run_count = 0;
  /// Cascading units restore `snapshot` before running; fresh-start units
  /// ship empty bytes and seed purely from the case coordinates.
  bool cascading = false;
  std::vector<std::byte> snapshot;

  void encode_body(Encoder& enc, std::uint64_t version) const;
  void decode_body(Decoder& dec, std::uint64_t version);
};

struct ResultFrame {
  std::uint64_t unit_id = 0;
  /// Worker-side wall seconds spent simulating the unit (telemetry).
  double compute_seconds = 0.0;
  CaseResult result;

  void encode_body(Encoder& enc, std::uint64_t version) const;
  void decode_body(Decoder& dec, std::uint64_t version);
};

struct HeartbeatFrame {
  /// Units currently executing on the worker.
  std::uint64_t inflight = 0;
  /// Cumulative simulate time this connection, for utilization telemetry.
  /// Added in envelope v2; gated on the version in both directions.
  double busy_seconds = 0.0;
  /// Cumulative src/obs metrics snapshot of the worker process, so the
  /// coordinator can aggregate live worker metrics.  Added in envelope
  /// v4; gated on the version in both directions (pre-v4 peers simply
  /// ship/see an empty snapshot).  Telemetry only, never results.
  obs::MetricsSnapshot metrics;

  void encode_body(Encoder& enc, std::uint64_t version) const;
  void decode_body(Decoder& dec, std::uint64_t version);
};

struct StealFrame {
  /// Additional leases the worker can absorb right now.
  std::uint64_t want = 1;

  void encode_body(Encoder& enc, std::uint64_t version) const;
  void decode_body(Decoder& dec, std::uint64_t version);
};

struct ShutdownFrame {
  std::string reason;

  void encode_body(Encoder& enc, std::uint64_t version) const;
  void decode_body(Decoder& dec, std::uint64_t version);
};

using Frame = std::variant<HelloFrame, LeaseFrame, ResultFrame,
                           HeartbeatFrame, StealFrame, ShutdownFrame>;

FrameType frame_type(const Frame& frame);
std::string_view to_string(FrameType type);

/// Serialize `frame` behind the envelope.  `version` defaults to this
/// build's kFrameVersion; tests pass 1 to exercise the migration path.
std::vector<std::byte> encode_frame(const Frame& frame,
                                    std::uint64_t version = kFrameVersion);

/// Parse one frame payload (the bytes inside the socket length prefix).
/// Throws DecodeError on truncation, trailing bytes, unknown frame types,
/// or an envelope newer than this build understands.
Frame decode_frame(std::span<const std::byte> payload);

/// Execute one leased work unit against its case spec -- the exact same
/// code path on a remote worker and on the coordinator's local threads,
/// which is what makes placement invisible in the results.
CaseResult execute_unit(const CaseSpec& spec, const LeaseFrame& lease);

}  // namespace dynvote::fabric
