// Minimal POSIX TCP wrapper for the sweep fabric.
//
// One framing rule: every message on the wire is a 32-bit little-endian
// payload length followed by that many payload bytes (the payload itself
// is a fabric frame, wire.hpp).  The length is checked against a caller
// cap before any allocation, so a corrupt peer cannot size a buffer.
//
// Error model: SocketError for transport failures, SocketTimeout (a
// subclass) when a receive deadline set via set_recv_timeout_ms expires
// -- the coordinator uses that deadline as its worker-death detector --
// and std::nullopt from recv_frame for a clean peer shutdown.  Nothing
// here retries; policy lives in the coordinator and worker.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace dynvote::fabric {

class SocketError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A receive deadline (set_recv_timeout_ms) expired with no bytes read.
class SocketTimeout : public SocketError {
 public:
  using SocketError::SocketError;
};

/// Move-only owner of one connected TCP stream.
class Socket {
 public:
  Socket() = default;
  /// Adopts `fd` (takes ownership; -1 means "no socket").
  explicit Socket(int fd) : fd_(fd) {}
  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  ~Socket();

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Close now (idempotent).  Only the thread that owns the socket's
  /// lifetime may call this; use shutdown_both() to unblock a reader from
  /// another thread.
  void close();

  /// Half-close both directions without releasing the descriptor: a
  /// thread blocked in recv on this socket wakes with EOF/SocketError.
  /// This is the only cross-thread operation the fabric performs on a
  /// socket (closing from another thread would race with the reader).
  void shutdown_both();

  /// After this, a recv that sees no bytes for `ms` throws SocketTimeout.
  /// 0 restores "block forever".
  void set_recv_timeout_ms(std::uint64_t ms);

  /// Send one length-prefixed frame.  Blocks until fully written; throws
  /// SocketError if the peer is gone (no SIGPIPE).
  void send_frame(std::span<const std::byte> payload);

  /// Receive one length-prefixed frame of at most `max_bytes` payload.
  /// Returns nullopt when the peer shut down cleanly between frames;
  /// throws SocketTimeout on a receive deadline, SocketError on anything
  /// else (including EOF mid-frame and an oversized length prefix).
  std::optional<std::vector<std::byte>> recv_frame(std::size_t max_bytes);

 private:
  int fd_ = -1;
};

/// Connect to `host:port` (numeric or resolvable name).  Throws
/// SocketError on failure; retry/backoff policy belongs to the caller.
Socket connect_to(const std::string& host, std::uint16_t port);

/// Listening TCP socket.  accept() takes a poll timeout so the accept
/// loop can observe a stop flag without closing the listener from
/// another thread.
class Listener {
 public:
  /// Binds and listens on all interfaces.  `port` 0 picks an ephemeral
  /// port; read the actual one back via port().
  explicit Listener(std::uint16_t port);
  Listener(Listener&& other) noexcept;
  Listener& operator=(Listener&& other) noexcept;
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;
  ~Listener();

  std::uint16_t port() const { return port_; }

  /// Wait up to `timeout_ms` for a connection.  Returns the accepted
  /// socket, or nullopt on timeout; throws SocketError if the listener
  /// itself fails.
  std::optional<Socket> accept(int timeout_ms);

  void close();

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

}  // namespace dynvote::fabric
