#include "gcs/gcs.hpp"

#include <array>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/assert.hpp"
#include "util/codec.hpp"

namespace dynvote {

void WireStats::encode_body(Encoder& enc) const {
  enc.put_varint(messages_sent);
  enc.put_varint(protocol_messages_sent);
  enc.put_varint(max_message_bytes);
  enc.put_varint(total_message_bytes);
}

void WireStats::decode_body(Decoder& dec) {
  messages_sent = dec.get_varint();
  protocol_messages_sent = dec.get_varint();
  max_message_bytes = static_cast<std::size_t>(dec.get_varint());
  total_message_bytes = dec.get_varint();
}

Gcs::Gcs(AlgorithmKind kind, std::size_t processes, GcsOptions options)
    : Gcs(
          [kind](ProcessId self, const View& initial_view) {
            return make_algorithm(kind, self, initial_view);
          },
          processes, options) {}

Gcs::Gcs(const AlgorithmFactory& factory, std::size_t processes,
         GcsOptions options)
    : options_(options), topology_(processes),
      // dvlint: raw-seed(driver already derives it with kDeliveryStreamTag)
      delivery_rng_(options.delivery_seed), crashed_(processes) {
  DV_REQUIRE(processes >= 1, "need at least one process");
  const View initial{1, ProcessSet::full(processes)};
  algorithms_.reserve(processes);
  installed_views_.assign(processes, initial);
  for (ProcessId p = 0; p < processes; ++p) {
    algorithms_.push_back(factory(p, initial));
    DV_REQUIRE(algorithms_.back() != nullptr, "factory returned null");
  }
}

PrimaryComponentAlgorithm& Gcs::algorithm(ProcessId id) {
  DV_REQUIRE(id < algorithms_.size(), "process id out of range");
  return *algorithms_[id];
}

const PrimaryComponentAlgorithm& Gcs::algorithm(ProcessId id) const {
  DV_REQUIRE(id < algorithms_.size(), "process id out of range");
  return *algorithms_[id];
}

const View& Gcs::view_of(ProcessId id) const {
  DV_REQUIRE(id < installed_views_.size(), "process id out of range");
  return installed_views_[id];
}

void Gcs::deliver(ProcessId recipient, const Message& message,
                  ProcessId sender) {
  ++deliveries_;
  // The application-side return value (the stripped message) is dropped:
  // the simulated application has no payload traffic of its own.
  (void)algorithms_[recipient]->incoming_message(message, sender);
}

void Gcs::record_send(const Message& message) {
  ++wire_stats_.messages_sent;
  if (message.has_protocol()) ++wire_stats_.protocol_messages_sent;
  if (!options_.measure_wire_sizes) return;
  measure_wire(message);
}

// Out of line so the per-send fast path in record_send stays tiny; only
// the message-size bench pays for the encode below.
void Gcs::measure_wire(const Message& message) {
  const std::size_t bytes = message.wire_size();
  wire_stats_.total_message_bytes += bytes;
  if (bytes > wire_stats_.max_message_bytes) {
    wire_stats_.max_message_bytes = bytes;
  }
}

bool Gcs::step_round() {
  const DeliverCallback deliver_cb{this};
  const std::size_t deliveries = network_.deliver_all(deliver_cb);

  // One empty application message serves every poll of the round (the
  // contract passes it by const reference).
  static const Message kEmptyApp = Message::empty();
  std::size_t sends = 0;
  for (ProcessId p = 0; p < algorithms_.size(); ++p) {
    if (crashed_.contains(p)) continue;
    auto out = algorithms_[p]->outgoing_message_poll(kEmptyApp);
    if (!out.has_value()) continue;
    record_send(*out);
    if (options_.serialize_on_wire) {
      *out = Message::parse(out->serialize());
    }
    const std::size_t comp = topology_.component_of(p);
    network_.send(p, topology_.component(comp), std::move(*out));
    ++sends;
  }
  return deliveries + sends > 0;
}

void Gcs::install_view(const ProcessSet& members) {
  const View view{next_view_id_++, members};
  // Observational only (and outside step_round, so the zero-alloc
  // steady-state probe never crosses this path).
  DV_OBS_INC("gcs.views_installed");
  DV_TRACE_INSTANT("view_installed", view.id, members.count());
  members.for_each([&](ProcessId p) {
    installed_views_[p] = view;
    algorithms_[p]->view_changed(view);
  });
}

void Gcs::apply_partition(std::size_t component_index, const ProcessSet& moved,
                          Network::CrossDeliveryFn crosses) {
  const ProcessSet component = topology_.component(component_index);
  const ProcessSet remainder = component.minus(moved);
  DV_REQUIRE(!moved.empty() && !remainder.empty(),
             "partition must produce two non-empty sides");

  const DeliverCallback deliver_cb{this};
  const CoinCallback coin_cb{this};
  network_.flush_for_partition(
      component, remainder, moved, deliver_cb,
      crosses ? crosses : Network::CrossDeliveryFn(coin_cb));
  topology_.split(component_index, moved);
  install_view(remainder);
  install_view(moved);
}

void Gcs::apply_merge(std::size_t a, std::size_t b) {
  const ProcessSet comp_a = topology_.component(a);
  const ProcessSet comp_b = topology_.component(b);

  const DeliverCallback deliver_cb{this};
  network_.flush_for_merge(comp_a, deliver_cb);
  network_.flush_for_merge(comp_b, deliver_cb);
  topology_.merge(a, b);
  install_view(comp_a.united_with(comp_b));
}

void Gcs::apply_crash(ProcessId p, Network::CrossDeliveryFn crosses) {
  DV_REQUIRE(p < algorithms_.size(), "process id out of range");
  DV_REQUIRE(!crashed_.contains(p), "process is already crashed");

  const std::size_t index = topology_.component_of(p);
  const ProcessSet component = topology_.component(index);
  const ProcessSet survivors = component.minus(ProcessSet(
      topology_.universe_size(), {p}));

  // A dead process receives nothing; its own in-flight multicasts may
  // still escape to the survivors.  The lambda is a named local, so the
  // non-owning callback references stay valid for both flush calls.
  const auto deliver_fn = [this, p](ProcessId r, const Message& m,
                                    ProcessId s) {
    if (r == p) return;
    deliver(r, m, s);
  };

  const CoinCallback coin_cb{this};
  if (!survivors.empty()) {
    ProcessSet lone(topology_.universe_size());
    lone.insert(p);
    network_.flush_for_partition(
        component, survivors, lone, deliver_fn,
        crosses ? crosses : Network::CrossDeliveryFn(coin_cb));
    topology_.split(index, lone);
    install_view(survivors);
  } else {
    // Already isolated: just drop whatever it had in flight to itself.
    network_.flush_for_merge(component, deliver_fn);
  }
  crashed_.insert(p);
}

void Gcs::apply_sleep(ProcessId p) {
  // A graceful leave: the sleeper's in-flight multicasts all escape to the
  // survivors before it goes (no delivery coin).  Everything else --
  // isolation into a singleton component, the survivors' new view, joining
  // the inactive set -- is exactly the crash path.
  const auto always_crosses = [](ProcessId) { return true; };
  apply_crash(p, Network::CrossDeliveryFn(always_crosses));
}

void Gcs::apply_wake(ProcessId p, ProcessId into) {
  DV_REQUIRE(p < algorithms_.size(), "process id out of range");
  DV_REQUIRE(crashed_.contains(p), "process is not asleep");
  DV_REQUIRE(into < algorithms_.size() && !crashed_.contains(into) &&
                 into != p,
             "wake target must be a distinct active process");
  crashed_.erase(p);
  // The sleeper kept its state; it rejoins the target's component in one
  // merge, so everyone -- waker included -- sees a single join view.
  apply_merge(topology_.component_of(into), topology_.component_of(p));
}

void Gcs::apply_recovery(ProcessId p) {
  DV_REQUIRE(p < algorithms_.size(), "process id out of range");
  DV_REQUIRE(crashed_.contains(p), "process is not crashed");
  crashed_.erase(p);
  // Reconnect as a singleton: the process discovers it is alone (its state
  // survived on stable storage) and resynchronizes through later merges.
  ProcessSet lone(topology_.universe_size());
  lone.insert(p);
  install_view(lone);
}

void Gcs::save(Encoder& enc) const {
  topology_.encode(enc);
  network_.encode(enc);
  for (std::uint64_t word : delivery_rng_.state()) enc.put_u64_fixed(word);

  enc.put_varint(algorithms_.size());
  for (const auto& alg : algorithms_) {
    Encoder sub;
    alg->save(sub);
    enc.put_bytes(sub.take());
  }

  enc.put_varint(installed_views_.size());
  for (const View& v : installed_views_) v.encode(enc);
  enc.put_varint(next_view_id_);

  enc.put_varint(wire_stats_.messages_sent);
  enc.put_varint(wire_stats_.protocol_messages_sent);
  enc.put_varint(wire_stats_.max_message_bytes);
  enc.put_varint(wire_stats_.total_message_bytes);
  enc.put_varint(deliveries_);
  crashed_.encode(enc);
}

void Gcs::load(Decoder& dec) {
  Topology topo = Topology::decode(dec);
  if (topo.universe_size() != algorithms_.size()) {
    throw DecodeError("snapshot topology universe does not match this Gcs");
  }
  topology_ = std::move(topo);
  network_ = Network::decode(dec);
  std::array<std::uint64_t, 4> rng_state;
  for (std::uint64_t& word : rng_state) word = dec.get_u64_fixed();
  delivery_rng_.set_state(rng_state);

  const std::uint64_t alg_count = dec.get_varint();
  if (alg_count != algorithms_.size()) {
    throw DecodeError("snapshot algorithm count does not match this Gcs");
  }
  for (const auto& alg : algorithms_) {
    const std::vector<std::byte> bytes = dec.get_bytes();
    Decoder sub(bytes);
    alg->load(sub);
    sub.finish();
  }

  const std::uint64_t view_count = dec.get_varint();
  if (view_count != installed_views_.size()) {
    throw DecodeError("snapshot view count does not match this Gcs");
  }
  for (View& v : installed_views_) v = View::decode(dec);
  next_view_id_ = static_cast<ViewId>(dec.get_varint());

  wire_stats_.messages_sent = dec.get_varint();
  wire_stats_.protocol_messages_sent = dec.get_varint();
  wire_stats_.max_message_bytes = static_cast<std::size_t>(dec.get_varint());
  wire_stats_.total_message_bytes = dec.get_varint();
  deliveries_ = dec.get_varint();
  ProcessSet crashed = ProcessSet::decode(dec);
  if (crashed.universe_size() != algorithms_.size()) {
    throw DecodeError("snapshot crash set universe does not match this Gcs");
  }
  crashed_ = std::move(crashed);
}

bool Gcs::has_primary() const {
  for (ProcessId p = 0; p < algorithms_.size(); ++p) {
    if (!crashed_.contains(p) && algorithms_[p]->in_primary()) return true;
  }
  return false;
}

}  // namespace dynvote
