// Network topology: the partition of processes into connected components.
//
// "A connectivity change is either a network partition, where processes in
// one network component are divided into two smaller components, or a
// merge, where two components are unified to produce one" (thesis §2.2).
// The topology is pure bookkeeping -- delivery scopes and view membership
// derive from it -- and evolves independently of the algorithm under test,
// which is what lets every algorithm see the identical fault sequence.
#pragma once

#include <cstddef>
#include <vector>

#include "core/process_set.hpp"

namespace dynvote {

class Encoder;
class Decoder;

class Topology {
 public:
  /// All `universe_size` processes start mutually connected.
  explicit Topology(std::size_t universe_size);

  std::size_t universe_size() const { return universe_size_; }
  std::size_t component_count() const { return components_.size(); }
  const ProcessSet& component(std::size_t index) const;
  const std::vector<ProcessSet>& components() const { return components_; }

  /// Index of the component containing `id`.
  std::size_t component_of(ProcessId id) const;

  /// Split component `index`: `moved` (a proper non-empty subset) becomes a
  /// new component appended at the end; the remainder stays at `index`.
  void split(std::size_t index, const ProcessSet& moved);

  /// Merge component `b` into component `a` (a != b); `b` is removed and
  /// later components shift down by one.
  void merge(std::size_t a, std::size_t b);

  /// A partition is feasible iff some component has at least two members.
  bool can_partition() const;
  /// A merge is feasible iff there are at least two components.
  bool can_merge() const { return components_.size() >= 2; }

  /// Indices of components with at least two members.
  std::vector<std::size_t> splittable_components() const;

  void encode(Encoder& enc) const;
  /// Throws DecodeError if the stored components are not a disjoint cover
  /// of the universe (a corrupted or hand-edited snapshot, not a bug).
  static Topology decode(Decoder& dec);

 private:
  void check_disjoint_cover() const;

  // Encoded first in the stream; decode() restores it through the
  // Topology(universe) constructor rather than by field assignment.
  std::size_t universe_size_;  // dvlint: transient(restored via constructor)
  std::vector<ProcessSet> components_;
};

}  // namespace dynvote
