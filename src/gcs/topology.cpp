#include "gcs/topology.hpp"

#include "util/assert.hpp"
#include "util/codec.hpp"

namespace dynvote {

Topology::Topology(std::size_t universe_size)
    : universe_size_(universe_size) {
  DV_REQUIRE(universe_size >= 1, "topology needs at least one process");
  components_.push_back(ProcessSet::full(universe_size));
}

const ProcessSet& Topology::component(std::size_t index) const {
  DV_REQUIRE(index < components_.size(), "component index out of range");
  return components_[index];
}

std::size_t Topology::component_of(ProcessId id) const {
  for (std::size_t i = 0; i < components_.size(); ++i) {
    if (components_[i].contains(id)) return i;
  }
  DV_ASSERT_MSG(false, "process not in any component");
  return 0;
}

void Topology::split(std::size_t index, const ProcessSet& moved) {
  DV_REQUIRE(index < components_.size(), "component index out of range");
  ProcessSet& comp = components_[index];
  DV_REQUIRE(!moved.empty(), "split must move at least one process");
  DV_REQUIRE(moved.is_subset_of(comp), "moved set must come from the component");
  DV_REQUIRE(moved.count() < comp.count(), "split must leave a remainder");

  comp = comp.minus(moved);
  components_.push_back(moved);
  check_disjoint_cover();
}

void Topology::merge(std::size_t a, std::size_t b) {
  DV_REQUIRE(a < components_.size() && b < components_.size(),
             "component index out of range");
  DV_REQUIRE(a != b, "cannot merge a component with itself");
  components_[a] = components_[a].united_with(components_[b]);
  components_.erase(components_.begin() + static_cast<std::ptrdiff_t>(b));
  check_disjoint_cover();
}

bool Topology::can_partition() const {
  for (const ProcessSet& c : components_) {
    if (c.count() >= 2) return true;
  }
  return false;
}

std::vector<std::size_t> Topology::splittable_components() const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < components_.size(); ++i) {
    if (components_[i].count() >= 2) out.push_back(i);
  }
  return out;
}

void Topology::encode(Encoder& enc) const {
  enc.put_varint(universe_size_);
  enc.put_varint(components_.size());
  for (const ProcessSet& c : components_) c.encode(enc);
}

Topology Topology::decode(Decoder& dec) {
  const std::uint64_t universe = dec.get_varint();
  if (universe == 0 || universe > 4096) {
    throw DecodeError("implausible topology universe size");
  }
  const std::uint64_t count = dec.get_varint();
  if (count == 0 || count > universe) {
    throw DecodeError("implausible topology component count");
  }
  Topology topo(static_cast<std::size_t>(universe));
  topo.components_.clear();
  ProcessSet seen(static_cast<std::size_t>(universe));
  std::size_t total = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    ProcessSet c = ProcessSet::decode(dec);
    if (c.universe_size() != universe || c.empty() || seen.intersects(c)) {
      throw DecodeError("topology components are not disjoint");
    }
    seen = seen.united_with(c);
    total += c.count();
    topo.components_.push_back(std::move(c));
  }
  if (total != universe) {
    throw DecodeError("topology components do not cover the universe");
  }
  return topo;
}

void Topology::check_disjoint_cover() const {
  ProcessSet seen(universe_size_);
  std::size_t total = 0;
  for (const ProcessSet& c : components_) {
    DV_ASSERT_MSG(!c.empty(), "empty component");
    DV_ASSERT_MSG(!seen.intersects(c), "components overlap");
    seen = seen.united_with(c);
    total += c.count();
  }
  DV_ASSERT_MSG(total == universe_size_, "components do not cover universe");
}

}  // namespace dynvote
