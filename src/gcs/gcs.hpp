// The simulated group communication service.
//
// Plays the role Transis played for the thesis's implementation: it owns one
// algorithm instance per process, reports connectivity changes as views,
// and provides reliable multicast scoped to the sender's component.  The
// thesis's own measurements ran exactly this way -- multiple algorithm
// instances in one address space with a driver loop shuttling messages --
// because the algorithms have no inherent communication ability.
//
// A *message round* is: deliver every in-flight multicast, then poll every
// process once (offering an empty application message, per the interface
// contract).  Multi-round protocols therefore take several rounds, and a
// connectivity change injected between rounds interrupts them, which is
// the phenomenon under study.
#pragma once

#include <algorithm>
#include <cstddef>
#include <memory>
#include <vector>

#include "core/algorithm.hpp"
#include "gcs/network.hpp"
#include "gcs/topology.hpp"
#include "util/rng.hpp"

namespace dynvote {

class Encoder;
class Decoder;

struct GcsOptions {
  /// Encode each sent payload to record wire sizes (costs CPU; the
  /// availability benches leave it off, the message-size bench turns it on).
  bool measure_wire_sizes = false;
  /// Seed for the cross-side delivery coin flips made when a partition
  /// catches messages in flight.  A separate stream from the fault
  /// schedule, so the topology trajectory never depends on these draws.
  std::uint64_t delivery_seed = 0xDE11u;
  /// Serialize every multicast to bytes and parse it back before delivery,
  /// exactly as a real transport would.  Slower; simulation results are
  /// identical (the codec is lossless), which the test suite asserts --
  /// this is the end-to-end proof that the wire format carries the whole
  /// protocol.
  bool serialize_on_wire = false;
};

struct WireStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t protocol_messages_sent = 0;
  std::size_t max_message_bytes = 0;
  std::uint64_t total_message_bytes = 0;

  /// Fold another measurement in (counters add, the maximum maxes); used
  /// when aggregating per-run or per-shard measurements into a case.
  void merge(const WireStats& other) {
    messages_sent += other.messages_sent;
    protocol_messages_sent += other.protocol_messages_sent;
    max_message_bytes = std::max(max_message_bytes, other.max_message_bytes);
    total_message_bytes += other.total_message_bytes;
  }

  /// Lossless wire form (util/codec.hpp), used by fabric result frames
  /// when shard results travel back from remote workers.
  void encode_body(Encoder& enc) const;
  void decode_body(Decoder& dec);
};

class Gcs {
 public:
  /// Builds one algorithm instance per process for a well-known kind.
  Gcs(AlgorithmKind kind, std::size_t processes, GcsOptions options = {});

  /// Builds instances via a caller-supplied factory -- the hook for hosting
  /// additional algorithms (the thesis explicitly invites researchers to
  /// plug their own into the framework) and for testing the harness itself.
  using AlgorithmFactory = std::function<std::unique_ptr<PrimaryComponentAlgorithm>(
      ProcessId self, const View& initial_view)>;
  Gcs(const AlgorithmFactory& factory, std::size_t processes,
      GcsOptions options = {});

  std::size_t process_count() const { return algorithms_.size(); }
  const Topology& topology() const { return topology_; }
  const WireStats& wire_stats() const { return wire_stats_; }

  /// Total (message, recipient) deliveries made so far -- round deliveries
  /// and flush deliveries alike.  Cumulative like the wire counters; the
  /// experiment layer folds per-run deltas for the deliveries/sec
  /// telemetry.
  std::uint64_t deliveries() const { return deliveries_; }

  PrimaryComponentAlgorithm& algorithm(ProcessId id);
  const PrimaryComponentAlgorithm& algorithm(ProcessId id) const;

  /// The view currently installed at `id`.
  const View& view_of(ProcessId id) const;

  /// Execute one message round.  Returns true if any delivery or send
  /// happened (false = the system is quiescent).
  bool step_round();

  /// Partition: `moved` splits away from component `component_index`.
  /// In-flight messages of that component flush to the sender's side
  /// unconditionally and to the far side per `crosses` (default: a fair
  /// coin from the delivery stream -- the packet either escaped before the
  /// link died or it did not).  Then both sides receive new views.
  /// Directed tests pass an explicit `crosses` to script Figure 3-1-style
  /// asymmetries.
  void apply_partition(std::size_t component_index, const ProcessSet& moved,
                       Network::CrossDeliveryFn crosses = nullptr);

  /// Merge components `a` and `b`.  In-flight messages of both flush to
  /// their full old scopes, then the union receives a new view.
  void apply_merge(std::size_t a, std::size_t b);

  /// Crash a process (thesis §5.1 future work).  The process is isolated
  /// into a singleton component and stops participating: it is not polled,
  /// receives nothing, and claims nothing.  Messages it multicast before
  /// crashing may still reach the survivors (per `crosses`, defaulting to
  /// the delivery coin); messages addressed to it are lost.  The survivors
  /// receive a new view.
  void apply_crash(ProcessId p, Network::CrossDeliveryFn crosses = nullptr);

  /// Recover a crashed process with its state intact (crash-recovery with
  /// stable storage).  It rejoins as a singleton component -- receiving a
  /// singleton view -- and reconnects through ordinary merges.
  void apply_recovery(ProcessId p);

  /// Sleepy participation (TOB-SVD-style): the process leaves gracefully.
  /// Identical to a crash except that every message it had in flight
  /// escapes to the survivors (a sleeper drains its buffers; a crash loses
  /// them to the coin).  The sleeper joins the crash set -- which is
  /// therefore really the "inactive" set -- until apply_wake.
  void apply_sleep(ProcessId p);

  /// Wake a sleeping (or repaired) process: it leaves the inactive set and
  /// its singleton component merges with the component of `into`, so the
  /// whole group receives ONE join view.  Contrast apply_recovery, where
  /// the process first observes a singleton view and must be merged back
  /// explicitly.
  void apply_wake(ProcessId p, ProcessId into);

  /// Currently crashed (or sleeping -- see apply_sleep) processes.
  const ProcessSet& crashed() const { return crashed_; }
  bool is_crashed(ProcessId p) const { return crashed_.contains(p); }

  /// True when no multicast is in flight.
  bool network_idle() const { return network_.idle(); }

  /// Does any process currently consider itself in a primary component?
  /// (The invariant checker guarantees per-component agreement.)
  bool has_primary() const;

  /// Replace the delivery-coin stream with a fresh one seeded by `seed`.
  /// Used when a run adopts a shared prefix snapshot: the snapshot predates
  /// the first delivery draw (pre-fault rounds never touch the coin), so
  /// re-seeding with the adopting run's own derived stream makes its
  /// subsequent draws bit-identical to a run that never adopted.  Callers
  /// pass a child_seed()-derived value.
  // dvlint: raw-seed(caller passes its child_seed(seed, kDeliveryStreamTag))
  void reseed_delivery(std::uint64_t seed) { delivery_rng_ = Rng(seed); }

  /// Serialize the full mutable state: topology, in-flight messages, the
  /// delivery RNG, every algorithm instance (as a length-prefixed blob so
  /// framing survives algorithm changes), installed views, wire counters,
  /// and the crash set.  Constructor configuration (algorithm kind, process
  /// count, options) is NOT written; `load` restores into a Gcs built with
  /// the same configuration, which the snapshot envelope enforces.
  void save(Encoder& enc) const;
  void load(Decoder& dec);

 private:
  void install_view(const ProcessSet& members);
  void deliver(ProcessId recipient, const Message& message, ProcessId sender);
  void record_send(const Message& message);
  void measure_wire(const Message& message);

  /// Callable targets for the network's non-owning callbacks
  /// (util/function_ref.hpp).  One-word structs built as locals at each
  /// call site (so Gcs stays movable) -- constructing one is free, unlike
  /// the std::function each round used to allocate for.
  struct DeliverCallback {
    Gcs* gcs;
    void operator()(ProcessId r, const Message& m, ProcessId s) const {
      gcs->deliver(r, m, s);
    }
  };
  struct CoinCallback {
    Gcs* gcs;
    bool operator()(ProcessId /*sender*/) const {
      return gcs->delivery_rng_.chance(0.5);
    }
  };

  GcsOptions options_;  // dvlint: transient(constructor configuration)
  Topology topology_;
  Network network_;
  // dvlint: raw-seed(dead default; the constructor always reseeds it)
  Rng delivery_rng_{0xDE11u};
  std::vector<std::unique_ptr<PrimaryComponentAlgorithm>> algorithms_;
  std::vector<View> installed_views_;
  ViewId next_view_id_ = 2;  // the initial view is id 1
  WireStats wire_stats_;
  std::uint64_t deliveries_ = 0;
  ProcessSet crashed_;
};

}  // namespace dynvote
