#include "gcs/network.hpp"

#include <utility>

#include "util/assert.hpp"
#include "util/codec.hpp"

namespace dynvote {

void Network::send(ProcessId sender, ProcessSet scope, Message message) {
  DV_REQUIRE(scope.contains(sender), "sender must be inside its scope");
  in_flight_.push_back(Multicast{sender, std::move(scope), std::move(message)});
}

void Network::deliver_to(const Multicast& m, const ProcessSet& recipients,
                         DeliverFn deliver) {
  recipients.for_each(
      [&](ProcessId r) { deliver(r, m.message, m.sender); });
}

std::size_t Network::deliver_all(DeliverFn deliver) {
  // Swap out first: deliveries can trigger polls in a driver that sends new
  // messages, and those belong to the *next* round.  The batch buffer is a
  // member so its capacity survives: sends during delivery refill
  // in_flight_ (which holds last round's batch capacity), and the steady
  // state round loop never allocates.
  batch_scratch_.swap(in_flight_);
  std::size_t deliveries = 0;
  for (const Multicast& m : batch_scratch_) {
    deliver_to(m, m.scope, deliver);
    deliveries += m.scope.count();
  }
  batch_scratch_.clear();
  return deliveries;
}

void Network::flush_for_partition(const ProcessSet& component,
                                  const ProcessSet& side_a,
                                  const ProcessSet& side_b,
                                  DeliverFn deliver, CrossDeliveryFn crosses) {
  kept_scratch_.clear();
  for (Multicast& m : in_flight_) {
    if (!(m.scope == component)) {
      kept_scratch_.push_back(std::move(m));
      continue;
    }
    const bool sender_on_a = side_a.contains(m.sender);
    DV_ASSERT_MSG(sender_on_a || side_b.contains(m.sender),
                  "sender on neither side of split");
    const ProcessSet& near_side = sender_on_a ? side_a : side_b;
    const ProcessSet& far_side = sender_on_a ? side_b : side_a;
    deliver_to(m, near_side, deliver);
    if (crosses(m.sender)) deliver_to(m, far_side, deliver);
  }
  in_flight_.swap(kept_scratch_);
  kept_scratch_.clear();
}

void Network::encode(Encoder& enc) const {
  enc.put_varint(in_flight_.size());
  for (const Multicast& m : in_flight_) {
    enc.put_varint(m.sender);
    m.scope.encode(enc);
    enc.put_bytes(m.message.serialize());
  }
}

Network Network::decode(Decoder& dec) {
  const std::uint64_t count = dec.get_varint();
  if (count > 1'000'000 || count > dec.remaining()) {
    throw DecodeError("implausible in-flight count");
  }
  Network net;
  net.in_flight_.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    const ProcessId sender = static_cast<ProcessId>(dec.get_varint());
    ProcessSet scope = ProcessSet::decode(dec);
    if (!scope.contains(sender)) {
      throw DecodeError("in-flight multicast sender outside its scope");
    }
    const std::vector<std::byte> bytes = dec.get_bytes();
    net.in_flight_.push_back(
        Multicast{sender, std::move(scope), Message::parse(bytes)});
  }
  return net;
}

void Network::flush_for_merge(const ProcessSet& component, DeliverFn deliver) {
  kept_scratch_.clear();
  for (Multicast& m : in_flight_) {
    if (!(m.scope == component)) {
      kept_scratch_.push_back(std::move(m));
      continue;
    }
    deliver_to(m, m.scope, deliver);
  }
  in_flight_.swap(kept_scratch_);
  kept_scratch_.clear();
}

}  // namespace dynvote
