// In-flight message store with view-synchronous flush semantics.
//
// A multicast sent in round t is "in flight" until the start of round t+1.
// If a connectivity change hits the sender's component first, the message
// is flushed with virtual-synchrony semantics:
//
//  * partition: the message always reaches the members on the *sender's*
//    side of the split; it reaches the far side -- as a whole, so processes
//    that move to the new view together have delivered the same set of
//    messages, as Transis guarantees -- only if the caller's cross-delivery
//    policy says the packet made it out before the link died.  This is the
//    asymmetry of thesis Figure 3-1: c's attempt crosses to a and b, who
//    complete the primary {a,b,c}, while a's and b's final messages never
//    reach the detached c, which must treat {a,b,c} as ambiguous;
//  * merge: the message is delivered to the full old component before the
//    merged view is installed (a merge does not destroy connectivity).
//
// Messages in components unaffected by a change stay queued and are
// delivered normally at the next round.
#pragma once

#include <vector>

#include "core/message.hpp"
#include "core/types.hpp"
#include "util/function_ref.hpp"

namespace dynvote {

class Encoder;
class Decoder;

class Network {
 public:
  /// Called once per (message, recipient) delivery.  A non-owning reference
  /// (util/function_ref.hpp): callers keep the callable alive for the
  /// duration of the call, which every caller in the simulator does
  /// trivially -- the callbacks are locals or members of the Gcs that owns
  /// this network.
  using DeliverFn =
      FunctionRef<void(ProcessId recipient, const Message& message,
                       ProcessId sender)>;

  /// Decides, per in-flight multicast, whether it crosses to the far side
  /// of a partition before connectivity is lost.
  using CrossDeliveryFn = FunctionRef<bool(ProcessId sender)>;

  /// Queue a multicast from `sender`, scoped to its component at send time.
  void send(ProcessId sender, ProcessSet scope, Message message);

  /// Deliver every queued multicast to all processes in its scope, in send
  /// order, recipients in ascending id order.  Returns the number of
  /// deliveries made.  Not reentrant (a delivery must not call back into
  /// deliver_all; sends during delivery are fine and queue for the next
  /// round).
  std::size_t deliver_all(DeliverFn deliver);

  /// Flush messages scoped to `component` because it is about to partition
  /// into `side_a` and `side_b`: each message reaches its sender's side
  /// unconditionally and the opposite side iff `crosses(sender)`.  Other
  /// queued messages are untouched.
  void flush_for_partition(const ProcessSet& component,
                           const ProcessSet& side_a, const ProcessSet& side_b,
                           DeliverFn deliver, CrossDeliveryFn crosses);

  /// Flush messages scoped to `component` (about to merge) to their full
  /// scope.  Other queued messages are untouched.
  void flush_for_merge(const ProcessSet& component, DeliverFn deliver);

  bool idle() const { return in_flight_.empty(); }
  std::size_t in_flight_count() const { return in_flight_.size(); }

  void encode(Encoder& enc) const;
  /// Throws DecodeError on a multicast whose sender is outside its scope.
  static Network decode(Decoder& dec);

 private:
  struct Multicast {
    ProcessId sender;
    ProcessSet scope;
    Message message;
  };

  static void deliver_to(const Multicast& m, const ProcessSet& recipients,
                         DeliverFn deliver);

  std::vector<Multicast> in_flight_;
  /// Round-delivery staging: deliver_all swaps in_flight_ here so sends
  /// triggered by deliveries queue for the next round.  Keeping the buffer
  /// as a member preserves its capacity across rounds, making the steady
  /// state allocation-free.  Always empty between calls.
  std::vector<Multicast> batch_scratch_;  // dvlint: transient(empty between rounds)
  /// Same idea for the flush paths' surviving-message rebuild.
  std::vector<Multicast> kept_scratch_;  // dvlint: transient(empty between flushes)
};

}  // namespace dynvote
