#include "lint/source.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace dynvote::lint {

namespace {

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Pull every `dvlint: marker[, marker...]` out of one comment's text.
void harvest_markers(std::string_view comment, std::vector<std::string>& out) {
  static constexpr std::string_view kTag = "dvlint:";
  std::size_t at = comment.find(kTag);
  if (at == std::string_view::npos) return;
  std::size_t pos = at + kTag.size();
  while (pos < comment.size()) {
    while (pos < comment.size() &&
           (comment[pos] == ' ' || comment[pos] == ',')) {
      ++pos;
    }
    const std::size_t start = pos;
    int parens = 0;
    while (pos < comment.size()) {
      const char c = comment[pos];
      if (c == '(') ++parens;
      if (c == ')') {
        if (parens == 0) break;
        --parens;
      }
      if (parens == 0 && (c == ' ' || c == ',' || c == '\n')) break;
      ++pos;
    }
    if (pos > start) out.emplace_back(comment.substr(start, pos - start));
    // One `dvlint:` introduces one comma-separated marker list; a space
    // after a complete marker ends it (prose may follow).
    if (pos >= comment.size() || comment[pos] != ',') break;
  }
}

}  // namespace

std::size_t SourceFile::line_of(std::size_t offset) const {
  offset = std::min(offset, text.size());
  return 1 + static_cast<std::size_t>(
                 std::count(text.begin(),
                            text.begin() + static_cast<std::ptrdiff_t>(offset),
                            '\n'));
}

bool SourceFile::has_annotation(std::size_t line,
                                std::string_view marker) const {
  if (line == 0 || line > annotations.size()) return false;
  for (const std::string& m : annotations[line - 1]) {
    std::string_view got = m;
    // "transient(config)" matches marker "transient".
    if (const std::size_t paren = got.find('(');
        paren != std::string_view::npos) {
      if (got.substr(0, paren) == marker) return true;
    }
    if (got == marker) return true;
  }
  return false;
}

std::optional<std::string> SourceFile::annotation_arg(
    std::size_t line, std::string_view marker) const {
  if (line == 0 || line > annotations.size()) return std::nullopt;
  for (const std::string& m : annotations[line - 1]) {
    const std::string_view got = m;
    if (got == marker) return std::string();
    const std::size_t paren = got.find('(');
    if (paren == std::string_view::npos || got.substr(0, paren) != marker) {
      continue;
    }
    std::string_view arg = got.substr(paren + 1);
    if (!arg.empty() && arg.back() == ')') arg.remove_suffix(1);
    return std::string(arg);
  }
  return std::nullopt;
}

SourceFile load_source(const std::string& abs_path, std::string rel_path) {
  std::ifstream in(abs_path, std::ios::binary);
  if (!in) throw std::runtime_error("dvlint: cannot read " + abs_path);
  std::ostringstream buf;
  buf << in.rdbuf();

  SourceFile file;
  file.rel_path = std::move(rel_path);
  file.text = std::move(buf).str();
  file.code = file.text;
  const std::size_t line_count =
      1 + static_cast<std::size_t>(
              std::count(file.text.begin(), file.text.end(), '\n'));
  file.annotations.resize(line_count);

  // Per-line scratch: markers found in comments on that line, and whether
  // the line held nothing but comment/whitespace (then markers also cover
  // the next line).
  std::vector<std::vector<std::string>> line_markers(line_count);
  std::vector<bool> line_has_code(line_count, false);

  std::string& code = file.code;
  const std::string& text = file.text;
  std::size_t line = 0;  // 0-based while scanning
  std::size_t i = 0;
  const std::size_t n = text.size();

  auto blank = [&](std::size_t at) {
    if (code[at] != '\n') code[at] = ' ';
  };

  // Length of the optional encoding prefix plus `R` when a raw string
  // literal (`R"delim(...)delim"`, possibly `u8R`/`uR`/`UR`/`LR`) starts at
  // `at`; 0 otherwise.  The returned count excludes the opening quote.
  auto raw_prefix_len = [&](std::size_t at) -> std::size_t {
    std::size_t p = at;
    if (p < n && (text[p] == 'u' || text[p] == 'U' || text[p] == 'L')) {
      if (text[p] == 'u' && p + 1 < n && text[p + 1] == '8') ++p;
      ++p;
    }
    if (p >= n || text[p] != 'R') return 0;
    ++p;
    if (p >= n || text[p] != '"') return 0;
    return p - at;
  };

  while (i < n) {
    const char c = text[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (c == '/' && i + 1 < n && text[i + 1] == '/') {
      // A `//` comment, including backslash-continued follow-on lines (the
      // continuation swallows the next physical line into the comment).
      const std::size_t start = i;
      const std::size_t first_line = line;
      while (i < n) {
        if (text[i] == '\n') {
          if (text[i - 1] != '\\') break;
          ++line;
          ++i;
          continue;
        }
        blank(i++);
      }
      harvest_markers(std::string_view(text).substr(start, i - start),
                      line_markers[first_line]);
      continue;
    }
    if (c == '/' && i + 1 < n && text[i + 1] == '*') {
      const std::size_t start = i;
      blank(i++);
      blank(i++);
      while (i + 1 < n && !(text[i] == '*' && text[i + 1] == '/')) {
        if (text[i] == '\n') ++line;
        blank(i++);
      }
      if (i + 1 < n) {
        blank(i++);
        blank(i++);
      }
      harvest_markers(std::string_view(text).substr(start, i - start),
                      line_markers[std::min(line, line_count - 1)]);
      continue;
    }
    if (c == '#' && !line_has_code[line]) {
      // Preprocessor directive.  All directives are blanked (continuation
      // aware) except #include, whose quoted path the include scanner reads
      // back out of `code`.
      std::size_t d = i + 1;
      while (d < n && (text[d] == ' ' || text[d] == '\t')) ++d;
      const bool is_include = text.compare(d, 7, "include") == 0;
      line_has_code[line] = true;
      if (!is_include) {
        while (i < n) {
          if (text[i] == '\n') {
            if (text[i - 1] != '\\') break;
            ++line;
            ++i;
            continue;
          }
          blank(i++);
        }
        continue;
      }
      ++i;
      continue;
    }
    if ((c == 'R' || c == 'u' || c == 'U' || c == 'L') &&
        (i == 0 || !ident_char(text[i - 1]))) {
      if (const std::size_t pre = raw_prefix_len(i); pre != 0) {
        // Raw string literal: find the matching `)delim"` and blank the
        // whole literal, prefix and quotes included, preserving newlines.
        line_has_code[line] = true;
        const std::size_t quote = i + pre;  // index of the opening '"'
        std::size_t d = quote + 1;
        while (d < n && text[d] != '(' && text[d] != '"' && text[d] != '\n' &&
               d - quote <= 17) {
          ++d;
        }
        if (d < n && text[d] == '(') {
          std::string close_seq = ")";
          close_seq += text.substr(quote + 1, d - quote - 1);
          close_seq += '"';
          std::size_t end = text.find(close_seq, d + 1);
          end = end == std::string::npos ? n : end + close_seq.size();
          while (i < end) {
            if (text[i] == '\n') ++line;
            blank(i++);
          }
          continue;
        }
      }
    }
    if (c == '"' || c == '\'') {
      const char quote = c;
      line_has_code[line] = true;
      blank(i++);
      while (i < n && text[i] != quote) {
        if (text[i] == '\\' && i + 1 < n) blank(i++);
        if (text[i] == '\n') ++line;  // unterminated literal; keep lines sane
        blank(i++);
      }
      if (i < n) blank(i++);
      continue;
    }
    if (!std::isspace(static_cast<unsigned char>(c))) line_has_code[line] = true;
    ++i;
  }

  for (std::size_t l = 0; l < line_count; ++l) {
    for (const std::string& m : line_markers[l]) {
      file.annotations[l].push_back(m);
      // A comment-only line annotates the following line too.
      if (!line_has_code[l] && l + 1 < line_count) {
        file.annotations[l + 1].push_back(m);
      }
    }
  }
  return file;
}

std::vector<Token> tokenize(std::string_view code) {
  std::vector<Token> tokens;
  std::size_t i = 0;
  const std::size_t n = code.size();
  while (i < n) {
    const char c = code[i];
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }
    if (ident_char(c)) {
      const std::size_t start = i;
      while (i < n && ident_char(code[i])) ++i;
      tokens.push_back(Token{code.substr(start, i - start), start});
      continue;
    }
    if (c == ':' && i + 1 < n && code[i + 1] == ':') {
      tokens.push_back(Token{code.substr(i, 2), i});
      i += 2;
      continue;
    }
    tokens.push_back(Token{code.substr(i, 1), i});
    ++i;
  }
  return tokens;
}

}  // namespace dynvote::lint
