// dvlint: a repo-aware static checker for the dynvote codebase.
//
// The sharded-sweep design rests on two invariants nothing in the compiler
// enforces: snapshots must be *complete* (every mutable field of every
// save/load class round-trips) and simulation results must be
// *bit-deterministic* (no unseeded randomness, no wall-clock input, no
// hash-order iteration feeding stats or fingerprints).  dvlint checks both
// statically -- plus the include-layering DAG -- with a lightweight lexer
// over the repo's own sources; no libclang, no build required.
//
// Defect classes (check ids):
//   snapshot-completeness  a class with save/load (or encode/decode,
//                          save_extra/load_extra, encode_body/decode_body)
//                          has a declared member field that the save-side
//                          or load-side bodies never reference.  Opt-out:
//                          annotate the field `// dvlint: transient(why)`.
//   determinism            unseeded randomness (rand, srand, drand48,
//                          random_device), wall-clock reads (time(),
//                          system_clock, gettimeofday, localtime),
//                          pointer-keyed ordered containers, or range-for
//                          iteration over an unordered_map/unordered_set in
//                          result-affecting directories (core, gcs, sim,
//                          runner, fabric).  Opt-out: `// dvlint:
//                          unordered-ok` for provably order-insensitive
//                          folds.
//   layering               an include that climbs the DAG (util < obs <
//                          core < gcs < sim < runner < fabric < lint);
//                          e.g. core including sim, sim including runner,
//                          obs including core, or anything in src
//                          including bench.  The observability layer sits
//                          just above util so core/gcs/sim may emit
//                          metrics and trace events, never the reverse.
//   decode-throw           a load-side body (load, load_extra, decode,
//                          decode_body) uses DV_ASSERT/DV_REQUIRE instead
//                          of throwing DecodeError: malformed snapshot
//                          bytes are input errors, never assertions.
//   atomic-fold            a merge/fold method body in a result-affecting
//                          directory reads a std::atomic field.  Shard
//                          results fold after a join barrier, at which
//                          point every counter is a plain value; reading
//                          a live atomic inside the fold suggests it races
//                          its writers.  Opt-out: `// dvlint:
//                          ignore(atomic-fold)` where the caller
//                          establishes the barrier.
//   format-migration       a field the save side writes only under an
//                          envelope-version gate (`if (version >= N)`) was
//                          added to the format after v1, but a load-side
//                          body reads it outside any such gate.  Older
//                          writers never produced those bytes: the ungated
//                          read desynchronizes the stream for every field
//                          after it.  The `else` branch of a gate counts as
//                          gated (defaulting the field for old writers is
//                          the correct migration shape).
//   guarded-by             a field or local annotated `// dvlint:
//                          guarded_by(<mutex>)` is touched outside a scope
//                          holding a lock_guard/unique_lock/scoped_lock on
//                          that mutex.  The walk is flow-aware (mid-scope
//                          .unlock()/.lock(), std::defer_lock) and honors
//                          `// dvlint: requires_lock(<mutex>)` contracts on
//                          helpers whose caller holds the lock.  Opt-out:
//                          `// dvlint: ignore(guarded-by)` on a line or a
//                          scope header (e.g. post-join/post-barrier code).
//   protocol-exhaustiveness  a switch over an enum annotated `// dvlint:
//                          wire_enum` misses an enumerator, or hides new
//                          ones behind a non-throwing `default:`.  Adding a
//                          frame type must fail lint until every switch
//                          handles it; a default that throws (the decoder's
//                          unknown-byte rejection) stays legal.
//   rng-stream-discipline  a `child_seed(seed, tag)` call whose tag is not
//                          a named `k*StreamTag` registry constant, two
//                          registry tags sharing a value, or an Rng seeded
//                          from a raw expression in a result-affecting
//                          path.  Opt-out for pinned raw seeds (the
//                          geometric schedule baselines): `// dvlint:
//                          raw-seed(why)`.
//   bounded-decode         a decode path reserve()s/resize()s from a
//                          decoded count without first bounding it by the
//                          decoder's remaining bytes; a hostile length
//                          prefix must fail fast, not allocate.
//   trace-purity           an argument of a DV_OBS_* / DV_TRACE_* emission
//                          macro in a result-affecting directory draws
//                          randomness (rng, child_seed, ...) or mutates
//                          state (assignment, ++/--, push_back/erase/...).
//                          Observation must be a pure read: an emission
//                          site that perturbs the RNG stream or the world
//                          changes results when tracing toggles, breaking
//                          the fingerprint-parity guarantee.  Opt-out:
//                          `// dvlint: ignore(trace-purity)`.
//
// Any finding can also be silenced with `// dvlint: ignore(<check-id>)` on
// (or immediately above) the offending line, or via a suppression file of
// `<check-id> <path-suffix>[:<line>]` lines.  Output is deterministic:
// findings sort by (file, line, check, detail) so CI diffs are stable.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

namespace dynvote::lint {

enum class CheckId {
  kSnapshotCompleteness,
  kDeterminism,
  kLayering,
  kDecodeThrow,
  kAtomicFold,
  kFormatMigration,
  kGuardedBy,
  kProtocolExhaustiveness,
  kRngStream,
  kBoundedDecode,
  kTracePurity,
};

/// Stable kebab-case name used in output, annotations and suppressions.
std::string_view to_string(CheckId check);

/// Catalogue entry for one check, for --list-checks and SARIF rules.
struct CheckInfo {
  CheckId id = CheckId::kSnapshotCompleteness;
  std::string_view name;
  std::string_view summary;
};

/// Every check, in CheckId order.
std::span<const CheckInfo> all_checks();

/// Resolve a kebab-case check name; nullopt for unknown names.
std::optional<CheckId> check_from_string(std::string_view name);

struct Finding {
  CheckId check = CheckId::kSnapshotCompleteness;
  /// Path relative to the scanned root, forward slashes.
  std::string file;
  std::size_t line = 0;
  /// The specific entity at fault (field name, include path, token).
  std::string detail;
  std::string message;

  friend bool operator<(const Finding& a, const Finding& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    if (a.check != b.check) return a.check < b.check;
    return a.detail < b.detail;
  }
  friend bool operator==(const Finding& a, const Finding& b) = default;
};

struct Suppression {
  std::string check;  // check id name, or "*" for any
  std::string path_suffix;
  /// 0 = any line.
  std::size_t line = 0;
};

struct LintOptions {
  /// Directory scanned recursively for .hpp/.cpp files.
  std::string root;
  std::vector<Suppression> suppressions;
  /// When engaged, findings are reported only for these root-relative
  /// paths (forward slashes).  The whole tree is still parsed, so
  /// cross-file context (guarded fields, tag registries, method bodies in
  /// other files) is identical to a full run: a restricted report is
  /// exactly the full report filtered to these files.
  std::optional<std::vector<std::string>> only_files;
  /// When non-empty, findings from checks outside this set are dropped.
  std::vector<CheckId> checks;
};

struct LintReport {
  std::vector<Finding> findings;   // sorted, post-suppression
  std::size_t files_scanned = 0;
  std::size_t suppressed = 0;
};

/// Parse a suppression file (`# comments`, `<check> <suffix>[:line]`).
/// Throws std::runtime_error on unreadable files or malformed lines.
std::vector<Suppression> load_suppressions(const std::string& path);

/// Run every check over `options.root`.  Throws std::runtime_error when the
/// root does not exist or a source file cannot be read.
LintReport run_lint(const LintOptions& options);

/// Human-readable rendering, one line per finding plus a summary line.
std::string render_text(const LintReport& report);

/// Machine-readable rendering (schema "dynvote.dvlint.v1").
std::string render_json(const LintReport& report, const std::string& root);

/// SARIF 2.1.0 rendering (one run, every check as a reporting rule), for
/// code-scanning upload and editor integrations.
std::string render_sarif(const LintReport& report, const std::string& root);

}  // namespace dynvote::lint
