// dvlint: a repo-aware static checker for the dynvote codebase.
//
// The sharded-sweep design rests on two invariants nothing in the compiler
// enforces: snapshots must be *complete* (every mutable field of every
// save/load class round-trips) and simulation results must be
// *bit-deterministic* (no unseeded randomness, no wall-clock input, no
// hash-order iteration feeding stats or fingerprints).  dvlint checks both
// statically -- plus the include-layering DAG -- with a lightweight lexer
// over the repo's own sources; no libclang, no build required.
//
// Defect classes (check ids):
//   snapshot-completeness  a class with save/load (or encode/decode,
//                          save_extra/load_extra, encode_body/decode_body)
//                          has a declared member field that the save-side
//                          or load-side bodies never reference.  Opt-out:
//                          annotate the field `// dvlint: transient(why)`.
//   determinism            unseeded randomness (rand, srand, drand48,
//                          random_device), wall-clock reads (time(),
//                          system_clock, gettimeofday, localtime),
//                          pointer-keyed ordered containers, or range-for
//                          iteration over an unordered_map/unordered_set in
//                          result-affecting directories (core, gcs, sim,
//                          runner, fabric).  Opt-out: `// dvlint:
//                          unordered-ok` for provably order-insensitive
//                          folds.
//   layering               an include that climbs the DAG (util < core <
//                          gcs < sim < runner < fabric < lint); e.g. core
//                          including sim, sim including runner, or
//                          anything in src including bench.
//   decode-throw           a load-side body (load, load_extra, decode,
//                          decode_body) uses DV_ASSERT/DV_REQUIRE instead
//                          of throwing DecodeError: malformed snapshot
//                          bytes are input errors, never assertions.
//   atomic-fold            a merge/fold method body in a result-affecting
//                          directory reads a std::atomic field.  Shard
//                          results fold after a join barrier, at which
//                          point every counter is a plain value; reading
//                          a live atomic inside the fold suggests it races
//                          its writers.  Opt-out: `// dvlint:
//                          ignore(atomic-fold)` where the caller
//                          establishes the barrier.
//   format-migration       a field the save side writes only under an
//                          envelope-version gate (`if (version >= N)`) was
//                          added to the format after v1, but a load-side
//                          body reads it outside any such gate.  Older
//                          writers never produced those bytes: the ungated
//                          read desynchronizes the stream for every field
//                          after it.  The `else` branch of a gate counts as
//                          gated (defaulting the field for old writers is
//                          the correct migration shape).
//
// Any finding can also be silenced with `// dvlint: ignore(<check-id>)` on
// (or immediately above) the offending line, or via a suppression file of
// `<check-id> <path-suffix>[:<line>]` lines.  Output is deterministic:
// findings sort by (file, line, check, detail) so CI diffs are stable.
#pragma once

#include <string>
#include <vector>

namespace dynvote::lint {

enum class CheckId {
  kSnapshotCompleteness,
  kDeterminism,
  kLayering,
  kDecodeThrow,
  kAtomicFold,
  kFormatMigration,
};

/// Stable kebab-case name used in output, annotations and suppressions.
std::string_view to_string(CheckId check);

struct Finding {
  CheckId check = CheckId::kSnapshotCompleteness;
  /// Path relative to the scanned root, forward slashes.
  std::string file;
  std::size_t line = 0;
  /// The specific entity at fault (field name, include path, token).
  std::string detail;
  std::string message;

  friend bool operator<(const Finding& a, const Finding& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    if (a.check != b.check) return a.check < b.check;
    return a.detail < b.detail;
  }
  friend bool operator==(const Finding& a, const Finding& b) = default;
};

struct Suppression {
  std::string check;  // check id name, or "*" for any
  std::string path_suffix;
  /// 0 = any line.
  std::size_t line = 0;
};

struct LintOptions {
  /// Directory scanned recursively for .hpp/.cpp files.
  std::string root;
  std::vector<Suppression> suppressions;
};

struct LintReport {
  std::vector<Finding> findings;   // sorted, post-suppression
  std::size_t files_scanned = 0;
  std::size_t suppressed = 0;
};

/// Parse a suppression file (`# comments`, `<check> <suffix>[:line]`).
/// Throws std::runtime_error on unreadable files or malformed lines.
std::vector<Suppression> load_suppressions(const std::string& path);

/// Run every check over `options.root`.  Throws std::runtime_error when the
/// root does not exist or a source file cannot be read.
LintReport run_lint(const LintOptions& options);

/// Human-readable rendering, one line per finding plus a summary line.
std::string render_text(const LintReport& report);

/// Machine-readable rendering (schema "dynvote.dvlint.v1").
std::string render_json(const LintReport& report, const std::string& root);

}  // namespace dynvote::lint
