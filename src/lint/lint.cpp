#include "lint/lint.hpp"

#include <algorithm>
#include <array>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <span>
#include <sstream>
#include <stdexcept>

#include "lint/parse.hpp"
#include "lint/source.hpp"
#include "util/json.hpp"

namespace dynvote::lint {

namespace fs = std::filesystem;

std::string_view to_string(CheckId check) {
  switch (check) {
    case CheckId::kSnapshotCompleteness:
      return "snapshot-completeness";
    case CheckId::kDeterminism:
      return "determinism";
    case CheckId::kLayering:
      return "layering";
    case CheckId::kDecodeThrow:
      return "decode-throw";
    case CheckId::kAtomicFold:
      return "atomic-fold";
    case CheckId::kFormatMigration:
      return "format-migration";
  }
  return "unknown";
}

namespace {

// ---------------------------------------------------------------------------
// Shared helpers

constexpr std::array<std::string_view, 4> kSaveSideMethods = {
    "save", "save_extra", "encode", "encode_body"};
constexpr std::array<std::string_view, 4> kLoadSideMethods = {
    "load", "load_extra", "decode", "decode_body"};

/// Directory rank in the include DAG; higher may include lower, never the
/// reverse.  Unknown directories have no rank and are exempt.
int layer_rank(std::string_view dir) {
  if (dir == "util") return 0;
  if (dir == "core") return 1;
  if (dir == "gcs") return 2;
  if (dir == "sim") return 3;
  if (dir == "runner") return 4;
  if (dir == "fabric") return 5;
  if (dir == "lint") return 6;
  return -1;
}

/// Directories whose code feeds simulation results, stats folds, or the
/// manifest fingerprint -- where determinism hygiene is enforced.  The
/// fabric qualifies: its merge order and wire round-trips are exactly what
/// the bit-identical-fingerprint guarantee rests on.
bool result_affecting(std::string_view dir) {
  return dir == "core" || dir == "gcs" || dir == "sim" || dir == "runner" ||
         dir == "fabric";
}

std::string_view top_dir(std::string_view rel_path) {
  const std::size_t slash = rel_path.find('/');
  return slash == std::string_view::npos ? std::string_view{}
                                         : rel_path.substr(0, slash);
}

bool ignored(const SourceFile& file, std::size_t line, CheckId check) {
  std::string needle = "ignore(";
  needle += to_string(check);
  needle += ')';
  return file.has_annotation(line, needle);
}

struct BodyRef {
  const SourceFile* file = nullptr;
  MethodBody body;
};

/// All bodies of `cls`'s method `method`, inline or out-of-line, anywhere
/// in the scanned tree.
void collect_bodies(const std::vector<ParsedFile>& files,
                    const std::string& cls, std::string_view method,
                    std::vector<BodyRef>& out) {
  const std::pair<std::string, std::string> key{cls, std::string(method)};
  for (const ParsedFile& pf : files) {
    for (const auto* table : {&pf.inline_bodies, &pf.out_of_line}) {
      const auto it = table->find(key);
      if (it == table->end()) continue;
      for (const MethodBody& b : it->second) {
        out.push_back(BodyRef{pf.source, b});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Check 1: snapshot completeness

void check_snapshot_completeness(const std::vector<ParsedFile>& files,
                                 std::vector<Finding>& findings) {
  for (const ParsedFile& pf : files) {
    for (const ClassDecl& cls : pf.classes) {
      if (cls.fields.empty()) continue;

      struct Side {
        std::string_view label;
        std::span<const std::string_view> methods;
        std::vector<BodyRef> bodies;
        std::set<std::string_view> idents;
      };
      Side sides[2] = {
          {"save path (save/encode)", kSaveSideMethods, {}, {}},
          {"load path (load/decode)", kLoadSideMethods, {}, {}},
      };
      for (Side& side : sides) {
        for (std::string_view m : side.methods) {
          collect_bodies(files, cls.name, m, side.bodies);
        }
        for (const BodyRef& ref : side.bodies) {
          const std::string_view body =
              std::string_view(ref.file->code)
                  .substr(ref.body.begin, ref.body.end - ref.body.begin);
          for (const Token& t : tokenize(body)) {
            if (t.is_ident()) side.idents.insert(t.text);
          }
        }
      }
      if (sides[0].bodies.empty() && sides[1].bodies.empty()) continue;

      for (const FieldDecl& field : cls.fields) {
        if (pf.source->has_annotation(field.line, "transient")) continue;
        if (ignored(*pf.source, field.line, CheckId::kSnapshotCompleteness)) {
          continue;
        }
        for (const Side& side : sides) {
          if (side.bodies.empty()) continue;
          if (side.idents.count(field.name) > 0) continue;
          Finding f;
          f.check = CheckId::kSnapshotCompleteness;
          f.file = pf.source->rel_path;
          f.line = field.line;
          f.detail = field.name;
          f.message = "class " + cls.name + ": field '" + field.name +
                      "' is never referenced by the " + std::string(side.label) +
                      "; serialize it or annotate it '// dvlint: "
                      "transient(reason)'";
          findings.push_back(std::move(f));
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Check 6: format migration discipline
//
// A field the save side writes only under an envelope-version gate
// (`if (version >= N) { ... }`) was added to the format after v1.  The
// load side must read it under a gate too: an ungated read consumes bytes
// that older writers never produced, desynchronizing the stream for every
// field that follows.  The `else` branch of a gate counts as gated --
// defaulting the field for pre-gate writers is the correct migration shape.

struct GatedRange {
  std::size_t begin = 0;
  std::size_t end = 0;
};

bool in_gated_range(const std::vector<GatedRange>& ranges,
                    std::size_t offset) {
  for (const GatedRange& r : ranges) {
    if (offset >= r.begin && offset < r.end) return true;
  }
  return false;
}

/// Byte ranges of `body` inside `if (<condition naming a *version*
/// identifier>) { ... } [else { ... }]` statements.  Braceless gates are
/// not recognized (the repo style always braces); chained `else if` gates
/// are picked up as their own `if`.
std::vector<GatedRange> version_gated_ranges(std::string_view body) {
  std::vector<GatedRange> ranges;
  const std::vector<Token> tokens = tokenize(body);
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    if (tokens[i].text != "if" || i + 1 >= tokens.size() ||
        tokens[i + 1].text != "(") {
      continue;
    }
    // Walk the condition; a gate names the envelope version.
    bool versioned = false;
    int depth = 0;
    std::size_t j = i + 1;
    for (; j < tokens.size(); ++j) {
      if (tokens[j].text == "(") ++depth;
      if (tokens[j].text == ")" && --depth == 0) break;
      if (tokens[j].is_ident() &&
          tokens[j].text.find("version") != std::string_view::npos) {
        versioned = true;
      }
    }
    if (!versioned || j + 1 >= tokens.size() ||
        tokens[j + 1].text != "{") {
      continue;
    }
    const std::size_t open = tokens[j + 1].offset;
    const std::size_t close = match_brace(body, open);
    if (close == std::string_view::npos) continue;
    ranges.push_back(GatedRange{open + 1, close});
    // Fold a chained `else { ... }` into the gate.  (`else if` falls
    // through to the next iteration as its own gate.)
    std::size_t k = j + 2;
    while (k < tokens.size() && tokens[k].offset <= close) ++k;
    if (k < tokens.size() && tokens[k].text == "else" &&
        k + 1 < tokens.size() && tokens[k + 1].text == "{") {
      const std::size_t else_open = tokens[k + 1].offset;
      const std::size_t else_close = match_brace(body, else_open);
      if (else_close != std::string_view::npos) {
        ranges.push_back(GatedRange{else_open + 1, else_close});
      }
    }
  }
  return ranges;
}

void check_format_migration(const std::vector<ParsedFile>& files,
                            std::vector<Finding>& findings) {
  for (const ParsedFile& pf : files) {
    for (const ClassDecl& cls : pf.classes) {
      if (cls.fields.empty()) continue;

      std::vector<BodyRef> save_bodies;
      std::vector<BodyRef> load_bodies;
      for (std::string_view m : kSaveSideMethods) {
        collect_bodies(files, cls.name, m, save_bodies);
      }
      for (std::string_view m : kLoadSideMethods) {
        collect_bodies(files, cls.name, m, load_bodies);
      }
      if (save_bodies.empty() || load_bodies.empty()) continue;

      // Fields whose save-side references all sit inside version gates --
      // i.e. fields added to the format after v1.
      std::set<std::string_view> gated_fields;
      std::set<std::string_view> ungated_fields;
      for (const BodyRef& ref : save_bodies) {
        const std::string_view body =
            std::string_view(ref.file->code)
                .substr(ref.body.begin, ref.body.end - ref.body.begin);
        const std::vector<GatedRange> gates = version_gated_ranges(body);
        for (const Token& t : tokenize(body)) {
          if (!t.is_ident()) continue;
          if (in_gated_range(gates, t.offset)) {
            gated_fields.insert(t.text);
          } else {
            ungated_fields.insert(t.text);
          }
        }
      }

      for (const FieldDecl& field : cls.fields) {
        if (gated_fields.count(field.name) == 0 ||
            ungated_fields.count(field.name) > 0) {
          continue;
        }
        // A migration field: every load-side reference must be gated.
        for (const BodyRef& ref : load_bodies) {
          const std::string_view body =
              std::string_view(ref.file->code)
                  .substr(ref.body.begin, ref.body.end - ref.body.begin);
          const std::vector<GatedRange> gates = version_gated_ranges(body);
          for (const Token& t : tokenize(body)) {
            if (!t.is_ident() || t.text != field.name) continue;
            if (in_gated_range(gates, t.offset)) continue;
            const std::size_t line =
                ref.file->line_of(ref.body.begin + t.offset);
            if (ignored(*ref.file, line, CheckId::kFormatMigration)) {
              continue;
            }
            Finding f;
            f.check = CheckId::kFormatMigration;
            f.file = ref.file->rel_path;
            f.line = line;
            f.detail = field.name;
            f.message =
                "class " + cls.name + ": field '" + field.name +
                "' is written only under an envelope-version gate but read "
                "here unconditionally; older writers never produced these "
                "bytes -- gate the read on the same version (an `else` "
                "branch may default it)";
            findings.push_back(std::move(f));
          }
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Check 4 (rides on the same machinery): decode paths must throw DecodeError

void check_decode_throw(const std::vector<ParsedFile>& files,
                        std::vector<Finding>& findings) {
  for (const ParsedFile& pf : files) {
    for (const ClassDecl& cls : pf.classes) {
      std::vector<BodyRef> bodies;
      for (std::string_view m : kLoadSideMethods) {
        collect_bodies(files, cls.name, m, bodies);
      }
      for (const BodyRef& ref : bodies) {
        const std::string_view body =
            std::string_view(ref.file->code)
                .substr(ref.body.begin, ref.body.end - ref.body.begin);
        for (const Token& t : tokenize(body)) {
          if (t.text != "DV_ASSERT" && t.text != "DV_REQUIRE") continue;
          const std::size_t line = ref.file->line_of(ref.body.begin + t.offset);
          if (ignored(*ref.file, line, CheckId::kDecodeThrow)) continue;
          Finding f;
          f.check = CheckId::kDecodeThrow;
          f.file = ref.file->rel_path;
          f.line = line;
          f.detail = std::string(t.text);
          f.message = "class " + cls.name + ": snapshot decode path uses " +
                      std::string(t.text) +
                      "; malformed bytes are input errors -- throw "
                      "DecodeError instead";
          findings.push_back(std::move(f));
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Check 2: determinism hygiene

constexpr std::array<std::string_view, 9> kRandomnessTokens = {
    "rand",         "srand",
    "drand48",      "random_device",
    "mt19937",      "mt19937_64",
    "minstd_rand",  "default_random_engine",
    "random_shuffle"};

constexpr std::array<std::string_view, 4> kWallClockTokens = {
    "system_clock", "gettimeofday", "localtime", "strftime"};

constexpr std::array<std::string_view, 6> kOrderedByKey = {
    "map", "set", "multimap", "multiset", "unordered_map", "unordered_set"};

void check_determinism(const std::vector<ParsedFile>& files,
                       std::vector<Finding>& findings) {
  // Unordered container names are collected repo-wide: a member declared in
  // a header is iterated from the implementation file.
  std::set<std::string> unordered;
  for (const ParsedFile& pf : files) {
    unordered.insert(pf.unordered_names.begin(), pf.unordered_names.end());
    for (const ClassDecl& cls : pf.classes) {
      for (const FieldDecl& field : cls.fields) {
        if (field.unordered) unordered.insert(field.name);
      }
    }
  }

  for (const ParsedFile& pf : files) {
    if (!result_affecting(top_dir(pf.source->rel_path))) continue;
    const SourceFile& src = *pf.source;
    const std::vector<Token> tokens = tokenize(src.code);

    auto flag = [&](std::size_t offset, std::string detail,
                    std::string message) {
      const std::size_t line = src.line_of(offset);
      if (ignored(src, line, CheckId::kDeterminism)) return;
      Finding f;
      f.check = CheckId::kDeterminism;
      f.file = src.rel_path;
      f.line = line;
      f.detail = std::move(detail);
      f.message = std::move(message);
      findings.push_back(std::move(f));
    };

    for (std::size_t i = 0; i < tokens.size(); ++i) {
      const std::string_view t = tokens[i].text;
      const bool called =
          i + 1 < tokens.size() && tokens[i + 1].text == "(";
      // `x.time(...)` / `x->clock(...)` are member calls, not libc.
      const bool member_access = i > 0 && (tokens[i - 1].text == "." ||
                                           (tokens[i - 1].text == ">" &&
                                            i > 1 && tokens[i - 2].text == "-"));

      if (std::find(kRandomnessTokens.begin(), kRandomnessTokens.end(), t) !=
              kRandomnessTokens.end() &&
          !member_access) {
        flag(tokens[i].offset, std::string(t),
             "unseeded/non-portable randomness '" + std::string(t) +
                 "' in a result-affecting path; draw from util/rng.hpp "
                 "(seeded, cross-platform) instead");
        continue;
      }
      if (std::find(kWallClockTokens.begin(), kWallClockTokens.end(), t) !=
              kWallClockTokens.end() ||
          ((t == "time" || t == "clock") && called && !member_access)) {
        flag(tokens[i].offset, std::string(t),
             "wall-clock read '" + std::string(t) +
                 "' in a result-affecting path; results must be a pure "
                 "function of the seed");
        continue;
      }
      // Pointer-keyed ordering: std::map/set & friends keyed on a pointer
      // type order by address, which varies run to run.
      if (std::find(kOrderedByKey.begin(), kOrderedByKey.end(), t) !=
              kOrderedByKey.end() &&
          i > 0 && tokens[i - 1].text == "::" && i + 1 < tokens.size() &&
          tokens[i + 1].text == "<") {
        int angle = 0;
        for (std::size_t j = i + 1; j < tokens.size(); ++j) {
          const std::string_view u = tokens[j].text;
          if (u == "<") ++angle;
          if (u == ">" && --angle == 0) break;
          if (u == "," && angle == 1) break;  // end of the key type
          if (u == "*" && angle >= 1) {
            flag(tokens[i].offset, std::string(t),
                 "pointer-keyed std::" + std::string(t) +
                     " orders by address, which varies across runs; key on "
                     "a stable id instead");
            break;
          }
        }
        continue;
      }
    }

    for (const RangeFor& rf : pf.range_fors) {
      if (unordered.count(rf.container) == 0) continue;
      if (src.has_annotation(rf.line, "unordered-ok")) continue;
      if (ignored(src, rf.line, CheckId::kDeterminism)) continue;
      Finding f;
      f.check = CheckId::kDeterminism;
      f.file = src.rel_path;
      f.line = rf.line;
      f.detail = rf.container;
      f.message =
          "iteration over unordered container '" + rf.container +
          "' in a result-affecting path visits elements in hash order; use "
          "an ordered container or sort first (annotate '// dvlint: "
          "unordered-ok' only for provably order-insensitive folds)";
      findings.push_back(std::move(f));
    }
  }
}

// ---------------------------------------------------------------------------
// Check 5: atomic counters read inside stats folds
//
// Sharded sweeps fold per-shard counters after the worker pool joins; by
// that point every counter the fold reads is a plain value.  A merge/fold
// body reading a std::atomic field suggests the fold runs concurrently with
// the counter's writers -- exactly the cross-shard race the barrier exists
// to rule out -- or that a counter which never needed atomicity is paying
// for it on the hot path.

void check_atomic_fold(const std::vector<ParsedFile>& files,
                       std::vector<Finding>& findings) {
  // Atomic field names are collected repo-wide, like unordered ones: a
  // member declared in a header is read from the implementation file.
  std::set<std::string, std::less<>> atomic_fields;
  for (const ParsedFile& pf : files) {
    for (const ClassDecl& cls : pf.classes) {
      for (const FieldDecl& field : cls.fields) {
        if (field.atomic) atomic_fields.insert(field.name);
      }
    }
  }
  if (atomic_fields.empty()) return;

  for (const ParsedFile& pf : files) {
    if (!result_affecting(top_dir(pf.source->rel_path))) continue;
    const SourceFile& src = *pf.source;
    for (const auto* table : {&pf.inline_bodies, &pf.out_of_line}) {
      for (const auto& [key, bodies] : *table) {
        const std::string& method = key.second;
        if (method.find("merge") == std::string::npos &&
            method.find("fold") == std::string::npos) {
          continue;
        }
        for (const MethodBody& body : bodies) {
          const std::string_view text =
              std::string_view(src.code)
                  .substr(body.begin, body.end - body.begin);
          for (const Token& t : tokenize(text)) {
            if (!t.is_ident() || atomic_fields.count(t.text) == 0) continue;
            const std::size_t line = src.line_of(body.begin + t.offset);
            if (ignored(src, line, CheckId::kAtomicFold)) continue;
            Finding f;
            f.check = CheckId::kAtomicFold;
            f.file = src.rel_path;
            f.line = line;
            f.detail = std::string(t.text);
            f.message =
                "stats fold '" + key.first + "::" + method +
                "' reads std::atomic field '" + std::string(t.text) +
                "'; folds run after the merge barrier on plain counters -- "
                "copy the value out first, or annotate '// dvlint: "
                "ignore(atomic-fold)' where the caller joins the writers";
            findings.push_back(std::move(f));
          }
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Check 3: include layering

void check_layering(const std::vector<ParsedFile>& files,
                    std::vector<Finding>& findings) {
  for (const ParsedFile& pf : files) {
    const SourceFile& src = *pf.source;
    const int from_rank = layer_rank(top_dir(src.rel_path));
    for (const IncludeDirective& inc : pf.includes) {
      const std::string_view inc_dir = top_dir(inc.path);
      if (ignored(src, inc.line, CheckId::kLayering)) continue;

      if (inc_dir == "bench" || inc_dir == "tests" || inc_dir == "examples") {
        Finding f;
        f.check = CheckId::kLayering;
        f.file = src.rel_path;
        f.line = inc.line;
        f.detail = inc.path;
        f.message = "library code must not include " + std::string(inc_dir) +
                    "/ (\"" + inc.path + "\")";
        findings.push_back(std::move(f));
        continue;
      }
      const int to_rank = layer_rank(inc_dir);
      if (from_rank < 0 || to_rank < 0) continue;
      if (to_rank <= from_rank) continue;
      Finding f;
      f.check = CheckId::kLayering;
      f.file = src.rel_path;
      f.line = inc.line;
      f.detail = inc.path;
      f.message = "include of \"" + inc.path + "\" climbs the layer DAG (" +
                  std::string(top_dir(src.rel_path)) + " may not depend on " +
                  std::string(inc_dir) +
                  "; order is util < core < gcs < sim < runner < fabric "
                  "< lint)";
      findings.push_back(std::move(f));
    }
  }
}

// ---------------------------------------------------------------------------

bool suppressed_by(const Finding& f, const Suppression& s) {
  if (s.check != "*" && s.check != to_string(f.check)) return false;
  if (s.line != 0 && s.line != f.line) return false;
  if (f.file.size() < s.path_suffix.size()) return false;
  return f.file.compare(f.file.size() - s.path_suffix.size(),
                        s.path_suffix.size(), s.path_suffix) == 0;
}

}  // namespace

std::vector<Suppression> load_suppressions(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("dvlint: cannot read suppressions " + path);
  std::vector<Suppression> out;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t first = line.find_first_not_of(" \t");
    if (first == std::string::npos || line[first] == '#') continue;
    std::istringstream fields(line);
    Suppression s;
    std::string target;
    if (!(fields >> s.check >> target)) {
      throw std::runtime_error("dvlint: malformed suppression at " + path +
                               ":" + std::to_string(lineno));
    }
    if (const std::size_t colon = target.rfind(':');
        colon != std::string::npos &&
        target.find_first_not_of("0123456789", colon + 1) == std::string::npos &&
        colon + 1 < target.size()) {
      s.line = static_cast<std::size_t>(
          std::stoull(target.substr(colon + 1)));
      target.resize(colon);
    }
    s.path_suffix = std::move(target);
    out.push_back(std::move(s));
  }
  return out;
}

LintReport run_lint(const LintOptions& options) {
  const fs::path root(options.root);
  if (!fs::is_directory(root)) {
    throw std::runtime_error("dvlint: root is not a directory: " +
                             options.root);
  }

  std::vector<std::string> rel_paths;
  for (const auto& entry : fs::recursive_directory_iterator(root)) {
    if (!entry.is_regular_file()) continue;
    const std::string ext = entry.path().extension().string();
    if (ext != ".hpp" && ext != ".cpp" && ext != ".h" && ext != ".cc") {
      continue;
    }
    rel_paths.push_back(
        fs::relative(entry.path(), root).generic_string());
  }
  std::sort(rel_paths.begin(), rel_paths.end());

  std::vector<std::unique_ptr<SourceFile>> sources;
  sources.reserve(rel_paths.size());
  std::vector<ParsedFile> parsed;
  parsed.reserve(rel_paths.size());
  for (const std::string& rel : rel_paths) {
    sources.push_back(std::make_unique<SourceFile>(
        load_source((root / rel).string(), rel)));
    parsed.push_back(parse_file(*sources.back()));
  }

  std::vector<Finding> findings;
  check_snapshot_completeness(parsed, findings);
  check_determinism(parsed, findings);
  check_layering(parsed, findings);
  check_decode_throw(parsed, findings);
  check_atomic_fold(parsed, findings);
  check_format_migration(parsed, findings);

  LintReport report;
  report.files_scanned = parsed.size();
  for (Finding& f : findings) {
    const bool drop = std::any_of(
        options.suppressions.begin(), options.suppressions.end(),
        [&](const Suppression& s) { return suppressed_by(f, s); });
    if (drop) {
      ++report.suppressed;
    } else {
      report.findings.push_back(std::move(f));
    }
  }
  std::sort(report.findings.begin(), report.findings.end());
  report.findings.erase(
      std::unique(report.findings.begin(), report.findings.end()),
      report.findings.end());
  return report;
}

std::string render_text(const LintReport& report) {
  std::ostringstream os;
  for (const Finding& f : report.findings) {
    os << f.file << ':' << f.line << ": [" << to_string(f.check) << "] "
       << f.message << '\n';
  }
  os << "dvlint: " << report.findings.size() << " finding"
     << (report.findings.size() == 1 ? "" : "s") << ", " << report.suppressed
     << " suppressed, " << report.files_scanned << " files scanned\n";
  return std::move(os).str();
}

std::string render_json(const LintReport& report, const std::string& root) {
  JsonWriter json;
  json.begin_object();
  json.key("schema").value("dynvote.dvlint.v1");
  json.key("root").value(root);
  json.key("files_scanned").value(static_cast<std::uint64_t>(
      report.files_scanned));
  json.key("clean").value(report.findings.empty());
  json.key("suppressed").value(static_cast<std::uint64_t>(report.suppressed));
  json.key("findings").begin_array();
  for (const Finding& f : report.findings) {
    json.begin_object();
    json.key("check").value(to_string(f.check));
    json.key("file").value(f.file);
    json.key("line").value(static_cast<std::uint64_t>(f.line));
    json.key("detail").value(f.detail);
    json.key("message").value(f.message);
    json.end_object();
  }
  json.end_array();
  json.end_object();
  return json.str() + "\n";
}

}  // namespace dynvote::lint
