#include "lint/lint.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <span>
#include <sstream>
#include <stdexcept>

#include "lint/parse.hpp"
#include "lint/scope.hpp"
#include "lint/source.hpp"
#include "util/json.hpp"

namespace dynvote::lint {

namespace fs = std::filesystem;

namespace {

constexpr CheckInfo kChecks[] = {
    {CheckId::kSnapshotCompleteness, "snapshot-completeness",
     "every mutable field of a save/load class must round-trip through the "
     "snapshot (opt-out: // dvlint: transient(why))"},
    {CheckId::kDeterminism, "determinism",
     "no unseeded randomness, wall-clock reads, pointer-keyed ordering or "
     "hash-order iteration in result-affecting paths"},
    {CheckId::kLayering, "layering",
     "includes must respect the layer DAG: util < obs < core < gcs < sim "
     "< runner < fabric < lint"},
    {CheckId::kDecodeThrow, "decode-throw",
     "decode paths throw DecodeError on malformed input instead of "
     "asserting"},
    {CheckId::kAtomicFold, "atomic-fold",
     "stats folds run after the merge barrier and must not read live "
     "std::atomic fields"},
    {CheckId::kFormatMigration, "format-migration",
     "fields written under an envelope-version gate must be read under one "
     "too"},
    {CheckId::kGuardedBy, "guarded-by",
     "fields annotated guarded_by(<mutex>) may only be touched while a "
     "scope holds that mutex"},
    {CheckId::kProtocolExhaustiveness, "protocol-exhaustiveness",
     "switches over wire_enum-annotated enums handle every enumerator; no "
     "non-throwing default may swallow new frames"},
    {CheckId::kRngStream, "rng-stream-discipline",
     "child_seed() tags come from the k*StreamTag registry, tags are "
     "registry-unique, and raw Rng seeds carry a raw-seed(why) whitelist "
     "annotation"},
    {CheckId::kBoundedDecode, "bounded-decode",
     "decode-side reserve()/resize() from a decoded count is bounded by "
     "the decoder's remaining bytes first"},
    {CheckId::kTracePurity, "trace-purity",
     "DV_OBS_* / DV_TRACE_* emission arguments in result-affecting paths "
     "must be pure reads: no RNG draws, no assignments or mutator calls"},
};

}  // namespace

std::span<const CheckInfo> all_checks() { return kChecks; }

std::string_view to_string(CheckId check) {
  for (const CheckInfo& info : kChecks) {
    if (info.id == check) return info.name;
  }
  return "unknown";
}

std::optional<CheckId> check_from_string(std::string_view name) {
  for (const CheckInfo& info : kChecks) {
    if (info.name == name) return info.id;
  }
  return std::nullopt;
}

namespace {

// ---------------------------------------------------------------------------
// Shared helpers

constexpr std::array<std::string_view, 4> kSaveSideMethods = {
    "save", "save_extra", "encode", "encode_body"};
constexpr std::array<std::string_view, 4> kLoadSideMethods = {
    "load", "load_extra", "decode", "decode_body"};

/// Directory rank in the include DAG; higher may include lower, never the
/// reverse.  Unknown directories have no rank and are exempt.
int layer_rank(std::string_view dir) {
  if (dir == "util") return 0;
  if (dir == "obs") return 1;
  if (dir == "core") return 2;
  if (dir == "gcs") return 3;
  if (dir == "sim") return 4;
  if (dir == "runner") return 5;
  if (dir == "fabric") return 6;
  if (dir == "lint") return 7;
  return -1;
}

/// Directories whose code feeds simulation results, stats folds, or the
/// manifest fingerprint -- where determinism hygiene is enforced.  The
/// fabric qualifies: its merge order and wire round-trips are exactly what
/// the bit-identical-fingerprint guarantee rests on.
bool result_affecting(std::string_view dir) {
  return dir == "core" || dir == "gcs" || dir == "sim" || dir == "runner" ||
         dir == "fabric";
}

std::string_view top_dir(std::string_view rel_path) {
  const std::size_t slash = rel_path.find('/');
  return slash == std::string_view::npos ? std::string_view{}
                                         : rel_path.substr(0, slash);
}

bool ignored(const SourceFile& file, std::size_t line, CheckId check) {
  std::string needle = "ignore(";
  needle += to_string(check);
  needle += ')';
  return file.has_annotation(line, needle);
}

struct BodyRef {
  const SourceFile* file = nullptr;
  MethodBody body;
};

/// All bodies of `cls`'s method `method`, inline or out-of-line, anywhere
/// in the scanned tree.
void collect_bodies(const std::vector<ParsedFile>& files,
                    const std::string& cls, std::string_view method,
                    std::vector<BodyRef>& out) {
  const std::pair<std::string, std::string> key{cls, std::string(method)};
  for (const ParsedFile& pf : files) {
    for (const auto* table : {&pf.inline_bodies, &pf.out_of_line}) {
      const auto it = table->find(key);
      if (it == table->end()) continue;
      for (const MethodBody& b : it->second) {
        out.push_back(BodyRef{pf.source, b});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Check 1: snapshot completeness

void check_snapshot_completeness(const std::vector<ParsedFile>& files,
                                 std::vector<Finding>& findings) {
  for (const ParsedFile& pf : files) {
    for (const ClassDecl& cls : pf.classes) {
      if (cls.fields.empty()) continue;

      struct Side {
        std::string_view label;
        std::span<const std::string_view> methods;
        std::vector<BodyRef> bodies;
        std::set<std::string_view> idents;
      };
      Side sides[2] = {
          {"save path (save/encode)", kSaveSideMethods, {}, {}},
          {"load path (load/decode)", kLoadSideMethods, {}, {}},
      };
      for (Side& side : sides) {
        for (std::string_view m : side.methods) {
          collect_bodies(files, cls.name, m, side.bodies);
        }
        for (const BodyRef& ref : side.bodies) {
          const std::string_view body =
              std::string_view(ref.file->code)
                  .substr(ref.body.begin, ref.body.end - ref.body.begin);
          for (const Token& t : tokenize(body)) {
            if (t.is_ident()) side.idents.insert(t.text);
          }
        }
      }
      if (sides[0].bodies.empty() && sides[1].bodies.empty()) continue;

      for (const FieldDecl& field : cls.fields) {
        if (pf.source->has_annotation(field.line, "transient")) continue;
        if (ignored(*pf.source, field.line, CheckId::kSnapshotCompleteness)) {
          continue;
        }
        for (const Side& side : sides) {
          if (side.bodies.empty()) continue;
          if (side.idents.count(field.name) > 0) continue;
          Finding f;
          f.check = CheckId::kSnapshotCompleteness;
          f.file = pf.source->rel_path;
          f.line = field.line;
          f.detail = field.name;
          f.message = "class " + cls.name + ": field '" + field.name +
                      "' is never referenced by the " + std::string(side.label) +
                      "; serialize it or annotate it '// dvlint: "
                      "transient(reason)'";
          findings.push_back(std::move(f));
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Check 6: format migration discipline
//
// A field the save side writes only under an envelope-version gate
// (`if (version >= N) { ... }`) was added to the format after v1.  The
// load side must read it under a gate too: an ungated read consumes bytes
// that older writers never produced, desynchronizing the stream for every
// field that follows.  The `else` branch of a gate counts as gated --
// defaulting the field for pre-gate writers is the correct migration shape.

struct GatedRange {
  std::size_t begin = 0;
  std::size_t end = 0;
};

bool in_gated_range(const std::vector<GatedRange>& ranges,
                    std::size_t offset) {
  for (const GatedRange& r : ranges) {
    if (offset >= r.begin && offset < r.end) return true;
  }
  return false;
}

/// Byte ranges of `body` inside `if (<condition naming a *version*
/// identifier>) { ... } [else { ... }]` statements.  Braceless gates are
/// not recognized (the repo style always braces); chained `else if` gates
/// are picked up as their own `if`.
std::vector<GatedRange> version_gated_ranges(std::string_view body) {
  std::vector<GatedRange> ranges;
  const std::vector<Token> tokens = tokenize(body);
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    if (tokens[i].text != "if" || i + 1 >= tokens.size() ||
        tokens[i + 1].text != "(") {
      continue;
    }
    // Walk the condition; a gate names the envelope version.
    bool versioned = false;
    int depth = 0;
    std::size_t j = i + 1;
    for (; j < tokens.size(); ++j) {
      if (tokens[j].text == "(") ++depth;
      if (tokens[j].text == ")" && --depth == 0) break;
      if (tokens[j].is_ident() &&
          tokens[j].text.find("version") != std::string_view::npos) {
        versioned = true;
      }
    }
    if (!versioned || j + 1 >= tokens.size() ||
        tokens[j + 1].text != "{") {
      continue;
    }
    const std::size_t open = tokens[j + 1].offset;
    const std::size_t close = match_brace(body, open);
    if (close == std::string_view::npos) continue;
    ranges.push_back(GatedRange{open + 1, close});
    // Fold a chained `else { ... }` into the gate.  (`else if` falls
    // through to the next iteration as its own gate.)
    std::size_t k = j + 2;
    while (k < tokens.size() && tokens[k].offset <= close) ++k;
    if (k < tokens.size() && tokens[k].text == "else" &&
        k + 1 < tokens.size() && tokens[k + 1].text == "{") {
      const std::size_t else_open = tokens[k + 1].offset;
      const std::size_t else_close = match_brace(body, else_open);
      if (else_close != std::string_view::npos) {
        ranges.push_back(GatedRange{else_open + 1, else_close});
      }
    }
  }
  return ranges;
}

void check_format_migration(const std::vector<ParsedFile>& files,
                            std::vector<Finding>& findings) {
  for (const ParsedFile& pf : files) {
    for (const ClassDecl& cls : pf.classes) {
      if (cls.fields.empty()) continue;

      std::vector<BodyRef> save_bodies;
      std::vector<BodyRef> load_bodies;
      for (std::string_view m : kSaveSideMethods) {
        collect_bodies(files, cls.name, m, save_bodies);
      }
      for (std::string_view m : kLoadSideMethods) {
        collect_bodies(files, cls.name, m, load_bodies);
      }
      if (save_bodies.empty() || load_bodies.empty()) continue;

      // Fields whose save-side references all sit inside version gates --
      // i.e. fields added to the format after v1.
      std::set<std::string_view> gated_fields;
      std::set<std::string_view> ungated_fields;
      for (const BodyRef& ref : save_bodies) {
        const std::string_view body =
            std::string_view(ref.file->code)
                .substr(ref.body.begin, ref.body.end - ref.body.begin);
        const std::vector<GatedRange> gates = version_gated_ranges(body);
        for (const Token& t : tokenize(body)) {
          if (!t.is_ident()) continue;
          if (in_gated_range(gates, t.offset)) {
            gated_fields.insert(t.text);
          } else {
            ungated_fields.insert(t.text);
          }
        }
      }

      for (const FieldDecl& field : cls.fields) {
        if (gated_fields.count(field.name) == 0 ||
            ungated_fields.count(field.name) > 0) {
          continue;
        }
        // A migration field: every load-side reference must be gated.
        for (const BodyRef& ref : load_bodies) {
          const std::string_view body =
              std::string_view(ref.file->code)
                  .substr(ref.body.begin, ref.body.end - ref.body.begin);
          const std::vector<GatedRange> gates = version_gated_ranges(body);
          for (const Token& t : tokenize(body)) {
            if (!t.is_ident() || t.text != field.name) continue;
            if (in_gated_range(gates, t.offset)) continue;
            const std::size_t line =
                ref.file->line_of(ref.body.begin + t.offset);
            if (ignored(*ref.file, line, CheckId::kFormatMigration)) {
              continue;
            }
            Finding f;
            f.check = CheckId::kFormatMigration;
            f.file = ref.file->rel_path;
            f.line = line;
            f.detail = field.name;
            f.message =
                "class " + cls.name + ": field '" + field.name +
                "' is written only under an envelope-version gate but read "
                "here unconditionally; older writers never produced these "
                "bytes -- gate the read on the same version (an `else` "
                "branch may default it)";
            findings.push_back(std::move(f));
          }
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Check 4 (rides on the same machinery): decode paths must throw DecodeError

void check_decode_throw(const std::vector<ParsedFile>& files,
                        std::vector<Finding>& findings) {
  for (const ParsedFile& pf : files) {
    for (const ClassDecl& cls : pf.classes) {
      std::vector<BodyRef> bodies;
      for (std::string_view m : kLoadSideMethods) {
        collect_bodies(files, cls.name, m, bodies);
      }
      for (const BodyRef& ref : bodies) {
        const std::string_view body =
            std::string_view(ref.file->code)
                .substr(ref.body.begin, ref.body.end - ref.body.begin);
        for (const Token& t : tokenize(body)) {
          if (t.text != "DV_ASSERT" && t.text != "DV_REQUIRE") continue;
          const std::size_t line = ref.file->line_of(ref.body.begin + t.offset);
          if (ignored(*ref.file, line, CheckId::kDecodeThrow)) continue;
          Finding f;
          f.check = CheckId::kDecodeThrow;
          f.file = ref.file->rel_path;
          f.line = line;
          f.detail = std::string(t.text);
          f.message = "class " + cls.name + ": snapshot decode path uses " +
                      std::string(t.text) +
                      "; malformed bytes are input errors -- throw "
                      "DecodeError instead";
          findings.push_back(std::move(f));
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Check 2: determinism hygiene

constexpr std::array<std::string_view, 9> kRandomnessTokens = {
    "rand",         "srand",
    "drand48",      "random_device",
    "mt19937",      "mt19937_64",
    "minstd_rand",  "default_random_engine",
    "random_shuffle"};

constexpr std::array<std::string_view, 4> kWallClockTokens = {
    "system_clock", "gettimeofday", "localtime", "strftime"};

constexpr std::array<std::string_view, 6> kOrderedByKey = {
    "map", "set", "multimap", "multiset", "unordered_map", "unordered_set"};

void check_determinism(const std::vector<ParsedFile>& files,
                       std::vector<Finding>& findings) {
  // Unordered container names are collected repo-wide: a member declared in
  // a header is iterated from the implementation file.
  std::set<std::string> unordered;
  for (const ParsedFile& pf : files) {
    unordered.insert(pf.unordered_names.begin(), pf.unordered_names.end());
    for (const ClassDecl& cls : pf.classes) {
      for (const FieldDecl& field : cls.fields) {
        if (field.unordered) unordered.insert(field.name);
      }
    }
  }

  for (const ParsedFile& pf : files) {
    if (!result_affecting(top_dir(pf.source->rel_path))) continue;
    const SourceFile& src = *pf.source;
    const std::vector<Token> tokens = tokenize(src.code);

    auto flag = [&](std::size_t offset, std::string detail,
                    std::string message) {
      const std::size_t line = src.line_of(offset);
      if (ignored(src, line, CheckId::kDeterminism)) return;
      Finding f;
      f.check = CheckId::kDeterminism;
      f.file = src.rel_path;
      f.line = line;
      f.detail = std::move(detail);
      f.message = std::move(message);
      findings.push_back(std::move(f));
    };

    for (std::size_t i = 0; i < tokens.size(); ++i) {
      const std::string_view t = tokens[i].text;
      const bool called =
          i + 1 < tokens.size() && tokens[i + 1].text == "(";
      // `x.time(...)` / `x->clock(...)` are member calls, not libc.
      const bool member_access = i > 0 && (tokens[i - 1].text == "." ||
                                           (tokens[i - 1].text == ">" &&
                                            i > 1 && tokens[i - 2].text == "-"));

      if (std::find(kRandomnessTokens.begin(), kRandomnessTokens.end(), t) !=
              kRandomnessTokens.end() &&
          !member_access) {
        flag(tokens[i].offset, std::string(t),
             "unseeded/non-portable randomness '" + std::string(t) +
                 "' in a result-affecting path; draw from util/rng.hpp "
                 "(seeded, cross-platform) instead");
        continue;
      }
      if (std::find(kWallClockTokens.begin(), kWallClockTokens.end(), t) !=
              kWallClockTokens.end() ||
          ((t == "time" || t == "clock") && called && !member_access)) {
        flag(tokens[i].offset, std::string(t),
             "wall-clock read '" + std::string(t) +
                 "' in a result-affecting path; results must be a pure "
                 "function of the seed");
        continue;
      }
      // Pointer-keyed ordering: std::map/set & friends keyed on a pointer
      // type order by address, which varies run to run.
      if (std::find(kOrderedByKey.begin(), kOrderedByKey.end(), t) !=
              kOrderedByKey.end() &&
          i > 0 && tokens[i - 1].text == "::" && i + 1 < tokens.size() &&
          tokens[i + 1].text == "<") {
        int angle = 0;
        for (std::size_t j = i + 1; j < tokens.size(); ++j) {
          const std::string_view u = tokens[j].text;
          if (u == "<") ++angle;
          if (u == ">" && --angle == 0) break;
          if (u == "," && angle == 1) break;  // end of the key type
          if (u == "*" && angle >= 1) {
            flag(tokens[i].offset, std::string(t),
                 "pointer-keyed std::" + std::string(t) +
                     " orders by address, which varies across runs; key on "
                     "a stable id instead");
            break;
          }
        }
        continue;
      }
    }

    for (const RangeFor& rf : pf.range_fors) {
      if (unordered.count(rf.container) == 0) continue;
      if (src.has_annotation(rf.line, "unordered-ok")) continue;
      if (ignored(src, rf.line, CheckId::kDeterminism)) continue;
      Finding f;
      f.check = CheckId::kDeterminism;
      f.file = src.rel_path;
      f.line = rf.line;
      f.detail = rf.container;
      f.message =
          "iteration over unordered container '" + rf.container +
          "' in a result-affecting path visits elements in hash order; use "
          "an ordered container or sort first (annotate '// dvlint: "
          "unordered-ok' only for provably order-insensitive folds)";
      findings.push_back(std::move(f));
    }
  }
}

// ---------------------------------------------------------------------------
// Check 5: atomic counters read inside stats folds
//
// Sharded sweeps fold per-shard counters after the worker pool joins; by
// that point every counter the fold reads is a plain value.  A merge/fold
// body reading a std::atomic field suggests the fold runs concurrently with
// the counter's writers -- exactly the cross-shard race the barrier exists
// to rule out -- or that a counter which never needed atomicity is paying
// for it on the hot path.

void check_atomic_fold(const std::vector<ParsedFile>& files,
                       std::vector<Finding>& findings) {
  // Atomic field names are collected repo-wide, like unordered ones: a
  // member declared in a header is read from the implementation file.
  std::set<std::string, std::less<>> atomic_fields;
  for (const ParsedFile& pf : files) {
    for (const ClassDecl& cls : pf.classes) {
      for (const FieldDecl& field : cls.fields) {
        if (field.atomic) atomic_fields.insert(field.name);
      }
    }
  }
  if (atomic_fields.empty()) return;

  for (const ParsedFile& pf : files) {
    if (!result_affecting(top_dir(pf.source->rel_path))) continue;
    const SourceFile& src = *pf.source;
    for (const auto* table : {&pf.inline_bodies, &pf.out_of_line}) {
      for (const auto& [key, bodies] : *table) {
        const std::string& method = key.second;
        if (method.find("merge") == std::string::npos &&
            method.find("fold") == std::string::npos) {
          continue;
        }
        for (const MethodBody& body : bodies) {
          const std::string_view text =
              std::string_view(src.code)
                  .substr(body.begin, body.end - body.begin);
          for (const Token& t : tokenize(text)) {
            if (!t.is_ident() || atomic_fields.count(t.text) == 0) continue;
            const std::size_t line = src.line_of(body.begin + t.offset);
            if (ignored(src, line, CheckId::kAtomicFold)) continue;
            Finding f;
            f.check = CheckId::kAtomicFold;
            f.file = src.rel_path;
            f.line = line;
            f.detail = std::string(t.text);
            f.message =
                "stats fold '" + key.first + "::" + method +
                "' reads std::atomic field '" + std::string(t.text) +
                "'; folds run after the merge barrier on plain counters -- "
                "copy the value out first, or annotate '// dvlint: "
                "ignore(atomic-fold)' where the caller joins the writers";
            findings.push_back(std::move(f));
          }
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Check 3: include layering

void check_layering(const std::vector<ParsedFile>& files,
                    std::vector<Finding>& findings) {
  for (const ParsedFile& pf : files) {
    const SourceFile& src = *pf.source;
    const int from_rank = layer_rank(top_dir(src.rel_path));
    for (const IncludeDirective& inc : pf.includes) {
      const std::string_view inc_dir = top_dir(inc.path);
      if (ignored(src, inc.line, CheckId::kLayering)) continue;

      if (inc_dir == "bench" || inc_dir == "tests" || inc_dir == "examples") {
        Finding f;
        f.check = CheckId::kLayering;
        f.file = src.rel_path;
        f.line = inc.line;
        f.detail = inc.path;
        f.message = "library code must not include " + std::string(inc_dir) +
                    "/ (\"" + inc.path + "\")";
        findings.push_back(std::move(f));
        continue;
      }
      const int to_rank = layer_rank(inc_dir);
      if (from_rank < 0 || to_rank < 0) continue;
      if (to_rank <= from_rank) continue;
      Finding f;
      f.check = CheckId::kLayering;
      f.file = src.rel_path;
      f.line = inc.line;
      f.detail = inc.path;
      f.message = "include of \"" + inc.path + "\" climbs the layer DAG (" +
                  std::string(top_dir(src.rel_path)) + " may not depend on " +
                  std::string(inc_dir) +
                  "; order is util < obs < core < gcs < sim < runner "
                  "< fabric < lint)";
      findings.push_back(std::move(f));
    }
  }
}

// ---------------------------------------------------------------------------
// Check 7: guarded-by lock discipline
//
// Fields annotated `// dvlint: guarded_by(<mutex>)` (collected repo-wide,
// so a header's annotation protects accesses in every .cpp) may only be
// touched inside a scope holding that mutex.  The heavy lifting -- brace
// scopes, RAII holds, .unlock()/.lock() flow, requires_lock contracts,
// guarded locals -- lives in lint/scope.cpp.

void check_guarded_by(const std::vector<ParsedFile>& files,
                      std::vector<Finding>& findings) {
  // The walker identifies a held mutex by the last identifier of the locked
  // expression (`impl->mutex` -> `mutex`); normalize annotation arguments
  // the same way so `guarded_by(impl->mutex)` matches.
  const auto last_ident = [](std::string_view expr) {
    std::size_t end = expr.size();
    while (end > 0 && !(std::isalnum(static_cast<unsigned char>(
                            expr[end - 1])) ||
                        expr[end - 1] == '_')) {
      --end;
    }
    std::size_t begin = end;
    while (begin > 0 && (std::isalnum(static_cast<unsigned char>(
                             expr[begin - 1])) ||
                         expr[begin - 1] == '_')) {
      --begin;
    }
    return std::string(expr.substr(begin, end - begin));
  };

  std::vector<GuardedField> guarded;
  for (const ParsedFile& pf : files) {
    for (const ClassDecl& cls : pf.classes) {
      for (const FieldDecl& field : cls.fields) {
        const auto arg =
            pf.source->annotation_arg(field.line, "guarded_by");
        if (arg && !arg->empty()) {
          guarded.push_back(
              GuardedField{cls.name, field.name, last_ident(*arg)});
        }
      }
    }
  }
  for (const ParsedFile& pf : files) {
    const SourceFile& src = *pf.source;
    for (const GuardViolation& v : guarded_by_violations(pf, guarded)) {
      const std::size_t line = src.line_of(v.offset);
      if (ignored(src, line, CheckId::kGuardedBy)) continue;
      Finding f;
      f.check = CheckId::kGuardedBy;
      f.file = src.rel_path;
      f.line = line;
      f.detail = v.name;
      f.message =
          "'" + v.name + "' is guarded by '" + v.mutex +
          "' but touched without holding it; take the lock, annotate the "
          "helper '// dvlint: requires_lock(" + v.mutex +
          ")' if the caller holds it, or '// dvlint: ignore(guarded-by)' "
          "where exclusivity is established another way (post-join, "
          "pre-thread)";
      findings.push_back(std::move(f));
    }
  }
}

// ---------------------------------------------------------------------------
// Check 8: protocol exhaustiveness
//
// Enums annotated `// dvlint: wire_enum` cross a serialization boundary:
// every switch over one must name every enumerator, so adding a frame type
// fails lint until each handler learns about it.  A `default:` is allowed
// only when it throws -- the decoder's unknown-byte rejection -- because a
// swallowing default is exactly how a new frame type gets silently dropped.

void check_protocol_exhaustiveness(const std::vector<ParsedFile>& files,
                                   std::vector<Finding>& findings) {
  std::map<std::string, const EnumDecl*> wire;
  for (const ParsedFile& pf : files) {
    for (const EnumDecl& e : pf.enums) {
      if (pf.source->has_annotation(e.line, "wire_enum")) {
        wire.emplace(e.name, &e);
      }
    }
  }
  if (wire.empty()) return;

  for (const ParsedFile& pf : files) {
    const SourceFile& src = *pf.source;
    const std::vector<Token> tokens = tokenize(src.code);
    for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
      if (tokens[i].text != "switch" || tokens[i + 1].text != "(") continue;
      int parens = 0;
      std::size_t j = i + 1;
      for (; j < tokens.size(); ++j) {
        if (tokens[j].text == "(") ++parens;
        if (tokens[j].text == ")" && --parens == 0) break;
      }
      if (j + 1 >= tokens.size() || tokens[j + 1].text != "{") continue;
      const std::size_t close = match_brace(src.code, tokens[j + 1].offset);
      if (close == std::string_view::npos) continue;

      const EnumDecl* target = nullptr;
      std::set<std::string_view> covered;
      bool has_default = false;
      bool default_throws = false;
      bool in_default = false;
      int depth = 0;
      for (std::size_t k = j + 1;
           k < tokens.size() && tokens[k].offset <= close; ++k) {
        const std::string_view t = tokens[k].text;
        if (t == "{") ++depth;
        if (t == "}") --depth;
        if (in_default && (t == "throw" || t == "DV_RAISE")) {
          default_throws = true;
        }
        if (depth != 1) continue;
        if (t == "default") {
          has_default = true;
          in_default = true;
          continue;
        }
        if (t != "case") continue;
        in_default = false;
        // Label: idents up to the terminating `:` (`::` is one token, so
        // the label's end is unambiguous).
        std::string_view enumr;
        std::string_view scope_name;
        for (std::size_t m = k + 1; m < tokens.size(); ++m) {
          if (tokens[m].text == ":") break;
          if (tokens[m].text == "::" && !enumr.empty()) scope_name = enumr;
          if (tokens[m].is_ident()) enumr = tokens[m].text;
        }
        if (enumr.empty()) continue;
        covered.insert(enumr);
        if (const auto it = wire.find(std::string(scope_name));
            !scope_name.empty() && it != wire.end()) {
          target = it->second;
        } else if (scope_name.empty()) {
          // Unscoped label: attribute by enumerator membership.
          for (const auto& [name, e] : wire) {
            if (std::find(e->enumerators.begin(), e->enumerators.end(),
                          enumr) != e->enumerators.end()) {
              target = e;
              break;
            }
          }
        }
      }
      if (target == nullptr) continue;

      const std::size_t sw_line = src.line_of(tokens[i].offset);
      if (ignored(src, sw_line, CheckId::kProtocolExhaustiveness)) continue;
      for (const std::string& e : target->enumerators) {
        if (covered.count(e) > 0) continue;
        Finding f;
        f.check = CheckId::kProtocolExhaustiveness;
        f.file = src.rel_path;
        f.line = sw_line;
        f.detail = e;
        f.message = "switch over wire enum '" + target->name +
                    "' does not handle '" + e +
                    "'; every enumerator of a wire enum must be handled "
                    "explicitly so new frame types fail lint until every "
                    "peer understands them";
        findings.push_back(std::move(f));
      }
      if (has_default && !default_throws) {
        Finding f;
        f.check = CheckId::kProtocolExhaustiveness;
        f.file = src.rel_path;
        f.line = sw_line;
        f.detail = "default";
        f.message = "switch over wire enum '" + target->name +
                    "' has a non-throwing default that would silently "
                    "swallow new enumerators; handle each case explicitly "
                    "(a default that throws on unknown input stays legal)";
        findings.push_back(std::move(f));
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Check 9: RNG stream discipline
//
// Replayable, uncorrelated randomness rests on the child_seed registry in
// util/rng.hpp: every derived stream takes a named k*StreamTag constant,
// tags never collide, and nothing seeds an Rng from a raw expression --
// except the pinned geometric schedule, which is whitelisted in place with
// `// dvlint: raw-seed(why)` because its baselines froze before the
// registry existed.

bool is_stream_tag_name(std::string_view t) {
  constexpr std::string_view kSuffix = "StreamTag";
  return t.size() > kSuffix.size() + 1 && t.front() == 'k' &&
         t.substr(t.size() - kSuffix.size()) == kSuffix;
}

/// Top-level comma-separated argument slices of the token group opening at
/// `open` (which must index a `(` or `{`).  Each slice is a [begin, end)
/// token index range.
std::vector<std::pair<std::size_t, std::size_t>> argument_ranges(
    const std::vector<Token>& tokens, std::size_t open) {
  std::vector<std::pair<std::size_t, std::size_t>> out;
  int depth = 0;
  std::size_t begin = open + 1;
  for (std::size_t k = open; k < tokens.size(); ++k) {
    const std::string_view t = tokens[k].text;
    if (t == "(" || t == "{" || t == "[") ++depth;
    if (t == ")" || t == "}" || t == "]") {
      if (--depth == 0) {
        if (k > begin) out.emplace_back(begin, k);
        return out;
      }
    }
    if (t == "," && depth == 1) {
      if (k > begin) out.emplace_back(begin, k);
      begin = k + 1;
    }
  }
  return out;
}

void check_rng_stream(const std::vector<ParsedFile>& files,
                      std::vector<Finding>& findings) {
  struct TagDef {
    std::string name;
    const SourceFile* src = nullptr;
    std::size_t line = 0;
    std::string value;
  };

  // Registry: every `k*StreamTag = <value>` declaration, in scan order
  // (files are sorted, so duplicates report at the later declaration).
  std::vector<TagDef> defs;
  for (const ParsedFile& pf : files) {
    const std::vector<Token> tokens = tokenize(pf.source->code);
    for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
      if (!tokens[i].is_ident() || !is_stream_tag_name(tokens[i].text) ||
          tokens[i + 1].text != "=") {
        continue;
      }
      TagDef def;
      def.name = std::string(tokens[i].text);
      def.src = pf.source;
      def.line = pf.source->line_of(tokens[i].offset);
      for (std::size_t k = i + 2;
           k < tokens.size() && tokens[k].text != ";"; ++k) {
        def.value += tokens[k].text;
      }
      defs.push_back(std::move(def));
    }
  }

  auto normalized = [](std::string v) -> std::string {
    while (!v.empty() && (v.back() == 'u' || v.back() == 'U' ||
                          v.back() == 'l' || v.back() == 'L')) {
      v.pop_back();
    }
    try {
      std::size_t used = 0;
      const unsigned long long n = std::stoull(v, &used, 0);
      if (used == v.size()) return std::to_string(n);
    } catch (const std::exception&) {
    }
    return v;
  };

  std::set<std::string> tag_names;
  std::map<std::string, std::string> by_value;
  for (const TagDef& def : defs) {
    tag_names.insert(def.name);
    const auto [it, fresh] = by_value.emplace(normalized(def.value), def.name);
    if (fresh) continue;
    if (ignored(*def.src, def.line, CheckId::kRngStream)) continue;
    Finding f;
    f.check = CheckId::kRngStream;
    f.file = def.src->rel_path;
    f.line = def.line;
    f.detail = def.name;
    f.message = "stream tag '" + def.name + "' has the same value as '" +
                it->second +
                "'; colliding tags make two child streams identical -- "
                "pick a fresh value";
    findings.push_back(std::move(f));
  }

  for (const ParsedFile& pf : files) {
    const SourceFile& src = *pf.source;
    const std::vector<Token> tokens = tokenize(src.code);
    const bool affecting = result_affecting(top_dir(src.rel_path));

    for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
      const std::string_view t = tokens[i].text;

      // --- child_seed call sites ---
      if (t == "child_seed" && tokens[i + 1].text == "(") {
        // Skip the declaration itself (parameter list starts with a type).
        if (i + 2 < tokens.size() && (tokens[i + 2].text == "std" ||
                                      tokens[i + 2].text == ")")) {
          continue;
        }
        const std::size_t line = src.line_of(tokens[i].offset);
        if (ignored(src, line, CheckId::kRngStream)) continue;
        const auto args = argument_ranges(tokens, i + 1);
        std::string problem;
        if (args.size() != 2) {
          problem = "call must be child_seed(<base>, <k*StreamTag>)";
        } else {
          const auto [begin, end] = args[1];
          if (end - begin != 1 || !tokens[begin].is_ident()) {
            problem =
                "the stream tag must be a single named k*StreamTag "
                "constant, not an expression or literal";
          } else if (tag_names.count(std::string(tokens[begin].text)) == 0) {
            problem = "'" + std::string(tokens[begin].text) +
                      "' is not in the k*StreamTag registry; declare it "
                      "there so tag uniqueness is checkable";
          }
        }
        if (problem.empty()) continue;
        Finding f;
        f.check = CheckId::kRngStream;
        f.file = src.rel_path;
        f.line = line;
        f.detail = "child_seed";
        f.message = "child_seed stream discipline: " + problem;
        findings.push_back(std::move(f));
        continue;
      }

      if (!affecting) continue;

      // --- raw Rng seeding ---
      std::size_t open = std::string_view::npos;
      std::string detail;
      if (t == "Rng") {
        if (tokens[i + 1].is_ident() && i + 2 < tokens.size() &&
            (tokens[i + 2].text == "(" || tokens[i + 2].text == "{")) {
          open = i + 2;  // `Rng name(seed)` / `Rng name{seed}`
          detail = std::string(tokens[i + 1].text);
        } else if (tokens[i + 1].text == "(" || tokens[i + 1].text == "{") {
          open = i + 1;  // `Rng(seed)` temporary
          detail = "Rng";
        }
      } else if (tokens[i].is_ident() && tokens[i + 1].text == "(" &&
                 t != "child_seed") {
        // Constructor-initializer style: `rng_(seed)` / `delivery_rng_(x)`.
        std::string lower(t);
        std::transform(lower.begin(), lower.end(), lower.begin(),
                       [](unsigned char c) { return std::tolower(c); });
        const bool member_access =
            i > 0 && (tokens[i - 1].text == "." || tokens[i - 1].text == "::" ||
                      (tokens[i - 1].text == ">" && i > 1 &&
                       tokens[i - 2].text == "-"));
        if (lower.find("rng") != std::string::npos && !member_access) {
          open = i + 1;
          detail = std::string(t);
        }
      }
      if (open == std::string_view::npos) continue;
      const auto args = argument_ranges(tokens, open);
      if (args.empty()) continue;
      bool derived = false;
      bool param_list = false;
      for (const auto& [begin, end] : args) {
        for (std::size_t k = begin; k < end; ++k) {
          if (tokens[k].text == "child_seed" || tokens[k].text == "fork" ||
              tokens[k].text == "set_state" || tokens[k].text == "state") {
            derived = true;
          }
          // Two adjacent identifiers (`uint64_t seed`) only occur in a
          // parameter list: this is a constructor or function declaration,
          // not a seeding expression.
          if (k + 1 < end && tokens[k].is_ident() &&
              tokens[k + 1].is_ident()) {
            param_list = true;
          }
        }
      }
      if (derived || param_list) continue;
      const std::size_t line = src.line_of(tokens[i].offset);
      if (src.has_annotation(line, "raw-seed")) continue;
      if (ignored(src, line, CheckId::kRngStream)) continue;
      Finding f;
      f.check = CheckId::kRngStream;
      f.file = src.rel_path;
      f.line = line;
      f.detail = detail;
      f.message =
          "Rng '" + detail +
          "' is seeded from a raw expression; derive the seed with "
          "child_seed(<base>, <k*StreamTag>) so streams stay uncorrelated "
          "and replayable, or whitelist a pinned stream with '// dvlint: "
          "raw-seed(why)'";
      findings.push_back(std::move(f));
    }
  }
}

// ---------------------------------------------------------------------------
// Check 10: bounded decode
//
// Generalizes the CaseResult::decode_body hardening: a decode path that
// reserve()s or resize()s from a decoded count must first bound the count
// by the decoder's remaining bytes.  A hostile length prefix then fails
// fast in the decoder instead of reaching the allocator.

constexpr std::array<std::string_view, 8> kDecodeGetters = {
    "get_varint", "get_u8",        "get_u16",       "get_u32",
    "get_u64",    "get_u32_fixed", "get_u64_fixed", "get_f64"};

void check_bounded_decode(const std::vector<ParsedFile>& files,
                          std::vector<Finding>& findings) {
  for (const ParsedFile& pf : files) {
    if (!result_affecting(top_dir(pf.source->rel_path))) continue;
    const SourceFile& src = *pf.source;
    const std::vector<Token> tokens = tokenize(src.code);

    // Pass 1: decoded-count assignments (`n = dec.get_varint()`) and the
    // offsets where `remaining` is consulted.
    std::map<std::string_view, std::size_t> counts;  // name -> assign offset
    std::vector<std::size_t> remaining_at;
    for (std::size_t i = 0; i < tokens.size(); ++i) {
      const std::string_view t = tokens[i].text;
      if (t == "remaining") remaining_at.push_back(tokens[i].offset);
      if (std::find(kDecodeGetters.begin(), kDecodeGetters.end(), t) ==
              kDecodeGetters.end() ||
          i + 1 >= tokens.size() || tokens[i + 1].text != "(") {
        continue;
      }
      for (std::size_t k = i; k-- > 0;) {
        const std::string_view u = tokens[k].text;
        if (u == ";" || u == "{" || u == "}") break;
        if (u == "=" && k > 0 && tokens[k - 1].is_ident()) {
          counts[tokens[k - 1].text] = tokens[i].offset;
          break;
        }
      }
    }

    // Pass 2: reserve()/resize() calls fed by a decoded count.
    for (std::size_t i = 1; i + 1 < tokens.size(); ++i) {
      const std::string_view t = tokens[i].text;
      if (t != "reserve" && t != "resize") continue;
      const bool member_call =
          tokens[i - 1].text == "." ||
          (tokens[i - 1].text == ">" && i > 1 && tokens[i - 2].text == "-");
      if (!member_call || tokens[i + 1].text != "(") continue;
      const std::size_t call_offset = tokens[i].offset;

      std::string culprit;
      int depth = 0;
      for (std::size_t k = i + 1; k < tokens.size(); ++k) {
        const std::string_view u = tokens[k].text;
        if (u == "(") ++depth;
        if (u == ")" && --depth == 0) break;
        if (std::find(kDecodeGetters.begin(), kDecodeGetters.end(), u) !=
            kDecodeGetters.end()) {
          culprit = std::string(u);  // reserve(dec.get_varint()): never ok
          break;
        }
        if (!tokens[k].is_ident()) continue;
        const auto it = counts.find(u);
        if (it == counts.end() || it->second >= call_offset) continue;
        const bool bounded =
            std::any_of(remaining_at.begin(), remaining_at.end(),
                        [&](std::size_t at) {
                          return at > it->second && at < call_offset;
                        });
        if (!bounded) {
          culprit = std::string(u);
          break;
        }
      }
      if (culprit.empty()) continue;
      const std::size_t line = src.line_of(call_offset);
      if (ignored(src, line, CheckId::kBoundedDecode)) continue;
      Finding f;
      f.check = CheckId::kBoundedDecode;
      f.file = src.rel_path;
      f.line = line;
      f.detail = culprit;
      f.message =
          "decode-side " + std::string(t) + " sized by decoded count '" +
          culprit +
          "' without bounding it against the decoder's remaining bytes; "
          "check `<count> > dec.remaining()` (or an item-size multiple of "
          "it) and throw DecodeError before allocating";
      findings.push_back(std::move(f));
    }
  }
}

// ---------------------------------------------------------------------------
// Check 11: trace-purity
//
// The fingerprint-parity guarantee (DV_TRACE=1 and DV_TRACE=0 produce
// byte-identical results documents) holds only if observation never feeds
// back into simulation.  An emission macro's arguments are evaluated on
// the hot path whether or not that discipline was intended, so any RNG
// draw or mutation inside them changes results -- conditionally, when the
// macro's own guard short-circuits, which is worse.  This check scans the
// argument span of every DV_OBS_* / DV_TRACE_* site in result-affecting
// directories for randomness identifiers, assignment and increment
// operators, and the container/handle mutators a pure read never needs.

constexpr std::array<std::string_view, 6> kEmissionMacros = {
    "DV_OBS_INC",     "DV_OBS_ADD",    "DV_OBS_SET",
    "DV_OBS_RECORD",  "DV_TRACE_SPAN", "DV_TRACE_INSTANT"};

constexpr std::array<std::string_view, 8> kTraceRngTokens = {
    "rng",  "rng_",          "child_seed", "rand",
    "srand", "drand48",      "random_device", "mt19937"};

constexpr std::array<std::string_view, 12> kTraceMutatorCalls = {
    "push_back", "pop_back", "emplace", "emplace_back", "insert", "erase",
    "clear",     "resize",   "reset",   "assign",       "swap",   "pop_front"};

void check_trace_purity(const std::vector<ParsedFile>& files,
                        std::vector<Finding>& findings) {
  for (const ParsedFile& pf : files) {
    if (!result_affecting(top_dir(pf.source->rel_path))) continue;
    const SourceFile& src = *pf.source;
    const std::vector<Token> tokens = tokenize(src.code);

    auto flag = [&](std::size_t offset, std::string_view macro,
                    std::string detail, const std::string& why) {
      const std::size_t line = src.line_of(offset);
      if (ignored(src, line, CheckId::kTracePurity)) return;
      Finding f;
      f.check = CheckId::kTracePurity;
      f.file = src.rel_path;
      f.line = line;
      f.detail = std::move(detail);
      f.message = std::string(macro) + " argument " + why +
                  "; emission sites must be pure reads or results change "
                  "when tracing toggles (opt-out: // dvlint: "
                  "ignore(trace-purity))";
      findings.push_back(std::move(f));
    };

    for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
      if (std::find(kEmissionMacros.begin(), kEmissionMacros.end(),
                    tokens[i].text) == kEmissionMacros.end()) {
        continue;
      }
      if (tokens[i + 1].text != "(") continue;
      const std::string_view macro = tokens[i].text;

      // Token span of the argument list, outer parens excluded.
      std::size_t depth = 0;
      std::size_t close = tokens.size();
      for (std::size_t j = i + 1; j < tokens.size(); ++j) {
        if (tokens[j].text == "(") ++depth;
        if (tokens[j].text == ")" && --depth == 0) {
          close = j;
          break;
        }
      }
      if (close == tokens.size()) continue;  // unbalanced; fail safe

      for (std::size_t j = i + 2; j < close; ++j) {
        const std::string_view t = tokens[j].text;
        const std::string_view prev = tokens[j - 1].text;
        const std::string_view next =
            j + 1 < close ? tokens[j + 1].text : std::string_view{};

        if (std::find(kTraceRngTokens.begin(), kTraceRngTokens.end(), t) !=
            kTraceRngTokens.end()) {
          flag(tokens[j].offset, macro, std::string(t),
               "draws randomness ('" + std::string(t) +
                   "'): the RNG stream diverges from an untraced run");
          continue;
        }
        if ((t == "+" && next == "+") || (t == "-" && next == "-")) {
          // ++/-- split into adjacent single-char tokens; require true
          // adjacency so `a + +b` stays legal.
          if (tokens[j + 1].offset == tokens[j].offset + 1) {
            flag(tokens[j].offset, macro, std::string(t) + std::string(t),
                 "mutates state ('" + std::string(t) + std::string(t) +
                     "')");
            ++j;
          }
          continue;
        }
        if (t == "=") {
          // Plain or compound assignment, but not ==, !=, <=, >=, or the
          // right half of those (the tokenizer splits them).
          const bool comparison =
              next == "=" || prev == "=" || prev == "!" || prev == "<" ||
              prev == ">";
          const bool compound = prev == "+" || prev == "-" || prev == "*" ||
                                prev == "/" || prev == "%" || prev == "&" ||
                                prev == "|" || prev == "^";
          if (comparison && !compound) continue;
          flag(tokens[j].offset, macro,
               compound ? std::string(prev) + "=" : "=",
               "mutates state (assignment)");
          continue;
        }
        if (next == "(" &&
            std::find(kTraceMutatorCalls.begin(), kTraceMutatorCalls.end(),
                      t) != kTraceMutatorCalls.end()) {
          flag(tokens[j].offset, macro, std::string(t),
               "calls mutator '" + std::string(t) + "()'");
          continue;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------

bool suppressed_by(const Finding& f, const Suppression& s) {
  if (s.check != "*" && s.check != to_string(f.check)) return false;
  if (s.line != 0 && s.line != f.line) return false;
  if (f.file.size() < s.path_suffix.size()) return false;
  return f.file.compare(f.file.size() - s.path_suffix.size(),
                        s.path_suffix.size(), s.path_suffix) == 0;
}

}  // namespace

std::vector<Suppression> load_suppressions(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("dvlint: cannot read suppressions " + path);
  std::vector<Suppression> out;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t first = line.find_first_not_of(" \t");
    if (first == std::string::npos || line[first] == '#') continue;
    std::istringstream fields(line);
    Suppression s;
    std::string target;
    std::string extra;
    const auto malformed = [&](const std::string& why) {
      return std::runtime_error("dvlint: malformed suppression at " + path +
                               ":" + std::to_string(lineno) + " (" + why +
                               ")");
    };
    if (!(fields >> s.check >> target)) {
      throw malformed("expected '<check-id> <path-suffix>[:line]'");
    }
    if (fields >> extra) {
      throw malformed("trailing fields after '" + target + "'");
    }
    if (s.check != "*" && !check_from_string(s.check)) {
      throw malformed("unknown check id '" + s.check + "'");
    }
    if (const std::size_t colon = target.rfind(':');
        colon != std::string::npos &&
        target.find_first_not_of("0123456789", colon + 1) ==
            std::string::npos) {
      if (colon + 1 == target.size()) {
        throw malformed("trailing ':' without a line number");
      }
      s.line = static_cast<std::size_t>(
          std::stoull(target.substr(colon + 1)));
      if (s.line == 0) {
        throw malformed("line numbers are 1-based; ':0' matches nothing");
      }
      target.resize(colon);
    }
    s.path_suffix = std::move(target);
    out.push_back(std::move(s));
  }
  return out;
}

LintReport run_lint(const LintOptions& options) {
  const fs::path root(options.root);
  if (!fs::is_directory(root)) {
    throw std::runtime_error("dvlint: root is not a directory: " +
                             options.root);
  }

  std::vector<std::string> rel_paths;
  for (const auto& entry : fs::recursive_directory_iterator(root)) {
    if (!entry.is_regular_file()) continue;
    const std::string ext = entry.path().extension().string();
    if (ext != ".hpp" && ext != ".cpp" && ext != ".h" && ext != ".cc") {
      continue;
    }
    rel_paths.push_back(
        fs::relative(entry.path(), root).generic_string());
  }
  std::sort(rel_paths.begin(), rel_paths.end());

  std::vector<std::unique_ptr<SourceFile>> sources;
  sources.reserve(rel_paths.size());
  std::vector<ParsedFile> parsed;
  parsed.reserve(rel_paths.size());
  for (const std::string& rel : rel_paths) {
    sources.push_back(std::make_unique<SourceFile>(
        load_source((root / rel).string(), rel)));
    parsed.push_back(parse_file(*sources.back()));
  }

  std::vector<Finding> findings;
  check_snapshot_completeness(parsed, findings);
  check_determinism(parsed, findings);
  check_layering(parsed, findings);
  check_decode_throw(parsed, findings);
  check_atomic_fold(parsed, findings);
  check_format_migration(parsed, findings);
  check_guarded_by(parsed, findings);
  check_protocol_exhaustiveness(parsed, findings);
  check_rng_stream(parsed, findings);
  check_bounded_decode(parsed, findings);
  check_trace_purity(parsed, findings);

  // Scope filters run before suppression accounting so `suppressed` counts
  // only in-scope findings.
  if (!options.checks.empty()) {
    findings.erase(
        std::remove_if(findings.begin(), findings.end(),
                       [&](const Finding& f) {
                         return std::find(options.checks.begin(),
                                          options.checks.end(),
                                          f.check) == options.checks.end();
                       }),
        findings.end());
  }

  LintReport report;
  report.files_scanned = parsed.size();
  if (options.only_files) {
    const std::set<std::string> wanted(options.only_files->begin(),
                                       options.only_files->end());
    findings.erase(std::remove_if(findings.begin(), findings.end(),
                                  [&](const Finding& f) {
                                    return wanted.count(f.file) == 0;
                                  }),
                   findings.end());
    report.files_scanned = static_cast<std::size_t>(std::count_if(
        rel_paths.begin(), rel_paths.end(),
        [&](const std::string& rel) { return wanted.count(rel) > 0; }));
  }
  for (Finding& f : findings) {
    const bool drop = std::any_of(
        options.suppressions.begin(), options.suppressions.end(),
        [&](const Suppression& s) { return suppressed_by(f, s); });
    if (drop) {
      ++report.suppressed;
    } else {
      report.findings.push_back(std::move(f));
    }
  }
  std::sort(report.findings.begin(), report.findings.end());
  report.findings.erase(
      std::unique(report.findings.begin(), report.findings.end()),
      report.findings.end());
  return report;
}

std::string render_text(const LintReport& report) {
  std::ostringstream os;
  for (const Finding& f : report.findings) {
    os << f.file << ':' << f.line << ": [" << to_string(f.check) << "] "
       << f.message << '\n';
  }
  os << "dvlint: " << report.findings.size() << " finding"
     << (report.findings.size() == 1 ? "" : "s") << ", " << report.suppressed
     << " suppressed, " << report.files_scanned << " files scanned\n";
  return std::move(os).str();
}

std::string render_json(const LintReport& report, const std::string& root) {
  JsonWriter json;
  json.begin_object();
  json.key("schema").value("dynvote.dvlint.v1");
  json.key("root").value(root);
  json.key("files_scanned").value(static_cast<std::uint64_t>(
      report.files_scanned));
  json.key("clean").value(report.findings.empty());
  json.key("suppressed").value(static_cast<std::uint64_t>(report.suppressed));
  json.key("findings").begin_array();
  for (const Finding& f : report.findings) {
    json.begin_object();
    json.key("check").value(to_string(f.check));
    json.key("file").value(f.file);
    json.key("line").value(static_cast<std::uint64_t>(f.line));
    json.key("detail").value(f.detail);
    json.key("message").value(f.message);
    json.end_object();
  }
  json.end_array();
  json.end_object();
  return json.str() + "\n";
}

std::string render_sarif(const LintReport& report, const std::string& root) {
  const auto rule_index = [](CheckId id) -> std::uint64_t {
    const auto checks = all_checks();
    for (std::size_t i = 0; i < checks.size(); ++i) {
      if (checks[i].id == id) return static_cast<std::uint64_t>(i);
    }
    return 0;
  };

  JsonWriter json;
  json.begin_object();
  json.key("$schema").value("https://json.schemastore.org/sarif-2.1.0.json");
  json.key("version").value("2.1.0");
  json.key("runs").begin_array();
  json.begin_object();

  json.key("tool").begin_object();
  json.key("driver").begin_object();
  json.key("name").value("dvlint");
  json.key("informationUri")
      .value("https://github.com/dynvote/dynvote#static-analysis-dvlint");
  json.key("rules").begin_array();
  for (const CheckInfo& info : all_checks()) {
    json.begin_object();
    json.key("id").value(info.name);
    json.key("shortDescription").begin_object();
    json.key("text").value(info.summary);
    json.end_object();
    json.key("defaultConfiguration").begin_object();
    json.key("level").value("error");
    json.end_object();
    json.end_object();
  }
  json.end_array();  // rules
  json.end_object();  // driver
  json.end_object();  // tool

  json.key("columnKind").value("utf16CodeUnits");
  json.key("originalUriBaseIds").begin_object();
  json.key("SRCROOT").begin_object();
  json.key("description").begin_object();
  json.key("text").value("dvlint scan root: " + root);
  json.end_object();
  json.end_object();
  json.end_object();

  json.key("results").begin_array();
  for (const Finding& f : report.findings) {
    json.begin_object();
    json.key("ruleId").value(to_string(f.check));
    json.key("ruleIndex").value(rule_index(f.check));
    json.key("level").value("error");
    json.key("message").begin_object();
    json.key("text").value(f.message);
    json.end_object();
    json.key("locations").begin_array();
    json.begin_object();
    json.key("physicalLocation").begin_object();
    json.key("artifactLocation").begin_object();
    json.key("uri").value(f.file);
    json.key("uriBaseId").value("SRCROOT");
    json.end_object();
    json.key("region").begin_object();
    json.key("startLine").value(
        static_cast<std::uint64_t>(f.line == 0 ? 1 : f.line));
    json.end_object();
    json.end_object();
    json.end_object();
    json.end_array();  // locations
    json.key("partialFingerprints").begin_object();
    json.key("dvlintFinding/v1")
        .value(f.file + ":" + std::to_string(f.line) + ":" +
               std::string(to_string(f.check)) + ":" + f.detail);
    json.end_object();
    json.end_object();
  }
  json.end_array();  // results

  json.end_object();  // run
  json.end_array();   // runs
  json.end_object();
  return json.str() + "\n";
}

}  // namespace dynvote::lint
