#include "lint/parse.hpp"

#include <array>
#include <algorithm>

namespace dynvote::lint {

namespace {

bool is_keyword(std::string_view t) {
  static constexpr std::array<std::string_view, 22> kKeywords = {
      "const",    "constexpr", "static",  "virtual", "override", "final",
      "noexcept", "mutable",   "inline",  "explicit", "using",   "typedef",
      "friend",   "template",  "enum",    "class",    "struct",  "public",
      "protected", "private",  "return",  "auto",
  };
  return std::find(kKeywords.begin(), kKeywords.end(), t) != kKeywords.end();
}

bool chunk_starts_with(const std::string& chunk, std::string_view word) {
  std::size_t i = 0;
  while (i < chunk.size() &&
         std::isspace(static_cast<unsigned char>(chunk[i])) != 0) {
    ++i;
  }
  if (chunk.size() - i < word.size()) return false;
  if (chunk.compare(i, word.size(), word) != 0) return false;
  const std::size_t after = i + word.size();
  return after >= chunk.size() ||
         (std::isalnum(static_cast<unsigned char>(chunk[after])) == 0 &&
          chunk[after] != '_');
}

/// Last non-space token of `chunk` (empty when none).
std::string_view last_token(const std::vector<Token>& tokens) {
  return tokens.empty() ? std::string_view{} : tokens.back().text;
}

}  // namespace

std::size_t match_brace(std::string_view code, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < code.size(); ++i) {
    if (code[i] == '{') ++depth;
    if (code[i] == '}') {
      --depth;
      if (depth == 0) return i;
    }
  }
  return std::string_view::npos;
}

namespace {

/// Parse one class body span into fields, declared methods and inline
/// method bodies.  `body` excludes the outer braces; `base` is its offset
/// in the file's code (for line numbers).
void parse_class_body(const SourceFile& source, std::string_view code,
                      std::size_t body_begin, std::size_t body_end,
                      ClassDecl& decl, ParsedFile& out) {
  std::string chunk;                 // depth-0 text of the current declaration
  std::vector<std::size_t> offsets;  // byte offset of each chunk char

  auto reset = [&] {
    chunk.clear();
    offsets.clear();
  };

  auto chunk_tokens = [&] { return tokenize(chunk); };

  auto method_name_of = [&](const std::vector<Token>& tokens) -> std::string {
    for (std::size_t t = 0; t + 1 < tokens.size(); ++t) {
      if (tokens[t + 1].text == "(" && tokens[t].is_ident() &&
          !is_keyword(tokens[t].text)) {
        return std::string(tokens[t].text);
      }
      if (tokens[t + 1].text == "(") return {};
    }
    return {};
  };

  auto finish_declaration = [&] {
    const std::vector<Token> tokens = chunk_tokens();
    if (tokens.empty()) return reset();
    for (std::string_view skip :
         {"using", "typedef", "friend", "static", "template", "enum", "class",
          "struct", "public", "protected", "private"}) {
      if (chunk_starts_with(chunk, skip)) return reset();
    }
    if (chunk.find('(') != std::string::npos) {
      // Method (or constructor) declaration.
      if (std::string name = method_name_of(tokens); !name.empty()) {
        decl.declared_methods.insert(std::move(name));
      }
      return reset();
    }
    // Field: last identifier before any top-level initializer.
    std::size_t cut = tokens.size();
    for (std::size_t t = 0; t < tokens.size(); ++t) {
      if (tokens[t].text == "=") {
        cut = t;
        break;
      }
    }
    if (cut < 2) return reset();  // need at least type + name
    const Token& name_tok = tokens[cut - 1];
    if (!name_tok.is_ident() || is_keyword(name_tok.text)) return reset();
    FieldDecl field;
    field.name = std::string(name_tok.text);
    field.line = source.line_of(offsets[name_tok.offset]);
    for (const Token& t : tokens) {
      if (t.text == "unordered_map" || t.text == "unordered_set") {
        field.unordered = true;
      }
      if (t.text == "atomic") field.atomic = true;
    }
    decl.fields.push_back(std::move(field));
    reset();
  };

  std::size_t i = body_begin;
  while (i < body_end) {
    const char c = code[i];
    if (c == ';') {
      finish_declaration();
      ++i;
      continue;
    }
    if (c == ':' && i + 1 < body_end && code[i + 1] != ':' &&
        (i == 0 || code[i - 1] != ':')) {
      // Access specifier labels end a chunk; anything else keeps the colon.
      const std::vector<Token> tokens = chunk_tokens();
      const std::string_view last = last_token(tokens);
      if (last == "public" || last == "protected" || last == "private") {
        reset();
        ++i;
        continue;
      }
    }
    if (c == '{') {
      const std::size_t close =
          match_brace(std::string_view(code).substr(0, body_end), i);
      if (close == std::string_view::npos) break;  // malformed; stop safely
      const std::vector<Token> tokens = chunk_tokens();
      const std::string_view last = last_token(tokens);
      const bool is_body = last == ")" || last == "const" ||
                           last == "override" || last == "noexcept" ||
                           last == "final";
      if (is_body) {
        if (std::string name = method_name_of(tokens); !name.empty()) {
          decl.declared_methods.insert(name);
          out.inline_bodies[{decl.name, std::move(name)}].push_back(
              MethodBody{std::string(), i + 1, close, source.line_of(i)});
        }
        reset();
      }
      i = close + 1;
      continue;
    }
    chunk.push_back(c);
    offsets.push_back(i);
    ++i;
  }
  finish_declaration();

  // offsets recorded chunk positions; map FieldDecl lines now.  (Field lines
  // were computed from offsets[name_tok.offset] above -- nothing to do.)
}

/// Names introduced as aliases of unordered container types:
/// `using X = std::unordered_map<...>;`
std::set<std::string, std::less<>> unordered_aliases(
    const std::vector<Token>& tokens) {
  std::set<std::string, std::less<>> aliases;
  for (std::size_t i = 0; i + 2 < tokens.size(); ++i) {
    if (tokens[i].text != "using" || !tokens[i + 1].is_ident() ||
        tokens[i + 2].text != "=") {
      continue;
    }
    for (std::size_t j = i + 3; j < tokens.size() && tokens[j].text != ";";
         ++j) {
      if (tokens[j].text == "unordered_map" ||
          tokens[j].text == "unordered_set") {
        aliases.insert(std::string(tokens[i + 1].text));
        break;
      }
    }
  }
  return aliases;
}

}  // namespace

ParsedFile parse_file(const SourceFile& source) {
  ParsedFile out;
  out.source = &source;
  const std::string& code = source.code;
  const std::string& text = source.text;

  // --- includes (paths live in the raw text; code has them blanked) ---
  for (std::size_t at = code.find("#include"); at != std::string::npos;
       at = code.find("#include", at + 1)) {
    std::size_t q = at + 8;
    while (q < text.size() && (text[q] == ' ' || text[q] == '\t')) ++q;
    if (q >= text.size() || text[q] != '"') continue;
    const std::size_t end = text.find('"', q + 1);
    if (end == std::string::npos) continue;
    out.includes.push_back(IncludeDirective{
        text.substr(q + 1, end - q - 1), source.line_of(at)});
  }

  const std::vector<Token> tokens = tokenize(code);

  // --- class/struct declarations ---
  for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
    const std::string_view kw = tokens[i].text;
    if (kw != "class" && kw != "struct") continue;
    if (i > 0 && tokens[i - 1].text == "enum") continue;
    if (!tokens[i + 1].is_ident() || is_keyword(tokens[i + 1].text)) continue;

    ClassDecl decl;
    decl.name = std::string(tokens[i + 1].text);
    decl.line = source.line_of(tokens[i + 1].offset);

    std::size_t j = i + 2;
    // Qualified definitions (`struct Coordinator::Impl {`) declare the
    // last component; the qualifiers are only a path to it.
    while (j + 1 < tokens.size() && tokens[j].text == "::" &&
           tokens[j + 1].is_ident() && !is_keyword(tokens[j + 1].text)) {
      decl.name = std::string(tokens[j + 1].text);
      decl.line = source.line_of(tokens[j + 1].offset);
      j += 2;
    }
    if (j < tokens.size() && tokens[j].text == "final") ++j;
    if (j >= tokens.size()) break;
    if (tokens[j].text == ";" || tokens[j].text == "{") {
      // fall through -- forward declaration or plain body
    } else if (tokens[j].text == ":") {
      // Base clause: collect base identifiers, dropping access keywords,
      // `virtual`, qualifiers and template argument lists.
      ++j;
      int angle = 0;
      std::string last_ident;
      while (j < tokens.size() && tokens[j].text != "{" &&
             tokens[j].text != ";") {
        const std::string_view t = tokens[j].text;
        if (t == "<") ++angle;
        if (t == ">") angle = std::max(0, angle - 1);
        if (angle == 0) {
          if (t == ",") {
            if (!last_ident.empty()) decl.bases.push_back(last_ident);
            last_ident.clear();
          } else if (tokens[j].is_ident() && t != "public" &&
                     t != "protected" && t != "private" && t != "virtual") {
            last_ident = std::string(t);
          }
        }
        ++j;
      }
      if (!last_ident.empty()) decl.bases.push_back(last_ident);
    } else {
      continue;  // `class Foo* ptr;` and other non-declarations
    }
    if (j >= tokens.size() || tokens[j].text != ";") {
      if (j >= tokens.size() || tokens[j].text != "{") continue;
      const std::size_t open = tokens[j].offset;
      const std::size_t close = match_brace(code, open);
      if (close == std::string::npos) continue;
      parse_class_body(source, code, open + 1, close, decl, out);
      out.classes.push_back(std::move(decl));
    }
  }

  // --- enum declarations ---
  for (std::size_t i = 0; i + 2 < tokens.size(); ++i) {
    if (tokens[i].text != "enum") continue;
    std::size_t j = i + 1;
    if (tokens[j].text == "class" || tokens[j].text == "struct") ++j;
    if (j >= tokens.size() || !tokens[j].is_ident() ||
        is_keyword(tokens[j].text)) {
      continue;  // anonymous enum
    }
    EnumDecl decl;
    decl.name = std::string(tokens[j].text);
    decl.line = source.line_of(tokens[j].offset);
    ++j;
    if (j < tokens.size() && tokens[j].text == ":") {
      // Underlying type; skip to the body or the end of a forward decl.
      while (j < tokens.size() && tokens[j].text != "{" &&
             tokens[j].text != ";") {
        ++j;
      }
    }
    if (j >= tokens.size() || tokens[j].text != "{") continue;
    const std::size_t close = match_brace(code, tokens[j].offset);
    if (close == std::string::npos) continue;
    // Enumerators: the identifier opening each comma-separated item;
    // initializer expressions after `=` are skipped.
    bool expect_name = true;
    int depth = 0;
    for (std::size_t k = j + 1;
         k < tokens.size() && tokens[k].offset < close; ++k) {
      const std::string_view t = tokens[k].text;
      // Parens/braces only: `<` in an initializer is likelier a shift than
      // a template argument list here.
      if (t == "(" || t == "{") ++depth;
      if (t == ")" || t == "}") depth = std::max(0, depth - 1);
      if (depth > 0) continue;
      if (t == ",") {
        expect_name = true;
        continue;
      }
      if (expect_name && tokens[k].is_ident() && !is_keyword(t)) {
        decl.enumerators.emplace_back(t);
        expect_name = false;
      }
    }
    if (!decl.enumerators.empty()) out.enums.push_back(std::move(decl));
  }

  // --- out-of-line `Class::method(...) ... { body }` definitions ---
  for (std::size_t i = 0; i + 3 < tokens.size(); ++i) {
    if (!tokens[i].is_ident() || is_keyword(tokens[i].text)) continue;
    if (tokens[i + 1].text != "::") continue;
    if (!tokens[i + 2].is_ident()) continue;
    if (tokens[i + 3].text != "(") continue;

    // Walk the parameter list, then decide declaration vs definition.
    std::size_t j = i + 3;
    int parens = 0;
    for (; j < tokens.size(); ++j) {
      if (tokens[j].text == "(") ++parens;
      if (tokens[j].text == ")" && --parens == 0) break;
    }
    if (j >= tokens.size()) continue;
    ++j;
    bool ctor_init = false;
    std::size_t body_open = std::string::npos;
    for (; j < tokens.size(); ++j) {
      const std::string_view t = tokens[j].text;
      if (parens > 0 || t == "(") {
        parens += (t == "(") ? 1 : 0;
        parens -= (t == ")") ? 1 : 0;
        continue;
      }
      if (t == ";") break;  // declaration (or a qualified call statement)
      if (t == "{") {
        // In a constructor initializer list, `member{init}` braces follow an
        // identifier; the body brace follows `)`, `}` or the `:` itself.
        if (ctor_init && j > 0 && tokens[j - 1].is_ident()) {
          const std::size_t close = match_brace(code, tokens[j].offset);
          if (close == std::string::npos) break;
          while (j < tokens.size() && tokens[j].offset <= close) ++j;
          --j;
          continue;
        }
        body_open = tokens[j].offset;
        break;
      }
      if (t == ":") {
        ctor_init = true;
        continue;
      }
      if (t == "const" || t == "noexcept" || t == "override" || ctor_init) {
        continue;
      }
      // Anything else at depth 0 (a comma, an operator, `=`) means this was
      // an expression or declaration, not a definition.
      break;
    }
    if (body_open == std::string::npos) continue;
    const std::size_t close = match_brace(code, body_open);
    if (close == std::string::npos) continue;
    out.out_of_line[{std::string(tokens[i].text),
                     std::string(tokens[i + 2].text)}]
        .push_back(MethodBody{std::string(), body_open + 1, close,
                              source.line_of(body_open)});
  }

  // --- unordered-container variable names ---
  const auto aliases = unordered_aliases(tokens);
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const std::string_view t = tokens[i].text;
    const bool unordered_type = t == "unordered_map" || t == "unordered_set" ||
                                (!t.empty() && aliases.count(t) > 0);
    if (!unordered_type) continue;
    if (i >= 1 && tokens[i - 1].text == "using") continue;  // the alias itself
    std::size_t j = i + 1;
    if (j < tokens.size() && tokens[j].text == "<") {
      int angle = 0;
      for (; j < tokens.size(); ++j) {
        if (tokens[j].text == "<") ++angle;
        if (tokens[j].text == ">" && --angle == 0) break;
      }
      ++j;
    }
    while (j < tokens.size() &&
           (tokens[j].text == "&" || tokens[j].text == "*" ||
            tokens[j].text == "const")) {
      ++j;
    }
    if (j < tokens.size() && tokens[j].is_ident() &&
        !is_keyword(tokens[j].text)) {
      out.unordered_names.insert(std::string(tokens[j].text));
    }
  }

  // --- range-for statements ---
  for (std::size_t i = 0; i + 2 < tokens.size(); ++i) {
    if (tokens[i].text != "for" || tokens[i + 1].text != "(") continue;
    int parens = 0;
    std::size_t colon = 0;
    std::size_t close = 0;
    for (std::size_t j = i + 1; j < tokens.size(); ++j) {
      if (tokens[j].text == "(") ++parens;
      if (tokens[j].text == ")" && --parens == 0) {
        close = j;
        break;
      }
      if (tokens[j].text == ":" && parens == 1 && colon == 0) colon = j;
      if (tokens[j].text == ";" && parens == 1) {
        colon = 0;  // classic three-clause for
        break;
      }
    }
    if (colon == 0 || close == 0) continue;
    RangeFor rf;
    rf.line = source.line_of(tokens[colon].offset);
    for (std::size_t j = colon + 1; j < close; ++j) {
      if (tokens[j].is_ident() && !is_keyword(tokens[j].text)) {
        rf.container = std::string(tokens[j].text);
      }
    }
    if (!rf.container.empty()) out.range_fors.push_back(std::move(rf));
  }

  return out;
}

}  // namespace dynvote::lint
