// Flow-aware lock-discipline analysis for dvlint's guarded-by check.
//
// The walker models the things the repo's concurrency style actually uses:
// brace scopes, RAII `lock_guard`/`unique_lock`/`scoped_lock` holds
// (including mid-scope `.unlock()`/`.lock()` transitions and
// `std::defer_lock`), `// dvlint: requires_lock(<mutex>)` contracts on
// helper functions that demand a caller-held lock, `// dvlint:
// guarded_by(<mutex>)` on locals as well as fields, and constructor/
// destructor exemption (no concurrent access can exist while the object is
// being built or torn down).  Like the rest of dvlint it is lexical, not
// semantic: accesses whose base object cannot be typed from the local
// declarations in view fail safe (no finding) rather than guess.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "lint/parse.hpp"

namespace dynvote::lint {

/// A field of class `cls` annotated `// dvlint: guarded_by(<mutex>)`:
/// touching it requires a scope holding `mutex`.
struct GuardedField {
  std::string cls;
  std::string field;
  std::string mutex;  // last identifier of the annotation argument
};

/// One touch of a guarded field (or guarded local) outside a scope holding
/// its mutex.
struct GuardViolation {
  std::size_t offset = 0;  // byte offset of the identifier in `code`
  std::string name;
  std::string mutex;
};

/// Walk one file's scopes and report every unguarded touch.  `guarded` is
/// the repo-wide field registry; guarded locals are discovered per file
/// from their own annotations.
std::vector<GuardViolation> guarded_by_violations(
    const ParsedFile& file, const std::vector<GuardedField>& guarded);

}  // namespace dynvote::lint
