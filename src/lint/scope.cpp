#include "lint/scope.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <map>
#include <optional>
#include <span>

namespace dynvote::lint {

namespace {

constexpr std::size_t kNpos = std::string_view::npos;

bool is_reserved(std::string_view t) {
  static constexpr std::array<std::string_view, 52> kReserved = {
      "auto",      "bool",      "break",     "case",     "catch",
      "char",      "class",     "const",     "constexpr", "continue",
      "default",   "delete",    "do",        "double",   "else",
      "enum",      "explicit",  "extern",    "false",    "final",
      "float",     "for",       "friend",    "goto",     "if",
      "inline",    "int",       "long",      "mutable",  "namespace",
      "new",       "noexcept",  "nullptr",   "operator", "override",
      "private",   "protected", "public",    "return",   "short",
      "signed",    "sizeof",    "static",    "struct",   "switch",
      "template",  "this",      "throw",     "true",     "try",
      "typedef",   "typename",
  };
  static constexpr std::array<std::string_view, 7> kMore = {
      "union", "unsigned", "using", "virtual", "void", "volatile", "while"};
  return std::find(kReserved.begin(), kReserved.end(), t) != kReserved.end() ||
         std::find(kMore.begin(), kMore.end(), t) != kMore.end();
}

/// Keywords that may open a type chain (`unsigned long n = ...`).
bool is_builtin_type(std::string_view t) {
  return t == "bool" || t == "char" || t == "double" || t == "float" ||
         t == "int" || t == "long" || t == "short" || t == "signed" ||
         t == "unsigned" || t == "void";
}

bool is_decl_qualifier(std::string_view t) {
  return t == "const" || t == "constexpr" || t == "static" ||
         t == "mutable" || t == "volatile" || t == "inline" ||
         t == "typename" || t == "thread_local";
}

bool is_lock_type(std::string_view t) {
  return t == "lock_guard" || t == "unique_lock" || t == "scoped_lock";
}

/// Last identifier of an annotation argument ("impl->mutex" -> "mutex").
std::string last_ident_of(std::string_view expr) {
  std::size_t end = expr.size();
  while (end > 0 && !(std::isalnum(static_cast<unsigned char>(
                          expr[end - 1])) != 0 ||
                      expr[end - 1] == '_')) {
    --end;
  }
  std::size_t begin = end;
  while (begin > 0 && (std::isalnum(static_cast<unsigned char>(
                           expr[begin - 1])) != 0 ||
                       expr[begin - 1] == '_')) {
    --begin;
  }
  return std::string(expr.substr(begin, end - begin));
}

struct Hold {
  std::string mutex;    // last identifier of the locked expression
  std::string lockvar;  // RAII object name; empty for requires_lock holds
  bool active = true;
};

struct Local {
  std::string name;
  std::string type;         // empty when not lexically resolvable
  std::string guard_mutex;  // nonempty for `guarded_by(...)` locals
};

enum class ScopeKind { kRoot, kNamespace, kClass, kBlock };

struct Scope {
  ScopeKind kind = ScopeKind::kBlock;
  std::string class_ctx;  // enclosing class for member resolution
  std::string ctor_of;    // set in a ctor/dtor scope of that class
  bool ignore = false;    // `ignore(guarded-by)` on the scope header
  std::vector<Hold> holds;
  std::vector<Local> locals;
};

/// A matched declaration prefix: `[quals] Type[<...>] [&*] name [terminator]`.
struct DeclMatch {
  std::string type;
  std::string name;
  /// Index (within the parsed span) of a `(`/`{` initializer opener
  /// directly after the name; kNpos when the declaration has none.
  std::size_t init_open = kNpos;
};

/// Try to read a variable declaration from the front of `toks`.  Handles
/// the `auto name = std::make_unique<T>(...)` / `std::get_if<T>(...)`
/// shapes (resolving T) and plain `Type name` chains.  Fails (nullopt) on
/// anything that does not look like a declaration.
std::optional<DeclMatch> parse_decl(std::span<const Token> toks) {
  std::size_t k = 0;
  while (k < toks.size() && is_decl_qualifier(toks[k].text)) ++k;
  if (k >= toks.size()) return std::nullopt;

  if (toks[k].text == "auto") {
    ++k;
    while (k < toks.size() &&
           (toks[k].text == "&" || toks[k].text == "*" ||
            toks[k].text == "const")) {
      ++k;
    }
    if (k >= toks.size() || !toks[k].is_ident() || is_reserved(toks[k].text)) {
      return std::nullopt;
    }
    DeclMatch m;
    m.name = std::string(toks[k].text);
    if (k + 1 >= toks.size() || toks[k + 1].text != "=") return std::nullopt;
    // Resolve `std::make_unique<T>` / `make_shared<T>` / `get_if<T>`.
    for (std::size_t j = k + 2; j + 2 < toks.size(); ++j) {
      const std::string_view t = toks[j].text;
      if ((t == "make_unique" || t == "make_shared" || t == "get_if") &&
          toks[j + 1].text == "<") {
        std::string type;
        for (std::size_t a = j + 2; a < toks.size(); ++a) {
          const std::string_view u = toks[a].text;
          if (u == ">" || u == "," || u == "<") break;
          if (toks[a].is_ident() && !is_reserved(u)) type = std::string(u);
        }
        m.type = std::move(type);
        break;
      }
    }
    return m;
  }

  // Type chain: ident (:: ident)*, allowing builtin type keywords.
  if (!toks[k].is_ident() ||
      (is_reserved(toks[k].text) && !is_builtin_type(toks[k].text))) {
    return std::nullopt;
  }
  std::string type(toks[k].text);
  ++k;
  while (k + 1 < toks.size() && toks[k].text == "::" &&
         toks[k + 1].is_ident() && !is_reserved(toks[k + 1].text)) {
    type = std::string(toks[k + 1].text);
    k += 2;
  }
  if (k < toks.size() && toks[k].text == "<") {
    int angle = 0;
    for (; k < toks.size(); ++k) {
      if (toks[k].text == "<") ++angle;
      if (toks[k].text == ">" && --angle == 0) break;
    }
    if (k >= toks.size()) return std::nullopt;  // `a < b` expression
    ++k;
  }
  while (k < toks.size() &&
         (toks[k].text == "&" || toks[k].text == "*" ||
          toks[k].text == "const")) {
    ++k;
  }
  if (k >= toks.size() || !toks[k].is_ident() || is_reserved(toks[k].text)) {
    return std::nullopt;
  }
  DeclMatch m;
  m.type = std::move(type);
  m.name = std::string(toks[k].text);
  if (k + 1 < toks.size()) {
    const std::string_view term = toks[k + 1].text;
    if (term == "(" || term == "{") {
      m.init_open = k + 1;
    } else if (term != "=" && term != ":" && term != "," && term != ")" &&
               term != ";") {
      return std::nullopt;
    }
  }
  return m;
}

/// Split the tokens of one paren/brace group into top-level comma-separated
/// argument spans.  `open` indexes the opener within `toks`.
std::vector<std::span<const Token>> split_args(std::span<const Token> toks,
                                               std::size_t open) {
  std::vector<std::span<const Token>> out;
  int depth = 0;
  std::size_t begin = open + 1;
  for (std::size_t k = open; k < toks.size(); ++k) {
    const std::string_view t = toks[k].text;
    if (t == "(" || t == "{" || t == "[") ++depth;
    if (t == ")" || t == "}" || t == "]") {
      if (--depth == 0) {
        if (k > begin) out.push_back(toks.subspan(begin, k - begin));
        return out;
      }
    }
    if (t == "," && depth == 1) {
      if (k > begin) out.push_back(toks.subspan(begin, k - begin));
      begin = k + 1;
    }
  }
  return out;
}

class Walker {
 public:
  Walker(const ParsedFile& file,
         const std::map<std::pair<std::string, std::string>, std::string>&
             guard_map)
      : src_(*file.source),
        guard_map_(guard_map),
        tokens_(tokenize(file.source->code)) {
    scopes_.push_back(Scope{ScopeKind::kRoot, {}, {}, false, {}, {}});
  }

  std::vector<GuardViolation> run() {
    std::size_t stmt_begin = 0;
    int stmt_parens = 0;
    for (std::size_t i = 0; i < tokens_.size(); ++i) {
      const std::string_view t = tokens_[i].text;
      if (t == "(") ++stmt_parens;
      if (t == ")") stmt_parens = std::max(0, stmt_parens - 1);
      if (t == "{") {
        open_scope(stmt_begin, i);
        // Skip the whole group when this brace is a class member's default
        // initializer or similar?  No: nested scopes are walked normally.
        stmt_begin = i + 1;
        stmt_parens = 0;
        continue;
      }
      if (t == "}") {
        if (scopes_.size() > 1) scopes_.pop_back();
        stmt_begin = i + 1;
        stmt_parens = 0;
        continue;
      }
      if (t == ";" && stmt_parens == 0) {
        end_statement(stmt_begin, i);
        stmt_begin = i + 1;
        continue;
      }
      if (tokens_[i].is_ident()) check_access(i);
    }
    return std::move(out_);
  }

 private:
  /// Annotation lines covering a statement header: from its first token's
  /// line through `last_line`.
  template <typename Fn>
  void each_header_line(std::size_t begin_tok, std::size_t last_line,
                        Fn&& fn) {
    std::size_t first_line = last_line;
    if (begin_tok < tokens_.size()) {
      first_line = std::min(first_line,
                            src_.line_of(tokens_[begin_tok].offset));
    }
    for (std::size_t ln = first_line; ln <= last_line; ++ln) fn(ln);
  }

  void open_scope(std::size_t stmt_begin, std::size_t open_idx) {
    const std::span<const Token> header(tokens_.data() + stmt_begin,
                                        open_idx - stmt_begin);
    Scope scope;
    scope.class_ctx = scopes_.back().class_ctx;
    scope.ctor_of.clear();

    // Classify: namespace / class-like / block.
    bool is_enum = false;
    std::size_t class_kw = kNpos;
    for (std::size_t k = 0; k < header.size(); ++k) {
      const std::string_view t = header[k].text;
      if (t == "namespace") {
        scopes_.push_back(Scope{ScopeKind::kNamespace, scope.class_ctx,
                                {}, false, {}, {}});
        return;
      }
      if (t == "enum") is_enum = true;
      if ((t == "class" || t == "struct" || t == "union") && !is_enum) {
        class_kw = k;
      }
    }
    if (is_enum) {
      scopes_.push_back(Scope{ScopeKind::kClass, scope.class_ctx, {},
                              false, {}, {}});
      return;
    }
    if (class_kw != kNpos && class_kw + 1 < header.size() &&
        header[class_kw + 1].is_ident() &&
        !is_reserved(header[class_kw + 1].text)) {
      scope.kind = ScopeKind::kClass;
      // Qualified definitions (`struct Coordinator::Impl {`) bind the last
      // component, matching the parser's ClassDecl name.
      std::size_t n = class_kw + 1;
      while (n + 2 < header.size() && header[n + 1].text == "::" &&
             header[n + 2].is_ident() && !is_reserved(header[n + 2].text)) {
        n += 2;
      }
      scope.class_ctx = std::string(header[n].text);
      scopes_.push_back(std::move(scope));
      return;
    }

    scope.kind = ScopeKind::kBlock;

    // Out-of-line `Cls::method(` headers rebind the class context; a
    // method named like the class (or `~Cls`) is a ctor/dtor.
    std::size_t first_paren = kNpos;
    for (std::size_t k = 0; k < header.size(); ++k) {
      if (header[k].text == "(") {
        first_paren = k;
        break;
      }
    }
    if (first_paren != kNpos && first_paren >= 1) {
      const std::size_t m = first_paren - 1;  // method name index
      if (m >= 2 && header[m].is_ident() && header[m - 1].text == "::" &&
          header[m - 2].is_ident()) {
        scope.class_ctx = std::string(header[m - 2].text);
        if (header[m].text == scope.class_ctx) scope.ctor_of = scope.class_ctx;
      } else if (m >= 2 && header[m].is_ident() && header[m - 1].text == "~" &&
                 header[m - 2].text == "::") {
        scope.class_ctx = std::string(header[m].text);
        scope.ctor_of = scope.class_ctx;
      } else if (!scope.class_ctx.empty() && header[m].is_ident() &&
                 scopes_.back().kind == ScopeKind::kClass) {
        // Inline ctor/dtor in the class body.
        if (header[m].text == scope.class_ctx &&
            (m == 0 || header[m - 1].text != "::")) {
          scope.ctor_of = scope.class_ctx;
        }
        if (m >= 1 && header[m - 1].text == "~" &&
            header[m].text == scope.class_ctx) {
          scope.ctor_of = scope.class_ctx;
        }
      }
    }

    // Parameters: declarations inside the last top-level paren group.
    std::size_t last_group = kNpos;
    int depth = 0;
    for (std::size_t k = 0; k < header.size(); ++k) {
      if (header[k].text == "(" && depth++ == 0) last_group = k;
      if (header[k].text == ")") depth = std::max(0, depth - 1);
    }
    if (last_group != kNpos) {
      for (std::span<const Token> arg : split_args(header, last_group)) {
        // Classic-for init clauses arrive `;`-joined; parse the first.
        if (const auto decl = parse_decl(arg)) {
          scope.locals.push_back(Local{decl->name, decl->type, {}});
        }
      }
    }

    // Header annotations: requires_lock contracts and scope-level ignores.
    const std::size_t open_line = src_.line_of(tokens_[open_idx].offset);
    std::string lock_param;
    std::size_t lock_params = 0;
    for (const Local& l : scope.locals) {
      if (l.type == "unique_lock") {
        lock_param = l.name;
        ++lock_params;
      }
    }
    if (lock_params != 1) lock_param.clear();
    each_header_line(stmt_begin, open_line, [&](std::size_t ln) {
      if (const auto arg = src_.annotation_arg(ln, "requires_lock");
          arg && !arg->empty()) {
        Hold hold{last_ident_of(*arg), lock_param, true};
        if (std::none_of(scope.holds.begin(), scope.holds.end(),
                         [&](const Hold& h) {
                           return h.mutex == hold.mutex;
                         })) {
          scope.holds.push_back(std::move(hold));
        }
      }
      if (src_.has_annotation(ln, "ignore(guarded-by)")) scope.ignore = true;
    });

    scopes_.push_back(std::move(scope));
  }

  void end_statement(std::size_t begin, std::size_t semi) {
    Scope& scope = scopes_.back();
    const std::span<const Token> stmt(tokens_.data() + begin, semi - begin);
    if (stmt.empty()) return;

    // Mid-scope lock flow: `x.unlock()` / `x.lock()` on a known RAII var.
    for (std::size_t k = 0; k + 3 < stmt.size(); ++k) {
      if (!stmt[k].is_ident() || stmt[k + 1].text != "." ||
          stmt[k + 3].text != "(") {
        continue;
      }
      const std::string_view call = stmt[k + 2].text;
      if (call != "lock" && call != "unlock") continue;
      for (Scope& s : scopes_) {
        for (Hold& h : s.holds) {
          if (!h.lockvar.empty() && h.lockvar == stmt[k].text) {
            h.active = (call == "lock");
          }
        }
      }
    }

    // Local declarations (class bodies declare fields, not locals; those
    // come in through the guarded-field registry instead).
    if (scope.kind != ScopeKind::kBlock) return;
    const auto decl = parse_decl(stmt);
    if (!decl) return;

    Local local{decl->name, decl->type, {}};
    const std::size_t stmt_line = src_.line_of(stmt.front().offset);
    const std::size_t semi_line = src_.line_of(tokens_[semi].offset);
    for (std::size_t ln = stmt_line; ln <= semi_line; ++ln) {
      if (const auto arg = src_.annotation_arg(ln, "guarded_by");
          arg && !arg->empty()) {
        local.guard_mutex = last_ident_of(*arg);
        break;
      }
    }

    // RAII lock declarations create holds in this scope.
    if (is_lock_type(decl->type) && decl->init_open != kNpos) {
      bool defer = false;
      std::vector<std::string> mutexes;
      for (std::span<const Token> arg : split_args(stmt, decl->init_open)) {
        bool tag = false;
        std::string last;
        for (const Token& t : arg) {
          if (t.text == "defer_lock") defer = tag = true;
          if (t.text == "adopt_lock" || t.text == "try_to_lock") tag = true;
          if (t.is_ident() && !is_reserved(t.text) && t.text != "std") {
            last = std::string(t.text);
          }
        }
        if (!tag && !last.empty()) mutexes.push_back(std::move(last));
      }
      for (std::string& m : mutexes) {
        scope.holds.push_back(Hold{std::move(m), decl->name, !defer});
      }
    }
    scope.locals.push_back(std::move(local));
  }

  const Local* find_local(std::string_view name) const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      for (const Local& l : it->locals) {
        if (l.name == name) return &l;
      }
    }
    return nullptr;
  }

  bool holding(std::string_view mutex) const {
    for (const Scope& s : scopes_) {
      for (const Hold& h : s.holds) {
        if (h.active && h.mutex == mutex) return true;
      }
    }
    return false;
  }

  bool exempt(std::string_view cls) const {
    for (const Scope& s : scopes_) {
      if (s.ignore) return true;
      if (!cls.empty() && s.ctor_of == cls) return true;
    }
    return false;
  }

  void require(std::size_t idx, std::string_view cls,
               std::string_view mutex) {
    if (holding(mutex) || exempt(cls)) return;
    out_.push_back(GuardViolation{tokens_[idx].offset,
                                  std::string(tokens_[idx].text),
                                  std::string(mutex)});
  }

  void check_access(std::size_t i) {
    if (scopes_.back().kind != ScopeKind::kBlock) return;
    const std::string_view name = tokens_[i].text;
    if (is_reserved(name)) return;

    // Qualified names (`Cls::member`) and destructor mentions are skipped.
    if (i > 0 && (tokens_[i - 1].text == "::" || tokens_[i - 1].text == "~")) {
      return;
    }

    // Member access: resolve the base object's type.
    std::size_t base_idx = kNpos;
    if (i >= 2 && tokens_[i - 1].text == ".") {
      base_idx = i - 2;
    } else if (i >= 3 && tokens_[i - 1].text == ">" &&
               tokens_[i - 2].text == "-") {
      base_idx = i - 3;
    }
    if (base_idx != kNpos) {
      const Token& base = tokens_[base_idx];
      if (base.text == "this") {
        member_lookup(i, scopes_.back().class_ctx);
        return;
      }
      if (!base.is_ident()) return;  // `f().x`, `a[i].x`: not resolvable
      const Local* local = find_local(base.text);
      if (local == nullptr || local->type.empty()) return;  // fail safe
      member_lookup(i, local->type);
      return;
    }

    // Unqualified: a local (guarded or plain) wins over the class context.
    if (const Local* local = find_local(name)) {
      if (!local->guard_mutex.empty()) require(i, {}, local->guard_mutex);
      return;
    }
    member_lookup(i, scopes_.back().class_ctx);
  }

  void member_lookup(std::size_t i, std::string_view cls) {
    if (cls.empty()) return;
    const auto it = guard_map_.find(
        {std::string(cls), std::string(tokens_[i].text)});
    if (it == guard_map_.end()) return;
    require(i, cls, it->second);
  }

  const SourceFile& src_;
  const std::map<std::pair<std::string, std::string>, std::string>&
      guard_map_;
  std::vector<Token> tokens_;
  std::vector<Scope> scopes_;
  std::vector<GuardViolation> out_;
};

}  // namespace

std::vector<GuardViolation> guarded_by_violations(
    const ParsedFile& file, const std::vector<GuardedField>& guarded) {
  std::map<std::pair<std::string, std::string>, std::string> guard_map;
  for (const GuardedField& g : guarded) {
    guard_map.emplace(std::make_pair(g.cls, g.field), g.mutex);
  }
  Walker walker(file, guard_map);
  return walker.run();
}

}  // namespace dynvote::lint
