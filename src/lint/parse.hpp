// Structural extraction over preprocessed sources for dvlint.
//
// This is deliberately not a C++ parser: it is a brace-and-token scanner
// tuned to the shapes this repository (and the fixture corpus) actually
// uses -- one declaration per line, trailing-underscore members, out-of-line
// `Class::method` definitions.  Where real parsing would be needed the
// checks fail safe (no finding) rather than guess.
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "lint/source.hpp"

namespace dynvote::lint {

struct FieldDecl {
  std::string name;
  std::size_t line = 0;
  /// Declared with an unordered_map/unordered_set type (directly or via a
  /// local `using` alias).
  bool unordered = false;
  /// Declared with a std::atomic type (for the atomic-fold check).
  bool atomic = false;
};

struct MethodBody {
  std::string name;
  /// Byte range of the body in SourceFile::code, braces excluded.
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t line = 0;  // line of the opening brace
};

struct ClassDecl {
  std::string name;
  /// Public base class names (identifier only, template args dropped).
  std::vector<std::string> bases;
  std::vector<FieldDecl> fields;
  /// Names of member functions *declared* in the class body.
  std::set<std::string> declared_methods;
  std::size_t line = 0;
};

struct IncludeDirective {
  std::string path;  // quoted form only; angle includes are ignored
  std::size_t line = 0;
};

/// One `enum [class] Name [: type] { ... }` declaration.
struct EnumDecl {
  std::string name;
  std::vector<std::string> enumerators;
  std::size_t line = 0;  // line of the name
};

/// One `for (decl : expr)` statement.
struct RangeFor {
  std::size_t line = 0;
  /// Last identifier of the range expression -- the container name for the
  /// common `for (x : container)` / `for (x : obj.member_)` shapes.
  std::string container;
};

struct ParsedFile {
  const SourceFile* source = nullptr;
  std::vector<IncludeDirective> includes;
  std::vector<ClassDecl> classes;
  std::vector<EnumDecl> enums;
  /// Out-of-line definitions: (class name, method) -> body spans.
  std::map<std::pair<std::string, std::string>, std::vector<MethodBody>>
      out_of_line;
  /// In-class (inline) method bodies: same keying.
  std::map<std::pair<std::string, std::string>, std::vector<MethodBody>>
      inline_bodies;
  /// Variable names declared with an unordered container type in this
  /// file (members, locals, parameters), for the iteration check.
  std::set<std::string> unordered_names;
  std::vector<RangeFor> range_fors;
};

ParsedFile parse_file(const SourceFile& source);

/// Find the offset of the matching close brace for the open brace at
/// `open` (which must index a '{' in `code`); npos when unbalanced.
std::size_t match_brace(std::string_view code, std::size_t open);

}  // namespace dynvote::lint
