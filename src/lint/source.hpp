// Source loading and lexical preprocessing for dvlint.
//
// Checks never look at raw text: they look at `code`, a same-length copy of
// the file with every comment, string/char literal (raw `R"(...)"` forms
// included), and non-#include preprocessor directive blanked to spaces
// (newlines preserved, so offsets and line numbers agree with the raw
// file).  Backslash line-continuations extend `//` comments and directives
// across lines, as in the language.  Annotations (`dvlint: ...` markers)
// are harvested from the comments before blanking; an annotation on a
// comment-only line also covers the next source line, so fields can be
// annotated either inline or on the line above.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace dynvote::lint {

struct SourceFile {
  /// Path relative to the scan root, forward slashes.
  std::string rel_path;
  /// Raw file contents.
  std::string text;
  /// `text` with comments and string/char literals blanked to spaces.
  std::string code;
  /// annotations[i] = dvlint markers covering line i+1 (1-based lines).
  std::vector<std::vector<std::string>> annotations;

  /// 1-based line number of byte `offset` in `text`/`code`.
  std::size_t line_of(std::size_t offset) const;

  /// True when `marker` (e.g. "transient", "ignore(layering)") covers
  /// `line`.  Matches "transient(...)" for marker "transient" too.
  bool has_annotation(std::size_t line, std::string_view marker) const;

  /// The parenthesized payload of a `marker(arg)` annotation covering
  /// `line` -- e.g. "mutex_" for marker "guarded_by" and annotation
  /// "guarded_by(mutex_)".  nullopt when no such annotation covers the
  /// line; an argument-less marker yields an empty string.
  std::optional<std::string> annotation_arg(std::size_t line,
                                            std::string_view marker) const;
};

/// Load and preprocess one file.  Throws std::runtime_error when unreadable.
SourceFile load_source(const std::string& abs_path, std::string rel_path);

struct Token {
  std::string_view text;
  /// Byte offset of the token within the span handed to tokenize().
  std::size_t offset = 0;

  bool is_ident() const {
    const char c = text.empty() ? '\0' : text.front();
    return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z');
  }
};

/// Identifier/number/punctuation tokens of a code span, in order.
/// Punctuation is split into single characters except `::`.
std::vector<Token> tokenize(std::string_view code);

}  // namespace dynvote::lint
