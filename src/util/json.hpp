// Dependency-free JSON emission (and a small validator) for the sweep
// runner's artifacts.
//
// The writer is a streaming, comma-managing serializer: callers nest
// begin_object/begin_array and key/value calls and get syntactically valid
// RFC-8259 output (the test suite and the CI smoke sweep both re-parse
// what it emits).  Doubles print round-trippably via %.17g with NaN and
// infinities -- which JSON cannot represent -- emitted as null.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace dynvote {

class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Object member name; must be followed by a value or container.
  JsonWriter& key(std::string_view name);

  JsonWriter& value(std::string_view text);
  JsonWriter& value(const char* text);
  JsonWriter& value(double number);
  JsonWriter& value(std::uint64_t number);
  JsonWriter& value(std::int64_t number);
  JsonWriter& value(bool flag);
  JsonWriter& null();

  /// The document so far.  Call once nesting is balanced.
  const std::string& str() const;

 private:
  void separate();

  enum class Frame { kObject, kArray };
  std::string out_;
  std::vector<Frame> stack_;
  bool needs_comma_ = false;
  bool after_key_ = false;
};

/// Escape `text` as a JSON string literal, including the quotes.
std::string json_quote(std::string_view text);

/// Strict structural validation of one JSON document (used by tests to
/// check emitted manifests without an external parser).
bool json_is_valid(std::string_view document);

namespace detail {
struct JsonDomParser;
}  // namespace detail

/// A parsed JSON document -- the read side of the artifact pipeline.
/// Numbers are held as double (every manifest number fits; fingerprints
/// travel as strings precisely so this lossiness cannot bite).  Object
/// member order is preserved; lookup is linear, which is fine at manifest
/// scale.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  using Member = std::pair<std::string, JsonValue>;

  JsonValue() = default;

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  /// Typed accessors; DV_REQUIRE on kind mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const std::vector<JsonValue>& items() const;
  const std::vector<Member>& members() const;

  /// Object member by key, nullptr when absent or not an object.
  const JsonValue* find(std::string_view key) const;
  /// `find(key)->as_string()`, or `fallback` when absent/not a string.
  std::string_view string_or(std::string_view key,
                             std::string_view fallback) const;
  /// `find(key)->as_number()`, or `fallback` when absent/not a number.
  double number_or(std::string_view key, double fallback) const;

 private:
  friend struct detail::JsonDomParser;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<Member> members_;
};

/// Parse one complete document (same strict grammar as `json_is_valid`);
/// std::nullopt on malformed input or trailing garbage.
std::optional<JsonValue> json_parse(std::string_view document);

}  // namespace dynvote
