// Minimal leveled logger.
//
// The simulator runs hundreds of thousands of short simulations, so logging
// must cost nothing when disabled: the macro checks the level before any
// formatting happens.  Output goes to stderr; the examples raise the level
// to narrate protocol traces.
#pragma once

#include <sstream>
#include <string>

namespace dynvote {

enum class LogLevel : int {
  kError = 0,
  kWarn = 1,
  kInfo = 2,
  kDebug = 3,
  kTrace = 4,
};

/// Global log threshold; messages above it are discarded before formatting.
LogLevel log_level();
void set_log_level(LogLevel level);

/// Parse "error" | "warn" | "info" | "debug" | "trace"; unknown -> kWarn.
LogLevel parse_log_level(const std::string& name);

namespace detail {
void emit_log(LogLevel level, const std::string& message);
}  // namespace detail

}  // namespace dynvote

#define DV_LOG(level, expr)                                      \
  do {                                                           \
    if (static_cast<int>(level) <=                               \
        static_cast<int>(::dynvote::log_level())) {              \
      std::ostringstream dv_log_os;                              \
      dv_log_os << expr;                                         \
      ::dynvote::detail::emit_log((level), dv_log_os.str());     \
    }                                                            \
  } while (false)

#define DV_LOG_ERROR(expr) DV_LOG(::dynvote::LogLevel::kError, expr)
#define DV_LOG_WARN(expr) DV_LOG(::dynvote::LogLevel::kWarn, expr)
#define DV_LOG_INFO(expr) DV_LOG(::dynvote::LogLevel::kInfo, expr)
#define DV_LOG_DEBUG(expr) DV_LOG(::dynvote::LogLevel::kDebug, expr)
#define DV_LOG_TRACE(expr) DV_LOG(::dynvote::LogLevel::kTrace, expr)
