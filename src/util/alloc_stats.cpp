#include "util/alloc_stats.hpp"

namespace dynvote {

namespace {
// Zero-initialized trivial TLS: safe to touch from operator new even during
// early startup (no dynamic initialization involved).
thread_local std::uint64_t t_allocations = 0;
bool g_hook_linked = false;
}  // namespace

std::uint64_t thread_allocations() { return t_allocations; }

bool alloc_hook_linked() { return g_hook_linked; }

namespace alloc_detail {

void count_allocation() noexcept { ++t_allocations; }

void mark_hook_linked() noexcept { g_hook_linked = true; }

}  // namespace alloc_detail

}  // namespace dynvote
