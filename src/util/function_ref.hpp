// A lightweight non-owning callable reference (two words: object pointer +
// trampoline), replacing std::function in the simulation hot path.
//
// std::function is the wrong tool for the network's delivery callbacks: it
// may heap-allocate on construction, costs an indirect call through a
// vtable-ish dispatch, and its type-erased storage is rebuilt every time a
// lambda is wrapped.  Every callback the simulator passes is invoked
// strictly within the lifetime of the callable it wraps, so a non-owning
// reference is sufficient -- and it is guaranteed allocation-free.
//
// Lifetime contract: a FunctionRef never extends the life of what it wraps.
// Bind temporaries only as call arguments (the temporary outlives the full
// expression); never store a FunctionRef built from a temporary in a
// variable or member.  For callables that must outlive a call site, bind a
// named lvalue or a plain function pointer (function pointers have static
// lifetime and are always safe).
#pragma once

#include <cstddef>
#include <memory>
#include <type_traits>
#include <utility>

namespace dynvote {

template <typename Signature>
class FunctionRef;

template <typename R, typename... Args>
class FunctionRef<R(Args...)> {
 public:
  /// A null reference; calling it is undefined.  Exists so callbacks can be
  /// optional parameters (`crosses = nullptr`) tested with operator bool.
  FunctionRef() = default;
  FunctionRef(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  /// Wrap a plain function pointer (static lifetime: always safe to store).
  FunctionRef(R (*fn)(Args...)) noexcept  // NOLINT(google-explicit-constructor)
      : obj_(reinterpret_cast<void*>(fn)),
        call_([](void* obj, Args... args) -> R {
          return reinterpret_cast<R (*)(Args...)>(obj)(
              std::forward<Args>(args)...);
        }) {}

  /// Wrap any callable lvalue or temporary.  The referenced object must
  /// outlive every invocation (see the lifetime contract above).
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, FunctionRef> &&
                !std::is_pointer_v<std::remove_cvref_t<F>> &&
                std::is_invocable_r_v<R, F&, Args...>>>
  FunctionRef(F&& f) noexcept  // NOLINT(google-explicit-constructor)
      : obj_(const_cast<void*>(
            static_cast<const void*>(std::addressof(f)))),
        call_([](void* obj, Args... args) -> R {
          return (*static_cast<std::remove_reference_t<F>*>(obj))(
              std::forward<Args>(args)...);
        }) {}

  R operator()(Args... args) const {
    return call_(obj_, std::forward<Args>(args)...);
  }

  explicit operator bool() const { return call_ != nullptr; }

 private:
  void* obj_ = nullptr;
  R (*call_)(void*, Args...) = nullptr;
};

}  // namespace dynvote
