// Compact binary encoding for protocol payloads.
//
// The paper reports wire sizes ("message sizes can typically be constrained
// to two kilobytes or less" at 64 processes), so piggybacked protocol state
// is given a real serialized form: unsigned LEB128 varints for integers and
// raw little-endian words for process-set bitmaps.  The simulator hands the
// decoded structures around by shared pointer for speed, but every payload
// is encoded once per send so sizes can be measured, and the codec is
// round-trip tested so the library is usable over a real transport.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace dynvote {

/// Thrown by Decoder when input bytes are truncated or malformed.
class DecodeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Upper bound a Decoder accepts for a single length-prefixed item (blob or
/// string) unless the caller passes a tighter one.  Encoded payloads now
/// arrive from sockets, not only from files this process wrote, so a
/// corrupt or hostile length prefix must fail as DecodeError up front --
/// never reach an allocator sized by attacker-controlled bytes.  Generous
/// enough for any real snapshot (the largest observed are kilobytes).
inline constexpr std::size_t kDefaultDecodeItemCap = std::size_t{256} << 20;

/// Append-only byte sink.
class Encoder {
 public:
  /// Unsigned LEB128 varint (1..10 bytes).
  void put_varint(std::uint64_t value);

  /// Single raw byte.
  void put_u8(std::uint8_t value);

  /// Boolean as one byte (0/1).
  void put_bool(bool value) { put_u8(value ? 1 : 0); }

  /// Raw little-endian 64-bit word.
  void put_u64_fixed(std::uint64_t value);

  /// Length-prefixed byte blob.
  void put_bytes(std::span<const std::byte> bytes);

  /// Length-prefixed UTF-8 string.
  void put_string(std::string_view s);

  /// Bytes written so far.
  std::size_t size() const { return buffer_.size(); }

  /// Consume the accumulated buffer.
  std::vector<std::byte> take() { return std::move(buffer_); }

  const std::vector<std::byte>& bytes() const { return buffer_; }

 private:
  std::vector<std::byte> buffer_;
};

/// Sequential reader over an encoded buffer; every getter throws DecodeError
/// on truncation, and `finish()` asserts full consumption.
class Decoder {
 public:
  /// `max_item_bytes` caps each length-prefixed item (get_bytes /
  /// get_string); a prefix above it throws DecodeError even when the
  /// buffer could satisfy it.  Network framing layers pass their frame
  /// budget here so one bad prefix cannot commit a huge allocation.
  explicit Decoder(std::span<const std::byte> bytes,
                   std::size_t max_item_bytes = kDefaultDecodeItemCap)
      : bytes_(bytes), max_item_bytes_(max_item_bytes) {}

  std::uint64_t get_varint();
  std::uint8_t get_u8();
  bool get_bool() { return get_u8() != 0; }
  std::uint64_t get_u64_fixed();
  std::vector<std::byte> get_bytes();
  std::string get_string();

  /// Remaining unread byte count.
  std::size_t remaining() const { return bytes_.size() - pos_; }

  /// Throws unless the buffer was consumed exactly.
  void finish() const;

 private:
  void need(std::size_t n) const;

  /// Validate one item's length prefix against both the cap and the
  /// remaining input; throws DecodeError before any allocation happens.
  std::size_t checked_item_size(std::uint64_t n) const;

  std::span<const std::byte> bytes_;
  std::size_t pos_ = 0;
  std::size_t max_item_bytes_ = kDefaultDecodeItemCap;
};

}  // namespace dynvote
