#include "util/logging.hpp"

#include <atomic>
#include <cstdio>

namespace dynvote {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kError: return "ERROR";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kTrace: return "TRACE";
  }
  return "?????";
}
}  // namespace

LogLevel log_level() { return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed)); }

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel parse_log_level(const std::string& name) {
  if (name == "error") return LogLevel::kError;
  if (name == "warn") return LogLevel::kWarn;
  if (name == "info") return LogLevel::kInfo;
  if (name == "debug") return LogLevel::kDebug;
  if (name == "trace") return LogLevel::kTrace;
  return LogLevel::kWarn;
}

namespace detail {
void emit_log(LogLevel level, const std::string& message) {
  std::fprintf(stderr, "[dynvote %s] %s\n", level_name(level), message.c_str());
}
}  // namespace detail

}  // namespace dynvote
