// Deterministic pseudo-random number generation.
//
// The paper stresses that "the same random sequence was used to test each of
// the algorithms": the fault schedule must be a pure function of the seed so
// that every algorithm sees the identical topology trajectory.  We use
// xoshiro256** (public domain, Blackman & Vigna) seeded via SplitMix64 --
// fast, reproducible across platforms, and independent of libstdc++'s
// distribution implementations (std::uniform_* are not portable bit-for-bit).
#pragma once

#include <array>
#include <cstdint>

#include "util/assert.hpp"

namespace dynvote {

/// SplitMix64 step; used to expand a 64-bit seed into xoshiro state.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** PRNG with convenience draws used by the simulator.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  /// Next raw 64-bit draw.
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound). `bound` must be positive.
  /// Uses Lemire-style rejection to avoid modulo bias.
  std::uint64_t below(std::uint64_t bound) {
    DV_REQUIRE(bound > 0, "Rng::below requires a positive bound");
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = next_u64();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t between(std::uint64_t lo, std::uint64_t hi) {
    DV_REQUIRE(lo <= hi, "Rng::between requires lo <= hi");
    return lo + below(hi - lo + 1);
  }

  /// Bernoulli trial with success probability `p` (clamped to [0,1]).
  bool chance(double p) {
    if (p >= 1.0) return true;
    if (p <= 0.0) return false;
    return uniform() < p;
  }

  /// Derive an independent child seed; used to give each run / subsystem its
  /// own stream without correlating draws.
  std::uint64_t fork_seed() { return next_u64(); }

  /// The full generator state, exposed for checkpoint/restore: a restored
  /// stream continues the draw sequence exactly where the saved one stopped.
  const std::array<std::uint64_t, 4>& state() const { return state_; }
  void set_state(const std::array<std::uint64_t, 4>& state) { state_ = state; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

/// Stable seed mixing for experiment cases: hash together a base seed and
/// case coordinates (process count, change count, rate index, run index) so
/// that the schedule depends on the case but never on the algorithm.
constexpr std::uint64_t mix_seed(std::uint64_t base,
                                 std::uint64_t a,
                                 std::uint64_t b = 0,
                                 std::uint64_t c = 0,
                                 std::uint64_t d = 0) {
  // Fold each coordinate through a full SplitMix64 avalanche so nearby
  // coordinate tuples land in unrelated streams.
  std::uint64_t s = base;
  s = splitmix64(s) ^ (a + 0x9e3779b97f4a7c15ULL);
  s = splitmix64(s) ^ (b + 0xd1b54a32d192ed03ULL);
  s = splitmix64(s) ^ (c + 0x8cb92ba72f3d8dd7ULL);
  s = splitmix64(s) ^ (d + 0xda942042e4dd58b5ULL);
  return splitmix64(s);
}

// Named per-subsystem RNG stream tags.  Every stream a simulation uses is
// `child_seed(config.seed, tag)` with a tag from this registry, so adding a
// new consumer of randomness can never perturb an existing stream -- each
// tag is an independent SplitMix64 avalanche away from every other.  The
// one exception is the geometric fault schedule, which draws from the raw
// seed directly: that stream reproduces the thesis's schedules and is
// pinned forever by the committed bench baselines.
inline constexpr std::uint64_t kDeliveryStreamTag = 0xDE11u;
inline constexpr std::uint64_t kSleepyStreamTag = 0x51EE9u;
inline constexpr std::uint64_t kRepairStreamTag = 0x4E9A12u;
// The full-run microbenches seed one simulation per iteration; tagging the
// two benches keeps their schedule families disjoint from each other and
// from every simulation stream (they previously shared the same literal
// seeds, so both benches timed identical schedules).
inline constexpr std::uint64_t kBenchFullRunStreamTag = 0xBE7CF1u;
inline constexpr std::uint64_t kBenchFullRunUncheckedStreamTag = 0xBE7CF2u;

/// Derive the independent child seed for a tagged stream.
constexpr std::uint64_t child_seed(std::uint64_t base, std::uint64_t tag) {
  return mix_seed(base, tag);
}

}  // namespace dynvote
