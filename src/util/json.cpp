#include "util/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "util/assert.hpp"

namespace dynvote {

namespace {

void append_escaped(std::string& out, std::string_view text) {
  out.push_back('"');
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

}  // namespace

std::string json_quote(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  append_escaped(out, text);
  return out;
}

void JsonWriter::separate() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  DV_REQUIRE(stack_.empty() || stack_.back() == Frame::kArray,
             "object members need a key() first");
  if (needs_comma_) out_.push_back(',');
}

JsonWriter& JsonWriter::begin_object() {
  separate();
  out_.push_back('{');
  stack_.push_back(Frame::kObject);
  needs_comma_ = false;
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  DV_REQUIRE(!stack_.empty() && stack_.back() == Frame::kObject && !after_key_,
             "end_object outside an object");
  out_.push_back('}');
  stack_.pop_back();
  needs_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  separate();
  out_.push_back('[');
  stack_.push_back(Frame::kArray);
  needs_comma_ = false;
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  DV_REQUIRE(!stack_.empty() && stack_.back() == Frame::kArray && !after_key_,
             "end_array outside an array");
  out_.push_back(']');
  stack_.pop_back();
  needs_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  DV_REQUIRE(!stack_.empty() && stack_.back() == Frame::kObject && !after_key_,
             "key() is only valid directly inside an object");
  if (needs_comma_) out_.push_back(',');
  append_escaped(out_, name);
  out_.push_back(':');
  after_key_ = true;
  needs_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view text) {
  separate();
  append_escaped(out_, text);
  needs_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const char* text) {
  return value(std::string_view(text));
}

JsonWriter& JsonWriter::value(double number) {
  if (!std::isfinite(number)) return null();
  separate();
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", number);
  out_ += buf;
  needs_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t number) {
  separate();
  out_ += std::to_string(number);
  needs_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t number) {
  separate();
  out_ += std::to_string(number);
  needs_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(bool flag) {
  separate();
  out_ += flag ? "true" : "false";
  needs_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::null() {
  separate();
  out_ += "null";
  needs_comma_ = true;
  return *this;
}

const std::string& JsonWriter::str() const {
  DV_REQUIRE(stack_.empty() && !after_key_,
             "JSON document has unbalanced nesting");
  return out_;
}

// ---------------------------------------------------------------------------
// Validator: a recursive-descent pass over one document.

namespace {

struct Parser {
  std::string_view text;
  std::size_t pos = 0;
  int depth = 0;
  static constexpr int kMaxDepth = 256;

  void skip_ws() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r')) {
      ++pos;
    }
  }

  bool eat(char c) {
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }

  bool literal(std::string_view word) {
    if (text.substr(pos, word.size()) != word) return false;
    pos += word.size();
    return true;
  }

  bool string() {
    if (!eat('"')) return false;
    while (pos < text.size()) {
      const char c = text[pos++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return false;
      if (c == '\\') {
        if (pos >= text.size()) return false;
        const char esc = text[pos++];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            if (pos >= text.size() || !std::isxdigit(static_cast<unsigned char>(text[pos]))) {
              return false;
            }
            ++pos;
          }
        } else if (esc != '"' && esc != '\\' && esc != '/' && esc != 'b' &&
                   esc != 'f' && esc != 'n' && esc != 'r' && esc != 't') {
          return false;
        }
      }
    }
    return false;  // unterminated
  }

  bool digits() {
    const std::size_t start = pos;
    while (pos < text.size() && std::isdigit(static_cast<unsigned char>(text[pos]))) ++pos;
    return pos > start;
  }

  bool number() {
    eat('-');
    if (eat('0')) {
      // leading zero must not be followed by more digits
      if (pos < text.size() && std::isdigit(static_cast<unsigned char>(text[pos]))) return false;
    } else if (!digits()) {
      return false;
    }
    if (eat('.') && !digits()) return false;
    if (pos < text.size() && (text[pos] == 'e' || text[pos] == 'E')) {
      ++pos;
      if (pos < text.size() && (text[pos] == '+' || text[pos] == '-')) ++pos;
      if (!digits()) return false;
    }
    return true;
  }

  bool value() {
    if (++depth > kMaxDepth) return false;
    skip_ws();
    bool ok = false;
    if (pos >= text.size()) {
      ok = false;
    } else if (text[pos] == '{') {
      ++pos;
      skip_ws();
      if (eat('}')) {
        ok = true;
      } else {
        for (;;) {
          skip_ws();
          if (!string()) { ok = false; break; }
          skip_ws();
          if (!eat(':')) { ok = false; break; }
          if (!value()) { ok = false; break; }
          skip_ws();
          if (eat(',')) continue;
          ok = eat('}');
          break;
        }
      }
    } else if (text[pos] == '[') {
      ++pos;
      skip_ws();
      if (eat(']')) {
        ok = true;
      } else {
        for (;;) {
          if (!value()) { ok = false; break; }
          skip_ws();
          if (eat(',')) continue;
          ok = eat(']');
          break;
        }
      }
    } else if (text[pos] == '"') {
      ok = string();
    } else if (text[pos] == 't') {
      ok = literal("true");
    } else if (text[pos] == 'f') {
      ok = literal("false");
    } else if (text[pos] == 'n') {
      ok = literal("null");
    } else {
      ok = number();
    }
    --depth;
    return ok;
  }
};

}  // namespace

bool json_is_valid(std::string_view document) {
  Parser parser{document};
  if (!parser.value()) return false;
  parser.skip_ws();
  return parser.pos == document.size();
}

// ---------------------------------------------------------------------------
// DOM parser: the same grammar as the validator, but constructing values.
// Kept separate rather than templated over the validator -- the two passes
// are each ~80 lines and diverge in what they carry (the DOM decodes
// escapes and numbers; the validator only scans).

bool JsonValue::as_bool() const {
  DV_REQUIRE(kind_ == Kind::kBool, "JsonValue is not a bool");
  return bool_;
}

double JsonValue::as_number() const {
  DV_REQUIRE(kind_ == Kind::kNumber, "JsonValue is not a number");
  return number_;
}

const std::string& JsonValue::as_string() const {
  DV_REQUIRE(kind_ == Kind::kString, "JsonValue is not a string");
  return string_;
}

const std::vector<JsonValue>& JsonValue::items() const {
  DV_REQUIRE(kind_ == Kind::kArray, "JsonValue is not an array");
  return items_;
}

const std::vector<JsonValue::Member>& JsonValue::members() const {
  DV_REQUIRE(kind_ == Kind::kObject, "JsonValue is not an object");
  return members_;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const Member& member : members_) {
    if (member.first == key) return &member.second;
  }
  return nullptr;
}

std::string_view JsonValue::string_or(std::string_view key,
                                      std::string_view fallback) const {
  const JsonValue* found = find(key);
  return found != nullptr && found->is_string() ? found->as_string()
                                                : fallback;
}

double JsonValue::number_or(std::string_view key, double fallback) const {
  const JsonValue* found = find(key);
  return found != nullptr && found->is_number() ? found->as_number()
                                                : fallback;
}

namespace {

void append_utf8(std::string& out, std::uint32_t code_point) {
  if (code_point < 0x80) {
    out.push_back(static_cast<char>(code_point));
  } else if (code_point < 0x800) {
    out.push_back(static_cast<char>(0xC0 | (code_point >> 6)));
    out.push_back(static_cast<char>(0x80 | (code_point & 0x3F)));
  } else if (code_point < 0x10000) {
    out.push_back(static_cast<char>(0xE0 | (code_point >> 12)));
    out.push_back(static_cast<char>(0x80 | ((code_point >> 6) & 0x3F)));
    out.push_back(static_cast<char>(0x80 | (code_point & 0x3F)));
  } else {
    out.push_back(static_cast<char>(0xF0 | (code_point >> 18)));
    out.push_back(static_cast<char>(0x80 | ((code_point >> 12) & 0x3F)));
    out.push_back(static_cast<char>(0x80 | ((code_point >> 6) & 0x3F)));
    out.push_back(static_cast<char>(0x80 | (code_point & 0x3F)));
  }
}

}  // namespace

namespace detail {

struct JsonDomParser {
  std::string_view text;
  std::size_t pos = 0;
  int depth = 0;
  static constexpr int kMaxDepth = 256;

  void skip_ws() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r')) {
      ++pos;
    }
  }

  bool eat(char c) {
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }

  bool hex4(std::uint32_t& value) {
    value = 0;
    for (int i = 0; i < 4; ++i) {
      if (pos >= text.size()) return false;
      const char c = text[pos++];
      std::uint32_t digit = 0;
      if (c >= '0' && c <= '9') {
        digit = static_cast<std::uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        digit = static_cast<std::uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        digit = static_cast<std::uint32_t>(c - 'A' + 10);
      } else {
        return false;
      }
      value = (value << 4) | digit;
    }
    return true;
  }

  bool string(std::string& out) {
    out.clear();
    if (!eat('"')) return false;
    while (pos < text.size()) {
      const char c = text[pos++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return false;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos >= text.size()) return false;
      const char esc = text[pos++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          std::uint32_t unit = 0;
          if (!hex4(unit)) return false;
          // Combine a high+low surrogate pair when one follows; a lone
          // surrogate is kept as-is (matching the validator's leniency).
          if (unit >= 0xD800 && unit <= 0xDBFF &&
              text.substr(pos, 2) == "\\u") {
            const std::size_t saved = pos;
            pos += 2;
            std::uint32_t low = 0;
            if (hex4(low) && low >= 0xDC00 && low <= 0xDFFF) {
              unit = 0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00);
            } else {
              pos = saved;
            }
          }
          append_utf8(out, unit);
          break;
        }
        default: return false;
      }
    }
    return false;  // unterminated
  }

  bool digits() {
    const std::size_t start = pos;
    while (pos < text.size() &&
           std::isdigit(static_cast<unsigned char>(text[pos]))) {
      ++pos;
    }
    return pos > start;
  }

  bool number(double& out) {
    const std::size_t start = pos;
    eat('-');
    if (eat('0')) {
      if (pos < text.size() &&
          std::isdigit(static_cast<unsigned char>(text[pos]))) {
        return false;
      }
    } else if (!digits()) {
      return false;
    }
    if (eat('.') && !digits()) return false;
    if (pos < text.size() && (text[pos] == 'e' || text[pos] == 'E')) {
      ++pos;
      if (pos < text.size() && (text[pos] == '+' || text[pos] == '-')) ++pos;
      if (!digits()) return false;
    }
    // The slice [start, pos) passed the grammar; strtod needs a
    // NUL-terminated buffer, so copy it out (numbers are short).
    const std::string slice(text.substr(start, pos - start));
    out = std::strtod(slice.c_str(), nullptr);
    return true;
  }

  bool literal(std::string_view word) {
    if (text.substr(pos, word.size()) != word) return false;
    pos += word.size();
    return true;
  }

  bool value(JsonValue& out) {
    if (++depth > kMaxDepth) return false;
    skip_ws();
    bool ok = false;
    if (pos >= text.size()) {
      ok = false;
    } else if (text[pos] == '{') {
      ++pos;
      out.kind_ = JsonValue::Kind::kObject;
      skip_ws();
      if (eat('}')) {
        ok = true;
      } else {
        for (;;) {
          skip_ws();
          JsonValue::Member member;
          if (!string(member.first)) { ok = false; break; }
          skip_ws();
          if (!eat(':')) { ok = false; break; }
          if (!value(member.second)) { ok = false; break; }
          out.members_.push_back(std::move(member));
          skip_ws();
          if (eat(',')) continue;
          ok = eat('}');
          break;
        }
      }
    } else if (text[pos] == '[') {
      ++pos;
      out.kind_ = JsonValue::Kind::kArray;
      skip_ws();
      if (eat(']')) {
        ok = true;
      } else {
        for (;;) {
          JsonValue item;
          if (!value(item)) { ok = false; break; }
          out.items_.push_back(std::move(item));
          skip_ws();
          if (eat(',')) continue;
          ok = eat(']');
          break;
        }
      }
    } else if (text[pos] == '"') {
      out.kind_ = JsonValue::Kind::kString;
      ok = string(out.string_);
    } else if (text[pos] == 't') {
      out.kind_ = JsonValue::Kind::kBool;
      out.bool_ = true;
      ok = literal("true");
    } else if (text[pos] == 'f') {
      out.kind_ = JsonValue::Kind::kBool;
      out.bool_ = false;
      ok = literal("false");
    } else if (text[pos] == 'n') {
      out.kind_ = JsonValue::Kind::kNull;
      ok = literal("null");
    } else {
      out.kind_ = JsonValue::Kind::kNumber;
      ok = number(out.number_);
    }
    --depth;
    return ok;
  }
};

}  // namespace detail

std::optional<JsonValue> json_parse(std::string_view document) {
  detail::JsonDomParser parser{document};
  JsonValue root;
  if (!parser.value(root)) return std::nullopt;
  parser.skip_ws();
  if (parser.pos != document.size()) return std::nullopt;
  return root;
}

}  // namespace dynvote
