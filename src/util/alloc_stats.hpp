// Opt-in heap-allocation counting, the measurement side of the repo's
// allocation-free-hot-path guarantee.
//
// The counters below are always present (and always cheap: one thread-local
// increment per counted allocation), but they only ever advance when the
// counting allocator is linked into the binary.  The allocator lives in the
// separate `dv_alloc_hook` object library, which replaces the global
// operator new/delete; binaries that want real numbers (the allocation
// regression test, the bench binaries that emit perf telemetry) link it,
// everything else pays nothing.
//
// Counting is per-thread so the parallel sweep runner can measure one
// case's probe without interference from sibling workers.
#pragma once

#include <cstdint>

namespace dynvote {

/// Heap allocations made by the calling thread since it started, as seen by
/// the counting allocator.  Always 0 when `dv_alloc_hook` is not linked.
/// Measure sections by differencing two reads on the same thread.
std::uint64_t thread_allocations();

/// True when the counting operator new/delete from `dv_alloc_hook` are
/// linked into this binary (telemetry emitters use this to distinguish
/// "zero allocations" from "not measured").
bool alloc_hook_linked();

namespace alloc_detail {
// Called by the dv_alloc_hook operators; not for general use.
void count_allocation() noexcept;
void mark_hook_linked() noexcept;
}  // namespace alloc_detail

}  // namespace dynvote
