#include "util/env.hpp"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>

#include "util/logging.hpp"

namespace dynvote {

namespace {

void warn_malformed(const char* name, const std::string& raw,
                    const std::string& fallback_text) {
  DV_LOG_WARN("ignoring malformed " << name << "=\"" << raw
                                    << "\"; using " << fallback_text);
}

void warn_out_of_range(const char* name, const std::string& raw,
                       const std::string& fallback_text) {
  DV_LOG_WARN("ignoring out-of-range " << name << "=\"" << raw
                                       << "\"; using " << fallback_text);
}

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

}  // namespace

std::optional<std::string> env_string(const char* name) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return std::nullopt;
  return std::string(raw);
}

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const auto raw = env_string(name);
  if (!raw.has_value()) return fallback;
  char* end = nullptr;
  errno = 0;
  const unsigned long long value = std::strtoull(raw->c_str(), &end, 10);
  if (end == raw->c_str() || *end != '\0') {
    warn_malformed(name, *raw, std::to_string(fallback));
    return fallback;
  }
  // A negative number parses (strtoull wraps it) and an over-wide one
  // saturates with ERANGE; both are values the variable cannot hold, not
  // syntax errors -- surface them as out-of-range instead of applying a
  // silently wrapped/clamped number.  strtoull skips leading whitespace
  // before the sign, so scan past it the same way before looking for '-'.
  const char* first = raw->c_str();
  while (std::isspace(static_cast<unsigned char>(*first)) != 0) ++first;
  if (*first == '-' || errno == ERANGE) {
    warn_out_of_range(name, *raw, std::to_string(fallback));
    return fallback;
  }
  return static_cast<std::uint64_t>(value);
}

double env_double(const char* name, double fallback) {
  const auto raw = env_string(name);
  if (!raw.has_value()) return fallback;
  char* end = nullptr;
  errno = 0;
  const double value = std::strtod(raw->c_str(), &end);
  if (end == raw->c_str() || *end != '\0') {
    warn_malformed(name, *raw, std::to_string(fallback));
    return fallback;
  }
  // Overflow to +/-inf is out-of-range; gradual underflow toward zero is
  // a representable (if imprecise) value and passes through.
  if (errno == ERANGE && std::isinf(value)) {
    warn_out_of_range(name, *raw, std::to_string(fallback));
    return fallback;
  }
  return value;
}

bool env_flag(const char* name, bool fallback) {
  const auto raw = env_string(name);
  if (!raw.has_value()) return fallback;
  const std::string v = lower(*raw);
  if (v == "1" || v == "true" || v == "yes" || v == "on") return true;
  if (v == "0" || v == "false" || v == "no" || v == "off") return false;
  warn_malformed(name, *raw, fallback ? "true" : "false");
  return fallback;
}

bool env_bool(const char* name, bool fallback) {
  const auto raw = env_string(name);
  if (!raw.has_value()) return fallback;
  const std::string v = lower(*raw);
  if (v == "1" || v == "true" || v == "yes" || v == "on") return true;
  if (v == "0" || v == "false" || v == "no" || v == "off") return false;
  // Distinguish a number a boolean cannot hold (DV_TRACE=2, DV_TRACE=-1,
  // an over-wide digit string) from outright garbage: the former is a
  // parseable value out of the variable's range, mirroring env_u64.
  char* end = nullptr;
  errno = 0;
  (void)std::strtoll(raw->c_str(), &end, 10);
  if (end != raw->c_str() && *end == '\0') {
    warn_out_of_range(name, *raw, fallback ? "true" : "false");
    return fallback;
  }
  warn_malformed(name, *raw, fallback ? "true" : "false");
  return fallback;
}

}  // namespace dynvote
