// The counting allocator: replacement global operator new/delete that
// increment the per-thread counter in util/alloc_stats.hpp.
//
// Built as the `dv_alloc_hook` OBJECT library so that linking it pulls
// these replacements in unconditionally (archive semantics would silently
// drop them unless some symbol here were referenced).  The static
// initializer below is what flips alloc_hook_linked() to true.
#include <cstdlib>
#include <new>

#include "util/alloc_stats.hpp"

namespace {

[[maybe_unused]] const bool g_hook_marker = [] {
  dynvote::alloc_detail::mark_hook_linked();
  return true;
}();

void* counted_alloc(std::size_t size) {
  dynvote::alloc_detail::count_allocation();
  if (size == 0) size = 1;
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* counted_aligned_alloc(std::size_t size, std::size_t align) {
  dynvote::alloc_detail::count_allocation();
  if (align < sizeof(void*)) align = sizeof(void*);
  void* p = nullptr;
  if (posix_memalign(&p, align, size == 0 ? 1 : size) != 0) {
    throw std::bad_alloc();
  }
  return p;
}

}  // namespace

// The nothrow and placement forms are not replaced: the standard library's
// defaults forward to these, so every counted path stays counted.
void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
