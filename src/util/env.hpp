// Environment-variable configuration shared by the library, the sweep
// runner, the benches and the examples.
//
// Every DV_* knob funnels through these helpers so that parsing is uniform
// and a malformed value produces a warning (naming the variable and the
// fallback used) instead of being silently ignored -- a mistyped
// DV_RUNS=4OO must not quietly shrink a 1000-run figure to its default.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace dynvote {

/// Raw lookup: the variable's value, or nullopt when unset/empty.
std::optional<std::string> env_string(const char* name);

/// Unsigned integer knob (DV_RUNS, DV_SEED, DV_JOBS...).  Malformed values
/// warn and return `fallback`.
std::uint64_t env_u64(const char* name, std::uint64_t fallback);

/// Floating-point knob.  Malformed values warn and return `fallback`.
double env_double(const char* name, double fallback);

/// Boolean knob: "1"/"true"/"yes"/"on" -> true, "0"/"false"/"no"/"off" ->
/// false (case-insensitive).  Malformed values warn and return `fallback`.
bool env_flag(const char* name, bool fallback);

/// Boolean knob with env_u64's out-of-range discipline on top of
/// env_flag's word forms: numeric values other than 0/1 (DV_TRACE=2,
/// DV_TRACE=-1) are values a boolean cannot hold and warn as
/// out-of-range, while non-numeric garbage warns as malformed.  Both
/// return `fallback`.
bool env_bool(const char* name, bool fallback);

}  // namespace dynvote
