// Always-on assertion macros.
//
// The whole point of this reproduction is the paper's "trial-by-fire": every
// algorithm ran through >1.31M connectivity changes without a single
// inconsistency.  Invariant checks are therefore part of the product, not a
// debug aid, and stay enabled in release builds.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace dynvote {

/// Thrown when an internal invariant is violated (a bug in this library).
class InvariantViolation : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Thrown when a caller violates a documented precondition.
class PreconditionViolation : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

namespace detail {
[[noreturn]] inline void throw_invariant(const char* expr, const char* file,
                                         int line, const std::string& msg) {
  std::ostringstream os;
  os << "invariant violated: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " -- " << msg;
  throw InvariantViolation(os.str());
}

[[noreturn]] inline void throw_precondition(const char* expr, const char* file,
                                            int line, const std::string& msg) {
  std::ostringstream os;
  os << "precondition violated: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " -- " << msg;
  throw PreconditionViolation(os.str());
}
}  // namespace detail

}  // namespace dynvote

/// Internal invariant; failure means a bug inside dynvote.
#define DV_ASSERT(expr)                                                      \
  do {                                                                       \
    if (!(expr))                                                             \
      ::dynvote::detail::throw_invariant(#expr, __FILE__, __LINE__, "");     \
  } while (false)

#define DV_ASSERT_MSG(expr, msg)                                             \
  do {                                                                       \
    if (!(expr))                                                             \
      ::dynvote::detail::throw_invariant(#expr, __FILE__, __LINE__, (msg));  \
  } while (false)

/// Caller-facing precondition on a public API.
#define DV_REQUIRE(expr, msg)                                                \
  do {                                                                       \
    if (!(expr))                                                             \
      ::dynvote::detail::throw_precondition(#expr, __FILE__, __LINE__,       \
                                            (msg));                          \
  } while (false)
