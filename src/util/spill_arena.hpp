// Thread-local freelist arena behind ProcessSet's spill storage.
//
// Universes past the two-word inline limit (N > 128) spill to a heap
// vector, and those vectors churn at protocol-round rate: every united_with
// / intersected_with / minus in the quorum rules builds one.  The arena
// turns each allocate/deallocate into a size-class freelist pop/push --
// blocks come from bump-allocated chunks and are never returned to the
// general heap until thread exit -- so once the freelists are warm the
// steady-state round loop performs zero heap allocations at any N.  This is
// what extends the PR-4 zero-alloc guarantee past the SBO boundary
// (alloc_regression_test gates it at N=256).
//
// The arena is deliberately per-thread (sweep workers never share
// ProcessSet storage), so no lock is ever taken on the allocation path; a
// global registry aggregates per-thread counters for telemetry only.
#pragma once

#include <cstddef>
#include <cstdint>

namespace dynvote {

/// Counters for one thread's arena (or the merged view of all of them).
/// Pure telemetry: reading them never perturbs the allocation path.
struct SpillArenaStats {
  std::uint64_t allocs = 0;          ///< requests served (hits + misses)
  std::uint64_t freelist_hits = 0;   ///< served from a warm freelist
  std::uint64_t chunk_bytes = 0;     ///< bytes fetched from the heap, total
  std::uint64_t live_bytes = 0;      ///< currently outstanding block bytes
  std::uint64_t peak_bytes = 0;      ///< high-water mark of live_bytes

  SpillArenaStats& operator+=(const SpillArenaStats& other) {
    allocs += other.allocs;
    freelist_hits += other.freelist_hits;
    chunk_bytes += other.chunk_bytes;
    live_bytes += other.live_bytes;
    peak_bytes += other.peak_bytes;  // summed high-water: an upper bound
    return *this;
  }
};

/// Allocate `bytes` from the calling thread's arena.  Oversize requests
/// (beyond the largest size class) fall through to operator new.
void* spill_arena_allocate(std::size_t bytes);

/// Return a block obtained from spill_arena_allocate with the same size.
void spill_arena_deallocate(void* p, std::size_t bytes) noexcept;

/// This thread's counters.
SpillArenaStats spill_arena_thread_stats();

/// Counters merged across every thread that ever used the arena, including
/// exited ones (their totals are folded into a retired bucket).
SpillArenaStats spill_arena_merged_stats();

/// Minimal stateless allocator adapter so a std::vector can live in the
/// arena.  All instances are interchangeable (is_always_equal), which keeps
/// vector moves noexcept and pointer-stealing.
template <typename T>
struct SpillArenaAllocator {
  using value_type = T;

  SpillArenaAllocator() = default;
  template <typename U>
  SpillArenaAllocator(const SpillArenaAllocator<U>&) noexcept {}  // NOLINT

  T* allocate(std::size_t n) {
    return static_cast<T*>(spill_arena_allocate(n * sizeof(T)));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    spill_arena_deallocate(p, n * sizeof(T));
  }

  template <typename U>
  bool operator==(const SpillArenaAllocator<U>&) const noexcept {
    return true;
  }
};

}  // namespace dynvote
