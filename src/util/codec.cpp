#include "util/codec.hpp"

namespace dynvote {

void Encoder::put_varint(std::uint64_t value) {
  while (value >= 0x80) {
    buffer_.push_back(static_cast<std::byte>((value & 0x7f) | 0x80));
    value >>= 7;
  }
  buffer_.push_back(static_cast<std::byte>(value));
}

void Encoder::put_u8(std::uint8_t value) {
  buffer_.push_back(static_cast<std::byte>(value));
}

void Encoder::put_u64_fixed(std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    buffer_.push_back(static_cast<std::byte>(value & 0xff));
    value >>= 8;
  }
}

void Encoder::put_bytes(std::span<const std::byte> bytes) {
  put_varint(bytes.size());
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
}

void Encoder::put_string(std::string_view s) {
  put_varint(s.size());
  for (char c : s) buffer_.push_back(static_cast<std::byte>(c));
}

void Decoder::need(std::size_t n) const {
  if (remaining() < n) throw DecodeError("truncated input");
}

std::uint64_t Decoder::get_varint() {
  std::uint64_t value = 0;
  int shift = 0;
  for (;;) {
    need(1);
    const auto b = static_cast<std::uint8_t>(bytes_[pos_++]);
    if (shift == 63 && (b & 0x7e) != 0) throw DecodeError("varint overflow");
    value |= static_cast<std::uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) return value;
    shift += 7;
    if (shift > 63) throw DecodeError("varint too long");
  }
}

std::uint8_t Decoder::get_u8() {
  need(1);
  return static_cast<std::uint8_t>(bytes_[pos_++]);
}

std::uint64_t Decoder::get_u64_fixed() {
  need(8);
  std::uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(bytes_[pos_ + i]))
             << (8 * i);
  }
  pos_ += 8;
  return value;
}

std::size_t Decoder::checked_item_size(std::uint64_t n) const {
  if (n > max_item_bytes_) {
    throw DecodeError("length prefix of " + std::to_string(n) +
                      " bytes exceeds decode cap of " +
                      std::to_string(max_item_bytes_));
  }
  need(static_cast<std::size_t>(n));
  return static_cast<std::size_t>(n);
}

std::vector<std::byte> Decoder::get_bytes() {
  const std::size_t n = checked_item_size(get_varint());
  std::vector<std::byte> out(bytes_.begin() + static_cast<std::ptrdiff_t>(pos_),
                             bytes_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

std::string Decoder::get_string() {
  const std::size_t n = checked_item_size(get_varint());
  std::string out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(static_cast<char>(bytes_[pos_ + i]));
  }
  pos_ += n;
  return out;
}

void Decoder::finish() const {
  if (remaining() != 0) throw DecodeError("trailing bytes after payload");
}

}  // namespace dynvote
