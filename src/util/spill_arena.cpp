#include "util/spill_arena.hpp"

#include <algorithm>
#include <bit>
#include <mutex>
#include <new>
#include <vector>

namespace dynvote {
namespace {

/// Size classes are powers of two from 16 bytes (room for the freelist
/// link) up to 64 KiB; anything larger bypasses the arena.  A ProcessSet
/// spill at N=256 is 4 words = 32 bytes, N=4096 is 512 bytes -- all deep
/// inside the classed range.
constexpr std::size_t kMinClassShift = 4;    // 16 B
constexpr std::size_t kMaxClassShift = 16;   // 64 KiB
constexpr std::size_t kNumClasses = kMaxClassShift - kMinClassShift + 1;
constexpr std::size_t kChunkBytes = std::size_t{256} * 1024;

struct FreeBlock {
  FreeBlock* next;
};

/// Aggregates the totals of threads that have already exited, and tracks
/// the live threads' stats blocks so merged_stats can walk them.
struct Registry {
  std::mutex mutex;
  SpillArenaStats retired;
  std::vector<const SpillArenaStats*> live;
};

Registry& registry() {
  static Registry r;
  return r;
}

class ThreadArena {
 public:
  ThreadArena() {
    std::lock_guard<std::mutex> lock(registry().mutex);
    registry().live.push_back(&stats_);
  }

  ~ThreadArena() {
    {
      std::lock_guard<std::mutex> lock(registry().mutex);
      auto& live = registry().live;
      live.erase(std::remove(live.begin(), live.end(), &stats_), live.end());
      registry().retired += stats_;
    }
    for (void* chunk : chunks_) ::operator delete(chunk);
  }

  void* allocate(std::size_t bytes) {
    const int cls = class_of(bytes);
    if (cls < 0) return ::operator new(bytes);  // oversize: pass through
    ++stats_.allocs;
    const std::size_t block = std::size_t{1} << (kMinClassShift + cls);
    stats_.live_bytes += block;
    stats_.peak_bytes = std::max(stats_.peak_bytes, stats_.live_bytes);
    if (FreeBlock* head = freelists_[cls]) {
      freelists_[cls] = head->next;
      ++stats_.freelist_hits;
      return head;
    }
    if (bump_remaining_ < block) refill();
    void* p = bump_;
    bump_ += block;
    bump_remaining_ -= block;
    return p;
  }

  void deallocate(void* p, std::size_t bytes) noexcept {
    const int cls = class_of(bytes);
    if (cls < 0) {
      ::operator delete(p);
      return;
    }
    const std::size_t block = std::size_t{1} << (kMinClassShift + cls);
    stats_.live_bytes -= block;
    auto* fb = static_cast<FreeBlock*>(p);
    fb->next = freelists_[cls];
    freelists_[cls] = fb;
  }

  const SpillArenaStats& stats() const { return stats_; }

 private:
  /// Class index for a request, or -1 for oversize.
  static int class_of(std::size_t bytes) {
    const std::size_t clamped = std::max(bytes, std::size_t{1} << kMinClassShift);
    const auto shift = static_cast<std::size_t>(std::bit_width(clamped - 1));
    if (shift > kMaxClassShift) return -1;
    return static_cast<int>(shift - kMinClassShift);
  }

  void refill() {
    void* chunk = ::operator new(kChunkBytes);
    chunks_.push_back(chunk);
    bump_ = static_cast<std::byte*>(chunk);
    bump_remaining_ = kChunkBytes;
    stats_.chunk_bytes += kChunkBytes;
  }

  FreeBlock* freelists_[kNumClasses] = {};
  std::byte* bump_ = nullptr;
  std::size_t bump_remaining_ = 0;
  std::vector<void*> chunks_;
  SpillArenaStats stats_;
};

ThreadArena& thread_arena() {
  thread_local ThreadArena arena;
  return arena;
}

}  // namespace

void* spill_arena_allocate(std::size_t bytes) {
  return thread_arena().allocate(bytes);
}

void spill_arena_deallocate(void* p, std::size_t bytes) noexcept {
  thread_arena().deallocate(p, bytes);
}

SpillArenaStats spill_arena_thread_stats() { return thread_arena().stats(); }

SpillArenaStats spill_arena_merged_stats() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  SpillArenaStats out = r.retired;
  for (const SpillArenaStats* s : r.live) out += *s;
  return out;
}

}  // namespace dynvote
