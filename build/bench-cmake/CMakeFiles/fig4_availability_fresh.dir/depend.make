# Empty dependencies file for fig4_availability_fresh.
# This may be replaced when dependencies are built.
