file(REMOVE_RECURSE
  "../bench/fig4_availability_fresh"
  "../bench/fig4_availability_fresh.pdb"
  "CMakeFiles/fig4_availability_fresh.dir/fig4_availability_fresh.cpp.o"
  "CMakeFiles/fig4_availability_fresh.dir/fig4_availability_fresh.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_availability_fresh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
