file(REMOVE_RECURSE
  "../bench/scaling_processes"
  "../bench/scaling_processes.pdb"
  "CMakeFiles/scaling_processes.dir/scaling_processes.cpp.o"
  "CMakeFiles/scaling_processes.dir/scaling_processes.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scaling_processes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
