# Empty dependencies file for scaling_processes.
# This may be replaced when dependencies are built.
