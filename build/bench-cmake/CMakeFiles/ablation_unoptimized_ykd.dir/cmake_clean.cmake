file(REMOVE_RECURSE
  "../bench/ablation_unoptimized_ykd"
  "../bench/ablation_unoptimized_ykd.pdb"
  "CMakeFiles/ablation_unoptimized_ykd.dir/ablation_unoptimized_ykd.cpp.o"
  "CMakeFiles/ablation_unoptimized_ykd.dir/ablation_unoptimized_ykd.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_unoptimized_ykd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
