# Empty compiler generated dependencies file for ablation_unoptimized_ykd.
# This may be replaced when dependencies are built.
