# Empty dependencies file for fig4_availability_cascading.
# This may be replaced when dependencies are built.
