file(REMOVE_RECURSE
  "../bench/fig4_availability_cascading"
  "../bench/fig4_availability_cascading.pdb"
  "CMakeFiles/fig4_availability_cascading.dir/fig4_availability_cascading.cpp.o"
  "CMakeFiles/fig4_availability_cascading.dir/fig4_availability_cascading.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_availability_cascading.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
