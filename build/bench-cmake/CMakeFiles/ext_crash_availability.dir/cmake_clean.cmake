file(REMOVE_RECURSE
  "../bench/ext_crash_availability"
  "../bench/ext_crash_availability.pdb"
  "CMakeFiles/ext_crash_availability.dir/ext_crash_availability.cpp.o"
  "CMakeFiles/ext_crash_availability.dir/ext_crash_availability.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_crash_availability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
