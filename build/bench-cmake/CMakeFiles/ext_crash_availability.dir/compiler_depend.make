# Empty compiler generated dependencies file for ext_crash_availability.
# This may be replaced when dependencies are built.
