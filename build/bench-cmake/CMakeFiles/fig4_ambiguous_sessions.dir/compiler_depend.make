# Empty compiler generated dependencies file for fig4_ambiguous_sessions.
# This may be replaced when dependencies are built.
