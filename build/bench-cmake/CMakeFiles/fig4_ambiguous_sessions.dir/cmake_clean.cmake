file(REMOVE_RECURSE
  "../bench/fig4_ambiguous_sessions"
  "../bench/fig4_ambiguous_sessions.pdb"
  "CMakeFiles/fig4_ambiguous_sessions.dir/fig4_ambiguous_sessions.cpp.o"
  "CMakeFiles/fig4_ambiguous_sessions.dir/fig4_ambiguous_sessions.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_ambiguous_sessions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
