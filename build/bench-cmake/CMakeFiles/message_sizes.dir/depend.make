# Empty dependencies file for message_sizes.
# This may be replaced when dependencies are built.
