file(REMOVE_RECURSE
  "../bench/message_sizes"
  "../bench/message_sizes.pdb"
  "CMakeFiles/message_sizes.dir/message_sizes.cpp.o"
  "CMakeFiles/message_sizes.dir/message_sizes.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/message_sizes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
