# Empty compiler generated dependencies file for ablation_mr1p_policy.
# This may be replaced when dependencies are built.
