file(REMOVE_RECURSE
  "../bench/ablation_mr1p_policy"
  "../bench/ablation_mr1p_policy.pdb"
  "CMakeFiles/ablation_mr1p_policy.dir/ablation_mr1p_policy.cpp.o"
  "CMakeFiles/ablation_mr1p_policy.dir/ablation_mr1p_policy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_mr1p_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
