# Empty compiler generated dependencies file for dynvote.
# This may be replaced when dependencies are built.
