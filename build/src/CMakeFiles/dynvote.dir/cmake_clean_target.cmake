file(REMOVE_RECURSE
  "libdynvote.a"
)
