
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/algorithm.cpp" "src/CMakeFiles/dynvote.dir/core/algorithm.cpp.o" "gcc" "src/CMakeFiles/dynvote.dir/core/algorithm.cpp.o.d"
  "/root/repo/src/core/dfls.cpp" "src/CMakeFiles/dynvote.dir/core/dfls.cpp.o" "gcc" "src/CMakeFiles/dynvote.dir/core/dfls.cpp.o.d"
  "/root/repo/src/core/message.cpp" "src/CMakeFiles/dynvote.dir/core/message.cpp.o" "gcc" "src/CMakeFiles/dynvote.dir/core/message.cpp.o.d"
  "/root/repo/src/core/mr1p.cpp" "src/CMakeFiles/dynvote.dir/core/mr1p.cpp.o" "gcc" "src/CMakeFiles/dynvote.dir/core/mr1p.cpp.o.d"
  "/root/repo/src/core/one_pending.cpp" "src/CMakeFiles/dynvote.dir/core/one_pending.cpp.o" "gcc" "src/CMakeFiles/dynvote.dir/core/one_pending.cpp.o.d"
  "/root/repo/src/core/payload.cpp" "src/CMakeFiles/dynvote.dir/core/payload.cpp.o" "gcc" "src/CMakeFiles/dynvote.dir/core/payload.cpp.o.d"
  "/root/repo/src/core/process_set.cpp" "src/CMakeFiles/dynvote.dir/core/process_set.cpp.o" "gcc" "src/CMakeFiles/dynvote.dir/core/process_set.cpp.o.d"
  "/root/repo/src/core/quorum.cpp" "src/CMakeFiles/dynvote.dir/core/quorum.cpp.o" "gcc" "src/CMakeFiles/dynvote.dir/core/quorum.cpp.o.d"
  "/root/repo/src/core/session.cpp" "src/CMakeFiles/dynvote.dir/core/session.cpp.o" "gcc" "src/CMakeFiles/dynvote.dir/core/session.cpp.o.d"
  "/root/repo/src/core/simple_majority.cpp" "src/CMakeFiles/dynvote.dir/core/simple_majority.cpp.o" "gcc" "src/CMakeFiles/dynvote.dir/core/simple_majority.cpp.o.d"
  "/root/repo/src/core/ykd.cpp" "src/CMakeFiles/dynvote.dir/core/ykd.cpp.o" "gcc" "src/CMakeFiles/dynvote.dir/core/ykd.cpp.o.d"
  "/root/repo/src/core/ykd_family.cpp" "src/CMakeFiles/dynvote.dir/core/ykd_family.cpp.o" "gcc" "src/CMakeFiles/dynvote.dir/core/ykd_family.cpp.o.d"
  "/root/repo/src/gcs/gcs.cpp" "src/CMakeFiles/dynvote.dir/gcs/gcs.cpp.o" "gcc" "src/CMakeFiles/dynvote.dir/gcs/gcs.cpp.o.d"
  "/root/repo/src/gcs/network.cpp" "src/CMakeFiles/dynvote.dir/gcs/network.cpp.o" "gcc" "src/CMakeFiles/dynvote.dir/gcs/network.cpp.o.d"
  "/root/repo/src/gcs/topology.cpp" "src/CMakeFiles/dynvote.dir/gcs/topology.cpp.o" "gcc" "src/CMakeFiles/dynvote.dir/gcs/topology.cpp.o.d"
  "/root/repo/src/sim/driver.cpp" "src/CMakeFiles/dynvote.dir/sim/driver.cpp.o" "gcc" "src/CMakeFiles/dynvote.dir/sim/driver.cpp.o.d"
  "/root/repo/src/sim/experiment.cpp" "src/CMakeFiles/dynvote.dir/sim/experiment.cpp.o" "gcc" "src/CMakeFiles/dynvote.dir/sim/experiment.cpp.o.d"
  "/root/repo/src/sim/fault_schedule.cpp" "src/CMakeFiles/dynvote.dir/sim/fault_schedule.cpp.o" "gcc" "src/CMakeFiles/dynvote.dir/sim/fault_schedule.cpp.o.d"
  "/root/repo/src/sim/invariants.cpp" "src/CMakeFiles/dynvote.dir/sim/invariants.cpp.o" "gcc" "src/CMakeFiles/dynvote.dir/sim/invariants.cpp.o.d"
  "/root/repo/src/sim/stats.cpp" "src/CMakeFiles/dynvote.dir/sim/stats.cpp.o" "gcc" "src/CMakeFiles/dynvote.dir/sim/stats.cpp.o.d"
  "/root/repo/src/sim/table.cpp" "src/CMakeFiles/dynvote.dir/sim/table.cpp.o" "gcc" "src/CMakeFiles/dynvote.dir/sim/table.cpp.o.d"
  "/root/repo/src/util/codec.cpp" "src/CMakeFiles/dynvote.dir/util/codec.cpp.o" "gcc" "src/CMakeFiles/dynvote.dir/util/codec.cpp.o.d"
  "/root/repo/src/util/logging.cpp" "src/CMakeFiles/dynvote.dir/util/logging.cpp.o" "gcc" "src/CMakeFiles/dynvote.dir/util/logging.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
