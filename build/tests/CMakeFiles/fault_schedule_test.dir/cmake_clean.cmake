file(REMOVE_RECURSE
  "CMakeFiles/fault_schedule_test.dir/fault_schedule_test.cpp.o"
  "CMakeFiles/fault_schedule_test.dir/fault_schedule_test.cpp.o.d"
  "fault_schedule_test"
  "fault_schedule_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fault_schedule_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
