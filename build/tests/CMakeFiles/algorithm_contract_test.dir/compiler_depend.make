# Empty compiler generated dependencies file for algorithm_contract_test.
# This may be replaced when dependencies are built.
