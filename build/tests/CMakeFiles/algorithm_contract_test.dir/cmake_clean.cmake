file(REMOVE_RECURSE
  "CMakeFiles/algorithm_contract_test.dir/algorithm_contract_test.cpp.o"
  "CMakeFiles/algorithm_contract_test.dir/algorithm_contract_test.cpp.o.d"
  "algorithm_contract_test"
  "algorithm_contract_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/algorithm_contract_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
