file(REMOVE_RECURSE
  "CMakeFiles/simple_majority_test.dir/simple_majority_test.cpp.o"
  "CMakeFiles/simple_majority_test.dir/simple_majority_test.cpp.o.d"
  "simple_majority_test"
  "simple_majority_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simple_majority_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
