# Empty dependencies file for simple_majority_test.
# This may be replaced when dependencies are built.
