# Empty dependencies file for wire_fidelity_test.
# This may be replaced when dependencies are built.
