file(REMOVE_RECURSE
  "CMakeFiles/wire_fidelity_test.dir/wire_fidelity_test.cpp.o"
  "CMakeFiles/wire_fidelity_test.dir/wire_fidelity_test.cpp.o.d"
  "wire_fidelity_test"
  "wire_fidelity_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wire_fidelity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
