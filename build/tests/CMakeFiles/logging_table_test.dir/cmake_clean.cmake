file(REMOVE_RECURSE
  "CMakeFiles/logging_table_test.dir/logging_table_test.cpp.o"
  "CMakeFiles/logging_table_test.dir/logging_table_test.cpp.o.d"
  "logging_table_test"
  "logging_table_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/logging_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
