# Empty dependencies file for logging_table_test.
# This may be replaced when dependencies are built.
