# Empty compiler generated dependencies file for one_pending_test.
# This may be replaced when dependencies are built.
