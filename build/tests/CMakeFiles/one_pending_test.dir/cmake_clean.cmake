file(REMOVE_RECURSE
  "CMakeFiles/one_pending_test.dir/one_pending_test.cpp.o"
  "CMakeFiles/one_pending_test.dir/one_pending_test.cpp.o.d"
  "one_pending_test"
  "one_pending_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/one_pending_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
