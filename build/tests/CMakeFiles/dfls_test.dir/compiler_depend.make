# Empty compiler generated dependencies file for dfls_test.
# This may be replaced when dependencies are built.
