file(REMOVE_RECURSE
  "CMakeFiles/dfls_test.dir/dfls_test.cpp.o"
  "CMakeFiles/dfls_test.dir/dfls_test.cpp.o.d"
  "dfls_test"
  "dfls_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfls_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
