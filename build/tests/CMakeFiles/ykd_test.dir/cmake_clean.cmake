file(REMOVE_RECURSE
  "CMakeFiles/ykd_test.dir/ykd_test.cpp.o"
  "CMakeFiles/ykd_test.dir/ykd_test.cpp.o.d"
  "ykd_test"
  "ykd_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ykd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
