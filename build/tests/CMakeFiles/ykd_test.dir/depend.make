# Empty dependencies file for ykd_test.
# This may be replaced when dependencies are built.
