file(REMOVE_RECURSE
  "CMakeFiles/mr1p_test.dir/mr1p_test.cpp.o"
  "CMakeFiles/mr1p_test.dir/mr1p_test.cpp.o.d"
  "mr1p_test"
  "mr1p_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mr1p_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
