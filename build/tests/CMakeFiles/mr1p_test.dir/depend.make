# Empty dependencies file for mr1p_test.
# This may be replaced when dependencies are built.
