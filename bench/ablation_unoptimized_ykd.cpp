// Ablation backing the thesis §4.1 statement: "The availability of
// unoptimized YKD was identical to that of YKD, as expected.  Therefore,
// we do not plot the availability of the unoptimized YKD separately."
//
// Verified here at bench scale as a *paired per-run* identity (same fault
// schedule, same outcome, run by run), together with the storage cost the
// optimization saves (thesis §3.4).
#include <iostream>

#include "bench_util.hpp"

int main() {
  using namespace dynvote;
  using namespace dynvote::bench;

  const std::uint64_t runs = default_runs();
  const std::uint64_t seed = seed_from_env(0x5eed);
  std::uint64_t paired_mismatches = 0;
  std::uint64_t total_runs = 0;

  std::cout << "== Unoptimized YKD vs YKD (" << runs << " runs per case) ==\n";
  TextTable table({"changes", "rounds between changes", "ykd avail %",
                   "unopt avail %", "paired mismatches",
                   "ykd runs w/ sessions %", "unopt runs w/ sessions %",
                   "ykd max", "unopt max"});

  const std::vector<double> rates = {1.0, 4.0, 8.0};
  SweepSpec sweep;
  sweep.name = "ablation_unoptimized_ykd";
  for (std::size_t changes : standard_change_counts()) {
    auto grid = availability_grid(
        {AlgorithmKind::kYkd, AlgorithmKind::kYkdUnoptimized}, rates, changes,
        RunMode::kFreshStart, runs, seed);
    sweep.cases.insert(sweep.cases.end(), grid.begin(), grid.end());
  }
  const SweepResult swept = run_sweep(sweep);

  std::size_t block = 0;  // start of this change-count's 2x3 grid
  for (std::size_t changes : standard_change_counts()) {
    for (std::size_t r = 0; r < rates.size(); ++r) {
      const double rate = rates[r];
      const CaseResult& ykd = swept.cases[block + r].result;
      const CaseResult& unopt = swept.cases[block + rates.size() + r].result;

      std::uint64_t mismatches = 0;
      for (std::size_t i = 0; i < ykd.success_per_run.size(); ++i) {
        if (ykd.success_per_run[i] != unopt.success_per_run[i]) ++mismatches;
      }
      paired_mismatches += mismatches;
      total_runs += ykd.runs;

      table.add_row({std::to_string(changes), format_double(rate, 0),
                     format_double(ykd.availability_percent()),
                     format_double(unopt.availability_percent()),
                     std::to_string(mismatches),
                     format_double(ykd.stable.percent_nonzero()),
                     format_double(unopt.stable.percent_nonzero()),
                     std::to_string(ykd.stable.max_observed),
                     std::to_string(unopt.stable.max_observed)});
    }
    block += 2 * rates.size();
  }
  table.print(std::cout);
  std::cout << "Paired mismatches across " << total_runs
            << " runs: " << paired_mismatches
            << " (thesis and this implementation: exactly 0)\n";
  return paired_mismatches == 0 ? 0 : 1;
}
