// Shared plumbing for the figure-reproduction binaries.
//
// Every bench describes its figure as a SweepSpec and hands it to the
// parallel sweep runner (src/runner/), which fans cases and fresh-start
// run shards across DV_JOBS workers, streams progress to stderr, and
// records a JSON manifest per sweep -- the printing below consumes the
// deterministic, bit-identical-to-serial results it returns.
#pragma once

#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "runner/sweep.hpp"
#include "sim/table.hpp"

namespace dynvote::bench {

/// The five algorithms plotted in the availability figures (unoptimized
/// YKD is omitted exactly as the thesis omits it: its curve is identical
/// to YKD's, which `ablation_unoptimized_ykd` verifies).
inline std::vector<AlgorithmKind> plotted_algorithms() {
  return {AlgorithmKind::kYkd, AlgorithmKind::kDfls,
          AlgorithmKind::kOnePending, AlgorithmKind::kMr1p,
          AlgorithmKind::kSimpleMajority};
}

/// Runs per case: the thesis used 1000; we default to 400 to keep the full
/// suite minutes-scale (DV_RUNS overrides, e.g. DV_RUNS=1000).
inline std::uint64_t default_runs() { return runs_from_env(400); }

struct AvailabilityFigure {
  std::string name;                 // e.g. "Figure 4-2"
  std::size_t changes;
  RunMode mode;
  /// results[algorithm][rate_index]
  std::map<AlgorithmKind, std::vector<CaseResult>> results;
  std::vector<double> rates;
};

/// Run one availability figure through the sweep runner: the full rate
/// sweep for every plotted algorithm at the given change count and mode.
/// `sweep_name` is the JSON manifest stem (BENCH_<sweep_name>.json).
inline AvailabilityFigure run_availability_figure(const std::string& name,
                                                  const std::string& sweep_name,
                                                  std::size_t changes,
                                                  RunMode mode,
                                                  std::size_t processes = 64) {
  AvailabilityFigure fig;
  fig.name = name;
  fig.changes = changes;
  fig.mode = mode;
  fig.rates = standard_rate_sweep();

  SweepSpec sweep;
  sweep.name = sweep_name;
  sweep.cases = availability_grid(plotted_algorithms(), fig.rates, changes,
                                  mode, default_runs(), seed_from_env(0x5eed),
                                  processes);
  const SweepResult swept = run_sweep(sweep);

  // The grid is algorithm-major: unflatten back into per-algorithm columns.
  std::size_t index = 0;
  for (AlgorithmKind kind : plotted_algorithms()) {
    auto& column = fig.results[kind];
    column.reserve(fig.rates.size());
    for (std::size_t r = 0; r < fig.rates.size(); ++r) {
      column.push_back(swept.cases[index++].result);
    }
  }
  return fig;
}

/// Print the figure as the table the thesis plots: one row per rate, one
/// availability column per algorithm.
inline void print_availability_figure(const AvailabilityFigure& fig,
                                      const std::string& csv_name) {
  std::cout << "\n== " << fig.name << ": system availability, " << fig.changes
            << (fig.mode == RunMode::kCascading ? " cascading" : "")
            << " connectivity changes ==\n"
            << "(" << default_runs() << " runs per case, 64 processes; "
            << "availability % = runs ending with a primary component)\n";

  std::vector<std::string> headers{"rounds between changes"};
  for (AlgorithmKind kind : plotted_algorithms()) {
    headers.emplace_back(to_string(kind));
  }
  TextTable table(headers);
  for (std::size_t r = 0; r < fig.rates.size(); ++r) {
    std::vector<std::string> row{format_double(fig.rates[r], 0)};
    for (AlgorithmKind kind : plotted_algorithms()) {
      row.push_back(format_double(
          fig.results.at(kind)[r].availability_percent()));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  if (maybe_write_csv(csv_name, table.to_csv())) {
    std::cout << "(csv written to $DV_CSV_DIR/" << csv_name << ".csv)\n";
  }
}

/// The thesis's §4.1 paired statistic: percentage of runs where YKD formed
/// a primary and DFLS did not, averaged over the moderate-to-high rates.
inline void print_ykd_dfls_gap(const AvailabilityFigure& fig) {
  const auto& ykd = fig.results.at(AlgorithmKind::kYkd);
  const auto& dfls = fig.results.at(AlgorithmKind::kDfls);
  double total = 0;
  std::size_t counted = 0;
  for (std::size_t r = 0; r < fig.rates.size(); ++r) {
    if (fig.rates[r] < 4.0) continue;  // "moderate to high mean time"
    total += percent_a_wins(ykd[r], dfls[r]);
    ++counted;
  }
  std::cout << "YKD forms a primary where DFLS does not in "
            << format_double(total / static_cast<double>(counted), 2)
            << "% of runs (rates >= 4; thesis reports ~3%).\n";
}

}  // namespace dynvote::bench
