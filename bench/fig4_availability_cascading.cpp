// Reproduces thesis Figures 4-4, 4-5, 4-6: system availability under 2, 6
// and 12 *cascading* connectivity changes -- each run starts in the state
// where the previous one ended, so a 1000-run case experiences 2000, 6000
// or 12000 changes in one continuous execution.
//
// Expected shape (thesis §4.1):
//  * YKD and DFLS are nearly as available as in the fresh-start tests:
//    running for extensive periods does not degrade them;
//  * 1-pending degrades dramatically -- unresolvable pending sessions
//    accumulate across runs, often leaving it below simple majority;
//  * MR1p fares worst of all at high change counts: five message rounds
//    make every recovery attempt interruptible.
#include <iostream>

#include "bench_util.hpp"

int main() {
  using namespace dynvote;
  using namespace dynvote::bench;

  const struct {
    const char* name;
    std::size_t changes;
    const char* csv;
  } figures[] = {
      {"Figure 4-4", 2, "fig4_4_cascading_2"},
      {"Figure 4-5", 6, "fig4_5_cascading_6"},
      {"Figure 4-6", 12, "fig4_6_cascading_12"},
  };

  for (const auto& f : figures) {
    const AvailabilityFigure fig =
        run_availability_figure(f.name, f.csv, f.changes, RunMode::kCascading);
    print_availability_figure(fig, f.csv);
  }
  return 0;
}
