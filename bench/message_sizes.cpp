// Reproduces the thesis §3.4 / §5 message-size observation: "the total
// amount of information which must be transmitted does not exceed two
// kilobytes during these 64-process trials" -- protocol state messages
// stay small because so few ambiguous sessions are ever retained.
//
// Every payload sent through the simulated GCS is serialized with the real
// wire codec and measured; the per-run measurements aggregate into the
// case's `CaseResult::wire` through the sweep runner.
#include <iostream>

#include "bench_util.hpp"

int main() {
  using namespace dynvote;
  using namespace dynvote::bench;

  const std::uint64_t runs = std::min<std::uint64_t>(default_runs(), 200);
  const std::uint64_t seed = seed_from_env(0x5eed);

  std::cout << "== Protocol message sizes over the wire (" << runs
            << " turbulent fresh-start runs per case, 12 changes, rate 2) "
               "==\n";

  const std::vector<AlgorithmKind> kinds = {
      AlgorithmKind::kYkd, AlgorithmKind::kYkdUnoptimized,
      AlgorithmKind::kDfls, AlgorithmKind::kOnePending, AlgorithmKind::kMr1p};
  const std::vector<std::size_t> process_counts = {16, 32, 64};

  SweepSpec sweep;
  sweep.name = "message_sizes";
  for (AlgorithmKind kind : kinds) {
    for (std::size_t processes : process_counts) {
      SweepCase c;
      c.algorithm = to_string(kind);
      c.spec.algorithm = kind;
      c.spec.processes = processes;
      c.spec.changes = 12;
      c.spec.mean_rounds = 2.0;
      c.spec.runs = runs;
      c.spec.base_seed = seed;
      c.spec.measure_wire_sizes = true;
      sweep.cases.push_back(std::move(c));
    }
  }
  const SweepResult swept = run_sweep(sweep);

  TextTable table({"algorithm", "processes", "messages", "max bytes",
                   "mean bytes"});
  std::size_t index = 0;
  for (AlgorithmKind kind : kinds) {
    for (std::size_t processes : process_counts) {
      const WireStats& totals = swept.cases[index++].result.wire;
      table.add_row(
          {std::string(to_string(kind)), std::to_string(processes),
           std::to_string(totals.messages_sent),
           std::to_string(totals.max_message_bytes),
           format_double(static_cast<double>(totals.total_message_bytes) /
                             static_cast<double>(totals.messages_sent),
                         1)});
    }
  }
  table.print(std::cout);
  std::cout << "Thesis claim: 64-process messages stay within ~2 KB.\n";
  return 0;
}
