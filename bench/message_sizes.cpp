// Reproduces the thesis §3.4 / §5 message-size observation: "the total
// amount of information which must be transmitted does not exceed two
// kilobytes during these 64-process trials" -- protocol state messages
// stay small because so few ambiguous sessions are ever retained.
//
// Every payload sent through the simulated GCS is serialized with the real
// wire codec and measured.
#include <iostream>

#include "bench_util.hpp"

int main() {
  using namespace dynvote;
  using namespace dynvote::bench;

  const std::uint64_t runs = std::min<std::uint64_t>(default_runs(), 200);
  const std::uint64_t seed = seed_from_env(0x5eed);

  std::cout << "== Protocol message sizes over the wire (" << runs
            << " turbulent fresh-start runs per case, 12 changes, rate 2) "
               "==\n";

  TextTable table({"algorithm", "processes", "messages", "max bytes",
                   "mean bytes"});
  for (AlgorithmKind kind :
       {AlgorithmKind::kYkd, AlgorithmKind::kYkdUnoptimized,
        AlgorithmKind::kDfls, AlgorithmKind::kOnePending,
        AlgorithmKind::kMr1p}) {
    for (std::size_t processes : {16u, 32u, 64u}) {
      WireStats totals;
      for (std::uint64_t i = 0; i < runs; ++i) {
        SimulationConfig config;
        config.algorithm = kind;
        config.processes = processes;
        config.changes_per_run = 12;
        config.mean_rounds_between_changes = 2.0;
        config.seed = mix_seed(seed, processes, 12, 2, i);
        config.measure_wire_sizes = true;
        Simulation sim(config);
        (void)sim.run_once();
        const WireStats& stats = sim.gcs().wire_stats();
        totals.messages_sent += stats.messages_sent;
        totals.total_message_bytes += stats.total_message_bytes;
        totals.max_message_bytes =
            std::max(totals.max_message_bytes, stats.max_message_bytes);
      }
      table.add_row(
          {std::string(to_string(kind)), std::to_string(processes),
           std::to_string(totals.messages_sent),
           std::to_string(totals.max_message_bytes),
           format_double(static_cast<double>(totals.total_message_bytes) /
                             static_cast<double>(totals.messages_sent),
                         1)});
    }
  }
  table.print(std::cout);
  std::cout << "Thesis claim: 64-process messages stay within ~2 KB.\n";
  return 0;
}
