// Availability under the repairable fault model: processes fail at a
// geometric rate (mean 4 rounds between failures) and queue for repair at
// a station with K concurrent slots and exponential-ish (geometric)
// service time.  The x-axis is the mean repair service time; the two
// panels contrast a single repair slot (K=1, repairs serialize and the
// backlog grows with service time) against K=4 (repairs overlap, the
// system rides out longer service times).
//
// Expected shape:
//  * availability falls as mean repair time grows -- more of every run is
//    spent below quorum;
//  * K=4 dominates K=1 at every service time, with the gap widening as
//    service slows (queueing delay is the whole difference);
//  * the algorithm ordering from the partition figures is preserved.
#include <iostream>

#include "bench_util.hpp"

int main() {
  using namespace dynvote;
  using namespace dynvote::bench;

  const std::vector<double> repair_means = {1, 2, 4, 8, 16, 32};
  const std::vector<std::uint64_t> capacities = {1, 4};

  SweepSpec sweep;
  sweep.name = "fig_repairable_availability";
  for (std::uint64_t capacity : capacities) {
    for (AlgorithmKind kind : plotted_algorithms()) {
      for (double repair_mean : repair_means) {
        SweepCase c;
        c.algorithm = to_string(kind);
        c.spec.algorithm = kind;
        c.spec.processes = 64;
        c.spec.changes = 6;
        c.spec.mean_rounds = 4.0;  // mean rounds between failures
        c.spec.runs = default_runs();
        c.spec.mode = RunMode::kFreshStart;
        c.spec.base_seed = seed_from_env(0x5eed);
        c.spec.fault_model.kind = FaultModelKind::kRepairable;
        c.spec.fault_model.repair_capacity = capacity;
        c.spec.fault_model.repair_mean_rounds = repair_mean;
        sweep.cases.push_back(std::move(c));
      }
    }
  }
  const SweepResult swept = run_sweep(sweep);

  std::size_t index = 0;
  for (std::uint64_t capacity : capacities) {
    std::cout << "\n== Repairable availability: K=" << capacity
              << " repair slot" << (capacity == 1 ? "" : "s")
              << ", failures every ~4 rounds ==\n"
              << "(" << default_runs() << " runs per case, 64 processes; "
              << "availability % = runs ending with a primary component)\n";
    std::vector<std::string> headers{"mean repair rounds"};
    for (AlgorithmKind kind : plotted_algorithms()) {
      headers.emplace_back(to_string(kind));
    }
    TextTable table(headers);
    // Cases for this capacity are algorithm-major; rows are per
    // repair-mean.
    const std::size_t base = index;
    for (std::size_t r = 0; r < repair_means.size(); ++r) {
      std::vector<std::string> row{format_double(repair_means[r], 0)};
      for (std::size_t a = 0; a < plotted_algorithms().size(); ++a) {
        const CaseResult& result =
            swept.cases[base + a * repair_means.size() + r].result;
        row.push_back(format_double(result.availability_percent()));
      }
      table.add_row(std::move(row));
    }
    index += plotted_algorithms().size() * repair_means.size();
    table.print(std::cout);
  }
  return 0;
}
