// EXTENSION EXPERIMENT (thesis §5.1 future work): "we have not
// demonstrated algorithms' availability if one of the processes from the
// original view crashes."
//
// We mix process crash/recovery faults into the fault stream and sweep the
// crash fraction.  Expected: crashes hit 1-pending hardest -- a pending
// session whose member is *dead* (not merely partitioned away) can stay
// unresolvable until the member recovers -- while YKD keeps pipelining and
// simple majority only cares about head-count.  Also reported: in-run
// availability (fraction of rounds with a live primary), which penalizes
// slow re-formation in a way the end-of-run flag cannot.
#include <iostream>

#include "bench_util.hpp"

int main() {
  using namespace dynvote;
  using namespace dynvote::bench;

  const std::uint64_t runs = default_runs();
  const std::uint64_t seed = seed_from_env(0x5eed);

  std::cout << "== EXTENSION: availability under process crashes ("
            << runs << " runs per case, 64 processes, 6 changes, rate 4) ==\n"
            << "crash fraction = share of injected faults that are "
               "crashes/recoveries\n";

  const std::vector<double> crash_fractions = {0.0, 0.1, 0.25, 0.5};

  SweepSpec sweep;
  sweep.name = "ext_crash_availability";
  for (AlgorithmKind kind : plotted_algorithms()) {
    for (double crash_fraction : crash_fractions) {
      SweepCase c;
      c.algorithm = to_string(kind);
      c.spec.algorithm = kind;
      c.spec.processes = 64;
      c.spec.changes = 6;
      c.spec.mean_rounds = 4.0;
      c.spec.crash_fraction = crash_fraction;
      c.spec.runs = runs;
      c.spec.base_seed = seed;
      sweep.cases.push_back(std::move(c));
    }
  }
  const SweepResult swept = run_sweep(sweep);

  std::size_t index = 0;
  for (AlgorithmKind kind : plotted_algorithms()) {
    std::cout << "\n-- " << to_string(kind) << " --\n";
    TextTable table({"crash fraction", "availability %", "in-run avail %",
                     "runs w/ pending %"});
    for (double crash_fraction : crash_fractions) {
      const CaseResult& r = swept.cases[index++].result;
      table.add_row({format_double(crash_fraction, 2),
                     format_double(r.availability_percent()),
                     format_double(r.in_run_availability_percent()),
                     format_double(r.stable.percent_nonzero())});
    }
    table.print(std::cout);
  }
  return 0;
}
