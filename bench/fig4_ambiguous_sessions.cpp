// Reproduces thesis Figures 4-7 and 4-8: how many ambiguous sessions YKD,
// unoptimized YKD and DFLS retain -- at the stable end of each run
// (Fig. 4-7) and at the moment of each connectivity change, when they must
// be shipped over the network (Fig. 4-8).  Collected at one observer
// process during fresh-start runs, exactly as in the thesis.
//
// Expected shape (thesis §4.2): retained counts are dominantly zero; YKD's
// maximum stays tiny (the thesis saw at most 4 across 600k runs, ours is
// printed below); the unoptimized variants retain more than YKD; and at
// the end of every *successful* run nobody retains anything, so the bars
// measure failure modes.
#include <iostream>

#include "bench_util.hpp"

namespace {

using namespace dynvote;
using namespace dynvote::bench;

const std::vector<AlgorithmKind> kTrio = {
    AlgorithmKind::kYkd, AlgorithmKind::kYkdUnoptimized, AlgorithmKind::kDfls};

void print_histogram_figure(
    const char* title, const char* csv_name,
    const std::map<AlgorithmKind,
                   std::map<std::size_t, std::vector<AmbiguityHistogram>>>&
        data,
    const std::vector<double>& rates) {
  std::cout << "\n== " << title << " ==\n"
            << "(percent of samples retaining 1 / 2 / 3 / 4+ ambiguous "
               "sessions; three bars per point: ykd, ykd-unoptimized, "
               "dfls)\n";
  for (std::size_t changes : standard_change_counts()) {
    std::cout << "\n-- " << changes << " connectivity changes --\n";
    TextTable table({"rounds between changes", "algorithm", ">=1 %", "1 %",
                     "2 %", "3 %", "4+ %", "max"});
    for (std::size_t r = 0; r < rates.size(); ++r) {
      for (AlgorithmKind kind : kTrio) {
        const AmbiguityHistogram& h = data.at(kind).at(changes)[r];
        table.add_row({format_double(rates[r], 0), std::string(to_string(kind)),
                       format_double(h.percent_nonzero()),
                       format_double(h.percent(1)), format_double(h.percent(2)),
                       format_double(h.percent(3)), format_double(h.percent(4)),
                       std::to_string(h.max_observed)});
      }
    }
    table.print(std::cout);
    if (maybe_write_csv(std::string(csv_name) + "_" + std::to_string(changes),
                        table.to_csv())) {
      std::cout << "(csv written)\n";
    }
  }
}

}  // namespace

int main() {
  const std::vector<double> rates = standard_rate_sweep();
  const std::uint64_t runs = default_runs();
  const std::uint64_t seed = seed_from_env(0x5eed);

  // One sweep covering the whole trio x change-count x rate grid.
  SweepSpec sweep;
  sweep.name = "fig4_ambiguous_sessions";
  for (AlgorithmKind kind : kTrio) {
    for (std::size_t changes : standard_change_counts()) {
      auto grid = availability_grid({kind}, rates, changes,
                                    RunMode::kFreshStart, runs, seed);
      sweep.cases.insert(sweep.cases.end(), grid.begin(), grid.end());
    }
  }
  const SweepResult swept = run_sweep(sweep);

  // data[kind][changes] = per-rate histograms
  std::map<AlgorithmKind, std::map<std::size_t, std::vector<AmbiguityHistogram>>>
      stable, in_progress;
  std::map<AlgorithmKind, std::size_t> overall_max_stable, overall_max_sent;

  std::size_t index = 0;
  for (AlgorithmKind kind : kTrio) {
    for (std::size_t changes : standard_change_counts()) {
      auto& stable_row = stable[kind][changes];
      auto& progress_row = in_progress[kind][changes];
      for (std::size_t r = 0; r < rates.size(); ++r) {
        const CaseResult& result = swept.cases[index++].result;
        stable_row.push_back(result.stable);
        progress_row.push_back(result.in_progress);
        overall_max_stable[kind] =
            std::max(overall_max_stable[kind], result.stable.max_observed);
        overall_max_sent[kind] =
            std::max(overall_max_sent[kind], result.in_progress.max_observed);
      }
    }
  }

  print_histogram_figure(
      "Figure 4-7: ambiguous sessions retained when stable (end of run)",
      "fig4_7_stable", stable, rates);
  print_histogram_figure(
      "Figure 4-8: ambiguous sessions held at connectivity changes (sent "
      "over the network)",
      "fig4_8_in_progress", in_progress, rates);

  std::cout << "\n== Maxima across all cases (thesis: YKD never exceeded 4, "
               "unoptimized/DFLS never exceeded 9) ==\n";
  for (AlgorithmKind kind : kTrio) {
    std::cout << "  " << to_string(kind) << ": max at stable state = "
              << overall_max_stable[kind]
              << ", max sent over network = " << overall_max_sent[kind]
              << '\n';
  }
  return 0;
}
