// Reproduces thesis Figures 4-1, 4-2, 4-3: system availability under 2, 6
// and 12 connectivity changes, "fresh start" mode (each run begins in the
// original all-connected state), across the full rate sweep.
//
// Expected shape (thesis §4.1):
//  * at the extreme left (changes every round) every algorithm collapses
//    to the simple-majority baseline -- no time to exchange anything;
//  * availability rises with the mean rounds between changes;
//  * YKD >= DFLS everywhere (DFLS pays for its extra round);
//  * 1-pending and MR1p fall well below YKD as changes increase, dropping
//    under simple majority at 12 changes;
//  * MR1p is nearly as available as YKD at 2 changes (one pending session
//    is exactly what it can resolve) but degrades fastest as changes grow.
#include <iostream>

#include "bench_util.hpp"

int main() {
  using namespace dynvote;
  using namespace dynvote::bench;

  const struct {
    const char* name;
    std::size_t changes;
    const char* csv;
  } figures[] = {
      {"Figure 4-1", 2, "fig4_1_fresh_2"},
      {"Figure 4-2", 6, "fig4_2_fresh_6"},
      {"Figure 4-3", 12, "fig4_3_fresh_12"},
  };

  for (const auto& f : figures) {
    const AvailabilityFigure fig =
        run_availability_figure(f.name, f.csv, f.changes, RunMode::kFreshStart);
    print_availability_figure(fig, f.csv);
    print_ykd_dfls_gap(fig);
  }
  return 0;
}
