// Availability under the sleepy fault model: processes voluntarily leave
// (all in-flight messages still delivered, unlike a crash) and later
// rejoin the component of the lowest awake process.  Same axes as Figure
// 4-2 -- the full rate sweep at 6 changes, fresh-start mode -- so the
// geometric figure is the direct point of comparison.
//
// Expected shape:
//  * every algorithm is MORE available than under geometric partitions at
//    the same rate: a sleep removes one process cleanly instead of
//    splitting the component, so the survivors keep a larger majority;
//  * the algorithm ordering (YKD >= DFLS >= 1-pending/MR1p) is preserved,
//    which is what makes the model a useful cross-check rather than a new
//    story.
#include <iostream>

#include "bench_util.hpp"

int main() {
  using namespace dynvote;
  using namespace dynvote::bench;

  FaultModelParams model;
  model.kind = FaultModelKind::kSleepy;
  model.wake_bias = 0.5;

  SweepSpec sweep;
  sweep.name = "fig_sleepy_availability";
  const std::vector<double> rates = standard_rate_sweep();
  sweep.cases =
      availability_grid(plotted_algorithms(), rates, 6, RunMode::kFreshStart,
                        default_runs(), seed_from_env(0x5eed), 64);
  for (SweepCase& c : sweep.cases) c.spec.fault_model = model;
  const SweepResult swept = run_sweep(sweep);

  std::cout << "\n== Sleepy availability: 6 sleep/wake events, wake bias "
            << format_double(model.wake_bias, 2) << " ==\n"
            << "(" << default_runs() << " runs per case, 64 processes; "
            << "availability % = runs ending with a primary component)\n";
  std::vector<std::string> headers{"rounds between changes"};
  for (AlgorithmKind kind : plotted_algorithms()) {
    headers.emplace_back(to_string(kind));
  }
  TextTable table(headers);
  // The grid is algorithm-major; the table wants one row per rate.
  for (std::size_t r = 0; r < rates.size(); ++r) {
    std::vector<std::string> row{format_double(rates[r], 0)};
    for (std::size_t a = 0; a < plotted_algorithms().size(); ++a) {
      const CaseResult& result = swept.cases[a * rates.size() + r].result;
      row.push_back(format_double(result.availability_percent()));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  if (maybe_write_csv("fig_sleepy_availability", table.to_csv())) {
    std::cout << "(csv written to $DV_CSV_DIR/fig_sleepy_availability.csv)\n";
  }
  return 0;
}
