// google-benchmark microbenchmarks: the per-operation costs underneath the
// simulation -- codec throughput, quorum math, a full protocol round, and
// whole simulated runs per algorithm (the unit of the availability study).
#include <benchmark/benchmark.h>

#include "core/payload.hpp"
#include "core/quorum.hpp"
#include "sim/driver.hpp"
#include "util/rng.hpp"

namespace dynvote {
namespace {

StateExchangePayload typical_state(std::size_t processes) {
  StateExchangePayload p;
  p.view_id = 3;
  p.session_number = 40;
  p.last_primary = Session{39, ProcessSet::full(processes)};
  for (int i = 0; i < 2; ++i) {
    p.ambiguous.push_back(Session{40u + i, ProcessSet::full(processes)});
  }
  p.last_formed.assign(processes, Session{39, ProcessSet::full(processes)});
  return p;
}

void BM_EncodeStatePayload(benchmark::State& state) {
  const auto payload = typical_state(static_cast<std::size_t>(state.range(0)));
  std::size_t bytes = 0;
  for (auto _ : state) {
    const auto encoded = encode_payload(payload);
    bytes = encoded.size();
    benchmark::DoNotOptimize(encoded.data());
  }
  state.counters["wire_bytes"] = static_cast<double>(bytes);
}
BENCHMARK(BM_EncodeStatePayload)->Arg(16)->Arg(64);

void BM_DecodeStatePayload(benchmark::State& state) {
  const auto encoded =
      encode_payload(typical_state(static_cast<std::size_t>(state.range(0))));
  for (auto _ : state) {
    const PayloadPtr decoded = decode_payload(encoded);
    benchmark::DoNotOptimize(decoded.get());
  }
}
BENCHMARK(BM_DecodeStatePayload)->Arg(16)->Arg(64);

void BM_Subquorum(benchmark::State& state) {
  Rng rng(7);
  const std::size_t n = 64;
  ProcessSet candidate(n), of = ProcessSet::full(n);
  for (ProcessId p = 0; p < n; ++p) {
    if (rng.chance(0.6)) candidate.insert(p);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(is_subquorum(candidate, of));
  }
}
BENCHMARK(BM_Subquorum);

void BM_ProtocolRound(benchmark::State& state) {
  // One full state-exchange round at 64 processes: partition, then measure
  // the dominant round (everyone's state delivered to everyone).
  for (auto _ : state) {
    state.PauseTiming();
    Gcs gcs(AlgorithmKind::kYkd, 64);
    gcs.apply_partition(0, ProcessSet(64, {60, 61, 62, 63}));
    gcs.step_round();  // states queued
    state.ResumeTiming();
    gcs.step_round();  // 64x64 deliveries + decisions
  }
}
BENCHMARK(BM_ProtocolRound)->Unit(benchmark::kMicrosecond);

void BM_FullRun(benchmark::State& state) {
  const auto kind = static_cast<AlgorithmKind>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    SimulationConfig config;
    config.algorithm = kind;
    config.processes = 64;
    config.changes_per_run = 6;
    config.mean_rounds_between_changes = 4.0;
    config.seed = seed++;
    Simulation sim(config);
    benchmark::DoNotOptimize(sim.run_once().primary_at_end);
  }
}
BENCHMARK(BM_FullRun)
    ->Unit(benchmark::kMillisecond)
    ->Arg(static_cast<int>(AlgorithmKind::kYkd))
    ->Arg(static_cast<int>(AlgorithmKind::kDfls))
    ->Arg(static_cast<int>(AlgorithmKind::kOnePending))
    ->Arg(static_cast<int>(AlgorithmKind::kMr1p))
    ->Arg(static_cast<int>(AlgorithmKind::kSimpleMajority));

void BM_FullRunNoInvariantChecks(benchmark::State& state) {
  std::uint64_t seed = 1;
  for (auto _ : state) {
    SimulationConfig config;
    config.algorithm = AlgorithmKind::kYkd;
    config.processes = 64;
    config.changes_per_run = 6;
    config.mean_rounds_between_changes = 4.0;
    config.seed = seed++;
    config.check_invariants = false;
    Simulation sim(config);
    benchmark::DoNotOptimize(sim.run_once().primary_at_end);
  }
}
BENCHMARK(BM_FullRunNoInvariantChecks)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dynvote

BENCHMARK_MAIN();
