// google-benchmark microbenchmarks: the per-operation costs underneath the
// simulation -- codec throughput, quorum math, a full protocol round, and
// whole simulated runs per algorithm (the unit of the availability study).
//
// Instead of BENCHMARK_MAIN(), a custom main records every run and writes
// a "dynvote.microbench.v1" manifest (MICRO_bench.json) next to the sweep
// manifests, so per-operation timings ride the same artifact pipeline and
// tools/bench_diff can compare them across commits.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdio>
#include <ctime>
#include <string>
#include <utility>
#include <vector>

#include "core/payload.hpp"
#include "core/quorum.hpp"
#include "obs/trace.hpp"
#include "runner/artifact.hpp"
#include "util/json.hpp"
#include "sim/driver.hpp"
#include "util/alloc_stats.hpp"
#include "util/rng.hpp"

namespace dynvote {
namespace {

StateExchangePayload typical_state(std::size_t processes) {
  StateExchangePayload p;
  p.view_id = 3;
  p.session_number = 40;
  p.last_primary = Session{39, ProcessSet::full(processes)};
  for (int i = 0; i < 2; ++i) {
    p.ambiguous.push_back(Session{40u + i, ProcessSet::full(processes)});
  }
  p.last_formed.assign(processes, Session{39, ProcessSet::full(processes)});
  return p;
}

void BM_EncodeStatePayload(benchmark::State& state) {
  const auto payload = typical_state(static_cast<std::size_t>(state.range(0)));
  std::size_t bytes = 0;
  for (auto _ : state) {
    const auto encoded = encode_payload(payload);
    bytes = encoded.size();
    benchmark::DoNotOptimize(encoded.data());
  }
  state.counters["wire_bytes"] = static_cast<double>(bytes);
}
BENCHMARK(BM_EncodeStatePayload)->Arg(16)->Arg(64);

void BM_DecodeStatePayload(benchmark::State& state) {
  const auto encoded =
      encode_payload(typical_state(static_cast<std::size_t>(state.range(0))));
  for (auto _ : state) {
    const PayloadPtr decoded = decode_payload(encoded);
    benchmark::DoNotOptimize(decoded.get());
  }
}
BENCHMARK(BM_DecodeStatePayload)->Arg(16)->Arg(64);

void BM_Subquorum(benchmark::State& state) {
  Rng rng(7);
  const std::size_t n = 64;
  ProcessSet candidate(n), of = ProcessSet::full(n);
  for (ProcessId p = 0; p < n; ++p) {
    if (rng.chance(0.6)) candidate.insert(p);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(is_subquorum(candidate, of));
  }
}
BENCHMARK(BM_Subquorum);

void BM_ProtocolRound(benchmark::State& state) {
  // One full state-exchange round at 64 processes: partition, then measure
  // the dominant round (everyone's state delivered to everyone).
  std::uint64_t allocs = 0;
  std::uint64_t rounds = 0;
  for (auto _ : state) {
    state.PauseTiming();
    Gcs gcs(AlgorithmKind::kYkd, 64);
    gcs.apply_partition(0, ProcessSet(64, {60, 61, 62, 63}));
    gcs.step_round();  // states queued
    state.ResumeTiming();
    const std::uint64_t before = thread_allocations();
    gcs.step_round();  // 64x64 deliveries + decisions
    allocs += thread_allocations() - before;
    ++rounds;
  }
  if (alloc_hook_linked() && rounds > 0) {
    state.counters["allocs_per_round"] =
        static_cast<double>(allocs) / static_cast<double>(rounds);
  }
}
BENCHMARK(BM_ProtocolRound)->Unit(benchmark::kMicrosecond);

void BM_FullRun(benchmark::State& state) {
  const auto kind = static_cast<AlgorithmKind>(state.range(0));
  std::uint64_t iteration = 0;
  for (auto _ : state) {
    SimulationConfig config;
    config.algorithm = kind;
    config.processes = 64;
    config.changes_per_run = 6;
    config.mean_rounds_between_changes = 4.0;
    config.seed = child_seed(kBenchFullRunStreamTag, iteration++);
    Simulation sim(config);
    benchmark::DoNotOptimize(sim.run_once().primary_at_end);
  }
}
BENCHMARK(BM_FullRun)
    ->Unit(benchmark::kMillisecond)
    ->Arg(static_cast<int>(AlgorithmKind::kYkd))
    ->Arg(static_cast<int>(AlgorithmKind::kDfls))
    ->Arg(static_cast<int>(AlgorithmKind::kOnePending))
    ->Arg(static_cast<int>(AlgorithmKind::kMr1p))
    ->Arg(static_cast<int>(AlgorithmKind::kSimpleMajority));

void BM_FullRunNoInvariantChecks(benchmark::State& state) {
  std::uint64_t iteration = 0;
  for (auto _ : state) {
    SimulationConfig config;
    config.algorithm = AlgorithmKind::kYkd;
    config.processes = 64;
    config.changes_per_run = 6;
    config.mean_rounds_between_changes = 4.0;
    config.seed = child_seed(kBenchFullRunUncheckedStreamTag, iteration++);
    config.check_invariants = false;
    Simulation sim(config);
    benchmark::DoNotOptimize(sim.run_once().primary_at_end);
  }
}
BENCHMARK(BM_FullRunNoInvariantChecks)->Unit(benchmark::kMillisecond);

void BM_TraceEvent(benchmark::State& state) {
  // Cost of recording one armed trace instant: a steady_clock read plus a
  // thread-local ring write.  Compare against the disabled path, which is
  // a single relaxed load and branch (effectively free).
  const bool enabled = state.range(0) != 0;
  if (enabled) obs::trace_enable(1 << 12);
  const std::uint32_t name = obs::intern_trace_name("bench.trace_event");
  std::uint64_t i = 0;
  for (auto _ : state) {
    obs::trace_emit(obs::EventKind::kInstant, name, i++, 0);
  }
  if (enabled) {
    obs::trace_disable();
    benchmark::DoNotOptimize(obs::trace_drain().events.size());
  }
}
BENCHMARK(BM_TraceEvent)
    ->Arg(0)  // disarmed: the always-on cost at every emission site
    ->Arg(1)  // armed: the DV_TRACE=1 cost
    ->Unit(benchmark::kNanosecond);

/// Collects every iteration-level run while still printing the normal
/// console table, so one pass feeds both the terminal and the manifest.
class ManifestCollector : public benchmark::ConsoleReporter {
 public:
  struct Entry {
    std::string name;
    std::int64_t iterations = 0;
    double real_ns = 0.0;  // per-iteration wall time
    double cpu_ns = 0.0;   // per-iteration CPU time
    std::vector<std::pair<std::string, double>> counters;
  };

  const std::vector<Entry>& entries() const { return entries_; }

 protected:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      Entry entry;
      entry.name = run.benchmark_name();
      entry.iterations = run.iterations;
      const double iters =
          run.iterations > 0 ? static_cast<double>(run.iterations) : 1.0;
      // Accumulated times are in seconds regardless of the display unit.
      entry.real_ns = run.real_accumulated_time / iters * 1e9;
      entry.cpu_ns = run.cpu_accumulated_time / iters * 1e9;
      for (const auto& [counter_name, counter] : run.counters) {
        entry.counters.emplace_back(counter_name, counter.value);
      }
      entries_.push_back(std::move(entry));
    }
    ConsoleReporter::ReportRuns(runs);
  }

 private:
  std::vector<Entry> entries_;
};

std::string microbench_manifest_json(
    const std::vector<ManifestCollector::Entry>& entries) {
  JsonWriter json;
  json.begin_object();
  json.key("schema").value("dynvote.microbench.v1");
  json.key("created_unix")
      .value(static_cast<std::int64_t>(
          std::time(nullptr)));  // dvlint: ignore(determinism)
  json.key("git_describe").value(artifact_git_describe());
  json.key("alloc_hook_linked").value(alloc_hook_linked());
  json.key("benchmarks").begin_array();
  for (const ManifestCollector::Entry& entry : entries) {
    json.begin_object();
    json.key("name").value(entry.name);
    json.key("iterations").value(static_cast<std::int64_t>(entry.iterations));
    json.key("real_ns").value(entry.real_ns);
    json.key("cpu_ns").value(entry.cpu_ns);
    if (!entry.counters.empty()) {
      json.key("counters").begin_object();
      for (const auto& [name, value] : entry.counters) {
        json.key(name).value(value);
      }
      json.end_object();
    }
    json.end_object();
  }
  json.end_array();
  json.end_object();
  return json.str();
}

}  // namespace
}  // namespace dynvote

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  dynvote::ManifestCollector reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  const std::string path = dynvote::write_artifact_document(
      "MICRO_bench.json",
      dynvote::microbench_manifest_json(reporter.entries()));
  if (!path.empty()) {
    std::fprintf(stderr, "microbench manifest: %s\n", path.c_str());
  }
  return 0;
}
