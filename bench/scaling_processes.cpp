// Reproduces the thesis §4.1 scaling observation: "We also ran the same
// tests with 32 and 48 processes...  The results obtained with 32 and 48
// processes were almost identical to those obtained with 64."
#include <iostream>

#include "bench_util.hpp"

int main() {
  using namespace dynvote;
  using namespace dynvote::bench;

  const std::vector<std::size_t> sizes = {32, 48, 64};
  const std::vector<double> rates = {0, 2, 4, 8, 12};
  const std::uint64_t runs = default_runs();
  const std::uint64_t seed = seed_from_env(0x5eed);

  std::cout << "== Availability vs system size (6 fresh-start changes, "
            << runs << " runs per case) ==\n"
            << "Thesis: results at 32 and 48 processes are almost identical "
               "to 64.\n";

  const std::vector<AlgorithmKind> kinds = {AlgorithmKind::kYkd,
                                            AlgorithmKind::kOnePending,
                                            AlgorithmKind::kSimpleMajority};

  SweepSpec sweep;
  sweep.name = "scaling_processes";
  for (AlgorithmKind kind : kinds) {
    for (double rate : rates) {
      for (std::size_t n : sizes) {
        SweepCase c;
        c.algorithm = to_string(kind);
        c.spec.algorithm = kind;
        c.spec.processes = n;
        c.spec.changes = 6;
        c.spec.mean_rounds = rate;
        c.spec.runs = runs;
        c.spec.base_seed = seed;
        sweep.cases.push_back(std::move(c));
      }
    }
  }
  const SweepResult swept = run_sweep(sweep);

  std::size_t index = 0;
  for (AlgorithmKind kind : kinds) {
    std::cout << "\n-- " << to_string(kind) << " --\n";
    std::vector<std::string> headers{"rounds between changes"};
    for (std::size_t n : sizes) {
      headers.push_back(std::to_string(n) + " procs");
    }
    headers.emplace_back("max spread");
    TextTable table(headers);

    for (double rate : rates) {
      std::vector<std::string> row{format_double(rate, 0)};
      double lo = 100.0, hi = 0.0;
      for (std::size_t n = 0; n < sizes.size(); ++n) {
        const double availability =
            swept.cases[index++].result.availability_percent();
        lo = std::min(lo, availability);
        hi = std::max(hi, availability);
        row.push_back(format_double(availability));
      }
      row.push_back(format_double(hi - lo));
      table.add_row(std::move(row));
    }
    table.print(std::cout);
  }
  return 0;
}
