// Ablation over the MR1p resolution-policy interpretation (the thesis
// pseudocode leaves the "attempt"-status resolution unspecified; see
// core/mr1p.hpp).  Conservative stalling reproduces the thesis's finding
// that MR1p degrades drastically as changes accumulate; Paxos-style
// adoption recovers much of that loss -- quantified here.
#include <iostream>

#include "bench_util.hpp"
#include "core/mr1p.hpp"

namespace {

using namespace dynvote;
using namespace dynvote::bench;

Gcs::AlgorithmFactory mr1p_with(Mr1pResolutionPolicy policy) {
  return [policy](ProcessId self, const View& initial) {
    return std::make_unique<Mr1p>(self, initial, Mr1pOptions{policy});
  };
}

SweepCase policy_case(Mr1pResolutionPolicy policy, const char* label,
                      std::size_t changes, RunMode mode, std::uint64_t runs,
                      std::uint64_t seed) {
  SweepCase c;
  c.algorithm = label;
  c.spec.algorithm_factory = mr1p_with(policy);
  c.spec.processes = 64;
  c.spec.changes = changes;
  c.spec.mean_rounds = 2.0;
  c.spec.runs = runs;
  c.spec.mode = mode;
  c.spec.base_seed = seed;
  return c;
}

}  // namespace

int main() {
  const std::uint64_t runs = default_runs();
  const std::uint64_t seed = seed_from_env(0x5eed);

  std::cout << "== MR1p resolution-policy ablation (" << runs
            << " runs per case, rate 2, 64 processes) ==\n"
            << "conservative = stall on attempt-stage echoes (default; "
               "matches the thesis's degradation)\n"
            << "adopt        = Paxos-style completion of possibly-formed "
               "sessions\n";

  SweepSpec sweep;
  sweep.name = "ablation_mr1p_policy";
  for (RunMode mode : {RunMode::kFreshStart, RunMode::kCascading}) {
    for (std::size_t changes : standard_change_counts()) {
      sweep.cases.push_back(policy_case(Mr1pResolutionPolicy::kConservative,
                                        "mr1p[conservative]", changes, mode,
                                        runs, seed));
      sweep.cases.push_back(policy_case(Mr1pResolutionPolicy::kAdoptOnAttempt,
                                        "mr1p[adopt]", changes, mode, runs,
                                        seed));
    }
  }
  const SweepResult swept = run_sweep(sweep);

  TextTable table({"mode", "changes", "conservative %", "adopt %", "delta"});
  std::size_t index = 0;
  for (RunMode mode : {RunMode::kFreshStart, RunMode::kCascading}) {
    for (std::size_t changes : standard_change_counts()) {
      const double conservative =
          swept.cases[index++].result.availability_percent();
      const double adopt = swept.cases[index++].result.availability_percent();
      table.add_row({to_string(mode), std::to_string(changes),
                     format_double(conservative), format_double(adopt),
                     format_double(adopt - conservative)});
    }
  }
  table.print(std::cout);
  return 0;
}
