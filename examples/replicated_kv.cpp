// A replicated key-value store built on the primary-component API -- the
// kind of system the thesis's introduction motivates (partitioned
// replicated databases, ISIS/Phoenix-style toolkits).
//
// Each replica owns a PrimaryComponentAlgorithm instance.  Writes are
// accepted only by replicas inside the primary component (so at most one
// component ever accepts writes: no split-brain), are multicast to the
// component through the algorithm's piggyback interface, and are replayed
// to rejoining replicas when partitions heal.  Reads are served anywhere,
// tagged stale/authoritative by primary membership.
//
// The demo partitions a 5-replica store, shows the minority refusing
// writes while the majority continues, heals the partition, and verifies
// all replicas converge.
//
// Build & run:  ./build/examples/replicated_kv
#include <iostream>
#include <map>
#include <string>

#include "gcs/gcs.hpp"
#include "sim/invariants.hpp"
#include "util/codec.hpp"

using namespace dynvote;

namespace {

// --- the application: one KV replica per process -------------------------

struct WriteOp {
  std::uint64_t sequence = 0;
  std::string key;
  std::string value;

  std::vector<std::byte> encode() const {
    Encoder enc;
    enc.put_varint(sequence);
    enc.put_string(key);
    enc.put_string(value);
    return enc.take();
  }
  static WriteOp decode(std::span<const std::byte> bytes) {
    Decoder dec(bytes);
    WriteOp op;
    op.sequence = dec.get_varint();
    op.key = dec.get_string();
    op.value = dec.get_string();
    dec.finish();
    return op;
  }
};

class KvReplica {
 public:
  explicit KvReplica(ProcessId id) : id_(id) {}

  /// Apply a replicated write (idempotent by sequence number).
  void apply(const WriteOp& op) {
    if (op.sequence <= last_applied_ && last_applied_ != 0) return;
    data_[op.key] = op.value;
    last_applied_ = std::max(last_applied_, op.sequence);
  }

  std::optional<std::string> read(const std::string& key) const {
    const auto it = data_.find(key);
    if (it == data_.end()) return std::nullopt;
    return it->second;
  }

  /// State transfer: adopt a complete snapshot from a fresher replica.
  void adopt_snapshot(const std::map<std::string, std::string>& data,
                      std::uint64_t sequence) {
    if (sequence <= last_applied_) return;
    data_ = data;
    last_applied_ = sequence;
  }

  std::uint64_t last_applied() const { return last_applied_; }
  const std::map<std::string, std::string>& data() const { return data_; }
  ProcessId id() const { return id_; }

 private:
  ProcessId id_;
  std::map<std::string, std::string> data_;
  std::uint64_t last_applied_ = 0;
};

// --- the store: replicas + GCS + primary gating --------------------------

class ReplicatedStore {
 public:
  explicit ReplicatedStore(std::size_t replicas)
      : gcs_(AlgorithmKind::kYkd, replicas), checker_(gcs_) {
    for (ProcessId p = 0; p < replicas; ++p) replicas_.emplace_back(p);
  }

  /// Submit a write at `replica`.  Succeeds only if that replica is inside
  /// the primary component; the write is multicast to the whole component
  /// as the application payload of a piggybacked message.
  bool write(ProcessId replica, std::string key, std::string value) {
    if (!gcs_.algorithm(replica).in_primary()) return false;
    WriteOp op{++next_sequence_, std::move(key), std::move(value)};
    Message m;
    m.app_data = op.encode();
    // Per the interface contract, the outgoing message goes through the
    // algorithm, which may piggyback protocol state onto it.
    auto out = gcs_.algorithm(replica).outgoing_message_poll(m);
    const Message& to_send = out.has_value() ? *out : m;

    // Deliver to the replica's component (including itself) through each
    // recipient's incoming_message, which strips protocol state.
    const auto& component =
        gcs_.topology().component(gcs_.topology().component_of(replica));
    component.for_each([&](ProcessId r) {
      const Message app = gcs_.algorithm(r).incoming_message(to_send, replica);
      replicas_[r].apply(WriteOp::decode(app.app_data));
    });
    return true;
  }

  struct ReadResult {
    std::optional<std::string> value;
    bool authoritative = false;
  };

  ReadResult read(ProcessId replica, const std::string& key) const {
    return {replicas_[replica].read(key),
            gcs_.algorithm(replica).in_primary()};
  }

  /// Heal/cause partitions, then run protocol rounds to stability and
  /// bring rejoining replicas up to date from the freshest one.
  void partition(const ProcessSet& moved) {
    gcs_.apply_partition(gcs_.topology().component_of(moved.lowest()), moved);
    settle();
  }
  void heal_all() {
    while (gcs_.topology().component_count() > 1) gcs_.apply_merge(0, 1);
    settle();
    anti_entropy();
  }

  const Gcs& gcs() const { return gcs_; }

 private:
  void settle() {
    while (gcs_.step_round()) checker_.check(gcs_);
  }

  /// After a heal, transfer state from the most up-to-date replica -- a
  /// stand-in for the log/state transfer a real system runs on primary
  /// change.  Only replicas that were in the primary ever accepted writes,
  /// so "most up-to-date" is well defined.
  void anti_entropy() {
    const KvReplica* freshest = &replicas_[0];
    for (const KvReplica& r : replicas_) {
      if (r.last_applied() > freshest->last_applied()) freshest = &r;
    }
    for (KvReplica& r : replicas_) {
      r.adopt_snapshot(freshest->data(), freshest->last_applied());
    }
  }

  Gcs gcs_;
  InvariantChecker checker_;
  std::vector<KvReplica> replicas_;
  std::uint64_t next_sequence_ = 0;
};

void show(const ReplicatedStore& store, ProcessId replica,
          const std::string& key) {
  const auto r = store.read(replica, key);
  std::cout << "  replica " << replica << ": " << key << " = "
            << (r.value ? *r.value : "<missing>")
            << (r.authoritative ? "  [in primary]" : "  [stale ok]") << '\n';
}

}  // namespace

int main() {
  ReplicatedStore store(5);

  std::cout << "All five replicas connected; any replica accepts writes:\n";
  std::cout << "  write(replica 0, user:42 = alice): "
            << (store.write(0, "user:42", "alice") ? "ACCEPTED" : "REFUSED")
            << '\n';
  show(store, 4, "user:42");

  std::cout << "\nPartition {3,4} away.  The majority {0,1,2} keeps the "
               "primary:\n";
  store.partition(ProcessSet(5, {3, 4}));
  std::cout << "  write(replica 0, user:42 = bob): "
            << (store.write(0, "user:42", "bob") ? "ACCEPTED" : "REFUSED")
            << '\n';
  std::cout << "  write(replica 4, user:42 = mallory): "
            << (store.write(4, "user:42", "mallory") ? "ACCEPTED" : "REFUSED")
            << "   <- minority cannot accept writes\n";
  show(store, 0, "user:42");
  show(store, 4, "user:42");

  std::cout << "\nThe primary component can keep shrinking (dynamic "
               "voting): partition {2} away from {0,1,2}:\n";
  store.partition(ProcessSet(5, {2}));
  std::cout << "  write(replica 0, user:43 = carol): "
            << (store.write(0, "user:43", "carol") ? "ACCEPTED" : "REFUSED")
            << "   <- {0,1} is a majority of {0,1,2}\n";

  std::cout << "\nHeal everything; replicas converge on the primary's "
               "history:\n";
  store.heal_all();
  show(store, 3, "user:42");
  show(store, 4, "user:43");
  std::cout << "  (no write was ever accepted in two places at once)\n";
  return 0;
}
