// Quickstart: drive the YKD dynamic voting algorithm through the exact
// scenario of thesis Figure 3-1 and watch it avoid the split-brain a naive
// majority-of-previous-primary rule would create.
//
//   * five processes a..e (ids 0..4) start connected;
//   * the system partitions into {a,b,c} and {d,e};
//   * {a,b,c} attempts to form a primary, but c detaches just as the final
//     round of attempt messages is in flight: c's attempt reaches a and b
//     (so they complete the primary {a,b,c}), while a's and b's never reach
//     c, which is left holding {a,b,c} as an *ambiguous session*;
//   * a and b notice c detached and form {a,b} (a majority of {a,b,c});
//   * c joins d and e.  {c,d,e} is a majority of the original five, but YKD
//     refuses to declare it primary: c knows {a,b,c} may exist, and {c,d,e}
//     is not a subquorum of it.  The naive rule would have declared it and
//     created two concurrent primaries;
//   * everyone reunites and the ambiguity resolves.
//
// Build & run:  ./build/examples/quickstart
#include <iostream>

#include "gcs/gcs.hpp"
#include "sim/invariants.hpp"

using namespace dynvote;

namespace {

constexpr const char* kNames = "abcde";

void report(const Gcs& gcs) {
  for (const ProcessSet& component : gcs.topology().components()) {
    const ProcessId lowest = component.lowest();
    const auto& alg = gcs.algorithm(lowest);
    std::cout << "  component {";
    bool first = true;
    component.for_each([&](ProcessId p) {
      std::cout << (first ? "" : ",") << kNames[p];
      first = false;
    });
    std::cout << "}: " << (alg.in_primary() ? "PRIMARY" : "not primary")
              << "  (ambiguous sessions at '" << kNames[lowest]
              << "': " << alg.debug_info().ambiguous_count << ")\n";
  }
  std::cout << '\n';
}

void settle(Gcs& gcs, InvariantChecker& checker) {
  while (gcs.step_round()) checker.check(gcs);
}

}  // namespace

int main() {
  Gcs gcs(AlgorithmKind::kYkd, 5);
  InvariantChecker checker(gcs);

  std::cout << "Initial state: everyone connected, the initial view is the "
               "primary\n";
  report(gcs);

  std::cout << "Partition into {a,b,c} | {d,e}, then let the protocol run "
               "only two\nrounds: state exchange done, attempt messages "
               "still in flight...\n";
  gcs.apply_partition(0, ProcessSet(5, {3, 4}));
  checker.check(gcs);
  gcs.step_round();  // round 1: state exchange multicast
  checker.check(gcs);
  gcs.step_round();  // round 2: states delivered, attempts multicast
  checker.check(gcs);

  std::cout << "...and now c detaches.  Its attempt message escapes to a and "
               "b,\nbut theirs never reach c (scripted cross-delivery):\n";
  const std::size_t abc = gcs.topology().component_of(0);
  gcs.apply_partition(abc, ProcessSet(5, {2}),
                      [](ProcessId sender) { return sender == 2; });
  checker.check(gcs);
  settle(gcs, checker);
  report(gcs);
  std::cout << "  -> a and b formed {a,b,c} during the flush, then re-formed "
               "{a,b};\n     c holds {a,b,c} as an ambiguous session.\n\n";

  std::cout << "c merges with {d,e}: a majority of the original five, but "
               "YKD\nrefuses -- {c,d,e} is not a subquorum of the possibly-"
               "formed {a,b,c}\n";
  gcs.apply_merge(gcs.topology().component_of(2),
                  gcs.topology().component_of(3));
  checker.check(gcs);
  settle(gcs, checker);
  report(gcs);

  std::cout << "Everyone reunites: c learns {a,b,c} really did form, adopts "
               "it, and\nthe full view becomes the primary again\n";
  gcs.apply_merge(0, 1);
  checker.check(gcs);
  settle(gcs, checker);
  report(gcs);

  std::cout << "Invariant checks performed: " << checker.checks_performed()
            << " (view agreement and at-most-one-primary held throughout)\n";
  return 0;
}
