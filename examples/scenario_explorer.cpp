// Scenario explorer: run any (algorithm, processes, changes, rate, mode)
// case from the command line and print the availability and ambiguity
// statistics -- a miniature version of the paper's whole measurement rig,
// useful for poking at regimes the figures do not cover.
//
// Examples:
//   scenario_explorer --algorithm ykd --changes 12 --rate 2 --runs 500
//   scenario_explorer --algorithm mr1p --mode cascading --changes 6 --rate 1
//   scenario_explorer --all --changes 6 --rate 4        (compare everyone)
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "runner/sweep.hpp"
#include "sim/table.hpp"

using namespace dynvote;

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " [options]\n"
      << "  --algorithm NAME   ykd | ykd-unoptimized | dfls | 1-pending |\n"
      << "                     mr1p | simple-majority   (default: ykd)\n"
      << "  --all              run every algorithm on the same schedule\n"
      << "  --processes N      system size (default 64)\n"
      << "  --changes N        connectivity changes per run (default 6)\n"
      << "  --rate R           mean message rounds between changes (default 4)\n"
      << "  --runs N           runs per case (default 200)\n"
      << "  --mode M           fresh | cascading (default fresh)\n"
      << "  --seed N           base seed (default 0x5eed)\n"
      << "  --crash-fraction F share of faults that are process\n"
      << "                     crashes/recoveries (default 0)\n"
      << "  --jobs N           worker threads (default: DV_JOBS, else all\n"
      << "                     hardware threads)\n";
  std::exit(2);
}

std::string row_label(const CaseResult& r, AlgorithmKind kind) {
  (void)r;
  return std::string(to_string(kind));
}

}  // namespace

int main(int argc, char** argv) {
  CaseSpec spec;
  spec.runs = 200;
  bool run_all = false;
  std::size_t jobs = 0;  // 0 = DV_JOBS / hardware default

  try {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--algorithm") {
      const auto kind = algorithm_kind_from_string(next());
      if (!kind.has_value()) usage(argv[0]);
      spec.algorithm = *kind;
    } else if (arg == "--all") {
      run_all = true;
    } else if (arg == "--processes") {
      spec.processes = std::stoul(next());
    } else if (arg == "--changes") {
      spec.changes = std::stoul(next());
    } else if (arg == "--rate") {
      spec.mean_rounds = std::stod(next());
    } else if (arg == "--runs") {
      spec.runs = std::stoull(next());
    } else if (arg == "--mode") {
      const std::string mode = next();
      if (mode == "fresh") {
        spec.mode = RunMode::kFreshStart;
      } else if (mode == "cascading") {
        spec.mode = RunMode::kCascading;
      } else {
        usage(argv[0]);
      }
    } else if (arg == "--seed") {
      spec.base_seed = std::stoull(next());
    } else if (arg == "--crash-fraction") {
      spec.crash_fraction = std::stod(next());
    } else if (arg == "--jobs") {
      jobs = std::stoul(next());
    } else {
      usage(argv[0]);
    }
  }
  } catch (const std::invalid_argument&) {
    usage(argv[0]);  // non-numeric value for a numeric flag
  } catch (const std::out_of_range&) {
    usage(argv[0]);
  }

  std::vector<AlgorithmKind> kinds =
      run_all ? all_algorithm_kinds() : std::vector<AlgorithmKind>{spec.algorithm};

  SweepSpec sweep;
  sweep.name = "scenario_explorer";
  sweep.jobs = jobs;
  for (AlgorithmKind kind : kinds) {
    SweepCase one;
    one.algorithm = to_string(kind);
    one.spec = spec;
    one.spec.algorithm = kind;
    sweep.cases.push_back(std::move(one));
  }
  const SweepResult swept = run_sweep(sweep);

  std::cout << "processes=" << spec.processes << " changes=" << spec.changes
            << " rate=" << spec.mean_rounds << " runs=" << spec.runs
            << " mode=" << to_string(spec.mode) << " jobs=" << swept.jobs
            << "\n\n";

  TextTable table({"algorithm", "availability %", "in-run avail %",
                   "runs w/ pending %", "max pending", "avg rounds/run"});
  for (std::size_t k = 0; k < kinds.size(); ++k) {
    const CaseResult& result = swept.cases[k].result;
    table.add_row(
        {row_label(result, kinds[k]),
         format_double(result.availability_percent()),
         format_double(result.in_run_availability_percent()),
         format_double(result.stable.percent_nonzero()),
         std::to_string(result.stable.max_observed),
         format_double(static_cast<double>(result.total_rounds) /
                           static_cast<double>(result.runs),
                       1)});
  }
  table.print(std::cout);
  if (!swept.artifact_path.empty()) {
    std::cout << "(manifest written to " << swept.artifact_path << ")\n";
  }
  return 0;
}
