// The dynamic-linear-voting quorum rules, including a parameterized sweep
// over system sizes verifying the properties the algorithms' safety rests
// on: two subquorums of the same set always intersect.
#include <gtest/gtest.h>

#include "core/quorum.hpp"
#include "core/session.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace dynvote {
namespace {

TEST(Quorum, StrictMajority) {
  const ProcessSet of(6, {0, 1, 2, 3, 4, 5});
  EXPECT_TRUE(is_majority_of(ProcessSet(6, {0, 1, 2, 3}), of));
  EXPECT_FALSE(is_majority_of(ProcessSet(6, {0, 1, 2}), of));  // exactly half
  EXPECT_FALSE(is_majority_of(ProcessSet(6, {0, 1}), of));
}

TEST(Quorum, SubquorumMajorityAlwaysQualifies) {
  const ProcessSet of(5, {0, 1, 2, 3, 4});
  EXPECT_TRUE(is_subquorum(ProcessSet(5, {0, 1, 2}), of));
  EXPECT_FALSE(is_subquorum(ProcessSet(5, {0, 1}), of));
}

TEST(Quorum, ExactHalfNeedsTheLexicallySmallestMember) {
  const ProcessSet of(6, {1, 2, 3, 4});
  // Half of {1,2,3,4} is two members; 1 is the lexically smallest.
  EXPECT_TRUE(is_subquorum(ProcessSet(6, {1, 2}), of));
  EXPECT_TRUE(is_subquorum(ProcessSet(6, {1, 4}), of));
  EXPECT_FALSE(is_subquorum(ProcessSet(6, {2, 3}), of));
  EXPECT_FALSE(is_subquorum(ProcessSet(6, {3, 4}), of));
}

TEST(Quorum, CandidateMayContainOutsiders) {
  const ProcessSet of(8, {0, 1, 2});
  // Outsiders neither help nor hurt; only the intersection counts.
  EXPECT_TRUE(is_subquorum(ProcessSet(8, {0, 1, 6, 7}), of));
  EXPECT_FALSE(is_subquorum(ProcessSet(8, {2, 6, 7}), of));
}

TEST(Quorum, SingletonSet) {
  const ProcessSet of(4, {2});
  EXPECT_TRUE(is_subquorum(ProcessSet(4, {2}), of));
  EXPECT_FALSE(is_subquorum(ProcessSet(4, {1}), of));
}

TEST(Quorum, EmptyReferenceSetThrows) {
  EXPECT_THROW((void)is_subquorum(ProcessSet(4, {1}), ProcessSet(4)),
               PreconditionViolation);
}

// --- property sweep: any two subquorums of the same set intersect ---

class SubquorumIntersection : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SubquorumIntersection, RandomSubquorumsAlwaysIntersect) {
  const std::size_t n = GetParam();
  Rng rng(0xABCD + n);
  const ProcessSet of = ProcessSet::full(n);

  const auto random_subset = [&]() {
    ProcessSet s(n);
    for (ProcessId p = 0; p < n; ++p) {
      if (rng.chance(0.5)) s.insert(p);
    }
    return s;
  };

  int found_pairs = 0;
  for (int trial = 0; trial < 2000; ++trial) {
    const ProcessSet a = random_subset();
    const ProcessSet b = random_subset();
    if (is_subquorum(a, of) && is_subquorum(b, of)) {
      ++found_pairs;
      EXPECT_TRUE(a.intersects(b))
          << "disjoint subquorums of full(" << n << "): " << a.to_string()
          << " and " << b.to_string();
    }
  }
  EXPECT_GT(found_pairs, 0) << "sweep exercised nothing at n=" << n;
}

INSTANTIATE_TEST_SUITE_P(Sizes, SubquorumIntersection,
                         ::testing::Values(2, 3, 4, 5, 8, 16, 33, 64));

TEST(Session, OrderingByNumberThenMembers) {
  const Session a{1, ProcessSet(4, {0, 1})};
  const Session b{2, ProcessSet(4, {0})};
  const Session c{2, ProcessSet(4, {1})};
  EXPECT_TRUE(session_precedes(a, b));
  EXPECT_FALSE(session_precedes(b, a));
  // Same number: ordered deterministically, antisymmetrically.
  EXPECT_NE(session_precedes(b, c), session_precedes(c, b));
  EXPECT_FALSE(session_precedes(b, b));
}

TEST(Session, ToStringIsReadable) {
  const Session s{7, ProcessSet(4, {1, 3})};
  EXPECT_EQ(s.to_string(), "session#7{1,3}");
}

}  // namespace
}  // namespace dynvote
