// Batched Monte-Carlo engine parity: the lockstep BatchDriver -- with
// prefix-spine adoption and quiet-gap fast-forward -- must reproduce the
// legacy one-run-at-a-time loop bit for bit.  Every assertion here compares
// full encoded CaseResults (or whole RunResults), not summaries.
#include <gtest/gtest.h>

#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include "sim/batch_driver.hpp"
#include "sim/driver.hpp"
#include "sim/experiment.hpp"
#include "sim/prefix.hpp"
#include "util/codec.hpp"
#include "util/rng.hpp"

namespace dynvote {
namespace {

CaseSpec small_case(AlgorithmKind kind, double rate) {
  CaseSpec spec;
  spec.algorithm = kind;
  spec.processes = 16;
  spec.changes = 4;
  spec.mean_rounds = rate;
  spec.runs = 24;
  spec.base_seed = 20260808;
  return spec;
}

std::vector<std::byte> result_bytes(const CaseResult& result) {
  Encoder enc;
  result.encode_body(enc);
  return enc.take();
}

/// Scoped DV_BATCH override that restores the previous value on exit, so
/// the tests in this binary cannot leak widths into each other.
class ScopedBatchWidth {
 public:
  explicit ScopedBatchWidth(const char* value) {
    const char* old = std::getenv("DV_BATCH");
    if (old != nullptr) saved_ = old;
    ::setenv("DV_BATCH", value, 1);
  }
  ~ScopedBatchWidth() {
    if (saved_.has_value()) {
      ::setenv("DV_BATCH", saved_->c_str(), 1);
    } else {
      ::unsetenv("DV_BATCH");
    }
  }

 private:
  std::optional<std::string> saved_;
};

SimulationConfig run_config(const CaseSpec& spec, std::uint64_t run_index) {
  SimulationConfig config;
  config.algorithm = spec.algorithm;
  config.processes = spec.processes;
  config.changes_per_run = spec.changes;
  config.mean_rounds_between_changes = spec.mean_rounds;
  config.seed = mix_seed(spec.base_seed, spec.processes, spec.changes,
                         std::bit_cast<std::uint64_t>(spec.mean_rounds),
                         run_index);
  return config;
}

TEST(BatchParity, FastForwardLeavesRunResultsBitIdentical) {
  // The quiet-gap fast-forward alone (no prefix, no lanes) against the
  // event-for-event loop, across algorithms, rates, and seeds -- including
  // wire and checker counters, which the fast path advances arithmetically.
  for (const AlgorithmKind kind :
       {AlgorithmKind::kYkd, AlgorithmKind::kDfls, AlgorithmKind::kMr1p,
        AlgorithmKind::kOnePending}) {
    for (const double rate : {0.0, 3.0, 9.0}) {
      std::uint64_t skipped = 0;
      for (std::uint64_t run = 0; run < 6; ++run) {
        const CaseSpec spec = small_case(kind, rate);
        SimulationConfig legacy = run_config(spec, run);
        SimulationConfig fast = legacy;
        fast.fast_forward_quiet_gaps = true;
        Simulation a(legacy);
        Simulation b(fast);
        const RunResult ra = a.run_once();
        const RunResult rb = b.run_once();
        EXPECT_EQ(ra, rb) << to_string(kind) << " rate=" << rate
                          << " run=" << run;
        EXPECT_EQ(a.gcs().wire_stats().messages_sent,
                  b.gcs().wire_stats().messages_sent);
        EXPECT_EQ(a.gcs().deliveries(), b.gcs().deliveries());
        EXPECT_EQ(a.invariant_checks(), b.invariant_checks());
        skipped += b.fast_forwarded_rounds();
      }
      // At a long mean gap the fast path must actually engage somewhere
      // (post-fault gaps always run at least one real round first, so not
      // every individual run is required to skip).
      if (rate >= 9.0) {
        EXPECT_GT(skipped, 0u) << to_string(kind) << " rate=" << rate;
      }
    }
  }
}

TEST(BatchParity, PrefixAdoptionMatchesPlainRun) {
  // Starting a run by adopting the shared prefix spine, then finishing it
  // with run_events, equals running it whole -- for every counter the
  // aggregation layer folds.
  const CaseSpec spec = small_case(AlgorithmKind::kYkd, 4.0);
  SimulationConfig spine = run_config(spec, 0);
  spine.fast_forward_quiet_gaps = true;
  const PrefixCache prefix(spine);
  for (std::uint64_t run = 0; run < 8; ++run) {
    SimulationConfig config = run_config(spec, run);
    config.fast_forward_quiet_gaps = true;
    Simulation plain(config);
    const RunResult expected = plain.run_once();

    Simulation adopted(config);
    (void)adopted.begin_run_with_prefix(prefix);
    const std::optional<RunResult> got = adopted.run_events(SIZE_MAX);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(expected, *got) << "run=" << run;
    EXPECT_EQ(plain.gcs().wire_stats().messages_sent,
              adopted.gcs().wire_stats().messages_sent);
    EXPECT_EQ(plain.gcs().deliveries(), adopted.gcs().deliveries());
    EXPECT_EQ(plain.invariant_checks(), adopted.invariant_checks());
  }
}

TEST(BatchParity, WidthsProduceBitIdenticalCaseResults) {
  for (const AlgorithmKind kind :
       {AlgorithmKind::kYkd, AlgorithmKind::kDfls, AlgorithmKind::kMr1p}) {
    const CaseSpec spec = small_case(kind, 3.0);
    std::vector<std::byte> control;
    {
      ScopedBatchWidth width("1");
      control = result_bytes(run_case_shard(spec, 0, spec.runs));
    }
    for (const char* width_value : {"2", "3", "8"}) {
      ScopedBatchWidth width(width_value);
      BatchTelemetry telemetry;
      const CaseResult batched =
          run_case_shard(spec, 0, spec.runs, &telemetry);
      EXPECT_EQ(control, result_bytes(batched))
          << to_string(kind) << " DV_BATCH=" << width_value;
      EXPECT_EQ(telemetry.runs, spec.runs);
      EXPECT_EQ(telemetry.prefix_hits + telemetry.prefix_misses, spec.runs);
      EXPECT_GT(telemetry.batch_width, 1u);
    }
  }
}

TEST(BatchParity, ShardMergeUnderBatchMatchesWholeCase) {
  // The sweep runner's shard/merge discipline holds under the batched
  // engine too: contiguous shards merged in run order equal one shard.
  const CaseSpec spec = small_case(AlgorithmKind::kDfls, 5.0);
  ScopedBatchWidth width("8");
  const CaseResult whole = run_case_shard(spec, 0, spec.runs);
  CaseResult merged = run_case_shard(spec, 0, 7);
  merged.merge(run_case_shard(spec, 7, spec.runs - 7));
  EXPECT_EQ(result_bytes(whole), result_bytes(merged));
}

TEST(BatchParity, TelemetryCountsFastForwardAtQuietRates) {
  // At a generous gap the spine quiesces and later gaps fast-forward, so
  // the batched shard must report adopted prefix rounds and skipped rounds.
  const CaseSpec spec = small_case(AlgorithmKind::kYkd, 8.0);
  ScopedBatchWidth width("8");
  BatchTelemetry telemetry;
  (void)run_case_shard(spec, 0, spec.runs, &telemetry);
  EXPECT_GT(telemetry.prefix_hits, 0u);
  EXPECT_GE(telemetry.prefix_rounds_adopted, telemetry.prefix_hits);
  EXPECT_GT(telemetry.ff_rounds_skipped, 0u);
  EXPECT_GT(telemetry.end_component_members, 0u);
}

}  // namespace
}  // namespace dynvote
