// Directed scenarios for YKD -- including the thesis's Figure 3-1 scenario,
// the two-round formation schedule, dynamic-voting chains, session
// learning, and the storage optimization.
#include <gtest/gtest.h>

#include "core/ykd.hpp"
#include "gcs/gcs.hpp"
#include "sim_test_util.hpp"

namespace dynvote {
namespace {

using test::all_cross;
using test::all_in_primary;
using test::no_cross;
using test::settle;

TEST(Ykd, FormsPrimaryInExactlyTwoMessageRounds) {
  Gcs gcs(AlgorithmKind::kYkd, 5);
  gcs.apply_partition(0, ProcessSet(5, {4}));
  gcs.step_round();  // round 1 sent
  gcs.step_round();  // round 1 delivered, round 2 sent
  EXPECT_FALSE(gcs.has_primary());
  gcs.step_round();  // round 2 delivered
  EXPECT_TRUE(all_in_primary(gcs, ProcessSet(5, {0, 1, 2, 3})));
}

TEST(Ykd, DynamicVotingChainsThroughRepeatedPartitions) {
  // 8 -> 5 -> 3 -> 2: each step keeps a majority of the previous primary,
  // not of the original 8.  The final primary {0,1} is only a quarter of
  // the initial view -- impossible for simple majority, routine for
  // dynamic voting.
  Gcs gcs(AlgorithmKind::kYkd, 8);
  gcs.apply_partition(0, ProcessSet(8, {5, 6, 7}));
  settle(gcs);
  EXPECT_TRUE(all_in_primary(gcs, ProcessSet(8, {0, 1, 2, 3, 4})));

  gcs.apply_partition(0, ProcessSet(8, {3, 4}));
  settle(gcs);
  EXPECT_TRUE(all_in_primary(gcs, ProcessSet(8, {0, 1, 2})));

  const std::size_t c012 = gcs.topology().component_of(0);
  gcs.apply_partition(c012, ProcessSet(8, {2}));
  settle(gcs);
  EXPECT_TRUE(all_in_primary(gcs, ProcessSet(8, {0, 1})));
  EXPECT_EQ(test::primary_member_count(gcs), 2u);
}

TEST(Ykd, MinoritySideOfThePreviousPrimaryCannotForm) {
  Gcs gcs(AlgorithmKind::kYkd, 8);
  gcs.apply_partition(0, ProcessSet(8, {5, 6, 7}));
  settle(gcs);  // primary {0..4}
  // {5,6,7} merging with nothing new: still no quorum of {0..4}.
  gcs.apply_partition(1, ProcessSet(8, {7}));
  settle(gcs);
  EXPECT_FALSE(gcs.algorithm(5).in_primary());
  EXPECT_FALSE(gcs.algorithm(7).in_primary());
}

TEST(Ykd, ExactHalfOfPreviousPrimaryUsesLexicalTieBreak) {
  Gcs gcs(AlgorithmKind::kYkd, 4);
  // Split the initial primary {0,1,2,3} exactly in half.
  gcs.apply_partition(0, ProcessSet(4, {1, 3}));
  settle(gcs);
  // {0,2} holds the lexically smallest member of {0,1,2,3}: it may form.
  EXPECT_TRUE(all_in_primary(gcs, ProcessSet(4, {0, 2})));
  EXPECT_FALSE(gcs.algorithm(1).in_primary());
}

// The thesis Figure 3-1 scenario, scripted end to end.
TEST(Ykd, Figure31InterruptedAttemptAvoidsSplitBrain) {
  Gcs gcs(AlgorithmKind::kYkd, 5);

  // Partition {a,b,c} | {d,e}; interrupt {a,b,c}'s formation while the
  // attempt messages are in flight.
  gcs.apply_partition(0, ProcessSet(5, {3, 4}));
  gcs.step_round();  // states sent
  gcs.step_round();  // states delivered; attempts sent (in flight)

  // c detaches; its attempt escaped to a,b but theirs never reached c.
  const std::size_t abc = gcs.topology().component_of(0);
  gcs.apply_partition(abc, ProcessSet(5, {2}),
                      [](ProcessId sender) { return sender == 2; });

  settle(gcs);
  // a,b completed {a,b,c} during the flush and then formed {a,b}.
  EXPECT_TRUE(all_in_primary(gcs, ProcessSet(5, {0, 1})));
  // c holds the ambiguous session.
  EXPECT_EQ(gcs.algorithm(2).debug_info().ambiguous_count, 1u);
  EXPECT_FALSE(gcs.algorithm(2).in_primary());

  // {c,d,e} is a majority of the original five -- the naive rule would
  // form it and split the brain.  YKD refuses.
  gcs.apply_merge(gcs.topology().component_of(2),
                  gcs.topology().component_of(3));
  settle(gcs);
  EXPECT_FALSE(gcs.algorithm(2).in_primary());
  EXPECT_FALSE(gcs.algorithm(3).in_primary());
  EXPECT_EQ(test::primary_member_count(gcs), 2u);  // only {a,b}

  // Reunion: c LEARNs {a,b,c} was formed, adopts it, everything resolves.
  gcs.apply_merge(0, 1);
  settle(gcs);
  EXPECT_TRUE(all_in_primary(gcs, ProcessSet::full(5)));
  EXPECT_EQ(gcs.algorithm(2).debug_info().ambiguous_count, 0u);
}

TEST(Ykd, UnresolvedAmbiguousSessionConstrainsButDoesNotBlock) {
  // Unlike 1-pending, YKD pipelines new attempts past a pending session as
  // long as the new view is a subquorum of it.
  Gcs gcs(AlgorithmKind::kYkd, 5);
  gcs.apply_partition(0, ProcessSet(5, {4}));
  settle(gcs);  // primary {0,1,2,3}

  // Rejoin process 4 and interrupt the full view's formation attempt.
  gcs.apply_merge(0, 1);
  gcs.step_round();
  gcs.step_round();  // attempts for {0..4} in flight
  gcs.apply_partition(0, ProcessSet(5, {4}), no_cross());
  settle(gcs);

  // {0,1,2,3} holds {0,1,2,3,4} as ambiguous (it cannot resolve it:
  // process 4 is unreachable and might have formed it).  It is a subquorum
  // of the pending session (4 of 5) and of its own last primary, so YKD
  // forms a new primary anyway.
  EXPECT_GE(gcs.algorithm(0).debug_info().session_number, 2u);
  EXPECT_TRUE(all_in_primary(gcs, ProcessSet(5, {0, 1, 2, 3})));
}

TEST(Ykd, LearnDeletesProvablyUnformedSessions) {
  Gcs gcs(AlgorithmKind::kYkd, 5);
  gcs.apply_partition(0, ProcessSet(5, {3, 4}));
  gcs.step_round();
  gcs.step_round();
  // {2} detaches with no cross-delivery: nobody formed {0,1,2}; both sides
  // hold it as ambiguous.
  gcs.apply_partition(gcs.topology().component_of(0), ProcessSet(5, {2}),
                      no_cross());
  EXPECT_GE(gcs.algorithm(2).debug_info().ambiguous_count, 1u);

  // Reunite {0,1} and {2}: every member of the ambiguous session is now
  // present and none formed it, so LEARN deletes it everywhere.
  gcs.apply_merge(gcs.topology().component_of(0),
                  gcs.topology().component_of(2));
  settle(gcs);
  EXPECT_EQ(gcs.algorithm(0).debug_info().ambiguous_count, 0u);
  EXPECT_EQ(gcs.algorithm(2).debug_info().ambiguous_count, 0u);
  EXPECT_TRUE(all_in_primary(gcs, ProcessSet(5, {0, 1, 2})));
}

TEST(Ykd, UnoptimizedRetainsMoreButDecidesTheSame) {
  // Drive both variants through the identical interrupted-attempt history
  // and compare: same availability decisions, different retained state.
  const auto drive = [](AlgorithmKind kind) {
    Gcs gcs(kind, 5);
    gcs.apply_partition(0, ProcessSet(5, {3, 4}));
    gcs.step_round();
    gcs.step_round();
    gcs.apply_partition(gcs.topology().component_of(0), ProcessSet(5, {2}),
                        [](ProcessId) { return false; });
    // settle both sides
    while (gcs.step_round()) {
    }
    return gcs.algorithm(2).debug_info().ambiguous_count;
  };
  // Both retain the interrupted session at process 2 (it cannot resolve it
  // alone); the variants agree here.
  EXPECT_EQ(drive(AlgorithmKind::kYkd), 1u);
  EXPECT_EQ(drive(AlgorithmKind::kYkdUnoptimized), 1u);
}

TEST(Ykd, SingletonComponentCanChainDownToOneProcess) {
  Gcs gcs(AlgorithmKind::kYkd, 2);
  gcs.apply_partition(0, ProcessSet(2, {1}));
  settle(gcs);
  // {0} is half of {0,1} including the lexically smallest: it forms alone.
  EXPECT_TRUE(gcs.algorithm(0).in_primary());
  EXPECT_FALSE(gcs.algorithm(1).in_primary());
}

TEST(Ykd, StaleViewPayloadsAreIgnored) {
  const View initial{1, ProcessSet::full(3)};
  Ykd alg(0, initial);
  alg.view_changed(View{5, ProcessSet(3, {0, 1})});

  auto stale = std::make_shared<StateExchangePayload>();
  stale->view_id = 4;  // previous view
  stale->last_primary = Session{0, ProcessSet::full(3)};
  stale->last_formed.assign(3, Session{0, ProcessSet::full(3)});
  Message m;
  m.protocol = stale;
  (void)alg.incoming_message(std::move(m), 1);
  // Nothing acted on: the algorithm still wants to send its own state and
  // has formed nothing.
  EXPECT_FALSE(alg.in_primary());
}

TEST(Ykd, AppDataPassesThroughUntouched) {
  const View initial{1, ProcessSet::full(3)};
  Ykd alg(0, initial);
  alg.view_changed(View{2, ProcessSet(3, {0, 1})});

  // Outgoing: the app payload is preserved when state is piggybacked.
  const auto out = alg.outgoing_message_poll(Message::from_text("payload"));
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->app_data, Message::from_text("payload").app_data);
  ASSERT_TRUE(out->has_protocol());

  // Incoming: the protocol part is stripped before the app sees it.
  const Message in = alg.incoming_message(*out, 0);
  EXPECT_EQ(in.app_data, Message::from_text("payload").app_data);
  EXPECT_FALSE(in.has_protocol());
}

TEST(Ykd, PollReturnsNothingWhenIdle) {
  const View initial{1, ProcessSet::full(3)};
  Ykd alg(0, initial);
  EXPECT_EQ(alg.outgoing_message_poll(Message::empty()), std::nullopt);
}

}  // namespace
}  // namespace dynvote
