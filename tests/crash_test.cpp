// Extension coverage (thesis §5.1 future work): process crashes and
// crash-recovery with stable storage.
#include <gtest/gtest.h>

#include "gcs/gcs.hpp"
#include "sim/driver.hpp"
#include "sim_test_util.hpp"

namespace dynvote {
namespace {

using test::all_in_primary;
using test::settle;

TEST(Crash, SurvivorsGetANewViewAndReformThePrimary) {
  Gcs gcs(AlgorithmKind::kYkd, 5);
  gcs.apply_crash(4);
  EXPECT_TRUE(gcs.is_crashed(4));
  EXPECT_EQ(gcs.view_of(0).members, ProcessSet(5, {0, 1, 2, 3}));
  settle(gcs);
  EXPECT_TRUE(all_in_primary(gcs, ProcessSet(5, {0, 1, 2, 3})));
}

TEST(Crash, CrashedProcessIsMutedAndExemptFromInvariants) {
  Gcs gcs(AlgorithmKind::kYkd, 4);
  InvariantChecker checker(gcs);
  // Process 0 is in_primary when it crashes; its frozen claim must not
  // count as a live primary nor trip the checker.
  EXPECT_TRUE(gcs.algorithm(0).in_primary());
  gcs.apply_crash(0);
  EXPECT_NO_THROW(checker.check(gcs));
  settle(gcs);
  EXPECT_NO_THROW(checker.check(gcs));
  // {1,2,3} re-formed; has_primary never double-counts the dead claim.
  EXPECT_TRUE(all_in_primary(gcs, ProcessSet(4, {1, 2, 3})));
}

TEST(Crash, CannotCrashTwiceOrRecoverTheLiving) {
  Gcs gcs(AlgorithmKind::kYkd, 3);
  gcs.apply_crash(2);
  EXPECT_THROW(gcs.apply_crash(2), PreconditionViolation);
  EXPECT_THROW(gcs.apply_recovery(1), PreconditionViolation);
}

TEST(Crash, RecoveryRejoinsThroughAMerge) {
  Gcs gcs(AlgorithmKind::kYkd, 5);
  gcs.apply_crash(4);
  settle(gcs);

  gcs.apply_recovery(4);
  EXPECT_FALSE(gcs.is_crashed(4));
  // Recovered alone: not primary, but alive with its state intact.
  EXPECT_FALSE(gcs.algorithm(4).in_primary());
  EXPECT_EQ(gcs.view_of(4).members, ProcessSet(5, {4}));

  gcs.apply_merge(gcs.topology().component_of(0),
                  gcs.topology().component_of(4));
  settle(gcs);
  EXPECT_TRUE(all_in_primary(gcs, ProcessSet::full(5)));
}

TEST(Crash, CrashingAPrimaryMajorityMemberBlocksOnePending) {
  // 1-pending's worst case becomes *permanent* under a crash: the member
  // whose testimony is required never returns.
  Gcs gcs(AlgorithmKind::kOnePending, 5);
  gcs.apply_partition(0, ProcessSet(5, {4}));
  while (gcs.step_round()) {
  }
  gcs.apply_merge(0, 1);
  gcs.step_round();
  gcs.step_round();  // attempts for {0..4} in flight
  gcs.apply_crash(4, [](ProcessId) { return false; });
  while (gcs.step_round()) {
  }
  // {0,1,2,3} pends on {0..4} forever: process 4 is dead.
  EXPECT_EQ(test::primary_member_count(gcs), 0u);
  EXPECT_TRUE(gcs.algorithm(0).debug_info().blocked);

  // YKD in the same history just pipelines past it.
  Gcs ykd(AlgorithmKind::kYkd, 5);
  ykd.apply_partition(0, ProcessSet(5, {4}));
  while (ykd.step_round()) {
  }
  ykd.apply_merge(0, 1);
  ykd.step_round();
  ykd.step_round();
  ykd.apply_crash(4, [](ProcessId) { return false; });
  while (ykd.step_round()) {
  }
  EXPECT_TRUE(all_in_primary(ykd, ProcessSet(5, {0, 1, 2, 3})));
}

TEST(Crash, DriverInjectsCrashesWhenConfigured) {
  SimulationConfig config;
  config.algorithm = AlgorithmKind::kYkd;
  config.processes = 12;
  config.changes_per_run = 20;
  config.mean_rounds_between_changes = 2.0;
  config.crash_fraction = 0.5;
  config.seed = 99;

  Simulation sim(config);
  bool saw_a_crash = false;
  for (int run = 0; run < 10; ++run) {
    (void)sim.run_once();
    saw_a_crash |= !sim.gcs().crashed().empty();
  }
  EXPECT_TRUE(saw_a_crash);
}

TEST(Crash, ZeroCrashFractionKeepsLegacySchedulesBitIdentical) {
  // The extension must not perturb the paper-model experiments.
  SimulationConfig config;
  config.algorithm = AlgorithmKind::kDfls;
  config.processes = 16;
  config.changes_per_run = 8;
  config.mean_rounds_between_changes = 2.0;
  config.seed = 4242;

  SimulationConfig with_knob = config;
  with_knob.crash_fraction = 0.0;

  Simulation a(config), b(with_knob);
  for (int run = 0; run < 4; ++run) {
    const RunResult ra = a.run_once();
    const RunResult rb = b.run_once();
    EXPECT_EQ(ra.primary_at_end, rb.primary_at_end);
    EXPECT_EQ(ra.rounds_executed, rb.rounds_executed);
  }
}

TEST(Crash, EveryAlgorithmSurvivesCrashChurn) {
  for (AlgorithmKind kind : all_algorithm_kinds()) {
    SimulationConfig config;
    config.algorithm = kind;
    config.processes = 10;
    config.changes_per_run = 16;
    config.mean_rounds_between_changes = 1.5;
    config.crash_fraction = 0.3;
    config.seed = 1234;
    Simulation sim(config);
    for (int run = 0; run < 5; ++run) {
      EXPECT_NO_THROW((void)sim.run_once()) << to_string(kind);
    }
  }
}

TEST(Crash, FaultSchedulerNeverKillsTheLastProcess) {
  FaultScheduler sched(5, 0.0, 1.0);
  Topology topo(3);
  ProcessSet crashed(3);
  // Crash until only one remains; the scheduler must then only recover.
  for (int i = 0; i < 50; ++i) {
    const ConnectivityChange c = sched.next_change(topo, crashed);
    switch (c.kind) {
      case ConnectivityChange::Kind::kCrash:
        EXPECT_LE(crashed.count(), 1u);
        // Isolate + mark, as the GCS would.
        if (topo.component(topo.component_of(c.process)).count() > 1) {
          ProcessSet lone(3);
          lone.insert(c.process);
          topo.split(topo.component_of(c.process), lone);
        }
        crashed.insert(c.process);
        break;
      case ConnectivityChange::Kind::kRecovery:
        crashed.erase(c.process);
        break;
      default:
        break;  // connectivity fallback when no process fault is feasible
    }
    EXPECT_LT(crashed.count(), 3u);
  }
}

}  // namespace
}  // namespace dynvote
