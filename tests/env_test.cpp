// Shared DV_* environment parsing: well-formed values apply, malformed
// values fall back (with a warning) instead of being silently ignored.
#include <gtest/gtest.h>

#include <cstdlib>

#include "util/env.hpp"

namespace dynvote {
namespace {

class EnvTest : public ::testing::Test {
 protected:
  void TearDown() override { ::unsetenv(kName); }
  static constexpr const char* kName = "DV_ENV_TEST_VALUE";
};

TEST_F(EnvTest, StringUnsetAndEmptyAreNullopt) {
  ::unsetenv(kName);
  EXPECT_FALSE(env_string(kName).has_value());
  ::setenv(kName, "", 1);
  EXPECT_FALSE(env_string(kName).has_value());
  ::setenv(kName, "dir/path", 1);
  EXPECT_EQ(env_string(kName).value(), "dir/path");
}

TEST_F(EnvTest, U64ParsesAndFallsBack) {
  ::setenv(kName, "1234", 1);
  EXPECT_EQ(env_u64(kName, 7), 1234u);
  ::setenv(kName, "12x4", 1);
  EXPECT_EQ(env_u64(kName, 7), 7u);  // trailing garbage
  ::setenv(kName, "-3", 1);
  EXPECT_EQ(env_u64(kName, 7), 7u);  // negative is not unsigned
  ::setenv(kName, "number", 1);
  EXPECT_EQ(env_u64(kName, 7), 7u);
  ::unsetenv(kName);
  EXPECT_EQ(env_u64(kName, 7), 7u);
}

TEST_F(EnvTest, OutOfRangeValuesWarnInsteadOfClamping) {
  // A negative number for an unsigned knob (DV_LEASE_MS=-5) would wrap
  // under plain strtoull; it must warn as out-of-range and fall back.
  ::setenv(kName, "-5", 1);
  ::testing::internal::CaptureStderr();
  EXPECT_EQ(env_u64(kName, 30000), 30000u);
  std::string log = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(log.find("out-of-range"), std::string::npos) << log;
  EXPECT_NE(log.find("-5"), std::string::npos) << log;

  // strtoull skips leading whitespace before the sign, so a padded
  // negative must be caught the same way, not wrap to near-2^64.
  ::setenv(kName, " -5", 1);
  ::testing::internal::CaptureStderr();
  EXPECT_EQ(env_u64(kName, 30000), 30000u);
  log = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(log.find("out-of-range"), std::string::npos) << log;

  // Wider than 64 bits saturates with ERANGE: also out-of-range, never
  // the clamped ULLONG_MAX.
  ::setenv(kName, "99999999999999999999999999", 1);
  ::testing::internal::CaptureStderr();
  EXPECT_EQ(env_u64(kName, 7), 7u);
  log = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(log.find("out-of-range"), std::string::npos) << log;

  // Double overflow to infinity is out-of-range too...
  ::setenv(kName, "1e999", 1);
  ::testing::internal::CaptureStderr();
  EXPECT_EQ(env_double(kName, 1.5), 1.5);
  log = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(log.find("out-of-range"), std::string::npos) << log;

  // ...but gradual underflow is a representable value and passes through
  // silently.
  ::setenv(kName, "1e-320", 1);
  ::testing::internal::CaptureStderr();
  const double tiny = env_double(kName, 1.5);
  log = ::testing::internal::GetCapturedStderr();
  EXPECT_GT(tiny, 0.0);
  EXPECT_LT(tiny, 1e-300);
  EXPECT_EQ(log.find("out-of-range"), std::string::npos) << log;
}

TEST_F(EnvTest, DoubleParsesAndFallsBack) {
  ::setenv(kName, "2.5", 1);
  EXPECT_EQ(env_double(kName, 1.0), 2.5);
  ::setenv(kName, "-0.25", 1);
  EXPECT_EQ(env_double(kName, 1.0), -0.25);
  ::setenv(kName, "2.5qq", 1);
  EXPECT_EQ(env_double(kName, 1.0), 1.0);
  ::unsetenv(kName);
  EXPECT_EQ(env_double(kName, 1.0), 1.0);
}

TEST_F(EnvTest, FlagAcceptsCommonSpellings) {
  for (const char* yes : {"1", "true", "TRUE", "yes", "on"}) {
    ::setenv(kName, yes, 1);
    EXPECT_TRUE(env_flag(kName, false)) << yes;
  }
  for (const char* no : {"0", "false", "False", "no", "OFF"}) {
    ::setenv(kName, no, 1);
    EXPECT_FALSE(env_flag(kName, true)) << no;
  }
  ::setenv(kName, "maybe", 1);
  EXPECT_TRUE(env_flag(kName, true));
  EXPECT_FALSE(env_flag(kName, false));
}

TEST_F(EnvTest, BoolAcceptsWordFormsLikeFlag) {
  for (const char* yes : {"1", "true", "TRUE", "yes", "On"}) {
    ::setenv(kName, yes, 1);
    EXPECT_TRUE(env_bool(kName, false)) << yes;
  }
  for (const char* no : {"0", "false", "NO", "off"}) {
    ::setenv(kName, no, 1);
    EXPECT_FALSE(env_bool(kName, true)) << no;
  }
  ::unsetenv(kName);
  EXPECT_TRUE(env_bool(kName, true));
  EXPECT_FALSE(env_bool(kName, false));
}

TEST_F(EnvTest, BoolNumericNonBinaryWarnsOutOfRange) {
  // DV_TRACE=2 or DV_TRACE=-1 is a parseable number a boolean cannot
  // hold: the env_u64 discipline calls that out-of-range, not malformed.
  for (const char* numeric : {"2", "-1", "42"}) {
    ::setenv(kName, numeric, 1);
    ::testing::internal::CaptureStderr();
    EXPECT_FALSE(env_bool(kName, false)) << numeric;
    const std::string log = ::testing::internal::GetCapturedStderr();
    EXPECT_NE(log.find("out-of-range"), std::string::npos) << log;
    EXPECT_NE(log.find(numeric), std::string::npos) << log;
  }
}

TEST_F(EnvTest, BoolGarbageWarnsMalformedAndFallsBack) {
  ::setenv(kName, "maybe", 1);
  ::testing::internal::CaptureStderr();
  EXPECT_TRUE(env_bool(kName, true));
  std::string log = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(log.find("malformed"), std::string::npos) << log;

  ::setenv(kName, "1x", 1);
  ::testing::internal::CaptureStderr();
  EXPECT_FALSE(env_bool(kName, false));
  log = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(log.find("malformed"), std::string::npos) << log;
}

}  // namespace
}  // namespace dynvote
