// Delivery and flush semantics of the in-flight message store -- the
// mechanism that turns connectivity changes into interrupted protocol
// rounds.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "gcs/network.hpp"
#include "util/assert.hpp"

namespace dynvote {
namespace {

struct Delivery {
  ProcessId recipient;
  ProcessId sender;
  std::string text;

  bool operator==(const Delivery&) const = default;
};

class NetworkTest : public ::testing::Test {
 protected:
  // The network callbacks are non-owning (FunctionRef), so the recording
  // callable must outlive the calls that use it: it lives in the fixture,
  // and recorder() hands out references to it.
  struct Recorder {
    std::vector<Delivery>* log;
    void operator()(ProcessId r, const Message& m, ProcessId s) const {
      std::string text(reinterpret_cast<const char*>(m.app_data.data()),
                       m.app_data.size());
      log->push_back({r, s, text});
    }
  };

  Network::DeliverFn recorder() { return recorder_; }

  std::vector<Delivery> log;
  Recorder recorder_{&log};
};

TEST_F(NetworkTest, DeliverAllReachesWholeScope) {
  Network net;
  net.send(1, ProcessSet(4, {0, 1, 2}), Message::from_text("x"));
  EXPECT_FALSE(net.idle());
  const std::size_t n = net.deliver_all(recorder());
  EXPECT_EQ(n, 3u);
  EXPECT_TRUE(net.idle());
  EXPECT_EQ(log, (std::vector<Delivery>{{0, 1, "x"}, {1, 1, "x"}, {2, 1, "x"}}));
}

TEST_F(NetworkTest, SenderMustBeInScope) {
  Network net;
  EXPECT_THROW(net.send(3, ProcessSet(4, {0, 1}), Message::empty()),
               PreconditionViolation);
}

TEST_F(NetworkTest, DeliveryOrderIsSendOrder) {
  Network net;
  const ProcessSet scope(4, {0, 1});
  net.send(0, scope, Message::from_text("first"));
  net.send(1, scope, Message::from_text("second"));
  net.deliver_all(recorder());
  ASSERT_EQ(log.size(), 4u);
  EXPECT_EQ(log[0].text, "first");
  EXPECT_EQ(log[2].text, "second");
}

TEST_F(NetworkTest, PartitionFlushDeliversToSenderSideAlways) {
  Network net;
  const ProcessSet comp(5, {0, 1, 2, 3, 4});
  const ProcessSet side_a(5, {0, 1});
  const ProcessSet side_b(5, {2, 3, 4});
  net.send(0, comp, Message::from_text("fromA"));
  net.send(3, comp, Message::from_text("fromB"));

  net.flush_for_partition(comp, side_a, side_b, recorder(),
                          [](ProcessId) { return false; });
  EXPECT_TRUE(net.idle());
  EXPECT_EQ(log, (std::vector<Delivery>{{0, 0, "fromA"},
                                        {1, 0, "fromA"},
                                        {2, 3, "fromB"},
                                        {3, 3, "fromB"},
                                        {4, 3, "fromB"}}));
}

TEST_F(NetworkTest, PartitionFlushCrossDeliveryReachesFarSideAsAWhole) {
  Network net;
  const ProcessSet comp(5, {0, 1, 2, 3, 4});
  net.send(2, comp, Message::from_text("crosses"));
  net.flush_for_partition(comp, ProcessSet(5, {0, 1}), ProcessSet(5, {2, 3, 4}),
                          recorder(), [](ProcessId) { return true; });
  // Sender side {2,3,4} first, then the far side {0,1} -- everyone got it.
  std::vector<ProcessId> recipients;
  for (const auto& d : log) recipients.push_back(d.recipient);
  EXPECT_EQ(recipients, (std::vector<ProcessId>{2, 3, 4, 0, 1}));
}

TEST_F(NetworkTest, PartitionFlushLeavesOtherComponentsQueued) {
  Network net;
  const ProcessSet comp_x(6, {0, 1, 2});
  const ProcessSet comp_y(6, {3, 4, 5});
  net.send(0, comp_x, Message::from_text("x"));
  net.send(3, comp_y, Message::from_text("y"));

  net.flush_for_partition(comp_x, ProcessSet(6, {0}), ProcessSet(6, {1, 2}),
                          recorder(), [](ProcessId) { return false; });
  EXPECT_EQ(net.in_flight_count(), 1u);  // comp_y's message survives
  log.clear();
  net.deliver_all(recorder());
  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(log[0].text, "y");
}

TEST_F(NetworkTest, MergeFlushDeliversToFullOldScope) {
  Network net;
  const ProcessSet comp(4, {0, 1});
  net.send(0, comp, Message::from_text("m"));
  net.flush_for_merge(comp, recorder());
  EXPECT_TRUE(net.idle());
  EXPECT_EQ(log, (std::vector<Delivery>{{0, 0, "m"}, {1, 0, "m"}}));
}

TEST_F(NetworkTest, MergeFlushIgnoresOtherScopes) {
  Network net;
  net.send(0, ProcessSet(4, {0, 1}), Message::from_text("keep"));
  net.flush_for_merge(ProcessSet(4, {2, 3}), recorder());
  EXPECT_TRUE(log.empty());
  EXPECT_EQ(net.in_flight_count(), 1u);
}

TEST_F(NetworkTest, CrossDecisionIsPerMessage) {
  Network net;
  const ProcessSet comp(4, {0, 1, 2, 3});
  net.send(0, comp, Message::from_text("a"));
  net.send(1, comp, Message::from_text("b"));
  // Only sender 1's message crosses.
  net.flush_for_partition(comp, ProcessSet(4, {0, 1}), ProcessSet(4, {2, 3}),
                          recorder(), [](ProcessId s) { return s == 1; });
  int a_deliveries = 0, b_deliveries = 0;
  for (const auto& d : log) {
    if (d.text == "a") ++a_deliveries;
    if (d.text == "b") ++b_deliveries;
  }
  EXPECT_EQ(a_deliveries, 2);  // near side only
  EXPECT_EQ(b_deliveries, 4);  // both sides
}

}  // namespace
}  // namespace dynvote
