// JSON emission and the sweep manifest: writer correctness, validator
// strictness, and the end-to-end artifact a named sweep records.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "runner/artifact.hpp"
#include "util/json.hpp"
#include "runner/sweep.hpp"

namespace dynvote {
namespace {

TEST(Json, WriterBuildsValidNestedDocuments) {
  JsonWriter json;
  json.begin_object();
  json.key("name").value("sweep");
  json.key("count").value(std::uint64_t{42});
  json.key("ratio").value(0.25);
  json.key("flag").value(true);
  json.key("missing").null();
  json.key("cases").begin_array();
  json.begin_object().key("x").value(std::int64_t{-7}).end_object();
  json.value("plain");
  json.end_array();
  json.end_object();

  const std::string& doc = json.str();
  EXPECT_TRUE(json_is_valid(doc)) << doc;
  EXPECT_NE(doc.find("\"count\":42"), std::string::npos);
  EXPECT_NE(doc.find("\"ratio\":0.25"), std::string::npos);
  EXPECT_NE(doc.find("\"missing\":null"), std::string::npos);
}

TEST(Json, EscapesStringsAndRejectsNonFinite) {
  JsonWriter json;
  json.begin_object();
  json.key("text").value("quote\" backslash\\ newline\n tab\t");
  json.key("inf").value(1.0 / 0.0);
  json.end_object();
  const std::string& doc = json.str();
  EXPECT_TRUE(json_is_valid(doc)) << doc;
  EXPECT_NE(doc.find("\\\""), std::string::npos);
  EXPECT_NE(doc.find("\\\\"), std::string::npos);
  EXPECT_NE(doc.find("\\n"), std::string::npos);
  EXPECT_NE(doc.find("\"inf\":null"), std::string::npos);
}

TEST(Json, RoundTripsDoublesExactly) {
  JsonWriter json;
  json.begin_array();
  json.value(0.1).value(1e300).value(-2.5e-8);
  json.end_array();
  EXPECT_TRUE(json_is_valid(json.str()));
  EXPECT_NE(json.str().find("0.1"), std::string::npos);
}

TEST(Json, ValidatorAcceptsRfc8259Documents) {
  EXPECT_TRUE(json_is_valid("{}"));
  EXPECT_TRUE(json_is_valid("[]"));
  EXPECT_TRUE(json_is_valid("[1, 2.5, -3e2, \"x\", true, false, null]"));
  EXPECT_TRUE(json_is_valid("{\"a\": {\"b\": [{}]}}"));
  EXPECT_TRUE(json_is_valid("  {\"k\"\n:\t1}  "));
}

TEST(Json, ValidatorRejectsMalformedDocuments) {
  EXPECT_FALSE(json_is_valid(""));
  EXPECT_FALSE(json_is_valid("{"));
  EXPECT_FALSE(json_is_valid("{]"));
  EXPECT_FALSE(json_is_valid("{\"a\":}"));
  EXPECT_FALSE(json_is_valid("{\"a\":1,}"));
  EXPECT_FALSE(json_is_valid("[1 2]"));
  EXPECT_FALSE(json_is_valid("01"));
  EXPECT_FALSE(json_is_valid("1."));
  EXPECT_FALSE(json_is_valid("\"unterminated"));
  EXPECT_FALSE(json_is_valid("nulll"));
  EXPECT_FALSE(json_is_valid("{\"a\":1} extra"));
}

TEST(Json, DomParserReadsScalarsContainersAndEscapes) {
  const auto doc = json_parse(
      "{\"s\":\"a\\n\\u0041\\u00e9\",\"n\":-2.5e2,\"b\":true,\"z\":null,"
      "\"arr\":[1,{\"k\":2}]}");
  ASSERT_TRUE(doc.has_value());
  ASSERT_TRUE(doc->is_object());
  EXPECT_EQ(doc->find("s")->as_string(), "a\nA\xc3\xa9");
  EXPECT_EQ(doc->find("n")->as_number(), -250.0);
  EXPECT_TRUE(doc->find("b")->as_bool());
  EXPECT_TRUE(doc->find("z")->is_null());
  const JsonValue& arr = *doc->find("arr");
  ASSERT_TRUE(arr.is_array());
  ASSERT_EQ(arr.items().size(), 2u);
  EXPECT_EQ(arr.items()[0].as_number(), 1.0);
  EXPECT_EQ(arr.items()[1].number_or("k", -1.0), 2.0);
  EXPECT_EQ(doc->find("missing"), nullptr);
  EXPECT_EQ(doc->string_or("s", "?"), "a\nA\xc3\xa9");
  EXPECT_EQ(doc->string_or("missing", "?"), "?");
  EXPECT_EQ(doc->number_or("s", -1.0), -1.0);  // wrong kind -> fallback
}

TEST(Json, DomParserCombinesSurrogatePairs) {
  const auto doc = json_parse("\"\\ud83d\\ude00\"");  // U+1F600
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->as_string(), "\xf0\x9f\x98\x80");
}

TEST(Json, DomParserRejectsWhatTheValidatorRejects) {
  for (const char* bad :
       {"", "{", "{]", "{\"a\":}", "{\"a\":1,}", "[1 2]", "01", "1.",
        "\"unterminated", "nulll", "{\"a\":1} extra"}) {
    EXPECT_FALSE(json_parse(bad).has_value()) << bad;
  }
}

TEST(Json, DomParserRoundTripsWriterOutput) {
  JsonWriter json;
  json.begin_object();
  json.key("quote\"and\\slash").value("tab\there");
  json.key("pi").value(3.14159);
  json.end_object();
  const auto doc = json_parse(json.str());
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->find("quote\"and\\slash")->as_string(), "tab\there");
  EXPECT_EQ(doc->find("pi")->as_number(), 3.14159);
}

SweepSpec tiny_sweep(const std::string& name) {
  SweepSpec sweep;
  sweep.name = name;
  sweep.jobs = 2;
  static NullProgress quiet;
  sweep.progress = &quiet;
  sweep.cases = availability_grid(
      {AlgorithmKind::kYkd, AlgorithmKind::kSimpleMajority}, {2.0}, 4,
      RunMode::kFreshStart, 12, 777, 16);
  return sweep;
}

TEST(Artifact, NamedSweepWritesParseableVersionedManifest) {
  const std::string dir = ::testing::TempDir() + "dynvote_artifact_test";
  ::setenv("DV_ARTIFACT_DIR", dir.c_str(), 1);

  const SweepResult swept = run_sweep(tiny_sweep("artifact_test"));
  ::unsetenv("DV_ARTIFACT_DIR");

  ASSERT_EQ(swept.artifact_path, dir + "/BENCH_artifact_test.json");
  std::ifstream in(swept.artifact_path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string doc = buffer.str();

  EXPECT_TRUE(json_is_valid(doc)) << doc;
  EXPECT_NE(doc.find(kSweepManifestSchema), std::string::npos);
  EXPECT_NE(doc.find("\"sweep\":\"artifact_test\""), std::string::npos);
  EXPECT_NE(doc.find("\"git_describe\""), std::string::npos);
  EXPECT_NE(doc.find("\"availability_percent\""), std::string::npos);
  EXPECT_NE(doc.find("\"stable_histogram\""), std::string::npos);
  EXPECT_NE(doc.find("\"invariant_checks\""), std::string::npos);
  EXPECT_NE(doc.find("\"runs_per_sec\""), std::string::npos);
  EXPECT_NE(doc.find("\"total_runs\":24"), std::string::npos);

  // Structured read-back through the DOM parser: the v3 perf telemetry
  // must be present and sane on every case.
  const auto parsed = json_parse(doc);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->string_or("schema", ""), kSweepManifestSchema);
  EXPECT_FALSE(parsed->string_or("results_fingerprint", "").empty());
  const JsonValue* cases = parsed->find("cases");
  ASSERT_NE(cases, nullptr);
  ASSERT_TRUE(cases->is_array());
  ASSERT_EQ(cases->items().size(), 2u);
  for (const JsonValue& c : cases->items()) {
    EXPECT_GT(c.number_or("rounds_per_sec", -1.0), 0.0);
    // simple-majority legitimately delivers nothing, so >= not >.
    EXPECT_GE(c.number_or("deliveries_per_sec", -1.0), 0.0);
    EXPECT_GE(c.number_or("total_deliveries", -1.0), 0.0);
  }
}

TEST(Artifact, ManifestJsonCoversEveryCase) {
  ::setenv("DV_ARTIFACT_DIR", "none", 1);
  const SweepSpec spec = tiny_sweep("unwritten");
  const SweepResult swept = run_sweep(spec);
  ::unsetenv("DV_ARTIFACT_DIR");
  EXPECT_TRUE(swept.artifact_path.empty());

  const std::string doc = manifest_json(spec, swept);
  EXPECT_TRUE(json_is_valid(doc)) << doc;
  EXPECT_NE(doc.find("\"algorithm\":\"ykd\""), std::string::npos);
  EXPECT_NE(doc.find("\"algorithm\":\"simple-majority\""), std::string::npos);
  EXPECT_NE(doc.find("\"mode\":\"fresh-start\""), std::string::npos);
}

TEST(Artifact, DisabledDirectorySkipsWriting) {
  for (const char* off : {"none", "off", "0"}) {
    ::setenv("DV_ARTIFACT_DIR", off, 1);
    const SweepResult swept = run_sweep(tiny_sweep("disabled"));
    EXPECT_TRUE(swept.artifact_path.empty()) << off;
  }
  ::unsetenv("DV_ARTIFACT_DIR");
}

}  // namespace
}  // namespace dynvote
