// The experiment runner: seeding discipline (schedules shared across
// algorithms, never influenced by them), mode semantics, aggregation.
#include <gtest/gtest.h>

#include <cstdlib>

#include "sim/experiment.hpp"

namespace dynvote {
namespace {

CaseSpec small_case(AlgorithmKind kind) {
  CaseSpec spec;
  spec.algorithm = kind;
  spec.processes = 16;
  spec.changes = 4;
  spec.mean_rounds = 3.0;
  spec.runs = 40;
  spec.base_seed = 777;
  return spec;
}

TEST(Experiment, RunCaseAggregatesAllRuns) {
  const CaseResult r = run_case(small_case(AlgorithmKind::kYkd));
  EXPECT_EQ(r.runs, 40u);
  EXPECT_EQ(r.success_per_run.size(), 40u);
  EXPECT_EQ(r.stable.samples, 40u);
  EXPECT_EQ(r.in_progress.samples, 40u * 4u);
  EXPECT_EQ(r.total_changes, 160u);
  EXPECT_GE(r.availability_percent(), 0.0);
  EXPECT_LE(r.availability_percent(), 100.0);
}

TEST(Experiment, DeterministicAcrossInvocations) {
  const CaseResult a = run_case(small_case(AlgorithmKind::kDfls));
  const CaseResult b = run_case(small_case(AlgorithmKind::kDfls));
  EXPECT_EQ(a.successes, b.successes);
  EXPECT_EQ(a.success_per_run, b.success_per_run);
  EXPECT_EQ(a.total_rounds, b.total_rounds);
}

TEST(Experiment, UnoptimizedYkdAvailabilityIsIdenticalToYkd) {
  // The thesis's §4.1 sanity property, here as a paired per-run assertion:
  // the optimization never changes a decision, so the same schedule gives
  // the same outcome, run by run.
  const CaseResult ykd = run_case(small_case(AlgorithmKind::kYkd));
  const CaseResult unopt = run_case(small_case(AlgorithmKind::kYkdUnoptimized));
  EXPECT_EQ(ykd.success_per_run, unopt.success_per_run);
}

TEST(Experiment, CascadingSharesOneWorld) {
  CaseSpec spec = small_case(AlgorithmKind::kYkd);
  spec.mode = RunMode::kCascading;
  const CaseResult r = run_case(spec);
  EXPECT_EQ(r.runs, 40u);
  EXPECT_EQ(r.total_changes, 160u);
}

TEST(Experiment, StandardSweeps) {
  EXPECT_EQ(standard_rate_sweep().size(), 13u);
  EXPECT_EQ(standard_rate_sweep().front(), 0.0);
  EXPECT_EQ(standard_rate_sweep().back(), 12.0);
  EXPECT_EQ(standard_change_counts(), (std::vector<std::size_t>{2, 6, 12}));
}

TEST(Experiment, EnvOverridesParse) {
  ::setenv("DV_RUNS", "123", 1);
  EXPECT_EQ(runs_from_env(7), 123u);
  ::setenv("DV_RUNS", "not-a-number", 1);
  EXPECT_EQ(runs_from_env(7), 7u);
  ::unsetenv("DV_RUNS");
  EXPECT_EQ(runs_from_env(7), 7u);

  ::setenv("DV_SEED", "42", 1);
  EXPECT_EQ(seed_from_env(1), 42u);
  ::unsetenv("DV_SEED");
}

TEST(Experiment, ModeNames) {
  EXPECT_STREQ(to_string(RunMode::kFreshStart), "fresh-start");
  EXPECT_STREQ(to_string(RunMode::kCascading), "cascading");
}

}  // namespace
}  // namespace dynvote
