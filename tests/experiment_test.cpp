// The experiment runner: seeding discipline (schedules shared across
// algorithms, never influenced by them), mode semantics, aggregation.
#include <gtest/gtest.h>

#include <bit>
#include <cstdlib>

#include "sim/driver.hpp"
#include "sim/experiment.hpp"
#include "util/rng.hpp"

namespace dynvote {
namespace {

CaseSpec small_case(AlgorithmKind kind) {
  CaseSpec spec;
  spec.algorithm = kind;
  spec.processes = 16;
  spec.changes = 4;
  spec.mean_rounds = 3.0;
  spec.runs = 40;
  spec.base_seed = 777;
  return spec;
}

TEST(Experiment, RunCaseAggregatesAllRuns) {
  const CaseResult r = run_case(small_case(AlgorithmKind::kYkd));
  EXPECT_EQ(r.runs, 40u);
  EXPECT_EQ(r.success_per_run.size(), 40u);
  EXPECT_EQ(r.stable.samples, 40u);
  EXPECT_EQ(r.in_progress.samples, 40u * 4u);
  EXPECT_EQ(r.total_changes, 160u);
  EXPECT_GE(r.availability_percent(), 0.0);
  EXPECT_LE(r.availability_percent(), 100.0);
}

TEST(Experiment, DeterministicAcrossInvocations) {
  const CaseResult a = run_case(small_case(AlgorithmKind::kDfls));
  const CaseResult b = run_case(small_case(AlgorithmKind::kDfls));
  EXPECT_EQ(a.successes, b.successes);
  EXPECT_EQ(a.success_per_run, b.success_per_run);
  EXPECT_EQ(a.total_rounds, b.total_rounds);
}

TEST(Experiment, UnoptimizedYkdAvailabilityIsIdenticalToYkd) {
  // The thesis's §4.1 sanity property, here as a paired per-run assertion:
  // the optimization never changes a decision, so the same schedule gives
  // the same outcome, run by run.
  const CaseResult ykd = run_case(small_case(AlgorithmKind::kYkd));
  const CaseResult unopt = run_case(small_case(AlgorithmKind::kYkdUnoptimized));
  EXPECT_EQ(ykd.success_per_run, unopt.success_per_run);
}

TEST(Experiment, CascadingSharesOneWorld) {
  CaseSpec spec = small_case(AlgorithmKind::kYkd);
  spec.mode = RunMode::kCascading;
  const CaseResult r = run_case(spec);
  EXPECT_EQ(r.runs, 40u);
  EXPECT_EQ(r.total_changes, 160u);
}

TEST(Experiment, StandardSweeps) {
  EXPECT_EQ(standard_rate_sweep().size(), 13u);
  EXPECT_EQ(standard_rate_sweep().front(), 0.0);
  EXPECT_EQ(standard_rate_sweep().back(), 12.0);
  EXPECT_EQ(standard_change_counts(), (std::vector<std::size_t>{2, 6, 12}));
}

TEST(Experiment, EnvOverridesParse) {
  ::setenv("DV_RUNS", "123", 1);
  EXPECT_EQ(runs_from_env(7), 123u);
  ::setenv("DV_RUNS", "not-a-number", 1);
  EXPECT_EQ(runs_from_env(7), 7u);
  ::unsetenv("DV_RUNS");
  EXPECT_EQ(runs_from_env(7), 7u);

  ::setenv("DV_SEED", "42", 1);
  EXPECT_EQ(seed_from_env(1), 42u);
  ::unsetenv("DV_SEED");
}

TEST(Experiment, ModeNames) {
  EXPECT_STREQ(to_string(RunMode::kFreshStart), "fresh-start");
  EXPECT_STREQ(to_string(RunMode::kCascading), "cascading");
}

TEST(Experiment, ShardsMergeBitIdenticalToSerial) {
  const CaseSpec spec = small_case(AlgorithmKind::kYkd);
  const CaseResult serial = run_case(spec);

  CaseResult merged = run_case_shard(spec, 0, 17);
  merged.merge(run_case_shard(spec, 17, 23));

  EXPECT_EQ(merged.runs, serial.runs);
  EXPECT_EQ(merged.successes, serial.successes);
  EXPECT_EQ(merged.success_per_run, serial.success_per_run);
  EXPECT_EQ(merged.stable.buckets, serial.stable.buckets);
  EXPECT_EQ(merged.in_progress.buckets, serial.in_progress.buckets);
  EXPECT_EQ(merged.total_rounds, serial.total_rounds);
  EXPECT_EQ(merged.total_rounds_with_primary, serial.total_rounds_with_primary);
  EXPECT_EQ(merged.invariant_checks, serial.invariant_checks);
}

TEST(Experiment, ShardingRequiresFreshStart) {
  CaseSpec spec = small_case(AlgorithmKind::kYkd);
  spec.mode = RunMode::kCascading;
  EXPECT_THROW(run_case_shard(spec, 0, 10), PreconditionViolation);
}

// The satellite fix for wire measurement: both modes aggregate
// `max_message_bytes` (and the wire totals) per run, so run_case must
// agree with a hand-driven simulation loop in each mode.
TEST(Experiment, WireStatsAggregatePerRunInBothModes) {
  for (RunMode mode : {RunMode::kFreshStart, RunMode::kCascading}) {
    CaseSpec spec = small_case(AlgorithmKind::kYkd);
    spec.mode = mode;
    spec.runs = 12;
    spec.measure_wire_sizes = true;
    const CaseResult result = run_case(spec);
    SCOPED_TRACE(to_string(mode));
    ASSERT_GT(result.wire.messages_sent, 0u);
    ASSERT_GT(result.wire.max_message_bytes, 0u);
    EXPECT_GE(result.wire.total_message_bytes,
              static_cast<std::uint64_t>(result.wire.max_message_bytes));

    // Mirror the documented seeding discipline and drive the simulations
    // by hand; the per-run max/total aggregation must match exactly.
    SimulationConfig config;
    config.algorithm = spec.algorithm;
    config.processes = spec.processes;
    config.changes_per_run = spec.changes;
    config.mean_rounds_between_changes = spec.mean_rounds;
    config.measure_wire_sizes = true;
    WireStats expected;
    if (mode == RunMode::kFreshStart) {
      for (std::uint64_t i = 0; i < spec.runs; ++i) {
        config.seed = mix_seed(spec.base_seed, spec.processes, spec.changes,
                               std::bit_cast<std::uint64_t>(spec.mean_rounds),
                               i);
        Simulation sim(config);
        (void)sim.run_once();
        expected.merge(sim.gcs().wire_stats());
      }
    } else {
      config.seed = mix_seed(spec.base_seed, spec.processes, spec.changes,
                             std::bit_cast<std::uint64_t>(spec.mean_rounds),
                             0xCA5CADEull);
      Simulation sim(config);
      for (std::uint64_t i = 0; i < spec.runs; ++i) (void)sim.run_once();
      expected = sim.gcs().wire_stats();
    }
    EXPECT_EQ(result.wire.max_message_bytes, expected.max_message_bytes);
    EXPECT_EQ(result.wire.messages_sent, expected.messages_sent);
    EXPECT_EQ(result.wire.total_message_bytes, expected.total_message_bytes);
  }
}

}  // namespace
}  // namespace dynvote
