// Property sweeps: randomized histories checked against the safety and
// sanity invariants, parameterized over every algorithm and many seeds.
// This is the scaled-down always-on version of the thesis's trial-by-fire
// (the full-scale version lives in soak_test).
#include <gtest/gtest.h>

#include <tuple>

#include "sim/driver.hpp"
#include "sim/experiment.hpp"

namespace dynvote {
namespace {

using PropertyParam = std::tuple<AlgorithmKind, std::uint64_t /*seed*/>;

class AlgorithmProperties : public ::testing::TestWithParam<PropertyParam> {};

TEST_P(AlgorithmProperties, RandomHistoriesKeepAllInvariants) {
  const auto [kind, seed] = GetParam();
  SimulationConfig config;
  config.algorithm = kind;
  config.processes = 12;
  config.changes_per_run = 10;
  config.mean_rounds_between_changes = 1.5;
  config.seed = seed;
  config.check_invariants = true;  // agreement, one primary, monotonicity

  Simulation sim(config);
  for (int run = 0; run < 8; ++run) {
    const RunResult r = sim.run_once();
    EXPECT_EQ(r.changes_applied, 10u);
    // Quiescence reached within the budget (run_once asserts internally);
    // the network must be drained.
    EXPECT_TRUE(sim.gcs().network_idle());
  }
  EXPECT_GT(sim.invariant_checks(), 0u);
}

TEST_P(AlgorithmProperties, FullReunionAfterTurbulence) {
  // After any history, merging everyone back into one component must
  // always recover: every algorithm eventually re-forms a primary in the
  // full view.  (For YKD this is the thesis's recovery property; for the
  // others it is the weakest liveness one can demand.)
  const auto [kind, seed] = GetParam();
  SimulationConfig config;
  config.algorithm = kind;
  config.processes = 10;
  config.changes_per_run = 12;
  config.mean_rounds_between_changes = 1.0;
  config.seed = seed;

  Simulation sim(config);
  (void)sim.run_once();

  Gcs& gcs = sim.gcs();
  while (gcs.topology().component_count() > 1) {
    gcs.apply_merge(0, 1);
  }
  for (int i = 0; i < 50 && gcs.step_round(); ++i) {
  }
  for (ProcessId p = 0; p < gcs.process_count(); ++p) {
    EXPECT_TRUE(gcs.algorithm(p).in_primary())
        << to_string(kind) << " process " << p << " seed " << seed;
  }
}

TEST_P(AlgorithmProperties, StableStateAfterSuccessHoldsNoAmbiguity) {
  // "At the conclusion of a successful run, none of the algorithms retains
  // any ambiguous sessions at all" (thesis §4.2) -- for the observer, on
  // runs that end with the observer in the primary.
  const auto [kind, seed] = GetParam();
  SimulationConfig config;
  config.algorithm = kind;
  config.processes = 12;
  config.changes_per_run = 6;
  config.mean_rounds_between_changes = 2.0;
  config.seed = seed;

  Simulation sim(config);
  for (int run = 0; run < 6; ++run) {
    const RunResult r = sim.run_once();
    if (sim.gcs().algorithm(0).in_primary()) {
      EXPECT_EQ(r.observer_ambiguous_at_end, 0u) << to_string(kind);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithmsManySeeds, AlgorithmProperties,
    ::testing::Combine(::testing::ValuesIn(all_algorithm_kinds()),
                       ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u)),
    [](const ::testing::TestParamInfo<PropertyParam>& p) {
      std::string name(to_string(std::get<0>(p.param)));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name + "_seed" + std::to_string(std::get<1>(p.param));
    });

// YKD-specific cross-algorithm property at larger scale: the unoptimized
// variant must match run by run over a genuine sweep.
class YkdEquivalence : public ::testing::TestWithParam<double /*rate*/> {};

TEST_P(YkdEquivalence, OptimizationNeverChangesAnOutcome) {
  CaseSpec spec;
  spec.processes = 24;
  spec.changes = 8;
  spec.mean_rounds = GetParam();
  spec.runs = 30;
  spec.base_seed = 0xF00D;

  spec.algorithm = AlgorithmKind::kYkd;
  const CaseResult ykd = run_case(spec);
  spec.algorithm = AlgorithmKind::kYkdUnoptimized;
  const CaseResult unopt = run_case(spec);

  EXPECT_EQ(ykd.success_per_run, unopt.success_per_run);
  // The unoptimized variant may retain more, never less.
  EXPECT_GE(unopt.stable.max_observed, ykd.stable.max_observed);
}

INSTANTIATE_TEST_SUITE_P(Rates, YkdEquivalence,
                         ::testing::Values(0.0, 1.0, 3.0, 8.0));

}  // namespace
}  // namespace dynvote
