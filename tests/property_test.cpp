// Property sweeps: randomized histories checked against the safety and
// sanity invariants, parameterized over every algorithm and many seeds.
// This is the scaled-down always-on version of the thesis's trial-by-fire
// (the full-scale version lives in soak_test).
#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "core/quorum.hpp"
#include "sim/driver.hpp"
#include "sim/experiment.hpp"
#include "sim/fault_schedule.hpp"
#include "sim/trace_model.hpp"

namespace dynvote {
namespace {

using PropertyParam = std::tuple<AlgorithmKind, std::uint64_t /*seed*/>;

class AlgorithmProperties : public ::testing::TestWithParam<PropertyParam> {};

TEST_P(AlgorithmProperties, RandomHistoriesKeepAllInvariants) {
  const auto [kind, seed] = GetParam();
  SimulationConfig config;
  config.algorithm = kind;
  config.processes = 12;
  config.changes_per_run = 10;
  config.mean_rounds_between_changes = 1.5;
  config.seed = seed;
  config.check_invariants = true;  // agreement, one primary, monotonicity

  Simulation sim(config);
  for (int run = 0; run < 8; ++run) {
    const RunResult r = sim.run_once();
    EXPECT_EQ(r.changes_applied, 10u);
    // Quiescence reached within the budget (run_once asserts internally);
    // the network must be drained.
    EXPECT_TRUE(sim.gcs().network_idle());
  }
  EXPECT_GT(sim.invariant_checks(), 0u);
}

TEST_P(AlgorithmProperties, FullReunionAfterTurbulence) {
  // After any history, merging everyone back into one component must
  // always recover: every algorithm eventually re-forms a primary in the
  // full view.  (For YKD this is the thesis's recovery property; for the
  // others it is the weakest liveness one can demand.)
  const auto [kind, seed] = GetParam();
  SimulationConfig config;
  config.algorithm = kind;
  config.processes = 10;
  config.changes_per_run = 12;
  config.mean_rounds_between_changes = 1.0;
  config.seed = seed;

  Simulation sim(config);
  (void)sim.run_once();

  Gcs& gcs = sim.gcs();
  while (gcs.topology().component_count() > 1) {
    gcs.apply_merge(0, 1);
  }
  for (int i = 0; i < 50 && gcs.step_round(); ++i) {
  }
  for (ProcessId p = 0; p < gcs.process_count(); ++p) {
    EXPECT_TRUE(gcs.algorithm(p).in_primary())
        << to_string(kind) << " process " << p << " seed " << seed;
  }
}

TEST_P(AlgorithmProperties, StableStateAfterSuccessHoldsNoAmbiguity) {
  // "At the conclusion of a successful run, none of the algorithms retains
  // any ambiguous sessions at all" (thesis §4.2) -- for the observer, on
  // runs that end with the observer in the primary.
  const auto [kind, seed] = GetParam();
  SimulationConfig config;
  config.algorithm = kind;
  config.processes = 12;
  config.changes_per_run = 6;
  config.mean_rounds_between_changes = 2.0;
  config.seed = seed;

  Simulation sim(config);
  for (int run = 0; run < 6; ++run) {
    const RunResult r = sim.run_once();
    if (sim.gcs().algorithm(0).in_primary()) {
      EXPECT_EQ(r.observer_ambiguous_at_end, 0u) << to_string(kind);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithmsManySeeds, AlgorithmProperties,
    ::testing::Combine(::testing::ValuesIn(all_algorithm_kinds()),
                       ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u)),
    [](const ::testing::TestParamInfo<PropertyParam>& p) {
      std::string name(to_string(std::get<0>(p.param)));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name + "_seed" + std::to_string(std::get<1>(p.param));
    });

// ---------------------------------------------------------------------
// Cross-model harness: every algorithm under every fault model, many
// seeds, with the full invariant checker live.  The models produce very
// different histories (partition storms, clean departures, crash/repair
// churn, recorded schedules) but the safety story must be identical.

/// Synthesize a feasible random trace by recording a FaultScheduler
/// trajectory against a shadow topology -- the same generator the
/// geometric model uses, re-expressed as a dynvote.trace.v1 document.
std::string random_trace(std::uint64_t seed, std::size_t processes,
                         std::size_t events) {
  FaultScheduler sched(seed, 2.0);
  Topology topo(processes);
  std::vector<TraceEvent> trace;
  trace.reserve(events);
  std::uint64_t at = 0;
  for (std::size_t i = 0; i < events; ++i) {
    at += sched.next_gap() + 1;  // "at" must be strictly increasing
    const ConnectivityChange c = sched.next_change(topo);
    TraceEvent e;
    e.at = at;
    if (c.kind == ConnectivityChange::Kind::kPartition) {
      e.kind = TraceEvent::Kind::kPartition;
      e.moved = c.moved;
      topo.split(c.component_a, c.moved);
    } else {
      // Traces address processes, never component indices.
      e.kind = TraceEvent::Kind::kMerge;
      e.merge_a = topo.component(c.component_a).lowest();
      e.merge_b = topo.component(c.component_b).lowest();
      topo.merge(c.component_a, c.component_b);
    }
    trace.push_back(std::move(e));
  }
  return trace_to_json(trace, processes);
}

std::vector<FaultModelKind> all_fault_model_kinds() {
  return {FaultModelKind::kGeometric, FaultModelKind::kSleepy,
          FaultModelKind::kRepairable, FaultModelKind::kTrace};
}

FaultModelParams params_for(FaultModelKind kind, std::uint64_t seed,
                            std::size_t processes, std::size_t events) {
  FaultModelParams params;
  params.kind = kind;
  if (kind == FaultModelKind::kTrace) {
    params.trace_json = random_trace(seed, processes, events);
  }
  return params;
}

using CrossModelParam = std::tuple<AlgorithmKind, FaultModelKind>;

class CrossModelProperties : public ::testing::TestWithParam<CrossModelParam> {
};

TEST_P(CrossModelProperties, SeededDrawsKeepInvariantsAndQuorumDiscipline) {
  const auto [kind, model_kind] = GetParam();
  const std::size_t kProcesses = 8;
  std::uint64_t invariant_checks = 0;
  for (std::uint64_t draw = 1; draw <= 32; ++draw) {
    SimulationConfig config;
    config.algorithm = kind;
    config.processes = kProcesses;
    config.changes_per_run = 6;
    config.mean_rounds_between_changes = 2.0;
    config.seed = draw * 977;
    config.check_invariants = true;
    config.fault_model = params_for(model_kind, draw, kProcesses, 6);

    Simulation sim(config);
    const RunResult r = sim.run_once();
    EXPECT_TRUE(sim.gcs().network_idle());
    EXPECT_LE(r.rounds_with_primary, r.rounds_executed);
    invariant_checks += sim.invariant_checks();

    // The initial-view quorum oracle: a simple-majority primary can only
    // ever be a component forming a subquorum of the original universe
    // (strict majority, or the exact-half lexical tie-break), whatever the
    // fault model did to get there.
    if (kind == AlgorithmKind::kSimpleMajority) {
      const Gcs& gcs = sim.gcs();
      const ProcessSet initial_view = ProcessSet::full(kProcesses);
      for (ProcessId p = 0; p < gcs.process_count(); ++p) {
        if (gcs.crashed().contains(p) || !gcs.algorithm(p).in_primary()) {
          continue;
        }
        const ProcessSet& component =
            gcs.topology().component(gcs.topology().component_of(p));
        EXPECT_TRUE(
            is_subquorum(component.minus(gcs.crashed()), initial_view))
            << to_string(model_kind) << " draw " << draw << " process " << p;
      }
    }
  }
  EXPECT_GT(invariant_checks, 0u);
}

TEST_P(CrossModelProperties, CaseAvailabilityIsWellFormed) {
  const auto [kind, model_kind] = GetParam();
  CaseSpec spec;
  spec.algorithm = kind;
  spec.processes = 12;
  spec.changes = 6;
  spec.mean_rounds = 2.0;
  spec.runs = 32;
  spec.base_seed = 0xBEEF;
  spec.check_invariants = true;
  spec.fault_model = params_for(model_kind, 0xBEEF, 12, 6);

  const CaseResult r = run_case(spec);
  EXPECT_EQ(r.runs, 32u);
  EXPECT_LE(r.successes, r.runs);
  EXPECT_GE(r.availability_percent(), 0.0);
  EXPECT_LE(r.availability_percent(), 100.0);
  EXPECT_GT(r.invariant_checks, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithmsAllModels, CrossModelProperties,
    ::testing::Combine(::testing::ValuesIn(all_algorithm_kinds()),
                       ::testing::ValuesIn(all_fault_model_kinds())),
    [](const ::testing::TestParamInfo<CrossModelParam>& p) {
      std::string name(to_string(std::get<0>(p.param)));
      name += '_';
      name += to_string(std::get<1>(p.param));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// YKD-specific cross-algorithm property at larger scale: the unoptimized
// variant must match run by run over a genuine sweep.
class YkdEquivalence : public ::testing::TestWithParam<double /*rate*/> {};

TEST_P(YkdEquivalence, OptimizationNeverChangesAnOutcome) {
  CaseSpec spec;
  spec.processes = 24;
  spec.changes = 8;
  spec.mean_rounds = GetParam();
  spec.runs = 30;
  spec.base_seed = 0xF00D;

  spec.algorithm = AlgorithmKind::kYkd;
  const CaseResult ykd = run_case(spec);
  spec.algorithm = AlgorithmKind::kYkdUnoptimized;
  const CaseResult unopt = run_case(spec);

  EXPECT_EQ(ykd.success_per_run, unopt.success_per_run);
  // The unoptimized variant may retain more, never less.
  EXPECT_GE(unopt.stable.max_observed, ykd.stable.max_observed);
}

INSTANTIATE_TEST_SUITE_P(Rates, YkdEquivalence,
                         ::testing::Values(0.0, 1.0, 3.0, 8.0));

}  // namespace
}  // namespace dynvote
