#include <gtest/gtest.h>

#include "core/simple_majority.hpp"
#include "gcs/gcs.hpp"
#include "sim_test_util.hpp"

namespace dynvote {
namespace {

TEST(SimpleMajority, PrimaryIffQuorumOfInitialView) {
  const View initial{1, ProcessSet::full(7)};
  SimpleMajority alg(0, initial);
  EXPECT_TRUE(alg.in_primary());

  alg.view_changed(View{2, ProcessSet(7, {0, 1, 2, 3})});
  EXPECT_TRUE(alg.in_primary());  // 4 of 7

  alg.view_changed(View{3, ProcessSet(7, {0, 1, 2})});
  EXPECT_FALSE(alg.in_primary());  // 3 of 7
}

TEST(SimpleMajority, ExactHalfUsesLexicalTieBreak) {
  const View initial{1, ProcessSet::full(4)};
  SimpleMajority with_lowest(0, initial);
  with_lowest.view_changed(View{2, ProcessSet(4, {0, 3})});
  EXPECT_TRUE(with_lowest.in_primary());  // half including process 0

  SimpleMajority without_lowest(1, initial);
  without_lowest.view_changed(View{2, ProcessSet(4, {1, 2})});
  EXPECT_FALSE(without_lowest.in_primary());
}

TEST(SimpleMajority, NeverPiggybacksAnything) {
  const View initial{1, ProcessSet::full(3)};
  SimpleMajority alg(0, initial);
  EXPECT_EQ(alg.outgoing_message_poll(Message::from_text("app")), std::nullopt);
}

TEST(SimpleMajority, StripsForeignProtocolPayloads) {
  const View initial{1, ProcessSet::full(3)};
  SimpleMajority alg(0, initial);
  Message m = Message::from_text("data");
  m.protocol = std::make_shared<GcRoundPayload>();
  const Message out = alg.incoming_message(std::move(m), 1);
  EXPECT_FALSE(out.has_protocol());
  EXPECT_EQ(out.app_data, Message::from_text("data").app_data);
}

TEST(SimpleMajority, RecoversInstantlyOnRemerge) {
  Gcs gcs(AlgorithmKind::kSimpleMajority, 6);
  gcs.apply_partition(0, ProcessSet(6, {0, 1, 2}));
  // {3,4,5} is half without process 0: no primary anywhere...
  EXPECT_FALSE(gcs.algorithm(4).in_primary());
  // ...but {0,1,2} is half *with* process 0:
  EXPECT_TRUE(gcs.algorithm(0).in_primary());
  gcs.apply_merge(0, 1);
  EXPECT_TRUE(test::all_in_primary(gcs, ProcessSet::full(6)));
}

TEST(SimpleMajority, DebugInfoTracksLastDeclaredPrimary) {
  const View initial{1, ProcessSet::full(5)};
  SimpleMajority alg(2, initial);
  alg.view_changed(View{4, ProcessSet(5, {1, 2, 3})});
  EXPECT_EQ(alg.debug_info().last_primary.number, 4u);
  alg.view_changed(View{5, ProcessSet(5, {2})});
  // Not primary now; the debug record keeps the last declared one.
  EXPECT_EQ(alg.debug_info().last_primary.number, 4u);
  EXPECT_EQ(alg.debug_info().ambiguous_count, 0u);
}

}  // namespace
}  // namespace dynvote
