#include <gtest/gtest.h>

#include <unordered_set>

#include "core/process_set.hpp"
#include "util/assert.hpp"
#include "util/codec.hpp"

namespace dynvote {
namespace {

TEST(ProcessSet, StartsEmpty) {
  ProcessSet s(10);
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.lowest(), kInvalidProcess);
  EXPECT_EQ(s.universe_size(), 10u);
}

TEST(ProcessSet, InsertContainsErase) {
  ProcessSet s(10);
  s.insert(3);
  s.insert(7);
  EXPECT_TRUE(s.contains(3));
  EXPECT_TRUE(s.contains(7));
  EXPECT_FALSE(s.contains(4));
  EXPECT_EQ(s.count(), 2u);
  s.erase(3);
  EXPECT_FALSE(s.contains(3));
  EXPECT_EQ(s.count(), 1u);
  s.erase(3);  // idempotent
  EXPECT_EQ(s.count(), 1u);
}

TEST(ProcessSet, ContainsOutOfUniverseIsFalse) {
  ProcessSet s(10, {0, 9});
  EXPECT_FALSE(s.contains(10));
  EXPECT_FALSE(s.contains(kInvalidProcess));
}

TEST(ProcessSet, InsertOutOfUniverseThrows) {
  ProcessSet s(10);
  EXPECT_THROW(s.insert(10), PreconditionViolation);
}

TEST(ProcessSet, FullSetCoversExactlyTheUniverse) {
  for (std::size_t n : {1u, 5u, 63u, 64u, 65u, 128u, 200u}) {
    const ProcessSet s = ProcessSet::full(n);
    EXPECT_EQ(s.count(), n) << "n=" << n;
    EXPECT_TRUE(s.contains(static_cast<ProcessId>(n - 1)));
    EXPECT_FALSE(s.contains(static_cast<ProcessId>(n)));
    EXPECT_EQ(s.lowest(), 0u);
  }
}

TEST(ProcessSet, LowestFindsFirstMemberAcrossWords) {
  ProcessSet s(200);
  s.insert(130);
  s.insert(77);
  EXPECT_EQ(s.lowest(), 77u);
  s.insert(3);
  EXPECT_EQ(s.lowest(), 3u);
}

TEST(ProcessSet, SetAlgebra) {
  const ProcessSet a(8, {0, 1, 2, 3});
  const ProcessSet b(8, {2, 3, 4, 5});
  EXPECT_EQ(a.intersection_count(b), 2u);
  EXPECT_EQ(a.united_with(b), ProcessSet(8, {0, 1, 2, 3, 4, 5}));
  EXPECT_EQ(a.intersected_with(b), ProcessSet(8, {2, 3}));
  EXPECT_EQ(a.minus(b), ProcessSet(8, {0, 1}));
  EXPECT_TRUE(a.intersects(b));
  EXPECT_FALSE(a.intersects(ProcessSet(8, {6, 7})));
}

TEST(ProcessSet, SubsetChecks) {
  const ProcessSet small(8, {1, 2});
  const ProcessSet big(8, {0, 1, 2, 3});
  EXPECT_TRUE(small.is_subset_of(big));
  EXPECT_FALSE(big.is_subset_of(small));
  EXPECT_TRUE(small.is_subset_of(small));
  EXPECT_TRUE(ProcessSet(8).is_subset_of(small));
}

TEST(ProcessSet, MixedUniverseOperationsThrow) {
  const ProcessSet a(8, {1});
  const ProcessSet b(9, {1});
  EXPECT_THROW((void)a.intersection_count(b), PreconditionViolation);
  EXPECT_THROW((void)a.is_subset_of(b), PreconditionViolation);
  EXPECT_THROW((void)a.united_with(b), PreconditionViolation);
}

TEST(ProcessSet, MembersAndForEachAgree) {
  const ProcessSet s(130, {0, 63, 64, 65, 129});
  EXPECT_EQ(s.members(), (std::vector<ProcessId>{0, 63, 64, 65, 129}));
  std::vector<ProcessId> seen;
  s.for_each([&](ProcessId p) { seen.push_back(p); });
  EXPECT_EQ(seen, s.members());
}

TEST(ProcessSet, ToString) {
  EXPECT_EQ(ProcessSet(8, {1, 5}).to_string(), "{1,5}");
  EXPECT_EQ(ProcessSet(8).to_string(), "{}");
}

TEST(ProcessSet, CompareIsATotalOrder) {
  const ProcessSet a(8, {0});
  const ProcessSet b(8, {1});
  const ProcessSet c(8, {0, 1});
  EXPECT_EQ(a.compare(a), 0);
  EXPECT_NE(a.compare(b), 0);
  // antisymmetry
  EXPECT_EQ(a.compare(b) < 0, b.compare(a) > 0);
  // transitivity spot-check over all pairs of a few sets
  const std::vector<ProcessSet> sets{a, b, c, ProcessSet(8, {7}),
                                     ProcessSet(8, {0, 7}), ProcessSet(8)};
  for (const auto& x : sets) {
    for (const auto& y : sets) {
      if (x.compare(y) == 0) {
        EXPECT_EQ(x, y);
      }
    }
  }
}

TEST(ProcessSet, EncodeDecodeRoundTrip) {
  const ProcessSet original(130, {0, 63, 64, 65, 129});
  Encoder enc;
  original.encode(enc);
  Decoder dec(enc.bytes());
  EXPECT_EQ(ProcessSet::decode(dec), original);
  dec.finish();
}

TEST(ProcessSet, DecodeRejectsBitsOutsideUniverse) {
  Encoder enc;
  enc.put_varint(4);                      // universe of 4...
  enc.put_u64_fixed(0xFF);                // ...but 8 bits set
  Decoder dec(enc.bytes());
  EXPECT_THROW(ProcessSet::decode(dec), DecodeError);
}

TEST(ProcessSet, DecodeRejectsImplausibleUniverse) {
  Encoder enc;
  enc.put_varint(2'000'000);
  Decoder dec(enc.bytes());
  EXPECT_THROW(ProcessSet::decode(dec), DecodeError);
}

// The small-buffer boundary: universes up to kInlineWords * 64 = 128 ids
// live entirely in the inline words; 129 is the first universe that spills
// to the heap vector.  Everything observable -- algebra, compare, hash,
// wire bytes -- must behave identically on both sides of the boundary.
class ProcessSetSboBoundary : public testing::TestWithParam<std::size_t> {};

INSTANTIATE_TEST_SUITE_P(Universes, ProcessSetSboBoundary,
                         testing::Values(64u, 65u, 128u, 129u));

TEST_P(ProcessSetSboBoundary, AlgebraAtBoundary) {
  const std::size_t n = GetParam();
  ProcessSet evens(n), low_half(n);
  for (ProcessId p = 0; p < n; ++p) {
    if (p % 2 == 0) evens.insert(p);
    if (p < n / 2) low_half.insert(p);
  }
  const ProcessSet both = evens.intersected_with(low_half);
  const ProcessSet either = evens.united_with(low_half);
  const ProcessSet odd_high = ProcessSet::full(n).minus(either);
  EXPECT_EQ(either.count() + both.count(), evens.count() + low_half.count());
  EXPECT_TRUE(both.is_subset_of(evens));
  EXPECT_TRUE(both.is_subset_of(low_half));
  EXPECT_FALSE(odd_high.intersects(either));
  EXPECT_EQ(either.united_with(odd_high), ProcessSet::full(n));
  // The last id exercises the top bit of the final word on every side.
  const ProcessSet last(n, {static_cast<ProcessId>(n - 1)});
  EXPECT_TRUE(last.is_subset_of(ProcessSet::full(n)));
  EXPECT_EQ(ProcessSet::full(n).minus(last).count(), n - 1);
}

TEST_P(ProcessSetSboBoundary, CompareAndHashAtBoundary) {
  const std::size_t n = GetParam();
  const ProcessSet a(n, {0, static_cast<ProcessId>(n - 1)});
  ProcessSet b(n);
  b.insert(0);
  b.insert(static_cast<ProcessId>(n - 1));
  EXPECT_EQ(a.compare(b), 0);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.hash(), b.hash());
  b.erase(static_cast<ProcessId>(n - 1));
  EXPECT_NE(a.compare(b), 0);
  EXPECT_EQ(a.compare(b) < 0, b.compare(a) > 0);
}

TEST_P(ProcessSetSboBoundary, EncodeDecodeRoundTripAtBoundary) {
  const std::size_t n = GetParam();
  ProcessSet original(n);
  for (ProcessId p = 0; p < n; p += 3) original.insert(p);
  original.insert(static_cast<ProcessId>(n - 1));
  Encoder enc;
  original.encode(enc);
  Decoder dec(enc.bytes());
  const ProcessSet decoded = ProcessSet::decode(dec);
  dec.finish();
  EXPECT_EQ(decoded, original);
  EXPECT_EQ(decoded.hash(), original.hash());
  EXPECT_EQ(decoded.members(), original.members());
}

TEST_P(ProcessSetSboBoundary, MovedFromSetIsEmptyAndReusable) {
  const std::size_t n = GetParam();
  ProcessSet source = ProcessSet::full(n);
  const ProcessSet copy = source;
  ProcessSet moved = std::move(source);
  EXPECT_EQ(moved, copy);
  // The move constructor documents a reset source: no stale inline words
  // may survive to alias the next value assigned into it.
  EXPECT_EQ(source.count(), 0u);  // NOLINT(bugprone-use-after-move)
  source = ProcessSet(n, {1});
  EXPECT_EQ(source.count(), 1u);
  EXPECT_TRUE(source.contains(1));
  EXPECT_EQ(moved, copy);
}

TEST(ProcessSet, HashDistinguishesAndIsStable) {
  const ProcessSet a(64, {1, 2, 3});
  ProcessSet b(64, {1, 2});
  EXPECT_EQ(a.hash(), ProcessSet(64, {1, 2, 3}).hash());
  b.insert(3);
  EXPECT_EQ(a.hash(), b.hash());
  std::unordered_set<ProcessSet> set;
  set.insert(a);
  set.insert(b);
  EXPECT_EQ(set.size(), 1u);
}

}  // namespace
}  // namespace dynvote
