// Regression net over the paper's qualitative findings, at reduced scale
// so it runs in seconds.  If a refactor breaks one of these orderings, the
// reproduction is broken even if every unit test passes.
//
// Tolerances are loose (the assertions are about ordering and regime, not
// points); the benches measure the same quantities at full scale.
#include <gtest/gtest.h>

#include "sim/experiment.hpp"

namespace dynvote {
namespace {

CaseResult measure(AlgorithmKind kind, std::size_t changes, double rate,
                   RunMode mode = RunMode::kFreshStart) {
  CaseSpec spec;
  spec.algorithm = kind;
  spec.processes = 24;
  spec.changes = changes;
  spec.mean_rounds = rate;
  spec.runs = 150;
  spec.mode = mode;
  spec.base_seed = 0xBEEF;
  return run_case(spec);
}

double availability(AlgorithmKind kind, std::size_t changes, double rate,
                    RunMode mode = RunMode::kFreshStart) {
  return measure(kind, changes, rate, mode).availability_percent();
}

TEST(Reproduction, AtRateZeroEveryAlgorithmCollapsesToSimpleMajority) {
  // "The algorithms are shown to be about as available as the simple
  // majority algorithm when the connectivity changes occur rapidly."
  const double sm = availability(AlgorithmKind::kSimpleMajority, 6, 0.0);
  for (AlgorithmKind kind :
       {AlgorithmKind::kYkd, AlgorithmKind::kDfls, AlgorithmKind::kOnePending}) {
    EXPECT_NEAR(availability(kind, 6, 0.0), sm, 3.0) << to_string(kind);
  }
  // MR1p may sit slightly below even here (it can leave a pending proposal
  // behind); allow a wider band on one side.
  EXPECT_LE(availability(AlgorithmKind::kMr1p, 6, 0.0), sm + 3.0);
  EXPECT_GE(availability(AlgorithmKind::kMr1p, 6, 0.0), sm - 10.0);
}

TEST(Reproduction, AvailabilityImprovesWithStability) {
  // "As expected, the availability improves as the conditions become more
  // stable" -- compare the turbulent end against the stable end.
  for (AlgorithmKind kind : {AlgorithmKind::kYkd, AlgorithmKind::kOnePending}) {
    EXPECT_GT(availability(kind, 6, 10.0) + 2.0, availability(kind, 6, 0.0))
        << to_string(kind);
  }
}

TEST(Reproduction, YkdDominatesDfls) {
  // "It [DFLS] is less available than YKD for all failure patterns" --
  // never better, paired on the identical schedules.
  for (std::size_t changes : {2u, 6u, 12u}) {
    for (double rate : {1.0, 4.0, 8.0}) {
      const CaseResult ykd = measure(AlgorithmKind::kYkd, changes, rate);
      const CaseResult dfls = measure(AlgorithmKind::kDfls, changes, rate);
      EXPECT_GE(ykd.successes + 1, dfls.successes)
          << "changes=" << changes << " rate=" << rate;
    }
  }
}

TEST(Reproduction, OnePendingDegradesDrasticallyWithChangeCount) {
  // "The 1-pending and MR1p algorithms are significantly less available
  // than YKD and DFLS ... their availability degrades drastically as the
  // number of connectivity changes increases."
  const double gap_2 = availability(AlgorithmKind::kYkd, 2, 2.0) -
                       availability(AlgorithmKind::kOnePending, 2, 2.0);
  const double gap_12 = availability(AlgorithmKind::kYkd, 12, 2.0) -
                        availability(AlgorithmKind::kOnePending, 12, 2.0);
  EXPECT_GT(gap_12, gap_2);
  EXPECT_GT(gap_12, 8.0);
}

TEST(Reproduction, Mr1pIsNearlyYkdAtTwoChanges) {
  // "In the 'fresh start' tests with two connectivity changes, we observe
  // that MR1p is almost as available as YKD."
  EXPECT_NEAR(availability(AlgorithmKind::kMr1p, 2, 4.0),
              availability(AlgorithmKind::kYkd, 2, 4.0), 4.0);
}

TEST(Reproduction, Mr1pFallsBehindAsChangesGrow) {
  EXPECT_LT(availability(AlgorithmKind::kMr1p, 12, 2.0),
            availability(AlgorithmKind::kYkd, 12, 2.0) - 5.0);
}

TEST(Reproduction, CascadingDoesNotDegradeYkd) {
  // "YKD and DFLS provide almost identical availability in tests with
  // cascading failures as in tests with a fresh start" (2 changes).
  const double fresh = availability(AlgorithmKind::kYkd, 2, 2.0);
  const double cascading =
      availability(AlgorithmKind::kYkd, 2, 2.0, RunMode::kCascading);
  EXPECT_GT(cascading, fresh - 6.0);
}

TEST(Reproduction, CascadingCrushesOnePending) {
  // "The availability of the 1-pending algorithm dramatically degrades in
  // the cascading situation."
  const double fresh = availability(AlgorithmKind::kOnePending, 2, 2.0);
  const double cascading =
      availability(AlgorithmKind::kOnePending, 2, 2.0, RunMode::kCascading);
  EXPECT_LT(cascading, fresh - 20.0);

  // And YKD keeps a commanding lead over it in that regime.
  EXPECT_LT(cascading,
            availability(AlgorithmKind::kYkd, 2, 2.0, RunMode::kCascading) -
                20.0);
}

TEST(Reproduction, AmbiguousSessionsAreDominantlyZero) {
  // §4.2: "The number of retained ambiguous sessions was dominantly zero."
  for (AlgorithmKind kind :
       {AlgorithmKind::kYkd, AlgorithmKind::kYkdUnoptimized,
        AlgorithmKind::kDfls}) {
    const CaseResult r = measure(kind, 6, 2.0);
    EXPECT_GT(r.in_progress.percent(0), 60.0) << to_string(kind);
    EXPECT_LE(r.in_progress.max_observed, 9u) << to_string(kind);
  }
}

}  // namespace
}  // namespace dynvote
