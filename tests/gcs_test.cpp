// The simulated group communication service: view installation, round
// execution, quiescence, and wire statistics.
#include <gtest/gtest.h>

#include "gcs/gcs.hpp"
#include "sim_test_util.hpp"
#include "util/assert.hpp"

namespace dynvote {
namespace {

using test::no_cross;
using test::settle;

TEST(Gcs, InitialViewIsInstalledEverywhere) {
  Gcs gcs(AlgorithmKind::kYkd, 4);
  for (ProcessId p = 0; p < 4; ++p) {
    EXPECT_EQ(gcs.view_of(p).id, 1u);
    EXPECT_EQ(gcs.view_of(p).members, ProcessSet::full(4));
    EXPECT_TRUE(gcs.algorithm(p).in_primary());
  }
  EXPECT_TRUE(gcs.has_primary());
}

TEST(Gcs, PartitionInstallsDistinctViewsOnBothSides) {
  Gcs gcs(AlgorithmKind::kSimpleMajority, 4);
  gcs.apply_partition(0, ProcessSet(4, {2, 3}));
  EXPECT_EQ(gcs.view_of(0).members, ProcessSet(4, {0, 1}));
  EXPECT_EQ(gcs.view_of(3).members, ProcessSet(4, {2, 3}));
  EXPECT_NE(gcs.view_of(0).id, gcs.view_of(3).id);
  EXPECT_GT(gcs.view_of(0).id, 1u);
}

TEST(Gcs, MergeInstallsOneSharedView) {
  Gcs gcs(AlgorithmKind::kSimpleMajority, 4);
  gcs.apply_partition(0, ProcessSet(4, {2, 3}));
  gcs.apply_merge(0, 1);
  for (ProcessId p = 0; p < 4; ++p) {
    EXPECT_EQ(gcs.view_of(p).members, ProcessSet::full(4));
    EXPECT_EQ(gcs.view_of(p).id, gcs.view_of(0).id);
  }
}

TEST(Gcs, ViewIdsAreStrictlyIncreasing) {
  Gcs gcs(AlgorithmKind::kSimpleMajority, 4);
  ViewId last = gcs.view_of(0).id;
  gcs.apply_partition(0, ProcessSet(4, {3}));
  EXPECT_GT(gcs.view_of(0).id, last);
  last = gcs.view_of(3).id;
  gcs.apply_merge(0, 1);
  EXPECT_GT(gcs.view_of(0).id, last);
}

TEST(Gcs, StepRoundReportsQuiescence) {
  Gcs gcs(AlgorithmKind::kYkd, 3);
  // Initially quiescent: the initial view needs no protocol work.
  EXPECT_FALSE(gcs.step_round());
  gcs.apply_partition(0, ProcessSet(3, {2}));
  // The partition triggers state exchange: rounds are active...
  EXPECT_TRUE(gcs.step_round());
  settle(gcs);
  // ...until the protocol completes.
  EXPECT_FALSE(gcs.step_round());
}

TEST(Gcs, YkdFormsPrimaryOnMajoritySideAfterTwoRounds) {
  Gcs gcs(AlgorithmKind::kYkd, 5);
  gcs.apply_partition(0, ProcessSet(5, {3, 4}));
  EXPECT_FALSE(gcs.has_primary());  // views installed, nothing formed yet
  gcs.step_round();                 // states multicast
  gcs.step_round();                 // states delivered, attempts multicast
  EXPECT_FALSE(gcs.has_primary());
  gcs.step_round();                 // attempts delivered: primary formed
  EXPECT_TRUE(test::all_in_primary(gcs, ProcessSet(5, {0, 1, 2})));
  EXPECT_FALSE(gcs.algorithm(3).in_primary());
}

TEST(Gcs, WireStatsCountProtocolTraffic) {
  Gcs gcs(AlgorithmKind::kYkd, 4, GcsOptions{.measure_wire_sizes = true});
  gcs.apply_partition(0, ProcessSet(4, {3}));
  settle(gcs);
  const WireStats& stats = gcs.wire_stats();
  EXPECT_GT(stats.messages_sent, 0u);
  EXPECT_EQ(stats.messages_sent, stats.protocol_messages_sent);
  EXPECT_GT(stats.max_message_bytes, 0u);
  EXPECT_GE(stats.total_message_bytes,
            stats.max_message_bytes * stats.messages_sent / 4);
}

TEST(Gcs, SimpleMajoritySendsNothing) {
  Gcs gcs(AlgorithmKind::kSimpleMajority, 8);
  gcs.apply_partition(0, ProcessSet(8, {6, 7}));
  settle(gcs);
  EXPECT_EQ(gcs.wire_stats().messages_sent, 0u);
}

TEST(Gcs, CustomFactoryIsUsed) {
  int constructed = 0;
  Gcs gcs(
      [&constructed](ProcessId self, const View& initial) {
        ++constructed;
        return make_algorithm(AlgorithmKind::kSimpleMajority, self, initial);
      },
      5);
  EXPECT_EQ(constructed, 5);
  EXPECT_EQ(gcs.process_count(), 5u);
}

TEST(Gcs, InvalidProcessIdThrows) {
  Gcs gcs(AlgorithmKind::kYkd, 3);
  EXPECT_THROW((void)gcs.algorithm(3), PreconditionViolation);
  EXPECT_THROW((void)gcs.view_of(99), PreconditionViolation);
}

TEST(Gcs, PartitionRequiresNonEmptySides) {
  Gcs gcs(AlgorithmKind::kYkd, 3);
  EXPECT_THROW(gcs.apply_partition(0, ProcessSet(3)), PreconditionViolation);
  EXPECT_THROW(gcs.apply_partition(0, ProcessSet::full(3)),
               PreconditionViolation);
}

}  // namespace
}  // namespace dynvote
