// The allocation-free hot path, enforced: with the counting allocator
// linked, warmed-up steady-state protocol rounds at n=64 must perform ZERO
// heap allocations.  This is the regression fence for the small-buffer
// ProcessSet, the FunctionRef callbacks, the pooled round payloads and the
// cursor-based outboxes -- reintroducing an allocation into any of them
// fails this test with an exact count.
//
// This binary links dv_alloc_hook (see tests/CMakeLists.txt); if someone
// builds it without the hook the test skips rather than vacuously passing.
#include <gtest/gtest.h>

#include <cstdint>

#include "core/process_set.hpp"
#include "gcs/gcs.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/alloc_stats.hpp"

namespace dynvote {
namespace {

constexpr std::size_t kProcesses = 64;
constexpr int kWarmupCycles = 8;
constexpr std::uint64_t kMinMeasuredRounds = 100;

/// Run protocol rounds until quiet, counting only the step_round work.
std::uint64_t settle(Gcs& gcs, std::uint64_t* allocs) {
  std::uint64_t rounds = 0;
  const std::uint64_t before = thread_allocations();
  while (gcs.step_round() && rounds < 1000) ++rounds;
  if (allocs != nullptr) *allocs += thread_allocations() - before;
  return rounds;
}

TEST(AllocRegression, SteadyStateRoundsAreAllocationFreeAtN64) {
  if (!alloc_hook_linked()) {
    GTEST_SKIP() << "dv_alloc_hook not linked; allocation counts unavailable";
  }

  Gcs gcs(AlgorithmKind::kYkd, kProcesses);
  ProcessSet lower_half(kProcesses);
  for (ProcessId p = 0; p < kProcesses / 2; ++p) lower_half.insert(p);

  // Warm-up: let every pooled payload, scratch vector and outbox reach its
  // steady capacity.  Allocations here are expected and uncounted.
  for (int cycle = 0; cycle < kWarmupCycles; ++cycle) {
    gcs.apply_partition(0, lower_half);
    settle(gcs, nullptr);
    gcs.apply_merge(0, 1);
    settle(gcs, nullptr);
  }

  // Measure: keep cycling partition/merge (the connectivity-change traffic
  // the availability study simulates) until at least 100 protocol rounds
  // ran under the counter.
  std::uint64_t allocs = 0;
  std::uint64_t rounds = 0;
  while (rounds < kMinMeasuredRounds) {
    gcs.apply_partition(0, lower_half);
    rounds += settle(gcs, &allocs);
    gcs.apply_merge(0, 1);
    rounds += settle(gcs, &allocs);
  }

  EXPECT_GE(rounds, kMinMeasuredRounds);
  EXPECT_EQ(allocs, 0u)
      << "steady-state hot path allocated " << allocs << " times over "
      << rounds << " rounds; the n<=128 round loop is supposed to be "
      << "allocation-free";
}

/// Past the SBO limit: at N=256 every ProcessSet spills, and the spill
/// storage comes from the thread-local freelist arena -- so warmed-up
/// steady-state rounds must stay at ZERO heap allocations there too.  This
/// is the gate for the beyond-128 extension of the zero-alloc guarantee.
TEST(AllocRegression, SteadyStateRoundsAreAllocationFreeAtN256) {
  if (!alloc_hook_linked()) {
    GTEST_SKIP() << "dv_alloc_hook not linked; allocation counts unavailable";
  }

  constexpr std::size_t kBigUniverse = 256;
  Gcs gcs(AlgorithmKind::kYkd, kBigUniverse);
  ProcessSet lower_half(kBigUniverse);
  for (ProcessId p = 0; p < kBigUniverse / 2; ++p) lower_half.insert(p);

  for (int cycle = 0; cycle < kWarmupCycles; ++cycle) {
    gcs.apply_partition(0, lower_half);
    settle(gcs, nullptr);
    gcs.apply_merge(0, 1);
    settle(gcs, nullptr);
  }

  std::uint64_t allocs = 0;
  std::uint64_t rounds = 0;
  while (rounds < kMinMeasuredRounds) {
    gcs.apply_partition(0, lower_half);
    rounds += settle(gcs, &allocs);
    gcs.apply_merge(0, 1);
    rounds += settle(gcs, &allocs);
  }

  EXPECT_GE(rounds, kMinMeasuredRounds);
  EXPECT_EQ(allocs, 0u)
      << "steady-state hot path at N=" << kBigUniverse << " allocated "
      << allocs << " times over " << rounds
      << " rounds; the spill arena is supposed to extend the zero-alloc "
      << "guarantee past the N<=128 inline limit";
}

/// The quiet case: rounds with no protocol traffic at all must obviously
/// stay allocation-free too (this is the common case in low-rate sweeps).
TEST(AllocRegression, QuiescentRoundsAreAllocationFree) {
  if (!alloc_hook_linked()) {
    GTEST_SKIP() << "dv_alloc_hook not linked; allocation counts unavailable";
  }

  Gcs gcs(AlgorithmKind::kYkd, kProcesses);
  settle(gcs, nullptr);  // drain the initial view formation

  const std::uint64_t before = thread_allocations();
  for (int i = 0; i < 100; ++i) (void)gcs.step_round();
  EXPECT_EQ(thread_allocations() - before, 0u);
}

/// The observability layer must not erode the guarantee: with tracing OFF
/// (the default), instrumented steady-state rounds at n=64 stay at zero
/// allocations -- the emission sites cost one relaxed load/add each, never
/// a heap touch.  install_view carries DV_OBS_INC/DV_TRACE_INSTANT sites,
/// so this variant counts the partition/merge applications too, not just
/// the round loop.
TEST(AllocRegression, TracingOffSteadyStateStaysAllocationFreeAtN64) {
  if (!alloc_hook_linked()) {
    GTEST_SKIP() << "dv_alloc_hook not linked; allocation counts unavailable";
  }
  ASSERT_FALSE(obs::trace_enabled());

  Gcs gcs(AlgorithmKind::kYkd, kProcesses);
  ProcessSet lower_half(kProcesses);
  for (ProcessId p = 0; p < kProcesses / 2; ++p) lower_half.insert(p);

  // Warm-up also interns the emission sites' metric names and allocates
  // this thread's metrics shard -- one-time costs, by design.
  for (int cycle = 0; cycle < kWarmupCycles; ++cycle) {
    gcs.apply_partition(0, lower_half);
    settle(gcs, nullptr);
    gcs.apply_merge(0, 1);
    settle(gcs, nullptr);
  }

  std::uint64_t rounds = 0;
  const std::uint64_t before = thread_allocations();
  while (rounds < kMinMeasuredRounds) {
    gcs.apply_partition(0, lower_half);
    while (gcs.step_round() && rounds < 100000) ++rounds;
    gcs.apply_merge(0, 1);
    while (gcs.step_round() && rounds < 100000) ++rounds;
  }
  const std::uint64_t allocs = thread_allocations() - before;

  EXPECT_GE(rounds, kMinMeasuredRounds);
  EXPECT_EQ(allocs, 0u)
      << "with tracing off, instrumented steady state allocated " << allocs
      << " times over " << rounds
      << " rounds; DV_OBS_*/DV_TRACE_* sites must be free when disarmed";
}

}  // namespace
}  // namespace dynvote
