// MR1p: the two-round fast path, the five-round resolution path, and the
// majority-resilience that distinguishes it from 1-pending.
#include <gtest/gtest.h>

#include "core/mr1p.hpp"
#include "gcs/gcs.hpp"
#include "sim_test_util.hpp"

namespace dynvote {
namespace {

using test::all_in_primary;
using test::no_cross;
using test::settle;

Gcs::AlgorithmFactory mr1p_factory(Mr1pOptions options) {
  return [options](ProcessId self, const View& initial) {
    return std::make_unique<Mr1p>(self, initial, options);
  };
}

TEST(Mr1p, NoPendingPathFormsInTwoMessageRounds) {
  Gcs gcs(AlgorithmKind::kMr1p, 5);
  gcs.apply_partition(0, ProcessSet(5, {4}));
  gcs.step_round();  // <V,1> proposals sent
  gcs.step_round();  // proposals delivered, attempts sent
  EXPECT_FALSE(gcs.has_primary());
  gcs.step_round();  // attempts delivered: formed
  EXPECT_TRUE(all_in_primary(gcs, ProcessSet(5, {0, 1, 2, 3})));
}

// Interrupt a formation so that {0,1,2,3} is left pending on {0..4} while
// process 4 detaches.  `rounds_before_cut` positions the interruption at
// the protocol stage where the algorithm has just staked its pending
// session: 1 round for MR1p (<V,1> proposals in flight, status "sent"),
// 2 rounds for the YKD family (attempt messages in flight).
Gcs interrupted_pending(AlgorithmKind kind, int rounds_before_cut) {
  Gcs gcs(kind, 5);
  gcs.apply_partition(0, ProcessSet(5, {4}));
  while (gcs.step_round()) {
  }
  gcs.apply_merge(0, 1);
  for (int i = 0; i < rounds_before_cut; ++i) gcs.step_round();
  gcs.apply_partition(0, ProcessSet(5, {4}), [](ProcessId) { return false; });
  return gcs;
}

TEST(Mr1p, ResolvesSentStatusPendingWithOnlyAMajority) {
  // 1-pending needs ALL members of the pending session; MR1p resolves with
  // a majority when the attempt provably never reached the attempt stage.
  Gcs gcs = interrupted_pending(AlgorithmKind::kMr1p, 1);
  EXPECT_EQ(gcs.algorithm(0).debug_info().ambiguous_count, 1u);
  settle(gcs);
  // {0,1,2,3} (a majority of {0..4}) resolved the pending session as
  // try-fail and went on to form a primary.
  EXPECT_TRUE(all_in_primary(gcs, ProcessSet(5, {0, 1, 2, 3})));

  // 1-pending holding the analogous pending session stays blocked.
  Gcs op = interrupted_pending(AlgorithmKind::kOnePending, 2);
  EXPECT_EQ(op.algorithm(0).debug_info().ambiguous_count, 1u);
  while (op.step_round()) {
  }
  EXPECT_EQ(test::primary_member_count(op), 0u);
}

TEST(Mr1p, MinorityCannotResolveItsPending) {
  Gcs gcs(AlgorithmKind::kMr1p, 5);
  gcs.apply_partition(0, ProcessSet(5, {4}));
  while (gcs.step_round()) {
  }
  gcs.apply_merge(0, 1);
  gcs.step_round();  // proposals in flight
  // Now a 2/3 split: {0,1} detaches -- a minority of the pending {0..4}.
  gcs.apply_partition(0, ProcessSet(5, {0, 1}), no_cross());
  settle(gcs);
  EXPECT_FALSE(gcs.algorithm(0).in_primary());
  EXPECT_EQ(gcs.algorithm(0).debug_info().ambiguous_count, 1u);
  EXPECT_TRUE(gcs.algorithm(0).debug_info().blocked);
}

// Put {0,1,2} into the attempt stage of {0..4} without any attempt message
// ever being multicast: interrupt at propose-in-flight, with the proposals
// from the detaching {3,4} crossing into the surviving side.  {0,1,2} then
// sees all five proposals during the flush, advances to status=attempt --
// and its staged attempt multicast dies with the view change.
Gcs interrupted_at_attempt_stage(Mr1pOptions options) {
  Gcs gcs(mr1p_factory(options), 5);
  gcs.apply_partition(0, ProcessSet(5, {4}));
  while (gcs.step_round()) {
  }
  gcs.apply_merge(0, 1);
  gcs.step_round();  // proposals for {0..4} in flight
  gcs.apply_partition(0, ProcessSet(5, {3, 4}),
                      [](ProcessId sender) { return sender >= 3; });
  while (gcs.step_round()) {
  }
  return gcs;
}

TEST(Mr1p, ConservativePolicyStallsOnAttemptStageEcho) {
  // Conservative: {0,1,2}'s best echo is "attempt" and members 3,4 are
  // unreachable; the session cannot be proven dead -> blocked.
  Gcs conservative = interrupted_at_attempt_stage(
      Mr1pOptions{Mr1pResolutionPolicy::kConservative});
  EXPECT_FALSE(conservative.algorithm(0).in_primary());
  EXPECT_TRUE(conservative.algorithm(0).debug_info().blocked);

  // Adopt-on-attempt: treats {0..4} as formed, adopts it as cur_primary,
  // and {0,1,2} -- a subquorum of it -- forms a fresh primary.
  Gcs liberal = interrupted_at_attempt_stage(
      Mr1pOptions{Mr1pResolutionPolicy::kAdoptOnAttempt});
  EXPECT_TRUE(liberal.algorithm(0).in_primary());
}

TEST(Mr1p, ConservativeResolvesAttemptEchoWithFullPresence) {
  // Same interruption, but everyone reunites: full presence proves the
  // attempt never formed, even under the conservative policy.
  Gcs gcs = interrupted_at_attempt_stage(
      Mr1pOptions{Mr1pResolutionPolicy::kConservative});
  gcs.apply_merge(0, 1);
  settle(gcs);
  EXPECT_TRUE(all_in_primary(gcs, ProcessSet::full(5)));
}

TEST(Mr1p, LearnsFormationFromAWitness) {
  // {0,1} completes {0,1,2} thanks to a crossed attempt; 2 holds it
  // pending, then rejoins and learns it formed.
  Gcs gcs(AlgorithmKind::kMr1p, 5);
  gcs.apply_partition(0, ProcessSet(5, {3, 4}));
  gcs.step_round();  // proposals
  gcs.step_round();  // attempts in flight
  gcs.apply_partition(gcs.topology().component_of(0), ProcessSet(5, {2}),
                      [](ProcessId sender) { return sender == 2; });
  settle(gcs);
  EXPECT_TRUE(all_in_primary(gcs, ProcessSet(5, {0, 1})));
  EXPECT_EQ(gcs.algorithm(2).debug_info().ambiguous_count, 1u);

  gcs.apply_merge(gcs.topology().component_of(0),
                  gcs.topology().component_of(2));
  settle(gcs);
  EXPECT_TRUE(all_in_primary(gcs, ProcessSet(5, {0, 1, 2})));
}

TEST(Mr1p, StaleCurPrimaryRecoversOnFullReunion) {
  Gcs gcs(AlgorithmKind::kMr1p, 6);
  gcs.apply_partition(0, ProcessSet(6, {5}));
  settle(gcs);  // {0..4} forms; 5 is behind with cur_primary = initial view
  gcs.apply_partition(0, ProcessSet(6, {3, 4}));
  settle(gcs);  // {0,1,2} forms
  gcs.apply_merge(0, 1);
  gcs.apply_merge(0, 1);
  settle(gcs);  // everyone back together
  EXPECT_TRUE(all_in_primary(gcs, ProcessSet::full(6)));
}

TEST(Mr1p, FormedViewsGcOnFullViewFormation) {
  // After a full-view primary forms, the formedViews log is reset to just
  // that view (the thesis's optimization for long executions).
  const View initial{1, ProcessSet::full(4)};
  Gcs gcs(AlgorithmKind::kMr1p, 4);
  gcs.apply_partition(0, ProcessSet(4, {3}));
  settle(gcs);
  gcs.apply_merge(0, 1);
  settle(gcs);
  EXPECT_TRUE(all_in_primary(gcs, ProcessSet::full(4)));
  // Behavioral check: a long merge/partition churn does not accumulate
  // unbounded formedViews (exercised further by the soak test); here we
  // simply assert the system stays correct through repeated full reunions.
  for (int i = 0; i < 5; ++i) {
    gcs.apply_partition(0, ProcessSet(4, {2, 3}));
    settle(gcs);
    gcs.apply_merge(0, 1);
    settle(gcs);
    EXPECT_TRUE(all_in_primary(gcs, ProcessSet::full(4)));
  }
}

}  // namespace
}  // namespace dynvote
