#include <gtest/gtest.h>

#include "gcs/topology.hpp"
#include "util/assert.hpp"

namespace dynvote {
namespace {

TEST(Topology, StartsFullyConnected) {
  Topology t(8);
  EXPECT_EQ(t.component_count(), 1u);
  EXPECT_EQ(t.component(0), ProcessSet::full(8));
  EXPECT_TRUE(t.can_partition());
  EXPECT_FALSE(t.can_merge());
}

TEST(Topology, SplitMovesSubsetToNewComponent) {
  Topology t(8);
  t.split(0, ProcessSet(8, {5, 6, 7}));
  EXPECT_EQ(t.component_count(), 2u);
  EXPECT_EQ(t.component(0), ProcessSet(8, {0, 1, 2, 3, 4}));
  EXPECT_EQ(t.component(1), ProcessSet(8, {5, 6, 7}));
  EXPECT_EQ(t.component_of(6), 1u);
  EXPECT_EQ(t.component_of(0), 0u);
  EXPECT_TRUE(t.can_merge());
}

TEST(Topology, MergeReunitesComponents) {
  Topology t(8);
  t.split(0, ProcessSet(8, {5, 6, 7}));
  t.split(0, ProcessSet(8, {0, 1}));
  EXPECT_EQ(t.component_count(), 3u);
  t.merge(0, 2);
  EXPECT_EQ(t.component_count(), 2u);
  EXPECT_EQ(t.component(0), ProcessSet(8, {0, 1, 2, 3, 4}));
  t.merge(0, 1);
  EXPECT_EQ(t.component(0), ProcessSet::full(8));
}

TEST(Topology, SplitValidatesArguments) {
  Topology t(4);
  EXPECT_THROW(t.split(0, ProcessSet(4)), PreconditionViolation);  // empty
  EXPECT_THROW(t.split(0, ProcessSet::full(4)), PreconditionViolation);
  EXPECT_THROW(t.split(1, ProcessSet(4, {0})), PreconditionViolation);
  t.split(0, ProcessSet(4, {0}));
  // {0} now lives in component 1; cannot split it out of component 0.
  EXPECT_THROW(t.split(0, ProcessSet(4, {0})), PreconditionViolation);
}

TEST(Topology, MergeValidatesArguments) {
  Topology t(4);
  EXPECT_THROW(t.merge(0, 0), PreconditionViolation);
  EXPECT_THROW(t.merge(0, 1), PreconditionViolation);
}

TEST(Topology, CanPartitionRequiresAComponentOfTwo) {
  Topology t(3);
  t.split(0, ProcessSet(3, {0}));
  t.split(0, ProcessSet(3, {1}));
  // Components are {2}, {0}, {1}: all singletons.
  EXPECT_FALSE(t.can_partition());
  EXPECT_TRUE(t.can_merge());
  EXPECT_TRUE(t.splittable_components().empty());
  t.merge(0, 1);
  EXPECT_TRUE(t.can_partition());
  EXPECT_EQ(t.splittable_components(), (std::vector<std::size_t>{0}));
}

TEST(Topology, SingleProcessHasNoFeasibleChange) {
  Topology t(1);
  EXPECT_FALSE(t.can_partition());
  EXPECT_FALSE(t.can_merge());
}

}  // namespace
}  // namespace dynvote
