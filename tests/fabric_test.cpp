// Tests for the multi-host sweep fabric (src/fabric/).
//
// Protocol layer: every frame type round-trips losslessly, the envelope
// version gates post-v1 fields in both directions, and malformed payloads
// fail as DecodeError instead of reaching an allocator.
//
// System layer, all over loopback sockets: a coordinator plus two workers
// produces byte-identical deterministic results to the in-process
// `run_sweep`; a worker that falls silent mid-unit is detected and its
// units re-issued without changing results; duplicate (late straggler)
// results are dropped idempotently.
#include "fabric/coordinator.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "core/algorithm.hpp"
#include "fabric/socket.hpp"
#include "fabric/wire.hpp"
#include "fabric/worker.hpp"
#include "gtest/gtest.h"
#include "runner/artifact.hpp"
#include "runner/progress.hpp"
#include "runner/sweep.hpp"
#include "util/codec.hpp"

namespace dynvote::fabric {
namespace {

std::vector<std::byte> encode_result_body(const CaseResult& result) {
  Encoder enc;
  result.encode_body(enc);
  return enc.take();
}

CaseSpec small_case(RunMode mode, AlgorithmKind kind = AlgorithmKind::kYkd) {
  CaseSpec spec;
  spec.algorithm = kind;
  spec.processes = 8;
  spec.changes = 4;
  spec.mean_rounds = 3.0;
  spec.runs = 48;
  spec.mode = mode;
  spec.base_seed = 0xFAB1;
  return spec;
}

SweepSpec small_sweep() {
  SweepSpec spec;
  spec.min_shard_runs = 8;  // force several shards per case
  SweepCase fresh;
  fresh.spec = small_case(RunMode::kFreshStart);
  spec.cases.push_back(fresh);
  SweepCase cascading;
  cascading.spec = small_case(RunMode::kCascading);
  spec.cases.push_back(cascading);
  SweepCase other;
  other.spec = small_case(RunMode::kFreshStart, AlgorithmKind::kOnePending);
  spec.cases.push_back(other);
  return spec;
}

// ---------------------------------------------------------------------------
// Wire protocol
// ---------------------------------------------------------------------------

TEST(FabricWire, HelloRoundTrip) {
  HelloFrame hello;
  hello.coordinator = true;
  hello.build = "test-build";
  hello.slots = 7;
  hello.lease_ms = 12345;
  hello.heartbeat_ms = 250;
  CaseDescriptor desc;
  desc.label = "ykd";
  desc.spec = small_case(RunMode::kCascading);
  desc.spec.measure_wire_sizes = true;
  desc.spec.check_invariants = false;
  hello.cases.push_back(desc);

  const Frame decoded = decode_frame(encode_frame(Frame{hello}));
  const auto& got = std::get<HelloFrame>(decoded);
  EXPECT_TRUE(got.coordinator);
  EXPECT_EQ(got.schema, kFabricSchema);
  EXPECT_EQ(got.build, "test-build");
  EXPECT_EQ(got.slots, 7u);
  EXPECT_EQ(got.lease_ms, 12345u);
  EXPECT_EQ(got.heartbeat_ms, 250u);
  ASSERT_EQ(got.cases.size(), 1u);
  EXPECT_EQ(got.cases[0].label, "ykd");
  EXPECT_EQ(got.cases[0].spec.algorithm, AlgorithmKind::kYkd);
  EXPECT_EQ(got.cases[0].spec.processes, 8u);
  EXPECT_EQ(got.cases[0].spec.changes, 4u);
  EXPECT_EQ(got.cases[0].spec.mean_rounds, 3.0);
  EXPECT_EQ(got.cases[0].spec.runs, 48u);
  EXPECT_EQ(got.cases[0].spec.mode, RunMode::kCascading);
  EXPECT_EQ(got.cases[0].spec.base_seed, 0xFAB1u);
  EXPECT_TRUE(got.cases[0].spec.measure_wire_sizes);
  EXPECT_FALSE(got.cases[0].spec.check_invariants);
}

TEST(FabricWire, LeaseRoundTrip) {
  LeaseFrame lease;
  lease.unit_id = 42;
  lease.case_index = 3;
  lease.first_run = 96;
  lease.run_count = 32;
  lease.cascading = true;
  lease.snapshot = {std::byte{0xDE}, std::byte{0xAD}, std::byte{0xBE}};

  const Frame decoded = decode_frame(encode_frame(Frame{lease}));
  const auto& got = std::get<LeaseFrame>(decoded);
  EXPECT_EQ(got.unit_id, 42u);
  EXPECT_EQ(got.case_index, 3u);
  EXPECT_EQ(got.first_run, 96u);
  EXPECT_EQ(got.run_count, 32u);
  EXPECT_TRUE(got.cascading);
  EXPECT_EQ(got.snapshot, lease.snapshot);
}

TEST(FabricWire, ResultRoundTripIsLossless) {
  CaseSpec spec = small_case(RunMode::kFreshStart);
  spec.measure_wire_sizes = true;  // populate every statistic
  ResultFrame frame;
  frame.unit_id = 9;
  frame.compute_seconds = 1.25;
  frame.result = run_case_shard(spec, 8, 16);
  ASSERT_EQ(frame.result.runs, 16u);

  const Frame decoded = decode_frame(encode_frame(Frame{frame}));
  const auto& got = std::get<ResultFrame>(decoded);
  EXPECT_EQ(got.unit_id, 9u);
  EXPECT_EQ(got.compute_seconds, 1.25);
  // Bit-exact equality of the full statistics payload.
  EXPECT_EQ(encode_result_body(got.result),
            encode_result_body(frame.result));
  EXPECT_EQ(got.result.success_per_run, frame.result.success_per_run);
  EXPECT_EQ(got.result.wire.max_message_bytes,
            frame.result.wire.max_message_bytes);
}

TEST(FabricWire, HeartbeatStealShutdownRoundTrip) {
  HeartbeatFrame beat;
  beat.inflight = 3;
  beat.busy_seconds = 2.5;
  const auto& got_beat =
      std::get<HeartbeatFrame>(decode_frame(encode_frame(Frame{beat})));
  EXPECT_EQ(got_beat.inflight, 3u);
  EXPECT_EQ(got_beat.busy_seconds, 2.5);

  StealFrame steal;
  steal.want = 6;
  const auto& got_steal =
      std::get<StealFrame>(decode_frame(encode_frame(Frame{steal})));
  EXPECT_EQ(got_steal.want, 6u);

  ShutdownFrame bye;
  bye.reason = "sweep drained";
  const auto& got_bye =
      std::get<ShutdownFrame>(decode_frame(encode_frame(Frame{bye})));
  EXPECT_EQ(got_bye.reason, "sweep drained");
}

TEST(FabricWire, HeartbeatBusySecondsIsVersionGated) {
  HeartbeatFrame beat;
  beat.inflight = 2;
  beat.busy_seconds = 9.75;

  // A v1 peer neither writes nor reads the v2 field.
  const std::vector<std::byte> v1 = encode_frame(Frame{beat}, 1);
  const auto& from_v1 = std::get<HeartbeatFrame>(decode_frame(v1));
  EXPECT_EQ(from_v1.inflight, 2u);
  EXPECT_EQ(from_v1.busy_seconds, 0.0);

  const std::vector<std::byte> v2 = encode_frame(Frame{beat}, 2);
  EXPECT_GT(v2.size(), v1.size());
  const auto& from_v2 = std::get<HeartbeatFrame>(decode_frame(v2));
  EXPECT_EQ(from_v2.busy_seconds, 9.75);
}

TEST(FabricWire, HeartbeatMetricsAreVersionGated) {
  HeartbeatFrame beat;
  beat.inflight = 1;
  beat.busy_seconds = 0.5;
  beat.metrics.counters = {{"sim.rounds", 42}};
  beat.metrics.gauges = {{"runner.jobs", 8}};

  // A v3 peer neither writes nor reads the v4 metrics block.
  const std::vector<std::byte> v3 = encode_frame(Frame{beat}, 3);
  const Frame v3_frame = decode_frame(v3);
  const auto& from_v3 = std::get<HeartbeatFrame>(v3_frame);
  EXPECT_EQ(from_v3.busy_seconds, 0.5);
  EXPECT_TRUE(from_v3.metrics.empty());

  // The current version carries it, fully and in canonical order.
  const std::vector<std::byte> v4 = encode_frame(Frame{beat}, 4);
  EXPECT_GT(v4.size(), v3.size());
  const Frame v4_frame = decode_frame(v4);
  const auto& from_v4 = std::get<HeartbeatFrame>(v4_frame);
  EXPECT_EQ(from_v4.metrics.counters, beat.metrics.counters);
  EXPECT_EQ(from_v4.metrics.gauges, beat.metrics.gauges);

  // The default version is the current one.
  const Frame default_frame = decode_frame(encode_frame(Frame{beat}));
  const auto& from_default = std::get<HeartbeatFrame>(default_frame);
  EXPECT_EQ(from_default.metrics.counters, beat.metrics.counters);
}

TEST(FabricWire, MalformedFramesThrowDecodeError) {
  // Truncated mid-frame.
  const std::vector<std::byte> whole = encode_frame(Frame{StealFrame{5}});
  for (std::size_t cut = 0; cut < whole.size(); ++cut) {
    const std::span<const std::byte> prefix(whole.data(), cut);
    EXPECT_THROW((void)decode_frame(prefix), DecodeError) << "cut=" << cut;
  }
  // Trailing garbage after a valid frame.
  std::vector<std::byte> padded = whole;
  padded.push_back(std::byte{0x00});
  EXPECT_THROW((void)decode_frame(padded), DecodeError);

  // Unknown frame type.
  Encoder unknown_type;
  unknown_type.put_varint(kFrameVersion);
  unknown_type.put_u8(99);
  EXPECT_THROW((void)decode_frame(unknown_type.bytes()), DecodeError);

  // Envelope newer than this build.
  Encoder future;
  future.put_varint(kFrameVersion + 1);
  future.put_u8(static_cast<std::uint8_t>(FrameType::kSteal));
  future.put_varint(1);
  EXPECT_THROW((void)decode_frame(future.bytes()), DecodeError);

  // A lease whose snapshot length prefix claims more than the frame cap:
  // must fail before any allocation.
  Encoder huge;
  huge.put_varint(kFrameVersion);
  huge.put_u8(static_cast<std::uint8_t>(FrameType::kLease));
  huge.put_varint(1);   // unit
  huge.put_varint(0);   // case
  huge.put_varint(0);   // first_run
  huge.put_varint(8);   // run_count
  huge.put_u8(1);       // cascading
  huge.put_varint(std::uint64_t{1} << 62);  // snapshot "length"
  EXPECT_THROW((void)decode_frame(huge.bytes()), DecodeError);

  // An invalid algorithm kind inside a case descriptor.
  Encoder bad_algo;
  bad_algo.put_varint(kFrameVersion);
  bad_algo.put_u8(static_cast<std::uint8_t>(FrameType::kHello));
  bad_algo.put_u8(0);                        // coordinator=false
  bad_algo.put_string(kFabricSchema);
  bad_algo.put_string("build");
  bad_algo.put_varint(1);                    // slots
  bad_algo.put_varint(0);                    // lease_ms
  bad_algo.put_varint(0);                    // heartbeat_ms
  bad_algo.put_varint(1);                    // one case
  bad_algo.put_string("label");
  bad_algo.put_u8(200);                      // no such algorithm
  EXPECT_THROW((void)decode_frame(bad_algo.bytes()), DecodeError);
}

TEST(FabricWire, FactoryCasesAreRejectedBeforeDispatch) {
  CaseDescriptor desc;
  desc.label = "custom";
  desc.spec = small_case(RunMode::kFreshStart);
  desc.spec.algorithm_factory = [](ProcessId self, const View& initial) {
    return make_algorithm(AlgorithmKind::kYkd, self, initial);
  };
  Encoder enc;
  EXPECT_THROW(desc.encode_body(enc, kFrameVersion), std::invalid_argument);

  SweepSpec sweep;
  SweepCase c;
  c.algorithm = "custom";
  c.spec = desc.spec;
  sweep.cases.push_back(c);
  CoordinatorOptions options;
  options.local_jobs = 1;
  EXPECT_THROW(Coordinator(sweep, options), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Loopback coordinator/worker systems
// ---------------------------------------------------------------------------

/// In-process worker on its own thread, reaped on scope exit.
class WorkerThread {
 public:
  explicit WorkerThread(WorkerOptions options) : options_(options) {
    options_.stop = &stop_;
    thread_ = std::thread([this] { exit_ = run_worker(options_); });
  }
  ~WorkerThread() {
    stop_.store(true);
    if (thread_.joinable()) thread_.join();
  }
  WorkerExit exit_code() {
    if (thread_.joinable()) thread_.join();
    return exit_;
  }
  void request_stop() { stop_.store(true); }

 private:
  WorkerOptions options_;
  std::atomic<bool> stop_{false};
  std::thread thread_;
  WorkerExit exit_ = WorkerExit::kStopped;
};

TEST(FabricSystem, TwoWorkerSweepMatchesInProcessFingerprint) {
  SweepSpec spec = small_sweep();
  NullProgress quiet;
  spec.progress = &quiet;

  SweepSpec serial = spec;
  serial.jobs = 2;
  const SweepResult expected = run_sweep(serial);

  CoordinatorOptions options;
  options.local_jobs = 1;  // scouts cascading cases; shares the unit pool
  options.heartbeat_ms = 100;
  Coordinator coordinator(spec, options);

  WorkerOptions worker;
  worker.port = coordinator.port();
  worker.slots = 2;
  WorkerThread first(worker);
  WorkerThread second(worker);

  const SweepResult distributed = coordinator.run();
  EXPECT_EQ(first.exit_code(), WorkerExit::kShutdown);
  EXPECT_EQ(second.exit_code(), WorkerExit::kShutdown);

  // The deterministic results document -- the bytes the fingerprint
  // hashes -- must be identical to the single-host run's.
  EXPECT_EQ(manifest_results_json(spec, distributed),
            manifest_results_json(spec, expected));
  EXPECT_EQ(results_fingerprint(spec, distributed),
            results_fingerprint(spec, expected));

  EXPECT_TRUE(distributed.fabric.used);
  EXPECT_EQ(distributed.fabric.workers_connected, 2u);
  EXPECT_EQ(distributed.fabric.workers_died, 0u);
  EXPECT_GT(distributed.fabric.units_issued, 0u);
  // Remote workers really participated.
  std::uint64_t remote_units = 0;
  for (const FabricWorkerTelemetry& w : distributed.fabric.workers) {
    if (w.peer != "local") remote_units += w.units_done;
  }
  EXPECT_GT(remote_units, 0u);

  // The coordinator aggregated metrics into the manifest's observability
  // block: scheduling counters from its own process at minimum, and since
  // the sweep executed simulation somewhere, simulation counters too
  // (either locally or folded from worker heartbeats).
  EXPECT_FALSE(distributed.metrics.empty());
  std::uint64_t issued = 0;
  for (const auto& [name, value] : distributed.metrics.counters) {
    if (name == "fabric.units_issued") issued = value;
  }
  EXPECT_GT(issued, 0u);
}

TEST(FabricSystem, SilentWorkerDeathTriggersReissueWithIdenticalResults) {
  SweepSpec spec = small_sweep();
  NullProgress quiet;
  spec.progress = &quiet;

  const SweepResult expected = run_sweep(spec);

  CoordinatorOptions options;
  options.local_jobs = 1;
  options.heartbeat_ms = 100;  // silence window: max(5x100, 2000) = 2s
  Coordinator coordinator(spec, options);

  // This worker completes one unit, then falls silent while still holding
  // leases -- the only death signal is missing heartbeats.
  WorkerOptions dying;
  dying.port = coordinator.port();
  dying.slots = 2;
  dying.die_after_units = 1;
  WorkerThread casualty(dying);

  const SweepResult distributed = coordinator.run();
  casualty.request_stop();
  EXPECT_EQ(casualty.exit_code(), WorkerExit::kDied);

  // The sweep can only have drained by re-issuing the casualty's units.
  EXPECT_GE(distributed.fabric.units_reissued, 1u);
  EXPECT_EQ(manifest_results_json(spec, distributed),
            manifest_results_json(spec, expected));
}

TEST(FabricSystem, DuplicateLateResultsAreDropped) {
  SweepSpec spec;
  spec.min_shard_runs = 8;
  SweepCase only;
  only.spec = small_case(RunMode::kFreshStart);
  spec.cases.push_back(only);
  NullProgress quiet;
  spec.progress = &quiet;

  const SweepResult expected = run_sweep(spec);

  CoordinatorOptions options;
  options.local_jobs = 0;  // dispatch-only: every unit goes to the client
  options.heartbeat_ms = 100;
  Coordinator coordinator(spec, options);

  // A hand-rolled protocol client that answers every lease TWICE.
  std::thread client([port = coordinator.port()] {
    Socket socket = connect_to("127.0.0.1", port);
    HelloFrame hello;
    hello.coordinator = false;
    hello.slots = 1;
    socket.send_frame(encode_frame(Frame{hello}));
    const auto reply = socket.recv_frame(kMaxFrameBytes);
    ASSERT_TRUE(reply.has_value());
    const Frame reply_frame = decode_frame(*reply);
    const auto& coord = std::get<HelloFrame>(reply_frame);
    ASSERT_TRUE(coord.coordinator);
    socket.set_recv_timeout_ms(5000);
    for (;;) {
      std::optional<std::vector<std::byte>> payload;
      try {
        payload = socket.recv_frame(kMaxFrameBytes);
      } catch (const SocketError&) {
        break;
      }
      if (!payload.has_value()) break;
      Frame incoming = decode_frame(*payload);
      if (const LeaseFrame* lease = std::get_if<LeaseFrame>(&incoming)) {
        ResultFrame result;
        result.unit_id = lease->unit_id;
        result.result =
            execute_unit(coord.cases[lease->case_index].spec, *lease);
        const std::vector<std::byte> frame =
            encode_frame(Frame{result});
        socket.send_frame(frame);
        socket.send_frame(frame);  // the late straggler duplicate
      } else if (std::get_if<ShutdownFrame>(&incoming) != nullptr) {
        break;
      }
    }
  });

  const SweepResult distributed = coordinator.run();
  client.join();

  EXPECT_GE(distributed.fabric.duplicate_results, 1u);
  EXPECT_EQ(manifest_results_json(spec, distributed),
            manifest_results_json(spec, expected));
}

TEST(FabricSystem, StragglerResultDoesNotDoubleMergeReissuedUnit) {
  // Regression: a straggler result arriving for a unit the lease reaper
  // already put back on the pending queue marks the unit done while its
  // id still sits queued.  That stale queue entry must be skipped (lazy
  // delete), never re-leased -- re-granting it would execute and merge
  // the unit twice and finalize the case with a shard missing, breaking
  // the bit-identical fingerprint.
  SweepSpec spec;
  spec.min_shard_runs = 8;
  SweepCase only;
  only.spec = small_case(RunMode::kFreshStart);
  only.spec.runs = 16;  // exactly two units
  spec.cases.push_back(only);
  NullProgress quiet;
  spec.progress = &quiet;

  const SweepResult expected = run_sweep(spec);

  CoordinatorOptions options;
  options.local_jobs = 0;  // dispatch-only: every unit goes to the client
  options.heartbeat_ms = 100;
  options.lease_ms = 150;
  Coordinator coordinator(spec, options);

  // A protocol client that gets both units up front, answers the first
  // only after its lease expired and the reaper re-queued both (a
  // straggler), and sits on the other original lease.  The grant that
  // follows the straggler result then reads the head of the re-queued
  // pending queue -- the just-completed unit's stale entry -- while the
  // other unit is still unfinished.  Re-issued leases (a unit id seen
  // before) are answered immediately, so a buggy re-grant of the done
  // unit produces a mid-sweep duplicate merge instead of a post-drain
  // no-op.
  std::thread client([port = coordinator.port()] {
    Socket socket = connect_to("127.0.0.1", port);
    HelloFrame hello;
    hello.coordinator = false;
    hello.slots = 1;
    socket.send_frame(encode_frame(Frame{hello}));
    const auto reply = socket.recv_frame(kMaxFrameBytes);
    ASSERT_TRUE(reply.has_value());
    const Frame reply_frame = decode_frame(*reply);
    const auto& coord = std::get<HelloFrame>(reply_frame);
    ASSERT_TRUE(coord.coordinator);
    socket.set_recv_timeout_ms(5000);
    std::vector<std::uint64_t> seen;
    bool answered_first = false;
    for (;;) {
      std::optional<std::vector<std::byte>> payload;
      try {
        payload = socket.recv_frame(kMaxFrameBytes);
      } catch (const SocketError&) {
        break;
      }
      if (!payload.has_value()) break;
      Frame incoming = decode_frame(*payload);
      if (const LeaseFrame* lease = std::get_if<LeaseFrame>(&incoming)) {
        const bool reissued =
            std::find(seen.begin(), seen.end(), lease->unit_id) != seen.end();
        seen.push_back(lease->unit_id);
        if (!reissued) {
          if (answered_first) continue;  // stall on other original leases
          answered_first = true;
          // Outlive the lease deadline plus a reap cycle.
          std::this_thread::sleep_for(std::chrono::milliseconds(400));
        }
        ResultFrame result;
        result.unit_id = lease->unit_id;
        result.result =
            execute_unit(coord.cases[lease->case_index].spec, *lease);
        try {
          socket.send_frame(encode_frame(Frame{result}));
        } catch (const SocketError&) {
          break;  // coordinator drained and hung up mid-straggle
        }
      } else if (std::get_if<ShutdownFrame>(&incoming) != nullptr) {
        break;
      }
    }
  });

  const SweepResult distributed = coordinator.run();
  client.join();

  EXPECT_GE(distributed.fabric.units_reissued, 1u);
  EXPECT_EQ(manifest_results_json(spec, distributed),
            manifest_results_json(spec, expected));
  EXPECT_EQ(results_fingerprint(spec, distributed),
            results_fingerprint(spec, expected));
}

TEST(FabricSystem, PreHandshakeFailuresExhaustConnectBudget) {
  // Regression: a coordinator that never completes the hello exchange
  // must drain the worker's connect-attempt budget; previously every
  // dropped handshake re-armed the budget and the worker reconnected
  // forever instead of exiting kConnectFailed.
  Listener listener(0);
  std::atomic<bool> accepting{true};
  std::thread rejecter([&listener, &accepting] {
    while (accepting.load()) {
      try {
        // Accept and immediately drop: the worker's hello is never
        // answered, so its session ends before the handshake completes.
        (void)listener.accept(50);
      } catch (const SocketError&) {
        break;
      }
    }
  });

  WorkerOptions options;
  options.port = listener.port();
  options.slots = 1;
  options.max_connect_attempts = 3;
  options.backoff_initial_ms = 10;
  options.backoff_max_ms = 20;
  // Watchdog so a regression fails as kStopped instead of hanging.
  std::atomic<bool> stop{false};
  options.stop = &stop;
  std::thread watchdog([&stop] {
    for (int i = 0; i < 500 && !stop.load(); ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    stop.store(true);
  });

  const WorkerExit exit_code = run_worker(options);
  stop.store(true);
  accepting.store(false);
  watchdog.join();
  rejecter.join();
  EXPECT_EQ(exit_code, WorkerExit::kConnectFailed);
}

TEST(FabricSystem, CoordinatorAloneBehavesLikeRunSweep) {
  SweepSpec spec = small_sweep();
  NullProgress quiet;
  spec.progress = &quiet;

  const SweepResult expected = run_sweep(spec);

  CoordinatorOptions options;
  options.local_jobs = 2;
  Coordinator coordinator(spec, options);
  const SweepResult alone = coordinator.run();

  EXPECT_EQ(manifest_results_json(spec, alone),
            manifest_results_json(spec, expected));
  EXPECT_EQ(alone.fabric.workers_connected, 0u);
}

}  // namespace
}  // namespace dynvote::fabric
