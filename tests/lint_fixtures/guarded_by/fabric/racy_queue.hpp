// Guarded-by violations: a plain unguarded touch and a touch after the
// flow-aware walker saw the lock released.
#pragma once

#include <deque>
#include <mutex>

namespace dynvote::fixture {

class RacyQueue {
 public:
  void push(int value) {
    queue_.push_back(value);  // no lock at all
  }

  void relock_gap() {
    std::unique_lock<std::mutex> lock(mutex_);
    queue_.push_back(1);  // held: fine
    lock.unlock();
    queue_.push_back(2);  // released: the race dvlint must catch
  }

 private:
  std::mutex mutex_;
  std::deque<int> queue_;  // dvlint: guarded_by(mutex_)
};

}  // namespace dynvote::fixture
