// Clean guarded-by corpus: every touch of an annotated field happens under
// the right lock, through a requires_lock helper, in a ctor/dtor, or via
// the flow-aware unlock/relock transitions.
#pragma once

#include <deque>
#include <mutex>

namespace dynvote::fixture {

class LockedQueue {
 public:
  LockedQueue() {
    depth_ = 1;  // constructor: no concurrent access can exist yet
  }

  void push(int value) {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(value);
    ++depth_;
  }

  int drain() {
    std::unique_lock<std::mutex> lock(mutex_);
    int total = 0;
    while (!queue_.empty()) {
      const int value = queue_.front();
      queue_.pop_front();
      lock.unlock();
      total += expensive_transform(value);  // unlocked: no guarded touches
      lock.lock();
      ++depth_;  // re-held after the explicit relock
    }
    return total + drained_locked();
  }

  void set_bound(int bound) {
    std::unique_lock<std::mutex> lock(mutex_, std::defer_lock);
    lock.lock();  // defer_lock starts inactive; explicit lock() arms it
    bound_ = bound;
  }

 private:
  static int expensive_transform(int value) { return value * 2; }

  int drained_locked() {  // dvlint: requires_lock(mutex_)
    return depth_ + bound_;
  }

  std::mutex mutex_;
  std::deque<int> queue_;  // dvlint: guarded_by(mutex_)
  int depth_ = 0;          // dvlint: guarded_by(mutex_)
  int bound_ = 0;          // dvlint: guarded_by(mutex_)
};

/// A guarded local: annotated at its declaration, touched under its mutex.
inline int sum_under_lock(std::mutex& m) {
  int shared_total = 0;  // dvlint: guarded_by(m)
  std::lock_guard<std::mutex> lock(m);
  shared_total += 1;
  return shared_total;
}

}  // namespace dynvote::fixture
