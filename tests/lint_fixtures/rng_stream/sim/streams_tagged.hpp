// Clean rng-stream corpus: tags come from the k*StreamTag registry with
// unique values, child_seed call sites pass a named tag, and the one raw
// seed carries its whitelist annotation.
#pragma once

#include <cstdint>

namespace dynvote::fixture {

inline constexpr std::uint64_t kAlphaStreamTag = 0x101u;
inline constexpr std::uint64_t kBetaStreamTag = 0x102u;

inline std::uint64_t child_seed(std::uint64_t base, std::uint64_t tag) {
  return base * 0x9E3779B97F4A7C15ull + tag;
}

struct Rng {
  explicit Rng(std::uint64_t seed) : state(seed) {}
  std::uint64_t state = 0;
};

inline Rng make_alpha(std::uint64_t base) {
  return Rng(child_seed(base, kAlphaStreamTag));
}

inline Rng make_beta(std::uint64_t base) {
  Rng beta_rng(child_seed(base, kBetaStreamTag));
  return beta_rng;
}

inline Rng make_pinned() {
  Rng pinned_rng(0x5EEDu);  // dvlint: raw-seed(frozen pre-registry baseline)
  return pinned_rng;
}

}  // namespace dynvote::fixture
