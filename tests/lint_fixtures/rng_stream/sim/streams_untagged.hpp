// rng-stream violations: a literal tag, a tag missing from the registry, a
// registry value collision with streams_tagged.hpp, and a raw Rng seed
// with no whitelist annotation.
#pragma once

#include <cstdint>

namespace dynvote::fixture {

// Same value as kAlphaStreamTag (0x101u): the two child streams would be
// identical sequences.
inline constexpr std::uint64_t kCloneStreamTag = 257u;

struct UntaggedRng {
  explicit UntaggedRng(std::uint64_t seed) : state(seed) {}
  std::uint64_t state = 0;
};

inline std::uint64_t literal_tag(std::uint64_t base) {
  return child_seed(base, 0x7777u);  // literal: registry cannot vouch for it
}

inline std::uint64_t ghost_tag(std::uint64_t base) {
  return child_seed(base, kGhostStreamTag);  // never declared anywhere
}

inline UntaggedRng make_schedule(std::uint64_t config_seed) {
  UntaggedRng schedule_rng(config_seed);  // raw seed, no annotation
  return schedule_rng;
}

}  // namespace dynvote::fixture
