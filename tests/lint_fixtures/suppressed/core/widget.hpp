// Fixture: the snapshot_missing defect again, but the sibling
// suppressions.txt silences it.  With that file loaded, dvlint must report
// zero findings and two suppressions.
#pragma once

#include <cstdint>

namespace fixture {

class Widget {
 public:
  void save(Encoder& enc) const { enc.put_varint(count_); }
  void load(Decoder& dec) { count_ = dec.get_varint(); }

 private:
  std::uint64_t count_ = 0;
  std::uint64_t high_water_ = 0;
};

}  // namespace fixture
