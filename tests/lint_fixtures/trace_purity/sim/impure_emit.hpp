// Fixture: emission sites whose arguments perturb the run -- an RNG draw,
// an increment, an assignment, and a container mutator inside DV_OBS_* /
// DV_TRACE_* argument lists.  dvlint must flag all four: the trace-off and
// trace-on executions would diverge.
#pragma once

#include <cstdint>
#include <vector>

#define DV_OBS_INC(name) (void)(name)
#define DV_OBS_RECORD(name, value) (void)(value)
#define DV_TRACE_INSTANT(name, a0, a1) (void)(a1)
#define DV_TRACE_SPAN(name, a0, a1) (void)(a1)

namespace fixture {

class ImpureEmitter {
 public:
  void observe_round() {
    DV_OBS_RECORD("sim.noise", rng.next());
    DV_TRACE_INSTANT("round", ++rounds_, 0);
    DV_TRACE_SPAN("window", rounds_ = 0, 1);
    DV_OBS_RECORD("sim.backlog", (backlog_.clear(), 0));
  }

 private:
  struct Rng {
    std::uint64_t next() { return 4; }
  };

  Rng rng;
  std::uint64_t rounds_ = 0;
  std::vector<std::uint64_t> backlog_;
};

}  // namespace fixture
