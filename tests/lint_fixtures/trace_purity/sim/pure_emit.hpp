// Fixture: emission sites whose arguments are pure reads -- counters from
// plain members, a span labeled from a const accessor -- plus one impure
// argument silenced by the documented annotation.  dvlint must report
// nothing here.
#pragma once

#include <cstdint>

#define DV_OBS_INC(name) (void)(name)
#define DV_OBS_RECORD(name, value) (void)(value)
#define DV_TRACE_INSTANT(name, a0, a1) (void)(a1)

namespace fixture {

class PureEmitter {
 public:
  void observe_round() {
    DV_OBS_INC("sim.rounds");
    DV_OBS_RECORD("sim.round_cost", rounds_ * 3);
    DV_TRACE_INSTANT("view_installed", view_id(), rounds_ + 1);
    // The argument mutates, but the site documents why that is safe
    // here (fixture exercises the opt-out path).
    DV_TRACE_INSTANT("annotated", ++samples_, 0);  // dvlint: ignore(trace-purity)
  }

  std::uint64_t view_id() const { return view_; }

 private:
  std::uint64_t samples_ = 0;
  std::uint64_t rounds_ = 0;
  std::uint64_t view_ = 0;
};

}  // namespace fixture
