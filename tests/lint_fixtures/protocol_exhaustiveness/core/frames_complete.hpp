// Clean protocol-exhaustiveness corpus: every switch over the wire enum
// names every enumerator, and the one default present throws (the
// decoder's unknown-byte rejection, which stays legal).
#pragma once

#include <stdexcept>

namespace dynvote::fixture {

enum class PacketKind : unsigned char {  // dvlint: wire_enum
  kOpen = 1,
  kData = 2,
  kClose = 3,
};

inline const char* packet_name(PacketKind kind) {
  switch (kind) {
    case PacketKind::kOpen:
      return "open";
    case PacketKind::kData:
      return "data";
    case PacketKind::kClose:
      return "close";
  }
  return "?";
}

inline int packet_cost(PacketKind kind) {
  switch (kind) {
    case PacketKind::kOpen:
      return 3;
    case PacketKind::kData:
      return 1;
    case PacketKind::kClose:
      return 2;
    default:
      throw std::runtime_error("unknown packet kind on the wire");
  }
}

/// Switches over non-wire enums are out of scope, defaults and all.
enum class LocalColor { kRed, kBlue };

inline int color_rank(LocalColor color) {
  switch (color) {
    case LocalColor::kRed:
      return 0;
    default:
      return 1;
  }
}

}  // namespace dynvote::fixture
