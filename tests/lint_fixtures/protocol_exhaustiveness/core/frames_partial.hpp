// Protocol-exhaustiveness violations: a switch that misses an enumerator
// and a switch whose non-throwing default would swallow new frame types.
#pragma once

namespace dynvote::fixture {

enum class SignalKind : unsigned char {  // dvlint: wire_enum
  kPing = 1,
  kPong = 2,
  kBye = 3,
};

inline const char* signal_name(SignalKind kind) {
  switch (kind) {
    case SignalKind::kPing:
      return "ping";
    case SignalKind::kPong:
      return "pong";
  }  // kBye missing: adding a frame type must fail lint, not fall through
  return "?";
}

inline int signal_cost(SignalKind kind) {
  switch (kind) {
    case SignalKind::kPing:
      return 1;
    case SignalKind::kPong:
      return 1;
    case SignalKind::kBye:
      return 0;
    default:
      return -1;  // swallows future enumerators instead of throwing
  }
}

}  // namespace dynvote::fixture
