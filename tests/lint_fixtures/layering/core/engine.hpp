// Fixture: include-layering violations.  core/ sits below sim/ in the DAG,
// and nothing in the library may include bench/.  The util/ include is the
// only legal one.
#pragma once

#include "bench/harness.hpp"
#include "sim/driver.hpp"
#include "util/rng.hpp"

namespace fixture {

class Engine {};

}  // namespace fixture
