// Fixture: one of each determinism hazard in a result-affecting directory.
//   1. unseeded libc randomness            (rand)
//   2. a wall-clock read                   (time)
//   3. a pointer-keyed ordered container   (std::map<const Widget*, ...>)
//   4. range-for over an unordered map     (samples)
#include <cstdlib>
#include <ctime>
#include <map>
#include <unordered_map>

namespace fixture {

struct Widget {};

double noisy_mean() {
  const int jitter = rand();
  const auto stamp = time(nullptr);

  std::map<const Widget*, int> by_address;

  std::unordered_map<int, double> samples;
  double total = 0.0;
  for (const auto& [id, value] : samples) {
    total += value;
  }
  return total + jitter + static_cast<double>(stamp) +
         static_cast<double>(by_address.size());
}

}  // namespace fixture
