// Bounded-decode violations: a reserve from a decoded count with no
// remaining-bytes bound, and a resize fed by a decoder getter directly.
#pragma once

#include <cstdint>
#include <vector>

namespace dynvote::fixture {

struct Decoder;

inline std::vector<std::uint64_t> decode_values(Decoder& dec) {
  const std::uint64_t n = dec.get_varint();
  std::vector<std::uint64_t> out;
  out.reserve(static_cast<std::size_t>(n));  // unbounded: 10 varint bytes
                                             // can demand gigabytes
  for (std::uint64_t i = 0; i < n; ++i) out.push_back(dec.get_varint());
  return out;
}

inline std::vector<std::uint8_t> decode_blob(Decoder& dec) {
  std::vector<std::uint8_t> blob;
  blob.resize(dec.get_varint());  // decoded length straight into resize
  return blob;
}

}  // namespace dynvote::fixture
