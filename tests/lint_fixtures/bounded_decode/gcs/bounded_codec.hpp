// Clean bounded-decode corpus: every reserve()/resize() fed by a decoded
// count first bounds the count by the decoder's remaining bytes, so a
// hostile length prefix fails in the decoder instead of the allocator.
#pragma once

#include <cstdint>
#include <vector>

namespace dynvote::fixture {

struct Decoder;
struct DecodeError;

inline std::vector<std::uint64_t> decode_values(Decoder& dec) {
  const std::uint64_t count = dec.get_varint();
  if (count > dec.remaining()) {
    throw DecodeError("value count exceeds the frame body");
  }
  std::vector<std::uint64_t> out;
  out.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) out.push_back(dec.get_varint());
  return out;
}

inline std::vector<std::uint8_t> decode_bitmap(Decoder& dec) {
  const std::uint64_t bits = dec.get_varint();
  if ((bits + 7) / 8 > dec.remaining()) {
    throw DecodeError("bitmap larger than the frame body");
  }
  std::vector<std::uint8_t> bytes;
  bytes.resize(static_cast<std::size_t>((bits + 7) / 8));
  return bytes;
}

}  // namespace dynvote::fixture
