// Fixture: a snapshot decode path that asserts on malformed input instead
// of throwing DecodeError.  Corrupted bytes are an input error, so dvlint
// must flag the DV_ASSERT inside load().
#include <cstdint>

namespace fixture {

class Codec {
 public:
  void load(Decoder& dec);

 private:
  std::uint64_t value_ = 0;
};

void Codec::load(Decoder& dec) {
  DV_ASSERT(dec.bytes_remaining() >= 8);
  value_ = dec.get_varint();
}

}  // namespace fixture
