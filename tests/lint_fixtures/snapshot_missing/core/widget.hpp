// Fixture: a snapshot class with an unserialized mutable field.
// `high_water_` is neither written by save() nor restored by load() and has
// no transient annotation, so dvlint must flag it on both sides.
#pragma once

#include <cstdint>

namespace fixture {

class Widget {
 public:
  void save(Encoder& enc) const { enc.put_varint(count_); }
  void load(Decoder& dec) { count_ = dec.get_varint(); }

 private:
  std::uint64_t count_ = 0;
  std::uint64_t high_water_ = 0;
};

}  // namespace fixture
