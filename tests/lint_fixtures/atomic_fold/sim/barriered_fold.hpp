// Fixture: the same fold shape with the join barrier established by the
// caller; the documented annotation must silence the finding.
#pragma once

#include <atomic>
#include <cstdint>

namespace fixture {

class BarrieredShardStats {
 public:
  // The sweep joins every worker before calling merge(), so this read
  // cannot race a writer.
  void merge(const BarrieredShardStats& shard) {
    total_ += shard.hits_.load();  // dvlint: ignore(atomic-fold)
  }

 private:
  std::atomic<std::uint64_t> hits_{0};
  std::uint64_t total_ = 0;
};

}  // namespace fixture
