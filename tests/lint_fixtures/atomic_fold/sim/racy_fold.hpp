// Fixture: a shard-stats fold that reads a live std::atomic counter.
// Shard results merge after the worker pool joins, so fold inputs must be
// plain values; dvlint must flag the atomic read inside merge().
#pragma once

#include <atomic>
#include <cstdint>

namespace fixture {

class RacyShardStats {
 public:
  void merge(const RacyShardStats& shard) {
    total_ += shard.hits_.load();
  }

 private:
  std::atomic<std::uint64_t> hits_{0};
  std::uint64_t total_ = 0;
};

}  // namespace fixture
