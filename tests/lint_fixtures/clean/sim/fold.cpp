// Fixture: legitimate uses of otherwise-flagged constructs, silenced with
// the documented annotations.  dvlint must report nothing here.
#include <ctime>
#include <unordered_map>

namespace fixture {

// Addition commutes, so hash-order traversal cannot change the result.
double total_weight(const std::unordered_map<int, double>& weights) {
  double total = 0.0;
  for (const auto& [id, w] : weights) {  // dvlint: unordered-ok
    total += w;
  }
  return total;
}

// Diagnostic timestamp only; never folded into simulation results.
long log_stamp() {
  return static_cast<long>(time(nullptr));  // dvlint: ignore(determinism)
}

}  // namespace fixture
