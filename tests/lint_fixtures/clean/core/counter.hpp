// Fixture: a fully compliant snapshot class.  Every persistent field is
// referenced by both the save and the load body; the one derived field
// carries a transient annotation.  dvlint must report nothing here.
#pragma once

#include <cstdint>

#include "util/codec.hpp"

namespace fixture {

class Counter {
 public:
  void save(Encoder& enc) const {
    enc.put_varint(total_);
    enc.put_varint(limit_);
  }

  void load(Decoder& dec) {
    total_ = dec.get_varint();
    limit_ = dec.get_varint();
    cache_ = 0;
  }

 private:
  std::uint64_t total_ = 0;
  std::uint64_t limit_ = 0;
  std::uint64_t cache_ = 0;  // dvlint: transient(recomputed lazily)
};

}  // namespace fixture
