// Lexer stress corpus for the determinism check: the raw string literal
// and the backslash-continued comment below both contain rand()/time()
// text that must NOT fire, and the raw string spans lines so one real
// hazard after it proves line accounting survives.
#pragma once

namespace dynvote::fixture {

inline constexpr const char* kLexerDoc = R"(
  rand() srand(42) time(nullptr) drand48()
  hash-order iteration over a std::unordered_map
)";

// This comment continues onto the next physical line via a backslash: \
inline int swallowed() { return rand(); }

inline const char* delimited() { return R"tag(time(")tag"; }

inline int tricky_roll(unsigned seed) {
  if (seed == 0) return rand();  // the one genuine hazard in this file
  return static_cast<int>(seed * 2654435761u);
}

}  // namespace dynvote::fixture
