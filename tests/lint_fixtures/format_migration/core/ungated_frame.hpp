// Fixture: a broken format migration.  `retries_` is written only when the
// envelope version is >= 2, but decode_body() reads it unconditionally --
// against a v1 writer the read consumes bytes that were never produced and
// desynchronizes everything after it.  dvlint must flag the ungated read.
#pragma once

#include <cstdint>

namespace fixture {

class UngatedFrame {
 public:
  void encode_body(Encoder& enc, std::uint64_t version) const {
    enc.put_varint(attempts_);
    if (version >= 2) {
      enc.put_varint(retries_);
    }
  }
  void decode_body(Decoder& dec, std::uint64_t version) {
    attempts_ = dec.get_varint();
    retries_ = dec.get_varint();
  }

 private:
  std::uint64_t attempts_ = 0;
  std::uint64_t retries_ = 0;
};

}  // namespace fixture
