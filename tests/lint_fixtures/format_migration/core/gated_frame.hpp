// Fixture: the correct format-migration shape.  `retries_` was added in
// envelope v2: the save side writes it only under a version gate, and the
// load side reads it under the same gate, defaulting it in the `else`
// branch for v1 writers.  dvlint must stay silent.
#pragma once

#include <cstdint>

namespace fixture {

class GatedFrame {
 public:
  void encode_body(Encoder& enc, std::uint64_t version) const {
    enc.put_varint(attempts_);
    if (version >= 2) {
      enc.put_varint(retries_);
    }
  }
  void decode_body(Decoder& dec, std::uint64_t version) {
    attempts_ = dec.get_varint();
    if (version >= 2) {
      retries_ = dec.get_varint();
    } else {
      retries_ = 0;
    }
  }

 private:
  std::uint64_t attempts_ = 0;
  std::uint64_t retries_ = 0;
};

}  // namespace fixture
