// The trial-by-fire (thesis §2.2): "Each of the algorithms was subjected to
// over 1,310,000 connectivity changes, and none of them demonstrated an
// inconsistency, leaked memory, or crashed."
//
// The default run keeps ctest fast (a few thousand changes per algorithm);
// set DV_SOAK_CHANGES=1310000 to reproduce the thesis-scale soak.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdlib>
#include <memory>
#include <vector>

#include "sim/driver.hpp"
#include "sim/snapshot.hpp"

namespace dynvote {
namespace {

std::size_t soak_changes() {
  const char* raw = std::getenv("DV_SOAK_CHANGES");
  if (raw == nullptr || *raw == '\0') return 4000;
  return static_cast<std::size_t>(std::strtoull(raw, nullptr, 10));
}

class Soak : public ::testing::TestWithParam<AlgorithmKind> {};

TEST_P(Soak, MillionsOfChangesNoInconsistency) {
  const std::size_t total = soak_changes();
  SimulationConfig config;
  config.algorithm = GetParam();
  config.processes = 32;
  config.changes_per_run = 25;
  config.mean_rounds_between_changes = 1.0;
  config.seed = 0x50AC;
  config.check_invariants = true;

  Simulation sim(config);
  while (sim.total_changes() < total) {
    ASSERT_NO_THROW((void)sim.run_once())
        << to_string(GetParam()) << " after " << sim.total_changes()
        << " changes";
  }
  EXPECT_GE(sim.total_changes(), total);
}

// Cascading soak through checkpoints: every N runs the world is serialized,
// torn down, and rebuilt from the snapshot in a brand-new Simulation.  The
// checkpointed cascade must report the same run results and -- the soak's
// currency -- execute exactly as many invariant checks as the baseline that
// never checkpointed.
TEST_P(Soak, CheckpointedCascadeMatchesUninterruptedBaseline) {
  constexpr std::uint64_t kRuns = 30;
  constexpr std::uint64_t kCheckpointEvery = 5;
  SimulationConfig config;
  config.algorithm = GetParam();
  config.processes = 16;
  config.changes_per_run = 6;
  config.mean_rounds_between_changes = 2.0;
  config.seed = 0x50AC;
  config.check_invariants = true;

  Simulation baseline(config);
  std::vector<RunResult> expected;
  for (std::uint64_t r = 0; r < kRuns; ++r) {
    expected.push_back(baseline.run_once());
  }

  auto checkpointed = std::make_unique<Simulation>(config);
  std::vector<RunResult> actual;
  for (std::uint64_t r = 0; r < kRuns; ++r) {
    if (r > 0 && r % kCheckpointEvery == 0) {
      const std::vector<std::byte> bytes = save_snapshot(*checkpointed);
      checkpointed = std::make_unique<Simulation>(config);
      restore_snapshot(*checkpointed, bytes);
    }
    actual.push_back(checkpointed->run_once());
  }

  EXPECT_EQ(actual, expected);
  EXPECT_EQ(checkpointed->total_changes(), baseline.total_changes());
  EXPECT_EQ(checkpointed->invariant_checks(), baseline.invariant_checks());
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, Soak,
                         ::testing::ValuesIn(all_algorithm_kinds()),
                         [](const ::testing::TestParamInfo<AlgorithmKind>& p) {
                           std::string name(to_string(p.param));
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace dynvote
