// The trial-by-fire (thesis §2.2): "Each of the algorithms was subjected to
// over 1,310,000 connectivity changes, and none of them demonstrated an
// inconsistency, leaked memory, or crashed."
//
// The default run keeps ctest fast (a few thousand changes per algorithm);
// set DV_SOAK_CHANGES=1310000 to reproduce the thesis-scale soak.
#include <gtest/gtest.h>

#include <cstdlib>

#include "sim/driver.hpp"

namespace dynvote {
namespace {

std::size_t soak_changes() {
  const char* raw = std::getenv("DV_SOAK_CHANGES");
  if (raw == nullptr || *raw == '\0') return 4000;
  return static_cast<std::size_t>(std::strtoull(raw, nullptr, 10));
}

class Soak : public ::testing::TestWithParam<AlgorithmKind> {};

TEST_P(Soak, MillionsOfChangesNoInconsistency) {
  const std::size_t total = soak_changes();
  SimulationConfig config;
  config.algorithm = GetParam();
  config.processes = 32;
  config.changes_per_run = 25;
  config.mean_rounds_between_changes = 1.0;
  config.seed = 0x50AC;
  config.check_invariants = true;

  Simulation sim(config);
  while (sim.total_changes() < total) {
    ASSERT_NO_THROW((void)sim.run_once())
        << to_string(GetParam()) << " after " << sim.total_changes()
        << " changes";
  }
  EXPECT_GE(sim.total_changes(), total);
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, Soak,
                         ::testing::ValuesIn(all_algorithm_kinds()),
                         [](const ::testing::TestParamInfo<AlgorithmKind>& info) {
                           std::string name(to_string(info.param));
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace dynvote
