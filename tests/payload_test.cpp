// Wire round-trips for every protocol payload, plus malformed-input
// rejection and the message envelope.
#include <gtest/gtest.h>

#include "core/message.hpp"
#include "core/payload.hpp"

namespace dynvote {
namespace {

Session make_session(SessionNumber number, std::initializer_list<ProcessId> ids) {
  return Session{number, ProcessSet(64, ids)};
}

template <typename T>
std::shared_ptr<const T> round_trip(const T& payload) {
  const auto bytes = encode_payload(payload);
  const PayloadPtr decoded = decode_payload(bytes);
  EXPECT_EQ(decoded->type(), payload.type());
  EXPECT_EQ(decoded->view_id, payload.view_id);
  return std::static_pointer_cast<const T>(decoded);
}

TEST(Payload, StateExchangeRoundTrip) {
  StateExchangePayload p;
  p.view_id = 42;
  p.session_number = 17;
  p.last_primary = make_session(9, {0, 1, 2});
  p.ambiguous = {make_session(11, {0, 1}), make_session(12, {0, 1, 2, 3})};
  p.last_formed.assign(4, make_session(9, {0, 1, 2}));
  p.last_formed[3] = make_session(5, {0, 3});

  const auto decoded = round_trip(p);
  EXPECT_EQ(decoded->session_number, 17u);
  EXPECT_EQ(decoded->last_primary, p.last_primary);
  EXPECT_EQ(decoded->ambiguous, p.ambiguous);
  EXPECT_EQ(decoded->last_formed, p.last_formed);
}

TEST(Payload, AttemptRoundTrip) {
  AttemptPayload p;
  p.view_id = 7;
  p.proposal = make_session(13, {1, 5, 9});
  EXPECT_EQ(round_trip(p)->proposal, p.proposal);
}

TEST(Payload, GcRoundRoundTrip) {
  GcRoundPayload p;
  p.view_id = 3;
  p.formed_number = 999;
  EXPECT_EQ(round_trip(p)->formed_number, 999u);
}

TEST(Payload, Mr1pPendingRoundTrip) {
  Mr1pPendingPayload p;
  p.view_id = 5;
  p.has_pending = true;
  p.pending = make_session(21, {2, 3});
  p.num = 4;
  p.status = Mr1pStatus::kAttempt;
  const auto d = round_trip(p);
  EXPECT_TRUE(d->has_pending);
  EXPECT_EQ(d->pending, p.pending);
  EXPECT_EQ(d->num, 4u);
  EXPECT_EQ(d->status, Mr1pStatus::kAttempt);
}

TEST(Payload, Mr1pReplyBatchRoundTrip) {
  Mr1pReplyPayload p;
  p.view_id = 6;
  p.replies.push_back({make_session(1, {0, 1}), Mr1pVerdict::kFormed, 0});
  p.replies.push_back({make_session(2, {2, 3}), Mr1pVerdict::kStatusSent, 1});
  p.replies.push_back({make_session(3, {4}), Mr1pVerdict::kAborted, 0});
  EXPECT_EQ(round_trip(p)->replies, p.replies);
}

TEST(Payload, Mr1pResolveProposeAttemptRoundTrip) {
  Mr1pResolvePayload r;
  r.view_id = 8;
  r.about = make_session(4, {0, 2});
  r.call = Mr1pVerdict::kStatusTryFail;
  EXPECT_EQ(round_trip(r)->call, Mr1pVerdict::kStatusTryFail);

  Mr1pProposePayload prop;
  prop.view_id = 9;
  prop.proposal = make_session(10, {0, 1, 2});
  EXPECT_EQ(round_trip(prop)->proposal, prop.proposal);

  Mr1pAttemptPayload att;
  att.view_id = 10;
  att.proposal = make_session(10, {0, 1, 2});
  EXPECT_EQ(round_trip(att)->proposal, att.proposal);
}

TEST(Payload, UnknownTypeByteRejected) {
  std::vector<std::byte> bytes{std::byte{0xEE}, std::byte{0}};
  EXPECT_THROW(decode_payload(bytes), DecodeError);
}

TEST(Payload, TruncatedBodyRejected) {
  AttemptPayload p;
  p.proposal = make_session(13, {1, 5});
  auto bytes = encode_payload(p);
  bytes.resize(bytes.size() / 2);
  EXPECT_THROW(decode_payload(bytes), DecodeError);
}

TEST(Payload, TrailingGarbageRejected) {
  GcRoundPayload p;
  auto bytes = encode_payload(p);
  bytes.push_back(std::byte{0});
  EXPECT_THROW(decode_payload(bytes), DecodeError);
}

TEST(Payload, BadVerdictRejected) {
  Mr1pResolvePayload r;
  r.about = make_session(4, {0});
  r.call = Mr1pVerdict::kStatusTryFail;
  auto bytes = encode_payload(r);
  bytes.back() = std::byte{0x63};  // the call byte is encoded last
  EXPECT_THROW(decode_payload(bytes), DecodeError);
}

TEST(Payload, WireSizeMatchesEncoding) {
  StateExchangePayload p;
  p.last_primary = make_session(9, {0, 1, 2});
  p.last_formed.assign(64, make_session(9, {0, 1, 2}));
  EXPECT_EQ(payload_wire_size(p), encode_payload(p).size());
}

TEST(Payload, StateSizeAt64ProcessesIsUnderTwoKilobytes) {
  // The thesis: "message sizes can typically be constrained to two
  // kilobytes or less" for 64 processes.  A full state payload: last
  // primary, a typical handful of ambiguous sessions, and all 64 lastFormed
  // entries.
  StateExchangePayload p;
  p.session_number = 1000;
  p.last_primary = Session{999, ProcessSet::full(64)};
  for (int i = 0; i < 4; ++i) {
    p.ambiguous.push_back(Session{1000u + i, ProcessSet::full(64)});
  }
  p.last_formed.assign(64, Session{999, ProcessSet::full(64)});
  EXPECT_LE(payload_wire_size(p), 2048u);
}

TEST(Message, SerializeParseRoundTrip) {
  Message m = Message::from_text("hello world");
  auto att = std::make_shared<AttemptPayload>();
  att->view_id = 12;
  att->proposal = make_session(3, {0, 1});
  m.protocol = att;

  const auto bytes = m.serialize();
  const Message parsed = Message::parse(bytes);
  EXPECT_EQ(parsed.app_data, m.app_data);
  ASSERT_TRUE(parsed.has_protocol());
  EXPECT_EQ(parsed.protocol->type(), PayloadType::kAttempt);
  EXPECT_EQ(
      static_cast<const AttemptPayload&>(*parsed.protocol).proposal,
      att->proposal);
}

TEST(Message, EmptyMessageRoundTrip) {
  const Message empty = Message::empty();
  const Message parsed = Message::parse(empty.serialize());
  EXPECT_TRUE(parsed.app_data.empty());
  EXPECT_FALSE(parsed.has_protocol());
}

TEST(Message, WireSizeCountsAppAndProtocol) {
  Message m = Message::from_text("abc");
  EXPECT_EQ(m.wire_size(), 4u);  // 3 app bytes + presence byte
  auto gc = std::make_shared<GcRoundPayload>();
  m.protocol = gc;
  EXPECT_EQ(m.wire_size(), 4u + payload_wire_size(*gc));
}

}  // namespace
}  // namespace dynvote
