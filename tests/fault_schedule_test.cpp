// The randomized fault injector: distributional properties, feasibility,
// and determinism.
#include <gtest/gtest.h>

#include "sim/fault_schedule.hpp"
#include "util/assert.hpp"

namespace dynvote {
namespace {

TEST(FaultScheduler, ZeroMeanGivesBackToBackChanges) {
  FaultScheduler sched(1, 0.0);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sched.next_gap(), 0u);
}

TEST(FaultScheduler, GapMeanMatchesTheConfiguredRate) {
  for (double mean : {1.0, 4.0, 12.0}) {
    FaultScheduler sched(42, mean);
    const int kSamples = 20000;
    double total = 0;
    for (int i = 0; i < kSamples; ++i) total += static_cast<double>(sched.next_gap());
    const double observed = total / kSamples;
    EXPECT_NEAR(observed, mean, mean * 0.1 + 0.05) << "mean=" << mean;
  }
}

TEST(FaultScheduler, SameSeedSameSchedule) {
  FaultScheduler a(7, 3.0);
  FaultScheduler b(7, 3.0);
  Topology ta(16), tb(16);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(a.next_gap(), b.next_gap());
    const ConnectivityChange ca = a.next_change(ta);
    const ConnectivityChange cb = b.next_change(tb);
    EXPECT_EQ(ca.kind, cb.kind);
    EXPECT_EQ(ca.component_a, cb.component_a);
    EXPECT_EQ(ca.component_b, cb.component_b);
    EXPECT_EQ(ca.moved, cb.moved);
    // Apply to keep the topologies evolving identically.
    if (ca.kind == ConnectivityChange::Kind::kPartition) {
      ta.split(ca.component_a, ca.moved);
      tb.split(cb.component_a, cb.moved);
    } else {
      ta.merge(ca.component_a, ca.component_b);
      tb.merge(cb.component_a, cb.component_b);
    }
  }
}

TEST(FaultScheduler, FirstChangeOnConnectedTopologyIsAPartition) {
  FaultScheduler sched(99, 1.0);
  Topology topo(8);
  const ConnectivityChange c = sched.next_change(topo);
  EXPECT_EQ(c.kind, ConnectivityChange::Kind::kPartition);
  EXPECT_EQ(c.component_a, 0u);
  EXPECT_FALSE(c.moved.empty());
  EXPECT_LT(c.moved.count(), 8u);
}

TEST(FaultScheduler, FullyFragmentedTopologyOnlyMerges) {
  FaultScheduler sched(5, 1.0);
  Topology topo(3);
  topo.split(0, ProcessSet(3, {0}));
  topo.split(0, ProcessSet(3, {1}));
  for (int i = 0; i < 20; ++i) {
    const ConnectivityChange c = sched.next_change(topo);
    EXPECT_EQ(c.kind, ConnectivityChange::Kind::kMerge);
    EXPECT_NE(c.component_a, c.component_b);
    EXPECT_LT(c.component_a, 3u);
    EXPECT_LT(c.component_b, 3u);
  }
}

TEST(FaultScheduler, ChangesAreAlwaysFeasible) {
  FaultScheduler sched(123, 0.5);
  Topology topo(16);
  for (int i = 0; i < 2000; ++i) {
    const ConnectivityChange c = sched.next_change(topo);
    if (c.kind == ConnectivityChange::Kind::kPartition) {
      const ProcessSet& comp = topo.component(c.component_a);
      EXPECT_TRUE(c.moved.is_subset_of(comp));
      EXPECT_GE(c.moved.count(), 1u);
      EXPECT_LT(c.moved.count(), comp.count());
      topo.split(c.component_a, c.moved);
    } else {
      EXPECT_NE(c.component_a, c.component_b);
      topo.merge(c.component_a, c.component_b);
    }
  }
}

TEST(FaultScheduler, SplitSizesCoverTheWholeRange) {
  // "Partitions do not necessarily happen evenly": over many draws from a
  // 16-process component, every moved-count 1..15 should occur.
  std::set<std::size_t> seen;
  FaultScheduler sched(321, 0.0);
  for (int i = 0; i < 2000; ++i) {
    Topology topo(16);
    const ConnectivityChange c = sched.next_change(topo);
    ASSERT_EQ(c.kind, ConnectivityChange::Kind::kPartition);
    seen.insert(c.moved.count());
  }
  EXPECT_EQ(seen.size(), 15u);
}

TEST(FaultScheduler, NegativeMeanRejected) {
  EXPECT_THROW(FaultScheduler(1, -1.0), PreconditionViolation);
}

TEST(FaultScheduler, SingleProcessTopologyRejected) {
  FaultScheduler sched(1, 1.0);
  Topology topo(1);
  EXPECT_THROW(sched.next_change(topo), PreconditionViolation);
}

}  // namespace
}  // namespace dynvote
