// The randomized fault injector: distributional properties, feasibility,
// and determinism -- plus the trace-replay decoder's negative space (a
// malformed schedule must throw DecodeError before any simulation state
// exists, let alone mutates).
#include <gtest/gtest.h>

#include <string>

#include "sim/driver.hpp"
#include "sim/fault_schedule.hpp"
#include "sim/trace_model.hpp"
#include "util/assert.hpp"
#include "util/codec.hpp"

namespace dynvote {
namespace {

TEST(FaultScheduler, ZeroMeanGivesBackToBackChanges) {
  FaultScheduler sched(1, 0.0);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sched.next_gap(), 0u);
}

TEST(FaultScheduler, GapMeanMatchesTheConfiguredRate) {
  for (double mean : {1.0, 4.0, 12.0}) {
    FaultScheduler sched(42, mean);
    const int kSamples = 20000;
    double total = 0;
    for (int i = 0; i < kSamples; ++i) total += static_cast<double>(sched.next_gap());
    const double observed = total / kSamples;
    EXPECT_NEAR(observed, mean, mean * 0.1 + 0.05) << "mean=" << mean;
  }
}

TEST(FaultScheduler, SameSeedSameSchedule) {
  FaultScheduler a(7, 3.0);
  FaultScheduler b(7, 3.0);
  Topology ta(16), tb(16);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(a.next_gap(), b.next_gap());
    const ConnectivityChange ca = a.next_change(ta);
    const ConnectivityChange cb = b.next_change(tb);
    EXPECT_EQ(ca.kind, cb.kind);
    EXPECT_EQ(ca.component_a, cb.component_a);
    EXPECT_EQ(ca.component_b, cb.component_b);
    EXPECT_EQ(ca.moved, cb.moved);
    // Apply to keep the topologies evolving identically.
    if (ca.kind == ConnectivityChange::Kind::kPartition) {
      ta.split(ca.component_a, ca.moved);
      tb.split(cb.component_a, cb.moved);
    } else {
      ta.merge(ca.component_a, ca.component_b);
      tb.merge(cb.component_a, cb.component_b);
    }
  }
}

TEST(FaultScheduler, FirstChangeOnConnectedTopologyIsAPartition) {
  FaultScheduler sched(99, 1.0);
  Topology topo(8);
  const ConnectivityChange c = sched.next_change(topo);
  EXPECT_EQ(c.kind, ConnectivityChange::Kind::kPartition);
  EXPECT_EQ(c.component_a, 0u);
  EXPECT_FALSE(c.moved.empty());
  EXPECT_LT(c.moved.count(), 8u);
}

TEST(FaultScheduler, FullyFragmentedTopologyOnlyMerges) {
  FaultScheduler sched(5, 1.0);
  Topology topo(3);
  topo.split(0, ProcessSet(3, {0}));
  topo.split(0, ProcessSet(3, {1}));
  for (int i = 0; i < 20; ++i) {
    const ConnectivityChange c = sched.next_change(topo);
    EXPECT_EQ(c.kind, ConnectivityChange::Kind::kMerge);
    EXPECT_NE(c.component_a, c.component_b);
    EXPECT_LT(c.component_a, 3u);
    EXPECT_LT(c.component_b, 3u);
  }
}

TEST(FaultScheduler, ChangesAreAlwaysFeasible) {
  FaultScheduler sched(123, 0.5);
  Topology topo(16);
  for (int i = 0; i < 2000; ++i) {
    const ConnectivityChange c = sched.next_change(topo);
    if (c.kind == ConnectivityChange::Kind::kPartition) {
      const ProcessSet& comp = topo.component(c.component_a);
      EXPECT_TRUE(c.moved.is_subset_of(comp));
      EXPECT_GE(c.moved.count(), 1u);
      EXPECT_LT(c.moved.count(), comp.count());
      topo.split(c.component_a, c.moved);
    } else {
      EXPECT_NE(c.component_a, c.component_b);
      topo.merge(c.component_a, c.component_b);
    }
  }
}

TEST(FaultScheduler, SplitSizesCoverTheWholeRange) {
  // "Partitions do not necessarily happen evenly": over many draws from a
  // 16-process component, every moved-count 1..15 should occur.
  std::set<std::size_t> seen;
  FaultScheduler sched(321, 0.0);
  for (int i = 0; i < 2000; ++i) {
    Topology topo(16);
    const ConnectivityChange c = sched.next_change(topo);
    ASSERT_EQ(c.kind, ConnectivityChange::Kind::kPartition);
    seen.insert(c.moved.count());
  }
  EXPECT_EQ(seen.size(), 15u);
}

TEST(FaultScheduler, NegativeMeanRejected) {
  EXPECT_THROW(FaultScheduler(1, -1.0), PreconditionViolation);
}

TEST(FaultScheduler, SingleProcessTopologyRejected) {
  FaultScheduler sched(1, 1.0);
  Topology topo(1);
  EXPECT_THROW(sched.next_change(topo), PreconditionViolation);
}

// --- trace replay: the decoder's negative space -----------------------

const char* const kGoodTrace = R"({
  "schema": "dynvote.trace.v1",
  "processes": 8,
  "events": [
    {"at": 3,  "kind": "partition", "moved": [2, 5]},
    {"at": 9,  "kind": "merge",     "of": [0, 2]},
    {"at": 14, "kind": "crash",     "process": 7},
    {"at": 20, "kind": "recovery",  "process": 7}
  ]
})";

TEST(TraceReplay, GoodDocumentDecodesEveryEvent) {
  const std::vector<TraceEvent> events = parse_trace(kGoodTrace, 8);
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].kind, TraceEvent::Kind::kPartition);
  EXPECT_EQ(events[0].at, 3u);
  EXPECT_EQ(events[0].moved, ProcessSet(8, {2, 5}));
  EXPECT_EQ(events[1].kind, TraceEvent::Kind::kMerge);
  EXPECT_EQ(events[1].merge_a, 0u);
  EXPECT_EQ(events[1].merge_b, 2u);
  EXPECT_EQ(events[2].kind, TraceEvent::Kind::kCrash);
  EXPECT_EQ(events[2].process, 7u);
  EXPECT_EQ(events[3].kind, TraceEvent::Kind::kRecovery);
}

TEST(TraceReplay, JsonRoundTripIsLossless) {
  const std::vector<TraceEvent> events = parse_trace(kGoodTrace, 8);
  const std::string rendered = trace_to_json(events, 8);
  const std::vector<TraceEvent> again = parse_trace(rendered, 8);
  ASSERT_EQ(again.size(), events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(again[i].at, events[i].at);
    EXPECT_EQ(again[i].kind, events[i].kind);
  }
}

TEST(TraceReplay, TruncatedDocumentThrows) {
  const std::string good = kGoodTrace;
  for (std::size_t cut : {good.size() / 4, good.size() / 2, good.size() - 2}) {
    EXPECT_THROW(parse_trace(good.substr(0, cut), 8), DecodeError)
        << "cut at " << cut;
  }
}

TEST(TraceReplay, OutOfOrderTimestampsThrow) {
  const char* const doc = R"({
    "schema": "dynvote.trace.v1", "processes": 8,
    "events": [
      {"at": 9, "kind": "crash", "process": 1},
      {"at": 3, "kind": "recovery", "process": 1}
    ]
  })";
  EXPECT_THROW(parse_trace(doc, 8), DecodeError);
}

TEST(TraceReplay, EqualTimestampsThrowToo) {
  const char* const doc = R"({
    "schema": "dynvote.trace.v1", "processes": 8,
    "events": [
      {"at": 3, "kind": "crash", "process": 1},
      {"at": 3, "kind": "recovery", "process": 1}
    ]
  })";
  EXPECT_THROW(parse_trace(doc, 8), DecodeError);
}

TEST(TraceReplay, UnknownEventKindThrows) {
  const char* const doc = R"({
    "schema": "dynvote.trace.v1", "processes": 8,
    "events": [{"at": 1, "kind": "reboot", "process": 1}]
  })";
  EXPECT_THROW(parse_trace(doc, 8), DecodeError);
}

TEST(TraceReplay, ProcessIdAtOrBeyondUniverseThrows) {
  const char* const doc = R"({
    "schema": "dynvote.trace.v1", "processes": 8,
    "events": [{"at": 1, "kind": "crash", "process": 8}]
  })";
  EXPECT_THROW(parse_trace(doc, 8), DecodeError);
}

TEST(TraceReplay, UniverseMismatchThrows) {
  // The document's own process count must agree with the simulation's.
  EXPECT_THROW(parse_trace(kGoodTrace, 16), DecodeError);
}

TEST(TraceReplay, UnknownMembersAreRejected) {
  const char* const doc = R"({
    "schema": "dynvote.trace.v1", "processes": 8,
    "events": [{"at": 1, "kind": "crash", "process": 1, "extra": true}]
  })";
  EXPECT_THROW(parse_trace(doc, 8), DecodeError);
}

TEST(TraceReplay, BadTraceThrowsBeforeSimulationStateExists) {
  // The full path a sweep config takes: a malformed trace must abort
  // Simulation construction (DecodeError, not an assertion mid-run).
  SimulationConfig config;
  config.processes = 8;
  config.changes_per_run = 4;
  config.fault_model.kind = FaultModelKind::kTrace;
  config.fault_model.trace_json = R"({"schema":"dynvote.trace.v1")";
  EXPECT_THROW(Simulation sim(config), DecodeError);
}

}  // namespace
}  // namespace dynvote
