// 1-pending: blocking on an unresolved ambiguous session, and the
// worst-case need to hear from every member before resolving it.
#include <gtest/gtest.h>

#include "core/one_pending.hpp"
#include "gcs/gcs.hpp"
#include "sim_test_util.hpp"

namespace dynvote {
namespace {

using test::all_in_primary;
using test::no_cross;
using test::settle;

// Build the canonical blocked state: primary {0,1,2,3} exists, then the
// full view's formation attempt is interrupted with process 4 detaching,
// leaving {0,1,2,3} pending on {0,1,2,3,4}.
Gcs blocked_gcs(AlgorithmKind kind) {
  Gcs gcs(kind, 5);
  gcs.apply_partition(0, ProcessSet(5, {4}));
  while (gcs.step_round()) {
  }
  gcs.apply_merge(0, 1);
  gcs.step_round();
  gcs.step_round();  // attempts for {0..4} in flight
  gcs.apply_partition(0, ProcessSet(5, {4}), [](ProcessId) { return false; });
  while (gcs.step_round()) {
  }
  return gcs;
}

TEST(OnePending, BlocksWhereYkdPipelines) {
  // Identical history; YKD forms a new primary, 1-pending blocks because
  // the pending session {0..4} cannot be resolved without process 4.
  Gcs ykd = blocked_gcs(AlgorithmKind::kYkd);
  EXPECT_TRUE(all_in_primary(ykd, ProcessSet(5, {0, 1, 2, 3})));

  Gcs op = blocked_gcs(AlgorithmKind::kOnePending);
  EXPECT_FALSE(op.algorithm(0).in_primary());
  EXPECT_TRUE(op.algorithm(0).debug_info().blocked);
  EXPECT_EQ(op.algorithm(0).debug_info().ambiguous_count, 1u);
}

TEST(OnePending, ResolvesWhenTheLastMemberReturns) {
  Gcs gcs = blocked_gcs(AlgorithmKind::kOnePending);
  // Process 4 returns: every member of the pending session is present,
  // none formed it, so it resolves and the full view forms.
  gcs.apply_merge(0, 1);
  settle(gcs);
  EXPECT_TRUE(all_in_primary(gcs, ProcessSet::full(5)));
  EXPECT_EQ(gcs.algorithm(0).debug_info().ambiguous_count, 0u);
}

TEST(OnePending, ResolvesViaAWitnessOfTheFormation) {
  // The pending session CAN be resolved without full attendance when some
  // process witnessed its formation.
  Gcs gcs(AlgorithmKind::kOnePending, 5);
  gcs.apply_partition(0, ProcessSet(5, {3, 4}));
  gcs.step_round();
  gcs.step_round();  // attempts for {0,1,2} in flight
  // 2 detaches; its attempt crosses, so {0,1} forms {0,1,2} while 2 holds
  // it pending.
  gcs.apply_partition(gcs.topology().component_of(0), ProcessSet(5, {2}),
                      [](ProcessId sender) { return sender == 2; });
  settle(gcs);
  EXPECT_TRUE(all_in_primary(gcs, ProcessSet(5, {0, 1})));
  EXPECT_EQ(gcs.algorithm(2).debug_info().ambiguous_count, 1u);

  // 2 rejoins 0 and 1: they report {0,1,2} formed (lastFormed(2) = that
  // session); 2 adopts it and the group forms {0,1,2}.
  gcs.apply_merge(gcs.topology().component_of(0),
                  gcs.topology().component_of(2));
  settle(gcs);
  EXPECT_TRUE(all_in_primary(gcs, ProcessSet(5, {0, 1, 2})));
  EXPECT_EQ(gcs.algorithm(2).debug_info().ambiguous_count, 0u);
}

TEST(OnePending, NeverHoldsMoreThanOneAmbiguousSession) {
  // Through an adversarial little history, the pending count stays <= 1.
  Gcs gcs(AlgorithmKind::kOnePending, 6);
  const auto max_pending = [&]() {
    std::size_t m = 0;
    for (ProcessId p = 0; p < 6; ++p) {
      m = std::max(m, gcs.algorithm(p).debug_info().ambiguous_count);
    }
    return m;
  };

  gcs.apply_partition(0, ProcessSet(6, {5}));
  gcs.step_round();
  gcs.step_round();
  EXPECT_LE(max_pending(), 1u);
  gcs.apply_partition(0, ProcessSet(6, {3, 4}), no_cross());
  gcs.step_round();
  gcs.step_round();
  EXPECT_LE(max_pending(), 1u);
  gcs.apply_merge(0, 1);
  gcs.step_round();
  EXPECT_LE(max_pending(), 1u);
  settle(gcs);
  EXPECT_LE(max_pending(), 1u);
}

TEST(OnePending, OneBlockedMemberBlocksTheWholeView) {
  // The decision is group-wide and deterministic: if any member's pending
  // session is unresolved, nobody attempts (formation needs everyone).
  Gcs gcs = blocked_gcs(AlgorithmKind::kOnePending);
  // Merge the blocked {0,1,2,3} with nobody new -- wait, instead check
  // that even after more rounds nothing ever forms.
  for (int i = 0; i < 10; ++i) gcs.step_round();
  EXPECT_EQ(test::primary_member_count(gcs), 0u);
}

}  // namespace
}  // namespace dynvote
