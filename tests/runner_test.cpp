// The parallel sweep engine: bit-identity with the serial path for every
// algorithm and both modes, shard-merge exactness, the thread pool, and
// the progress hook.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <stdexcept>

#include "runner/artifact.hpp"
#include "runner/sweep.hpp"
#include "runner/thread_pool.hpp"

namespace dynvote {
namespace {

CaseSpec small_case(AlgorithmKind kind, RunMode mode) {
  CaseSpec spec;
  spec.algorithm = kind;
  spec.processes = 16;
  spec.changes = 4;
  spec.mean_rounds = 3.0;
  spec.runs = 40;
  spec.mode = mode;
  spec.base_seed = 777;
  return spec;
}

void expect_identical(const CaseResult& a, const CaseResult& b) {
  EXPECT_EQ(a.runs, b.runs);
  EXPECT_EQ(a.successes, b.successes);
  EXPECT_EQ(a.success_per_run, b.success_per_run);
  EXPECT_EQ(a.stable.buckets, b.stable.buckets);
  EXPECT_EQ(a.stable.samples, b.stable.samples);
  EXPECT_EQ(a.stable.max_observed, b.stable.max_observed);
  EXPECT_EQ(a.in_progress.buckets, b.in_progress.buckets);
  EXPECT_EQ(a.in_progress.samples, b.in_progress.samples);
  EXPECT_EQ(a.in_progress.max_observed, b.in_progress.max_observed);
  EXPECT_EQ(a.total_rounds, b.total_rounds);
  EXPECT_EQ(a.total_changes, b.total_changes);
  EXPECT_EQ(a.total_rounds_with_primary, b.total_rounds_with_primary);
  EXPECT_EQ(a.wire.messages_sent, b.wire.messages_sent);
  EXPECT_EQ(a.wire.protocol_messages_sent, b.wire.protocol_messages_sent);
  EXPECT_EQ(a.wire.max_message_bytes, b.wire.max_message_bytes);
  EXPECT_EQ(a.wire.total_message_bytes, b.wire.total_message_bytes);
  EXPECT_EQ(a.invariant_checks, b.invariant_checks);
}

// The headline guarantee: a parallel sweep at 4 workers, with shards small
// enough that every fresh-start case splits, reproduces the serial
// `run_case` bit for bit -- for every algorithm and both modes.
TEST(Sweep, ParallelBitIdenticalToSerialEverywhere) {
  for (RunMode mode : {RunMode::kFreshStart, RunMode::kCascading}) {
    SweepSpec sweep;
    sweep.jobs = 4;
    sweep.min_shard_runs = 8;  // 40-run cases shard into several pieces
    NullProgress quiet;
    sweep.progress = &quiet;
    for (AlgorithmKind kind : all_algorithm_kinds()) {
      SweepCase c;
      c.spec = small_case(kind, mode);
      c.spec.measure_wire_sizes = true;  // wire stats must merge exactly too
      sweep.cases.push_back(std::move(c));
    }
    const SweepResult swept = run_sweep(sweep);
    ASSERT_EQ(swept.cases.size(), all_algorithm_kinds().size());

    for (std::size_t i = 0; i < swept.cases.size(); ++i) {
      SCOPED_TRACE(swept.cases[i].algorithm + " / " + to_string(mode));
      const CaseResult serial = run_case(swept.cases[i].spec);
      expect_identical(swept.cases[i].result, serial);
    }
  }
}

TEST(Sweep, ShardBoundariesNeverChangeResults) {
  SweepCase c;
  c.spec = small_case(AlgorithmKind::kYkd, RunMode::kFreshStart);
  const CaseResult serial = run_case(c.spec);
  for (std::uint64_t min_shard : {1u, 7u, 16u, 100u}) {
    SweepSpec sweep;
    sweep.jobs = 3;
    sweep.min_shard_runs = min_shard;
    NullProgress quiet;
    sweep.progress = &quiet;
    sweep.cases = {c};
    const SweepResult swept = run_sweep(sweep);
    SCOPED_TRACE(min_shard);
    expect_identical(swept.cases[0].result, serial);
  }
}

TEST(Sweep, ResultsAlignWithCaseOrderAndCarryTelemetry) {
  SweepSpec sweep;
  sweep.jobs = 2;
  NullProgress quiet;
  sweep.progress = &quiet;
  sweep.cases = availability_grid(
      {AlgorithmKind::kYkd, AlgorithmKind::kSimpleMajority}, {0.0, 3.0}, 4,
      RunMode::kFreshStart, 20, 777, 16);
  ASSERT_EQ(sweep.cases.size(), 4u);

  const SweepResult swept = run_sweep(sweep);
  ASSERT_EQ(swept.cases.size(), 4u);
  EXPECT_EQ(swept.cases[0].algorithm, "ykd");
  EXPECT_EQ(swept.cases[2].algorithm, "simple-majority");
  EXPECT_EQ(swept.cases[1].spec.mean_rounds, 3.0);
  for (const CaseOutcome& outcome : swept.cases) {
    EXPECT_EQ(outcome.result.runs, 20u);
    EXPECT_GT(outcome.result.invariant_checks, 0u);
    EXPECT_GT(outcome.compute_seconds, 0.0);
    EXPECT_GT(outcome.runs_per_sec, 0.0);
  }
  EXPECT_GT(swept.wall_seconds, 0.0);
  EXPECT_EQ(swept.jobs, 2u);
}

TEST(Sweep, FactoryCasesRunUnderTheirLabel) {
  SweepSpec sweep;
  sweep.jobs = 2;
  NullProgress quiet;
  sweep.progress = &quiet;
  SweepCase c;
  c.algorithm = "custom-ykd";
  c.spec = small_case(AlgorithmKind::kSimpleMajority, RunMode::kFreshStart);
  c.spec.algorithm_factory = [](ProcessId self, const View& initial) {
    return make_algorithm(AlgorithmKind::kYkd, self, initial);
  };
  sweep.cases = {c};
  const SweepResult swept = run_sweep(sweep);
  EXPECT_EQ(swept.cases[0].algorithm, "custom-ykd");
  expect_identical(swept.cases[0].result, run_case(c.spec));
}

class CountingSink final : public ProgressSink {
 public:
  void case_done(const CaseTelemetry& telemetry, std::size_t done,
                 std::size_t total) override {
    ++cases_seen;
    last_done = done;
    last_total = total;
    EXPECT_FALSE(telemetry.label.empty());
    EXPECT_GT(telemetry.runs, 0u);
  }
  void sweep_done(const std::string&, std::size_t, double) override {
    ++sweeps_seen;
  }

  std::atomic<std::size_t> cases_seen{0};
  std::size_t last_done = 0;
  std::size_t last_total = 0;
  std::size_t sweeps_seen = 0;
};

TEST(Sweep, ProgressSinkSeesEveryCaseExactlyOnce) {
  CountingSink sink;
  SweepSpec sweep;
  sweep.jobs = 4;
  sweep.min_shard_runs = 8;
  sweep.progress = &sink;
  sweep.cases = availability_grid({AlgorithmKind::kYkd}, {0.0, 2.0, 4.0}, 4,
                                  RunMode::kFreshStart, 24, 777, 16);
  (void)run_sweep(sweep);
  EXPECT_EQ(sink.cases_seen.load(), 3u);
  EXPECT_EQ(sink.last_done, 3u);
  EXPECT_EQ(sink.last_total, 3u);
  EXPECT_EQ(sink.sweeps_seen, 1u);
}

// The seven figure sweeps (Figures 4-1..4-6 availability grids plus the
// 4-7/4-8 ambiguous-sessions grid), smoke-sized: one worker with no
// sharding versus eight workers with shards forced down to single runs
// must render byte-identical deterministic manifests.
TEST(Sweep, SevenFigureSweepsIdenticalManifestsAcrossJobs) {
  const std::vector<AlgorithmKind> pair = {AlgorithmKind::kYkd,
                                           AlgorithmKind::kDfls};
  const std::vector<AlgorithmKind> trio = {AlgorithmKind::kYkd,
                                           AlgorithmKind::kYkdUnoptimized,
                                           AlgorithmKind::kDfls};
  const std::vector<double> rates = {0.0, 3.0};

  std::vector<SweepSpec> figures;
  for (RunMode mode : {RunMode::kFreshStart, RunMode::kCascading}) {
    for (std::size_t changes : {2u, 6u, 12u}) {  // Figures 4-1..4-6
      SweepSpec sweep;
      sweep.cases = availability_grid(pair, rates, changes, mode, 8, 777, 12);
      for (SweepCase& c : sweep.cases) c.spec.measure_wire_sizes = true;
      figures.push_back(std::move(sweep));
    }
  }
  SweepSpec ambiguous;  // Figures 4-7/4-8
  for (AlgorithmKind kind : trio) {
    for (std::size_t changes : {2u, 6u, 12u}) {
      auto grid = availability_grid({kind}, {3.0}, changes,
                                    RunMode::kFreshStart, 8, 777, 12);
      ambiguous.cases.insert(ambiguous.cases.end(), grid.begin(), grid.end());
    }
  }
  figures.push_back(std::move(ambiguous));
  ASSERT_EQ(figures.size(), 7u);

  NullProgress quiet;
  for (std::size_t f = 0; f < figures.size(); ++f) {
    SCOPED_TRACE("figure sweep " + std::to_string(f));
    SweepSpec serial = figures[f];
    serial.jobs = 1;
    serial.progress = &quiet;
    SweepSpec parallel = figures[f];
    parallel.jobs = 8;
    parallel.min_shard_runs = 1;  // every 8-run case splits into 1-run shards
    parallel.progress = &quiet;

    const SweepResult a = run_sweep(serial);
    const SweepResult b = run_sweep(parallel);
    EXPECT_EQ(manifest_results_json(serial, a), manifest_results_json(parallel, b));
    EXPECT_EQ(results_fingerprint(serial, a), results_fingerprint(parallel, b));
  }
}

// The min_shard_runs knob is honored in BOTH modes (it used to be silently
// ignored for cascading cases): with runs=40, jobs=4 and a floor of 8 a
// case executes as five 8-run shards; a floor above the run count keeps
// the case whole.  Either way the merged result is the serial one.
TEST(Sweep, MinShardRunsHonoredForBothModes) {
  for (RunMode mode : {RunMode::kFreshStart, RunMode::kCascading}) {
    SweepCase c;
    c.spec = small_case(AlgorithmKind::kYkd, mode);
    c.spec.measure_wire_sizes = true;
    const CaseResult serial = run_case(c.spec);

    for (const auto& [min_shard, want_shards] :
         {std::pair<std::uint64_t, std::size_t>{8, 5},
          std::pair<std::uint64_t, std::size_t>{100, 1}}) {
      SCOPED_TRACE(std::string(to_string(mode)) + " min_shard=" +
                   std::to_string(min_shard));
      SweepSpec sweep;
      sweep.jobs = 4;
      sweep.min_shard_runs = min_shard;
      NullProgress quiet;
      sweep.progress = &quiet;
      sweep.cases = {c};
      const SweepResult swept = run_sweep(sweep);
      EXPECT_EQ(swept.cases[0].shards, want_shards);
      expect_identical(swept.cases[0].result, serial);
    }
  }
}

// Work stealing: pin one case that dwarfs the rest and force tiny shards;
// idle workers must drain the queue by claiming pieces of the slow case
// (several shards, at least one claimed by a different worker), and every
// result -- slow and fast alike -- still matches the serial path.
TEST(Sweep, WorkStealingDrainsTheSlowCase) {
  SweepSpec sweep;
  sweep.jobs = 4;
  sweep.min_shard_runs = 1;
  NullProgress quiet;
  sweep.progress = &quiet;

  SweepCase slow;
  slow.spec = small_case(AlgorithmKind::kYkd, RunMode::kFreshStart);
  slow.spec.processes = 24;
  slow.spec.changes = 8;
  slow.spec.runs = 64;
  sweep.cases.push_back(slow);
  for (AlgorithmKind kind :
       {AlgorithmKind::kSimpleMajority, AlgorithmKind::kOnePending,
        AlgorithmKind::kDfls}) {
    SweepCase fast;
    fast.spec = small_case(kind, RunMode::kFreshStart);
    fast.spec.runs = 4;
    sweep.cases.push_back(fast);
  }

  const SweepResult swept = run_sweep(sweep);
  ASSERT_EQ(swept.cases.size(), 4u);
  EXPECT_GE(swept.cases[0].shards, 2u);
  EXPECT_GE(swept.cases[0].steals, 1u);
  for (const CaseOutcome& outcome : swept.cases) {
    SCOPED_TRACE(outcome.algorithm);
    expect_identical(outcome.result, run_case(outcome.spec));
  }
}

TEST(Sweep, JobsFromEnvRespectsOverride) {
  ::setenv("DV_JOBS", "3", 1);
  EXPECT_EQ(jobs_from_env(), 3u);
  ::setenv("DV_JOBS", "0", 1);
  EXPECT_EQ(jobs_from_env(), 1u);  // zero clamps to one worker
  ::unsetenv("DV_JOBS");
  EXPECT_GE(jobs_from_env(), 1u);
}

TEST(ThreadPool, RunsEverySubmittedTask) {
  std::atomic<int> counter{0};
  ThreadPool pool(4);
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
  // The pool stays usable after a wait.
  pool.submit([&counter] { counter.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 101);
}

TEST(ThreadPool, RethrowsTheFirstTaskError) {
  std::atomic<int> counter{0};
  ThreadPool pool(2);
  for (int i = 0; i < 10; ++i) {
    pool.submit([&counter, i] {
      if (i == 3) throw std::runtime_error("shard failed");
      counter.fetch_add(1);
    });
  }
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  EXPECT_EQ(counter.load(), 9);
  // The error is consumed; the next wait succeeds.
  pool.wait_idle();
}

}  // namespace
}  // namespace dynvote
