// The parallel sweep engine: bit-identity with the serial path for every
// algorithm and both modes, shard-merge exactness, the thread pool, and
// the progress hook.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <stdexcept>

#include "runner/sweep.hpp"
#include "runner/thread_pool.hpp"

namespace dynvote {
namespace {

CaseSpec small_case(AlgorithmKind kind, RunMode mode) {
  CaseSpec spec;
  spec.algorithm = kind;
  spec.processes = 16;
  spec.changes = 4;
  spec.mean_rounds = 3.0;
  spec.runs = 40;
  spec.mode = mode;
  spec.base_seed = 777;
  return spec;
}

void expect_identical(const CaseResult& a, const CaseResult& b) {
  EXPECT_EQ(a.runs, b.runs);
  EXPECT_EQ(a.successes, b.successes);
  EXPECT_EQ(a.success_per_run, b.success_per_run);
  EXPECT_EQ(a.stable.buckets, b.stable.buckets);
  EXPECT_EQ(a.stable.samples, b.stable.samples);
  EXPECT_EQ(a.stable.max_observed, b.stable.max_observed);
  EXPECT_EQ(a.in_progress.buckets, b.in_progress.buckets);
  EXPECT_EQ(a.in_progress.samples, b.in_progress.samples);
  EXPECT_EQ(a.in_progress.max_observed, b.in_progress.max_observed);
  EXPECT_EQ(a.total_rounds, b.total_rounds);
  EXPECT_EQ(a.total_changes, b.total_changes);
  EXPECT_EQ(a.total_rounds_with_primary, b.total_rounds_with_primary);
  EXPECT_EQ(a.wire.messages_sent, b.wire.messages_sent);
  EXPECT_EQ(a.wire.protocol_messages_sent, b.wire.protocol_messages_sent);
  EXPECT_EQ(a.wire.max_message_bytes, b.wire.max_message_bytes);
  EXPECT_EQ(a.wire.total_message_bytes, b.wire.total_message_bytes);
  EXPECT_EQ(a.invariant_checks, b.invariant_checks);
}

// The headline guarantee: a parallel sweep at 4 workers, with shards small
// enough that every fresh-start case splits, reproduces the serial
// `run_case` bit for bit -- for every algorithm and both modes.
TEST(Sweep, ParallelBitIdenticalToSerialEverywhere) {
  for (RunMode mode : {RunMode::kFreshStart, RunMode::kCascading}) {
    SweepSpec sweep;
    sweep.jobs = 4;
    sweep.min_shard_runs = 8;  // 40-run cases shard into several pieces
    NullProgress quiet;
    sweep.progress = &quiet;
    for (AlgorithmKind kind : all_algorithm_kinds()) {
      SweepCase c;
      c.spec = small_case(kind, mode);
      c.spec.measure_wire_sizes = true;  // wire stats must merge exactly too
      sweep.cases.push_back(std::move(c));
    }
    const SweepResult swept = run_sweep(sweep);
    ASSERT_EQ(swept.cases.size(), all_algorithm_kinds().size());

    for (std::size_t i = 0; i < swept.cases.size(); ++i) {
      SCOPED_TRACE(swept.cases[i].algorithm + " / " + to_string(mode));
      const CaseResult serial = run_case(swept.cases[i].spec);
      expect_identical(swept.cases[i].result, serial);
    }
  }
}

TEST(Sweep, ShardBoundariesNeverChangeResults) {
  SweepCase c;
  c.spec = small_case(AlgorithmKind::kYkd, RunMode::kFreshStart);
  const CaseResult serial = run_case(c.spec);
  for (std::uint64_t min_shard : {1u, 7u, 16u, 100u}) {
    SweepSpec sweep;
    sweep.jobs = 3;
    sweep.min_shard_runs = min_shard;
    NullProgress quiet;
    sweep.progress = &quiet;
    sweep.cases = {c};
    const SweepResult swept = run_sweep(sweep);
    SCOPED_TRACE(min_shard);
    expect_identical(swept.cases[0].result, serial);
  }
}

TEST(Sweep, ResultsAlignWithCaseOrderAndCarryTelemetry) {
  SweepSpec sweep;
  sweep.jobs = 2;
  NullProgress quiet;
  sweep.progress = &quiet;
  sweep.cases = availability_grid(
      {AlgorithmKind::kYkd, AlgorithmKind::kSimpleMajority}, {0.0, 3.0}, 4,
      RunMode::kFreshStart, 20, 777, 16);
  ASSERT_EQ(sweep.cases.size(), 4u);

  const SweepResult swept = run_sweep(sweep);
  ASSERT_EQ(swept.cases.size(), 4u);
  EXPECT_EQ(swept.cases[0].algorithm, "ykd");
  EXPECT_EQ(swept.cases[2].algorithm, "simple-majority");
  EXPECT_EQ(swept.cases[1].spec.mean_rounds, 3.0);
  for (const CaseOutcome& outcome : swept.cases) {
    EXPECT_EQ(outcome.result.runs, 20u);
    EXPECT_GT(outcome.result.invariant_checks, 0u);
    EXPECT_GT(outcome.compute_seconds, 0.0);
    EXPECT_GT(outcome.runs_per_sec, 0.0);
  }
  EXPECT_GT(swept.wall_seconds, 0.0);
  EXPECT_EQ(swept.jobs, 2u);
}

TEST(Sweep, FactoryCasesRunUnderTheirLabel) {
  SweepSpec sweep;
  sweep.jobs = 2;
  NullProgress quiet;
  sweep.progress = &quiet;
  SweepCase c;
  c.algorithm = "custom-ykd";
  c.spec = small_case(AlgorithmKind::kSimpleMajority, RunMode::kFreshStart);
  c.spec.algorithm_factory = [](ProcessId self, const View& initial) {
    return make_algorithm(AlgorithmKind::kYkd, self, initial);
  };
  sweep.cases = {c};
  const SweepResult swept = run_sweep(sweep);
  EXPECT_EQ(swept.cases[0].algorithm, "custom-ykd");
  expect_identical(swept.cases[0].result, run_case(c.spec));
}

class CountingSink final : public ProgressSink {
 public:
  void case_done(const CaseTelemetry& telemetry, std::size_t done,
                 std::size_t total) override {
    ++cases_seen;
    last_done = done;
    last_total = total;
    EXPECT_FALSE(telemetry.label.empty());
    EXPECT_GT(telemetry.runs, 0u);
  }
  void sweep_done(const std::string&, std::size_t, double) override {
    ++sweeps_seen;
  }

  std::atomic<std::size_t> cases_seen{0};
  std::size_t last_done = 0;
  std::size_t last_total = 0;
  std::size_t sweeps_seen = 0;
};

TEST(Sweep, ProgressSinkSeesEveryCaseExactlyOnce) {
  CountingSink sink;
  SweepSpec sweep;
  sweep.jobs = 4;
  sweep.min_shard_runs = 8;
  sweep.progress = &sink;
  sweep.cases = availability_grid({AlgorithmKind::kYkd}, {0.0, 2.0, 4.0}, 4,
                                  RunMode::kFreshStart, 24, 777, 16);
  (void)run_sweep(sweep);
  EXPECT_EQ(sink.cases_seen.load(), 3u);
  EXPECT_EQ(sink.last_done, 3u);
  EXPECT_EQ(sink.last_total, 3u);
  EXPECT_EQ(sink.sweeps_seen, 1u);
}

TEST(Sweep, JobsFromEnvRespectsOverride) {
  ::setenv("DV_JOBS", "3", 1);
  EXPECT_EQ(jobs_from_env(), 3u);
  ::setenv("DV_JOBS", "0", 1);
  EXPECT_EQ(jobs_from_env(), 1u);  // zero clamps to one worker
  ::unsetenv("DV_JOBS");
  EXPECT_GE(jobs_from_env(), 1u);
}

TEST(ThreadPool, RunsEverySubmittedTask) {
  std::atomic<int> counter{0};
  ThreadPool pool(4);
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
  // The pool stays usable after a wait.
  pool.submit([&counter] { counter.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 101);
}

TEST(ThreadPool, RethrowsTheFirstTaskError) {
  std::atomic<int> counter{0};
  ThreadPool pool(2);
  for (int i = 0; i < 10; ++i) {
    pool.submit([&counter, i] {
      if (i == 3) throw std::runtime_error("shard failed");
      counter.fetch_add(1);
    });
  }
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  EXPECT_EQ(counter.load(), 9);
  // The error is consumed; the next wait succeeds.
  pool.wait_idle();
}

}  // namespace
}  // namespace dynvote
