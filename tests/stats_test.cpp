#include <gtest/gtest.h>

#include "sim/stats.hpp"
#include "sim/table.hpp"
#include "util/codec.hpp"

namespace dynvote {
namespace {

TEST(AmbiguityHistogram, BucketsAndOverflow) {
  AmbiguityHistogram h;
  for (std::size_t c : {0u, 0u, 1u, 2u, 3u, 4u, 9u}) h.record(c);
  EXPECT_EQ(h.samples, 7u);
  EXPECT_EQ(h.buckets[0], 2u);
  EXPECT_EQ(h.buckets[1], 1u);
  EXPECT_EQ(h.buckets[2], 1u);
  EXPECT_EQ(h.buckets[3], 1u);
  EXPECT_EQ(h.buckets[4], 2u);  // 4 and 9 share the 4+ bucket
  EXPECT_EQ(h.max_observed, 9u);
  EXPECT_NEAR(h.percent(0), 100.0 * 2 / 7, 1e-9);
  EXPECT_NEAR(h.percent_nonzero(), 100.0 * 5 / 7, 1e-9);
}

TEST(AmbiguityHistogram, EmptyIsZero) {
  const AmbiguityHistogram h;
  EXPECT_EQ(h.percent(0), 0.0);
  EXPECT_EQ(h.percent_nonzero(), 0.0);
}

TEST(AmbiguityHistogram, MergeAccumulates) {
  AmbiguityHistogram a, b;
  a.record(0);
  a.record(2);
  b.record(5);
  a.merge(b);
  EXPECT_EQ(a.samples, 3u);
  EXPECT_EQ(a.max_observed, 5u);
  EXPECT_EQ(a.buckets[4], 1u);
}

TEST(CaseResult, MergeConcatenatesRunsInOrder) {
  CaseResult a, b;
  RunResult r1;
  r1.primary_at_end = true;
  r1.observer_ambiguous_at_end = 1;
  r1.observer_ambiguous_at_changes = {0, 2};
  r1.rounds_executed = 5;
  r1.changes_applied = 2;
  r1.rounds_with_primary = 4;
  a.record(r1);
  a.wire.messages_sent = 10;
  a.wire.max_message_bytes = 100;
  a.wire.total_message_bytes = 500;
  a.invariant_checks = 7;

  RunResult r2;
  r2.primary_at_end = false;
  r2.observer_ambiguous_at_end = 5;
  r2.rounds_executed = 3;
  b.record(r2);
  b.record(r1);
  b.wire.messages_sent = 4;
  b.wire.max_message_bytes = 250;
  b.wire.total_message_bytes = 300;
  b.invariant_checks = 2;

  a.merge(b);
  EXPECT_EQ(a.runs, 3u);
  EXPECT_EQ(a.successes, 2u);
  EXPECT_EQ(a.success_per_run, (std::vector<bool>{true, false, true}));
  EXPECT_EQ(a.stable.samples, 3u);
  EXPECT_EQ(a.stable.max_observed, 5u);
  EXPECT_EQ(a.in_progress.samples, 4u);
  EXPECT_EQ(a.total_rounds, 13u);
  EXPECT_EQ(a.total_changes, 4u);
  EXPECT_EQ(a.total_rounds_with_primary, 8u);
  EXPECT_EQ(a.wire.messages_sent, 14u);
  EXPECT_EQ(a.wire.max_message_bytes, 250u);
  EXPECT_EQ(a.wire.total_message_bytes, 800u);
  EXPECT_EQ(a.invariant_checks, 9u);
}

TEST(CaseResult, MergeIntoEmptyIsIdentity) {
  CaseResult a, b;
  RunResult run;
  run.primary_at_end = true;
  run.rounds_executed = 2;
  b.record(run);
  a.merge(b);
  EXPECT_EQ(a.runs, 1u);
  EXPECT_EQ(a.successes, 1u);
  EXPECT_EQ(a.success_per_run, b.success_per_run);
}

TEST(CaseResult, RecordsRuns) {
  CaseResult r;
  RunResult success;
  success.primary_at_end = true;
  success.observer_ambiguous_at_end = 0;
  success.observer_ambiguous_at_changes = {1, 0, 2};
  success.rounds_executed = 10;
  success.changes_applied = 3;
  r.record(success);

  RunResult failure;
  failure.primary_at_end = false;
  failure.observer_ambiguous_at_end = 2;
  r.record(failure);

  EXPECT_EQ(r.runs, 2u);
  EXPECT_EQ(r.successes, 1u);
  EXPECT_EQ(r.availability_percent(), 50.0);
  EXPECT_EQ(r.stable.samples, 2u);
  EXPECT_EQ(r.in_progress.samples, 3u);
  EXPECT_EQ(r.success_per_run, (std::vector<bool>{true, false}));
}

TEST(CaseResult, PairedComparison) {
  CaseResult a, b;
  const bool a_runs[] = {true, true, false, true};
  const bool b_runs[] = {true, false, false, false};
  for (bool ok : a_runs) {
    RunResult r;
    r.primary_at_end = ok;
    a.record(r);
  }
  for (bool ok : b_runs) {
    RunResult r;
    r.primary_at_end = ok;
    b.record(r);
  }
  EXPECT_EQ(percent_a_wins(a, b), 50.0);   // runs 2 and 4
  EXPECT_EQ(percent_a_wins(b, a), 0.0);
}

TEST(CaseResult, PairedComparisonRequiresEqualLength) {
  CaseResult a, b;
  RunResult r;
  a.record(r);
  EXPECT_THROW((void)percent_a_wins(a, b), PreconditionViolation);
}

TEST(CaseResult, HostileOutcomeCountFailsBeforeAllocation) {
  // A tiny frame claiming the maximum plausible outcome count must be
  // rejected against the bytes actually present -- before the decoder
  // reserves a vector sized by the attacker-controlled count.
  Encoder enc;
  enc.put_varint(48);                       // runs
  enc.put_varint(40);                       // successes
  enc.put_varint(std::uint64_t{1} << 30);   // outcomes, with no bytes behind
  Decoder dec(enc.bytes());
  CaseResult r;
  EXPECT_THROW(r.decode_body(dec), DecodeError);
}

TEST(TextTable, AlignsAndRenders) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22.5"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| alpha |"), std::string::npos);
  EXPECT_NE(out.find("value"), std::string::npos);
  // All lines share the same width.
  std::istringstream lines(out);
  std::string line;
  std::size_t width = 0;
  while (std::getline(lines, line)) {
    if (width == 0) width = line.size();
    EXPECT_EQ(line.size(), width);
  }
}

TEST(TextTable, CsvOutput) {
  TextTable t({"a", "b"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.to_csv(), "a,b\n1,2\n");
}

TEST(TextTable, RowWidthMismatchThrows) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), PreconditionViolation);
}

TEST(Format, FixedPrecision) {
  EXPECT_EQ(format_double(97.25), "97.2");
  EXPECT_EQ(format_double(97.25, 2), "97.25");
  EXPECT_EQ(format_double(0.0), "0.0");
}

}  // namespace
}  // namespace dynvote
